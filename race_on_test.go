//go:build race

package repro

// raceEnabled reports that the race detector is active. The full golden
// regenerations skip under it — simulation is ~10x slower with -race and
// the smoke sweeps already exercise the same concurrent engine paths —
// while the plain CI job runs them at full speed.
const raceEnabled = true
