package repro

import (
	"encoding/json"
	"math"
	"os"
	"reflect"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/protocol"
	"repro/internal/run"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

// These tests pin the unified run API to the committed BENCH trajectory
// files: selected honest-path points of BENCH_chain.json,
// BENCH_faults.json, and BENCH_byz.json are re-run through run.Run and
// every recorded number must reproduce bit-identically. The files were
// produced by the legacy drivers; the goldens are the proof that the
// api_redesign changed the surface without changing a single simulated
// outcome.

type goldenFile struct {
	Experiment string            `json:"experiment"`
	Seed       int64             `json:"seed"`
	Points     []json.RawMessage `json:"points"`
}

func loadGolden(t *testing.T, path string) goldenFile {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f goldenFile
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return f
}

// eq asserts exact equality of a recorded float (the JSON files carry
// float64; equality is exact because both sides round-trip the same way).
func eq(t *testing.T, what string, got, want float64) {
	t.Helper()
	if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
		t.Errorf("%s: got %v, want %v (golden)", what, got, want)
	}
}

func protoByName(t *testing.T, name string) (protocol.Kind, protocol.CoinKind) {
	t.Helper()
	for _, v := range protocol.Variants() {
		if v.Name == name {
			return v.Kind, v.Coin
		}
	}
	t.Fatalf("unknown protocol name %q in golden file", name)
	return "", ""
}

// TestGoldenChainBitIdentical re-runs the HB-SC batched rows of
// BENCH_chain.json (all three pipeline depths) through run.Run.
func TestGoldenChainBitIdentical(t *testing.T) {
	f := loadGolden(t, "BENCH_chain.json")
	matched := 0
	for _, rawPt := range f.Points {
		var pt struct {
			Protocol       string  `json:"protocol"`
			Transport      string  `json:"transport"`
			Depth          int     `json:"depth"`
			Epochs         int     `json:"epochs"`
			CommittedTxs   int     `json:"committed_txs"`
			CommittedBytes uint64  `json:"committed_bytes"`
			VirtualSecs    float64 `json:"virtual_s"`
			ThroughputBps  float64 `json:"throughput_Bps"`
			CommitLatencyS float64 `json:"commit_latency_s"`
			Accesses       uint64  `json:"accesses"`
			DedupDropped   int     `json:"dedup_dropped"`
		}
		if err := json.Unmarshal(rawPt, &pt); err != nil {
			t.Fatal(err)
		}
		if pt.Protocol != "HB-SC" || pt.Transport != "batched" {
			continue
		}
		matched++
		kind, coin := protoByName(t, pt.Protocol)
		spec := run.Defaults(kind, coin)
		spec.Seed = f.Seed
		spec.Workload = run.Chain(pt.Epochs)
		spec.Workload.Window = pt.Depth
		spec.Workload.TxInterval = time.Second
		res, err := run.Run(spec)
		if err != nil {
			t.Fatalf("depth %d: %v", pt.Depth, err)
		}
		if res.Chain.EpochsCommitted != pt.Epochs ||
			res.Chain.CommittedTxs != pt.CommittedTxs ||
			res.Chain.CommittedBytes != pt.CommittedBytes ||
			res.Accesses != pt.Accesses ||
			res.Chain.DedupDropped != pt.DedupDropped {
			t.Errorf("depth %d: counters diverge from golden: %+v vs %+v", pt.Depth, res.Chain, pt)
		}
		eq(t, "virtual_s", res.Duration.Seconds(), pt.VirtualSecs)
		eq(t, "throughput_Bps", res.Chain.ThroughputBps, pt.ThroughputBps)
		eq(t, "commit_latency_s", res.Chain.MeanCommitLatency.Seconds(), pt.CommitLatencyS)
	}
	if matched != 3 {
		t.Fatalf("matched %d golden rows, want 3 (depths 1/2/4)", matched)
	}
}

// TestGoldenFaultsBitIdentical re-runs the honest-path (fault-free) and
// crash-recover HB-SC batched rows of BENCH_faults.json, reconstructing
// each scenario from the recorded DSL.
func TestGoldenFaultsBitIdentical(t *testing.T) {
	f := loadGolden(t, "BENCH_faults.json")
	matched := 0
	for _, rawPt := range f.Points {
		var pt struct {
			Scenario       string  `json:"scenario"`
			Spec           string  `json:"spec"`
			Protocol       string  `json:"protocol"`
			Transport      string  `json:"transport"`
			Epochs         int     `json:"epochs"`
			CommittedTxs   int     `json:"committed_txs"`
			VirtualSecs    float64 `json:"virtual_s"`
			ThroughputBps  float64 `json:"throughput_Bps"`
			CommitLatencyS float64 `json:"commit_latency_s"`
			Accesses       uint64  `json:"accesses"`
			Collisions     uint64  `json:"collisions"`
			Error          string  `json:"error"`
		}
		if err := json.Unmarshal(rawPt, &pt); err != nil {
			t.Fatal(err)
		}
		if pt.Protocol != "HB-SC" || pt.Transport != "batched" || pt.Error != "" {
			continue
		}
		if pt.Scenario != "fault-free" && pt.Scenario != "crash-recover" {
			continue
		}
		matched++
		plan, err := scenario.Parse(pt.Spec)
		if err != nil {
			t.Fatalf("%s: recorded spec does not parse: %v", pt.Scenario, err)
		}
		kind, coin := protoByName(t, pt.Protocol)
		spec := run.Defaults(kind, coin)
		spec.Seed = f.Seed
		spec.Workload = run.Chain(pt.Epochs)
		spec.Workload.TxInterval = time.Second
		spec.Workload.GCLag = pt.Epochs
		spec.Scenario = plan
		res, err := run.Run(spec)
		if err != nil {
			t.Fatalf("%s: %v", pt.Scenario, err)
		}
		if res.Chain.CommittedTxs != pt.CommittedTxs || res.Accesses != pt.Accesses ||
			res.Collisions != pt.Collisions {
			t.Errorf("%s: counters diverge from golden", pt.Scenario)
		}
		eq(t, pt.Scenario+" virtual_s", res.Duration.Seconds(), pt.VirtualSecs)
		eq(t, pt.Scenario+" throughput_Bps", res.Chain.ThroughputBps, pt.ThroughputBps)
		eq(t, pt.Scenario+" commit_latency_s", res.Chain.MeanCommitLatency.Seconds(), pt.CommitLatencyS)
	}
	if matched != 2 {
		t.Fatalf("matched %d golden rows, want 2 (fault-free, crash-recover)", matched)
	}
}

// TestGoldenByzBitIdentical re-runs the garbage-behavior HB-SC batched
// row of BENCH_byz.json — same numbers, same honest-safety verdict.
func TestGoldenByzBitIdentical(t *testing.T) {
	f := loadGolden(t, "BENCH_byz.json")
	matched := 0
	for _, rawPt := range f.Points {
		var pt struct {
			Behavior      string  `json:"behavior"`
			Spec          string  `json:"spec"`
			Protocol      string  `json:"protocol"`
			Transport     string  `json:"transport"`
			Epochs        int     `json:"epochs"`
			CommittedTxs  int     `json:"committed_txs"`
			VirtualSecs   float64 `json:"virtual_s"`
			ThroughputBps float64 `json:"throughput_Bps"`
			RejectedMsgs  uint64  `json:"rejected_msgs"`
			HonestSafe    bool    `json:"honest_safe"`
		}
		if err := json.Unmarshal(rawPt, &pt); err != nil {
			t.Fatal(err)
		}
		if pt.Behavior != "garbage" || pt.Protocol != "HB-SC" || pt.Transport != "batched" {
			continue
		}
		matched++
		plan, err := scenario.Parse(pt.Spec)
		if err != nil {
			t.Fatal(err)
		}
		kind, coin := protoByName(t, pt.Protocol)
		spec := run.Defaults(kind, coin)
		spec.Seed = f.Seed
		spec.Workload = run.Chain(pt.Epochs)
		spec.Workload.TxInterval = time.Second
		spec.Workload.GCLag = pt.Epochs
		spec.Scenario = plan
		res, err := run.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.Chain.CommittedTxs != pt.CommittedTxs || res.Rejected != pt.RejectedMsgs {
			t.Errorf("garbage row diverges from golden: txs %d/%d rejected %d/%d",
				res.Chain.CommittedTxs, pt.CommittedTxs, res.Rejected, pt.RejectedMsgs)
		}
		eq(t, "virtual_s", res.Duration.Seconds(), pt.VirtualSecs)
		eq(t, "throughput_Bps", res.Chain.ThroughputBps, pt.ThroughputBps)
		forged := protocol.CountForged(res.Chain.Logs, spec.Workload.TxSize, res.Chain.SubmittedTxs)
		if safe := forged == 0; safe != pt.HonestSafe {
			t.Errorf("honest-safety verdict flipped: got %v, golden %v", safe, pt.HonestSafe)
		}
	}
	if matched != 1 {
		t.Fatalf("matched %d golden rows, want 1", matched)
	}
}

// TestGoldenSweepsParallelDeterminism is the sweep engine's acceptance
// gate: every committed BENCH trajectory must reproduce bit-identically
// at -parallel 1 and -parallel 8. Per-cell seeds are a pure function of
// grid coordinates and each cell owns its scheduler/channel/RNGs (the
// one shared structure, crypto.DealCached, is keyed and race-safe), so
// worker count and completion order cannot leak into results. Only the
// per-row elapsed_ms wall-clock metadata is exempt — it is the one field
// documented as volatile.
func TestGoldenSweepsParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates all six BENCH trajectories twice")
	}
	if raceEnabled {
		t.Skip("full regenerations are ~10x slower under -race; the smoke sweeps cover the same concurrent paths")
	}
	cases := []struct {
		file string
		run  func(seed int64, workers int) (any, error)
	}{
		// Epochs per sweep match the regeneration commands in
		// EXPERIMENTS.md (chain-epochs 10/12/8/4/12/6).
		{"BENCH_chain.json", func(seed int64, w int) (any, error) {
			return bench.ChainThroughput(seed, 10, sweep.Options{Workers: w})
		}},
		{"BENCH_faults.json", func(seed int64, w int) (any, error) {
			return bench.FaultSweep(seed, 12, sweep.Options{Workers: w})
		}},
		{"BENCH_byz.json", func(seed int64, w int) (any, error) {
			return bench.ByzSweep(seed, 8, sweep.Options{Workers: w})
		}},
		{"BENCH_mhchain.json", func(seed int64, w int) (any, error) {
			return bench.MHChainSweep(seed, 4, sweep.Options{Workers: w})
		}},
		{"BENCH_alea.json", func(seed int64, w int) (any, error) {
			return bench.AleaSweep(seed, 12, sweep.Options{Workers: w})
		}},
		{"BENCH_traffic.json", func(seed int64, w int) (any, error) {
			return bench.TrafficSweep(seed, 6, sweep.Options{Workers: w})
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.file, func(t *testing.T) {
			t.Parallel()
			golden := loadGolden(t, tc.file)
			want := make([]map[string]any, len(golden.Points))
			for i, raw := range golden.Points {
				want[i] = canonicalPoint(t, raw)
			}
			for _, workers := range []int{1, 8} {
				rows, err := tc.run(golden.Seed, workers)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				raws := marshalPoints(t, rows)
				if len(raws) != len(want) {
					t.Fatalf("workers=%d: got %d rows, golden has %d", workers, len(raws), len(want))
				}
				for i, raw := range raws {
					got := canonicalPoint(t, raw)
					if !reflect.DeepEqual(got, want[i]) {
						t.Errorf("workers=%d row %d diverges from golden:\n got  %v\n want %v",
							workers, i, got, want[i])
					}
				}
			}
		})
	}
}

// canonicalPoint decodes one trajectory point and strips the documented
// volatile field (elapsed_ms is wall-clock sweep metadata, not a
// simulated outcome).
func canonicalPoint(t *testing.T, raw json.RawMessage) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	delete(m, "elapsed_ms")
	return m
}

// marshalPoints round-trips a sweep's row slice through JSON, yielding
// the same representation the committed trajectory files use.
func marshalPoints(t *testing.T, rows any) []json.RawMessage {
	t.Helper()
	blob, err := json.Marshal(rows)
	if err != nil {
		t.Fatal(err)
	}
	var raws []json.RawMessage
	if err := json.Unmarshal(blob, &raws); err != nil {
		t.Fatal(err)
	}
	return raws
}
