// Package repro reproduces "Asynchronous BFT Consensus Made Wireless"
// (ICDCS 2025): the ConsensusBatcher packet-batching protocol, wireless
// adaptations of HoneyBadgerBFT, BEAT and Dumbo, the lightweight threshold
// cryptography they need, and a deterministic wireless-network simulator
// that stands in for the paper's LoRa/STM32 testbed.
//
// Layout:
//
//	internal/sim        deterministic discrete-event scheduler + CPU model
//	internal/wireless   shared-medium CSMA channel (airtime, loss, clusters)
//	internal/packet     ConsensusBatcher wire format (sections, NACK bitmaps)
//	internal/core       the batching transport (the paper's contribution)
//	                    plus the epoch mux behind the SMR pipeline
//	internal/crypto     threshold signatures / coin / encryption, PK schemes
//	internal/component  RBC, PRBC, CBC, Bracha ABA, Cachin ABA, decryptor
//	internal/protocol   HoneyBadgerBFT, BEAT, Dumbo epoch engines; the
//	                    Chain SMR engine (pipelined replicated log)
//	internal/run        the unified experiment API: run.Run(run.Spec) over
//	                    Topology (single-hop | clustered) x Workload
//	                    (one-shot | chain), incl. clustered chained SMR
//	internal/sweep      deterministic parallel grid engine for sweeps
//	internal/bench      experiment registry: per-table/figure grids
//	cmd/...             CLI tools; examples/... runnable demos
//
// The benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation; see DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-vs-measured results.
package repro
