//go:build !race

package repro

// raceEnabled reports that the race detector is not active; see
// race_on_test.go.
const raceEnabled = false
