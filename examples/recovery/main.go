// Recovery: crash a replica mid-run and watch it rejoin the replicated
// log. Node 2 goes down around epoch 5, comes back around epoch 10 with
// only its stable storage (committed log, mempool digests, keys), and
// catches up through the epoch mux's unknown-epoch signal and NACK
// retransmission — converging to the same gap-free log as everyone else.
//
//	go run ./examples/recovery
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/protocol"
	"repro/internal/run"
	"repro/internal/scenario"
)

func main() {
	spec := run.Defaults(protocol.HoneyBadger, protocol.CoinSig)
	spec.Workload = run.Chain(14)
	spec.Seed = 42
	// Peers serve catch-up repairs only for epochs their GC hasn't closed:
	// keep the window as long as the planned outage.
	spec.Workload.GCLag = spec.Workload.Epochs
	spec.Scenario = scenario.Plan{}.Then(
		scenario.CrashAt(30*time.Minute, 2),   // ~epoch 5 at the default cadence
		scenario.RecoverAt(60*time.Minute, 2), // ~epoch 10
	)

	fmt.Println("4-node wireless HoneyBadgerBFT-SC chain; node 2 crashes at 30m, recovers at 60m")
	res, err := run.Run(spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nall %d epochs committed in %v of simulated time\n",
		res.Chain.EpochsCommitted, res.Duration.Round(time.Second))
	for i, nodeLog := range res.Chain.Logs {
		txs := 0
		for _, e := range nodeLog {
			txs += len(e.Txs)
		}
		role := ""
		if i == 2 {
			role = "  <- crashed at 30m, recovered at 60m, caught up"
		}
		fmt.Printf("  node %d: %2d epochs, %3d txs committed%s\n", i, len(nodeLog), txs, role)
	}
	fmt.Printf("\nthroughput %.2f B/s; %d channel accesses (%d collisions)\n",
		res.Chain.ThroughputBps, res.Accesses, res.Collisions)
	fmt.Println("\nthe recovered replica rejoined mid-run: frames for epochs it had never")
	fmt.Println("opened tripped core.Mux.OnUnknownEpoch, the chain re-opened its pipeline")
	fmt.Println("at the commit frontier, and peers' quiesced epochs answered its NACKs")
	fmt.Println("with the proposals, votes, and decryption shares it lost.")
}
