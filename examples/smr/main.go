// SMR demo: run wireless HoneyBadgerBFT-SC as a replicated log — 24 epochs
// of continuous client traffic on the lossy LoRa-class channel — and show
// what epoch pipelining buys over strictly sequential epochs.
//
//	go run ./examples/smr
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/protocol"
	"repro/internal/run"
)

func runDepth(depth int, batched bool) *run.Report {
	spec := run.Defaults(protocol.HoneyBadger, protocol.CoinSig)
	spec.Workload = run.Chain(24)
	spec.Workload.Window = depth
	spec.Workload.TxInterval = 2 * time.Second // sustained client traffic
	spec.Batched = batched
	spec.Seed = 42
	res, err := run.Run(spec)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func show(res *run.Report) {
	c := res.Chain
	fmt.Printf("  committed: %d epochs, %d unique txs (%d duplicate proposals suppressed)\n",
		c.EpochsCommitted, c.CommittedTxs, c.DedupDropped)
	fmt.Printf("  virtual time: %v  ->  %.2f committed B/s\n",
		res.Duration.Round(time.Second), c.ThroughputBps)
	fmt.Printf("  epoch cadence: %v between commits; commit latency %v\n",
		(res.Duration / time.Duration(c.EpochsCommitted)).Round(time.Millisecond),
		c.MeanCommitLatency.Round(time.Millisecond))
	fmt.Printf("  channel accesses: %d\n", res.Accesses)
}

func main() {
	fmt.Println("wireless HoneyBadgerBFT-SC as a replicated log")
	fmt.Println("4 nodes, 2% frame loss, every client tx broadcast to all mempools")

	fmt.Println("\nsequential epochs (pipeline depth 1):")
	seq := runDepth(1, true)
	show(seq)

	fmt.Println("\npipelined epochs (depth 3 — epoch e+1 disseminates while e decides):")
	pipe := runDepth(3, true)
	show(pipe)

	fmt.Println("\npipelined, but ConsensusBatcher disabled (baseline transport):")
	base := runDepth(3, false)
	show(base)

	fmt.Printf("\npipelining speedup over sequential: %.0f%% more committed bytes/sec\n",
		100*(pipe.Chain.ThroughputBps/seq.Chain.ThroughputBps-1))
	fmt.Printf("batching speedup at depth 3 over baseline: %.1fx fewer channel accesses\n",
		float64(base.Accesses)/float64(pipe.Accesses))

	// The logs are checked inside run.Run; show a slice of the total order.
	fmt.Println("\nfirst committed epochs of the replicated log (node 0):")
	for _, entry := range pipe.Chain.Logs[0][:3] {
		fmt.Printf("  epoch %d: %d txs\n", entry.Epoch, len(entry.Txs))
	}
}
