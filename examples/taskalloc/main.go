// Task allocation: the paper motivates wireless asynchronous BFT with
// robot swarms that must agree before acting (dynamic task allocation,
// search and rescue). This example runs a 4-robot swarm that repeatedly
// agrees on a task assignment despite one crashed robot and a lossy
// channel, then derives the allocation from the agreed transaction set.
//
//	go run ./examples/taskalloc
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/protocol"
	"repro/internal/scenario"
)

// Tasks the swarm must partition among robots each round.
var tasks = []string{"scan-sector-A", "scan-sector-B", "relay-uplink", "charge-dock"}

func main() {
	opts := protocol.DefaultOptions(protocol.BEAT, protocol.CoinFlip) // BEAT: the paper's best performer
	opts.Epochs = 3
	opts.BatchSize = len(tasks)
	opts.Seed = 7
	opts.Net.LossProb = 0.05          // noisy field conditions
	opts.Scenario = scenario.Crash(3) // robot 3 is down from the start
	opts.Deadline = 4 * time.Hour     // generous virtual-time bound

	fmt.Println("4-robot swarm, BEAT consensus, robot 3 crashed, 5% frame loss")
	res, err := protocol.Run(opts)
	if err != nil {
		log.Fatal(err)
	}

	for epoch, lat := range res.EpochLatencies {
		fmt.Printf("\nround %d agreed in %v (simulated)\n", epoch, lat.Round(time.Millisecond))
		// Every live robot derives the same deterministic allocation from
		// the agreed epoch output (here: rotate tasks by epoch).
		for t, task := range tasks {
			robot := (t + epoch) % 3 // only robots 0..2 are alive
			fmt.Printf("  %-14s -> robot %d\n", task, robot)
		}
	}
	fmt.Printf("\n%d task-assignment transactions committed at %.1f TPM despite the crash\n",
		res.DeliveredTxs, res.TPM)
}
