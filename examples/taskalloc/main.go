// Task allocation: the paper motivates wireless asynchronous BFT with
// robot swarms that must agree before acting (dynamic task allocation,
// search and rescue). This example runs a 4-robot swarm that repeatedly
// agrees on a task assignment despite one crashed robot and a lossy
// channel, then derives the allocation from the agreed transaction set.
//
//	go run ./examples/taskalloc
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/protocol"
	"repro/internal/run"
	"repro/internal/scenario"
)

// Tasks the swarm must partition among robots each round.
var tasks = []string{"scan-sector-A", "scan-sector-B", "relay-uplink", "charge-dock"}

func main() {
	spec := run.Defaults(protocol.BEAT, protocol.CoinFlip) // BEAT: the paper's best performer
	spec.Workload = run.OneShot(3)
	spec.Workload.BatchSize = len(tasks)
	spec.Seed = 7
	spec.Net.LossProb = 0.05          // noisy field conditions
	spec.Scenario = scenario.Crash(3) // robot 3 is down from the start
	spec.Deadline = 4 * time.Hour     // generous virtual-time bound

	fmt.Println("4-robot swarm, BEAT consensus, robot 3 crashed, 5% frame loss")
	res, err := run.Run(spec)
	if err != nil {
		log.Fatal(err)
	}

	for epoch, lat := range res.OneShot.EpochLatencies {
		fmt.Printf("\nround %d agreed in %v (simulated)\n", epoch, lat.Round(time.Millisecond))
		// Every live robot derives the same deterministic allocation from
		// the agreed epoch output (here: rotate tasks by epoch).
		for t, task := range tasks {
			robot := (t + epoch) % 3 // only robots 0..2 are alive
			fmt.Printf("  %-14s -> robot %d\n", task, robot)
		}
	}
	fmt.Printf("\n%d task-assignment transactions committed at %.1f TPM despite the crash\n",
		res.OneShot.DeliveredTxs, res.OneShot.TPM)
}
