// Multi-hop: the paper's Sec. V-B two-tier deployment — 16 nodes in 4
// single-hop clusters, local consensus per cluster, a leader per cluster
// running global consensus on a separate channel, and dissemination of the
// global order back into the clusters.
//
//	go run ./examples/multihop
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/protocol"
)

func main() {
	opts := protocol.DefaultMultihopOptions(protocol.HoneyBadger, protocol.CoinSig)
	opts.Single.Epochs = 2
	opts.Single.BatchSize = 4
	opts.Single.Seed = 11

	fmt.Println("16 nodes, 4 clusters, wireless HoneyBadgerBFT-SC, two-tier consensus")
	res, err := protocol.RunMultihop(opts)
	if err != nil {
		log.Fatal(err)
	}

	for epoch, lat := range res.EpochLatencies {
		fmt.Printf("  epoch %d: global order at every node after %v\n",
			epoch, lat.Round(time.Millisecond))
	}
	fmt.Printf("\nthroughput: %.1f TPM across all clusters (%d txs)\n", res.TPM, res.DeliveredTxs)
	fmt.Printf("channel accesses: %d local + %d global\n", res.LocalAccesses, res.GlobalAccesses)
	fmt.Println("\nclusters run in parallel on separate channels; only the 4 leaders")
	fmt.Println("contend on the global channel, which is why per-cluster contention")
	fmt.Println("stays at single-hop levels (the paper's Fig. 13b regime).")
}
