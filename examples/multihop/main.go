// Multi-hop: the paper's Sec. V-B two-tier deployment — 16 nodes in 4
// single-hop clusters, local consensus per cluster, a leader per cluster
// running global consensus on a separate channel, and dissemination of the
// global order back into the clusters. In run.Spec terms this is the
// Clustered topology crossed with the default one-shot workload.
//
//	go run ./examples/multihop
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/protocol"
	"repro/internal/run"
)

func main() {
	spec := run.Defaults(protocol.HoneyBadger, protocol.CoinSig)
	spec.Topology = run.Clustered(4, 4)
	spec.Workload = run.OneShot(2)
	spec.Seed = 11

	fmt.Println("16 nodes, 4 clusters, wireless HoneyBadgerBFT-SC, two-tier consensus")
	res, err := run.Run(spec)
	if err != nil {
		log.Fatal(err)
	}

	for epoch, lat := range res.OneShot.EpochLatencies {
		fmt.Printf("  epoch %d: global order at every node after %v\n",
			epoch, lat.Round(time.Millisecond))
	}
	fmt.Printf("\nthroughput: %.1f TPM across all clusters (%d txs)\n", res.OneShot.TPM, res.OneShot.DeliveredTxs)
	fmt.Printf("channel accesses: %d local + %d global\n", res.Tiers.LocalAccesses, res.Tiers.GlobalAccesses)
	fmt.Println("\nclusters run in parallel on separate channels; only the 4 leaders")
	fmt.Println("contend on the global channel, which is why per-cluster contention")
	fmt.Println("stays at single-hop levels (the paper's Fig. 13b regime).")
}
