// Byzantine: run the replicated log with an actively malicious replica
// and watch the defenses hold. Node 3 is Byzantine from the start — first
// a garbage-spewing one (malformed proposals, undecodable threshold
// shares), then an equivocator (conflicting proposals and votes to
// different peers) — while the three honest nodes must still commit
// identical gap-free logs containing only genuine client transactions.
//
//	go run ./examples/byzantine
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/byz"
	"repro/internal/protocol"
	"repro/internal/run"
	"repro/internal/scenario"
)

func main() {
	for _, behavior := range []string{byz.NameGarbage, byz.NameEquivocate} {
		runBehavior(behavior)
	}
	fmt.Println("every adversarial contribution was either verified away (rejected")
	fmt.Println("shares, certificates, proofs), outvoted by the 2f+1 honest quorums,")
	fmt.Println("or dropped as a malformed batch at the commit layer — the honest log")
	fmt.Println("never saw a forged byte. See the threat model in DESIGN.md.")
}

func runBehavior(behavior string) {
	spec := run.Defaults(protocol.HoneyBadger, protocol.CoinSig)
	spec.Workload = run.Chain(4)
	spec.Workload.GCLag = spec.Workload.Epochs
	spec.Seed = 7
	spec.Scenario = scenario.Byz(behavior, 3)

	fmt.Printf("4-node wireless HoneyBadgerBFT-SC chain; node 3 runs %q (scenario %q)\n",
		behavior, spec.Scenario.String())
	res, err := run.Run(spec)
	if err != nil {
		log.Fatal(err)
	}

	if forged := protocol.CountForged(res.Chain.Logs, spec.Workload.TxSize, res.Chain.SubmittedTxs); forged > 0 {
		log.Fatalf("SAFETY VIOLATION: %d forged transactions committed", forged)
	}
	fmt.Printf("  %d epochs committed in %v: honest logs identical, gap-free, zero forged txs\n",
		res.Chain.EpochsCommitted, res.Duration.Round(time.Second))
	fmt.Printf("  %d Byzantine contributions rejected by share/proof/proposal verification\n\n",
		res.Rejected)
}
