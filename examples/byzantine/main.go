// Byzantine: run the replicated log with an actively malicious replica
// and watch the defenses hold. Node 3 is Byzantine from the start — first
// a garbage-spewing one (malformed proposals, undecodable threshold
// shares), then an equivocator (conflicting proposals and votes to
// different peers) — while the three honest nodes must still commit
// identical gap-free logs containing only genuine client transactions.
//
//	go run ./examples/byzantine
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/byz"
	"repro/internal/protocol"
	"repro/internal/scenario"
)

func main() {
	for _, behavior := range []string{byz.NameGarbage, byz.NameEquivocate} {
		run(behavior)
	}
	fmt.Println("every adversarial contribution was either verified away (rejected")
	fmt.Println("shares, certificates, proofs), outvoted by the 2f+1 honest quorums,")
	fmt.Println("or dropped as a malformed batch at the commit layer — the honest log")
	fmt.Println("never saw a forged byte. See the threat model in DESIGN.md.")
}

func run(behavior string) {
	opts := protocol.DefaultChainOptions(protocol.HoneyBadger, protocol.CoinSig)
	opts.Seed = 7
	opts.TargetEpochs = 4
	opts.GCLag = opts.TargetEpochs
	opts.Scenario = scenario.Byz(behavior, 3)

	fmt.Printf("4-node wireless HoneyBadgerBFT-SC chain; node 3 runs %q (scenario %q)\n",
		behavior, opts.Scenario.String())
	res, err := protocol.ChainRun(opts)
	if err != nil {
		log.Fatal(err)
	}

	if forged := protocol.CountForged(res.Logs, opts.TxSize, res.SubmittedTxs); forged > 0 {
		log.Fatalf("SAFETY VIOLATION: %d forged transactions committed", forged)
	}
	fmt.Printf("  %d epochs committed in %v: honest logs identical, gap-free, zero forged txs\n",
		res.EpochsCommitted, res.Duration.Round(time.Second))
	fmt.Printf("  %d Byzantine contributions rejected by share/proof/proposal verification\n\n",
		res.Rejected)
}
