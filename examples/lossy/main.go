// Lossy-channel study: sweep frame-loss probability and watch the
// NACK-based reliability machinery (Sec. IV-B1) hold latency together.
// Asynchronous BFT never relies on timeouts for safety, so consensus
// completes at every loss level — it just takes longer.
//
//	go run ./examples/lossy
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/protocol"
	"repro/internal/run"
)

func main() {
	fmt.Println("wireless HoneyBadgerBFT-SC vs frame loss (4 nodes, batch 4)")
	fmt.Printf("%8s %14s %12s %12s\n", "loss", "latency", "TPM", "accesses")
	for _, loss := range []float64{0, 0.05, 0.10, 0.20} {
		spec := run.Defaults(protocol.HoneyBadger, protocol.CoinSig)
		spec.Workload = run.OneShot(1)
		spec.Seed = 5
		spec.Net.LossProb = loss
		spec.Deadline = 8 * time.Hour
		res, err := run.Run(spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%7.0f%% %14v %12.1f %12d\n",
			loss*100, res.OneShot.MeanLatency.Round(time.Millisecond), res.OneShot.TPM, res.Accesses)
	}
	fmt.Println("\nhigher loss -> more NACK retransmissions -> more channel accesses")
	fmt.Println("and higher latency, but consensus always completes (no timing assumptions).")
}
