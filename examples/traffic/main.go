// Traffic demo: drive one engine with open-loop client load — arrivals
// keep coming at a configured rate whether or not the chain keeps up —
// and watch the saturation knee form: committed throughput plateaus at
// channel capacity, per-transaction tail latency climbs, and the bounded
// mempool starts rejecting submissions instead of growing without limit.
//
//	go run ./examples/traffic
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/protocol"
	"repro/internal/run"
	"repro/internal/traffic"
)

func runRate(rate float64) *run.Report {
	spec := run.Defaults(protocol.HoneyBadger, protocol.CoinSig)
	spec.Workload = run.Chain(4)
	spec.Workload.GCLag = 4
	spec.Workload.Arrival = traffic.Pattern{
		Kind:    traffic.Poisson,
		Rate:    rate,
		Clients: 1000,
	}
	// 2 KiB admission cap: overload becomes counted rejections, not an
	// unbounded backlog.
	spec.Workload.Mempool.MaxPendingBytes = 2048
	spec.Seed = 42
	res, err := run.Run(spec)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Println("open-loop Poisson load on HoneyBadgerBFT-SC: 4 nodes, 4 chained epochs,")
	fmt.Println("1000 simulated clients, 2 KiB mempool admission cap per node")

	// The measured commit capacity on this channel is ~0.025 tx/s, so the
	// rates step from well under the knee to far past it.
	rates := []float64{0.005, 0.02, 0.08, 0.32}

	fmt.Printf("\n%8s %8s %10s %8s %8s %8s %8s %8s\n",
		"rate", "offered", "committed", "B/s", "p50", "p99", "reject", "pool")
	var overload *run.Report
	for _, r := range rates {
		res := runRate(r)
		c := res.Chain
		p50, p99 := time.Duration(0), time.Duration(0)
		if c.TxLatency != nil {
			p50, p99 = c.TxLatency.P50, c.TxLatency.P99
		}
		fmt.Printf("%8g %8d %10d %8.2f %8v %8v %8d %8d\n",
			r, c.SubmittedTxs, c.CommittedTxs, c.ThroughputBps,
			p50.Round(time.Second), p99.Round(time.Second),
			c.AdmissionRejected, c.PeakMempoolBytes)
		overload = res
	}

	// Bin the overload cell's raw latency sample to show where the tail
	// lives (run.Histogram log-spaces the bins).
	fmt.Printf("\nsubmit->commit latency at %g tx/s (log-spaced bins):\n", rates[len(rates)-1])
	for _, b := range run.Histogram(overload.Chain.TxLatencySample, 6) {
		fmt.Printf("  <= %8v  %s\n", b.UpTo.Round(time.Second), strings.Repeat("#", b.Count))
	}

	fmt.Println("\nThroughput flattens while offered load grows 4x per step: that is the")
	fmt.Println("knee. Past it the cap converts unbounded queueing into rejections and")
	fmt.Println("the committed transactions' tail latency keeps climbing.")
}
