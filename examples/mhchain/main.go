// Clustered chain: the matrix cell the unified run API unlocked —
// pipelined multi-epoch SMR over the paper's two-tier wireless
// deployment. Four clusters of four order their own client streams into
// local replicated logs; rotating leaders collect f+1 threshold-signature
// shares over each committed epoch's cut, and the cluster's uplink seat
// combines them into a cut certificate before a second chain across the
// four seats pipelines the certified cuts into one cross-cluster total
// order, beaconed back down so every follower tracks the global frontier.
// The run is adversarial on both axes: cluster 3's member 15 turns its
// relay seat Byzantine ("forgecut" — cut records rewritten to claim a
// cluster it does not control), and midway through the relay leader of
// cluster 0 crashes, forcing the taking-over relay to re-collect shares
// for the cuts the crashed leader held. Every forged cut is rejected by
// certificate verification at every honest seat; zero enter the order.
//
//	go run ./examples/mhchain
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/byz"
	"repro/internal/protocol"
	"repro/internal/run"
	"repro/internal/scenario"
)

func main() {
	spec := run.Defaults(protocol.HoneyBadger, protocol.CoinSig)
	spec.Topology = run.Clustered(4, 4)
	spec.Workload = run.Chain(5)
	spec.Workload.TxInterval = 2 * time.Second
	spec.Workload.GCLag = spec.Workload.Epochs // peers hold the outage's epochs
	spec.Seed = 3
	spec.Scenario = scenario.Byz(byz.NameForgeCut, 15).Then( // cluster 3's seat forges cuts
		scenario.CrashAt(15*time.Minute, 0),   // cluster 0's epoch-0 relay leader
		scenario.RecoverAt(45*time.Minute, 0), // back for the tail of the run
	)

	fmt.Println("16 nodes in 4 clusters, HoneyBadgerBFT-SC chains on both tiers")
	fmt.Println("cluster 3's uplink seat forges cut records for clusters it does not control;")
	fmt.Println("node 0 (a rotating relay leader) crashes at 15m, recovers at 45m")
	res, err := run.Run(spec)
	if err != nil {
		log.Fatal(err)
	}

	c, tr := res.Chain, res.Tiers
	fmt.Printf("\nper-cluster logs: %d epochs committed by every honest node in %v\n",
		c.EpochsCommitted, res.Duration.Round(time.Second))
	fmt.Printf("cross-cluster order: %d certified cluster cuts pipelined into %d global entries\n",
		tr.OrderedCuts, tr.GlobalEntries)
	fmt.Printf("cut certificates: %d shares signed, %d verified, %d combines, %d cert verifies\n",
		tr.CutCerts.Signs, tr.CutCerts.ShareVerifies, tr.CutCerts.Combines, tr.CutCerts.Verifies)
	fmt.Printf("forged cuts rejected across the seats: %d (zero entered the cut order)\n",
		tr.CutCerts.RejectedCuts)
	fmt.Printf("committed client txs: %d (%.2f B/s) with %d duplicates suppressed\n",
		c.CommittedTxs, c.ThroughputBps, c.DedupDropped)
	fmt.Printf("channel accesses: %d local + %d global\n", tr.LocalAccesses, tr.GlobalAccesses)

	for cl := 0; cl < 4; cl++ {
		ref := cl * 4 // member 0 of each cluster is honest (15 is the adversary)
		txs := 0
		for _, entry := range c.Logs[ref] {
			txs += len(entry.Txs)
		}
		fmt.Printf("  cluster %d: %d epochs, %d txs in its local log\n",
			cl, len(c.Logs[ref]), txs)
	}
	fmt.Println("\nrun.Run verified all of it: local agreement inside every cluster,")
	fmt.Println("agreement across the untainted seats' global logs, a valid f+1")
	fmt.Println("threshold certificate on every ordered cut, every certified cut")
	fmt.Println("matching the true committed entry it claims, and every follower's")
	fmt.Println("frontier beacon consistent with the global order — despite the forging")
	fmt.Println("seat and the relay leader's outage.")
}
