// Clustered chain: the matrix cell the unified run API unlocked —
// pipelined multi-epoch SMR over the paper's two-tier wireless
// deployment. Four clusters of four order their own client streams into
// local replicated logs; rotating leaders hand each committed epoch's cut
// to their cluster's uplink seat; and a second chain across the four
// seats pipelines those cuts into one cross-cluster total order, beaconed
// back down so every follower tracks the global frontier. Midway through,
// the relay leader of cluster 0 crashes: relay duty fails over, the
// cluster's cuts keep flowing, and the node catches back up after
// recovery.
//
//	go run ./examples/mhchain
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/protocol"
	"repro/internal/run"
	"repro/internal/scenario"
)

func main() {
	spec := run.Defaults(protocol.HoneyBadger, protocol.CoinSig)
	spec.Topology = run.Clustered(4, 4)
	spec.Workload = run.Chain(5)
	spec.Workload.TxInterval = 2 * time.Second
	spec.Workload.GCLag = spec.Workload.Epochs // peers hold the outage's epochs
	spec.Seed = 3
	spec.Scenario = scenario.Plan{}.Then(
		scenario.CrashAt(15*time.Minute, 0),   // cluster 0's epoch-0 relay leader
		scenario.RecoverAt(45*time.Minute, 0), // back for the tail of the run
	)

	fmt.Println("16 nodes in 4 clusters, HoneyBadgerBFT-SC chains on both tiers")
	fmt.Println("node 0 (a rotating relay leader) crashes at 15m, recovers at 45m")
	res, err := run.Run(spec)
	if err != nil {
		log.Fatal(err)
	}

	c, tr := res.Chain, res.Tiers
	fmt.Printf("\nper-cluster logs: %d epochs committed by every honest node in %v\n",
		c.EpochsCommitted, res.Duration.Round(time.Second))
	fmt.Printf("cross-cluster order: %d cluster cuts pipelined into %d global entries\n",
		tr.OrderedCuts, tr.GlobalEntries)
	fmt.Printf("committed client txs: %d (%.2f B/s) with %d duplicates suppressed\n",
		c.CommittedTxs, c.ThroughputBps, c.DedupDropped)
	fmt.Printf("channel accesses: %d local + %d global\n", tr.LocalAccesses, tr.GlobalAccesses)

	for cl := 0; cl < 4; cl++ {
		txs := 0
		for _, entry := range c.Logs[cl*4] {
			txs += len(entry.Txs)
		}
		fmt.Printf("  cluster %d: %d epochs, %d txs in its local log\n",
			cl, len(c.Logs[cl*4]), txs)
	}
	fmt.Println("\nrun.Run verified all of it: local agreement inside every cluster,")
	fmt.Println("agreement across the seats' global logs, every cut matching the true")
	fmt.Println("committed entry it claims, and every follower's frontier beacon")
	fmt.Println("consistent with the global order — despite the relay leader's outage.")
}
