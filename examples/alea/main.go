// Alea demo: run the same sustained SMR workload through all three
// consensus engines — HoneyBadgerBFT-SC (N parallel ABAs), Dumbo-SC
// (serial ABA over CBC candidates), and Alea-BFT (VCBC queues + serial
// repropose-able ABA) — and compare what the agreement structure costs
// on the wireless channel.
//
//	go run ./examples/alea
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/protocol"
	"repro/internal/run"
)

func runEngine(kind protocol.Kind) *run.Report {
	spec := run.Defaults(kind, protocol.CoinSig)
	spec.Workload = run.Chain(8)
	spec.Workload.TxInterval = time.Second
	spec.Seed = 42
	res, err := run.Run(spec)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Println("three engines, one workload: 4 nodes, 2% frame loss, 8 chained epochs")
	fmt.Println("(signature coin everywhere; HB additionally threshold-encrypts proposals)")

	engines := []struct {
		kind protocol.Kind
		note string
	}{
		{protocol.HoneyBadger, "N parallel ABA instances per epoch"},
		{protocol.DumboKind, "serial ABA over CBC-synced candidates, stops at first acceptance"},
		{protocol.AleaKind, "VCBC priority queues + serial ABA, stops at 2f+1 accepted queues"},
	}

	fmt.Printf("\n%-12s %7s %6s %10s %12s %10s\n",
		"engine", "epochs", "txs", "B/s", "latency", "accesses")
	for _, e := range engines {
		res := runEngine(e.kind)
		c := res.Chain
		fmt.Printf("%-12s %7d %6d %10.2f %12v %10d   (%s)\n",
			e.kind, c.EpochsCommitted, c.CommittedTxs, c.ThroughputBps,
			c.MeanCommitLatency.Round(time.Second), res.Accesses, e.note)
	}

	fmt.Println("\nEvery engine commits the same gap-free total order (checked inside")
	fmt.Println("run.Run); the differences above are pure agreement-structure cost.")
}
