// Quickstart: run one epoch of wireless HoneyBadgerBFT-SC on a simulated
// 4-node LoRa network and print what happened.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/protocol"
	"repro/internal/run"
)

func main() {
	// run.Defaults mirrors the paper's single-hop setup: N=4 nodes on a
	// shared LoRa-class channel, ConsensusBatcher enabled, light crypto
	// (the secp160r1+BN158 analogue the paper selects). Topology and
	// Workload are the two experiment axes; the defaults select the
	// SingleHop × OneShot cell.
	spec := run.Defaults(protocol.HoneyBadger, protocol.CoinSig)
	spec.Workload = run.OneShot(1)
	spec.Workload.BatchSize = 4 // four transactions per node's proposal
	spec.Seed = 42

	res, err := run.Run(spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("wireless HoneyBadgerBFT-SC, 4 nodes, single hop")
	fmt.Printf("  consensus latency: %v of simulated time\n", res.OneShot.MeanLatency.Round(time.Millisecond))
	fmt.Printf("  transactions committed: %d\n", res.OneShot.DeliveredTxs)
	fmt.Printf("  throughput: %.1f transactions/minute\n", res.OneShot.TPM)
	fmt.Printf("  channel accesses: %d (collisions: %d)\n", res.Accesses, res.Collisions)
	fmt.Printf("  bytes on air: %d\n", res.BytesOnAir)

	// The same epoch without ConsensusBatcher: every consensus component
	// instance contends for the channel separately.
	spec.Batched = false
	base, err := run.Run(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsame epoch with batching disabled (baseline):")
	fmt.Printf("  consensus latency: %v (%.0f%% slower)\n",
		base.OneShot.MeanLatency.Round(time.Millisecond),
		100*(base.OneShot.MeanLatency.Seconds()/res.OneShot.MeanLatency.Seconds()-1))
	fmt.Printf("  channel accesses: %d (%.1fx more)\n",
		base.Accesses, float64(base.Accesses)/float64(res.Accesses))
}
