// Quickstart: run one epoch of wireless HoneyBadgerBFT-SC on a simulated
// 4-node LoRa network and print what happened.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/protocol"
)

func main() {
	// The defaults mirror the paper's single-hop setup: N=4 nodes on a
	// shared LoRa-class channel, ConsensusBatcher enabled, light crypto
	// (the secp160r1+BN158 analogue the paper selects).
	opts := protocol.DefaultOptions(protocol.HoneyBadger, protocol.CoinSig)
	opts.Epochs = 1
	opts.BatchSize = 4 // four transactions per node's proposal
	opts.Seed = 42

	res, err := protocol.Run(opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("wireless HoneyBadgerBFT-SC, 4 nodes, single hop")
	fmt.Printf("  consensus latency: %v of simulated time\n", res.MeanLatency.Round(time.Millisecond))
	fmt.Printf("  transactions committed: %d\n", res.DeliveredTxs)
	fmt.Printf("  throughput: %.1f transactions/minute\n", res.TPM)
	fmt.Printf("  channel accesses: %d (collisions: %d)\n", res.Accesses, res.Collisions)
	fmt.Printf("  bytes on air: %d\n", res.BytesOnAir)

	// The same epoch without ConsensusBatcher: every consensus component
	// instance contends for the channel separately.
	opts.Batched = false
	base, err := protocol.Run(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsame epoch with batching disabled (baseline):")
	fmt.Printf("  consensus latency: %v (%.0f%% slower)\n",
		base.MeanLatency.Round(time.Millisecond),
		100*(base.MeanLatency.Seconds()/res.MeanLatency.Seconds()-1))
	fmt.Printf("  channel accesses: %d (%.1fx more)\n",
		base.Accesses, float64(base.Accesses)/float64(res.Accesses))
}
