package repro

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestNoLegacyDriverAPI is the migration gate for the run.Spec redesign:
// the three legacy drivers (protocol.Run, protocol.RunMultihop,
// protocol.ChainRun) and their per-driver Options builders were deleted,
// and no Go source may reference them — internal/run is the only entry
// point for executing experiments. The gate scans text rather than
// relying on the compiler so that a re-introduced adapter (which would
// compile fine) still fails CI with a named signal.
func TestNoLegacyDriverAPI(t *testing.T) {
	legacy := regexp.MustCompile(
		`protocol\.(Run|RunMultihop|ChainRun|Options|ChainOptions|MultihopOptions|Result|ChainResult|MultihopResult|DefaultOptions|DefaultChainOptions|DefaultMultihopOptions)\b`)
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == ".github" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || path == "api_gate_test.go" {
			return nil
		}
		raw, readErr := os.ReadFile(path)
		if readErr != nil {
			return readErr
		}
		for i, line := range strings.Split(string(raw), "\n") {
			if m := legacy.FindString(line); m != "" {
				t.Errorf("%s:%d references legacy driver API %s; use run.Run(run.Spec) instead", path, i+1, m)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The legacy entry points must also stay deleted from the protocol
	// package itself, not just unreferenced.
	decl := regexp.MustCompile(`func (Run|RunMultihop|ChainRun|DefaultOptions|DefaultChainOptions|DefaultMultihopOptions)\(`)
	matches, err := filepath.Glob(filepath.Join("internal", "protocol", "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range matches {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(raw), "\n") {
			if m := decl.FindString(line); m != "" {
				t.Errorf("%s:%d re-declares legacy driver entry point %q", path, i+1, m)
			}
		}
	}
}
