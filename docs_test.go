package repro

import (
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/byz"
	"repro/internal/protocol"
	"repro/internal/scenario"
)

// TestDocsFreshnessPackageComments fails when any internal/* package
// lacks a `// Package ...` godoc comment: the layer map in DESIGN.md and
// the godoc are the two entry points new readers get, and a silent
// package keeps falling out of both. CI runs this as the docs-freshness
// gate.
func TestDocsFreshnessPackageComments(t *testing.T) {
	pkgFiles := map[string][]string{} // dir -> non-test .go files
	err := filepath.WalkDir("internal", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			pkgFiles[dir] = append(pkgFiles[dir], path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	for dir, files := range pkgFiles {
		documented := false
		for _, f := range files {
			af, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.PackageClauseOnly)
			if err != nil {
				t.Fatalf("%s: %v", f, err)
			}
			if af.Doc != nil && strings.HasPrefix(af.Doc.Text(), "Package ") {
				documented = true
				break
			}
		}
		if !documented {
			t.Errorf("package %s has no `// Package ...` godoc comment in any file", dir)
		}
	}
}

// TestDocsFreshnessScenarioDSL fails when the scenario DSL grammar
// documented in EXPERIMENTS.md misses an event kind or a Byzantine
// behavior name — the docs drift this PR fixed must not reopen. The
// same check covers the Parse grammar comment and the wbft usage string,
// the two places PR 2's vocabulary additions were forgotten.
func TestDocsFreshnessScenarioDSL(t *testing.T) {
	for _, src := range []string{
		"EXPERIMENTS.md",
		filepath.Join("internal", "scenario", "parse.go"),
		filepath.Join("cmd", "wbft", "main.go"),
	} {
		raw, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		text := string(raw)
		for _, k := range scenario.Kinds() {
			if !strings.Contains(text, string(k)) {
				t.Errorf("%s does not mention scenario kind %q", src, k)
			}
		}
		for _, b := range byz.Names() {
			if !strings.Contains(text, b) {
				t.Errorf("%s does not mention Byzantine behavior %q", src, b)
			}
		}
	}
}

// TestDocsFreshnessEngines fails when a registered consensus engine is
// missing from the user-facing documentation or the wbft usage surface —
// the drift an engine registry makes possible: adding an engine touches
// one Go file, and nothing else would notice the docs staying stale.
func TestDocsFreshnessEngines(t *testing.T) {
	for _, src := range []string{
		"README.md",
		"DESIGN.md",
		"EXPERIMENTS.md",
		filepath.Join("cmd", "wbft", "main.go"),
	} {
		raw, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		text := string(raw)
		for _, k := range protocol.Kinds() {
			if !strings.Contains(text, string(k)) {
				t.Errorf("%s does not mention consensus engine %q", src, k)
			}
		}
	}
}
