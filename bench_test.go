package repro

import (
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/sweep"
)

// Each benchmark regenerates one table or figure of the paper's evaluation
// section. Custom metrics carry the simulated quantities: virtual_s is
// virtual (simulated) seconds of protocol latency, tpm is transactions per
// virtual minute. Run `go test -bench=. -benchmem` or use cmd/wbft-bench
// for the full printed tables.

func reportLatency(b *testing.B, name string, d time.Duration) {
	b.ReportMetric(d.Seconds(), name+"_virtual_s")
}

// BenchmarkTable1MessageOverhead regenerates Table I: message overhead per
// node for N=4 parallel components under wired/baseline/ConsensusBatcher.
func BenchmarkTable1MessageOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table1(int64(i)+1, sweep.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.MeasuredBatched, "pkts_"+r.Component[:3]+"_cb")
			}
		}
	}
}

// BenchmarkFig10aThresholdSigOps measures the real latency of threshold
// signature operations across parameter sets (Fig. 10a).
func BenchmarkFig10aThresholdSigOps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig10aThresholdSig(1, sweep.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10bThresholdCoinOps measures threshold coin-flipping
// operations across group sizes (Fig. 10b).
func BenchmarkFig10bThresholdCoinOps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig10bThresholdCoin(1, sweep.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10cSignatureSizes reports signature sizes (Fig. 10c).
func BenchmarkFig10cSignatureSizes(b *testing.B) {
	var rows []bench.SizeRow
	for i := 0; i < b.N; i++ {
		rows = bench.Fig10cSizes()
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.Bytes), r.Name+"_bytes")
	}
}

// BenchmarkFig10dCryptoImpact runs HoneyBadgerBFT-SC under light vs heavy
// crypto (Fig. 10d).
func BenchmarkFig10dCryptoImpact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig10dCryptoImpact(int64(i)+1, 1, []int{4}, sweep.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				reportLatency(b, r.Config[:5], r.Latency)
			}
		}
	}
}

// BenchmarkFig11aBroadcastParallelism sweeps broadcast parallelism
// (Fig. 11a).
func BenchmarkFig11aBroadcastParallelism(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig11aBroadcastParallelism(int64(i)+1, sweep.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Parallel == 4 {
					reportLatency(b, string(r.Kind), r.Latency)
				}
			}
		}
	}
}

// BenchmarkFig11bProposalSize sweeps proposal sizes (Fig. 11b).
func BenchmarkFig11bProposalSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig11bProposalSize(int64(i)+1, sweep.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12aABAParallel sweeps parallel ABA instances (Fig. 12a).
func BenchmarkFig12aABAParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig12aParallel(int64(i)+1, sweep.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Count == 4 {
					reportLatency(b, string(r.Variant), r.Latency)
				}
			}
		}
	}
}

// BenchmarkFig12bABASerial sweeps serial ABA instances (Fig. 12b).
func BenchmarkFig12bABASerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig12bSerial(int64(i)+1, sweep.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13aSingleHop runs the 8-protocol single-hop comparison
// (Fig. 13a).
func BenchmarkFig13aSingleHop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig13aSingleHop(int64(i)+1, 1, 4, sweep.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				reportLatency(b, r.Name, r.Latency)
			}
		}
	}
}

// BenchmarkFig13bMultiHop runs the 8-protocol 16-node multi-hop comparison
// (Fig. 13b).
func BenchmarkFig13bMultiHop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig13bMultiHop(int64(i)+1, 1, 4, sweep.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				reportLatency(b, r.Name, r.Latency)
			}
		}
	}
}

// BenchmarkChainSustainedThroughput runs the SMR pipeline-depth sweep
// (beyond the paper): committed payload bytes per virtual second across
// transports, protocols, and pipeline depths 1/2/4.
func BenchmarkChainSustainedThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.ChainThroughput(int64(i)+1, 8, sweep.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Protocol == "HB-SC" && r.Transport == "batched" {
					name := "Bps_depth" + string(rune('0'+r.Depth))
					b.ReportMetric(r.ThroughputBps, name)
				}
			}
		}
	}
}

// BenchmarkFaultScenarios runs the scripted fault sweep (beyond the
// paper): sustained SMR throughput under crash, crash+recovery, delay
// adversary, jamming bursts, and partition/heal, per transport.
func BenchmarkFaultScenarios(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.FaultSweep(int64(i)+1, 6, sweep.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Protocol == "HB-SC" && r.Transport == "batched" && r.Error == "" {
					b.ReportMetric(r.ThroughputBps, "Bps_"+r.Scenario)
				}
			}
		}
	}
}
