package wireless

import (
	"testing"
	"time"

	"repro/internal/sim"
)

type sink struct {
	frames []struct {
		from    NodeID
		payload []byte
		at      time.Duration
	}
	sched *sim.Scheduler
}

func (s *sink) ReceiveFrame(from NodeID, payload []byte) {
	s.frames = append(s.frames, struct {
		from    NodeID
		payload []byte
		at      time.Duration
	}{from, payload, s.sched.Now()})
}

func lossless() Config {
	cfg := DefaultConfig()
	cfg.LossProb = 0
	return cfg
}

func newTestChannel(t *testing.T, n int, cfg Config) (*sim.Scheduler, *Channel, []*Station, []*sink) {
	t.Helper()
	s := sim.New(7)
	ch := NewChannel(s, cfg)
	stations := make([]*Station, n)
	sinks := make([]*sink, n)
	for i := 0; i < n; i++ {
		sinks[i] = &sink{sched: s}
		stations[i] = ch.Attach(NodeID(i), sinks[i])
	}
	return s, ch, stations, sinks
}

func TestBroadcastReachesAllOthers(t *testing.T) {
	s, ch, st, sinks := newTestChannel(t, 4, lossless())
	st[0].Broadcast([]byte("hello"))
	s.Run()
	for i := 1; i < 4; i++ {
		if len(sinks[i].frames) != 1 {
			t.Fatalf("node %d got %d frames, want 1", i, len(sinks[i].frames))
		}
		if string(sinks[i].frames[0].payload) != "hello" {
			t.Errorf("node %d payload = %q", i, sinks[i].frames[0].payload)
		}
		if sinks[i].frames[0].from != 0 {
			t.Errorf("node %d from = %d", i, sinks[i].frames[0].from)
		}
	}
	if len(sinks[0].frames) != 0 {
		t.Error("sender received its own frame")
	}
	if got := ch.Stats().Accesses; got != 1 {
		t.Errorf("accesses = %d, want 1", got)
	}
}

func TestAirtimeScalesWithSize(t *testing.T) {
	cfg := lossless()
	small := cfg.Airtime(10)
	large := cfg.Airtime(200)
	if large <= small {
		t.Fatalf("airtime(200)=%v not > airtime(10)=%v", large, small)
	}
	// 190 extra bytes at 5470 bps is ~278 ms.
	extra := large - small
	want := time.Duration(190 * 8 / cfg.BitRate * float64(time.Second))
	if diff := extra - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Errorf("airtime delta = %v, want ~%v", extra, want)
	}
}

func TestSerializedMedium(t *testing.T) {
	s, ch, st, sinks := newTestChannel(t, 3, lossless())
	// Two stations transmit "simultaneously": the medium must serialize.
	st[0].Broadcast(make([]byte, 100))
	st[1].Broadcast(make([]byte, 100))
	s.Run()
	if got := ch.Stats().Accesses + ch.Stats().Collisions; got < 2 {
		t.Fatalf("expected at least 2 channel events, got %d", got)
	}
	// Node 2 must receive both frames eventually (collisions retried).
	if len(sinks[2].frames) != 2 {
		t.Fatalf("node 2 received %d frames, want 2", len(sinks[2].frames))
	}
	if sinks[2].frames[0].at == sinks[2].frames[1].at {
		t.Error("two frames delivered at the same instant; medium not serialized")
	}
}

func TestContentionRetriesUntilAllDelivered(t *testing.T) {
	// Many stations all contending: collisions occur but every frame must
	// eventually get through (CSMA with doubling CW).
	s, ch, st, sinks := newTestChannel(t, 8, lossless())
	for i := range st {
		st[i].Broadcast([]byte{byte(i)})
	}
	s.Run()
	for i, sk := range sinks {
		if len(sk.frames) != 7 {
			t.Fatalf("node %d received %d frames, want 7", i, len(sk.frames))
		}
	}
	if ch.Stats().Accesses != 8 {
		t.Errorf("accesses = %d, want 8", ch.Stats().Accesses)
	}
}

func TestRandomLossDropsSomeDeliveries(t *testing.T) {
	cfg := lossless()
	cfg.LossProb = 0.5
	s, ch, st, sinks := newTestChannel(t, 2, cfg)
	for i := 0; i < 200; i++ {
		st[0].Broadcast([]byte{byte(i)})
	}
	s.Run()
	got := len(sinks[1].frames)
	if got == 0 || got == 200 {
		t.Fatalf("with 50%% loss received %d/200 frames", got)
	}
	if ch.Stats().LostRandom == 0 {
		t.Error("LostRandom counter not incremented")
	}
}

func TestDeliveryHookDropAndDelay(t *testing.T) {
	s, ch, st, sinks := newTestChannel(t, 3, lossless())
	ch.SetDeliveryHook(func(from, to NodeID, _ []byte) (time.Duration, bool) {
		if to == 1 {
			return 0, true // partition node 1
		}
		return 5 * time.Second, false // delay node 2
	})
	st[0].Broadcast([]byte("x"))
	s.Run()
	if len(sinks[1].frames) != 0 {
		t.Error("hook drop ignored")
	}
	if len(sinks[2].frames) != 1 {
		t.Fatal("hook delay lost the frame")
	}
	if sinks[2].frames[0].at < 5*time.Second {
		t.Errorf("frame at %v, want >= 5s", sinks[2].frames[0].at)
	}
	if ch.Stats().LostHook != 1 {
		t.Errorf("LostHook = %d, want 1", ch.Stats().LostHook)
	}
}

func TestMTUEnforced(t *testing.T) {
	_, _, st, _ := newTestChannel(t, 2, lossless())
	defer func() {
		if recover() == nil {
			t.Error("oversized frame did not panic")
		}
	}()
	st[0].Broadcast(make([]byte, 10_000))
}

func TestDuplicateStationPanics(t *testing.T) {
	s := sim.New(1)
	ch := NewChannel(s, lossless())
	ch.Attach(3, &sink{sched: s})
	defer func() {
		if recover() == nil {
			t.Error("duplicate attach did not panic")
		}
	}()
	ch.Attach(3, &sink{sched: s})
}

func TestPayloadCopiedOnBroadcast(t *testing.T) {
	s, _, st, sinks := newTestChannel(t, 2, lossless())
	buf := []byte("original")
	st[0].Broadcast(buf)
	copy(buf, "mutated!")
	s.Run()
	if string(sinks[1].frames[0].payload) != "original" {
		t.Errorf("payload aliased caller buffer: %q", sinks[1].frames[0].payload)
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"default", func(*Config) {}, true},
		{"zero bitrate", func(c *Config) { c.BitRate = 0 }, false},
		{"cw inverted", func(c *Config) { c.CWMin = 64; c.CWMax = 8 }, false},
		{"loss 1.0", func(c *Config) { c.LossProb = 1 }, false},
		{"tiny mtu", func(c *Config) { c.MaxFrame = 4 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			err := cfg.Validate()
			if (err == nil) != tt.ok {
				t.Errorf("Validate() err = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestDeterministicChannel(t *testing.T) {
	run := func() []time.Duration {
		s := sim.New(99)
		ch := NewChannel(s, DefaultConfig())
		sinks := make([]*sink, 4)
		stations := make([]*Station, 4)
		for i := range sinks {
			sinks[i] = &sink{sched: s}
			stations[i] = ch.Attach(NodeID(i), sinks[i])
		}
		for r := 0; r < 5; r++ {
			for i := range stations {
				stations[i].Broadcast(make([]byte, 50+10*i))
			}
		}
		s.Run()
		var times []time.Duration
		for _, sk := range sinks {
			for _, f := range sk.frames {
				times = append(times, f.at)
			}
		}
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic delivery count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic delivery time at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestStationResetFlushesQueue(t *testing.T) {
	s, ch, st, sinks := newTestChannel(t, 3, lossless())
	// Queue several frames, let the first go on air, then crash the sender.
	for i := 0; i < 4; i++ {
		st[0].Broadcast([]byte{byte(i), 1, 2, 3})
	}
	s.RunFor(time.Millisecond) // into the first transmission
	st[0].Reset()
	s.Run()
	// At most the mid-air frame is delivered; the queued rest is gone.
	if got := len(sinks[1].frames); got > 1 {
		t.Errorf("receiver got %d frames after Reset, want <= 1", got)
	}
	if st[0].QueueLen() != 0 {
		t.Errorf("queue not flushed: %d frames", st[0].QueueLen())
	}
	// The station keeps working after a Reset (recovery).
	st[0].Broadcast([]byte("back"))
	s.Run()
	last := sinks[1].frames[len(sinks[1].frames)-1]
	if string(last.payload) != "back" {
		t.Errorf("post-recovery frame not delivered, last = %q", last.payload)
	}
	if got := ch.Stats().Accesses; got == 0 {
		t.Error("no accesses counted")
	}
}
