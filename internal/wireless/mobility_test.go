package wireless

import (
	"testing"
	"time"
)

func TestWaypointStaysOnField(t *testing.T) {
	w := NewWaypoint(1000, 10, 42)
	for node := 0; node < 8; node++ {
		for s := 0; s <= 3600; s += 60 {
			x, y := w.Pos(node, time.Duration(s)*time.Second)
			if x < 0 || x > 1000 || y < 0 || y > 1000 {
				t.Fatalf("node %d at t=%ds off the field: (%g, %g)", node, s, x, y)
			}
		}
	}
}

func TestWaypointMoves(t *testing.T) {
	w := NewWaypoint(1000, 10, 7)
	x0, y0 := w.Pos(0, 0)
	x1, y1 := w.Pos(0, 10*time.Minute)
	if x0 == x1 && y0 == y1 {
		t.Fatal("node did not move over 10 minutes at 10 m/s")
	}
	// Speed bound: between two close samples the node cannot outrun its
	// configured speed.
	ax, ay := w.Pos(1, 100*time.Second)
	bx, by := w.Pos(1, 101*time.Second)
	if d2 := (bx-ax)*(bx-ax) + (by-ay)*(by-ay); d2 > 100.0+1e-6 {
		t.Fatalf("node covered %g m^2 in 1 s at 10 m/s", d2)
	}
}

func TestWaypointDeterministicAcrossQueryOrder(t *testing.T) {
	// Query node 3 late in one model and early in another: trajectories
	// must match because each node owns its RNG.
	a := NewWaypoint(1000, 5, 99)
	b := NewWaypoint(1000, 5, 99)
	_, _ = a.Pos(0, time.Hour) // consume node 0 draws first in model a
	ax, ay := a.Pos(3, time.Hour)
	bx, by := b.Pos(3, time.Hour)
	if ax != bx || ay != by {
		t.Fatalf("node 3 trajectory depends on query order: (%g,%g) vs (%g,%g)", ax, ay, bx, by)
	}
	c := NewWaypoint(1000, 5, 100)
	cx, cy := c.Pos(3, time.Hour)
	if cx == ax && cy == ay {
		t.Fatal("different seeds produced an identical position")
	}
}

func TestWaypointDistSymmetric(t *testing.T) {
	w := NewWaypoint(1000, 5, 1)
	at := 30 * time.Minute
	if d1, d2 := w.Dist(0, 1, at), w.Dist(1, 0, at); d1 != d2 {
		t.Fatalf("Dist not symmetric: %g vs %g", d1, d2)
	}
	if d := w.Dist(2, 2, at); d != 0 {
		t.Fatalf("self-distance %g", d)
	}
}
