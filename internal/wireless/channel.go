package wireless

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Receiver consumes frames delivered by the channel. Implementations are
// invoked from scheduler events; they must not block.
type Receiver interface {
	ReceiveFrame(from NodeID, payload []byte)
}

// DeliveryHook lets tests and adversaries interfere with per-receiver
// delivery of an otherwise successful transmission. It returns an extra
// delivery delay and whether to drop the frame for this receiver. The
// asynchronous model permits unbounded but finite delays between honest
// nodes; hooks used in tests must respect eventual delivery for honest
// pairs or rely on the NACK retransmission machinery.
type DeliveryHook func(from, to NodeID, payload []byte) (extra time.Duration, drop bool)

// Stats aggregates channel-level counters. Channel accesses are the
// quantity the paper's ConsensusBatcher minimizes: every successful or
// colliding transmission attempt is one access competition won.
type Stats struct {
	Accesses   uint64        // successful transmissions
	Collisions uint64        // collision episodes (>=2 stations)
	Frames     uint64        // frames delivered (per receiver)
	LostRandom uint64        // deliveries dropped by random loss
	LostHook   uint64        // deliveries dropped by the adversary hook
	LostBusy   uint64        // deliveries missed due to half-duplex transmit
	BytesOnAir uint64        // payload bytes successfully transmitted
	AirTime    time.Duration // cumulative busy time of the medium
}

type station struct {
	id       NodeID
	recv     Receiver
	queue    [][]byte
	gen      uint64 // incremented by Reset; stale completions skip the pop
	cw       int
	txUntil  time.Duration // half-duplex: busy transmitting until
	accesses uint64
}

// Channel is a single shared wireless medium. All attached stations hear
// every successful transmission (minus losses). It is driven entirely by
// the scheduler and is not safe for concurrent use.
type Channel struct {
	sched    *sim.Scheduler
	cfg      Config
	stations map[NodeID]*station
	order    []NodeID // deterministic iteration order
	busyTill time.Duration
	arbEvt   *sim.Event
	hook     DeliveryHook
	stats    Stats
	// contention-round scratch, reused across arbitrations; never retained
	// past the arbitrate call that fills it
	pending []*station
	winners []*station
}

// NewChannel creates a channel with the given configuration. It panics on
// invalid configuration (programmer error, per the library's construction
// contract).
func NewChannel(s *sim.Scheduler, cfg Config) *Channel {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Channel{
		sched:    s,
		cfg:      cfg,
		stations: make(map[NodeID]*station),
	}
}

// Config returns the channel configuration.
func (c *Channel) Config() Config { return c.cfg }

// Stats returns a snapshot of the channel counters.
func (c *Channel) Stats() Stats { return c.stats }

// SetDeliveryHook installs an adversarial delivery hook (nil to clear).
func (c *Channel) SetDeliveryHook(h DeliveryHook) { c.hook = h }

// Attach registers a station. The returned Station is the node's transmit
// handle. Attaching a duplicate ID panics.
func (c *Channel) Attach(id NodeID, r Receiver) *Station {
	if _, dup := c.stations[id]; dup {
		panic(fmt.Sprintf("wireless: duplicate station %d", id))
	}
	st := &station{id: id, recv: r, cw: c.cfg.CWMin}
	c.stations[id] = st
	c.order = append(c.order, id)
	return &Station{ch: c, st: st}
}

// Station is a node's handle for transmitting on a channel.
type Station struct {
	ch *Channel
	st *station
}

// ID returns the station's node ID.
func (s *Station) ID() NodeID { return s.st.id }

// QueueLen returns the number of frames waiting to be transmitted.
func (s *Station) QueueLen() int { return len(s.st.queue) }

// Accesses returns how many channel accesses this station has won.
func (s *Station) Accesses() uint64 { return s.st.accesses }

// Channel returns the channel the station is attached to.
func (s *Station) Channel() *Channel { return s.ch }

// Reset discards every frame queued for transmission and restores the
// initial contention window. Deployment layers call it when a node
// crashes: a dead radio neither drains its queue nor keeps contending. A
// frame already mid-air when Reset is called still completes (the energy
// is already committed), but nothing queued behind it transmits.
func (s *Station) Reset() {
	s.st.queue = s.st.queue[:0]
	s.st.gen++
	s.st.cw = s.ch.cfg.CWMin
}

// Broadcast queues a frame for transmission. The payload is copied, so the
// caller may reuse the buffer. Frames larger than MaxFrame panic: framing
// and fragmentation are the transport layer's responsibility.
func (s *Station) Broadcast(payload []byte) {
	if len(payload) > s.ch.cfg.MaxFrame {
		panic(fmt.Sprintf("wireless: frame of %d bytes exceeds MTU %d", len(payload), s.ch.cfg.MaxFrame))
	}
	buf := make([]byte, len(payload))
	copy(buf, payload)
	s.st.queue = append(s.st.queue, buf)
	s.ch.kick()
}

// kick ensures a contention round is scheduled when the medium next idles.
func (c *Channel) kick() {
	if c.arbEvt != nil && !c.arbEvt.Cancelled() {
		return
	}
	at := c.busyTill
	if now := c.sched.Now(); at < now {
		at = now
	}
	c.arbEvt = c.sched.At(at, c.arbitrate)
}

// contenders returns stations with pending frames, in deterministic order.
// The returned slice is scratch owned by the channel, valid only until the
// next contention round.
func (c *Channel) contenders() []*station {
	out := c.pending[:0]
	for _, id := range c.order {
		st := c.stations[id]
		if len(st.queue) > 0 {
			out = append(out, st)
		}
	}
	c.pending = out
	return out
}

// arbitrate runs one CSMA contention round: every pending station draws a
// backoff slot; the unique minimum transmits, ties collide.
func (c *Channel) arbitrate() {
	c.arbEvt = nil
	if c.busyTill > c.sched.Now() {
		c.kick() // medium became busy again; retry at idle
		return
	}
	pending := c.contenders()
	if len(pending) == 0 {
		return
	}
	rng := c.sched.Rand()
	minSlot := -1
	winners := c.winners[:0]
	for _, st := range pending {
		slot := rng.Intn(st.cw)
		switch {
		case minSlot == -1 || slot < minSlot:
			minSlot = slot
			winners = winners[:0]
			winners = append(winners, st)
		case slot == minSlot:
			winners = append(winners, st)
		}
	}
	c.winners = winners
	start := c.sched.Now() + c.cfg.DIFS + time.Duration(minSlot)*c.cfg.SlotTime
	if len(winners) == 1 {
		c.beginTx(winners[0], start)
		return
	}
	c.beginCollision(winners, start)
}

func (c *Channel) beginTx(st *station, start time.Duration) {
	frame := st.queue[0]
	gen := st.gen
	end := start + c.cfg.Airtime(len(frame))
	c.busyTill = end
	st.txUntil = end
	c.sched.Post(end, func() {
		// The queue may have been Reset (node crash) while this frame was
		// on the air; frames queued since then belong to a new generation
		// and must not be popped by this stale completion.
		if gen == st.gen && len(st.queue) > 0 {
			st.queue = st.queue[1:]
		}
		st.cw = c.cfg.CWMin
		st.accesses++
		c.stats.Accesses++
		c.stats.BytesOnAir += uint64(len(frame))
		c.stats.AirTime += end - start
		c.deliver(st, frame, start, end)
		c.kick()
	})
}

func (c *Channel) beginCollision(winners []*station, start time.Duration) {
	var maxAir time.Duration
	for _, st := range winners {
		if a := c.cfg.Airtime(len(st.queue[0])); a > maxAir {
			maxAir = a
		}
	}
	end := start + maxAir
	c.busyTill = end
	for _, st := range winners {
		st.txUntil = end
		if st.cw*2 <= c.cfg.CWMax {
			st.cw *= 2
		}
	}
	c.sched.Post(end, func() {
		c.stats.Collisions++
		c.stats.AirTime += maxAir
		c.kick()
	})
}

// deliver fans a successful frame out to every other station, applying
// half-duplex, random loss, and the adversary hook.
func (c *Channel) deliver(from *station, frame []byte, start, end time.Duration) {
	rng := c.sched.Rand()
	for _, id := range c.order {
		st := c.stations[id]
		if st == from {
			continue
		}
		if st.txUntil > start {
			c.stats.LostBusy++
			continue
		}
		if c.cfg.LossProb > 0 && rng.Float64() < c.cfg.LossProb {
			c.stats.LostRandom++
			continue
		}
		extra := time.Duration(0)
		if c.hook != nil {
			d, drop := c.hook(from.id, st.id, frame)
			if drop {
				c.stats.LostHook++
				continue
			}
			extra = d
		}
		c.stats.Frames++
		recv, fromID := st.recv, from.id
		c.sched.Post(end+extra, func() {
			recv.ReceiveFrame(fromID, frame)
		})
	}
}
