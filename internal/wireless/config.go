// Package wireless models a shared-medium wireless channel (LoRa-class) on
// top of the discrete-event scheduler in internal/sim.
//
// The model captures the properties the paper's design targets:
//
//   - a single shared channel per cluster: at most one frame on the air at a
//     time, all attached stations receive every successful transmission
//     (broadcast advantage);
//   - CSMA-style contention: stations with pending frames draw a random
//     backoff slot after a DIFS gap; the minimum draw transmits, ties collide
//     and retry with a doubled contention window;
//   - airtime proportional to frame size (preamble + bytes/bitrate), so
//     batching N messages into one frame pays once for channel access;
//   - half-duplex radios: a station transmitting during a frame's airtime
//     misses that frame;
//   - independent per-receiver loss, repaired by the NACK machinery in
//     internal/core;
//   - an optional adversarial delivery hook that can delay or drop frames on
//     specific (src, dst) pairs, used to exercise the asynchronous adversary.
package wireless

import "time"

// NodeID identifies a station on a channel. IDs are assigned by the caller
// and must be unique per channel.
type NodeID uint16

// Config holds the physical and MAC parameters of a channel. The defaults
// (DefaultConfig) approximate a LoRa SF7/125kHz link, the class of radio the
// paper's testbed uses, which is why simulated consensus latencies land in
// the same tens-of-seconds regime the paper reports.
type Config struct {
	// BitRate is the on-air data rate in bits per second.
	BitRate float64
	// Preamble is the fixed per-frame radio preamble duration.
	Preamble time.Duration
	// FrameOverhead is the PHY+MAC header size in bytes added to every frame.
	FrameOverhead int
	// SlotTime is the duration of one contention backoff slot.
	SlotTime time.Duration
	// DIFS is the idle gap a station must observe before contending.
	DIFS time.Duration
	// CWMin and CWMax bound the contention window (in slots). The window
	// doubles after a collision and resets after a successful transmission.
	CWMin, CWMax int
	// LossProb is the independent probability that a given receiver misses a
	// successfully transmitted frame (fading/interference).
	LossProb float64
	// MaxFrame is the maximum payload bytes per frame (MTU). Larger logical
	// packets are fragmented by the transport layer.
	MaxFrame int
}

// DefaultConfig returns LoRa-class channel parameters.
func DefaultConfig() Config {
	return Config{
		BitRate:       5470, // ~LoRa SF7 / 125 kHz
		Preamble:      25 * time.Millisecond,
		FrameOverhead: 13,
		SlotTime:      10 * time.Millisecond,
		DIFS:          30 * time.Millisecond,
		CWMin:         8,
		CWMax:         128,
		LossProb:      0.02,
		MaxFrame:      240,
	}
}

// Airtime returns the on-air duration of a frame with the given payload
// size under this configuration.
func (c Config) Airtime(payloadBytes int) time.Duration {
	bits := float64(payloadBytes+c.FrameOverhead) * 8
	return c.Preamble + time.Duration(bits/c.BitRate*float64(time.Second))
}

// Validate reports a descriptive error for unusable configurations.
func (c Config) Validate() error {
	switch {
	case c.BitRate <= 0:
		return errBadConfig("BitRate must be positive")
	case c.CWMin < 1 || c.CWMax < c.CWMin:
		return errBadConfig("contention window bounds invalid")
	case c.LossProb < 0 || c.LossProb >= 1:
		return errBadConfig("LossProb must be in [0,1)")
	case c.MaxFrame < 16:
		return errBadConfig("MaxFrame too small")
	}
	return nil
}

type errBadConfig string

func (e errBadConfig) Error() string { return "wireless: bad config: " + string(e) }
