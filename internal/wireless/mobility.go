package wireless

import (
	"math"
	"math/rand"
	"time"
)

// Waypoint is the random-waypoint node mobility model: each node roams a
// square field, walking at constant speed between uniformly drawn
// waypoints, and Pos interpolates its position at any virtual time. The
// scenario engine's mobility events use it to re-derive link adjacency
// over time — a delivery between nodes farther apart than the radio range
// is dropped, so the topology the protocols see shifts as nodes move.
//
// State is generated lazily and deterministically: each node owns an RNG
// derived from the model seed and its id, so a node's trajectory is a
// pure function of (seed, id) regardless of which pairs get queried in
// what order. Queries must be time-monotonic per node, which delivery-
// time hooks are (the scheduler's clock never runs backwards).
type Waypoint struct {
	field, speed float64
	seed         int64
	nodes        []*wpNode
}

type wpNode struct {
	rng    *rand.Rand
	x0, y0 float64 // leg start position
	x1, y1 float64 // leg end (the current waypoint)
	t0, t1 time.Duration
}

// NewWaypoint builds the model: a field x field meter square walked at
// speed m/s. Non-positive parameters fall back to a 1 km field at 1 m/s.
func NewWaypoint(field, speed float64, seed int64) *Waypoint {
	if field <= 0 {
		field = 1000
	}
	if speed <= 0 {
		speed = 1
	}
	return &Waypoint{field: field, speed: speed, seed: seed}
}

// Field returns the square field's side length in meters.
func (w *Waypoint) Field() float64 { return w.field }

// node lazily materializes a node's trajectory state.
func (w *Waypoint) node(i int) *wpNode {
	for len(w.nodes) <= i {
		w.nodes = append(w.nodes, nil)
	}
	nd := w.nodes[i]
	if nd == nil {
		nd = &wpNode{rng: rand.New(rand.NewSource(w.seed ^ (int64(i)+1)*0x5851f42d4c957f2d))}
		nd.x0, nd.y0 = nd.rng.Float64()*w.field, nd.rng.Float64()*w.field
		nd.x1, nd.y1 = nd.x0, nd.y0
		w.nodes[i] = nd
	}
	return nd
}

// advance walks the node's legs forward until the current leg covers at.
func (nd *wpNode) advance(w *Waypoint, at time.Duration) {
	for at > nd.t1 {
		nd.x0, nd.y0, nd.t0 = nd.x1, nd.y1, nd.t1
		nd.x1 = nd.rng.Float64() * w.field
		nd.y1 = nd.rng.Float64() * w.field
		d := math.Hypot(nd.x1-nd.x0, nd.y1-nd.y0)
		nd.t1 = nd.t0 + time.Duration(d/w.speed*float64(time.Second))
	}
}

// Pos returns node's position at virtual time at.
func (w *Waypoint) Pos(node int, at time.Duration) (x, y float64) {
	nd := w.node(node)
	nd.advance(w, at)
	if nd.t1 == nd.t0 {
		return nd.x1, nd.y1
	}
	f := float64(at-nd.t0) / float64(nd.t1-nd.t0)
	if f < 0 {
		f = 0
	}
	return nd.x0 + (nd.x1-nd.x0)*f, nd.y0 + (nd.y1-nd.y0)*f
}

// Dist returns the distance in meters between two nodes at virtual time
// at.
func (w *Waypoint) Dist(a, b int, at time.Duration) float64 {
	ax, ay := w.Pos(a, at)
	bx, by := w.Pos(b, at)
	return math.Hypot(ax-bx, ay-by)
}
