// Package sweep is the declarative grid engine behind every bench
// experiment: a Grid names the axes of a parameter sweep (each axis point
// mutates a copy of a base configuration), and Run executes the full
// factorial on a worker pool, one cell per goroutine.
//
// Determinism is the contract. A cell's configuration is a pure function
// of its grid coordinates — the base is copied by value and the axis
// points are applied in axis order — so any seed a cell carries is fixed
// before execution begins, and results are returned in grid enumeration
// order (row-major, last axis fastest) no matter how many workers run or
// which cells finish first. A sweep therefore produces bit-identical
// rows at -parallel 1 and -parallel 8, which golden_test.go enforces
// against the committed BENCH trajectories.
//
// The engine requires exec to be safe for concurrent calls. For the
// bench sweeps that means run.Run must be reentrant: every run owns its
// scheduler, channel, and RNGs, and the one shared structure — the
// threshold-keygen cache (crypto.DealCached) — is race-safe and keyed so
// concurrent cells cannot observe each other.
//
// Apply functions must *replace* reference-typed fields (slices, maps)
// rather than mutating them in place: the base configuration is shared
// by value across all cells, so an in-place append would alias state
// between concurrently-running cells.
package sweep

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"
)

// ErrNoCells is wrapped by Run when a filter matches no cell of the
// grid; callers sweeping many grids (wbft-bench -exp all) use it to
// distinguish "this experiment has no matching cells" from a real
// failure.
var ErrNoCells = errors.New("no cells match filter")

// Point is one value on an axis: a label (used in cell names and -filter
// matching) plus the mutation it applies to the cell configuration.
type Point[C any] struct {
	Label string
	Apply func(*C)
}

// Axis is one named dimension of a grid.
type Axis[C any] struct {
	Name   string
	Points []Point[C]
}

// Grid declares a full-factorial sweep over a base configuration.
type Grid[C any] struct {
	Base C
	Axes []Axis[C]
}

// Cell is one grid coordinate with its fully-applied configuration.
type Cell[C any] struct {
	// Index is the cell's position in grid enumeration order.
	Index int
	// Coords holds the per-axis point indices.
	Coords []int
	// Labels holds the per-axis point labels (Labels[i] names the value
	// chosen on Axes[i]).
	Labels []string
	Config C
}

// Name joins the cell's axis labels with "/" — the string -filter
// substring-matches against.
func (c Cell[C]) Name() string { return strings.Join(c.Labels, "/") }

// Size returns the number of cells in the full factorial.
func (g Grid[C]) Size() int {
	n := 1
	for _, a := range g.Axes {
		n *= len(a.Points)
	}
	return n
}

// Cells enumerates the grid row-major (first axis slowest, last axis
// fastest), applying each axis point to a copy of Base in axis order.
func (g Grid[C]) Cells() []Cell[C] {
	out := make([]Cell[C], 0, g.Size())
	coords := make([]int, len(g.Axes))
	for idx := 0; idx < g.Size(); idx++ {
		rem := idx
		for a := len(g.Axes) - 1; a >= 0; a-- {
			coords[a] = rem % len(g.Axes[a].Points)
			rem /= len(g.Axes[a].Points)
		}
		cell := Cell[C]{Index: idx, Coords: append([]int(nil), coords...), Config: g.Base}
		for a, ax := range g.Axes {
			pt := ax.Points[coords[a]]
			cell.Labels = append(cell.Labels, pt.Label)
			if pt.Apply != nil {
				pt.Apply(&cell.Config)
			}
		}
		out = append(out, cell)
	}
	return out
}

// Options tune one engine invocation.
type Options struct {
	// Workers is the pool size; values < 1 run single-threaded. Results
	// are identical at every worker count — only wall-clock changes.
	Workers int
	// Filter, if non-empty, runs only cells whose Name() contains it.
	Filter string
	// Progress, if non-nil, is called after each cell completes (from
	// worker goroutines, serialized by the engine).
	Progress func(done, total int, name string, elapsed time.Duration)
}

// Result pairs one cell's measurement with its identity and wall-clock
// cost. Coords and Labels identify the cell on each axis, so callers
// that aggregate (e.g. averaging over a seed axis) can associate results
// with axis values without re-deriving positions arithmetically. Elapsed
// is real time, not virtual time: it is sweep metadata (the per-row
// elapsed_ms in trajectory files), never a golden-checked simulation
// outcome.
type Result[R any] struct {
	Index   int
	Coords  []int
	Labels  []string
	Name    string
	Value   R
	Elapsed time.Duration
}

// Run executes exec for every (filter-surviving) cell of the grid on a
// pool of opts.Workers goroutines and returns the results in grid order.
// The first exec error (in grid order, not completion order) aborts the
// sweep's result; remaining in-flight cells drain before Run returns.
func Run[C, R any](g Grid[C], opts Options, exec func(Cell[C]) (R, error)) ([]Result[R], error) {
	cells := g.Cells()
	if opts.Filter != "" {
		kept := cells[:0]
		for _, c := range cells {
			if strings.Contains(c.Name(), opts.Filter) {
				kept = append(kept, c)
			}
		}
		cells = kept
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("sweep: %w: %q", ErrNoCells, opts.Filter)
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	results := make([]Result[R], len(cells))
	errs := make([]error, len(cells))
	jobs := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex // guards done for the Progress callback
	done := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				c := cells[i]
				start := time.Now()
				v, err := exec(c)
				elapsed := time.Since(start)
				results[i] = Result[R]{
					Index: c.Index, Coords: c.Coords, Labels: c.Labels,
					Name: c.Name(), Value: v, Elapsed: elapsed,
				}
				errs[i] = err
				if opts.Progress != nil {
					mu.Lock()
					done++
					opts.Progress(done, len(cells), c.Name(), elapsed)
					mu.Unlock()
				}
			}
		}()
	}
	for i := range cells {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sweep: cell %s: %w", cells[i].Name(), err)
		}
	}
	return results, nil
}

// Values strips the engine metadata from a result slice, preserving grid
// order — the common final step of a sweep that emits plain point rows.
func Values[R any](results []Result[R]) []R {
	out := make([]R, len(results))
	for i, r := range results {
		out[i] = r.Value
	}
	return out
}
