package sweep

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

type cfg struct {
	A, B, C int
	Seed    int64
}

func testGrid() Grid[cfg] {
	axis := func(name string, set func(*cfg, int), vals ...int) Axis[cfg] {
		ax := Axis[cfg]{Name: name}
		for _, v := range vals {
			v := v
			ax.Points = append(ax.Points, Point[cfg]{
				Label: fmt.Sprintf("%s=%d", name, v),
				Apply: func(c *cfg) { set(c, v) },
			})
		}
		return ax
	}
	return Grid[cfg]{
		Base: cfg{Seed: 42},
		Axes: []Axis[cfg]{
			axis("a", func(c *cfg, v int) { c.A = v }, 1, 2, 3),
			axis("b", func(c *cfg, v int) { c.B = v }, 10, 20),
			axis("c", func(c *cfg, v int) { c.C = v }, 100, 200),
		},
	}
}

func TestCellsEnumerateRowMajor(t *testing.T) {
	g := testGrid()
	cells := g.Cells()
	if len(cells) != 12 || g.Size() != 12 {
		t.Fatalf("got %d cells, want 12", len(cells))
	}
	// Last axis fastest: the first four cells hold a=1 and walk b, c.
	want := []cfg{
		{A: 1, B: 10, C: 100, Seed: 42},
		{A: 1, B: 10, C: 200, Seed: 42},
		{A: 1, B: 20, C: 100, Seed: 42},
		{A: 1, B: 20, C: 200, Seed: 42},
	}
	for i, w := range want {
		if cells[i].Config != w {
			t.Errorf("cell %d: got %+v, want %+v", i, cells[i].Config, w)
		}
	}
	if got := cells[5].Name(); got != "a=2/b=10/c=200" {
		t.Errorf("cell 5 name: %q", got)
	}
	if cells[11].Index != 11 || !reflect.DeepEqual(cells[11].Coords, []int{2, 1, 1}) {
		t.Errorf("cell 11 identity: %+v", cells[11])
	}
}

// TestRunDeterministicAcrossWorkers is the engine's core contract: the
// result slice is bit-identical at every worker count even when cells
// finish wildly out of order.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	g := testGrid()
	exec := func(c Cell[cfg]) (string, error) {
		// Deterministic value derived only from the cell's config; sleep a
		// pseudo-random amount so completion order scrambles under workers.
		time.Sleep(time.Duration(rand.Intn(3)) * time.Millisecond)
		return fmt.Sprintf("%d/%d/%d@%d", c.Config.A, c.Config.B, c.Config.C, c.Config.Seed), nil
	}
	var baseline []string
	for _, workers := range []int{1, 2, 8, 32} {
		res, err := Run(g, Options{Workers: workers}, exec)
		if err != nil {
			t.Fatal(err)
		}
		got := Values(res)
		if baseline == nil {
			baseline = got
			continue
		}
		if !reflect.DeepEqual(got, baseline) {
			t.Errorf("workers=%d: results diverge from workers=1:\n%v\nvs\n%v", workers, got, baseline)
		}
	}
}

func TestRunFilter(t *testing.T) {
	g := testGrid()
	res, err := Run(g, Options{Filter: "a=2/b=20"}, func(c Cell[cfg]) (int, error) {
		return c.Config.C, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Value != 100 || res[1].Value != 200 {
		t.Fatalf("filter kept wrong cells: %+v", res)
	}
	if _, err := Run(g, Options{Filter: "nope"}, func(c Cell[cfg]) (int, error) { return 0, nil }); err == nil {
		t.Error("empty filter match should error, not silently run nothing")
	}
}

func TestRunErrorNamesFirstFailingCell(t *testing.T) {
	g := testGrid()
	boom := errors.New("boom")
	_, err := Run(g, Options{Workers: 4}, func(c Cell[cfg]) (int, error) {
		if c.Config.A == 2 {
			return 0, boom
		}
		return 1, nil
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("want wrapped exec error, got %v", err)
	}
	// Grid order, not completion order: the first a=2 cell is index 4.
	if !strings.Contains(err.Error(), "a=2/b=10/c=100") {
		t.Errorf("error should name the first failing cell in grid order: %v", err)
	}
}

func TestRunProgressSerializedAndComplete(t *testing.T) {
	g := testGrid()
	var mu sync.Mutex
	seen := map[string]bool{}
	last := 0
	res, err := Run(g, Options{Workers: 6, Progress: func(done, total int, name string, elapsed time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		if done != last+1 || total != 12 {
			t.Errorf("progress out of order: done=%d after %d (total %d)", done, last, total)
		}
		last = done
		seen[name] = true
	}}, func(c Cell[cfg]) (int, error) { return 0, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 12 || len(seen) != 12 {
		t.Fatalf("progress saw %d cells, want 12", len(seen))
	}
}

// TestApplySeesPriorAxes pins the documented apply order: later axes see
// the mutations of earlier ones (the byz sweep derives its scenario from
// the protocol axis's N).
func TestApplySeesPriorAxes(t *testing.T) {
	g := Grid[cfg]{
		Base: cfg{A: 7},
		Axes: []Axis[cfg]{
			{Name: "first", Points: []Point[cfg]{{Label: "x2", Apply: func(c *cfg) { c.A *= 2 }}}},
			{Name: "second", Points: []Point[cfg]{{Label: "plusA", Apply: func(c *cfg) { c.B = c.A + 1 }}}},
		},
	}
	cells := g.Cells()
	if cells[0].Config.B != 15 {
		t.Errorf("second axis did not see first axis's mutation: %+v", cells[0].Config)
	}
}
