// Package mont implements modular exponentiation for odd fixed-width
// moduli using Montgomery multiplication over stack-allocated word
// arrays. It exists purely as a faster drop-in for big.Int.Exp on the
// simulator's hot verification paths: results are bit-exact (the reduced
// residue is unique, and Exp always returns it fully reduced), so
// accept/reject decisions and every byte derived from an exponentiation
// are identical to the math/big path.
//
// The speed comes from what is *not* done per call: no nat allocations,
// no normalization passes, and no per-limb function calls — a fully
// unrolled CIOS (coarsely integrated operand scanning) kernel works
// directly on fixed-size arrays that never leave the stack. Only the
// width the hot parameter sets lean on gets a kernel: 4 words, the
// 256-bit CRT halves through which every TS-512 threshold-RSA
// exponentiation runs. At wider moduli math/big's assembly inner loops
// win back the advantage (measured on the 512-bit SG-512 shape), so
// NewModulus declines them and callers keep using big.Int.Exp.
//
// A Modulus is immutable after construction and all per-call scratch is
// on the stack, so Exp is safe for concurrent use.
package mont

import (
	"math/big"
	"math/bits"
)

// maxWords is the widest supported modulus (4 words = 256 bits).
const maxWords = 4

// Modulus holds the precomputed Montgomery constants for one odd modulus.
// It is immutable after construction and safe for concurrent use.
type Modulus struct {
	m     [maxWords]uint64 // modulus, little-endian words
	r2    [maxWords]uint64 // R^2 mod m (to-Montgomery factor), R = 2^(64w)
	w     int              // live word count (always 4)
	n0inv uint64           // -m^{-1} mod 2^64
	nat   *big.Int         // the modulus as written, for fallbacks
}

// NewModulus precomputes Montgomery constants for m. It returns nil when
// m has no specialized kernel (anything but an odd 4-word value, or a
// platform whose big.Word is not 64 bits) — callers treat nil as "use
// big.Int.Exp".
func NewModulus(m *big.Int) *Modulus {
	if bits.UintSize != 64 || m == nil || m.Sign() <= 0 || m.Bit(0) == 0 {
		return nil
	}
	words := m.Bits()
	if len(words) != 4 {
		return nil
	}
	mod := &Modulus{w: len(words), nat: new(big.Int).Set(m)}
	for i, wd := range words {
		mod.m[i] = uint64(wd)
	}
	// inv = m[0]^{-1} mod 2^64 by Newton iteration: an odd m[0] is its own
	// inverse mod 8, and each step doubles the valid bit count (3 -> 96).
	inv := mod.m[0]
	for i := 0; i < 5; i++ {
		inv *= 2 - mod.m[0]*inv
	}
	mod.n0inv = -inv
	r := new(big.Int).Lsh(big.NewInt(1), uint(64*mod.w))
	r.Mul(r, r)
	r.Mod(r, m)
	for i, wd := range r.Bits() {
		mod.r2[i] = uint64(wd)
	}
	return mod
}

// Exp returns x^e mod m, fully reduced — bit-exact with
// new(big.Int).Exp(x, e, m). Negative exponents (modular inverses) take
// the big.Int path unchanged.
func (mod *Modulus) Exp(x, e *big.Int) *big.Int {
	if e.Sign() < 0 {
		return new(big.Int).Exp(x, e, mod.nat)
	}
	if e.Sign() == 0 {
		return big.NewInt(1)
	}
	if x.Sign() < 0 || x.Cmp(mod.nat) >= 0 {
		x = new(big.Int).Mod(x, mod.nat)
	}
	if x.Sign() == 0 {
		return new(big.Int)
	}

	var xw [maxWords]uint64
	for i, wd := range x.Bits() {
		xw[i] = uint64(wd)
	}
	// Power table in Montgomery form for 4-bit windows: tbl[i] = x^i * R.
	var tbl [16][maxWords]uint64
	mod.mul(&tbl[1], &xw, &mod.r2)
	for i := 2; i < 16; i++ {
		mod.mul(&tbl[i], &tbl[i-1], &tbl[1])
	}

	// Left-to-right 4-bit windows over the exponent, skipping the leading
	// zero nibbles so tiny exponents (2, 65537) cost only their true length.
	var z [maxWords]uint64
	started := false
	words := e.Bits()
	for i := len(words) - 1; i >= 0; i-- {
		wd := uint64(words[i])
		for sh := 60; sh >= 0; sh -= 4 {
			nib := (wd >> uint(sh)) & 0xf
			if !started {
				if nib == 0 {
					continue
				}
				z = tbl[nib]
				started = true
				continue
			}
			mod.mul(&z, &z, &z)
			mod.mul(&z, &z, &z)
			mod.mul(&z, &z, &z)
			mod.mul(&z, &z, &z)
			if nib != 0 {
				mod.mul(&z, &z, &tbl[nib])
			}
		}
	}

	// Leave the Montgomery domain: multiply by 1 strips the R factor.
	var onew [maxWords]uint64
	onew[0] = 1
	mod.mul(&z, &z, &onew)

	out := make([]big.Word, mod.w)
	for i := 0; i < mod.w; i++ {
		out[i] = big.Word(z[i])
	}
	return new(big.Int).SetBits(out)
}

// mul sets z = x*y*R^{-1} mod m (the Montgomery product). Inputs must be
// < m; the output is < m. z may alias x and/or y: the product
// accumulates in locals and z is written only at the end.
func (mod *Modulus) mul(z, x, y *[maxWords]uint64) {
	mod.mul4(z, x, y)
}

// mul4 is the 4-word CIOS kernel. Each outer iteration folds in one word
// of y and immediately Montgomery-reduces one word, keeping the
// accumulator at 4 words + 1 bit (t4); the 128-bit column sums
// x[j]*yi + t[j] + carry and q*m[j] + t[j] + carry cannot overflow, so
// plain hi+carry adds are exact.
func (mod *Modulus) mul4(z, x, y *[maxWords]uint64) {
	m0, m1, m2, m3 := mod.m[0], mod.m[1], mod.m[2], mod.m[3]
	x0, x1, x2, x3 := x[0], x[1], x[2], x[3]
	inv := mod.n0inv
	var t0, t1, t2, t3, t4 uint64
	for i := 0; i < 4; i++ {
		yi := y[i]
		var c, cc uint64
		hi, lo := bits.Mul64(x0, yi)
		t0, cc = bits.Add64(t0, lo, 0)
		c = hi + cc
		hi, lo = bits.Mul64(x1, yi)
		lo, cc = bits.Add64(lo, c, 0)
		hi += cc
		t1, cc = bits.Add64(t1, lo, 0)
		c = hi + cc
		hi, lo = bits.Mul64(x2, yi)
		lo, cc = bits.Add64(lo, c, 0)
		hi += cc
		t2, cc = bits.Add64(t2, lo, 0)
		c = hi + cc
		hi, lo = bits.Mul64(x3, yi)
		lo, cc = bits.Add64(lo, c, 0)
		hi += cc
		t3, cc = bits.Add64(t3, lo, 0)
		c = hi + cc
		t4, cc = bits.Add64(t4, c, 0)
		t5 := cc

		q := t0 * inv
		hi, lo = bits.Mul64(q, m0)
		_, cc = bits.Add64(lo, t0, 0)
		c = hi + cc
		hi, lo = bits.Mul64(q, m1)
		lo, cc = bits.Add64(lo, c, 0)
		hi += cc
		t0, cc = bits.Add64(t1, lo, 0)
		c = hi + cc
		hi, lo = bits.Mul64(q, m2)
		lo, cc = bits.Add64(lo, c, 0)
		hi += cc
		t1, cc = bits.Add64(t2, lo, 0)
		c = hi + cc
		hi, lo = bits.Mul64(q, m3)
		lo, cc = bits.Add64(lo, c, 0)
		hi += cc
		t2, cc = bits.Add64(t3, lo, 0)
		c = hi + cc
		t3, cc = bits.Add64(t4, c, 0)
		t4 = t5 + cc
	}
	r0, b := bits.Sub64(t0, m0, 0)
	r1, b := bits.Sub64(t1, m1, b)
	r2, b := bits.Sub64(t2, m2, b)
	r3, b := bits.Sub64(t3, m3, b)
	if t4 != 0 || b == 0 {
		z[0], z[1], z[2], z[3] = r0, r1, r2, r3
	} else {
		z[0], z[1], z[2], z[3] = t0, t1, t2, t3
	}
}
