package mont

import (
	"math/big"
	"math/rand"
	"testing"
)

// randOdd returns a random odd integer with exactly bits bits.
func randOdd(rng *rand.Rand, bitLen int) *big.Int {
	b := make([]byte, (bitLen+7)/8)
	rng.Read(b)
	x := new(big.Int).SetBytes(b)
	x.SetBit(x, bitLen-1, 1)
	x.SetBit(x, 0, 1)
	return x
}

func randBelow(rng *rand.Rand, m *big.Int) *big.Int {
	return new(big.Int).Rand(rng, m)
}

// TestExpMatchesBigInt cross-checks Exp against big.Int.Exp on random
// inputs across the supported width range, including exponents much
// longer and much shorter than the modulus.
func TestExpMatchesBigInt(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// 4-word moduli, at and below the top of the word range.
	for _, bitLen := range []int{200, 225, 256} {
		m := randOdd(rng, bitLen)
		mod := NewModulus(m)
		if mod == nil {
			t.Fatalf("NewModulus rejected odd %d-bit modulus", bitLen)
		}
		for _, ebits := range []int{1, 8, 64, bitLen, 2 * bitLen} {
			for trial := 0; trial < 10; trial++ {
				x := randBelow(rng, m)
				e := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), uint(ebits)))
				want := new(big.Int).Exp(x, e, m)
				got := mod.Exp(x, e)
				if got.Cmp(want) != 0 {
					t.Fatalf("bits=%d ebits=%d: Exp(%v, %v) = %v, want %v", bitLen, ebits, x, e, got, want)
				}
			}
		}
	}
}

func TestExpEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randOdd(rng, 256)
	mod := NewModulus(m)
	mm1 := new(big.Int).Sub(m, big.NewInt(1))
	big65537 := big.NewInt(65537)
	cases := []struct{ x, e *big.Int }{
		{big.NewInt(0), big.NewInt(0)},
		{big.NewInt(0), big.NewInt(5)},
		{big.NewInt(1), big.NewInt(0)},
		{big.NewInt(1), mm1},
		{mm1, big.NewInt(1)},
		{mm1, big.NewInt(2)},
		{mm1, mm1},
		{big.NewInt(2), big65537},
		{new(big.Int).Add(m, big.NewInt(7)), big.NewInt(3)}, // x >= m: reduced first
		{new(big.Int).Neg(big.NewInt(3)), big.NewInt(3)},    // x < 0: reduced first
		{new(big.Int).Set(m), big.NewInt(9)},                // x == m
		{big.NewInt(7), new(big.Int).Neg(big.NewInt(3))},    // e < 0: big.Int fallback
		{big.NewInt(3), new(big.Int).Lsh(mm1, 512)},         // huge exponent
	}
	for _, tc := range cases {
		want := new(big.Int).Exp(tc.x, tc.e, m)
		got := mod.Exp(tc.x, tc.e)
		if got.Cmp(want) != 0 {
			t.Errorf("Exp(%v, %v) = %v, want %v", tc.x, tc.e, got, want)
		}
	}
}

func TestNewModulusRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if NewModulus(nil) != nil {
		t.Error("accepted nil")
	}
	if NewModulus(big.NewInt(0)) != nil {
		t.Error("accepted zero")
	}
	if NewModulus(big.NewInt(-7)) != nil {
		t.Error("accepted negative")
	}
	if NewModulus(big.NewInt(10)) != nil {
		t.Error("accepted even")
	}
	if NewModulus(big.NewInt(1)) != nil {
		t.Error("accepted one")
	}
	if NewModulus(randOdd(rng, 64*maxWords+1)) != nil {
		t.Error("accepted modulus wider than maxWords")
	}
	if NewModulus(randOdd(rng, 320)) != nil {
		t.Error("accepted 5-word modulus (no kernel)")
	}
	if NewModulus(randOdd(rng, 512)) != nil {
		t.Error("accepted 8-word modulus (no kernel)")
	}
	if NewModulus(randOdd(rng, 64*maxWords)) == nil {
		t.Error("rejected modulus at exactly maxWords")
	}
}

// TestExpConcurrent exercises one Modulus from several goroutines under
// the race detector: Exp must share no mutable state across calls.
func TestExpConcurrent(t *testing.T) {
	m := randOdd(rand.New(rand.NewSource(4)), 256)
	mod := NewModulus(m)
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				x := randBelow(rng, m)
				e := randBelow(rng, m)
				want := new(big.Int).Exp(x, e, m)
				if got := mod.Exp(x, e); got.Cmp(want) != 0 {
					done <- errGot
					return
				}
			}
			done <- nil
		}(int64(g))
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errGot = errMismatch{}

type errMismatch struct{}

func (errMismatch) Error() string { return "mont: result mismatch under concurrency" }

func benchExp(b *testing.B, bitLen int, useMont bool) {
	rng := rand.New(rand.NewSource(5))
	m := randOdd(rng, bitLen)
	mod := NewModulus(m)
	x := randBelow(rng, m)
	e := randBelow(rng, m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if useMont {
			mod.Exp(x, e)
		} else {
			new(big.Int).Exp(x, e, m)
		}
	}
}

func BenchmarkExp256Mont(b *testing.B)   { benchExp(b, 256, true) }
func BenchmarkExp256BigInt(b *testing.B) { benchExp(b, 256, false) }
