// Package crypto bundles the threshold-cryptography substrates into a
// per-node Suite and provides the virtual-time cost model that charges
// cryptographic work against protocol latency.
package crypto

import "time"

// CostModel holds per-operation virtual compute times. Protocol simulations
// charge these against each node's single-core CPU (sim.CPU), reproducing
// the paper's observation that cryptographic processing time — not just
// message complexity — gates consensus latency on embedded hardware.
//
// Defaults are calibrated to the magnitudes of the paper's Fig. 10a/10b
// (STM32F767 with MIRACL): light parameter sets sit in the tens of
// milliseconds per operation, the heaviest near a second. Our x86
// implementations are orders of magnitude faster in wall time; the
// microbenchmarks (Fig. 10 repro) measure those real times separately,
// while simulations use this model so crypto/airtime ratios match the
// paper's hardware. See EXPERIMENTS.md.
type CostModel struct {
	PKSign   time.Duration // public-key digital signature over a frame
	PKVerify time.Duration // verification of a frame signature

	TSSign        time.Duration // threshold signature share generation
	TSVerifyShare time.Duration
	TSCombine     time.Duration
	TSVerify      time.Duration // combined-signature verification

	TCShare       time.Duration // threshold coin share generation
	TCVerifyShare time.Duration
	TCCombine     time.Duration

	TEEncrypt     time.Duration
	TEDecShare    time.Duration
	TEVerifyShare time.Duration
	TECombine     time.Duration
}

// BatchCost returns the virtual time charged for a batch of n operations
// with the given per-operation cost. The host-side batch verification APIs
// (threshsig.PublicKey.VerifyShares, threshcoin, threshenc, dleq.VerifyBatch)
// amortize only *host* wall-clock work — memoized fixed points, shared
// per-message context. The modeled STM32 has one core and verifies shares
// serially, so a batch is charged exactly n times the per-op cost: there is
// no virtual-time discount, and simulated latencies stay comparable with
// the paper's per-operation measurements.
func BatchCost(per time.Duration, n int) time.Duration {
	if n <= 0 {
		return 0
	}
	return time.Duration(n) * per
}

// scale multiplies every field of the base model.
func (m CostModel) scale(f float64) CostModel {
	s := func(d time.Duration) time.Duration { return time.Duration(float64(d) * f) }
	return CostModel{
		PKSign: s(m.PKSign), PKVerify: s(m.PKVerify),
		TSSign: s(m.TSSign), TSVerifyShare: s(m.TSVerifyShare),
		TSCombine: s(m.TSCombine), TSVerify: s(m.TSVerify),
		TCShare: s(m.TCShare), TCVerifyShare: s(m.TCVerifyShare), TCCombine: s(m.TCCombine),
		TEEncrypt: s(m.TEEncrypt), TEDecShare: s(m.TEDecShare),
		TEVerifyShare: s(m.TEVerifyShare), TECombine: s(m.TECombine),
	}
}

// baseCost is the lightest parameter set's model (the paper's BN158 +
// secp160r1 pairing, our TS-512 + P-224).
var baseCost = CostModel{
	PKSign:   15 * time.Millisecond,
	PKVerify: 30 * time.Millisecond,

	TSSign:        45 * time.Millisecond,
	TSVerifyShare: 80 * time.Millisecond,
	TSCombine:     60 * time.Millisecond,
	TSVerify:      70 * time.Millisecond,

	// Coin flipping is cheaper than threshold signing (paper Fig. 10b).
	TCShare:       30 * time.Millisecond,
	TCVerifyShare: 55 * time.Millisecond,
	TCCombine:     40 * time.Millisecond,

	TEEncrypt:     50 * time.Millisecond,
	TEDecShare:    35 * time.Millisecond,
	TEVerifyShare: 60 * time.Millisecond,
	TECombine:     45 * time.Millisecond,
}

// costScale maps threshold parameter-set names to multipliers over the
// base model, following the ordering of the paper's six curves.
var costScale = map[string]float64{
	"TS-512":  1.0,  // ~ BN158
	"TS-768":  2.1,  // ~ BN254
	"TS-1024": 4.4,  // ~ BLS12383
	"TS-1536": 5.6,  // ~ BLS12381
	"TS-2048": 8.5,  // ~ FP256BN
	"TS-3072": 22.0, // ~ FP512BN
}

// CostFor returns the calibrated cost model for a threshold parameter set.
// Unknown names fall back to the base model.
func CostFor(thresholdSet string) CostModel {
	if f, ok := costScale[thresholdSet]; ok {
		return baseCost.scale(f)
	}
	return baseCost
}

// ParamSetNames returns the threshold parameter-set names in ascending
// weight, alongside the paper curve each stands in for.
func ParamSetNames() []struct{ Ours, Paper string } {
	return []struct{ Ours, Paper string }{
		{"TS-512", "BN158"},
		{"TS-768", "BN254"},
		{"TS-1024", "BLS12383"},
		{"TS-1536", "BLS12381"},
		{"TS-2048", "FP256BN"},
		{"TS-3072", "FP512BN"},
	}
}
