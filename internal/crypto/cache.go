package crypto

import (
	"math/rand"
	"sync"
)

// dealKey identifies one dealer invocation: the parameter sets, the group
// geometry, and the seed of the deterministic randomness stream. The seed
// is part of the key — two runs with different seeds must not share
// threshold keys, or their common coins (and therefore every golden
// number downstream) would collide.
type dealKey struct {
	N, F int
	Cfg  Config
	Seed int64
}

// dealEntry is one cached deal; the Once keeps the expensive dealer run
// off the cache lock so concurrent first users of *different* keys deal
// in parallel while same-key users wait for one result.
type dealEntry struct {
	once   sync.Once
	suites []*Suite
	err    error
}

var (
	dealMu    sync.Mutex
	dealCache = map[dealKey]*dealEntry{}
)

// DealCached is Deal memoized behind a race-safe cache keyed by
// (n, f, cfg, seed): the first caller runs the trusted dealer over
// rand.New(rand.NewSource(seed)) exactly as the drivers historically did,
// and every later caller — including concurrent sweep cells on other
// goroutines — receives the same suite slice.
//
// Sharing is sound because suites are immutable after dealing: the
// simulation drivers only read key material (SizedAuth charges virtual
// sign/verify costs without touching the signer, and every threshold
// operation draws randomness from a caller-supplied RNG, never from the
// suite). Callers that need private, mutable suites — or a Signer whose
// embedded reader they will consume, as RealAuth does — should call Deal
// directly.
//
// Beyond enabling parallel sweeps, the cache also speeds sequential ones:
// a grid re-running one (suite, n, f, seed) point across protocols and
// transports pays for modular-exponentiation-heavy keygen once instead of
// once per cell.
func DealCached(n, f int, cfg Config, seed int64) ([]*Suite, error) {
	k := dealKey{N: n, F: f, Cfg: cfg, Seed: seed}
	dealMu.Lock()
	e, ok := dealCache[k]
	if !ok {
		e = &dealEntry{}
		dealCache[k] = e
	}
	dealMu.Unlock()
	e.once.Do(func() {
		e.suites, e.err = Deal(n, f, cfg, rand.New(rand.NewSource(seed)))
	})
	return e.suites, e.err
}
