package crypto

import "testing"

// TestBatchCostChargesPerOperation pins the honest-charging contract: a
// batch of n verifications costs exactly n single verifications in virtual
// time — the host-side batch APIs earn no simulated-latency discount.
func TestBatchCostChargesPerOperation(t *testing.T) {
	per := CostFor("TS-512").TSVerifyShare
	if got := BatchCost(per, 7); got != 7*per {
		t.Errorf("BatchCost(per, 7) = %v, want %v", got, 7*per)
	}
	if got := BatchCost(per, 1); got != per {
		t.Errorf("BatchCost(per, 1) = %v, want %v", got, per)
	}
	if got := BatchCost(per, 0); got != 0 {
		t.Errorf("BatchCost(per, 0) = %v, want 0", got)
	}
	if got := BatchCost(per, -3); got != 0 {
		t.Errorf("BatchCost(per, -3) = %v, want 0", got)
	}
}
