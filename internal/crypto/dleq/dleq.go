// Package dleq implements non-interactive Chaum–Pedersen proofs of discrete
// logarithm equality over a Schnorr group (Fiat–Shamir transform).
//
// A proof convinces a verifier that log_{g1}(a) == log_{g2}(b) without
// revealing the exponent. The threshold coin and threshold encryption
// schemes attach such proofs to their shares so Byzantine nodes cannot
// inject garbage shares: a bad share fails verification and is discarded,
// which the fault-injection tests exercise.
package dleq

import (
	"errors"
	"io"
	"math/big"

	"repro/internal/crypto/group"
	"repro/internal/crypto/shamir"
)

// Proof is a Fiat–Shamir Chaum–Pedersen proof (challenge, response).
type Proof struct {
	C *big.Int
	Z *big.Int
}

// Size returns the serialized proof size in bytes for the given group.
func Size(g *group.Group) int { return 32 + g.ScalarLen() }

// Prove returns a proof that a = g1^x and b = g2^x share the exponent x.
func Prove(g *group.Group, g1, g2, a, b, x *big.Int, rand io.Reader) (*Proof, error) {
	w, err := shamir.RandInt(rand, g.Q)
	if err != nil {
		return nil, err
	}
	t1 := g.Exp(g1, w)
	t2 := g.Exp(g2, w)
	c := challenge(g, g1, g2, a, b, t1, t2)
	z := new(big.Int).Mul(c, x)
	z.Add(z, w)
	z.Mod(z, g.Q)
	return &Proof{C: c, Z: z}, nil
}

// Verify checks a proof against the claimed pairs (g1, a) and (g2, b).
//
// b is membership-checked through the group's verdict memo: in every use
// here (coin and decryption shares) b is a verification key that recurs
// across thousands of checks. a is the share value and is checked exactly
// each time it is first seen — callers that verify the same share many
// times (one per simulated party) dedup whole verdicts a layer up.
func Verify(g *group.Group, g1, g2, a, b *big.Int, p *Proof) error {
	if p == nil || p.C == nil || p.Z == nil {
		return errors.New("dleq: nil proof")
	}
	if !g.IsElement(a) || !g.IsElementCached(b) {
		return errors.New("dleq: claimed values not in group")
	}
	// Recompute commitments: t1 = g1^z * a^-c, t2 = g2^z * b^-c.
	negC := new(big.Int).Neg(p.C)
	negC.Mod(negC, g.Q)
	t1 := g.Mul(g.Exp(g1, p.Z), g.Exp(a, negC))
	t2 := g.Mul(g.Exp(g2, p.Z), g.Exp(b, negC))
	if challenge(g, g1, g2, a, b, t1, t2).Cmp(p.C) != 0 {
		return errors.New("dleq: proof rejected")
	}
	return nil
}

// Statement is one (claimed pairs, proof) instance for VerifyBatch.
type Statement struct {
	G1, G2 *big.Int // bases
	A, B   *big.Int // claimed powers: A = G1^x, B = G2^x
	Proof  *Proof
}

// VerifyBatch checks a batch of proofs and returns one verdict per
// statement, in order. A statement fails exactly when Verify would fail
// it — the batch rejects everything per-statement verification rejects.
//
// The amortization is the shared fixed-point work (memoized membership of
// the recurring B values, one pass over the batch); each proof's
// commitments are still recomputed individually. A randomized-linear-
// combination shortcut is impossible for Fiat–Shamir Chaum–Pedersen
// proofs: the verifier must reproduce every proof's exact commitments
// (t1, t2) to recheck its challenge hash, and a random combination of
// several statements yields only a blended commitment that validates no
// individual challenge. (Where the per-item check is a bare group
// equation — e.g. subgroup membership v^Q = 1 — an RLC is unsound here
// too: Z_p^* has small-order components outside the subgroup, which a
// combination detects only with constant probability, and this simulator
// requires accept/reject decisions to be exact.)
func VerifyBatch(g *group.Group, stmts []Statement) []error {
	errs := make([]error, len(stmts))
	for i, st := range stmts {
		errs[i] = Verify(g, st.G1, st.G2, st.A, st.B, st.Proof)
	}
	return errs
}

func challenge(g *group.Group, parts ...*big.Int) *big.Int {
	bufs := make([][]byte, len(parts))
	for i, p := range parts {
		bufs[i] = p.Bytes()
	}
	return g.HashToScalar("dleq-v1", bufs...)
}
