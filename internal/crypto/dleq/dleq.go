// Package dleq implements non-interactive Chaum–Pedersen proofs of discrete
// logarithm equality over a Schnorr group (Fiat–Shamir transform).
//
// A proof convinces a verifier that log_{g1}(a) == log_{g2}(b) without
// revealing the exponent. The threshold coin and threshold encryption
// schemes attach such proofs to their shares so Byzantine nodes cannot
// inject garbage shares: a bad share fails verification and is discarded,
// which the fault-injection tests exercise.
package dleq

import (
	"errors"
	"io"
	"math/big"

	"repro/internal/crypto/group"
	"repro/internal/crypto/shamir"
)

// Proof is a Fiat–Shamir Chaum–Pedersen proof (challenge, response).
type Proof struct {
	C *big.Int
	Z *big.Int
}

// Size returns the serialized proof size in bytes for the given group.
func Size(g *group.Group) int { return 32 + g.ScalarLen() }

// Prove returns a proof that a = g1^x and b = g2^x share the exponent x.
func Prove(g *group.Group, g1, g2, a, b, x *big.Int, rand io.Reader) (*Proof, error) {
	w, err := shamir.RandInt(rand, g.Q)
	if err != nil {
		return nil, err
	}
	t1 := g.Exp(g1, w)
	t2 := g.Exp(g2, w)
	c := challenge(g, g1, g2, a, b, t1, t2)
	z := new(big.Int).Mul(c, x)
	z.Add(z, w)
	z.Mod(z, g.Q)
	return &Proof{C: c, Z: z}, nil
}

// Verify checks a proof against the claimed pairs (g1, a) and (g2, b).
func Verify(g *group.Group, g1, g2, a, b *big.Int, p *Proof) error {
	if p == nil || p.C == nil || p.Z == nil {
		return errors.New("dleq: nil proof")
	}
	if !g.IsElement(a) || !g.IsElement(b) {
		return errors.New("dleq: claimed values not in group")
	}
	// Recompute commitments: t1 = g1^z * a^-c, t2 = g2^z * b^-c.
	negC := new(big.Int).Neg(p.C)
	negC.Mod(negC, g.Q)
	t1 := g.Mul(g.Exp(g1, p.Z), g.Exp(a, negC))
	t2 := g.Mul(g.Exp(g2, p.Z), g.Exp(b, negC))
	if challenge(g, g1, g2, a, b, t1, t2).Cmp(p.C) != 0 {
		return errors.New("dleq: proof rejected")
	}
	return nil
}

func challenge(g *group.Group, parts ...*big.Int) *big.Int {
	bufs := make([][]byte, len(parts))
	for i, p := range parts {
		bufs[i] = p.Bytes()
	}
	return g.HashToScalar("dleq-v1", bufs...)
}
