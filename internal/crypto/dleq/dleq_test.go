package dleq

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/crypto/group"
)

func testGroup() *group.Group { return group.Default() }

func TestProveVerify(t *testing.T) {
	g := testGroup()
	rng := rand.New(rand.NewSource(1))
	x := big.NewInt(987654321)
	g1 := g.G
	g2 := g.HashToGroup("base2", []byte("msg"))
	a := g.Exp(g1, x)
	b := g.Exp(g2, x)
	p, err := Prove(g, g1, g2, a, b, x, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, g1, g2, a, b, p); err != nil {
		t.Errorf("honest proof rejected: %v", err)
	}
}

func TestVerifyRejectsWrongExponent(t *testing.T) {
	g := testGroup()
	rng := rand.New(rand.NewSource(2))
	x := big.NewInt(111)
	y := big.NewInt(222)
	g1 := g.G
	g2 := g.HashToGroup("base2", []byte("m"))
	a := g.Exp(g1, x)
	b := g.Exp(g2, y) // different exponent!
	p, err := Prove(g, g1, g2, a, b, x, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, g1, g2, a, b, p); err == nil {
		t.Error("proof over unequal logs accepted")
	}
}

func TestVerifyRejectsTamperedProof(t *testing.T) {
	g := testGroup()
	rng := rand.New(rand.NewSource(3))
	x := big.NewInt(777)
	g2 := g.HashToGroup("b", []byte("m"))
	a, b := g.ExpG(x), g.Exp(g2, x)
	p, err := Prove(g, g.G, g2, a, b, x, rng)
	if err != nil {
		t.Fatal(err)
	}
	tampered := &Proof{C: new(big.Int).Add(p.C, big.NewInt(1)), Z: p.Z}
	if err := Verify(g, g.G, g2, a, b, tampered); err == nil {
		t.Error("tampered challenge accepted")
	}
	tampered = &Proof{C: p.C, Z: new(big.Int).Add(p.Z, big.NewInt(1))}
	if err := Verify(g, g.G, g2, a, b, tampered); err == nil {
		t.Error("tampered response accepted")
	}
}

func TestVerifyRejectsNonElements(t *testing.T) {
	g := testGroup()
	rng := rand.New(rand.NewSource(4))
	x := big.NewInt(5)
	g2 := g.HashToGroup("b", []byte("m"))
	a, b := g.ExpG(x), g.Exp(g2, x)
	p, err := Prove(g, g.G, g2, a, b, x, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, g.G, g2, big.NewInt(0), b, p); err == nil {
		t.Error("zero element accepted")
	}
	if err := Verify(g, g.G, g2, a, b, nil); err == nil {
		t.Error("nil proof accepted")
	}
}

func TestProofBindsToBases(t *testing.T) {
	g := testGroup()
	rng := rand.New(rand.NewSource(5))
	x := big.NewInt(31337)
	g2 := g.HashToGroup("b", []byte("m"))
	g3 := g.HashToGroup("b", []byte("other"))
	a, b := g.ExpG(x), g.Exp(g2, x)
	p, err := Prove(g, g.G, g2, a, b, x, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Same (a, b) against a different second base must fail.
	if err := Verify(g, g.G, g3, a, b, p); err == nil {
		t.Error("proof transplanted to different base accepted")
	}
}

func TestSizePositive(t *testing.T) {
	for _, g := range group.All() {
		if Size(g) <= 32 {
			t.Errorf("%s: Size = %d", g.Name, Size(g))
		}
	}
}
