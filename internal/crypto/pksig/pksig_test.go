package pksig

import (
	"math/rand"
	"testing"
)

func TestSignVerifyAllSchemes(t *testing.T) {
	for _, s := range AllSchemes() {
		s := s
		t.Run(string(s), func(t *testing.T) {
			rng := rand.New(rand.NewSource(1))
			key, err := Generate(s, rng)
			if err != nil {
				t.Fatal(err)
			}
			msg := []byte("frame payload")
			sig, err := key.Sign(msg)
			if err != nil {
				t.Fatal(err)
			}
			if len(sig) != s.SignatureLen() {
				t.Errorf("signature %d bytes, want %d", len(sig), s.SignatureLen())
			}
			pub := key.Public()
			if err := pub.Verify(msg, sig); err != nil {
				t.Errorf("honest signature rejected: %v", err)
			}
			if err := pub.Verify([]byte("tampered"), sig); err == nil {
				t.Error("wrong message accepted")
			}
			sig[0] ^= 0xFF
			if err := pub.Verify(msg, sig); err == nil {
				t.Error("tampered signature accepted")
			}
		})
	}
}

func TestCrossKeyRejection(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	k1, err := Generate(SchemeECDSAP256, rng)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := Generate(SchemeECDSAP256, rng)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("m")
	sig, err := k1.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := k2.Public().Verify(msg, sig); err == nil {
		t.Error("signature verified under wrong key")
	}
}

func TestSignatureSizeLadder(t *testing.T) {
	sizes := map[Scheme]int{
		SchemeECDSAP224: 56,
		SchemeECDSAP256: 64,
		SchemeEd25519:   64,
		SchemeECDSAP384: 96,
		SchemeECDSAP521: 132,
	}
	for s, want := range sizes {
		if got := s.SignatureLen(); got != want {
			t.Errorf("%s: SignatureLen = %d, want %d", s, got, want)
		}
	}
}

func TestUnknownScheme(t *testing.T) {
	if _, err := Generate("rot13", rand.New(rand.NewSource(1))); err == nil {
		t.Error("unknown scheme accepted")
	}
	if Scheme("rot13").SignatureLen() != 0 {
		t.Error("unknown scheme has nonzero signature size")
	}
}

func TestWrongLengthSignatureRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	key, err := Generate(SchemeECDSAP256, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := key.Public().Verify([]byte("m"), []byte{1, 2, 3}); err == nil {
		t.Error("truncated signature accepted")
	}
}
