// Package pksig wraps the standard library's public-key signature schemes
// behind one interface with fixed-width signatures.
//
// Every frame a node transmits is signed (the paper: "each message requires
// a public-key digital signature"), so signature size directly consumes
// packet space that batching could otherwise use — the trade-off the
// paper's Fig. 10c quantifies across five micro-ecc curves. The stdlib has
// no secp160r1/secp192r1, so the reproduction offers five stdlib schemes
// (Ed25519 and ECDSA over P-224/P-256/P-384/P-521) spanning the same
// size/cost ladder; the mapping is documented in DESIGN.md.
package pksig

import (
	"crypto/ecdsa"
	"crypto/ed25519"
	"crypto/elliptic"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// Scheme identifies a signature scheme.
type Scheme string

// Supported schemes, lightest signature first.
const (
	SchemeEd25519   Scheme = "ed25519"
	SchemeECDSAP224 Scheme = "ecdsa-p224"
	SchemeECDSAP256 Scheme = "ecdsa-p256"
	SchemeECDSAP384 Scheme = "ecdsa-p384"
	SchemeECDSAP521 Scheme = "ecdsa-p521"
)

// AllSchemes returns the supported schemes in increasing signature size.
func AllSchemes() []Scheme {
	return []Scheme{SchemeECDSAP224, SchemeECDSAP256, SchemeEd25519, SchemeECDSAP384, SchemeECDSAP521}
}

// SignatureLen returns the fixed signature length of a scheme in bytes.
func (s Scheme) SignatureLen() int {
	switch s {
	case SchemeEd25519:
		return ed25519.SignatureSize
	case SchemeECDSAP224:
		return 2 * 28
	case SchemeECDSAP256:
		return 2 * 32
	case SchemeECDSAP384:
		return 2 * 48
	case SchemeECDSAP521:
		return 2 * 66
	default:
		return 0
	}
}

func (s Scheme) curve() elliptic.Curve {
	switch s {
	case SchemeECDSAP224:
		return elliptic.P224()
	case SchemeECDSAP256:
		return elliptic.P256()
	case SchemeECDSAP384:
		return elliptic.P384()
	case SchemeECDSAP521:
		return elliptic.P521()
	default:
		return nil
	}
}

// PrivateKey signs messages under one scheme.
type PrivateKey struct {
	scheme Scheme
	ec     *ecdsa.PrivateKey
	ed     ed25519.PrivateKey
	rand   io.Reader
}

// PublicKey verifies signatures.
type PublicKey struct {
	scheme Scheme
	ec     *ecdsa.PublicKey
	ed     ed25519.PublicKey
}

// Generate creates a key pair for the scheme using rand (pass a seeded
// reader for deterministic simulations).
func Generate(s Scheme, rand io.Reader) (*PrivateKey, error) {
	switch s {
	case SchemeEd25519:
		_, priv, err := ed25519.GenerateKey(rand)
		if err != nil {
			return nil, fmt.Errorf("pksig: generating %s: %w", s, err)
		}
		return &PrivateKey{scheme: s, ed: priv, rand: rand}, nil
	case SchemeECDSAP224, SchemeECDSAP256, SchemeECDSAP384, SchemeECDSAP521:
		priv, err := ecdsa.GenerateKey(s.curve(), rand)
		if err != nil {
			return nil, fmt.Errorf("pksig: generating %s: %w", s, err)
		}
		return &PrivateKey{scheme: s, ec: priv, rand: rand}, nil
	default:
		return nil, fmt.Errorf("pksig: unknown scheme %q", s)
	}
}

// Scheme returns the key's scheme.
func (k *PrivateKey) Scheme() Scheme { return k.scheme }

// Public returns the verification key.
func (k *PrivateKey) Public() PublicKey {
	if k.ed != nil {
		return PublicKey{scheme: k.scheme, ed: k.ed.Public().(ed25519.PublicKey)}
	}
	return PublicKey{scheme: k.scheme, ec: &k.ec.PublicKey}
}

// Sign returns a fixed-width signature over msg.
func (k *PrivateKey) Sign(msg []byte) ([]byte, error) {
	switch {
	case k.ed != nil:
		return ed25519.Sign(k.ed, msg), nil
	case k.ec != nil:
		digest := sha256.Sum256(msg)
		r, s, err := ecdsa.Sign(k.rand, k.ec, digest[:])
		if err != nil {
			return nil, fmt.Errorf("pksig: signing: %w", err)
		}
		half := k.scheme.SignatureLen() / 2
		out := make([]byte, 2*half)
		r.FillBytes(out[:half])
		s.FillBytes(out[half:])
		return out, nil
	default:
		return nil, errors.New("pksig: zero key")
	}
}

// ErrBadSignature is returned by Verify on any verification failure.
var ErrBadSignature = errors.New("pksig: signature verification failed")

// Scheme returns the key's scheme.
func (p PublicKey) Scheme() Scheme { return p.scheme }

// Verify checks sig over msg.
func (p PublicKey) Verify(msg, sig []byte) error {
	switch {
	case p.ed != nil:
		if !ed25519.Verify(p.ed, msg, sig) {
			return ErrBadSignature
		}
		return nil
	case p.ec != nil:
		if len(sig) != p.scheme.SignatureLen() {
			return ErrBadSignature
		}
		digest := sha256.Sum256(msg)
		half := len(sig) / 2
		r := new(big.Int).SetBytes(sig[:half])
		s := new(big.Int).SetBytes(sig[half:])
		if !ecdsa.Verify(p.ec, digest[:], r, s) {
			return ErrBadSignature
		}
		return nil
	default:
		return errors.New("pksig: zero key")
	}
}
