package group

import (
	"math/big"
	"testing"
)

func TestFixturesWellFormed(t *testing.T) {
	sets := All()
	if len(sets) != 6 {
		t.Fatalf("embedded %d groups, want 6", len(sets))
	}
	prevBits := 0
	for _, g := range sets {
		g := g
		t.Run(g.Name, func(t *testing.T) {
			if g.P.BitLen() != g.Bits {
				t.Errorf("P has %d bits, want %d", g.P.BitLen(), g.Bits)
			}
			if g.Q.BitLen() != 256 {
				t.Errorf("Q has %d bits, want 256", g.Q.BitLen())
			}
			if !g.P.ProbablyPrime(16) {
				t.Error("P not prime")
			}
			if !g.Q.ProbablyPrime(16) {
				t.Error("Q not prime")
			}
			// Q divides P-1.
			rem := new(big.Int).Mod(new(big.Int).Sub(g.P, big.NewInt(1)), g.Q)
			if rem.Sign() != 0 {
				t.Error("Q does not divide P-1")
			}
			// G has order Q: g^Q == 1 and g != 1.
			if g.G.Cmp(big.NewInt(1)) == 0 {
				t.Error("G is identity")
			}
			if g.Exp(g.G, g.Q).Cmp(big.NewInt(1)) != 0 {
				t.Error("G^Q != 1")
			}
		})
		if g.Bits <= prevBits {
			t.Errorf("groups not in ascending size: %d after %d", g.Bits, prevBits)
		}
		prevBits = g.Bits
	}
}

func TestByName(t *testing.T) {
	g, err := ByName("SG-1024")
	if err != nil {
		t.Fatal(err)
	}
	if g.Bits != 1024 {
		t.Errorf("Bits = %d", g.Bits)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestHashToGroupInSubgroup(t *testing.T) {
	g := Default()
	for _, msg := range []string{"", "a", "hello world", "coin:epoch=3:round=1"} {
		el := g.HashToGroup("test", []byte(msg))
		if !g.IsElement(el) {
			t.Errorf("HashToGroup(%q) not a subgroup element", msg)
		}
	}
}

func TestHashToGroupDistinct(t *testing.T) {
	g := Default()
	a := g.HashToGroup("test", []byte("m1"))
	b := g.HashToGroup("test", []byte("m2"))
	c := g.HashToGroup("other", []byte("m1"))
	if a.Cmp(b) == 0 || a.Cmp(c) == 0 {
		t.Error("hash collisions across messages/domains")
	}
	a2 := g.HashToGroup("test", []byte("m1"))
	if a.Cmp(a2) != 0 {
		t.Error("HashToGroup not deterministic")
	}
}

func TestHashToScalarRange(t *testing.T) {
	g := Default()
	s := g.HashToScalar("d", []byte("x"), []byte("y"))
	if s.Sign() < 0 || s.Cmp(g.Q) >= 0 {
		t.Errorf("scalar %v out of range", s)
	}
	// Length-prefixed: ("ab","c") must differ from ("a","bc").
	s1 := g.HashToScalar("d", []byte("ab"), []byte("c"))
	s2 := g.HashToScalar("d", []byte("a"), []byte("bc"))
	if s1.Cmp(s2) == 0 {
		t.Error("scalar hash is concatenation-ambiguous")
	}
}

func TestIsElementRejectsJunk(t *testing.T) {
	g := Default()
	cases := []*big.Int{
		nil,
		big.NewInt(0),
		new(big.Int).Neg(big.NewInt(5)),
		new(big.Int).Set(g.P),
		new(big.Int).Add(g.P, big.NewInt(1)),
	}
	for i, v := range cases {
		if g.IsElement(v) {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestExpIdentities(t *testing.T) {
	g := Default()
	x := big.NewInt(12345)
	gx := g.ExpG(x)
	if !g.IsElement(gx) {
		t.Fatal("g^x not in subgroup")
	}
	// (g^x)^-1 * g^x == 1
	inv := g.Inv(gx)
	if g.Mul(inv, gx).Cmp(big.NewInt(1)) != 0 {
		t.Error("inverse identity failed")
	}
	// g^(x+y) = g^x * g^y
	y := big.NewInt(54321)
	lhs := g.ExpG(new(big.Int).Add(x, y))
	rhs := g.Mul(g.ExpG(x), g.ExpG(y))
	if lhs.Cmp(rhs) != 0 {
		t.Error("homomorphism failed")
	}
}
