// Package group provides Schnorr groups: prime-order subgroups of Z_p^* with
// a 256-bit group order q, in several modulus sizes. They are the algebraic
// substrate for the threshold coin (package threshcoin) and threshold
// encryption (package threshenc) schemes.
//
// The paper evaluates six pairing-curve parameter sets (BN158 … FP512BN)
// from the MIRACL library; the Go standard library has no pairings, so the
// reproduction substitutes classic discrete-log groups whose modulus size
// ladder (512 … 3072 bits) plays the same role: lighter parameters give
// smaller group elements and faster exponentiations, heavier parameters the
// opposite. The mapping is recorded in DESIGN.md and surfaced by the
// benchmarks.
//
// Parameters are embedded constants (generated offline with crypto/rand;
// see fixtures.go) so simulations start instantly and deterministically.
package group

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/big"
	"sync"
)

// Group describes a prime-order subgroup of Z_p^*. The embedded parameter
// sets are process-wide singletons shared by every concurrently running
// simulation, so the memo fields below are mutex-guarded. Groups must not
// be copied by value.
type Group struct {
	Name string   // e.g. "SG-1024"
	Bits int      // modulus size in bits
	P    *big.Int // modulus (prime)
	Q    *big.Int // subgroup order (256-bit prime)
	G    *big.Int // generator of the order-q subgroup

	mu       sync.Mutex
	cofactor *big.Int        // (P-1)/Q, computed on first HashToGroup
	members  map[string]bool // memoized IsElement verdicts for recurring values
}

// ElementLen returns the byte length of a serialized group element.
func (g *Group) ElementLen() int { return (g.P.BitLen() + 7) / 8 }

// ScalarLen returns the byte length of a serialized exponent.
func (g *Group) ScalarLen() int { return (g.Q.BitLen() + 7) / 8 }

// Exp returns base^e mod P.
func (g *Group) Exp(base, e *big.Int) *big.Int {
	return new(big.Int).Exp(base, e, g.P)
}

// ExpG returns G^e mod P.
func (g *Group) ExpG(e *big.Int) *big.Int { return g.Exp(g.G, e) }

// Mul returns a*b mod P.
func (g *Group) Mul(a, b *big.Int) *big.Int {
	out := new(big.Int).Mul(a, b)
	return out.Mod(out, g.P)
}

// Inv returns the multiplicative inverse of a mod P.
func (g *Group) Inv(a *big.Int) *big.Int {
	return new(big.Int).ModInverse(a, g.P)
}

// HashToGroup maps a message into the order-q subgroup via
// H(domain || msg) expanded to a field element and raised to the cofactor.
func (g *Group) HashToGroup(domain string, msg []byte) *big.Int {
	// Expand enough hash output to cover the modulus.
	need := g.ElementLen() + 16
	buf := make([]byte, 0, need)
	var ctr uint32
	for len(buf) < need {
		h := sha256.New()
		h.Write([]byte(domain))
		var cb [4]byte
		binary.BigEndian.PutUint32(cb[:], ctr)
		h.Write(cb[:])
		h.Write(msg)
		buf = h.Sum(buf)
		ctr++
	}
	x := new(big.Int).SetBytes(buf)
	x.Mod(x, g.P)
	// Raise to cofactor (P-1)/Q to land in the order-q subgroup.
	y := g.Exp(x, g.cofactorVal())
	if y.Sign() == 0 || y.Cmp(big.NewInt(1)) == 0 {
		// Degenerate with negligible probability; perturb deterministically.
		return g.HashToGroup(domain+"#", msg)
	}
	return y
}

// HashToScalar maps bytes to an exponent in [0, Q).
func (g *Group) HashToScalar(domain string, parts ...[]byte) *big.Int {
	h := sha256.New()
	h.Write([]byte(domain))
	for _, p := range parts {
		var lb [4]byte
		binary.BigEndian.PutUint32(lb[:], uint32(len(p)))
		h.Write(lb[:])
		h.Write(p)
	}
	d := h.Sum(nil)
	x := new(big.Int).SetBytes(d)
	return x.Mod(x, g.Q)
}

// IsElement reports whether v is a valid element of the order-q subgroup.
func (g *Group) IsElement(v *big.Int) bool {
	if v == nil || v.Sign() <= 0 || v.Cmp(g.P) >= 0 {
		return false
	}
	return g.Exp(v, g.Q).Cmp(big.NewInt(1)) == 0
}

// IsElementCached is IsElement with a per-group verdict memo. Use it for
// values expected to recur across many checks — verification keys, public
// commitments — not for attacker-controlled one-shot values, which would
// only churn the (bounded) memo. The verdict is a pure function of the
// value, so a hit is exact.
func (g *Group) IsElementCached(v *big.Int) bool {
	if v == nil || v.Sign() <= 0 || v.Cmp(g.P) >= 0 {
		return false
	}
	key := string(v.Bytes())
	g.mu.Lock()
	ok, hit := g.members[key]
	g.mu.Unlock()
	if hit {
		return ok
	}
	ok = g.Exp(v, g.Q).Cmp(big.NewInt(1)) == 0
	g.mu.Lock()
	if g.members == nil {
		g.members = make(map[string]bool)
	} else if len(g.members) >= 4096 {
		clear(g.members)
	}
	g.members[key] = ok
	g.mu.Unlock()
	return ok
}

// cofactorVal returns (P-1)/Q, computed once per group.
func (g *Group) cofactorVal() *big.Int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.cofactor == nil {
		c := new(big.Int).Sub(g.P, big.NewInt(1))
		g.cofactor = c.Div(c, g.Q)
	}
	return g.cofactor
}

// ByName returns the embedded group with the given name.
func ByName(name string) (*Group, error) {
	for _, g := range All() {
		if g.Name == name {
			return g, nil
		}
	}
	return nil, fmt.Errorf("group: unknown parameter set %q", name)
}

// All returns the embedded parameter sets, lightest first.
func All() []*Group { return fixtures() }

// Default returns the lightest parameter set (the analogue of the paper's
// BN158 recommendation).
func Default() *Group { return All()[0] }
