// Package threshenc implements hybrid threshold ElGamal encryption: a
// threshold KEM over a Schnorr group with AES-CTR payload encryption.
//
// HoneyBadgerBFT and BEAT threshold-encrypt each node's proposal so that
// the adversary cannot censor specific transactions before the set of
// accepted proposals is fixed; nodes exchange decryption shares after ACS
// completes. Decryption shares carry DLEQ proofs so Byzantine shares are
// rejected. The paper implements the same primitive over MIRACL curves;
// see DESIGN.md for the substitution rationale.
package threshenc

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"

	"repro/internal/crypto/dleq"
	"repro/internal/crypto/group"
	"repro/internal/crypto/shamir"
)

// PublicKey encrypts and verifies decryption shares.
type PublicKey struct {
	Group *group.Group
	H     *big.Int   // g^z
	VKs   []*big.Int // g^{z_i}
	K     int
	L     int

	// cc is attached by Deal: memoized decryption-share verdicts. Every
	// party verifies every other party's share of each ciphertext, and
	// the verdict is a pure function of public inputs, so hits are exact.
	cc *teCache
}

type teCache struct {
	mu       sync.Mutex
	verified map[[32]byte]error
}

// PrivateShare is party i's decryption key share.
type PrivateShare struct {
	Index int
	Z     *big.Int
}

// Ciphertext is a hybrid ElGamal ciphertext.
type Ciphertext struct {
	C1   *big.Int // g^r
	Body []byte   // AES-CTR(seed, plaintext)
	Tag  [32]byte // binding digest over (C1, Body)
}

// DecShare is one party's decryption share with proof.
type DecShare struct {
	Index int
	D     *big.Int // C1^{z_i}
	Proof *dleq.Proof
}

// Key is the dealer output.
type Key struct {
	Public PublicKey
	Shares []PrivateShare
}

// Deal generates a (k, l) threshold encryption key.
func Deal(g *group.Group, k, l int, rand io.Reader) (*Key, error) {
	z, err := shamir.RandInt(rand, g.Q)
	if err != nil {
		return nil, fmt.Errorf("threshenc: sampling secret: %w", err)
	}
	shares, err := shamir.Deal(z, k, l, g.Q, rand)
	if err != nil {
		return nil, err
	}
	priv := make([]PrivateShare, l)
	vks := make([]*big.Int, l)
	for i, sh := range shares {
		priv[i] = PrivateShare{Index: sh.X, Z: sh.Y}
		vks[i] = g.ExpG(sh.Y)
	}
	return &Key{
		Public: PublicKey{
			Group: g, H: g.ExpG(z), VKs: vks, K: k, L: l,
			cc: &teCache{verified: make(map[[32]byte]error)},
		},
		Shares: priv,
	}, nil
}

// Encrypt produces a ciphertext decryptable by any k parties.
func (pk *PublicKey) Encrypt(plaintext []byte, rand io.Reader) (*Ciphertext, error) {
	r, err := shamir.RandInt(rand, pk.Group.Q)
	if err != nil {
		return nil, fmt.Errorf("threshenc: sampling nonce: %w", err)
	}
	c1 := pk.Group.ExpG(r)
	seed := kdf(pk.Group.Exp(pk.H, r))
	body := make([]byte, len(plaintext))
	xorStream(seed, plaintext, body)
	ct := &Ciphertext{C1: c1, Body: body}
	ct.Tag = bindTag(ct)
	return ct, nil
}

// DecryptShare produces party i's decryption share for ct.
func (pk *PublicKey) DecryptShare(priv PrivateShare, ct *Ciphertext, rand io.Reader) (*DecShare, error) {
	if err := checkCiphertext(ct); err != nil {
		return nil, err
	}
	d := pk.Group.Exp(ct.C1, priv.Z)
	proof, err := dleq.Prove(pk.Group, pk.Group.G, ct.C1, pk.VKs[priv.Index-1], d, priv.Z, rand)
	if err != nil {
		return nil, fmt.Errorf("threshenc: proving share: %w", err)
	}
	return &DecShare{Index: priv.Index, D: d, Proof: proof}, nil
}

// VerifyShare checks a decryption share against ct. The ciphertext's
// binding tag is always rechecked exactly (it is a cheap hash); the DLEQ
// proof verdict — the expensive part — is memoized per (ciphertext,
// share), which is sound because a valid tag collision-resistantly binds
// (C1, Body), so the key below pins every input the proof check reads.
func (pk *PublicKey) VerifyShare(ct *Ciphertext, sh *DecShare) error {
	if sh == nil || sh.Index < 1 || sh.Index > pk.L {
		return errors.New("threshenc: bad share index")
	}
	if sh.D == nil || sh.Proof == nil || sh.Proof.C == nil || sh.Proof.Z == nil {
		return errors.New("threshenc: missing share material")
	}
	if err := checkCiphertext(ct); err != nil {
		return err
	}
	if pk.cc == nil {
		return dleq.Verify(pk.Group, pk.Group.G, ct.C1, pk.VKs[sh.Index-1], sh.D, sh.Proof)
	}
	key := decShareKey(ct, sh)
	pk.cc.mu.Lock()
	verdict, hit := pk.cc.verified[key]
	pk.cc.mu.Unlock()
	if hit {
		return verdict
	}
	err := dleq.Verify(pk.Group, pk.Group.G, ct.C1, pk.VKs[sh.Index-1], sh.D, sh.Proof)
	pk.cc.mu.Lock()
	if len(pk.cc.verified) >= 4096 {
		clear(pk.cc.verified)
	}
	pk.cc.verified[key] = err
	pk.cc.mu.Unlock()
	return err
}

// VerifyShares checks a batch of decryption shares of one ciphertext,
// returning one verdict per share in order. The ciphertext tag is checked
// once for the batch; each share's proof is still checked individually
// and exactly (see dleq.VerifyBatch), so a batch rejects precisely the
// shares per-share verification rejects.
func (pk *PublicKey) VerifyShares(ct *Ciphertext, shares []*DecShare) []error {
	errs := make([]error, len(shares))
	if err := checkCiphertext(ct); err != nil {
		for i := range errs {
			errs[i] = err
		}
		return errs
	}
	for i, sh := range shares {
		errs[i] = pk.VerifyShare(ct, sh)
	}
	return errs
}

// decShareKey digests a (ciphertext, share) pair for the verdict memo.
// The tag covers (C1, Body); the share fields cover everything else the
// proof check reads.
func decShareKey(ct *Ciphertext, sh *DecShare) [32]byte {
	h := sha256.New()
	h.Write(ct.Tag[:])
	var lb [4]byte
	binary.BigEndian.PutUint32(lb[:], uint32(sh.Index))
	h.Write(lb[:])
	for _, v := range []*big.Int{sh.D, sh.Proof.C, sh.Proof.Z} {
		b := v.Bytes()
		binary.BigEndian.PutUint32(lb[:], uint32(len(b)))
		h.Write(lb[:])
		h.Write(b)
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// Combine recovers the plaintext from k decryption shares.
func (pk *PublicKey) Combine(ct *Ciphertext, shares []*DecShare) ([]byte, error) {
	if err := checkCiphertext(ct); err != nil {
		return nil, err
	}
	if len(shares) < pk.K {
		return nil, fmt.Errorf("threshenc: need %d shares, have %d", pk.K, len(shares))
	}
	use := shares[:pk.K]
	pts := make([]shamir.Share, pk.K)
	seen := make(map[int]bool, pk.K)
	for i, sh := range use {
		if seen[sh.Index] {
			return nil, fmt.Errorf("threshenc: duplicate share %d", sh.Index)
		}
		seen[sh.Index] = true
		pts[i] = shamir.Share{X: sh.Index}
	}
	lams := shamir.LagrangeSet(pts, pk.Group.Q)
	hr := big.NewInt(1)
	for i, sh := range use {
		hr = pk.Group.Mul(hr, pk.Group.Exp(sh.D, lams[i]))
	}
	out := make([]byte, len(ct.Body))
	xorStream(kdf(hr), ct.Body, out)
	return out, nil
}

// CiphertextOverhead returns the bytes a ciphertext adds to a plaintext.
func (pk *PublicKey) CiphertextOverhead() int { return pk.Group.ElementLen() + 32 + 4 }

// ShareLen returns the approximate serialized decryption-share size.
func (pk *PublicKey) ShareLen() int {
	return pk.Group.ElementLen() + dleq.Size(pk.Group) + 2
}

func checkCiphertext(ct *Ciphertext) error {
	if ct == nil || ct.C1 == nil {
		return errors.New("threshenc: nil ciphertext")
	}
	if bindTag(ct) != ct.Tag {
		return errors.New("threshenc: ciphertext tag mismatch")
	}
	return nil
}

func bindTag(ct *Ciphertext) [32]byte {
	h := sha256.New()
	h.Write([]byte("threshenc-tag"))
	h.Write(ct.C1.Bytes())
	h.Write(ct.Body)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

func kdf(el *big.Int) [32]byte {
	h := sha256.New()
	h.Write([]byte("threshenc-kdf"))
	h.Write(el.Bytes())
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// xorStream encrypts/decrypts src into dst with AES-CTR under seed.
func xorStream(seed [32]byte, src, dst []byte) {
	block, err := aes.NewCipher(seed[:16])
	if err != nil {
		panic(err) // 16-byte key is always valid
	}
	var iv [aes.BlockSize]byte
	copy(iv[:], seed[16:])
	cipher.NewCTR(block, iv[:]).XORKeyStream(dst, src)
}
