package threshenc

import (
	"bytes"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/crypto/group"
)

func testKey(t testing.TB, k, l int) *Key {
	t.Helper()
	// Shared seeded fixture: tests and benchmarks with the same geometry
	// reuse one dealer run.
	key, err := DealCached(group.Default(), k, l, 21)
	if err != nil {
		t.Fatal(err)
	}
	return key
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	key := testKey(t, 2, 4)
	rng := rand.New(rand.NewSource(1))
	plaintext := []byte("tx1;tx2;tx3 - a batch of transactions for epoch 7")
	ct, err := key.Public.Encrypt(plaintext, rng)
	if err != nil {
		t.Fatal(err)
	}
	var shares []*DecShare
	for i := 0; i < 2; i++ {
		sh, err := key.Public.DecryptShare(key.Shares[i], ct, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := key.Public.VerifyShare(ct, sh); err != nil {
			t.Fatalf("honest share %d rejected: %v", i, err)
		}
		shares = append(shares, sh)
	}
	got, err := key.Public.Combine(ct, shares)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plaintext) {
		t.Errorf("decrypted %q, want %q", got, plaintext)
	}
}

func TestDifferentQuorumsSamePlaintext(t *testing.T) {
	key := testKey(t, 2, 4)
	rng := rand.New(rand.NewSource(2))
	plaintext := []byte("quorum independence")
	ct, err := key.Public.Encrypt(plaintext, rng)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]*DecShare, 4)
	for i := range all {
		sh, err := key.Public.DecryptShare(key.Shares[i], ct, rng)
		if err != nil {
			t.Fatal(err)
		}
		all[i] = sh
	}
	a, err := key.Public.Combine(ct, []*DecShare{all[0], all[3]})
	if err != nil {
		t.Fatal(err)
	}
	b, err := key.Public.Combine(ct, []*DecShare{all[2], all[1]})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) || !bytes.Equal(a, plaintext) {
		t.Error("quorum-dependent decryption")
	}
}

func TestCiphertextHidesPlaintext(t *testing.T) {
	key := testKey(t, 2, 4)
	rng := rand.New(rand.NewSource(3))
	plaintext := []byte("secret payload secret payload")
	ct, err := key.Public.Encrypt(plaintext, rng)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(ct.Body, plaintext[:8]) {
		t.Error("ciphertext leaks plaintext prefix")
	}
	// Same plaintext encrypted twice differs (fresh nonce).
	ct2, err := key.Public.Encrypt(plaintext, rng)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ct.Body, ct2.Body) {
		t.Error("deterministic encryption across calls")
	}
}

func TestTamperedCiphertextRejected(t *testing.T) {
	key := testKey(t, 2, 4)
	rng := rand.New(rand.NewSource(4))
	ct, err := key.Public.Encrypt([]byte("data"), rng)
	if err != nil {
		t.Fatal(err)
	}
	ct.Body[0] ^= 0xFF
	if _, err := key.Public.DecryptShare(key.Shares[0], ct, rng); err == nil {
		t.Error("tampered ciphertext accepted by DecryptShare")
	}
	if _, err := key.Public.Combine(ct, nil); err == nil {
		t.Error("tampered ciphertext accepted by Combine")
	}
}

func TestShareVerificationRejectsByzantine(t *testing.T) {
	key := testKey(t, 2, 4)
	rng := rand.New(rand.NewSource(5))
	ct, err := key.Public.Encrypt([]byte("data"), rng)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := key.Public.DecryptShare(key.Shares[0], ct, rng)
	if err != nil {
		t.Fatal(err)
	}
	bad := &DecShare{Index: sh.Index, D: new(big.Int).Add(sh.D, big.NewInt(1)), Proof: sh.Proof}
	if err := key.Public.VerifyShare(ct, bad); err == nil {
		t.Error("tampered decryption share accepted")
	}
	// A bad share slipped into Combine yields wrong plaintext; since the
	// protocol verifies shares first, we assert shares ARE distinguishable.
	if err := key.Public.VerifyShare(ct, sh); err != nil {
		t.Errorf("honest share rejected: %v", err)
	}
}

func TestCombineErrors(t *testing.T) {
	key := testKey(t, 3, 4)
	rng := rand.New(rand.NewSource(6))
	ct, err := key.Public.Encrypt([]byte("data"), rng)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := key.Public.DecryptShare(key.Shares[0], ct, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := key.Public.Combine(ct, []*DecShare{sh}); err == nil {
		t.Error("too few shares accepted")
	}
	if _, err := key.Public.Combine(ct, []*DecShare{sh, sh, sh}); err == nil {
		t.Error("duplicate shares accepted")
	}
}

func TestEmptyPlaintext(t *testing.T) {
	key := testKey(t, 2, 4)
	rng := rand.New(rand.NewSource(7))
	ct, err := key.Public.Encrypt(nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	var shares []*DecShare
	for i := 0; i < 2; i++ {
		sh, err := key.Public.DecryptShare(key.Shares[i], ct, rng)
		if err != nil {
			t.Fatal(err)
		}
		shares = append(shares, sh)
	}
	got, err := key.Public.Combine(ct, shares)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty plaintext round-trip produced %d bytes", len(got))
	}
}
