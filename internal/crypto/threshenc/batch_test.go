package threshenc

import (
	"math/big"
	"math/rand"
	"testing"
)

// TestVerifySharesMatchesPerShare pins the batch contract against an
// adversarial share matrix — including a tampered ciphertext, which must
// fail every share in the batch exactly as it fails each per-share check.
func TestVerifySharesMatchesPerShare(t *testing.T) {
	key := testKey(t, 2, 4)
	rng := rand.New(rand.NewSource(34))
	ct, err := key.Public.Encrypt([]byte("batch payload"), rng)
	if err != nil {
		t.Fatal(err)
	}
	honest := make([]*DecShare, 4)
	for i := range honest {
		sh, err := key.Public.DecryptShare(key.Shares[i], ct, rng)
		if err != nil {
			t.Fatal(err)
		}
		honest[i] = sh
	}
	sh := honest[0]
	matrix := []*DecShare{
		honest[0],
		honest[1],
		{Index: sh.Index, D: new(big.Int).Add(sh.D, big.NewInt(1)), Proof: sh.Proof}, // tampered value
		{Index: 2, D: sh.D, Proof: sh.Proof},                                         // transplanted index
		{Index: sh.Index, D: sh.D, Proof: nil},                                       // missing proof
		{Index: 0, D: sh.D, Proof: sh.Proof},                                         // index underflow
		{Index: 99, D: sh.D, Proof: sh.Proof},                                        // index overflow
		nil,                                                                          // nil share
		honest[2],
	}

	batch := key.Public.VerifyShares(ct, matrix)
	if len(batch) != len(matrix) {
		t.Fatalf("got %d verdicts for %d shares", len(batch), len(matrix))
	}
	ref := key.Public // copy with the memo detached: the uncached reference
	ref.cc = nil
	for i, s := range matrix {
		want := ref.VerifyShare(ct, s)
		if (batch[i] == nil) != (want == nil) {
			t.Errorf("share %d: batch verdict %v, per-share verdict %v", i, batch[i], want)
		}
	}

	// A tampered ciphertext fails the whole batch, same as per-share.
	bad := &Ciphertext{C1: ct.C1, Body: append([]byte(nil), ct.Body...), Tag: ct.Tag}
	bad.Body[0] ^= 0xFF
	for i, err := range key.Public.VerifyShares(bad, honest[:2]) {
		if err == nil {
			t.Errorf("share %d accepted against tampered ciphertext", i)
		}
	}
}

// BenchmarkVerifyShare measures one uncached decryption-share verification.
func BenchmarkVerifyShare(b *testing.B) {
	key := testKey(b, 2, 4)
	rng := rand.New(rand.NewSource(45))
	ct, err := key.Public.Encrypt([]byte("bench payload"), rng)
	if err != nil {
		b.Fatal(err)
	}
	sh, err := key.Public.DecryptShare(key.Shares[0], ct, rng)
	if err != nil {
		b.Fatal(err)
	}
	ref := key.Public
	ref.cc = nil
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ref.VerifyShare(ct, sh); err != nil {
			b.Fatal(err)
		}
	}
}
