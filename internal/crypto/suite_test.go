package crypto

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/crypto/threshsig"
)

func TestDealSuites(t *testing.T) {
	suites, err := Deal(4, 1, LightConfig(), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(suites) != 4 {
		t.Fatalf("got %d suites", len(suites))
	}
	for i, s := range suites {
		if s.Index != i+1 {
			t.Errorf("suite %d has index %d", i, s.Index)
		}
		if s.TSLow.K != 2 { // f+1
			t.Errorf("TSLow threshold = %d, want 2", s.TSLow.K)
		}
		if s.TSHigh.K != 3 { // 2f+1
			t.Errorf("TSHigh threshold = %d, want 3", s.TSHigh.K)
		}
		if s.TC.K != 2 || s.TE.K != 2 {
			t.Errorf("coin/enc thresholds = %d/%d, want 2/2", s.TC.K, s.TE.K)
		}
	}
	// Cross-node verification: node 0 signs, node 3 verifies.
	msg := []byte("frame")
	sig, err := suites[0].Signer.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := suites[3].Verify[0].Verify(msg, sig); err != nil {
		t.Errorf("cross-node signature verification failed: %v", err)
	}
}

func TestDealRejectsBadSizes(t *testing.T) {
	if _, err := Deal(5, 1, LightConfig(), rand.New(rand.NewSource(1))); err == nil {
		t.Error("n != 3f+1 accepted")
	}
}

func TestDealThresholdInterop(t *testing.T) {
	suites, err := Deal(4, 1, LightConfig(), rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	msg := []byte("prbc:2")
	// f+1 = 2 shares from different suites combine under the shared public key.
	sh0, err := suites[0].TSLow.Sign(suites[0].TSLowShare, msg, rng)
	if err != nil {
		t.Fatal(err)
	}
	sh2, err := suites[2].TSLow.Sign(suites[2].TSLowShare, msg, rng)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := suites[1].TSLow.Combine(msg, []*threshsig.SigShare{sh0, sh2})
	if err != nil {
		t.Fatal(err)
	}
	if err := suites[3].TSLow.Verify(msg, sig); err != nil {
		t.Errorf("combined signature rejected across suites: %v", err)
	}
}

func TestCostModelMonotone(t *testing.T) {
	var prev time.Duration
	for _, row := range ParamSetNames() {
		c := CostFor(row.Ours)
		if c.TSSign <= prev {
			t.Errorf("%s: TSSign %v not increasing", row.Ours, c.TSSign)
		}
		prev = c.TSSign
		if c.TCShare >= c.TSSign {
			t.Errorf("%s: coin share %v not cheaper than threshold sign %v", row.Ours, c.TCShare, c.TSSign)
		}
	}
	// Unknown set falls back to base.
	if CostFor("junk") != CostFor("TS-512") {
		t.Error("fallback cost model mismatch")
	}
}

func TestConfigDescribe(t *testing.T) {
	if LightConfig().Describe() == "" {
		t.Error("empty describe")
	}
}

func TestSignatureSizesReport(t *testing.T) {
	pk, thr := SignatureSizes()
	if len(pk) != 5 || len(thr) != 6 {
		t.Fatalf("got %d pk / %d threshold rows, want 5/6", len(pk), len(thr))
	}
	for i := 1; i < len(thr); i++ {
		if thr[i].Size <= thr[i-1].Size {
			t.Errorf("threshold sizes not ascending at %s", thr[i].Name)
		}
	}
}
