package threshsig

import (
	"math/big"
	"math/rand"
	"testing"
)

func testKey(t testing.TB, k, l int) *Key {
	t.Helper()
	// Shared seeded fixture: every test and benchmark with the same
	// geometry reuses one dealer run (TS-512: fastest).
	key, err := DealCached("TS-512", k, l, 7)
	if err != nil {
		t.Fatal(err)
	}
	return key
}

func TestFixturesPresent(t *testing.T) {
	fixes := Fixtures()
	if len(fixes) != 6 {
		t.Fatalf("got %d fixtures, want 6", len(fixes))
	}
	prev := 0
	for _, f := range fixes {
		n := new(big.Int).Mul(f.P, f.Q)
		if n.BitLen() != f.Bits {
			t.Errorf("%s: modulus %d bits, want %d", f.Name, n.BitLen(), f.Bits)
		}
		if f.Bits <= prev {
			t.Errorf("fixtures not ascending at %s", f.Name)
		}
		prev = f.Bits
		if !f.P.ProbablyPrime(16) || !f.Q.ProbablyPrime(16) {
			t.Errorf("%s: non-prime fixture", f.Name)
		}
	}
	if _, err := FixtureByName("TS-512"); err != nil {
		t.Error(err)
	}
	if _, err := FixtureByName("bogus"); err == nil {
		t.Error("unknown fixture accepted")
	}
}

func TestSignCombineVerify(t *testing.T) {
	key := testKey(t, 2, 4)
	msg := []byte("prbc done: instance 3")
	rng := rand.New(rand.NewSource(1))
	var shares []*SigShare
	for i := 0; i < 2; i++ {
		sh, err := key.Public.Sign(key.Shares[i], msg, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := key.Public.VerifyShare(msg, sh); err != nil {
			t.Fatalf("honest share %d rejected: %v", i, err)
		}
		shares = append(shares, sh)
	}
	sig, err := key.Public.Combine(msg, shares)
	if err != nil {
		t.Fatal(err)
	}
	if err := key.Public.Verify(msg, sig); err != nil {
		t.Errorf("combined signature rejected: %v", err)
	}
	if err := key.Public.Verify([]byte("other message"), sig); err == nil {
		t.Error("signature verified against wrong message")
	}
}

func TestAnyQuorumSameSignature(t *testing.T) {
	key := testKey(t, 2, 4)
	msg := []byte("uniqueness")
	rng := rand.New(rand.NewSource(2))
	all := make([]*SigShare, 4)
	for i := range all {
		sh, err := key.Public.Sign(key.Shares[i], msg, rng)
		if err != nil {
			t.Fatal(err)
		}
		all[i] = sh
	}
	sigA, err := key.Public.Combine(msg, []*SigShare{all[0], all[1]})
	if err != nil {
		t.Fatal(err)
	}
	sigB, err := key.Public.Combine(msg, []*SigShare{all[2], all[3]})
	if err != nil {
		t.Fatal(err)
	}
	if sigA.S.Cmp(sigB.S) != 0 {
		t.Error("different quorums produced different signatures (RSA threshold sigs are unique)")
	}
}

func TestVerifyShareRejectsForgery(t *testing.T) {
	key := testKey(t, 2, 4)
	msg := []byte("m")
	rng := rand.New(rand.NewSource(3))
	sh, err := key.Public.Sign(key.Shares[0], msg, rng)
	if err != nil {
		t.Fatal(err)
	}
	bad := &SigShare{Index: sh.Index, X: new(big.Int).Add(sh.X, big.NewInt(1)), C: sh.C, Z: sh.Z}
	if err := key.Public.VerifyShare(msg, bad); err == nil {
		t.Error("tampered share value accepted")
	}
	// Share transplanted to another index.
	bad = &SigShare{Index: 2, X: sh.X, C: sh.C, Z: sh.Z}
	if err := key.Public.VerifyShare(msg, bad); err == nil {
		t.Error("share accepted under wrong index")
	}
	// Share for a different message.
	if err := key.Public.VerifyShare([]byte("m2"), sh); err != nil {
		// expected: proof binds message
	} else {
		t.Error("share accepted for wrong message")
	}
}

func TestCombineRejectsGarbageShare(t *testing.T) {
	key := testKey(t, 2, 4)
	msg := []byte("m")
	rng := rand.New(rand.NewSource(4))
	good, err := key.Public.Sign(key.Shares[0], msg, rng)
	if err != nil {
		t.Fatal(err)
	}
	garbage := &SigShare{Index: 2, X: big.NewInt(12345), C: big.NewInt(1), Z: big.NewInt(2)}
	if _, err := key.Public.Combine(msg, []*SigShare{good, garbage}); err == nil {
		t.Error("combination with garbage share succeeded")
	}
}

func TestCombineErrors(t *testing.T) {
	key := testKey(t, 3, 4)
	msg := []byte("m")
	rng := rand.New(rand.NewSource(5))
	sh, err := key.Public.Sign(key.Shares[0], msg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := key.Public.Combine(msg, []*SigShare{sh}); err == nil {
		t.Error("too few shares accepted")
	}
	if _, err := key.Public.Combine(msg, []*SigShare{sh, sh, sh}); err == nil {
		t.Error("duplicate shares accepted")
	}
}

func TestHigherThreshold(t *testing.T) {
	key := testKey(t, 3, 4) // 2f+1 of N=4
	msg := []byte("cbc quorum")
	rng := rand.New(rand.NewSource(6))
	var shares []*SigShare
	for i := 0; i < 3; i++ {
		sh, err := key.Public.Sign(key.Shares[i+1], msg, rng)
		if err != nil {
			t.Fatal(err)
		}
		shares = append(shares, sh)
	}
	sig, err := key.Public.Combine(msg, shares)
	if err != nil {
		t.Fatal(err)
	}
	if err := key.Public.Verify(msg, sig); err != nil {
		t.Error(err)
	}
}

func TestSizesMonotone(t *testing.T) {
	prevSig, prevShare := 0, 0
	for _, fix := range Fixtures() {
		key, err := Deal(fix.Name, fix.P, fix.Q, 2, 4, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatal(err)
		}
		if s := key.Public.SignatureLen(); s <= prevSig {
			t.Errorf("%s: signature size %d not increasing", fix.Name, s)
		} else {
			prevSig = s
		}
		if s := key.Public.ShareLen(); s <= prevShare {
			t.Errorf("%s: share size %d not increasing", fix.Name, s)
		} else {
			prevShare = s
		}
	}
}

func TestDealValidation(t *testing.T) {
	fix := Fixtures()[0]
	rng := rand.New(rand.NewSource(1))
	if _, err := Deal(fix.Name, fix.P, fix.Q, 0, 4, rng); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Deal(fix.Name, fix.P, fix.Q, 5, 4, rng); err == nil {
		t.Error("k>l accepted")
	}
}
