package threshsig

import (
	"math/big"
	"math/rand"
	"testing"
)

// slowKey returns a copy of the public key with the memo cache and CRT
// accelerator detached: the historical slow path, used as the reference
// implementation the fast paths must agree with bit for bit.
func slowKey(pk PublicKey) *PublicKey {
	pk.acc = nil
	pk.cc = nil
	return &pk
}

// badShareMatrix returns shares exercising every rejection class the
// fault-injection (byz) tests feed the protocol: tampered value, proof
// transplanted to another index, garbage proof, missing proof, and
// out-of-range indices — plus the honest share they were derived from.
func badShareMatrix(t testing.TB, key *Key, msg []byte) []*SigShare {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	honest := make([]*SigShare, key.Public.L)
	for i := range honest {
		sh, err := key.Public.Sign(key.Shares[i], msg, rng)
		if err != nil {
			t.Fatal(err)
		}
		honest[i] = sh
	}
	sh := honest[0]
	return []*SigShare{
		honest[0],
		honest[1],
		{Index: sh.Index, X: new(big.Int).Add(sh.X, big.NewInt(1)), C: sh.C, Z: sh.Z}, // tampered value
		{Index: 2, X: sh.X, C: sh.C, Z: sh.Z},                                         // transplanted index
		{Index: sh.Index, X: sh.X, C: big.NewInt(7), Z: big.NewInt(9)},                // garbage proof
		{Index: sh.Index, X: sh.X, C: nil, Z: nil},                                    // missing proof
		{Index: 0, X: sh.X, C: sh.C, Z: sh.Z},                                         // index underflow
		{Index: key.Public.L + 1, X: sh.X, C: sh.C, Z: sh.Z},                          // index overflow
		nil, // nil share
		honest[2],
	}
}

// TestVerifySharesMatchesPerShare pins the batch contract: for every share
// in the adversarial matrix, VerifyShares returns accept/reject exactly as
// the uncached per-share path does. The batch runs first so its verdicts
// cannot be replays of the reference run.
func TestVerifySharesMatchesPerShare(t *testing.T) {
	key := testKey(t, 2, 4)
	msg := []byte("batch equivalence")
	shares := badShareMatrix(t, key, msg)

	batch := key.Public.VerifyShares(msg, shares)
	if len(batch) != len(shares) {
		t.Fatalf("got %d verdicts for %d shares", len(batch), len(shares))
	}
	ref := slowKey(key.Public)
	for i, sh := range shares {
		want := ref.VerifyShare(msg, sh)
		if (batch[i] == nil) != (want == nil) {
			t.Errorf("share %d: batch verdict %v, per-share verdict %v", i, batch[i], want)
		}
	}
}

// TestVerifierMatchesVerifyShare pins ShareVerifier against the uncached
// path on the same matrix, including a second message (contexts must not
// leak across messages).
func TestVerifierMatchesVerifyShare(t *testing.T) {
	key := testKey(t, 2, 4)
	for _, msg := range [][]byte{[]byte("ctx-a"), []byte("ctx-b")} {
		shares := badShareMatrix(t, key, msg)
		v := key.Public.Verifier(msg)
		ref := slowKey(key.Public)
		for i, sh := range shares {
			got, want := v.Verify(sh), ref.VerifyShare(msg, sh)
			if (got == nil) != (want == nil) {
				t.Errorf("msg %q share %d: verifier %v, reference %v", msg, i, got, want)
			}
		}
	}
}

// TestAccelMatchesPlainExp pins the CRT accelerator against math/big across
// edge exponents (0, 1, e >= p-1) and base values (0, 1, p, multiples of a
// prime factor).
func TestAccelMatchesPlainExp(t *testing.T) {
	fix := Fixtures()[0]
	acc := newAccel(fix.P, fix.Q)
	if acc == nil {
		t.Fatal("accelerator failed to initialize on fixture primes")
	}
	n := new(big.Int).Mul(fix.P, fix.Q)
	bases := []*big.Int{
		big.NewInt(0), big.NewInt(1), big.NewInt(2),
		new(big.Int).Set(fix.P),            // ≡ 0 mod p
		new(big.Int).Lsh(fix.Q, 3),         // ≡ 0 mod q
		new(big.Int).Sub(n, big.NewInt(1)), // n-1
		new(big.Int).Rsh(n, 1),             // arbitrary large
	}
	exps := []*big.Int{
		big.NewInt(0), big.NewInt(1), big.NewInt(2), big.NewInt(65537),
		new(big.Int).Sub(fix.P, big.NewInt(1)), // p-1 exactly
		new(big.Int).Mul(n, big.NewInt(3)),     // far beyond both p-1, q-1
	}
	for _, b := range bases {
		for _, e := range exps {
			want := new(big.Int).Exp(b, e, n)
			if got := acc.exp(b, e); got.Cmp(want) != 0 {
				t.Errorf("acc.exp(%v, %v) = %v, want %v", b, e, got, want)
			}
		}
	}
}

// BenchmarkVerifyShare measures one full (uncached, unaccelerated)
// share verification — the per-share cost the simulator paid before the
// raw-speed pass.
func BenchmarkVerifyShare(b *testing.B) {
	key := testKey(b, 2, 4)
	msg := []byte("bench message")
	sh, err := key.Public.Sign(key.Shares[0], msg, rand.New(rand.NewSource(41)))
	if err != nil {
		b.Fatal(err)
	}
	ref := slowKey(key.Public)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ref.VerifyShare(msg, sh); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerifyShareAccel is BenchmarkVerifyShare with the CRT
// accelerator but no verdict memo: the real per-verification cost on the
// fast path.
func BenchmarkVerifyShareAccel(b *testing.B) {
	key := testKey(b, 2, 4)
	msg := []byte("bench message")
	sh, err := key.Public.Sign(key.Shares[0], msg, rand.New(rand.NewSource(41)))
	if err != nil {
		b.Fatal(err)
	}
	pk := key.Public // copy; keep acc, drop the memo so every iteration verifies
	pk.cc = nil
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pk.VerifyShare(msg, sh); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerifySharesBatch measures verifying all l shares of one
// message through the batch API with a fresh memo per iteration: the
// amortization comes from the shared message context and the CRT
// accelerator, not from cross-iteration verdict replay.
func BenchmarkVerifySharesBatch(b *testing.B) {
	key := testKey(b, 2, 4)
	msg := []byte("bench message")
	rng := rand.New(rand.NewSource(42))
	shares := make([]*SigShare, key.Public.L)
	for i := range shares {
		sh, err := key.Public.Sign(key.Shares[i], msg, rng)
		if err != nil {
			b.Fatal(err)
		}
		shares[i] = sh
	}
	pk := key.Public // copy sharing acc; cc swapped per iteration below
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pk.cc = &pkCache{
			msgs:     make(map[[32]byte]*msgCtx),
			verified: make(map[[32]byte]error),
			lag:      make(map[string]*big.Int),
		}
		for j, err := range pk.VerifyShares(msg, shares) {
			if err != nil {
				b.Fatalf("share %d rejected: %v", j, err)
			}
		}
	}
}
