package threshsig

import (
	"crypto/sha256"
	"encoding/binary"
	"math/big"
	"sync"
)

// pkCache memoizes the deterministic intermediate values of a dealt key.
// Keys are shared across concurrently running simulations (crypto.DealCached
// hands the same Suite to every sweep cell), so every map is guarded.
//
// None of this changes observable behaviour: everything cached is a pure
// function of (public key, inputs), so hits return exactly what a fresh
// computation would. Virtual-time charges are made by the callers through
// the cost model and are likewise untouched — the simulated STM32 still
// pays full price per operation; only the host machine skips repeat work.
type pkCache struct {
	mu sync.Mutex
	// delta = L!, gcdA/gcdB = Bezout coefficients of (e, 4*delta^2):
	// fixed per key, computed on first use.
	delta      *big.Int
	gcdA, gcdB *big.Int
	// msgs: per-message context (x = H(msg), x4d = x^{4*delta}) shared by
	// Sign, VerifyShare, Combine, and Verify. One message is touched by
	// every party of the simulation, so the hit rate is ~(parties-1)/parties.
	msgs map[[32]byte]*msgCtx
	// verified: share-verification verdicts keyed by (msg, share). Each
	// share is verified by every other party; the verdict is a pure
	// function of the share bytes, so replaying it is exact.
	verified map[[32]byte]error
	// lag: integer Lagrange coefficients keyed by (subset, index).
	lag map[string]*big.Int
}

// msgCtx is the per-message exponentiation context.
type msgCtx struct {
	x   *big.Int // H(msg) in Z_N
	x4d *big.Int // x^{4*delta} — the share-proof base
}

// cacheCap bounds each memo map; on overflow the map is cleared (the
// working set of a sweep cell is tiny compared to this, so eviction is a
// safety valve, not a tuning knob).
const cacheCap = 4096

// exp computes base^e mod N through the CRT accelerator when the key was
// produced by Deal; hand-built keys fall back to plain modexp. Negative
// exponents always take the slow path (none of the hot call sites use
// them).
func (pk *PublicKey) exp(base, e *big.Int) *big.Int {
	if pk.acc != nil && e.Sign() >= 0 {
		return pk.acc.exp(base, e)
	}
	return new(big.Int).Exp(base, e, pk.N)
}

// deltaL returns L! (cached when the key carries a cache).
func (pk *PublicKey) deltaL() *big.Int {
	if pk.cc == nil {
		return delta(pk.L)
	}
	pk.cc.mu.Lock()
	defer pk.cc.mu.Unlock()
	if pk.cc.delta == nil {
		pk.cc.delta = delta(pk.L)
	}
	return pk.cc.delta
}

// ctxFor returns the per-message context, computing and caching it on
// first use. Safe under concurrent misses: both goroutines compute the
// same pure values and one result wins.
func (pk *PublicKey) ctxFor(msg []byte) *msgCtx {
	d := pk.deltaL()
	if pk.cc == nil {
		x := hashToModulus(pk.N, pk.Salt, msg)
		return &msgCtx{x: x, x4d: pk.exp(x, new(big.Int).Lsh(d, 2))}
	}
	key := sha256.Sum256(msg)
	pk.cc.mu.Lock()
	ctx := pk.cc.msgs[key]
	pk.cc.mu.Unlock()
	if ctx != nil {
		return ctx
	}
	x := hashToModulus(pk.N, pk.Salt, msg)
	ctx = &msgCtx{x: x, x4d: pk.exp(x, new(big.Int).Lsh(d, 2))}
	pk.cc.mu.Lock()
	if prior := pk.cc.msgs[key]; prior != nil {
		ctx = prior
	} else {
		if len(pk.cc.msgs) >= cacheCap {
			clear(pk.cc.msgs)
		}
		pk.cc.msgs[key] = ctx
	}
	pk.cc.mu.Unlock()
	return ctx
}

// combineExponents returns the cached Bezout pair (a, b) with
// a*e + b*4*delta^2 = 1, or ok=false if e and 4*delta^2 are not coprime.
func (pk *PublicKey) combineExponents() (a, b *big.Int, ok bool) {
	if pk.cc != nil {
		pk.cc.mu.Lock()
		a, b = pk.cc.gcdA, pk.cc.gcdB
		pk.cc.mu.Unlock()
		if a != nil {
			return a, b, true
		}
	}
	d := pk.deltaL()
	fourD2 := new(big.Int).Mul(d, d)
	fourD2.Lsh(fourD2, 2)
	x, y := new(big.Int), new(big.Int)
	if new(big.Int).GCD(x, y, pk.E, fourD2).Cmp(one) != 0 {
		return nil, nil, false
	}
	if pk.cc != nil {
		pk.cc.mu.Lock()
		if pk.cc.gcdA == nil {
			pk.cc.gcdA, pk.cc.gcdB = x, y
		} else {
			x, y = pk.cc.gcdA, pk.cc.gcdB
		}
		pk.cc.mu.Unlock()
	}
	return x, y, true
}

// shareKey digests a (message, share) pair for the verdict memo. The key
// covers every byte the verifier reads, so two shares collide only if
// they would verify identically anyway.
func shareKey(msgDigest [32]byte, sh *SigShare) [32]byte {
	h := sha256.New()
	h.Write(msgDigest[:])
	var ib [4]byte
	binary.BigEndian.PutUint32(ib[:], uint32(sh.Index))
	h.Write(ib[:])
	writeLenPrefixed(h, sh.X.Bytes())
	writeLenPrefixed(h, sh.C.Bytes())
	writeLenPrefixed(h, sh.Z.Bytes())
	var out [32]byte
	h.Sum(out[:0])
	return out
}

func writeLenPrefixed(h interface{ Write([]byte) (int, error) }, b []byte) {
	var lb [4]byte
	binary.BigEndian.PutUint32(lb[:], uint32(len(b)))
	h.Write(lb[:])
	h.Write(b)
}

// lagrangeFor returns the cached integer Lagrange coefficient for index i
// over the given subset (delta-scaled, per Shoup). The subset is keyed by
// its exact index sequence, so distinct share orderings cache separately
// — correctness never depends on canonicalization.
func (pk *PublicKey) lagrangeFor(subset []*SigShare, i int, d *big.Int) *big.Int {
	if pk.cc == nil {
		return integerLagrange(subset, i, d)
	}
	key := make([]byte, 0, 2*len(subset)+2)
	for _, sh := range subset {
		key = binary.BigEndian.AppendUint16(key, uint16(sh.Index))
	}
	key = binary.BigEndian.AppendUint16(key, uint16(i))
	pk.cc.mu.Lock()
	lam := pk.cc.lag[string(key)]
	pk.cc.mu.Unlock()
	if lam != nil {
		return lam
	}
	lam = integerLagrange(subset, i, d)
	pk.cc.mu.Lock()
	if len(pk.cc.lag) >= cacheCap {
		clear(pk.cc.lag)
	}
	pk.cc.lag[string(key)] = lam
	pk.cc.mu.Unlock()
	return lam
}

// ShareVerifier amortizes share verification for one message: the
// per-message context (H(msg) and the proof base x^{4*delta}) is computed
// once, and verdicts are shared with every other verifier of the same
// shares through the key's dedup memo. Use it when verifying several
// shares of the same message — cut-certificate collection, the DONE and
// FINISH phases, coin assembly.
type ShareVerifier struct {
	pk     *PublicKey
	ctx    *msgCtx
	digest [32]byte
}

// Verifier returns a ShareVerifier for msg.
func (pk *PublicKey) Verifier(msg []byte) *ShareVerifier {
	return &ShareVerifier{pk: pk, ctx: pk.ctxFor(msg), digest: sha256.Sum256(msg)}
}

// Verify checks one share. Equivalent to PublicKey.VerifyShare — same
// verdicts on the same inputs, bit for bit.
func (v *ShareVerifier) Verify(sh *SigShare) error {
	if err := checkShareShape(v.pk, sh); err != nil {
		return err
	}
	return v.pk.verifyShareWith(v.ctx, v.digest, sh)
}

// VerifyShares checks a batch of shares of one message and returns one
// verdict per share, in order. The batch amortizes the message context
// across the shares and replays memoized verdicts; each share's proof is
// still checked individually and exactly, so a batch rejects precisely
// the shares per-share verification rejects.
//
// No randomized-linear-combination shortcut is possible here: the shares
// carry Fiat–Shamir Chaum–Pedersen proofs, whose verification must
// recompute each proof's commitments (t1, t2) exactly to recheck the
// challenge hash — an RLC over several proofs yields only a combined
// commitment, which verifies no individual hash. The honest amortization
// is the shared base work above.
func (pk *PublicKey) VerifyShares(msg []byte, shares []*SigShare) []error {
	v := pk.Verifier(msg)
	errs := make([]error, len(shares))
	for i, sh := range shares {
		errs[i] = v.Verify(sh)
	}
	return errs
}
