package threshsig

import (
	"math/rand"
	"sync"
)

// dealKey identifies one dealer invocation over the embedded fixtures. The
// seed names the deterministic randomness stream, exactly as in the
// suite-level crypto.DealCached: different seeds must never share keys.
type dealKey struct {
	Name string
	K, L int
	Seed int64
}

type dealEntry struct {
	once sync.Once
	key  *Key
	err  error
}

var (
	dealMu    sync.Mutex
	dealCache = map[dealKey]*dealEntry{}
)

// DealCached is Deal over the named embedded fixture, memoized by
// (name, k, l, seed). The first caller runs the dealer over
// rand.New(rand.NewSource(seed)); later callers — tests, benchmarks,
// concurrent sweep cells — share the same *Key. Sharing is sound because
// keys are immutable after dealing and every signing call draws randomness
// from a caller-supplied source.
func DealCached(name string, k, l int, seed int64) (*Key, error) {
	dk := dealKey{Name: name, K: k, L: l, Seed: seed}
	dealMu.Lock()
	e, ok := dealCache[dk]
	if !ok {
		e = &dealEntry{}
		dealCache[dk] = e
	}
	dealMu.Unlock()
	e.once.Do(func() {
		fix, err := FixtureByName(name)
		if err != nil {
			e.err = err
			return
		}
		e.key, e.err = Deal(fix.Name, fix.P, fix.Q, k, l, rand.New(rand.NewSource(seed)))
	})
	return e.key, e.err
}
