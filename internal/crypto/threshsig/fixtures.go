package threshsig

// Code generated offline with crypto/rand (see DESIGN.md). Each fixture is
// a pair of primes whose product is the RSA modulus for one parameter set.
// Halves up to 384 bits are safe primes (Shoup's original requirement);
// larger halves are ordinary random primes, which preserves completeness of
// the share proofs and is sufficient for a simulation substrate.

import (
	"fmt"
	"math/big"
	"sync"
)

// ModulusFixture is an embedded prime pair for one parameter set.
type ModulusFixture struct {
	Name string
	Bits int
	P, Q *big.Int
}

func mustHex(s string) *big.Int {
	v, ok := new(big.Int).SetString(s, 16)
	if !ok {
		panic(fmt.Sprintf("threshsig: bad embedded constant %.16s...", s))
	}
	return v
}

var fixturesOnce = sync.OnceValue(func() []ModulusFixture {
	return []ModulusFixture{
		{Name: "TS-512", Bits: 512,
			P: mustHex("db714cc796b162faba570a3f6f671f0f42f624fe8dbc420284dd4dfb81992eb7"),
			Q: mustHex("e60da630a377a4adb9236a1672b298bdf90d42bca13b94bc93406ee5b7c0d75f")},
		{Name: "TS-768", Bits: 768,
			P: mustHex("e0739975e57dc8a14f13099c6e4dcb32d22b1cba0f94006542dd8f9bc66ecea99966b76b700f402baaa7799f2a196e2b"),
			Q: mustHex("e6f594d528bb3ace5e111f3bbefb0bd394b76a8a37a707a447c412b9a4c865a51a236e258ad158a1bdc50ada1672a6d7")},
		{Name: "TS-1024", Bits: 1024,
			P: mustHex("e920432d5cd998c61232415d3e24c1547cd7e71c3fa9b3ddab55d91821edece1a1ea2115659b6865d44bc53a3211f9abaa55cb0a4bed1adae81e4e28ceab8e15"),
			Q: mustHex("f0ca658ea946a0a70a03a6849436cb4df4e94712dba7aa958238447faa974e60cb4437fe371ce707520ddeacf3984cd25bceffaacc2e13c8a3a13c66e01dd4c1")},
		{Name: "TS-1536", Bits: 1536,
			P: mustHex("d321ae30d6a1d4f7f619c8f82505eb6e2b55a67d755f0880c15b2d126b463c36a6980443c6cf67f6487222999ebbe0bdb7bdcd423e9ac7a2d899ffd740490617a2ec5f9218a06e0f0a2058811fda5536cb44e1da8037d1a1ef12781f21e3ce93"),
			Q: mustHex("eb6e2f352cab6f0650f03364af12b2cda56a0f8659f78e7a8fb95d09e11edf75283d427152d2fb1ea1bc49b2b2c890e2ea1fe5762d6c917bc69f41561f00cf89e65996032cf0ab700fc91db5bd0e2ed81ac76901c3b91f794362b7bd47ca836b")},
		{Name: "TS-2048", Bits: 2048,
			P: mustHex("ce41eab7afae467c8ae6ed5dad535e37887292720cb44303bdbf228ee4236c04c1cd186cd6d28fb5d13afff06ed3eb74b788792c0df9c295b7e4ca3025e8609157542680848b5519bc93868ea006558052a7a7d8d71e13643c768e3c903037947cb354da9265b6fc7bfbea350b05c409df7c34818659f93198dcfe3523bfdcd1"),
			Q: mustHex("e7ec98130c68e1c541eeb624ac320bb66667b50d644eee68796b56345864b9728207c1330ab1f7d3de59e6b5f65a3c72652aa1183574658d30d15103116e8d4440f4db07975ff1a01eed6ed4aac41d618301048f8db0576d1ddd3d4058c0b9e36f28e1c59537aef540c0ff9e25b65145e36d23374007502ad6a6b510956e8bf5")},
		{Name: "TS-3072", Bits: 3072,
			P: mustHex("fae22c3f7b8e54a8317a5ee6a143d0eca249fc3cd64b641249da7696b6ca2d49410f67da214433b449d15f0e137d112e8a86882d6bcf2ee47050d28bb45766e3e48f90c120af84d2ac20bf2eaabd6f78b5c36a9623823e5958d955f253c12e9c4435124296ed762dc04b034404bb3290007f39d94cb1fc1366358dcf19b595777e31e57a957bb8e764d9659b257f1121b1a1e72db666752551b60db95f7aa4ff21f31c2818ec7e45bd8ce14bfecf991be0a411323159367e41b845d442193f05"),
			Q: mustHex("daa01bd45a8a0f9651295ef7bf6611c76abf5cd8615f936253e33455b871480b752ccbaa968467394f773df9283627aa2a2033f7c3c1891eb42b534222e2914c857be0491a9202a0cce4673b6bd7233b9a5164ae034d082c7d54168e4e0ec1aa702bd2cd6bf07a900d2f68376605a9dbdc09c8824f3d9847ab6a8c799406b925aa9dc749d27aafe181d15e30dea5187ca4051d833e059b77770ba1d6f7116cde35fbd9a33ec9d741f5ff3a51cbd5572da675d63f9b11cb06a01dc5a0eac7e803")},
	}
})

// Fixtures returns the embedded parameter sets, lightest first.
func Fixtures() []ModulusFixture { return fixturesOnce() }

// FixtureByName returns the fixture with the given name.
func FixtureByName(name string) (ModulusFixture, error) {
	for _, f := range Fixtures() {
		if f.Name == name {
			return f, nil
		}
	}
	return ModulusFixture{}, fmt.Errorf("threshsig: unknown parameter set %q", name)
}
