package threshsig

import (
	"math/big"

	"repro/internal/crypto/mont"
)

// accel is the CRT exponentiation accelerator. The dealer knows the
// fixture primes p and q of the modulus n = p*q, so every modular
// exponentiation in the scheme can run as two half-size exponentiations
// (with Fermat-reduced exponents) recombined by Garner's formula. This is
// bit-exact — x^e mod n for every x and e >= 0 — so accept/reject
// decisions, combined signatures, and every byte on the simulated wire
// are identical to the plain big.Int.Exp path; only the simulator's
// wall-clock cost changes (roughly 4x less work per exponentiation: half
// the operand width and, for the scheme's oversized integer exponents,
// half the exponent length).
//
// This mirrors what a real signer does with its own key (RSA-CRT), except
// here the simulation plays every party and the dealer, so verification
// gets the same speedup — a simulator-level optimization, not a protocol
// change.
type accel struct {
	p, q     *big.Int
	pm1, qm1 *big.Int // p-1, q-1: Fermat exponent reduction moduli
	qInvP    *big.Int // q^{-1} mod p: Garner recombination constant
	// pmont/qmont are fixed-width Montgomery contexts for the half-size
	// exponentiations (nil when the prime has no mont kernel, e.g. on the
	// larger parameter sets; expPrime then uses big.Int.Exp). Like the CRT
	// split itself this is bit-exact: mont.Exp returns the unique reduced
	// residue big.Int.Exp would.
	pmont, qmont *mont.Modulus
}

func newAccel(p, q *big.Int) *accel {
	inv := new(big.Int).ModInverse(q, p)
	if inv == nil {
		return nil // not distinct primes; fall back to plain Exp
	}
	return &accel{
		p:     p,
		q:     q,
		pm1:   new(big.Int).Sub(p, one),
		qm1:   new(big.Int).Sub(q, one),
		qInvP: inv,
		pmont: mont.NewModulus(p),
		qmont: mont.NewModulus(q),
	}
}

// exp returns x^e mod p*q for e >= 0.
func (a *accel) exp(x, e *big.Int) *big.Int {
	xp := new(big.Int).Mod(x, a.p)
	xq := new(big.Int).Mod(x, a.q)
	yp := expPrime(xp, e, a.p, a.pm1, a.pmont)
	yq := expPrime(xq, e, a.q, a.qm1, a.qmont)
	// Garner: y = yq + q * (qInvP * (yp - yq) mod p), in [0, p*q).
	h := yp.Sub(yp, yq)
	h.Mul(h, a.qInvP)
	h.Mod(h, a.p)
	h.Mul(h, a.q)
	return h.Add(h, yq)
}

// expPrime computes x^e mod prime for x in [0, prime) and e >= 0. The
// exponent is reduced mod prime-1 (valid by Fermat's little theorem for
// units; x = 0 is handled explicitly, where the reduction would be wrong:
// 0^e = 0 for e > 0 but 0^0 = 1).
func expPrime(x, e, prime, pm1 *big.Int, mm *mont.Modulus) *big.Int {
	if x.Sign() == 0 {
		if e.Sign() == 0 {
			return big.NewInt(1)
		}
		return new(big.Int)
	}
	if e.Cmp(pm1) >= 0 {
		e = new(big.Int).Mod(e, pm1)
	}
	if mm != nil {
		return mm.Exp(x, e)
	}
	return new(big.Int).Exp(x, e, prime)
}
