// Package threshsig implements Shoup's practical RSA threshold signatures
// ("Practical Threshold Signatures", EUROCRYPT 2000) with a trusted dealer.
//
// A (k, n) threshold signature lets any k of n parties produce a compact
// signature that third parties verify with a single RSA verification —
// exactly the primitive the paper's PRBC DONE phase, CBC FINISH phase, and
// shared-coin ABA rely on. The paper implements it over MIRACL pairing
// curves; the stdlib has no pairings, so this package substitutes the
// classic RSA construction, which preserves the API (deal / sign share /
// verify share / combine / verify) and the monotone cost/size ladder across
// parameter sets (see DESIGN.md).
//
// Share validity proofs are Chaum–Pedersen style proofs in the RSA group
// (unknown order, so responses are integers a few hundred bits longer than
// the modulus), letting honest combiners discard Byzantine shares.
package threshsig

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"
)

var (
	one = big.NewInt(1)
	two = big.NewInt(2)
)

// PublicKey verifies combined signatures and shares.
type PublicKey struct {
	Name string   // parameter-set name, e.g. "TS-512"
	N    *big.Int // RSA modulus
	E    *big.Int // public exponent (prime > n parties)
	V    *big.Int // verification base (generator of QR(N))
	VKs  []*big.Int
	K    int // threshold (shares needed)
	L    int // total parties
	// Salt is a per-deal public value mixed into message hashing. The
	// embedded modulus fixtures fix the private exponent d across deals,
	// so without a salt a signature on a fixed message — and therefore a
	// common coin derived from it — would repeat across runs.
	Salt [16]byte

	// acc and cc are attached by Deal: the CRT exponentiation accelerator
	// (the dealer knows the fixture primes) and the memo cache for
	// deterministic intermediate values. Both are bit-exact fast paths;
	// keys built by hand without Deal simply run the slow path.
	acc *accel
	cc  *pkCache
}

// PrivateShare is party i's signing share.
type PrivateShare struct {
	Index int // 1-based
	S     *big.Int
}

// SigShare is a signature share with its validity proof.
type SigShare struct {
	Index int
	X     *big.Int // x^{2*delta*s_i} mod N
	C, Z  *big.Int // Chaum–Pedersen proof (Fiat–Shamir)
}

// Signature is a combined threshold signature.
type Signature struct {
	S *big.Int
}

// Bytes returns the canonical encoding of the signature.
func (s *Signature) Bytes() []byte { return s.S.Bytes() }

// Dealer output.
type Key struct {
	Public PublicKey
	Shares []PrivateShare
}

// Deal generates a (k, l) threshold key from the fixture primes p and q
// (modulus n = p*q). The polynomial is sampled fresh from rand, so repeated
// deals over the same modulus yield unrelated keys.
func Deal(name string, p, q *big.Int, k, l int, rand io.Reader) (*Key, error) {
	if k < 1 || l < k {
		return nil, fmt.Errorf("threshsig: invalid threshold %d of %d", k, l)
	}
	n := new(big.Int).Mul(p, q)
	// m = p' * q' with p = 2p'+1, q = 2q'+1. With non-safe fixture primes
	// this is still (p-1)(q-1)/4; interpolation uses the integer-delta
	// trick, which needs no structure on m.
	pp := new(big.Int).Rsh(new(big.Int).Sub(p, one), 1)
	qq := new(big.Int).Rsh(new(big.Int).Sub(q, one), 1)
	m := new(big.Int).Mul(pp, qq)

	// Public exponent: a prime greater than l, coprime to m.
	e := big.NewInt(65537)
	if new(big.Int).GCD(nil, nil, e, m).Cmp(one) != 0 {
		return nil, errors.New("threshsig: fixture modulus incompatible with e=65537")
	}
	d := new(big.Int).ModInverse(e, m)
	if d == nil {
		return nil, errors.New("threshsig: no modular inverse for e")
	}

	// Polynomial over Z_m with f(0) = d.
	coeffs := make([]*big.Int, k)
	coeffs[0] = d
	for i := 1; i < k; i++ {
		c, err := randBelow(rand, m)
		if err != nil {
			return nil, err
		}
		coeffs[i] = c
	}
	shares := make([]PrivateShare, l)
	for i := 1; i <= l; i++ {
		shares[i-1] = PrivateShare{Index: i, S: evalPoly(coeffs, int64(i), m)}
	}

	// Verification base v: a random quadratic residue, plus per-party
	// verification keys v_i = v^{s_i}.
	r, err := randBelow(rand, n)
	if err != nil {
		return nil, err
	}
	v := new(big.Int).Exp(r, two, n)
	vks := make([]*big.Int, l)
	for i, sh := range shares {
		vks[i] = new(big.Int).Exp(v, sh.S, n)
	}
	var salt [16]byte
	if _, err := io.ReadFull(rand, salt[:]); err != nil {
		return nil, fmt.Errorf("threshsig: sampling salt: %w", err)
	}
	return &Key{
		Public: PublicKey{
			Name: name, N: n, E: e, V: v, VKs: vks, K: k, L: l, Salt: salt,
			acc: newAccel(p, q),
			cc: &pkCache{
				msgs:     make(map[[32]byte]*msgCtx),
				verified: make(map[[32]byte]error),
				lag:      make(map[string]*big.Int),
			},
		},
		Shares: shares,
	}, nil
}

// delta returns l! as a big integer.
func delta(l int) *big.Int {
	d := big.NewInt(1)
	for i := 2; i <= l; i++ {
		d.Mul(d, big.NewInt(int64(i)))
	}
	return d
}

// hashToModulus maps a message to an element of Z_N^*.
func hashToModulus(n *big.Int, salt [16]byte, msg []byte) *big.Int {
	need := (n.BitLen()+7)/8 + 16
	buf := make([]byte, 0, need)
	var ctr uint32
	for len(buf) < need {
		h := sha256.New()
		h.Write([]byte("threshsig-h2m"))
		h.Write(salt[:])
		var cb [4]byte
		binary.BigEndian.PutUint32(cb[:], ctr)
		h.Write(cb[:])
		h.Write(msg)
		buf = h.Sum(buf)
		ctr++
	}
	x := new(big.Int).SetBytes(buf)
	x.Mod(x, n)
	if x.Sign() == 0 {
		x.SetInt64(1)
	}
	return x
}

// Sign produces party i's signature share on msg, with a validity proof.
func (pk *PublicKey) Sign(share PrivateShare, msg []byte, rand io.Reader) (*SigShare, error) {
	ctx := pk.ctxFor(msg)
	d := pk.deltaL()
	// exponent 2*delta*s_i
	exp := new(big.Int).Lsh(d, 1)
	exp.Mul(exp, share.S)
	xi := pk.exp(ctx.x, exp)

	// Proof of log equality: log_{x4d}(xi^2) == log_v(v_i), exponent s_i.
	// x4d = x^{4*delta}.
	x4d := ctx.x4d
	xi2 := pk.exp(xi, two)
	vi := pk.VKs[share.Index-1]

	// Random w of |N| + 2*256 bits.
	wBits := pk.N.BitLen() + 512
	w, err := randBits(rand, wBits)
	if err != nil {
		return nil, err
	}
	t1 := pk.exp(x4d, w)
	t2 := pk.exp(pk.V, w)
	c := proofChallenge(pk, x4d, xi2, vi, t1, t2)
	// z = w + c*s_i over the integers.
	z := new(big.Int).Mul(c, share.S)
	z.Add(z, w)
	return &SigShare{Index: share.Index, X: xi, C: c, Z: z}, nil
}

// VerifyShare checks a signature share against msg.
func (pk *PublicKey) VerifyShare(msg []byte, sh *SigShare) error {
	if err := checkShareShape(pk, sh); err != nil {
		return err
	}
	return pk.verifyShareWith(pk.ctxFor(msg), sha256.Sum256(msg), sh)
}

// checkShareShape performs the cheap structural checks shared by the
// single and batch verification paths.
func checkShareShape(pk *PublicKey, sh *SigShare) error {
	if sh == nil || sh.Index < 1 || sh.Index > pk.L {
		return errors.New("threshsig: bad share index")
	}
	if sh.X == nil || sh.X.Sign() <= 0 || sh.X.Cmp(pk.N) >= 0 {
		return errors.New("threshsig: share value out of range")
	}
	if sh.C == nil || sh.Z == nil {
		return errors.New("threshsig: missing share proof")
	}
	return nil
}

// verifyShareWith checks a structurally sound share against the message
// context, consulting the dedup memo first: in a simulation every share
// is verified by each of the other parties, and the verdict is a pure
// function of (msg, share), so a replayed verdict is exact.
func (pk *PublicKey) verifyShareWith(ctx *msgCtx, msgDigest [32]byte, sh *SigShare) error {
	var key [32]byte
	if pk.cc != nil {
		key = shareKey(msgDigest, sh)
		pk.cc.mu.Lock()
		verdict, hit := pk.cc.verified[key]
		pk.cc.mu.Unlock()
		if hit {
			return verdict
		}
	}
	err := pk.verifyShareFull(ctx, sh)
	if pk.cc != nil {
		pk.cc.mu.Lock()
		if len(pk.cc.verified) >= cacheCap {
			clear(pk.cc.verified)
		}
		pk.cc.verified[key] = err
		pk.cc.mu.Unlock()
	}
	return err
}

// verifyShareFull recomputes the share's Chaum–Pedersen proof.
func (pk *PublicKey) verifyShareFull(ctx *msgCtx, sh *SigShare) error {
	x4d := ctx.x4d
	xi2 := pk.exp(sh.X, two)
	vi := pk.VKs[sh.Index-1]
	// Recompute commitments: t1 = x4d^z * xi2^{-c}, t2 = v^z * vi^{-c}.
	t1 := pk.exp(x4d, sh.Z)
	inv := pk.exp(xi2, sh.C)
	inv.ModInverse(inv, pk.N)
	if inv.Sign() == 0 {
		return errors.New("threshsig: degenerate share")
	}
	t1.Mul(t1, inv)
	t1.Mod(t1, pk.N)
	t2 := pk.exp(pk.V, sh.Z)
	inv2 := pk.exp(vi, sh.C)
	inv2.ModInverse(inv2, pk.N)
	if inv2.Sign() == 0 {
		return errors.New("threshsig: degenerate verification key")
	}
	t2.Mul(t2, inv2)
	t2.Mod(t2, pk.N)
	if proofChallenge(pk, x4d, xi2, vi, t1, t2).Cmp(sh.C) != 0 {
		return errors.New("threshsig: share proof rejected")
	}
	return nil
}

// Combine assembles k verified shares into a standard RSA signature on msg.
// The caller is responsible for having verified the shares (VerifyShare);
// Combine re-checks the result and reports an error if the combination does
// not verify, which catches any unverified bad share.
func (pk *PublicKey) Combine(msg []byte, shares []*SigShare) (*Signature, error) {
	if len(shares) < pk.K {
		return nil, fmt.Errorf("threshsig: need %d shares, have %d", pk.K, len(shares))
	}
	use := shares[:pk.K]
	seen := make(map[int]bool, pk.K)
	for _, sh := range use {
		if seen[sh.Index] {
			return nil, fmt.Errorf("threshsig: duplicate share %d", sh.Index)
		}
		seen[sh.Index] = true
	}
	x := pk.ctxFor(msg).x
	d := pk.deltaL()

	// w = prod x_i^{2 * lambda_i} where lambda_i are integer Lagrange
	// coefficients scaled by delta: lambda_i = delta * prod_{j!=i} j'/(j'-i').
	w := big.NewInt(1)
	for _, sh := range use {
		lam := pk.lagrangeFor(use, sh.Index, d)
		exp := new(big.Int).Lsh(lam, 1) // 2 * lambda
		neg := exp.Sign() < 0
		if neg {
			exp.Neg(exp)
		}
		t := pk.exp(sh.X, exp)
		if neg {
			t.ModInverse(t, pk.N)
			if t.Sign() == 0 {
				return nil, errors.New("threshsig: non-invertible share")
			}
		}
		w.Mul(w, t)
		w.Mod(w, pk.N)
	}
	// w^e = x^{4*delta^2}; since gcd(e, 4*delta^2) = 1 (e prime > l),
	// extended Euclid gives a, b with a*e + b*4*delta^2 = 1 and
	// sigma = w^b * x^a satisfies sigma^e = x.
	a, b, ok := pk.combineExponents()
	if !ok {
		return nil, errors.New("threshsig: exponent not coprime to 4*delta^2")
	}
	sigma := pk.mulPow(x, a, w, b)
	sig := &Signature{S: sigma}
	if err := pk.Verify(msg, sig); err != nil {
		return nil, fmt.Errorf("threshsig: combination failed (bad share among inputs): %w", err)
	}
	return sig, nil
}

// Verify checks a combined signature with a single RSA verification.
func (pk *PublicKey) Verify(msg []byte, sig *Signature) error {
	if sig == nil || sig.S == nil || sig.S.Sign() <= 0 || sig.S.Cmp(pk.N) >= 0 {
		return errors.New("threshsig: malformed signature")
	}
	x := pk.ctxFor(msg).x
	got := pk.exp(sig.S, pk.E)
	if got.Cmp(x) != 0 {
		return errors.New("threshsig: verification failed")
	}
	return nil
}

// SignatureLen returns the byte length of a combined signature.
func (pk *PublicKey) SignatureLen() int { return (pk.N.BitLen() + 7) / 8 }

// ShareLen returns the approximate byte length of a serialized share with
// its proof (value + challenge + response).
func (pk *PublicKey) ShareLen() int {
	n := (pk.N.BitLen() + 7) / 8
	return n + 32 + n + 64 + 2
}

// integerLagrange computes delta * prod_{j in S, j != i} j / (j - i),
// which Shoup shows is always an integer.
func integerLagrange(subset []*SigShare, i int, d *big.Int) *big.Int {
	num := new(big.Int).Set(d)
	den := big.NewInt(1)
	for _, sh := range subset {
		if sh.Index == i {
			continue
		}
		num.Mul(num, big.NewInt(int64(sh.Index)))
		den.Mul(den, big.NewInt(int64(sh.Index-i)))
	}
	out := new(big.Int).Quo(num, den)
	return out
}

// mulPow computes x^a * w^b mod N handling negative exponents.
func (pk *PublicKey) mulPow(x, a, w, b *big.Int) *big.Int {
	f := func(base, exp *big.Int) *big.Int {
		if exp.Sign() >= 0 {
			return pk.exp(base, exp)
		}
		e := new(big.Int).Neg(exp)
		t := pk.exp(base, e)
		t.ModInverse(t, pk.N)
		return t
	}
	out := f(x, a)
	out.Mul(out, f(w, b))
	out.Mod(out, pk.N)
	return out
}

func proofChallenge(pk *PublicKey, parts ...*big.Int) *big.Int {
	h := sha256.New()
	h.Write([]byte("threshsig-proof-v1"))
	h.Write(pk.N.Bytes())
	for _, p := range parts {
		b := p.Bytes()
		var lb [4]byte
		binary.BigEndian.PutUint32(lb[:], uint32(len(b)))
		h.Write(lb[:])
		h.Write(b)
	}
	return new(big.Int).SetBytes(h.Sum(nil))
}

func evalPoly(coeffs []*big.Int, x int64, m *big.Int) *big.Int {
	bx := big.NewInt(x)
	y := new(big.Int)
	for i := len(coeffs) - 1; i >= 0; i-- {
		y.Mul(y, bx)
		y.Add(y, coeffs[i])
		y.Mod(y, m)
	}
	return y
}

func randBelow(rand io.Reader, max *big.Int) (*big.Int, error) {
	bits := max.BitLen()
	bytes := (bits + 7) / 8
	buf := make([]byte, bytes)
	for {
		if _, err := io.ReadFull(rand, buf); err != nil {
			return nil, err
		}
		if excess := bytes*8 - bits; excess > 0 {
			buf[0] &= 0xFF >> excess
		}
		v := new(big.Int).SetBytes(buf)
		if v.Cmp(max) < 0 && v.Sign() > 0 {
			return v, nil
		}
	}
}

func randBits(rand io.Reader, bits int) (*big.Int, error) {
	buf := make([]byte, (bits+7)/8)
	if _, err := io.ReadFull(rand, buf); err != nil {
		return nil, err
	}
	return new(big.Int).SetBytes(buf), nil
}
