package crypto

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"strings"

	"repro/internal/crypto/group"
	"repro/internal/crypto/pksig"
	"repro/internal/crypto/threshcoin"
	"repro/internal/crypto/threshenc"
	"repro/internal/crypto/threshsig"
)

// Suite is one node's complete cryptographic toolkit, produced by a trusted
// dealer before deployment (the paper installs keys on the devices the same
// way). Index is 1-based, matching threshold share indices.
type Suite struct {
	Index int
	N, F  int

	// Per-frame authentication.
	Signer *pksig.PrivateKey
	Verify []pksig.PublicKey // by node (0-based: node i -> Verify[i])

	// Threshold signatures: Low has threshold f+1 (PRBC DONE proofs and
	// the shared-coin; one honest contribution suffices), High has
	// threshold 2f+1 (CBC quorum certificates).
	TSLow       *threshsig.PublicKey
	TSLowShare  threshsig.PrivateShare
	TSHigh      *threshsig.PublicKey
	TSHighShare threshsig.PrivateShare

	// Threshold coin flipping (BEAT's coin), threshold f+1.
	TC      *threshcoin.PublicKey
	TCShare threshcoin.PrivateShare

	// Threshold encryption, threshold f+1.
	TE      *threshenc.PublicKey
	TEShare threshenc.PrivateShare

	Cost CostModel
}

// Config selects parameter sets for a deal.
type Config struct {
	PKScheme     pksig.Scheme // per-frame signature scheme
	ThresholdSet string       // e.g. "TS-512"; picks the RSA modulus size
	GroupSet     string       // e.g. "SG-512"; picks the DH group for coin/enc
}

// LightConfig returns the lightest parameter choice (the configuration the
// paper selects after its Fig. 10 study: secp160r1 + BN158).
func LightConfig() Config {
	return Config{PKScheme: pksig.SchemeECDSAP224, ThresholdSet: "TS-512", GroupSet: "SG-512"}
}

// HeavyConfig returns a heavier choice (the paper's secp192r1 + BN254
// comparison point).
func HeavyConfig() Config {
	return Config{PKScheme: pksig.SchemeECDSAP256, ThresholdSet: "TS-768", GroupSet: "SG-768"}
}

// subReader derives an independent deterministic reader from the master
// randomness source by consuming exactly 8 bytes. Isolation matters:
// crypto/ecdsa's key generation consumes a *nondeterministic* number of
// bytes from its reader (randutil.MaybeReadByte flips a process-global
// coin), so feeding every scheme from one shared stream would make the
// threshold keys — and the common coins derived from them — differ between
// runs with identical seeds.
func subReader(master io.Reader) (io.Reader, error) {
	var seed [8]byte
	if _, err := io.ReadFull(master, seed[:]); err != nil {
		return nil, fmt.Errorf("crypto: deriving sub-seed: %w", err)
	}
	return rand.New(rand.NewSource(int64(binary.BigEndian.Uint64(seed[:])))), nil
}

// Deal runs the trusted dealer for an N = 3f+1 network and returns one
// suite per node. rand should be a seeded reader for reproducible
// simulations.
func Deal(n, f int, cfg Config, masterRand io.Reader) ([]*Suite, error) {
	if n != 3*f+1 {
		return nil, fmt.Errorf("crypto: need n = 3f+1, got n=%d f=%d", n, f)
	}
	fix, err := threshsig.FixtureByName(cfg.ThresholdSet)
	if err != nil {
		return nil, err
	}
	grp, err := group.ByName(cfg.GroupSet)
	if err != nil {
		return nil, err
	}

	signers := make([]*pksig.PrivateKey, n)
	verify := make([]pksig.PublicKey, n)
	for i := 0; i < n; i++ {
		sub, err := subReader(masterRand)
		if err != nil {
			return nil, err
		}
		k, err := pksig.Generate(cfg.PKScheme, sub)
		if err != nil {
			return nil, err
		}
		signers[i] = k
		verify[i] = k.Public()
	}

	subs := make([]io.Reader, 4)
	for i := range subs {
		if subs[i], err = subReader(masterRand); err != nil {
			return nil, err
		}
	}
	tsLow, err := threshsig.Deal(fix.Name, fix.P, fix.Q, f+1, n, subs[0])
	if err != nil {
		return nil, fmt.Errorf("crypto: dealing low-threshold signature: %w", err)
	}
	tsHigh, err := threshsig.Deal(fix.Name, fix.P, fix.Q, 2*f+1, n, subs[1])
	if err != nil {
		return nil, fmt.Errorf("crypto: dealing high-threshold signature: %w", err)
	}
	tc, err := threshcoin.Deal(grp, f+1, n, subs[2])
	if err != nil {
		return nil, fmt.Errorf("crypto: dealing coin: %w", err)
	}
	te, err := threshenc.Deal(grp, f+1, n, subs[3])
	if err != nil {
		return nil, fmt.Errorf("crypto: dealing encryption: %w", err)
	}

	cost := CostFor(cfg.ThresholdSet)
	suites := make([]*Suite, n)
	for i := 0; i < n; i++ {
		suites[i] = &Suite{
			Index:       i + 1,
			N:           n,
			F:           f,
			Signer:      signers[i],
			Verify:      verify,
			TSLow:       &tsLow.Public,
			TSLowShare:  tsLow.Shares[i],
			TSHigh:      &tsHigh.Public,
			TSHighShare: tsHigh.Shares[i],
			TC:          &tc.Public,
			TCShare:     tc.Shares[i],
			TE:          &te.Public,
			TEShare:     te.Shares[i],
			Cost:        cost,
		}
	}
	return suites, nil
}

// Describe returns a one-line human-readable summary of a config.
func (c Config) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pk=%s threshold=%s group=%s", c.PKScheme, c.ThresholdSet, c.GroupSet)
	return b.String()
}

// SignatureSizes reports (scheme name, bytes) rows for Fig. 10c: the five
// public-key schemes and the six threshold parameter sets.
func SignatureSizes() (pk []struct {
	Name string
	Size int
}, thr []struct {
	Name string
	Size int
}) {
	for _, s := range pksig.AllSchemes() {
		pk = append(pk, struct {
			Name string
			Size int
		}{string(s), s.SignatureLen()})
	}
	for _, f := range threshsig.Fixtures() {
		thr = append(thr, struct {
			Name string
			Size int
		}{f.Name, (f.P.BitLen() + f.Q.BitLen() + 7) / 8})
	}
	return pk, thr
}
