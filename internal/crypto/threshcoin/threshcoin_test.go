package threshcoin

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/crypto/group"
)

func testKey(t testing.TB, k, l int) *Key {
	t.Helper()
	// Shared seeded fixture: tests and benchmarks with the same geometry
	// reuse one dealer run.
	key, err := DealCached(group.Default(), k, l, 11)
	if err != nil {
		t.Fatal(err)
	}
	return key
}

func TestCoinAgreement(t *testing.T) {
	key := testKey(t, 2, 4)
	name := []byte("aba:epoch=1:round=3")
	rng := rand.New(rand.NewSource(1))
	all := make([]*CoinShare, 4)
	for i := range all {
		sh, err := key.Public.Share(key.Shares[i], name, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := key.Public.VerifyShare(name, sh); err != nil {
			t.Fatalf("honest share %d rejected: %v", i, err)
		}
		all[i] = sh
	}
	a, err := key.Public.Combine(name, []*CoinShare{all[0], all[1]})
	if err != nil {
		t.Fatal(err)
	}
	b, err := key.Public.Combine(name, []*CoinShare{all[3], all[2]})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("different share subsets produced different coins")
	}
}

func TestCoinsDifferAcrossNames(t *testing.T) {
	key := testKey(t, 2, 4)
	rng := rand.New(rand.NewSource(2))
	combine := func(name string) [32]byte {
		var shares []*CoinShare
		for i := 0; i < 2; i++ {
			sh, err := key.Public.Share(key.Shares[i], []byte(name), rng)
			if err != nil {
				t.Fatal(err)
			}
			shares = append(shares, sh)
		}
		out, err := key.Public.Combine([]byte(name), shares)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	seen := map[[32]byte]string{}
	bits := map[bool]int{}
	for _, name := range []string{"r1", "r2", "r3", "r4", "r5", "r6", "r7", "r8"} {
		c := combine(name)
		if prev, dup := seen[c]; dup {
			t.Errorf("coin collision between %s and %s", name, prev)
		}
		seen[c] = name
		bits[Bit(c)]++
	}
	if bits[true] == 0 || bits[false] == 0 {
		t.Log("all 8 coins landed the same way (possible but unlikely); not failing")
	}
}

func TestShareVerificationRejectsByzantine(t *testing.T) {
	key := testKey(t, 2, 4)
	name := []byte("coin")
	rng := rand.New(rand.NewSource(3))
	sh, err := key.Public.Share(key.Shares[0], name, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Flipped sigma.
	bad := &CoinShare{Index: sh.Index, Sigma: new(big.Int).Add(sh.Sigma, big.NewInt(1)), Proof: sh.Proof}
	if err := key.Public.VerifyShare(name, bad); err == nil {
		t.Error("tampered sigma accepted")
	}
	// Share replayed for another coin name.
	if err := key.Public.VerifyShare([]byte("othercoin"), sh); err == nil {
		t.Error("share replayed across coin names accepted")
	}
	// Wrong index.
	bad = &CoinShare{Index: 2, Sigma: sh.Sigma, Proof: sh.Proof}
	if err := key.Public.VerifyShare(name, bad); err == nil {
		t.Error("share accepted under wrong index")
	}
	if err := key.Public.VerifyShare(name, &CoinShare{Index: 99, Sigma: sh.Sigma, Proof: sh.Proof}); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestCombineErrors(t *testing.T) {
	key := testKey(t, 3, 4)
	name := []byte("c")
	rng := rand.New(rand.NewSource(4))
	sh, err := key.Public.Share(key.Shares[0], name, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := key.Public.Combine(name, []*CoinShare{sh}); err == nil {
		t.Error("too few shares accepted")
	}
	if _, err := key.Public.Combine(name, []*CoinShare{sh, sh, sh}); err == nil {
		t.Error("duplicate shares accepted")
	}
}

func TestShareLenReasonable(t *testing.T) {
	key := testKey(t, 2, 4)
	if l := key.Public.ShareLen(); l < key.Public.Group.ElementLen() {
		t.Errorf("ShareLen = %d, smaller than one element", l)
	}
}

func TestDeterministicBitDistribution(t *testing.T) {
	// Over many coins the bit should not be constant; deterministic seed
	// keeps this stable.
	key := testKey(t, 2, 4)
	rng := rand.New(rand.NewSource(5))
	heads := 0
	const total = 32
	for i := 0; i < total; i++ {
		name := []byte{byte(i)}
		var shares []*CoinShare
		for j := 0; j < 2; j++ {
			sh, err := key.Public.Share(key.Shares[j], name, rng)
			if err != nil {
				t.Fatal(err)
			}
			shares = append(shares, sh)
		}
		out, err := key.Public.Combine(name, shares)
		if err != nil {
			t.Fatal(err)
		}
		if Bit(out) {
			heads++
		}
	}
	if heads == 0 || heads == total {
		t.Errorf("degenerate coin: %d/%d heads", heads, total)
	}
}
