package threshcoin

import (
	"math/big"
	"math/rand"
	"testing"
)

// TestVerifySharesMatchesPerShare pins the batch contract against an
// adversarial share matrix: VerifyShares accepts/rejects exactly as the
// uncached per-share path does. The batch runs first so its verdicts
// cannot be replays of the reference run.
func TestVerifySharesMatchesPerShare(t *testing.T) {
	key := testKey(t, 2, 4)
	name := []byte("batch coin")
	rng := rand.New(rand.NewSource(33))
	honest := make([]*CoinShare, 4)
	for i := range honest {
		sh, err := key.Public.Share(key.Shares[i], name, rng)
		if err != nil {
			t.Fatal(err)
		}
		honest[i] = sh
	}
	other, err := key.Public.Share(key.Shares[0], []byte("other coin"), rng)
	if err != nil {
		t.Fatal(err)
	}
	sh := honest[0]
	matrix := []*CoinShare{
		honest[0],
		honest[1],
		{Index: sh.Index, Sigma: new(big.Int).Add(sh.Sigma, big.NewInt(1)), Proof: sh.Proof}, // tampered sigma
		{Index: 2, Sigma: sh.Sigma, Proof: sh.Proof},                                         // transplanted index
		{Index: sh.Index, Sigma: sh.Sigma, Proof: nil},                                       // missing proof
		{Index: 0, Sigma: sh.Sigma, Proof: sh.Proof},                                         // index underflow
		{Index: 99, Sigma: sh.Sigma, Proof: sh.Proof},                                        // index overflow
		nil,   // nil share
		other, // replayed from another coin name
		honest[2],
	}

	batch := key.Public.VerifyShares(name, matrix)
	if len(batch) != len(matrix) {
		t.Fatalf("got %d verdicts for %d shares", len(batch), len(matrix))
	}
	ref := key.Public // copy with the memo detached: the uncached reference
	ref.cc = nil
	for i, s := range matrix {
		want := ref.VerifyShare(name, s)
		if (batch[i] == nil) != (want == nil) {
			t.Errorf("share %d: batch verdict %v, per-share verdict %v", i, batch[i], want)
		}
	}
}

// BenchmarkVerifyShare measures one uncached coin-share verification.
func BenchmarkVerifyShare(b *testing.B) {
	key := testKey(b, 2, 4)
	name := []byte("bench coin")
	sh, err := key.Public.Share(key.Shares[0], name, rand.New(rand.NewSource(43)))
	if err != nil {
		b.Fatal(err)
	}
	ref := key.Public
	ref.cc = nil
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ref.VerifyShare(name, sh); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerifySharesBatch measures verifying all l shares of one coin
// through the batch API with a fresh memo per iteration: the amortization
// is the shared base derivation, not cross-iteration verdict replay.
func BenchmarkVerifySharesBatch(b *testing.B) {
	key := testKey(b, 2, 4)
	name := []byte("bench coin")
	rng := rand.New(rand.NewSource(44))
	shares := make([]*CoinShare, key.Public.L)
	for i := range shares {
		sh, err := key.Public.Share(key.Shares[i], name, rng)
		if err != nil {
			b.Fatal(err)
		}
		shares[i] = sh
	}
	pk := key.Public
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pk.cc = &tcCache{
			bases:    make(map[string]*big.Int),
			verified: make(map[[32]byte]error),
		}
		for j, err := range pk.VerifyShares(name, shares) {
			if err != nil {
				b.Fatalf("share %d rejected: %v", j, err)
			}
		}
	}
}
