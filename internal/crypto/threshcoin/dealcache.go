package threshcoin

import (
	"math/rand"
	"sync"

	"repro/internal/crypto/group"
)

// dealKey identifies one dealer invocation; the group is named (the
// embedded parameter sets are process-wide singletons) and the seed names
// the deterministic randomness stream, as in crypto.DealCached.
type dealKey struct {
	Group string
	K, L  int
	Seed  int64
}

type dealEntry struct {
	once sync.Once
	key  *Key
	err  error
}

var (
	dealMu    sync.Mutex
	dealCache = map[dealKey]*dealEntry{}
)

// DealCached is Deal memoized by (group, k, l, seed): tests and benchmarks
// that repeatedly stand up the same coin share one dealer run. Sound
// because keys are immutable after dealing and share generation draws
// randomness from a caller-supplied source.
func DealCached(g *group.Group, k, l int, seed int64) (*Key, error) {
	dk := dealKey{Group: g.Name, K: k, L: l, Seed: seed}
	dealMu.Lock()
	e, ok := dealCache[dk]
	if !ok {
		e = &dealEntry{}
		dealCache[dk] = e
	}
	dealMu.Unlock()
	e.once.Do(func() {
		e.key, e.err = Deal(g, k, l, rand.New(rand.NewSource(seed)))
	})
	return e.key, e.err
}
