// Package threshcoin implements the Cachin–Kursawe–Shoup threshold coin
// (Diffie–Hellman based, "Random Oracles in Constantinople", PODC 2000).
//
// This is the "threshold coin flipping" primitive BEAT substitutes for
// threshold signatures in its ABA common coin: shares are single group
// elements with a DLEQ validity proof, combination is Lagrange
// interpolation in the exponent, and the coin value is a hash of the
// combined element. Unlike a threshold signature the combined value needs
// no third-party verification — every node combines shares itself — which
// is why the scheme is cheaper (the effect visible in the paper's
// Fig. 10b and Fig. 12a).
package threshcoin

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"

	"repro/internal/crypto/dleq"
	"repro/internal/crypto/group"
	"repro/internal/crypto/shamir"
)

// PublicKey holds the verification material for a dealt coin.
type PublicKey struct {
	Group *group.Group
	VK    *big.Int   // g^s
	VKs   []*big.Int // g^{s_i}
	K     int        // shares needed
	L     int        // total parties

	// cc is attached by Deal: memoized per-coin base elements and
	// share-verification verdicts. Both are pure functions of public
	// inputs, so hits are exact; keys built without Deal run the slow
	// path. Guarded: dealt keys are shared across concurrent simulations.
	cc *tcCache
}

type tcCache struct {
	mu       sync.Mutex
	bases    map[string]*big.Int // coin name -> HashToGroup base
	verified map[[32]byte]error  // (name, share) -> verdict
}

// cacheCap bounds each memo map; overflow clears the map (a safety
// valve — a sweep cell's working set is far smaller).
const cacheCap = 4096

// PrivateShare is party i's coin share of the master secret.
type PrivateShare struct {
	Index int
	S     *big.Int
}

// CoinShare is one party's contribution to a named coin, with proof.
type CoinShare struct {
	Index int
	Sigma *big.Int
	Proof *dleq.Proof
}

// Key is the dealer output.
type Key struct {
	Public PublicKey
	Shares []PrivateShare
}

// Deal generates a (k, l) threshold coin over g.
func Deal(g *group.Group, k, l int, rand io.Reader) (*Key, error) {
	s, err := shamir.RandInt(rand, g.Q)
	if err != nil {
		return nil, fmt.Errorf("threshcoin: sampling secret: %w", err)
	}
	shares, err := shamir.Deal(s, k, l, g.Q, rand)
	if err != nil {
		return nil, err
	}
	priv := make([]PrivateShare, l)
	vks := make([]*big.Int, l)
	for i, sh := range shares {
		priv[i] = PrivateShare{Index: sh.X, S: sh.Y}
		vks[i] = g.ExpG(sh.Y)
	}
	return &Key{
		Public: PublicKey{
			Group: g, VK: g.ExpG(s), VKs: vks, K: k, L: l,
			cc: &tcCache{
				bases:    make(map[string]*big.Int),
				verified: make(map[[32]byte]error),
			},
		},
		Shares: priv,
	}, nil
}

// base returns the per-coin base element ĥ = HashToGroup(name), memoized:
// every party derives the same base for the same coin (one share + up to
// l verifications + one combine per node), and the hash-to-group cofactor
// exponentiation is the dominant cost.
func (pk *PublicKey) base(name []byte) *big.Int {
	if pk.cc == nil {
		return pk.Group.HashToGroup("threshcoin-base", name)
	}
	pk.cc.mu.Lock()
	h := pk.cc.bases[string(name)]
	pk.cc.mu.Unlock()
	if h != nil {
		return h
	}
	h = pk.Group.HashToGroup("threshcoin-base", name)
	pk.cc.mu.Lock()
	if len(pk.cc.bases) >= cacheCap {
		clear(pk.cc.bases)
	}
	pk.cc.bases[string(name)] = h
	pk.cc.mu.Unlock()
	return h
}

// Share produces party i's share of the coin identified by name.
func (pk *PublicKey) Share(priv PrivateShare, name []byte, rand io.Reader) (*CoinShare, error) {
	h := pk.base(name)
	sigma := pk.Group.Exp(h, priv.S)
	proof, err := dleq.Prove(pk.Group, pk.Group.G, h, pk.VKs[priv.Index-1], sigma, priv.S, rand)
	if err != nil {
		return nil, fmt.Errorf("threshcoin: proving share: %w", err)
	}
	return &CoinShare{Index: priv.Index, Sigma: sigma, Proof: proof}, nil
}

// VerifyShare checks a coin share for the named coin. Verdicts are
// memoized per (name, share): every party verifies every other party's
// share of each coin, and the verdict is a pure function of the inputs.
func (pk *PublicKey) VerifyShare(name []byte, sh *CoinShare) error {
	if sh == nil || sh.Index < 1 || sh.Index > pk.L {
		return errors.New("threshcoin: bad share index")
	}
	if sh.Sigma == nil || sh.Proof == nil || sh.Proof.C == nil || sh.Proof.Z == nil {
		return errors.New("threshcoin: missing share material")
	}
	if pk.cc == nil {
		return dleq.Verify(pk.Group, pk.Group.G, pk.base(name), pk.VKs[sh.Index-1], sh.Sigma, sh.Proof)
	}
	key := shareKey(name, sh)
	pk.cc.mu.Lock()
	verdict, hit := pk.cc.verified[key]
	pk.cc.mu.Unlock()
	if hit {
		return verdict
	}
	err := dleq.Verify(pk.Group, pk.Group.G, pk.base(name), pk.VKs[sh.Index-1], sh.Sigma, sh.Proof)
	pk.cc.mu.Lock()
	if len(pk.cc.verified) >= cacheCap {
		clear(pk.cc.verified)
	}
	pk.cc.verified[key] = err
	pk.cc.mu.Unlock()
	return err
}

// VerifyShares checks a batch of shares of one coin, returning one
// verdict per share in order. The batch amortizes the per-coin base
// derivation and replays memoized verdicts through dleq.VerifyBatch's
// shared fixed-point work; each proof is still checked individually and
// exactly (see dleq.VerifyBatch for why no randomized-linear-combination
// shortcut is sound here), so a batch rejects precisely the shares
// per-share verification rejects.
func (pk *PublicKey) VerifyShares(name []byte, shares []*CoinShare) []error {
	errs := make([]error, len(shares))
	pk.base(name) // derive (and memoize) the base once for the whole batch
	for i, sh := range shares {
		errs[i] = pk.VerifyShare(name, sh)
	}
	return errs
}

// shareKey digests a (coin name, share) pair for the verdict memo,
// covering every byte verification reads.
func shareKey(name []byte, sh *CoinShare) [32]byte {
	h := sha256.New()
	var lb [4]byte
	binary.BigEndian.PutUint32(lb[:], uint32(len(name)))
	h.Write(lb[:])
	h.Write(name)
	binary.BigEndian.PutUint32(lb[:], uint32(sh.Index))
	h.Write(lb[:])
	for _, v := range []*big.Int{sh.Sigma, sh.Proof.C, sh.Proof.Z} {
		b := v.Bytes()
		binary.BigEndian.PutUint32(lb[:], uint32(len(b)))
		h.Write(lb[:])
		h.Write(b)
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// Combine interpolates k shares into the coin's group element and returns
// its 32-byte digest. All callers with any k valid shares obtain the same
// value.
func (pk *PublicKey) Combine(name []byte, shares []*CoinShare) ([32]byte, error) {
	var out [32]byte
	if len(shares) < pk.K {
		return out, fmt.Errorf("threshcoin: need %d shares, have %d", pk.K, len(shares))
	}
	use := shares[:pk.K]
	pts := make([]shamir.Share, pk.K)
	seen := make(map[int]bool, pk.K)
	for i, sh := range use {
		if seen[sh.Index] {
			return out, fmt.Errorf("threshcoin: duplicate share %d", sh.Index)
		}
		seen[sh.Index] = true
		pts[i] = shamir.Share{X: sh.Index}
	}
	lams := shamir.LagrangeSet(pts, pk.Group.Q)
	sigma := big.NewInt(1)
	for i, sh := range use {
		sigma = pk.Group.Mul(sigma, pk.Group.Exp(sh.Sigma, lams[i]))
	}
	d := sha256.New()
	d.Write([]byte("threshcoin-out"))
	d.Write(name)
	d.Write(sigma.Bytes())
	copy(out[:], d.Sum(nil))
	return out, nil
}

// Bit reduces a combined coin digest to a single bit.
func Bit(digest [32]byte) bool { return digest[0]&1 == 1 }

// ShareLen returns the approximate serialized share size (element + proof).
func (pk *PublicKey) ShareLen() int {
	return pk.Group.ElementLen() + dleq.Size(pk.Group) + 2
}
