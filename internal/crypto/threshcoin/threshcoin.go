// Package threshcoin implements the Cachin–Kursawe–Shoup threshold coin
// (Diffie–Hellman based, "Random Oracles in Constantinople", PODC 2000).
//
// This is the "threshold coin flipping" primitive BEAT substitutes for
// threshold signatures in its ABA common coin: shares are single group
// elements with a DLEQ validity proof, combination is Lagrange
// interpolation in the exponent, and the coin value is a hash of the
// combined element. Unlike a threshold signature the combined value needs
// no third-party verification — every node combines shares itself — which
// is why the scheme is cheaper (the effect visible in the paper's
// Fig. 10b and Fig. 12a).
package threshcoin

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/big"

	"repro/internal/crypto/dleq"
	"repro/internal/crypto/group"
	"repro/internal/crypto/shamir"
)

// PublicKey holds the verification material for a dealt coin.
type PublicKey struct {
	Group *group.Group
	VK    *big.Int   // g^s
	VKs   []*big.Int // g^{s_i}
	K     int        // shares needed
	L     int        // total parties
}

// PrivateShare is party i's coin share of the master secret.
type PrivateShare struct {
	Index int
	S     *big.Int
}

// CoinShare is one party's contribution to a named coin, with proof.
type CoinShare struct {
	Index int
	Sigma *big.Int
	Proof *dleq.Proof
}

// Key is the dealer output.
type Key struct {
	Public PublicKey
	Shares []PrivateShare
}

// Deal generates a (k, l) threshold coin over g.
func Deal(g *group.Group, k, l int, rand io.Reader) (*Key, error) {
	s, err := shamir.RandInt(rand, g.Q)
	if err != nil {
		return nil, fmt.Errorf("threshcoin: sampling secret: %w", err)
	}
	shares, err := shamir.Deal(s, k, l, g.Q, rand)
	if err != nil {
		return nil, err
	}
	priv := make([]PrivateShare, l)
	vks := make([]*big.Int, l)
	for i, sh := range shares {
		priv[i] = PrivateShare{Index: sh.X, S: sh.Y}
		vks[i] = g.ExpG(sh.Y)
	}
	return &Key{
		Public: PublicKey{Group: g, VK: g.ExpG(s), VKs: vks, K: k, L: l},
		Shares: priv,
	}, nil
}

// base returns the per-coin base element ĥ = HashToGroup(name).
func (pk *PublicKey) base(name []byte) *big.Int {
	return pk.Group.HashToGroup("threshcoin-base", name)
}

// Share produces party i's share of the coin identified by name.
func (pk *PublicKey) Share(priv PrivateShare, name []byte, rand io.Reader) (*CoinShare, error) {
	h := pk.base(name)
	sigma := pk.Group.Exp(h, priv.S)
	proof, err := dleq.Prove(pk.Group, pk.Group.G, h, pk.VKs[priv.Index-1], sigma, priv.S, rand)
	if err != nil {
		return nil, fmt.Errorf("threshcoin: proving share: %w", err)
	}
	return &CoinShare{Index: priv.Index, Sigma: sigma, Proof: proof}, nil
}

// VerifyShare checks a coin share for the named coin.
func (pk *PublicKey) VerifyShare(name []byte, sh *CoinShare) error {
	if sh == nil || sh.Index < 1 || sh.Index > pk.L {
		return errors.New("threshcoin: bad share index")
	}
	h := pk.base(name)
	return dleq.Verify(pk.Group, pk.Group.G, h, pk.VKs[sh.Index-1], sh.Sigma, sh.Proof)
}

// Combine interpolates k shares into the coin's group element and returns
// its 32-byte digest. All callers with any k valid shares obtain the same
// value.
func (pk *PublicKey) Combine(name []byte, shares []*CoinShare) ([32]byte, error) {
	var out [32]byte
	if len(shares) < pk.K {
		return out, fmt.Errorf("threshcoin: need %d shares, have %d", pk.K, len(shares))
	}
	use := shares[:pk.K]
	pts := make([]shamir.Share, pk.K)
	seen := make(map[int]bool, pk.K)
	for i, sh := range use {
		if seen[sh.Index] {
			return out, fmt.Errorf("threshcoin: duplicate share %d", sh.Index)
		}
		seen[sh.Index] = true
		pts[i] = shamir.Share{X: sh.Index}
	}
	sigma := big.NewInt(1)
	for i, sh := range use {
		lam := shamir.LagrangeCoeff(pts, i, pk.Group.Q)
		sigma = pk.Group.Mul(sigma, pk.Group.Exp(sh.Sigma, lam))
	}
	d := sha256.New()
	d.Write([]byte("threshcoin-out"))
	d.Write(name)
	d.Write(sigma.Bytes())
	copy(out[:], d.Sum(nil))
	return out, nil
}

// Bit reduces a combined coin digest to a single bit.
func Bit(digest [32]byte) bool { return digest[0]&1 == 1 }

// ShareLen returns the approximate serialized share size (element + proof).
func (pk *PublicKey) ShareLen() int {
	return pk.Group.ElementLen() + dleq.Size(pk.Group) + 2
}
