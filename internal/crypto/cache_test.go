package crypto

import (
	"math/rand"
	"sync"
	"testing"
)

// TestDealCachedReturnsSameSuites pins the memoization contract: same key
// -> same slice (pointer-identical, one dealer run), different seed ->
// different threshold keys.
func TestDealCachedReturnsSameSuites(t *testing.T) {
	a, err := DealCached(4, 1, LightConfig(), 12345)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DealCached(4, 1, LightConfig(), 12345)
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] || a[0] != b[0] {
		t.Error("same (n,f,cfg,seed) should hit the cache and return identical suites")
	}
	c, err := DealCached(4, 1, LightConfig(), 54321)
	if err != nil {
		t.Fatal(err)
	}
	if a[0].TSLow.Salt == c[0].TSLow.Salt {
		t.Error("different seeds must not share a deal (salts collide)")
	}
}

// TestDealCachedConcurrent hammers one key and several others from many
// goroutines; under -race this is the regression test for the sweep
// engine's shared keygen path.
func TestDealCachedConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	results := make([][]*Suite, 16)
	for g := 0; g < 16; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := DealCached(4, 1, LightConfig(), 777+int64(g%3))
			if err != nil {
				t.Error(err)
				return
			}
			results[g] = s
		}()
	}
	wg.Wait()
	for g := 3; g < 16; g++ {
		if results[g] == nil || results[g-3] == nil {
			t.Fatal("missing result")
		}
		if results[g][0] != results[g-3][0] {
			t.Errorf("goroutines %d and %d share a key but got different suites", g, g-3)
		}
	}
}

// TestDealCachedMatchesHistoricalDerivation verifies the cache reproduces
// what a fresh Deal over the same seeded reader produces: the threshold
// key material (which every golden number depends on) is bit-identical.
// Per-frame signer keys are exempt — crypto/ecdsa's keygen consumes a
// nondeterministic number of reader bytes (see subReader), and no
// simulated outcome depends on them.
func TestDealCachedMatchesHistoricalDerivation(t *testing.T) {
	cached, err := DealCached(4, 1, LightConfig(), 99^0x5eed)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Deal(4, 1, LightConfig(), rand.New(rand.NewSource(99^0x5eed)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range cached {
		if cached[i].TSLow.Salt != fresh[i].TSLow.Salt ||
			cached[i].TSLowShare.S.Cmp(fresh[i].TSLowShare.S) != 0 ||
			cached[i].TSHighShare.S.Cmp(fresh[i].TSHighShare.S) != 0 ||
			cached[i].TCShare.S.Cmp(fresh[i].TCShare.S) != 0 ||
			cached[i].TEShare.Z.Cmp(fresh[i].TEShare.Z) != 0 {
			t.Errorf("suite %d: threshold material diverges between cache hits", i)
		}
	}
}
