package shamir

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

var testQ = func() *big.Int {
	// A 256-bit prime (the order of the P-256 group).
	q, ok := new(big.Int).SetString("ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551", 16)
	if !ok {
		panic("bad prime literal")
	}
	return q
}()

func testRand() *rand.Rand { return rand.New(rand.NewSource(1)) }

func TestDealCombineRoundTrip(t *testing.T) {
	secret := big.NewInt(424242)
	shares, err := Deal(secret, 3, 7, testQ, testRand())
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) != 7 {
		t.Fatalf("got %d shares", len(shares))
	}
	got, err := Combine(shares[2:5], 3, testQ)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(secret) != 0 {
		t.Errorf("recovered %v, want %v", got, secret)
	}
}

func TestAnySubsetRecovers(t *testing.T) {
	secret := big.NewInt(987654321)
	shares, err := Deal(secret, 2, 4, testQ, testRand())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			got, err := Combine([]Share{shares[i], shares[j]}, 2, testQ)
			if err != nil {
				t.Fatal(err)
			}
			if got.Cmp(secret) != 0 {
				t.Errorf("subset {%d,%d} recovered %v", i, j, got)
			}
		}
	}
}

func TestTooFewShares(t *testing.T) {
	shares, err := Deal(big.NewInt(5), 3, 5, testQ, testRand())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Combine(shares[:2], 3, testQ); err != ErrNotEnoughShares {
		t.Errorf("err = %v, want ErrNotEnoughShares", err)
	}
}

func TestDuplicateSharesRejected(t *testing.T) {
	shares, err := Deal(big.NewInt(5), 2, 4, testQ, testRand())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Combine([]Share{shares[0], shares[0]}, 2, testQ); err == nil {
		t.Error("duplicate shares accepted")
	}
}

func TestInvalidParams(t *testing.T) {
	if _, err := Deal(big.NewInt(1), 0, 4, testQ, testRand()); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Deal(big.NewInt(1), 5, 4, testQ, testRand()); err == nil {
		t.Error("k>n accepted")
	}
	if _, err := Deal(new(big.Int).Neg(big.NewInt(1)), 2, 4, testQ, testRand()); err == nil {
		t.Error("negative secret accepted")
	}
	if _, err := Deal(testQ, 2, 4, testQ, testRand()); err == nil {
		t.Error("secret >= q accepted")
	}
}

func TestDistinctSecretsDistinctReconstruction(t *testing.T) {
	// Sanity: dealing two different secrets and recombining yields the
	// respective secrets, not a collision.
	rng := testRand()
	a, _ := Deal(big.NewInt(111), 2, 4, testQ, rng)
	b, _ := Deal(big.NewInt(222), 2, 4, testQ, rng)
	ga, _ := Combine(a[:2], 2, testQ)
	gb, _ := Combine(b[:2], 2, testQ)
	if ga.Cmp(gb) == 0 {
		t.Error("distinct secrets reconstructed to the same value")
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	rng := testRand()
	f := func(secretSeed int64, kRaw, nRaw uint8) bool {
		k := int(kRaw%4) + 1
		n := k + int(nRaw%4)
		secret := new(big.Int).Mod(big.NewInt(secretSeed), testQ)
		secret.Abs(secret)
		shares, err := Deal(secret, k, n, testQ, rng)
		if err != nil {
			return false
		}
		// Random subset of exactly k shares.
		idx := rng.Perm(n)[:k]
		subset := make([]Share, k)
		for i, j := range idx {
			subset[i] = shares[j]
		}
		got, err := Combine(subset, k, testQ)
		return err == nil && got.Cmp(secret) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLagrangeCoeffSumsToOneOnConstant(t *testing.T) {
	// For a constant polynomial (k=1 dealt with extra shares), every share
	// equals the secret, and Lagrange at 0 over any subset must return it.
	secret := big.NewInt(77)
	shares, err := Deal(secret, 1, 3, testQ, testRand())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range shares {
		if s.Y.Cmp(secret) != 0 {
			t.Errorf("constant poly share %d = %v", s.X, s.Y)
		}
	}
}
