// Package shamir implements Shamir secret sharing over a prime field.
// It is the dealing primitive underneath the threshold signature, threshold
// coin, and threshold encryption schemes in sibling packages. The dealer is
// trusted, exactly as in the paper's testbed (keys are installed on the
// devices before deployment).
package shamir

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"
)

// Share is one party's point on the dealing polynomial: (X, f(X)).
// X is never zero (zero is the secret's evaluation point).
type Share struct {
	X int
	Y *big.Int
}

// ErrNotEnoughShares is returned when fewer than threshold shares are given.
var ErrNotEnoughShares = errors.New("shamir: not enough shares")

// Deal splits secret into n shares with reconstruction threshold k
// (any k shares recover the secret; k-1 reveal nothing) over the prime
// field Z_q. Randomness is drawn from rand.
func Deal(secret *big.Int, k, n int, q *big.Int, rand io.Reader) ([]Share, error) {
	if k < 1 || n < k {
		return nil, fmt.Errorf("shamir: invalid threshold %d of %d", k, n)
	}
	if secret.Sign() < 0 || secret.Cmp(q) >= 0 {
		return nil, errors.New("shamir: secret out of field range")
	}
	coeffs := make([]*big.Int, k)
	coeffs[0] = new(big.Int).Set(secret)
	for i := 1; i < k; i++ {
		c, err := randInt(rand, q)
		if err != nil {
			return nil, fmt.Errorf("shamir: sampling coefficient: %w", err)
		}
		coeffs[i] = c
	}
	shares := make([]Share, n)
	for i := 1; i <= n; i++ {
		shares[i-1] = Share{X: i, Y: eval(coeffs, int64(i), q)}
	}
	return shares, nil
}

// eval computes f(x) mod q by Horner's rule.
func eval(coeffs []*big.Int, x int64, q *big.Int) *big.Int {
	bx := big.NewInt(x)
	y := new(big.Int)
	for i := len(coeffs) - 1; i >= 0; i-- {
		y.Mul(y, bx)
		y.Add(y, coeffs[i])
		y.Mod(y, q)
	}
	return y
}

// Combine reconstructs the secret (f(0)) from at least k shares by
// Lagrange interpolation at zero over Z_q. Duplicate X coordinates are
// rejected.
func Combine(shares []Share, k int, q *big.Int) (*big.Int, error) {
	if len(shares) < k {
		return nil, ErrNotEnoughShares
	}
	use := shares[:k]
	seen := make(map[int]bool, k)
	for _, s := range use {
		if s.X == 0 {
			return nil, errors.New("shamir: share at x=0")
		}
		if seen[s.X] {
			return nil, fmt.Errorf("shamir: duplicate share x=%d", s.X)
		}
		seen[s.X] = true
	}
	secret := new(big.Int)
	for i, si := range use {
		li := LagrangeCoeff(use, i, q)
		term := new(big.Int).Mul(si.Y, li)
		secret.Add(secret, term)
		secret.Mod(secret, q)
	}
	return secret, nil
}

// LagrangeCoeff returns the Lagrange basis coefficient at zero for share i
// of the given subset, mod q: prod_{j != i} x_j / (x_j - x_i).
func LagrangeCoeff(subset []Share, i int, q *big.Int) *big.Int {
	num := big.NewInt(1)
	den := big.NewInt(1)
	xi := big.NewInt(int64(subset[i].X))
	for j, sj := range subset {
		if j == i {
			continue
		}
		xj := big.NewInt(int64(sj.X))
		num.Mul(num, xj)
		num.Mod(num, q)
		d := new(big.Int).Sub(xj, xi)
		d.Mod(d, q)
		den.Mul(den, d)
		den.Mod(den, q)
	}
	den.ModInverse(den, q)
	num.Mul(num, den)
	num.Mod(num, q)
	return num
}

// lagCache memoizes LagrangeSet results. Interpolation subsets recur
// constantly in a simulation (every party combines the same handful of
// k-subsets for every coin flip and decryption), and the coefficients are
// a pure function of (subset, q). Keyed by the exact X sequence plus q;
// guarded because dealt keys are shared across concurrent simulations.
var (
	lagMu    sync.Mutex
	lagCache = map[string][]*big.Int{}
)

// LagrangeSet returns the Lagrange basis coefficients at zero for every
// share of the subset, mod q, memoized across calls. The returned slice
// and its elements are shared and must not be mutated.
func LagrangeSet(subset []Share, q *big.Int) []*big.Int {
	key := make([]byte, 0, 4*len(subset)+len(q.Bytes()))
	for _, s := range subset {
		key = binary.BigEndian.AppendUint32(key, uint32(s.X))
	}
	key = append(key, q.Bytes()...)
	lagMu.Lock()
	set := lagCache[string(key)]
	lagMu.Unlock()
	if set != nil {
		return set
	}
	set = make([]*big.Int, len(subset))
	for i := range subset {
		set[i] = LagrangeCoeff(subset, i, q)
	}
	lagMu.Lock()
	if len(lagCache) >= 4096 {
		clear(lagCache)
	}
	lagCache[string(key)] = set
	lagMu.Unlock()
	return set
}

// randInt samples a uniform element of [0, q).
func randInt(rand io.Reader, q *big.Int) (*big.Int, error) {
	max := new(big.Int).Set(q)
	bits := max.BitLen()
	bytes := (bits + 7) / 8
	buf := make([]byte, bytes)
	for {
		if _, err := io.ReadFull(rand, buf); err != nil {
			return nil, err
		}
		// Trim excess bits so the rejection rate is < 1/2.
		if excess := bytes*8 - bits; excess > 0 {
			buf[0] &= 0xFF >> excess
		}
		v := new(big.Int).SetBytes(buf)
		if v.Cmp(q) < 0 {
			return v, nil
		}
	}
}

// RandInt exposes uniform field sampling for sibling packages.
func RandInt(rand io.Reader, q *big.Int) (*big.Int, error) { return randInt(rand, q) }
