package run

import (
	"encoding/binary"
	"fmt"
	"math/big"
	"time"

	"repro/internal/crypto/threshsig"
)

// Cut certificates: the threshold-signed provenance proof that travels
// with every cluster-cut record to the global tier (the VCBC-style
// "proof travels with the value" discipline). A cut is signed by f+1 of
// its cluster's members under the cluster's low-threshold signature key
// (crypto.Suite.TSLow, dealt per cluster through crypto.DealCached), so
// a Byzantine relay seat — which holds at most f cluster shares worth of
// influence — cannot fabricate a certificate for a cluster it does not
// control. Every relay seat verifies the certificate of every cut it
// commits; cuts that fail are counted into core.Stats.Rejected and never
// enter the cut order or the frontier beacons.

// cutHeaderSize is the fixed prefix of a cluster-cut record:
// u32 cluster | u32 local epoch | 32-byte entry digest. The threshold
// certificate follows (SignatureLen bytes of the cluster's TSLow key).
const cutHeaderSize = 40

// cutMsg is the domain-separated message a cluster threshold-signs for
// one cut: it binds the deployment's global session, the cluster id, the
// local epoch, and the committed entry digest, so a certificate cannot
// be replayed for another epoch, grafted onto another cluster's cut, or
// reused across deployments.
func cutMsg(session uint32, cluster, epoch int, digest [32]byte) []byte {
	msg := make([]byte, 0, 11+12+32)
	msg = append(msg, "mhchain-cut"...)
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], session)
	msg = append(msg, b[:]...)
	binary.BigEndian.PutUint32(b[:], uint32(cluster))
	msg = append(msg, b[:]...)
	binary.BigEndian.PutUint32(b[:], uint32(epoch))
	msg = append(msg, b[:]...)
	msg = append(msg, digest[:]...)
	return msg
}

// MakeCutTx builds the certified cluster-cut record a relay seat submits
// to the global tier for one committed local epoch.
func MakeCutTx(cluster, epoch int, digest [32]byte, cert []byte) []byte {
	tx := make([]byte, cutHeaderSize+len(cert))
	binary.BigEndian.PutUint32(tx, uint32(cluster))
	binary.BigEndian.PutUint32(tx[4:], uint32(epoch))
	copy(tx[8:], digest[:])
	copy(tx[cutHeaderSize:], cert)
	return tx
}

// parseCutTx decodes a cut record; ok is false for foreign payloads and
// for records truncated to (or below) the bare header — an unsigned cut
// is not a cut.
func parseCutTx(tx []byte) (cluster, epoch int, digest [32]byte, cert []byte, ok bool) {
	if len(tx) <= cutHeaderSize {
		return 0, 0, digest, nil, false
	}
	cluster = int(binary.BigEndian.Uint32(tx))
	epoch = int(binary.BigEndian.Uint32(tx[4:]))
	copy(digest[:], tx[8:])
	return cluster, epoch, digest, tx[cutHeaderSize:], true
}

// combineCutCert assembles f+1 verified shares into the fixed-width
// certificate encoding (SignatureLen bytes, left-padded).
func combineCutCert(key *threshsig.PublicKey, msg []byte, shares []*threshsig.SigShare) ([]byte, error) {
	sig, err := key.Combine(msg, shares)
	if err != nil {
		return nil, fmt.Errorf("run: combining cut certificate: %w", err)
	}
	cert := make([]byte, key.SignatureLen())
	sig.S.FillBytes(cert)
	return cert, nil
}

// verifyCutCert checks a cut's certificate against the claimed cluster's
// threshold key. Certificates of the wrong width are rejected outright
// (truncation cannot smuggle a shorter forgery past the RSA check).
func verifyCutCert(key *threshsig.PublicKey, session uint32, cluster, epoch int, digest [32]byte, cert []byte) bool {
	if len(cert) != key.SignatureLen() {
		return false
	}
	sig := &threshsig.Signature{S: new(big.Int).SetBytes(cert)}
	return key.Verify(cutMsg(session, cluster, epoch, digest), sig) == nil
}

// CutCertStats counts the certificate work of one Clustered × Chain run,
// summed across the whole deployment: share signing at the cluster
// members, share verification and combining at the submitting relay
// seat, and certificate verification at every committing seat. Busy is
// the total virtual compute time those operations charged against the
// member and seat CPUs through the crypto cost model — pinned by test to
// equal the op counts weighted by crypto.CostModel rates.
type CutCertStats struct {
	Signs         int `json:"signs"`
	ShareVerifies int `json:"share_verifies"`
	Combines      int `json:"combines"`
	Verifies      int `json:"verifies"`
	// RejectedCuts counts committed global-order transactions discarded
	// by certificate verification (forged, unsigned, malformed, or
	// out-of-range cuts), summed over all seats. Each discard is also
	// counted into the seat transport's Stats.Rejected.
	RejectedCuts int           `json:"rejected_cuts"`
	Busy         time.Duration `json:"busy_ns"`
}
