package run

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/protocol"
	"repro/internal/scenario"
)

func quickChainSpec(p protocol.Kind, coin protocol.CoinKind, batched bool, seed int64) Spec {
	spec := Defaults(p, coin)
	spec.Batched = batched
	spec.Workload = Chain(20)
	spec.Seed = seed
	return spec
}

// TestChainPipelinedLossy is the acceptance run: >= 20 epochs at pipeline
// depth 2 on the lossy default channel, for both ConsensusBatcher and the
// baseline transport; all correct nodes must commit identical, gap-free
// logs (Run fails otherwise).
func TestChainPipelinedLossy(t *testing.T) {
	for _, batched := range []bool{true, false} {
		batched := batched
		t.Run(fmt.Sprintf("batched=%v", batched), func(t *testing.T) {
			t.Parallel()
			spec := quickChainSpec(protocol.HoneyBadger, protocol.CoinSig, batched, 1)
			res, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			if res.Chain.EpochsCommitted < 20 {
				t.Fatalf("committed %d epochs, want >= 20", res.Chain.EpochsCommitted)
			}
			if res.Chain.CommittedTxs == 0 || res.Chain.ThroughputBps <= 0 {
				t.Fatalf("no sustained throughput: %+v", res.Chain)
			}
			t.Logf("batched=%v: %d epochs, %d txs, %.1f B/s, commit latency %v, dedup dropped %d",
				batched, res.Chain.EpochsCommitted, res.Chain.CommittedTxs, res.Chain.ThroughputBps,
				res.Chain.MeanCommitLatency.Round(time.Millisecond), res.Chain.DedupDropped)
		})
	}
}

// TestChainAllVariantsLossy runs multi-epoch SMR agreement for all five
// protocol variants on the lossy channel.
func TestChainAllVariantsLossy(t *testing.T) {
	for i, v := range protocol.Variants() {
		v, i := v, i
		t.Run(v.Name, func(t *testing.T) {
			t.Parallel()
			spec := quickChainSpec(v.Kind, v.Coin, true, 40+int64(i))
			spec.Workload.Epochs = 6
			res, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			if res.Chain.CommittedTxs == 0 {
				t.Error("no transactions committed")
			}
			t.Logf("%s: %d txs in %v (%.1f B/s)", v.Name, res.Chain.CommittedTxs,
				res.Duration.Round(time.Second), res.Chain.ThroughputBps)
		})
	}
}

// TestChainDeeperPipelineKeepsAgreement raises the depth beyond 2.
func TestChainDeeperPipelineKeepsAgreement(t *testing.T) {
	spec := quickChainSpec(protocol.HoneyBadger, protocol.CoinSig, true, 3)
	spec.Workload.Window = 4
	spec.Workload.Epochs = 10
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chain.MaxOpenEpochs <= 1 {
		t.Errorf("pipeline never overlapped: max open epochs %d", res.Chain.MaxOpenEpochs)
	}
}

// TestChainWithCrashFault checks sustained progress with f crashed nodes.
func TestChainWithCrashFault(t *testing.T) {
	spec := quickChainSpec(protocol.HoneyBadger, protocol.CoinSig, true, 4)
	spec.Workload.Epochs = 5
	spec.Scenario = scenario.Crash(3)
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chain.CommittedTxs == 0 {
		t.Error("no transactions committed with a crashed node")
	}
	if res.Chain.Logs[3] != nil {
		t.Error("crashed node produced a log")
	}
}

// TestChainDeterministic: same seed, same log and measurements.
func TestChainDeterministic(t *testing.T) {
	spec := quickChainSpec(protocol.DumboKind, protocol.CoinSig, true, 5)
	spec.Workload.Epochs = 4
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Duration != b.Duration || a.Chain.CommittedTxs != b.Chain.CommittedTxs || a.Accesses != b.Accesses {
		t.Errorf("same seed differs: %v/%d/%d vs %v/%d/%d",
			a.Duration, a.Chain.CommittedTxs, a.Accesses, b.Duration, b.Chain.CommittedTxs, b.Accesses)
	}
}

// TestChainEpochGC: open epoch state stays bounded by the GC lag, not the
// chain length.
func TestChainEpochGC(t *testing.T) {
	spec := quickChainSpec(protocol.HoneyBadger, protocol.CoinSig, true, 6)
	spec.Workload.Epochs = 12
	spec.Workload.Window = 2
	spec.Workload.GCLag = 3
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chain.MaxOpenEpochs > spec.Workload.GCLag+spec.Workload.Window+1 {
		t.Errorf("max open epochs %d exceeds GC bound %d",
			res.Chain.MaxOpenEpochs, spec.Workload.GCLag+spec.Workload.Window+1)
	}
}

// TestChainDedup: every client tx is broadcast to all four mempools, so
// without commit-time dedup the log would repeat most payloads ~4x.
func TestChainDedup(t *testing.T) {
	spec := quickChainSpec(protocol.HoneyBadger, protocol.CoinSig, true, 7)
	spec.Workload.Epochs = 8
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chain.DedupDropped == 0 {
		t.Error("commit dedup never triggered despite broadcast clients")
	}
	seen := map[string]bool{}
	for _, entry := range res.Chain.Logs[0] {
		for _, tx := range entry.Txs {
			if seen[string(tx)] {
				t.Fatalf("duplicate tx committed in epoch %d", entry.Epoch)
			}
			seen[string(tx)] = true
		}
	}
	if res.Chain.CommittedTxs > res.Chain.SubmittedTxs {
		t.Errorf("committed %d txs > submitted %d", res.Chain.CommittedTxs, res.Chain.SubmittedTxs)
	}
}

// TestChainCrashRecovery is the crash-recovery acceptance run: node 2
// crashes around epoch 5 and recovers around epoch 10 (the default cadence
// is ~5m45s per epoch). The recovered node must rejoin mid-run through
// core.Mux.OnUnknownEpoch, catch up on the epochs it lost through NACK
// retransmission and repair, and commit the same gap-free log as everyone
// else — under both transports.
func TestChainCrashRecovery(t *testing.T) {
	for _, batched := range []bool{true, false} {
		batched := batched
		t.Run(fmt.Sprintf("batched=%v", batched), func(t *testing.T) {
			t.Parallel()
			spec := quickChainSpec(protocol.HoneyBadger, protocol.CoinSig, batched, 1)
			spec.Workload.Epochs = 14
			// Peers must still hold the recovered node's missing epochs:
			// keep the GC window as long as the run.
			spec.Workload.GCLag = spec.Workload.Epochs
			spec.Scenario = scenario.Plan{}.Then(
				scenario.CrashAt(30*time.Minute, 2),   // ~epoch 5
				scenario.RecoverAt(60*time.Minute, 2), // ~epoch 10
			)
			res, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			for i, log := range res.Chain.Logs {
				if len(log) != spec.Workload.Epochs {
					t.Fatalf("node %d committed %d epochs, want %d (recovered node must catch up)",
						i, len(log), spec.Workload.Epochs)
				}
				for e, entry := range log {
					if entry.Epoch != e {
						t.Fatalf("node %d log has a gap at %d (epoch %d)", i, e, entry.Epoch)
					}
				}
			}
			// The recovered node's log must be byte-identical to node 0's.
			for e := range res.Chain.Logs[0] {
				a, b := res.Chain.Logs[0][e], res.Chain.Logs[2][e]
				if len(a.Txs) != len(b.Txs) {
					t.Fatalf("epoch %d: node0 %d txs, recovered node %d txs", e, len(a.Txs), len(b.Txs))
				}
				for j := range a.Txs {
					if string(a.Txs[j]) != string(b.Txs[j]) {
						t.Fatalf("epoch %d tx %d differs between node 0 and the recovered node", e, j)
					}
				}
			}
			t.Logf("batched=%v: recovered node caught up; %d epochs in %v",
				batched, res.Chain.EpochsCommitted, res.Duration.Round(time.Second))
		})
	}
}

// TestChainCrashRecoveryAllFamilies runs the same crash-recovery scenario
// across the other protocol families (Dumbo's serial-ABA catch-up and
// BEAT's coin-flipping path are distinct code).
func TestChainCrashRecoveryAllFamilies(t *testing.T) {
	for _, tc := range []struct {
		name string
		kind protocol.Kind
		coin protocol.CoinKind
	}{
		{"Dumbo-SC", protocol.DumboKind, protocol.CoinSig},
		{"BEAT", protocol.BEAT, protocol.CoinFlip},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			spec := quickChainSpec(tc.kind, tc.coin, true, 2)
			spec.Workload.Epochs = 12
			spec.Workload.GCLag = spec.Workload.Epochs
			spec.Scenario = scenario.Plan{}.Then(
				scenario.CrashAt(25*time.Minute, 1),
				scenario.RecoverAt(55*time.Minute, 1),
			)
			res, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Chain.Logs[1]) != spec.Workload.Epochs {
				t.Fatalf("recovered node committed %d epochs, want %d",
					len(res.Chain.Logs[1]), spec.Workload.Epochs)
			}
		})
	}
}

// TestChainPartitionHeals: a partition that splits the quorum stalls the
// asynchronous protocol (safety holds, liveness waits); healing it lets
// the run complete.
func TestChainPartitionHeals(t *testing.T) {
	spec := quickChainSpec(protocol.HoneyBadger, protocol.CoinSig, true, 3)
	spec.Workload.Epochs = 8
	spec.Scenario = scenario.Plan{}.Then(
		scenario.PartitionAt(10*time.Minute, []int{0, 1}, []int{2, 3}),
		scenario.HealAt(40*time.Minute),
	)
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	// The 30-minute partition must show up as lost time relative to the
	// fault-free run of the same seed.
	spec.Scenario = scenario.Plan{}
	free, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration <= free.Duration {
		t.Errorf("partitioned run (%v) not slower than fault-free (%v)", res.Duration, free.Duration)
	}
}

// TestChainScenarioDeterministic: the scenario engine (crash, recovery,
// catch-up, and the seed-derived adversary randomness) must not break
// run-level determinism.
func TestChainScenarioDeterministic(t *testing.T) {
	spec := quickChainSpec(protocol.HoneyBadger, protocol.CoinSig, true, 9)
	spec.Workload.Epochs = 10
	spec.Workload.GCLag = 10
	spec.Scenario = scenario.Plan{}.Then(
		scenario.CrashAt(20*time.Minute, 3),
		scenario.RecoverAt(45*time.Minute, 3),
		scenario.LossBurst(15*time.Minute, 5*time.Minute, 0.3),
	)
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Duration != b.Duration || a.Chain.CommittedTxs != b.Chain.CommittedTxs || a.Accesses != b.Accesses {
		t.Errorf("scenario run not deterministic: %v/%d/%d vs %v/%d/%d",
			a.Duration, a.Chain.CommittedTxs, a.Accesses, b.Duration, b.Chain.CommittedTxs, b.Accesses)
	}
}
