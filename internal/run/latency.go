package run

import (
	"math"
	"sort"
	"time"
)

// LatencyStats summarizes a per-transaction submit->commit latency
// sample: nearest-rank percentiles plus mean and max. It exists because
// ChainReport.MeanCommitLatency is epoch-granularity (proposal cut ->
// epoch commit) and says nothing about what a client waits under bursty
// load, where a transaction can sit pooled across many epochs before any
// cut takes it. Durations encode as integer nanoseconds (_ns), like every
// duration in the Report schema.
type LatencyStats struct {
	Count int           `json:"count"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P90   time.Duration `json:"p90_ns"`
	P99   time.Duration `json:"p99_ns"`
	Max   time.Duration `json:"max_ns"`
}

// NewLatencyStats summarizes a sample; nil for an empty one (the
// omitempty contract of ChainReport.TxLatency).
func NewLatencyStats(samples []time.Duration) *LatencyStats {
	if len(samples) == 0 {
		return nil
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	return &LatencyStats{
		Count: len(sorted),
		Mean:  sum / time.Duration(len(sorted)),
		P50:   Percentile(sorted, 0.50),
		P90:   Percentile(sorted, 0.90),
		P99:   Percentile(sorted, 0.99),
		Max:   sorted[len(sorted)-1],
	}
}

// Percentile returns the nearest-rank q-quantile (0 < q <= 1) of an
// ascending-sorted sample: the smallest element with at least q*N of the
// sample at or below it. Zero for an empty sample.
func Percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// HistogramBucket is one bin of a latency histogram.
type HistogramBucket struct {
	// UpTo is the bucket's inclusive upper latency bound.
	UpTo  time.Duration `json:"up_to_ns"`
	Count int           `json:"count"`
}

// Histogram bins a latency sample into n log-spaced buckets between its
// min and max — log-spaced because commit latencies under mixed load span
// orders of magnitude, which linear bins flatten into one bar. A
// degenerate sample (all values equal, or n < 2) collapses to a single
// bucket. Bucket counts always sum to len(samples).
func Histogram(samples []time.Duration, n int) []HistogramBucket {
	if len(samples) == 0 {
		return nil
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	lo, hi := sorted[0], sorted[len(sorted)-1]
	if lo <= 0 {
		lo = 1 // log spacing needs a positive floor
	}
	if n < 2 || hi <= lo {
		return []HistogramBucket{{UpTo: hi, Count: len(sorted)}}
	}
	ratio := math.Pow(float64(hi)/float64(lo), 1/float64(n))
	out := make([]HistogramBucket, n)
	bound := float64(lo)
	for i := range out {
		bound *= ratio
		out[i].UpTo = time.Duration(bound)
	}
	out[n-1].UpTo = hi // kill the rounding drift on the last bound
	i := 0
	for _, d := range sorted {
		for i < n-1 && d > out[i].UpTo {
			i++
		}
		out[i].Count++
	}
	return out
}
