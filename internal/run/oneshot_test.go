package run

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/protocol"
	"repro/internal/scenario"
)

func quickSpec(p protocol.Kind, coin protocol.CoinKind, batched bool, seed int64) Spec {
	spec := Defaults(p, coin)
	spec.Batched = batched
	spec.Workload = OneShot(1)
	spec.Workload.BatchSize = 2
	spec.Seed = seed
	spec.Net.LossProb = 0
	return spec
}

func TestHoneyBadgerSCSingleEpoch(t *testing.T) {
	res, err := Run(quickSpec(protocol.HoneyBadger, protocol.CoinSig, true, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.OneShot.DeliveredTxs < 2*3 { // at least 2f+1 proposals accepted
		t.Errorf("delivered %d txs, want >= 6", res.OneShot.DeliveredTxs)
	}
	if res.OneShot.MeanLatency <= 0 {
		t.Error("zero latency")
	}
	t.Logf("HB-SC: latency=%v txs=%d accesses=%d", res.OneShot.MeanLatency, res.OneShot.DeliveredTxs, res.Accesses)
}

func TestDumboSC(t *testing.T) {
	res, err := Run(quickSpec(protocol.DumboKind, protocol.CoinSig, true, 4))
	if err != nil {
		t.Fatal(err)
	}
	// Dumbo accepts exactly the 2f+1 proposals of the winning vector.
	if res.OneShot.DeliveredTxs != 3*2 {
		t.Errorf("delivered %d txs, want 6 (2f+1 proposals x 2 txs)", res.OneShot.DeliveredTxs)
	}
	t.Logf("Dumbo-SC: latency=%v", res.OneShot.MeanLatency)
}

func TestBaselineSlowerThanBatched(t *testing.T) {
	batched, err := Run(quickSpec(protocol.HoneyBadger, protocol.CoinSig, true, 6))
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := Run(quickSpec(protocol.HoneyBadger, protocol.CoinSig, false, 6))
	if err != nil {
		t.Fatal(err)
	}
	if batched.OneShot.MeanLatency >= baseline.OneShot.MeanLatency {
		t.Errorf("batched %v not faster than baseline %v", batched.OneShot.MeanLatency, baseline.OneShot.MeanLatency)
	}
	if batched.Accesses >= baseline.Accesses {
		t.Errorf("batched accesses %d not fewer than baseline %d", batched.Accesses, baseline.Accesses)
	}
	t.Logf("latency: batched=%v baseline=%v; accesses: %d vs %d",
		batched.OneShot.MeanLatency, baseline.OneShot.MeanLatency, batched.Accesses, baseline.Accesses)
}

func TestMultiEpochProgress(t *testing.T) {
	spec := quickSpec(protocol.HoneyBadger, protocol.CoinSig, true, 7)
	spec.Workload.Epochs = 3
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OneShot.EpochLatencies) != 3 {
		t.Fatalf("got %d epochs", len(res.OneShot.EpochLatencies))
	}
	if res.OneShot.TPM <= 0 {
		t.Error("zero throughput")
	}
}

func TestWithPacketLoss(t *testing.T) {
	spec := quickSpec(protocol.HoneyBadger, protocol.CoinSig, true, 8)
	spec.Net.LossProb = 0.08
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.OneShot.DeliveredTxs == 0 {
		t.Error("no delivery under loss")
	}
}

func TestWithCrashFault(t *testing.T) {
	for _, p := range []struct {
		kind protocol.Kind
		coin protocol.CoinKind
	}{{protocol.HoneyBadger, protocol.CoinSig}, {protocol.DumboKind, protocol.CoinSig}} {
		p := p
		t.Run(string(p.kind), func(t *testing.T) {
			spec := quickSpec(p.kind, p.coin, true, 9)
			spec.Scenario = scenario.Crash(3)
			spec.Deadline = 120 * time.Minute
			res, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			if res.OneShot.DeliveredTxs == 0 {
				t.Error("no delivery with crashed node")
			}
		})
	}
}

func TestWithAdversarialDelays(t *testing.T) {
	spec := quickSpec(protocol.HoneyBadger, protocol.CoinSig, true, 10)
	spec.Scenario = scenario.Delay(0.3, 5*time.Second)
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.OneShot.DeliveredTxs == 0 {
		t.Error("no delivery under adversarial delay")
	}
}

// TestCrashRecoverAtEpochBoundary: in the one-shot driver a node crashed
// mid-run rejoins at the next epoch boundary and participates again.
func TestCrashRecoverAtEpochBoundary(t *testing.T) {
	spec := quickSpec(protocol.HoneyBadger, protocol.CoinSig, true, 14)
	spec.Workload.Epochs = 4
	spec.Deadline = 120 * time.Minute
	// Crash node 3 during epoch 0 and recover it a while later: it sits
	// out the rest of the epoch in progress and rejoins at the boundary.
	spec.Scenario = scenario.Plan{}.Then(
		scenario.CrashAt(30*time.Second, 3),
		scenario.RecoverAt(10*time.Minute, 3),
	)
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OneShot.EpochLatencies) != 4 {
		t.Fatalf("got %d epochs", len(res.OneShot.EpochLatencies))
	}
	if res.OneShot.DeliveredTxs == 0 {
		t.Error("no delivery across crash/recovery")
	}
}

// TestRunScenarioDeterministic: scripted faults must preserve determinism
// in the one-shot driver, and full Reports must match field-for-field.
func TestRunScenarioDeterministic(t *testing.T) {
	spec := quickSpec(protocol.HoneyBadger, protocol.CoinSig, true, 15)
	spec.Workload.Epochs = 2
	spec.Deadline = 4 * time.Hour
	spec.Scenario = scenario.Plan{}.Then(
		scenario.DelayFrom(0, 0.25, 8*time.Second, 0),
		scenario.JamAt(2*time.Minute, 30*time.Second),
	)
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed differs under scenario:\n%+v\nvs\n%+v", a, b)
	}
}

func TestDeterministicRuns(t *testing.T) {
	a, err := Run(quickSpec(protocol.HoneyBadger, protocol.CoinSig, true, 11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickSpec(protocol.HoneyBadger, protocol.CoinSig, true, 11))
	if err != nil {
		t.Fatal(err)
	}
	if a.OneShot.MeanLatency != b.OneShot.MeanLatency || a.Accesses != b.Accesses {
		t.Errorf("same seed differs: %v/%d vs %v/%d",
			a.OneShot.MeanLatency, a.Accesses, b.OneShot.MeanLatency, b.Accesses)
	}
}

func TestSeedsVaryOutcome(t *testing.T) {
	a, err := Run(quickSpec(protocol.HoneyBadger, protocol.CoinSig, true, 12))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickSpec(protocol.HoneyBadger, protocol.CoinSig, true, 13))
	if err != nil {
		t.Fatal(err)
	}
	if a.OneShot.MeanLatency == b.OneShot.MeanLatency {
		t.Log("two seeds produced identical latency (possible, not failing)")
	}
}

func TestInvalidSpecs(t *testing.T) {
	spec := quickSpec(protocol.HoneyBadger, protocol.CoinSig, true, 1)
	spec.N = 5
	if _, err := Run(spec); err == nil {
		t.Error("N != 3F+1 accepted")
	}
	spec = quickSpec(protocol.HoneyBadger, protocol.CoinSig, true, 1)
	spec.Topology = Clustered(5, 4)
	if _, err := Run(spec); err == nil {
		t.Error("clusters != 3f+1 accepted")
	}
	spec = quickSpec("raft", protocol.CoinSig, true, 1)
	if _, err := Run(spec); err == nil {
		t.Error("unknown protocol accepted")
	}
	spec = quickSpec(protocol.HoneyBadger, protocol.CoinSig, true, 1)
	spec.Workload.Kind = "stream"
	if _, err := Run(spec); err == nil {
		t.Error("unknown workload accepted")
	}
	spec = quickSpec(protocol.HoneyBadger, protocol.CoinSig, true, 1)
	spec.Topology.Kind = "mesh"
	if _, err := Run(spec); err == nil {
		t.Error("unknown topology accepted")
	}
}

func TestAllFiveProtocolsComplete(t *testing.T) {
	for i, v := range protocol.Variants() {
		v, i := v, i
		t.Run(v.Name, func(t *testing.T) {
			t.Parallel()
			res, err := Run(quickSpec(v.Kind, v.Coin, true, 20+int64(i)))
			if err != nil {
				t.Fatal(err)
			}
			if res.OneShot.DeliveredTxs == 0 {
				t.Error("no transactions delivered")
			}
		})
	}
}

func quickClusteredSpec(seed int64) Spec {
	spec := Defaults(protocol.HoneyBadger, protocol.CoinSig)
	spec.Topology = Clustered(4, 4)
	spec.Workload = OneShot(1)
	spec.Workload.BatchSize = 2
	spec.Net.LossProb = 0
	spec.Seed = seed
	return spec
}

func TestClusteredOneShot(t *testing.T) {
	spec := quickClusteredSpec(30)
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.OneShot.DeliveredTxs == 0 {
		t.Error("no transactions delivered in the clustered deployment")
	}
	if res.Tiers == nil || res.Tiers.GlobalAccesses == 0 || res.Tiers.LocalAccesses == 0 {
		t.Error("expected traffic on both tiers")
	}
	// Regression for the stats-aggregation fix: the global tier's signed
	// packets must be measured and folded into the flat counters.
	if res.Tiers.GlobalLogicalSent == 0 {
		t.Error("global-tier transport counters not folded into the result")
	}
	if res.LogicalSent <= res.Tiers.GlobalLogicalSent {
		t.Errorf("LogicalSent %d does not include local tiers on top of global %d",
			res.LogicalSent, res.Tiers.GlobalLogicalSent)
	}
	t.Logf("clustered: latency=%v local=%d global=%d globalSent=%d", res.OneShot.MeanLatency,
		res.Tiers.LocalAccesses, res.Tiers.GlobalAccesses, res.Tiers.GlobalLogicalSent)
}

// TestClusteredOneShotCrashRecovery: a follower crashed mid-epoch is
// excused from the epoch barrier, sits out the rest of the epoch after
// recovering mid-epoch (its fresh transport has no RESULT handler yet),
// and rejoins at the next boundary — here even rotating into the leader
// seat.
func TestClusteredOneShotCrashRecovery(t *testing.T) {
	spec := quickClusteredSpec(32)
	spec.Workload.Epochs = 2
	spec.Scenario = scenario.Plan{}.Then(
		scenario.CrashAt(10*time.Second, 1), // cluster 0, follower in epoch 0
		scenario.RecoverAt(2*time.Minute, 1),
	)
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OneShot.EpochLatencies) != 2 {
		t.Fatalf("got %d epochs", len(res.OneShot.EpochLatencies))
	}
	if res.OneShot.DeliveredTxs == 0 {
		t.Error("no delivery across the crash/recovery")
	}
}

// TestClusteredOneShotScenarioDelay: scripted network effects apply
// across the tiers and keep the run deterministic.
func TestClusteredOneShotScenarioDelay(t *testing.T) {
	spec := quickClusteredSpec(31)
	spec.Scenario = scenario.Delay(0.2, 5*time.Second)
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.OneShot.MeanLatency != b.OneShot.MeanLatency || a.Accesses != b.Accesses {
		t.Errorf("clustered scenario run not deterministic: %v/%d vs %v/%d",
			a.OneShot.MeanLatency, a.Accesses, b.OneShot.MeanLatency, b.Accesses)
	}
}

// TestDefaultsMatchLegacyShape pins the one consolidated defaults builder
// to the paper's calibration so the old per-driver builders cannot
// silently drift back apart inside call sites.
func TestDefaultsMatchLegacyShape(t *testing.T) {
	spec := Defaults(protocol.HoneyBadger, protocol.CoinSig)
	if spec.N != 4 || spec.F != 1 || !spec.Batched || !spec.Encrypt || spec.Seed != 1 {
		t.Errorf("single-hop defaults drifted: %+v", spec)
	}
	if spec.Workload.Epochs != 3 || spec.Workload.BatchSize != 4 || spec.Workload.TxSize != 64 {
		t.Errorf("one-shot workload defaults drifted: %+v", spec.Workload)
	}
	if d := Defaults(protocol.DumboKind, protocol.CoinSig); d.Encrypt {
		t.Error("Dumbo defaults must not enable threshold encryption")
	}
	c := Chain(20)
	if c.Window != 2 || c.TxSize != 64 || c.TxInterval != 4*time.Second {
		t.Errorf("chain workload defaults drifted: %+v", c)
	}
	n := Spec{Protocol: protocol.HoneyBadger, N: 4, F: 1, Workload: Chain(0)}.normalize()
	if n.Deadline != 8*time.Hour || n.Workload.Epochs != 1 || n.Workload.Window != 2 {
		t.Errorf("chain normalization drifted: %+v", n)
	}
}
