package run

import (
	"fmt"
	"time"

	"repro/internal/byz"
	"repro/internal/crypto"
	"repro/internal/node"
	"repro/internal/protocol"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/traffic"
	"repro/internal/wireless"
)

// SingleHop × Chain: a sustained multi-epoch SMR simulation — N Chain
// engines on one lossy wireless channel, fed continuous client traffic,
// running until every correct node has committed the target number of
// epochs.
//
// The Scenario supports the full vocabulary including mid-run recovery: a
// recovered node restarts its chain engine at the commit frontier (its
// log and mempool digests are stable storage) and catches up through
// core.Mux.OnUnknownEpoch and peers' NACK retransmissions. Mind GCLag:
// peers serve repairs only for epochs the GC hasn't closed, so recovery
// gaps longer than GCLag epochs leave the node unable to catch up (a
// deadline error). byz events arm active-Byzantine behaviors (up to F
// nodes); the completion barrier and log checks then cover honest nodes
// only.

// chainLifecycle adapts the SMR deployment to the scenario engine. Unlike
// the one-shot drivers, recovery here is mid-run: the chain engine resumes
// at its commit frontier and catches up on the live pipeline.
type chainLifecycle struct {
	nodes  []*node.Node
	chains []*protocol.Chain
}

// NodeCount implements scenario.Sizer so churn events can draw victims.
func (l chainLifecycle) NodeCount() int { return len(l.nodes) }

func (l chainLifecycle) CrashNode(i int) {
	if i < 0 || i >= len(l.nodes) || l.nodes[i].Down() {
		return
	}
	l.chains[i].Crash()
	l.nodes[i].Crash()
}

func (l chainLifecycle) RecoverNode(i int) {
	if i < 0 || i >= len(l.nodes) || !l.nodes[i].Down() {
		return
	}
	l.nodes[i].Recover()
	l.chains[i].Recover()
}

// SetByzantine implements scenario.ByzLifecycle. The behavior lands on
// the node's mux, so every epoch of the pipeline — open and future —
// misbehaves from here on.
func (l chainLifecycle) SetByzantine(i int, behavior string) {
	if i < 0 || i >= len(l.nodes) {
		return
	}
	b, err := byz.New(behavior)
	if err != nil {
		return
	}
	l.nodes[i].SetBehavior(b)
}

// chainConfig builds the per-node engine config from the Spec's workload.
func chainConfig(spec Spec) (protocol.ChainConfig, error) {
	ccfg := protocol.DefaultChainConfig(spec.Protocol, spec.Coin)
	ccfg.Batched = spec.Batched
	ccfg.Encrypt = spec.Encrypt
	ccfg.Window = spec.Workload.Window
	ccfg.GCLag = spec.Workload.GCLag
	ccfg.MaxEpochs = spec.Workload.Epochs
	ccfg.Mempool = spec.Workload.Mempool
	if max := ccfg.Mempool.WithDefaults().MaxBatchBytes; spec.Workload.TxSize > max {
		return ccfg, fmt.Errorf("run: TxSize %d exceeds proposal cap MaxBatchBytes %d", spec.Workload.TxSize, max)
	}
	return ccfg, nil
}

// runChain executes the SingleHop × Chain cell. It fails if any correct
// pair of nodes commits diverging logs, if a log has a gap, or if the
// deadline passes before every correct node commits the target.
func runChain(spec Spec) (*Report, error) {
	byzN := spec.Scenario.ByzNodes()
	if err := byzPerGroup(byzN, 1, spec.N, spec.F); err != nil {
		return nil, err
	}
	perma := spec.Scenario.DownForever()
	if len(perma) >= spec.N {
		return nil, fmt.Errorf("run: all %d nodes crashed; nothing to run", spec.N)
	}
	sched := sim.New(spec.Seed)
	ch := wireless.NewChannel(sched, spec.Net)

	suites, err := crypto.DealCached(spec.N, spec.F, spec.Crypto, spec.Seed^0x5eed)
	if err != nil {
		return nil, err
	}

	ccfg, err := chainConfig(spec)
	if err != nil {
		return nil, err
	}
	ncfg := node.Config{Transport: spec.Transport, Batched: spec.Batched, Seed: spec.Seed}
	nodes := make([]*node.Node, spec.N)
	chains := make([]*protocol.Chain, spec.N)
	maxOpen := 0
	for i := 0; i < spec.N; i++ {
		nodes[i] = node.NewMux(sched, ch, wireless.NodeID(i), suites[i], ncfg)
		c := protocol.NewChain(sched, nodes[i].CPU, nodes[i].Mux(), suites[i], spec.N, spec.F, i,
			nodes[i].TransportConfig().Session, nodes[i].Rand, ccfg)
		c.OnCommit = func(int) {
			if o := c.OpenEpochs(); o > maxOpen {
				maxOpen = o
			}
		}
		chains[i] = c
	}
	eng := scenario.Start(sched, spec.Scenario, spec.Seed, chainLifecycle{nodes: nodes, chains: chains})
	ch.SetDeliveryHook(eng.Hook())

	// Client workload: sustained offered load broadcast to every live
	// node's mempool — injection only ceases with the run itself.
	// Whatever the chain cannot absorb stays behind as mempool backlog
	// (SubmittedTxs - CommittedTxs) or, under a MaxPendingBytes cap, as
	// counted admission rejections — not silent loss. A node that is down
	// misses the submissions of its outage (clients cannot reach it),
	// which commit-time dedup makes harmless. The legacy workload is one
	// transaction every TxInterval; Workload.Arrival swaps in the
	// open-loop generator (Poisson or bursty on-off client population).
	target := spec.Workload.Epochs
	chainsDone := func() bool {
		for i, c := range chains {
			if perma[i] || byzN[i] {
				continue // dead or Byzantine; the barrier covers honest nodes
			}
			if c.CommittedEpochs() < target {
				return false
			}
		}
		return true
	}
	submitted := 0
	submitTx := func(seq int) bool {
		if chainsDone() {
			return false
		}
		tx := protocol.MakeClientTx(seq, spec.Workload.TxSize)
		for i, c := range chains {
			if !nodes[i].Down() {
				c.Submit(tx)
			}
		}
		return true
	}
	var gen *traffic.Gen
	if spec.Workload.Arrival.Enabled() {
		gen = traffic.New(sched, spec.Workload.Arrival, spec.Seed, submitTx)
		gen.Start()
	} else {
		var inject func()
		inject = func() {
			if !submitTx(submitted) {
				return
			}
			submitted++
			sched.PostAfter(spec.Workload.TxInterval, inject)
		}
		sched.PostAfter(100*time.Millisecond, inject)
	}
	for _, c := range chains {
		c.Start()
	}

	if err := node.Drive(sched, spec.Deadline, chainsDone); err != nil {
		return nil, fmt.Errorf("run: chain run (%s %s batched=%v depth=%d) at frontier %v: %w",
			spec.Protocol, spec.Coin, spec.Batched, spec.Workload.Window, frontiers(chains), err)
	}
	if gen != nil {
		submitted = gen.Submitted()
	}
	rep := spec.report()
	cr := &ChainReport{
		EpochsCommitted: target,
		SubmittedTxs:    submitted,
		MaxOpenEpochs:   maxOpen,
		Logs:            make([][]protocol.LogEntry, spec.N),
	}
	rep.Chain = cr
	rep.Duration = sched.Now()
	// Safety is an honest-node property: a Byzantine node's own log is
	// not bound by what it told its peers, so it is excluded here.
	honest := make([]*protocol.Chain, len(chains))
	for i, c := range chains {
		if !byzN[i] {
			honest[i] = c
		}
	}
	if err := protocol.CheckLogs(honest); err != nil {
		return nil, err
	}
	first := true
	for i, c := range chains {
		if perma[i] || byzN[i] {
			continue
		}
		cr.Logs[i] = c.Log()
		if peak := c.Mempool().PeakPoolBytes(); peak > cr.PeakMempoolBytes {
			cr.PeakMempoolBytes = peak
		}
		if first {
			first = false
			cr.CommittedTxs = c.CommittedTxs()
			cr.CommittedBytes = c.CommittedBytes()
			cr.MeanCommitLatency = c.MeanCommitLatency()
			cr.DedupDropped = c.DedupDropped()
			cr.TxLatency = NewLatencyStats(c.TxLatencies())
			cr.TxLatencySample = c.TxLatencies()
			cr.AdmissionRejected = c.Mempool().RejectedFull()
		}
	}
	if rep.Duration > 0 {
		cr.ThroughputBps = float64(cr.CommittedBytes) / rep.Duration.Seconds()
	}
	st := ch.Stats()
	rep.Accesses = st.Accesses
	rep.Collisions = st.Collisions
	rep.Frames = st.Frames
	rep.BytesOnAir = st.BytesOnAir
	foldNodeStats(rep, nodes)
	return rep, nil
}

func frontiers(chains []*protocol.Chain) []int {
	out := make([]int, 0, len(chains))
	for _, c := range chains {
		if c != nil {
			out = append(out, c.CommittedEpochs())
		}
	}
	return out
}
