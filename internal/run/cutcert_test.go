package run

import (
	"bytes"
	"math/big"
	"testing"

	"repro/internal/crypto"
	"repro/internal/crypto/threshsig"
)

// certSuites deals a 4-member cluster's suites (threshold f+1 = 2 on
// TSLow) for certificate tests; distinct seeds give distinct cluster
// keys, as in the clustered driver.
func certSuites(t *testing.T, seed int64) []*crypto.Suite {
	t.Helper()
	suites, err := crypto.DealCached(4, 1, crypto.LightConfig(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return suites
}

// signCut produces a valid cut certificate: f+1 member shares over the
// domain-separated cut message, combined under the cluster key.
func signCut(t *testing.T, suites []*crypto.Suite, session uint32, cluster, epoch int, digest [32]byte) []byte {
	t.Helper()
	key := suites[0].TSLow
	msg := cutMsg(session, cluster, epoch, digest)
	var shares []*threshsig.SigShare
	for i := 0; i < key.K; i++ {
		sh, err := key.Sign(suites[i].TSLowShare, msg, zeroReader{})
		if err != nil {
			t.Fatal(err)
		}
		shares = append(shares, sh)
	}
	cert, err := combineCutCert(key, msg, shares)
	if err != nil {
		t.Fatal(err)
	}
	return cert
}

// zeroReader stands in for the node RNG (the Chaum–Pedersen proof nonce);
// determinism is irrelevant to these tests.
type zeroReader struct{}

func (zeroReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0x5a
	}
	return len(p), nil
}

func TestCutCertRoundTrip(t *testing.T) {
	suites := certSuites(t, 11)
	digest := [32]byte{1, 2, 3}
	cert := signCut(t, suites, 7, 2, 5, digest)
	if len(cert) != suites[0].TSLow.SignatureLen() {
		t.Fatalf("certificate is %d bytes, want the fixed width %d", len(cert), suites[0].TSLow.SignatureLen())
	}
	tx := MakeCutTx(2, 5, digest, cert)
	c, e, dig, gotCert, ok := parseCutTx(tx)
	if !ok || c != 2 || e != 5 || dig != digest || !bytes.Equal(gotCert, cert) {
		t.Fatalf("round trip broke: ok=%v c=%d e=%d", ok, c, e)
	}
	if !verifyCutCert(suites[0].TSLow, 7, 2, 5, digest, cert) {
		t.Fatal("valid certificate rejected")
	}
}

// TestCutCertBadShare: a tampered share fails share verification, and
// combining with it cannot yield a certificate that verifies (Combine
// re-checks the result against the public key).
func TestCutCertBadShare(t *testing.T) {
	suites := certSuites(t, 11)
	key := suites[0].TSLow
	digest := [32]byte{9}
	msg := cutMsg(1, 0, 0, digest)
	good, err := key.Sign(suites[0].TSLowShare, msg, zeroReader{})
	if err != nil {
		t.Fatal(err)
	}
	bad := &threshsig.SigShare{
		Index: good.Index,
		X:     new(big.Int).Add(good.X, big.NewInt(1)),
		C:     good.C,
		Z:     good.Z,
	}
	if key.VerifyShare(msg, bad) == nil {
		t.Fatal("tampered share passed share verification")
	}
	second, err := key.Sign(suites[1].TSLowShare, msg, zeroReader{})
	if err != nil {
		t.Fatal(err)
	}
	if cert, err := combineCutCert(key, msg, []*threshsig.SigShare{bad, second}); err == nil {
		if verifyCutCert(key, 1, 0, 0, digest, cert) {
			t.Fatal("certificate combined from a tampered share verified")
		}
	}
}

// TestCutCertWrongEpochReplay: a certificate is bound to its epoch (and
// digest); replaying it for any other (epoch, digest, session) fails.
func TestCutCertWrongEpochReplay(t *testing.T) {
	suites := certSuites(t, 11)
	key := suites[0].TSLow
	digest := [32]byte{4, 4}
	cert := signCut(t, suites, 7, 1, 3, digest)
	if !verifyCutCert(key, 7, 1, 3, digest, cert) {
		t.Fatal("valid certificate rejected")
	}
	if verifyCutCert(key, 7, 1, 4, digest, cert) {
		t.Fatal("certificate replayed for a different epoch verified")
	}
	other := [32]byte{4, 5}
	if verifyCutCert(key, 7, 1, 3, other, cert) {
		t.Fatal("certificate replayed for a different digest verified")
	}
	if verifyCutCert(key, 8, 1, 3, digest, cert) {
		t.Fatal("certificate replayed under a different session verified")
	}
}

// TestCutCertCrossClusterReuse: a certificate dealt by one cluster's key
// neither verifies under another cluster's key nor for another cluster id
// under its own key — a Byzantine seat cannot graft its own cluster's
// certificate onto a forged cut.
func TestCutCertCrossClusterReuse(t *testing.T) {
	a := certSuites(t, 11)
	b := certSuites(t, 12)
	digest := [32]byte{8, 8}
	cert := signCut(t, a, 7, 0, 2, digest)
	if verifyCutCert(b[0].TSLow, 7, 0, 2, digest, cert) {
		t.Fatal("cluster A's certificate verified under cluster B's key")
	}
	if verifyCutCert(a[0].TSLow, 7, 1, 2, digest, cert) {
		t.Fatal("certificate verified for a cluster id it was not signed over")
	}
}

// TestCutCertTruncatedWire: records at or below the bare header are not
// cuts (an unsigned cut is not a cut), and a truncated or padded
// certificate fails the fixed-width check before any RSA math runs.
func TestCutCertTruncatedWire(t *testing.T) {
	suites := certSuites(t, 11)
	key := suites[0].TSLow
	digest := [32]byte{3}
	cert := signCut(t, suites, 7, 1, 0, digest)
	full := MakeCutTx(1, 0, digest, cert)
	for cut := len(full) - 1; cut >= cutHeaderSize; cut-- {
		c, e, dig, short, ok := parseCutTx(full[:cut])
		if cut == cutHeaderSize {
			if ok {
				t.Fatal("bare 40-byte header parsed as a cut")
			}
			continue
		}
		if !ok {
			t.Fatalf("header+partial-cert record of %d bytes failed to parse", cut)
		}
		if verifyCutCert(key, 7, c, e, dig, short) {
			t.Fatalf("truncated certificate (%d bytes) verified", len(short))
		}
	}
	for _, tx := range [][]byte{nil, {}, full[:8], full[:39]} {
		if _, _, _, _, ok := parseCutTx(tx); ok {
			t.Fatalf("truncated record of %d bytes parsed as a cut", len(tx))
		}
	}
	padded := append(append([]byte(nil), full...), 0)
	if c, e, dig, cert2, ok := parseCutTx(padded); ok {
		if verifyCutCert(key, 7, c, e, dig, cert2) {
			t.Fatal("padded certificate verified")
		}
	}
}
