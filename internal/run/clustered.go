package run

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"repro/internal/component"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/node"
	"repro/internal/packet"
	"repro/internal/protocol"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/wireless"
)

// Clustered × OneShot: the paper's Sec. V-B two-tier deployment. M
// single-hop clusters each run local consensus on their own channel; one
// rotating leader per cluster joins a global tier on a separate channel
// (the paper uses separate channels to avoid interference), which orders
// the clusters' proposals; leaders then disseminate the global order back
// into their clusters.
//
// The Scenario applies across the deployment: node indices are flat
// (cluster*PerCluster + in-cluster index), crash/recovery and byz events
// act on the cluster nodes (a Byzantine node that becomes its cluster's
// leader carries its behavior onto the global tier with it), partitions
// act on the cluster channels, and the network-level effects (loss, jam,
// delay) also cover the global channel. Crashing a node that is the
// cluster leader for the current epoch stalls that cluster's global seat
// for the epoch — the one-shot deployment has no leader failover, so such
// a scenario ends in a deadline error, which is itself a measurable
// outcome. The same applies to a Byzantine leader that withholds its
// RESULT dissemination: followers have no way to distinguish it from a
// dead one, so script Byzantine nodes that stay followers (or accept the
// stall as the measurement) until a failover mechanism exists. (The
// Clustered × Chain cell rotates relay duty away from dead or scripted
// nodes — see mhchain.go.)

type oneShotCluster struct {
	idx   int
	ch    *wireless.Channel
	nodes []*osNode
	// Global-tier state: one persistent seat per cluster, occupied by the
	// epoch's leader.
	global     *node.Node
	leader     int // index within cluster this epoch
	globalInst protocol.Instance
	resultSent bool
	// Followers' completion flags.
	gotResult []bool
}

// runClusteredOneShot executes the Clustered × OneShot cell.
func runClusteredOneShot(spec Spec) (*Report, error) {
	M, P := spec.Topology.Clusters, spec.Topology.PerCluster
	byzN := spec.Scenario.ByzNodes()
	if err := byzPerGroup(byzN, M, P, spec.F); err != nil {
		return nil, err
	}
	sched := sim.New(spec.Seed)
	fg := (M - 1) / 3

	globalCh := wireless.NewChannel(sched, spec.Net)
	globalSuites, err := crypto.DealCached(M, fg, spec.Crypto, spec.Seed^0x61)
	if err != nil {
		return nil, err
	}

	ncfg := node.Config{Transport: spec.Transport, Batched: spec.Batched, Seed: spec.Seed}
	clusters := make([]*oneShotCluster, M)
	var flat []*osNode // scenario node-id space: cluster*PerCluster + i
	for c := range clusters {
		ch := wireless.NewChannel(sched, spec.Net)
		suites, err := crypto.DealCached(P, spec.F, spec.Crypto, spec.Seed+int64(c)*101)
		if err != nil {
			return nil, err
		}
		cl := &oneShotCluster{idx: c, ch: ch, gotResult: make([]bool, P)}
		for i := 0; i < P; i++ {
			n := &osNode{Node: node.New(sched, ch, wireless.NodeID(i), suites[i], ncfg), idx: i,
				byz: byzN[c*P+i]}
			cl.nodes = append(cl.nodes, n)
			flat = append(flat, n)
		}
		clusters[c] = cl
	}
	eng := scenario.Start(sched, spec.Scenario, spec.Seed, osLifecycle{flat})
	for c, cl := range clusters {
		base := c * P
		cl.ch.SetDeliveryHook(eng.HookMapped(func(id wireless.NodeID) int { return base + int(id) }))
	}
	globalCh.SetDeliveryHook(eng.HookNetOnly())

	rep := spec.report()
	os := &OneShotReport{}
	rep.OneShot = os
	for epoch := 0; epoch < spec.Workload.Epochs; epoch++ {
		start := sched.Now()
		leaderIdx := epoch % P
		for c, cl := range clusters {
			cl.leader = leaderIdx
			cl.resultSent = false
			for i := range cl.gotResult {
				cl.gotResult[i] = false
			}
			// The global instance must exist before the leader's local
			// decision callback can feed it the cluster digest.
			cl.attachGlobal(sched, globalCh, globalSuites[c], uint16(epoch), spec, M)
			cl.startLocalEpoch(sched, uint16(epoch), spec)
		}
		done := func() bool {
			for _, cl := range clusters {
				for i := range cl.gotResult {
					// Only nodes participating in this epoch are waited on:
					// inst is nil for nodes that were down at the epoch start
					// or crashed mid-epoch, and stays nil for a node that
					// recovered mid-epoch (it has no RESULT handler yet; it
					// sits the rest of the epoch out and rejoins at the next
					// boundary, like the single-hop driver).
					if !cl.gotResult[i] && cl.nodes[i].inst != nil && !cl.nodes[i].byz {
						return false
					}
				}
			}
			return true
		}
		if err := node.Drive(sched, start+spec.Deadline, done); err != nil {
			return nil, fmt.Errorf("run: clustered epoch %d (%s %s): %w", epoch, spec.Protocol, spec.Coin, err)
		}
		os.EpochLatencies = append(os.EpochLatencies, sched.Now()-start)
		for _, cl := range clusters {
			os.DeliveredTxs += countTxs(cl.nodes, spec.Workload.TxSize)
		}
	}

	finishOneShot(rep, sched)
	var localChs []*wireless.Channel
	var nodes, seats []*node.Node
	for _, cl := range clusters {
		localChs = append(localChs, cl.ch)
		for _, n := range cl.nodes {
			nodes = append(nodes, n.Node)
		}
		seats = append(seats, cl.global)
	}
	foldTwoTierStats(rep, globalCh, localChs, nodes, seats)
	return rep, nil
}

// foldTwoTierStats folds a clustered deployment's counters into the
// Report: every cluster channel plus the global channel, and every
// cluster node plus the global-tier seats (whose signed packets are also
// recorded per-tier). Shared by both clustered drivers so a counter
// added to one tier fold cannot silently go missing from the other.
func foldTwoTierStats(rep *Report, globalCh *wireless.Channel, localChs []*wireless.Channel, nodes, seats []*node.Node) {
	tiers := rep.Tiers
	if tiers == nil {
		tiers = &TierReport{}
		rep.Tiers = tiers
	}
	tiers.GlobalAccesses = globalCh.Stats().Accesses
	for _, ch := range localChs {
		st := ch.Stats()
		tiers.LocalAccesses += st.Accesses
		rep.Collisions += st.Collisions
		rep.Frames += st.Frames
		rep.BytesOnAir += st.BytesOnAir
	}
	gst := globalCh.Stats()
	rep.Collisions += gst.Collisions
	rep.Frames += gst.Frames
	rep.BytesOnAir += gst.BytesOnAir
	all := append(append([]*node.Node(nil), nodes...), seats...)
	for _, s := range seats {
		if s != nil {
			tiers.GlobalLogicalSent += s.Stats().LogicalSent
		}
	}
	foldNodeStats(rep, all)
	rep.Accesses = tiers.LocalAccesses + tiers.GlobalAccesses
}

// startLocalEpoch starts every cluster member's epoch. The leader's local
// decision submits the cluster digest to the global tier — a completion
// callback, not a polling loop.
func (cl *oneShotCluster) startLocalEpoch(sched *sim.Scheduler, epoch uint16, spec Spec) {
	leader := cl.nodes[cl.leader]
	for _, n := range cl.nodes {
		var onDone func()
		if n == leader {
			inst := cl.globalInst
			onDone = func() { inst.Start(clusterDigest(leader, epoch)) }
		}
		n.startEpoch(sched, epoch, spec, onDone)
	}
	// Followers additionally listen for the leader's global RESULT.
	for i, n := range cl.nodes {
		if n.crashed {
			continue
		}
		i := i
		n.Transport().Register(packet.KindGlobal, core.HandlerFunc(func(from uint16, sec packet.Section) {
			if sec.Phase == packet.PhaseFinish && int(from) == cl.leader {
				cl.gotResult[i] = true
			}
		}))
	}
}

// attachGlobal wires this epoch's cluster leader into the global tier and
// builds the epoch's global consensus instance.
func (cl *oneShotCluster) attachGlobal(sched *sim.Scheduler, globalCh *wireless.Channel, suite *crypto.Suite, epoch uint16, spec Spec, clusters int) {
	leader := cl.nodes[cl.leader]
	if cl.global == nil {
		// The leader's radio on the global channel is a second interface;
		// compute, however, shares the node's single core. For simplicity
		// each seat keeps one deployment node attached across epochs.
		gcfg := node.Config{
			Transport: spec.Transport,
			Batched:   spec.Batched,
			Seed:      spec.Seed ^ 0x61,
			CPU:       leader.CPU,
		}
		gcfg.Transport.Session = globalSession(spec.Transport.Session)
		cl.global = node.New(sched, globalCh, wireless.NodeID(cl.idx), suite, gcfg)
	}
	// The seat persists while leaders rotate: it is only as Byzantine as
	// the node currently occupying it.
	cl.global.SetBehavior(leader.Node.Behavior())
	gtr := cl.global.Transport()
	gtr.SetEpoch(epoch)
	env := &component.Env{
		N:       clusters,
		F:       (clusters - 1) / 3,
		Me:      cl.idx,
		Epoch:   epoch,
		Session: cl.global.TransportConfig().Session,
		Suite:   suite,
		T:       gtr,
		CPU:     cl.global.CPU,
		Sched:   sched,
		Rand:    leader.Rand,
	}
	onGlobalDecide := func() { cl.publishResult(epoch) }
	switch spec.Protocol {
	case protocol.DumboKind:
		cl.globalInst = protocol.NewDumbo(env, protocol.DumboOptions{Coin: spec.Coin, Batched: spec.Batched, OnDecide: onGlobalDecide})
	default:
		coin := spec.Coin
		if spec.Protocol == protocol.BEAT && coin == "" {
			coin = protocol.CoinFlip
		}
		cl.globalInst = protocol.NewACS(env, protocol.ACSOptions{Coin: coin, Batched: spec.Batched, Encrypt: false, OnDecide: onGlobalDecide})
	}
}

// publishResult broadcasts the global order into the cluster. The leader
// itself completes at this point.
func (cl *oneShotCluster) publishResult(epoch uint16) {
	if cl.resultSent {
		return
	}
	leader := cl.nodes[cl.leader]
	if leader.crashed {
		return // a dead leader cannot disseminate; the epoch stalls
	}
	cl.resultSent = true
	var digest []byte
	for _, out := range cl.globalInst.Outputs() {
		d := sha256.Sum256(out)
		digest = append(digest, d[:8]...)
	}
	leader.Transport().Update(core.Intent{
		IntentKey: core.IntentKey{Kind: packet.KindGlobal, Phase: packet.PhaseFinish, Slot: 0},
		Data:      digest,
	})
	cl.gotResult[cl.leader] = true
}

// clusterDigest summarizes a cluster's local output for the global tier.
func clusterDigest(leader *osNode, epoch uint16) []byte {
	h := sha256.New()
	var eb [2]byte
	binary.BigEndian.PutUint16(eb[:], epoch)
	h.Write(eb[:])
	for _, out := range leader.inst.Outputs() {
		h.Write(out)
	}
	return h.Sum(nil)
}
