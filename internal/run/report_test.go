package run

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/protocol"
)

// TestReportJSONSchemaStable pins the Report's JSON encoding — the
// stable schema EXPERIMENTS.md documents once and `wbft -json` emits —
// so a field rename or tag typo fails here instead of silently drifting
// under every consumer.
func TestReportJSONSchemaStable(t *testing.T) {
	spec := quickSpec(protocol.HoneyBadger, protocol.CoinSig, true, 1)
	spec.Topology = Clustered(4, 4)
	spec.Workload = Chain(2)
	spec.Workload.TxInterval = 2_000_000_000
	rep, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"protocol", "coin", "batched", "topology", "workload", "seed",
		"duration_ns", "accesses", "collisions", "frames", "bytes_on_air",
		"logical_sent", "sign_ops", "verify_ops", "rejected",
		"chain", "tiers",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("Report JSON lost schema key %q", key)
		}
	}
	if _, ok := m["oneshot"]; ok {
		t.Error("chain-workload Report must omit the oneshot section")
	}
	chain, _ := m["chain"].(map[string]any)
	for _, key := range []string{
		"epochs_committed", "committed_txs", "committed_bytes",
		"throughput_Bps", "commit_latency_ns", "dedup_dropped",
		"submitted_txs", "max_open_epochs",
	} {
		if _, ok := chain[key]; !ok {
			t.Errorf("Report chain section lost schema key %q", key)
		}
	}
	tiers, _ := m["tiers"].(map[string]any)
	for _, key := range []string{
		"local_accesses", "global_accesses", "global_logical_sent",
		"global_entries", "ordered_cuts",
	} {
		if _, ok := tiers[key]; !ok {
			t.Errorf("Report tiers section lost schema key %q", key)
		}
	}
}
