// Package run is the unified experiment API: one entry point,
// Run(Spec) (*Report, error), over two orthogonal axes — Topology
// (single-hop or clustered two-tier) × Workload (one-shot epochs or
// sustained chain SMR) — plus the protocol, coin, transport, crypto,
// channel, and fault-scenario knobs every deployment shares.
//
// The package replaces the three parallel drivers the repo grew — the
// protocol package's legacy one-shot, multihop, and chain entry points —
// and their three drifting Options/Result structs. Composing the axes also fills the
// matrix cell none of the legacy drivers could reach: Clustered × Chain,
// pipelined multi-epoch SMR over the paper's Sec. V-B two-tier wireless
// deployment, where each cluster runs a local replicated log and rotating
// leaders order cluster cuts on the global tier (see mhchain.go).
//
// Every run is a deterministic function of its Spec: the same Spec
// reproduces the same Report bit-for-bit, which the golden BENCH tests
// rely on.
package run

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/protocol"
	"repro/internal/scenario"
	"repro/internal/traffic"
	"repro/internal/wireless"
)

// TopologyKind names the deployment shape.
type TopologyKind string

// The topology axis.
const (
	TopoSingleHop TopologyKind = "single-hop"
	TopoClustered TopologyKind = "clustered"
)

// Topology is one axis of the experiment matrix: how the nodes are laid
// out on the air. The zero value is single-hop.
type Topology struct {
	Kind TopologyKind
	// Clusters is M, the number of single-hop clusters (and global-tier
	// seats); it must be 3f_g+1. Clustered only.
	Clusters int
	// PerCluster is the cluster size N_i (must be 3F+1). Zero adopts
	// Spec.N; a non-zero value overrides it.
	PerCluster int
}

// SingleHop is the paper's base deployment: every node on one channel.
func SingleHop() Topology { return Topology{Kind: TopoSingleHop} }

// Clustered is the paper's Sec. V-B deployment: clusters single-hop
// clusters of perCluster nodes, each on its own channel, with one
// global-tier seat per cluster on a separate channel.
func Clustered(clusters, perCluster int) Topology {
	return Topology{Kind: TopoClustered, Clusters: clusters, PerCluster: perCluster}
}

// WorkloadKind names the traffic pattern.
type WorkloadKind string

// The workload axis.
const (
	LoadOneShot WorkloadKind = "oneshot"
	LoadChain   WorkloadKind = "chain"
)

// Workload is the other axis: what the consensus group is asked to order.
// The zero value is the one-shot workload with all defaults.
type Workload struct {
	Kind WorkloadKind
	// Epochs is the run length: one-shot runs exactly this many epochs;
	// chain runs until every correct node commits this many (the target
	// commit frontier).
	Epochs int
	// BatchSize is the one-shot proposal size in transactions.
	BatchSize int
	// TxSize is the payload size in bytes (both workloads).
	TxSize int
	// TxInterval is the chain workload's mean gap between client
	// submissions. Each transaction is broadcast to every live node's
	// mempool (per cluster, under the clustered topology).
	TxInterval time.Duration
	// Arrival selects the open-loop client traffic generator
	// (internal/traffic: Poisson or bursty on-off arrivals from a
	// simulated client population) in place of the fixed TxInterval loop.
	// Chain workload on the single-hop topology only; the zero value
	// keeps the legacy fixed-interval submission.
	Arrival traffic.Pattern
	// Window is the chain pipeline depth (1 = sequential epochs).
	Window int
	// GCLag is how many epochs behind the commit frontier per-epoch state
	// is kept to serve NACK repairs (crash recovery needs it to span the
	// outage). Zero picks the engine default.
	GCLag int
	// Mempool tunes the chain proposal-cut policy; zero fields default.
	Mempool protocol.MempoolConfig
}

// OneShot is the paper's evaluation workload: epochs independent epochs
// of fixed deterministic proposals.
func OneShot(epochs int) Workload {
	return Workload{Kind: LoadOneShot, Epochs: epochs, BatchSize: 4, TxSize: 64}
}

// Chain is the sustained SMR workload: continuous client traffic ordered
// into a replicated log until every correct node commits targetEpochs
// epochs, with a depth-2 pipeline.
func Chain(targetEpochs int) Workload {
	return Workload{
		Kind:       LoadChain,
		Epochs:     targetEpochs,
		TxSize:     64,
		TxInterval: 4 * time.Second,
		Window:     2,
	}
}

// Spec is one experiment: the full cross of the Topology × Workload axes
// with the shared protocol/transport/crypto/channel/fault knobs. Build it
// with Defaults and override fields; zero-valued tuning fields are
// normalized inside Run.
type Spec struct {
	Protocol protocol.Kind
	Coin     protocol.CoinKind
	// Batched selects ConsensusBatcher vs the per-instance baseline.
	Batched bool
	// Encrypt runs the threshold-encrypted proposal path (the censorship
	// defense); Defaults enables it for every family but Dumbo.
	Encrypt bool
	// N and F size one consensus group: the whole network under
	// single-hop, each cluster under the clustered topology (N = 3F+1).
	N, F int

	Topology Topology
	Workload Workload

	Seed      int64
	Net       wireless.Config
	Crypto    crypto.Config
	Transport core.Config // Session/FlushDelay/RetxInterval; zero = defaults
	// Scenario scripts faults into the run: crashes, recoveries,
	// partitions, loss/jam bursts, the asynchronous delay adversary, and
	// active-Byzantine behavior activation. The zero value is the
	// fault-free run. Node ids are flat across the deployment
	// (cluster*PerCluster + in-cluster index under the clustered
	// topology).
	Scenario scenario.Plan
	// Deadline bounds the run in virtual time: per epoch for one-shot
	// workloads, whole-run for chain workloads. Zero picks the workload
	// default (60 min per epoch, 8 h per chain run).
	Deadline time.Duration
}

// Defaults returns the paper-calibrated baseline Spec: single-hop
// one-shot, N=4, LoRa-class channel, light crypto, ConsensusBatcher on.
// This is the one defaults builder; select other matrix cells by
// replacing Topology and Workload (run.Clustered, run.Chain) — the
// workload-specific tuning defaults are filled in by Run.
func Defaults(p protocol.Kind, coin protocol.CoinKind) Spec {
	return Spec{
		Protocol: p,
		Coin:     coin,
		Batched:  true,
		Encrypt:  protocol.DefaultEncrypt(p),
		N:        4,
		F:        1,
		Topology: SingleHop(),
		Workload: OneShot(3),
		Seed:     1,
		Net:      wireless.DefaultConfig(),
		Crypto:   crypto.LightConfig(),
	}
}

// normalize fills the Spec's zero-valued tuning fields with the legacy
// drivers' defaults, so the one builder serves every matrix cell without
// the old field-by-field copies drifting apart again.
func (s Spec) normalize() Spec {
	if s.Topology.Kind == "" {
		s.Topology.Kind = TopoSingleHop
	}
	if s.Topology.Kind == TopoClustered {
		if s.Topology.PerCluster == 0 {
			s.Topology.PerCluster = s.N
		}
		s.N = s.Topology.PerCluster
		s.F = (s.N - 1) / 3
	}
	if s.Workload.Kind == "" {
		s.Workload.Kind = LoadOneShot
	}
	switch s.Workload.Kind {
	case LoadOneShot:
		if s.Workload.Epochs <= 0 {
			s.Workload.Epochs = 3
		}
		if s.Workload.BatchSize <= 0 {
			s.Workload.BatchSize = 4
		}
		if s.Workload.TxSize <= 0 {
			s.Workload.TxSize = 64
		}
		if s.Workload.TxSize < 12 {
			// MakeProposal writes a 12-byte header per transaction.
			s.Workload.TxSize = 12
		}
		if s.Deadline <= 0 {
			s.Deadline = 60 * time.Minute
		}
	case LoadChain:
		if s.Workload.Epochs <= 0 {
			s.Workload.Epochs = 1
		}
		if s.Workload.Window <= 0 {
			s.Workload.Window = 1
		}
		if s.Workload.TxSize <= 0 {
			s.Workload.TxSize = 64
		}
		if s.Workload.TxSize < 12 {
			s.Workload.TxSize = 12
		}
		if s.Workload.TxInterval <= 0 {
			s.Workload.TxInterval = 4 * time.Second
		}
		s.Workload.Arrival = s.Workload.Arrival.WithDefaults()
		if s.Deadline <= 0 {
			s.Deadline = 8 * time.Hour
		}
	}
	return s
}

// validate rejects malformed axes before any virtual time elapses.
func (s Spec) validate() error {
	if _, ok := protocol.Lookup(s.Protocol); !ok {
		return fmt.Errorf("run: unknown protocol %q", s.Protocol)
	}
	if s.N != 3*s.F+1 {
		return fmt.Errorf("run: need N = 3F+1, got N=%d F=%d", s.N, s.F)
	}
	switch s.Topology.Kind {
	case TopoSingleHop:
	case TopoClustered:
		if s.Topology.Clusters < 4 || (s.Topology.Clusters-1)%3 != 0 {
			return fmt.Errorf("run: clusters must be 3f+1 >= 4, got %d", s.Topology.Clusters)
		}
		if s.Topology.PerCluster != 3*s.F+1 {
			return fmt.Errorf("run: cluster size %d != 3F+1", s.Topology.PerCluster)
		}
	default:
		return fmt.Errorf("run: unknown topology %q", s.Topology.Kind)
	}
	switch s.Workload.Kind {
	case LoadOneShot, LoadChain:
	default:
		return fmt.Errorf("run: unknown workload %q", s.Workload.Kind)
	}
	if err := s.Workload.Arrival.Validate(); err != nil {
		return err
	}
	if s.Workload.Arrival.Enabled() {
		if s.Workload.Kind != LoadChain {
			return fmt.Errorf("run: Arrival traffic requires the chain workload, got %q", s.Workload.Kind)
		}
		if s.Topology.Kind != TopoSingleHop {
			return fmt.Errorf("run: Arrival traffic is single-hop only (the clustered driver keeps the fixed-interval workload)")
		}
	}
	return nil
}

// Nodes returns the deployment's flat node count (the scenario id space).
func (s Spec) Nodes() int {
	if s.Topology.Kind == TopoClustered {
		per := s.Topology.PerCluster
		if per == 0 {
			per = s.N
		}
		return s.Topology.Clusters * per
	}
	return s.N
}
