package run_test

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/protocol"
	"repro/internal/run"
	"repro/internal/scenario"
	"repro/internal/traffic"
)

func trafficSpec(epochs int) run.Spec {
	spec := run.Defaults(protocol.HoneyBadger, protocol.CoinSig)
	spec.Workload = run.Chain(epochs)
	spec.Workload.GCLag = epochs
	spec.Workload.Arrival = traffic.Pattern{Kind: traffic.Poisson, Rate: 0.05, Clients: 100}
	return spec
}

func TestChainPoissonArrivals(t *testing.T) {
	res, err := run.Run(trafficSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	c := res.Chain
	if c.EpochsCommitted != 3 || c.CommittedTxs == 0 {
		t.Fatalf("chain = %+v", c)
	}
	if c.SubmittedTxs < c.CommittedTxs {
		t.Fatalf("offered %d < committed %d", c.SubmittedTxs, c.CommittedTxs)
	}
	if c.TxLatency == nil || c.TxLatency.Count != c.CommittedTxs {
		t.Fatalf("TxLatency = %+v, want one sample per committed tx (%d)", c.TxLatency, c.CommittedTxs)
	}
	if c.TxLatency.P50 <= 0 || c.TxLatency.P99 < c.TxLatency.P50 || c.TxLatency.Max < c.TxLatency.P99 {
		t.Fatalf("latency percentiles disordered: %+v", c.TxLatency)
	}
	if len(c.TxLatencySample) != c.TxLatency.Count {
		t.Fatalf("raw sample has %d entries, summary %d", len(c.TxLatencySample), c.TxLatency.Count)
	}
	if c.PeakMempoolBytes <= 0 {
		t.Fatal("peak mempool bytes not recorded")
	}
}

// TestChainLegacyWorkloadReportsTxLatency covers the satellite fix: the
// fixed-interval workload must also report true per-transaction
// submit->commit latency, which is NOT the epoch-granularity
// MeanCommitLatency.
func TestChainLegacyWorkloadReportsTxLatency(t *testing.T) {
	spec := run.Defaults(protocol.HoneyBadger, protocol.CoinSig)
	spec.Workload = run.Chain(3)
	spec.Workload.TxInterval = time.Second
	res, err := run.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Chain
	if c.TxLatency == nil || c.TxLatency.Count != c.CommittedTxs {
		t.Fatalf("legacy workload TxLatency = %+v (committed %d)", c.TxLatency, c.CommittedTxs)
	}
}

func TestChainArrivalDeterminism(t *testing.T) {
	a, err := run.Run(trafficSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := run.Run(trafficSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatal("identical traffic specs produced different reports")
	}
	other := trafficSpec(2)
	other.Seed = 7
	c, err := run.Run(other)
	if err != nil {
		t.Fatal(err)
	}
	if c.Chain.SubmittedTxs == a.Chain.SubmittedTxs && c.Duration == a.Duration {
		t.Fatal("different seeds reproduced the same arrival process")
	}
}

func TestChainBackpressure(t *testing.T) {
	spec := trafficSpec(3)
	spec.Workload.Arrival.Rate = 0.32 // far past the ~0.025 tx/s capacity
	spec.Workload.Mempool.MaxPendingBytes = 1024
	res, err := run.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Chain
	if c.AdmissionRejected == 0 {
		t.Fatal("overload with a 1 KiB cap produced no admission rejections")
	}
	if c.PeakMempoolBytes > 1024 {
		t.Fatalf("peak pool %dB exceeds the 1024B cap", c.PeakMempoolBytes)
	}
	// Admission rejections surface in the node-level Rejected counter too.
	if res.Rejected == 0 {
		t.Fatal("mempool rejections did not surface in Stats.Rejected")
	}
}

func TestChainOnOffArrivals(t *testing.T) {
	spec := trafficSpec(2)
	spec.Workload.Arrival = traffic.Pattern{
		Kind: traffic.OnOff, Rate: 0.05, Clients: 50,
		OnMean: time.Minute, OffMean: 4 * time.Minute,
	}
	res, err := run.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chain.EpochsCommitted != 2 || res.Chain.CommittedTxs == 0 {
		t.Fatalf("chain = %+v", res.Chain)
	}
}

func TestArrivalValidation(t *testing.T) {
	spec := trafficSpec(2)
	spec.Topology = run.Clustered(4, 4)
	if _, err := run.Run(spec); err == nil {
		t.Error("Arrival accepted on the clustered topology")
	}
	bad := trafficSpec(2)
	bad.Workload.Arrival.Kind = "fractal"
	if _, err := run.Run(bad); err == nil {
		t.Error("unknown arrival kind accepted")
	}
	neg := trafficSpec(2)
	neg.Workload.Arrival.Rate = -1
	if _, err := run.Run(neg); err == nil {
		t.Error("negative rate accepted")
	}
	oneshot := run.Defaults(protocol.HoneyBadger, protocol.CoinSig)
	oneshot.Workload.Arrival = traffic.Pattern{Kind: traffic.Poisson, Rate: 1}
	if _, err := run.Run(oneshot); err == nil {
		t.Error("Arrival accepted on the one-shot workload")
	}
}

// TestChainWirelessScenarios drives the chain workload through the three
// wireless-native scenario kinds. Mild parameters: the point is that the
// run completes with safety intact, not to find each kind's breaking
// point.
func TestChainWirelessScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("three full chain runs")
	}
	cases := []struct {
		name string
		plan scenario.Plan
	}{
		{"mobility", scenario.MustParse("mobility@0s:20,900")},
		{"dutycycle", scenario.MustParse("dutycycle@0s:0.8,60s")},
		{"churn", scenario.MustParse("churn@5m+40m:10m,2m")},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			spec := trafficSpec(2)
			spec.Workload.Arrival.Rate = 0.02
			spec.Scenario = tc.plan
			res, err := run.Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			if res.Chain.EpochsCommitted != 2 {
				t.Fatalf("committed %d epochs, want 2", res.Chain.EpochsCommitted)
			}
			forged := protocol.CountForged(res.Chain.Logs, spec.Workload.TxSize, res.Chain.SubmittedTxs)
			if forged != 0 {
				t.Fatalf("%d forged transactions under %s", forged, tc.name)
			}
		})
	}
}
