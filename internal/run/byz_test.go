package run

import (
	"testing"
	"time"

	"repro/internal/byz"
	"repro/internal/protocol"
	"repro/internal/scenario"
)

// TestHonestSafetyUnderByzantineBehaviors runs every active-Byzantine
// behavior against both protocol families with f Byzantine nodes. The
// driver itself enforces the honest-safety bar: Run fails if the honest
// nodes' outputs disagree (AgreementCheck), so a nil error plus progress
// is the assertion.
func TestHonestSafetyUnderByzantineBehaviors(t *testing.T) {
	for _, behavior := range byz.Names() {
		for _, p := range []struct {
			name string
			kind protocol.Kind
		}{
			{"ACS", protocol.HoneyBadger},
			{"Dumbo", protocol.DumboKind},
		} {
			behavior, p := behavior, p
			t.Run(p.name+"/"+behavior, func(t *testing.T) {
				t.Parallel()
				spec := Defaults(p.kind, protocol.CoinSig)
				spec.Workload.Epochs = 2
				spec.Seed = 11
				spec.Scenario = scenario.Byz(behavior, spec.N-1) // f = 1 of N = 4
				res, err := Run(spec)
				if err != nil {
					t.Fatalf("honest safety/liveness violated: %v", err)
				}
				if res.OneShot.DeliveredTxs == 0 {
					t.Fatal("no transactions delivered: the adversary stalled the honest nodes")
				}
				// Garbage produces cryptographically invalid shares and
				// undecodable payloads every epoch: the defenses must have
				// visibly rejected some, and Stats must surface the count.
				if behavior == byz.NameGarbage && res.Rejected == 0 {
					t.Error("garbage behavior ran but Stats.Rejected == 0")
				}
			})
		}
	}
}

// TestChainHonestSafetyUnderMidRunByzantine arms a behavior mid-run on
// the SMR pipeline: the honest chains must still commit identical
// gap-free logs of genuine client transactions, and the Byzantine node's
// mux must misbehave across the epochs opened after activation.
func TestChainHonestSafetyUnderMidRunByzantine(t *testing.T) {
	for _, behavior := range []string{byz.NameGarbage, byz.NameEquivocate} {
		behavior := behavior
		t.Run(behavior, func(t *testing.T) {
			t.Parallel()
			spec := Defaults(protocol.HoneyBadger, protocol.CoinSig)
			spec.Workload = Chain(5)
			spec.Workload.GCLag = spec.Workload.Epochs
			spec.Seed = 5
			spec.Scenario = scenario.Plan{}.Then(scenario.ByzAt(10*time.Minute, 3, behavior))
			res, err := Run(spec)
			if err != nil {
				t.Fatalf("honest safety/liveness violated: %v", err)
			}
			if res.Chain.Logs[3] != nil {
				t.Error("Byzantine node's log included in the honest result set")
			}
			for i, log := range res.Chain.Logs[:3] {
				if len(log) != spec.Workload.Epochs {
					t.Fatalf("honest node %d committed %d epochs, want %d", i, len(log), spec.Workload.Epochs)
				}
			}
			if forged := protocol.CountForged(res.Chain.Logs, spec.Workload.TxSize, res.Chain.SubmittedTxs); forged != 0 {
				t.Fatalf("honest nodes committed %d forged transactions", forged)
			}
		})
	}
}

// TestClusteredByzantineFollower checks the clustered one-shot cell: a
// Byzantine cluster member (never the epoch leader) must not break the
// deployment's agreement or completion.
func TestClusteredByzantineFollower(t *testing.T) {
	spec := Defaults(protocol.HoneyBadger, protocol.CoinSig)
	spec.Topology = Clustered(4, 4)
	spec.Workload = OneShot(1)
	spec.Seed = 3
	// Flat node 7 = cluster 1, member 3; epoch 0's leaders are member 0.
	spec.Scenario = scenario.Byz(byz.NameGarbage, 7)
	res, err := Run(spec)
	if err != nil {
		t.Fatalf("clustered run with Byzantine follower: %v", err)
	}
	if res.OneShot.DeliveredTxs == 0 {
		t.Fatal("no transactions delivered")
	}
	if res.Rejected == 0 {
		t.Error("garbage follower ran but no rejections surfaced in Stats")
	}
}

// TestByzValidation: unknown behaviors and more than F Byzantine nodes
// must be rejected before any virtual time elapses — across every matrix
// cell.
func TestByzValidation(t *testing.T) {
	spec := Defaults(protocol.HoneyBadger, protocol.CoinSig)
	spec.Scenario = scenario.Byz("omniscient", 3)
	if _, err := Run(spec); err == nil {
		t.Error("unknown behavior accepted")
	}
	spec.Scenario = scenario.Byz(byz.NameWithhold, 2, 3)
	if _, err := Run(spec); err == nil {
		t.Error("2 Byzantine nodes accepted with F=1")
	}
	spec.Scenario = scenario.Byz(byz.NameWithhold, 9)
	if _, err := Run(spec); err == nil {
		t.Error("byz event on nonexistent node 9 accepted (vacuous adversarial run)")
	}
	cspec := Defaults(protocol.HoneyBadger, protocol.CoinSig)
	cspec.Workload = Chain(4)
	cspec.Scenario = scenario.Byz("omniscient", 3)
	if _, err := Run(cspec); err == nil {
		t.Error("chain workload accepted an unknown behavior")
	}
	mspec := Defaults(protocol.HoneyBadger, protocol.CoinSig)
	mspec.Topology = Clustered(4, 4)
	mspec.Scenario = scenario.Byz(byz.NameGarbage, 4, 5) // both in cluster 1, F=1
	if _, err := Run(mspec); err == nil {
		t.Error("clustered run accepted 2 Byzantine nodes in one F=1 cluster")
	}
	mcspec := Defaults(protocol.HoneyBadger, protocol.CoinSig)
	mcspec.Topology = Clustered(4, 4)
	mcspec.Workload = Chain(3)
	mcspec.Scenario = scenario.Byz(byz.NameGarbage, 0, 1)
	if _, err := Run(mcspec); err == nil {
		t.Error("clustered chain accepted 2 Byzantine nodes in one F=1 cluster")
	}
	// One byz node in each of two clusters is within the per-cluster bound
	// but taints two uplink seats on a global tier that tolerates f_g=1.
	mcspec.Scenario = scenario.Byz(byz.NameGarbage, 0, 4)
	if _, err := Run(mcspec); err == nil {
		t.Error("clustered chain accepted byz taint on 2 of 4 uplink seats (f_g=1)")
	}
	// A cluster whose only honest members are scripted to stay dead can
	// never relay its cuts; the driver must reject rather than deadline.
	mcspec.Scenario = scenario.Crash(0, 1, 2, 3)
	if _, err := Run(mcspec); err == nil {
		t.Error("clustered chain accepted a fully perma-crashed cluster")
	}
	// Cut certificates need f+1 cluster signers: a cluster left with only
	// one honest live member can still relay but never certify, so the
	// driver must reject rather than deadline.
	mcspec.Scenario = scenario.Crash(1, 2, 3)
	if _, err := Run(mcspec); err == nil {
		t.Error("clustered chain accepted a cluster with fewer than f+1 honest live signers")
	}
}
