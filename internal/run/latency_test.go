package run

import (
	"testing"
	"time"
)

func TestLatencyStatsPercentiles(t *testing.T) {
	if NewLatencyStats(nil) != nil {
		t.Fatal("empty sample must summarize to nil")
	}
	// 1s..100s: nearest-rank p50 = 50s, p90 = 90s, p99 = 99s.
	var samples []time.Duration
	for i := 100; i >= 1; i-- { // unsorted on purpose
		samples = append(samples, time.Duration(i)*time.Second)
	}
	s := NewLatencyStats(samples)
	if s.Count != 100 || s.P50 != 50*time.Second || s.P90 != 90*time.Second ||
		s.P99 != 99*time.Second || s.Max != 100*time.Second {
		t.Fatalf("stats = %+v", s)
	}
	if s.Mean != 50500*time.Millisecond {
		t.Fatalf("mean = %v, want 50.5s", s.Mean)
	}
	one := NewLatencyStats([]time.Duration{7 * time.Second})
	if one.P50 != 7*time.Second || one.P99 != 7*time.Second || one.Count != 1 {
		t.Fatalf("singleton stats = %+v", one)
	}
}

func TestHistogramCountsSum(t *testing.T) {
	var samples []time.Duration
	for i := 1; i <= 1000; i++ {
		samples = append(samples, time.Duration(i)*time.Millisecond)
	}
	h := Histogram(samples, 8)
	if len(h) != 8 {
		t.Fatalf("got %d buckets, want 8", len(h))
	}
	total := 0
	for i, b := range h {
		total += b.Count
		if i > 0 && b.UpTo <= h[i-1].UpTo {
			t.Fatalf("bucket bounds not increasing: %v", h)
		}
	}
	if total != len(samples) {
		t.Fatalf("bucket counts sum to %d, want %d", total, len(samples))
	}
	if h[len(h)-1].UpTo != time.Second {
		t.Fatalf("last bound %v, want the sample max 1s", h[len(h)-1].UpTo)
	}
	// Degenerate sample: one bucket carrying everything.
	flat := Histogram([]time.Duration{time.Second, time.Second}, 4)
	if len(flat) != 1 || flat[0].Count != 2 {
		t.Fatalf("flat histogram = %v", flat)
	}
	if Histogram(nil, 4) != nil {
		t.Fatal("empty sample must yield a nil histogram")
	}
}
