package run

import (
	"encoding/json"
	"io"
	"time"

	"repro/internal/protocol"
)

// Report is the one result type every matrix cell produces. The flat
// fields are universal (virtual time and whole-deployment channel,
// transport, and crypto counters — both tiers included under the
// clustered topology); the optional sections carry the axis-specific
// measurements and are nil for cells they do not apply to.
//
// The JSON encoding is the stable schema the BENCH trajectory files and
// EXPERIMENTS.md document once: field names are fixed, durations are
// integer nanoseconds (suffix _ns), and the optional sections are
// omitted when absent.
type Report struct {
	// Axes echo the Spec so a serialized Report is self-describing.
	Protocol string `json:"protocol"`
	Coin     string `json:"coin"`
	Batched  bool   `json:"batched"`
	Topology string `json:"topology"`
	Workload string `json:"workload"`
	Seed     int64  `json:"seed"`

	// Duration is the run's total virtual time.
	Duration time.Duration `json:"duration_ns"`

	// Channel counters (the paper's contention metrics), summed across
	// every channel of the deployment.
	Accesses   uint64 `json:"accesses"`
	Collisions uint64 `json:"collisions"`
	Frames     uint64 `json:"frames"`
	BytesOnAir uint64 `json:"bytes_on_air"`

	// Transport and crypto counters, summed across all nodes (and
	// global-tier seats).
	LogicalSent uint64 `json:"logical_sent"`
	SignOps     uint64 `json:"sign_ops"`
	VerifyOps   uint64 `json:"verify_ops"`
	// Rejected counts component-level discards of invalid inbound state
	// across all nodes — the volume of Byzantine traffic the defenses
	// absorbed (zero in honest runs).
	Rejected uint64 `json:"rejected"`

	// OneShot is present for one-shot workloads.
	OneShot *OneShotReport `json:"oneshot,omitempty"`
	// Chain is present for chain workloads.
	Chain *ChainReport `json:"chain,omitempty"`
	// Tiers is present for the clustered topology.
	Tiers *TierReport `json:"tiers,omitempty"`
}

// OneShotReport carries the one-shot workload's measurements.
type OneShotReport struct {
	EpochLatencies []time.Duration `json:"epoch_latencies_ns"`
	MeanLatency    time.Duration   `json:"mean_latency_ns"`
	// TPM is transactions per minute of virtual time.
	TPM          float64 `json:"tpm"`
	DeliveredTxs int     `json:"delivered_txs"`
}

// ChainReport carries the sustained-SMR measurements. Under the clustered
// topology the commit counters aggregate one reference honest node per
// cluster (the logs are identical within a cluster; ChainRun-style safety
// checks run before the Report is built).
type ChainReport struct {
	EpochsCommitted int    `json:"epochs_committed"`
	CommittedTxs    int    `json:"committed_txs"`
	CommittedBytes  uint64 `json:"committed_bytes"`
	// ThroughputBps is committed payload bytes per virtual second — the
	// sustained-SMR metric (contrast with the one-shot TPM).
	ThroughputBps float64 `json:"throughput_Bps"`
	// MeanCommitLatency is the mean epoch start->commit time at the
	// reference node. Under pipelining, epochs overlap, so commit latency
	// exceeds the per-epoch interval Duration/EpochsCommitted.
	MeanCommitLatency time.Duration `json:"commit_latency_ns"`
	DedupDropped      int           `json:"dedup_dropped"`
	// SubmittedTxs counts client transactions offered over the whole run.
	// Offered load normally exceeds what the target can order; the
	// shortfall is mempool backlog at run end (or admission rejections
	// under backpressure), not transaction loss.
	SubmittedTxs  int `json:"submitted_txs"`
	MaxOpenEpochs int `json:"max_open_epochs"`

	// TxLatency summarizes true per-transaction submit->commit latency at
	// the reference node (percentiles over every transaction it admitted
	// and later committed). MeanCommitLatency above is epoch-granularity
	// and must not be read as client-visible latency: under bursty load a
	// transaction can wait in the pool across many epochs before a cut
	// takes it, and only this sample sees that wait. Nil when the
	// reference node committed none of its admissions (single-hop chain
	// runs always populate it).
	TxLatency *LatencyStats `json:"tx_latency,omitempty"`
	// TxLatencySample is the raw sample TxLatency summarizes, in commit
	// order. Omitted from JSON (like Logs): the BENCH files carry
	// aggregates; callers bin it with Histogram when they want the shape.
	TxLatencySample []time.Duration `json:"-"`
	// AdmissionRejected counts client submissions the reference node's
	// mempool refused under the MempoolConfig.MaxPendingBytes
	// backpressure cap (zero with the cap disabled, the default).
	AdmissionRejected int `json:"admission_rejected,omitempty"`
	// PeakMempoolBytes is the highest pooled payload byte count any
	// honest node reached — the bounded-mempool-growth evidence under
	// open-loop overload.
	PeakMempoolBytes int `json:"peak_mempool_bytes,omitempty"`

	// Logs holds each honest node's committed log, indexed by flat node
	// id (nil for nodes scripted to stay crashed or to turn Byzantine),
	// already checked for agreement and gap-freedom. Omitted from JSON:
	// the BENCH files carry aggregates, not payloads.
	Logs [][]protocol.LogEntry `json:"-"`
}

// TierReport splits the clustered topology's per-tier counters out of the
// flat aggregates (which include both tiers).
type TierReport struct {
	LocalAccesses  uint64 `json:"local_accesses"`
	GlobalAccesses uint64 `json:"global_accesses"`
	// GlobalLogicalSent counts the signed logical packets of the global
	// tier alone (also included in the flat LogicalSent).
	GlobalLogicalSent uint64 `json:"global_logical_sent"`

	// The Clustered × Chain cell additionally reports the cross-cluster
	// total order built on the global tier.
	// GlobalEntries is the reference seat's global log length (epochs of
	// the global chain).
	GlobalEntries int `json:"global_entries,omitempty"`
	// OrderedCuts counts certificate-verified cluster-cut records in the
	// global total order (rejected records are excluded; see CutCerts).
	OrderedCuts int `json:"ordered_cuts,omitempty"`
	// CutCerts carries the Clustered × Chain cell's cut-certificate
	// counters: threshold ops charged for signing/verifying/combining cut
	// certificates and the committed records rejected as forged or
	// unsigned.
	CutCerts *CutCertStats `json:"cut_certs,omitempty"`
	// GlobalLogs holds each untainted seat's global log, indexed by
	// cluster (nil for tainted seats). Omitted from JSON.
	GlobalLogs [][]protocol.LogEntry `json:"-"`
}

// WriteJSON writes the Report's stable JSON encoding (indented).
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// axes stamps the Spec's axes into a fresh Report.
func (s Spec) report() *Report {
	return &Report{
		Protocol: string(s.Protocol),
		Coin:     string(s.Coin),
		Batched:  s.Batched,
		Topology: string(s.Topology.Kind),
		Workload: string(s.Workload.Kind),
		Seed:     s.Seed,
	}
}
