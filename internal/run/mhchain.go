package run

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/byz"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/crypto/threshsig"
	"repro/internal/node"
	"repro/internal/packet"
	"repro/internal/protocol"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/wireless"
)

// Clustered × Chain: the matrix cell the legacy drivers could not reach —
// pipelined multi-epoch SMR over the paper's Sec. V-B two-tier wireless
// deployment.
//
// Each cluster is a full chain deployment on its own channel: P mux nodes
// running protocol.Chain, ordering that cluster's client traffic into a
// local replicated log. One uplink seat per cluster (a second radio+MCU
// on the global channel) runs a second protocol.Chain over the M seats,
// whose "client transactions" are cluster cuts — (cluster, epoch, digest)
// records of committed local log entries. Relay duty rotates: the leader
// for local epoch e is member e mod P; when it commits e it hands the cut
// to its seat, and the global chain pipelines the cuts of all clusters
// into the cross-cluster total order. If the designated leader is down,
// relay duty fails over to the next live member in rotation (the cut
// content is identical at every honest member, so any of them can relay
// it). Committed global entries flow back down: the relay for global
// epoch g broadcasts a frontier beacon — (ordered-cut count, rolling
// digest of the global order) — on its newest open local epoch transport,
// so followers continuously learn how far the cross-cluster order has
// advanced.
//
// The scenario engine is wired through both tiers. Crash/recovery acts on
// cluster nodes with full mid-run chain recovery; partitions act within
// cluster channels; loss/jam/delay also cover the global channel; a byz
// event arms its behavior on the member and on the cluster's seat — the
// cluster's uplink is only as trustworthy as its members — so the global
// tier faces a real Byzantine participant. A cluster any byz event ever
// targets is "tainted": relay duty skips its scripted nodes, and the
// global-tier barrier, log agreement, and cut-provenance checks cover
// untainted seats and clusters only (within a cluster, the honest members
// must still agree among themselves). Cuts are authenticated by their
// cluster: every cut carries a threshold certificate combined from f+1
// member shares over (session, cluster, epoch, digest) (cutcert.go), and
// every seat verifies the certificate before counting a committed cut
// into the cross-cluster order — a Byzantine seat (byz "forgecut") can
// place forged records in the raw global log, but they are rejected at
// every honest seat (core.Stats.Rejected), never enter the cut order or
// the frontier beacons, and the post-run provenance check proves no
// forgery carried a valid certificate.

// beaconKey is the frontier beacon's intent slot on the local channels.
var beaconKey = core.IntentKey{Kind: packet.KindGlobal, Phase: packet.PhaseFinish, Slot: 0}

// entryDigest binds a cut to the exact committed entry content.
func entryDigest(entry protocol.LogEntry) [32]byte {
	h := sha256.New()
	var eb [4]byte
	binary.BigEndian.PutUint32(eb[:], uint32(entry.Epoch))
	h.Write(eb[:])
	h.Write(protocol.EncodeBatch(entry.Txs))
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// mhcMember is one cluster node and its chain engine plus the driver-side
// dissemination state.
type mhcMember struct {
	node  *node.Node
	chain *protocol.Chain
	byz   bool // scripted Byzantine at any point (excluded from relay duty)
	// latest is the newest open local epoch transport (beacon carrier).
	latest *core.Transport
	// heardCuts/heardDigest is the highest global frontier beacon received.
	heardCuts   int
	heardDigest [32]byte
	// cutShares caches this member's signed cut shares by local epoch —
	// the member's "stable storage" (node.Crash keeps keys and logs too),
	// so a failover re-collection gets already-signed shares for free.
	cutShares map[int]*threshsig.SigShare
}

// cutCollect is one in-flight share collection: the cluster seat
// gathering f+1 member shares over one cut before it can combine the
// certificate and submit the cut to the global chain. Failover discards
// the collection (CrashNode) and the next pumpCuts restarts it under the
// new relay, re-requesting shares from the surviving members.
type cutCollect struct {
	epoch  int
	digest [32]byte
	msg    []byte // cutMsg the shares sign
	needed int    // f+1, the cluster key's threshold
	// ver amortizes the per-message fixed verification work (hash-to-group
	// of msg and its 4Delta power) across the whole collection. Virtual
	// time still charges TSVerifyShare per share — only host time is saved.
	ver *threshsig.ShareVerifier
	// requested marks members already asked, so topping up a collection
	// (members committing the epoch late) never double-requests.
	requested map[int]bool
	// spare holds delivered-but-unverified shares; at most needed verifies
	// are in flight at once, and spares replace shares that fail.
	spare     []*threshsig.SigShare
	shares    []*threshsig.SigShare // verified
	verifying int
	combining bool
}

// mhcCluster is one cluster: members on a private channel plus the
// global-tier seat and its ordering chain.
type mhcCluster struct {
	idx     int
	ch      *wireless.Channel
	members []*mhcMember
	seat    *node.Node
	gchain  *protocol.Chain
	tainted bool // some byz event targets this cluster
	// nextCut is the lowest local epoch whose cut is not yet submitted.
	nextCut int
	// collect is the in-flight share collection for epoch nextCut (nil
	// when no eligible relay has committed the epoch yet, or the certified
	// cut is already submitted).
	collect *cutCollect
	// cuts tracks the global order as this cluster's seat commits it:
	// total cut count and the rolling digest the relays beacon.
	cutCount  int
	cutDigest [32]byte
	// gotCuts[c2] is the set of local epochs for which a cut of cluster
	// c2 appeared in this seat's global log (the global-tier barrier).
	gotCuts []map[int]bool
}

// mhcDriver holds the whole deployment for the lifecycle and callbacks.
type mhcDriver struct {
	spec     Spec
	target   int
	clusters []*mhcCluster
	perma    map[int]bool
	// gsession is the global-tier transport session, bound into every
	// cut-certificate message (cross-deployment replay separation).
	gsession uint32
	// keys[c] is cluster c's low-threshold public key (threshold f+1):
	// what members sign cut shares under and every seat verifies
	// certificates against.
	keys []*threshsig.PublicKey
	// certs tallies the deployment's certificate work and rejections.
	certs CutCertStats
}

func (d *mhcDriver) member(flat int) (*mhcCluster, *mhcMember) {
	p := d.spec.Topology.PerCluster
	return d.clusters[flat/p], d.clusters[flat/p].members[flat%p]
}

// CrashNode implements scenario.Lifecycle across the cluster tier.
func (d *mhcDriver) CrashNode(i int) {
	if i < 0 || i >= d.spec.Nodes() {
		return
	}
	cl, m := d.member(i)
	if m.node.Down() {
		return
	}
	m.chain.Crash()
	m.node.Crash()
	m.latest = nil // its transports are gone with the mux epochs
	// Relay failover: cuts the crashed node was designated to submit are
	// taken over by the next live member in rotation. The in-flight share
	// collection (if any) dies with the crashed relay's duty — the
	// taking-over relay re-collects, and members' cached shares make the
	// re-collection cheap (no re-signing for shares already produced).
	cl.collect = nil
	d.pumpCuts(cl)
}

// RecoverNode implements scenario.Lifecycle: mid-run chain recovery.
func (d *mhcDriver) RecoverNode(i int) {
	if i < 0 || i >= d.spec.Nodes() {
		return
	}
	cl, m := d.member(i)
	if !m.node.Down() {
		return
	}
	m.node.Recover()
	m.chain.Recover()
	// A member that comes back with its chain already at the target has no
	// pipeline epoch left to carry or hear beacons on (Chain.Recover cannot
	// reopen epochs past MaxEpochs): it re-syncs the frontier directly from
	// its cluster's uplink seat — the same driver-level link relays hand
	// cuts up through in the other direction.
	if m.chain.CommittedEpochs() >= d.target && cl.cutCount > m.heardCuts {
		m.heardCuts = cl.cutCount
		m.heardDigest = cl.cutDigest
	}
	// Both driver-glue directions stalled by a whole-cluster outage must
	// restart here, because no further local commit may come to retrigger
	// them: pending cuts go up (relay duty re-evaluated against the
	// recovered membership), and the current global frontier is
	// re-beaconed down so recovered followers hear it.
	d.pumpCuts(cl)
	d.beacon(cl, len(cl.gchain.Log()))
}

// SetByzantine arms the behavior on the member and on its cluster's seat:
// the cluster's uplink is only as trustworthy as its members.
func (d *mhcDriver) SetByzantine(i int, behavior string) {
	if i < 0 || i >= d.spec.Nodes() {
		return
	}
	b, err := byz.New(behavior)
	if err != nil {
		return
	}
	cl, m := d.member(i)
	m.node.SetBehavior(b)
	cl.seat.SetBehavior(b)
}

// pumpCuts advances the cluster's cut pipeline. The designated relay for
// local epoch e is member e mod P; when it has committed e — or, if it is
// down or scripted Byzantine, when the next live honest member in
// rotation has — the seat opens a share collection for the cut. The cut
// is submitted to the global chain only once f+1 member shares have been
// verified and combined into the cut certificate (combineCut), so cuts
// still enter the global order strictly in local-epoch order, one
// collection in flight per cluster.
func (d *mhcDriver) pumpCuts(cl *mhcCluster) {
	if cl.nextCut >= d.target {
		return
	}
	if cl.collect == nil {
		e := cl.nextCut
		p := d.spec.Topology.PerCluster
		var src *protocol.Chain
		for k := 0; k < p; k++ {
			m := cl.members[(e+k)%p]
			if m.byz || m.node.Down() {
				continue // untrusted or dead relay; duty passes on
			}
			// First trustworthy live member in rotation is the relay; the
			// cut waits until it has committed the epoch (it will: honest
			// live chains reach the target, recovering mid-run if needed).
			// The log, not CommittedEpochs, carries the signal: OnCommit
			// fires after the entry is appended but before the frontier
			// counter advances.
			if len(m.chain.Log()) > e {
				src = m.chain
			}
			break
		}
		if src == nil {
			return
		}
		digest := entryDigest(src.Log()[e])
		msg := cutMsg(d.gsession, cl.idx, e, digest)
		cl.collect = &cutCollect{
			epoch:     e,
			digest:    digest,
			msg:       msg,
			needed:    d.keys[cl.idx].K,
			requested: make(map[int]bool),
			ver:       d.keys[cl.idx].Verifier(msg),
		}
	}
	// New collection or top-up: members that committed the epoch since the
	// last pass are asked for their shares now.
	d.collectShares(cl, cl.collect)
}

// collectShares requests a cut share from every eligible member not yet
// asked: honest, live, and holding the committed entry the cut digests.
// Cached shares (failover re-collection) are delivered immediately;
// otherwise the member's CPU is charged a TSSign and the share arrives
// when the signing completes.
func (d *mhcDriver) collectShares(cl *mhcCluster, col *cutCollect) {
	p := d.spec.Topology.PerCluster
	for i := 0; i < p; i++ {
		m := cl.members[i]
		if col.requested[i] || m.byz || m.node.Down() {
			continue
		}
		if len(m.chain.Log()) <= col.epoch || entryDigest(m.chain.Log()[col.epoch]) != col.digest {
			continue // not committed yet; a later pumpCuts tops the collection up
		}
		col.requested[i] = true
		if sh, ok := m.cutShares[col.epoch]; ok {
			d.receiveShare(cl, col, sh)
			continue
		}
		d.certs.Signs++
		d.certs.Busy += m.node.Suite.Cost.TSSign
		m.node.CPU.Exec(m.node.Suite.Cost.TSSign, func() {
			if m.node.Down() {
				return // crashed mid-signing; recovery re-requests
			}
			sh, err := m.node.Suite.TSLow.Sign(m.node.Suite.TSLowShare, col.msg, m.node.Rand)
			if err != nil {
				return
			}
			m.cutShares[col.epoch] = sh
			d.receiveShare(cl, col, sh)
		})
	}
	d.drainShares(cl, col)
}

// receiveShare hands one member share to the seat. Shares for a
// collection that failover has discarded are dropped (they stay in the
// member's cache for the re-collection).
func (d *mhcDriver) receiveShare(cl *mhcCluster, col *cutCollect, sh *threshsig.SigShare) {
	if cl.collect != col {
		return
	}
	col.spare = append(col.spare, sh)
	d.drainShares(cl, col)
}

// drainShares keeps exactly as many share verifications in flight as the
// certificate still needs — the seat pays TSVerifyShare per checked
// share, so surplus shares beyond f+1 are never verified (they replace
// failures instead).
func (d *mhcDriver) drainShares(cl *mhcCluster, col *cutCollect) {
	for len(col.spare) > 0 && !col.combining && len(col.shares)+col.verifying < col.needed {
		sh := col.spare[0]
		col.spare = col.spare[1:]
		col.verifying++
		d.certs.ShareVerifies++
		d.certs.Busy += cl.seat.Suite.Cost.TSVerifyShare
		cl.seat.CPU.Exec(cl.seat.Suite.Cost.TSVerifyShare, func() {
			if cl.collect != col {
				return
			}
			col.verifying--
			if col.ver.Verify(sh) != nil {
				// Only a corrupted share fails; honest members never
				// produce one. A spare (if any) takes the slot.
				d.drainShares(cl, col)
				return
			}
			col.shares = append(col.shares, sh)
			if len(col.shares) >= col.needed {
				d.combineCut(cl, col)
				return
			}
			d.drainShares(cl, col)
		})
	}
}

// combineCut charges the seat a TSCombine, assembles the f+1 verified
// shares into the cut certificate, and submits the certified cut to the
// global chain, advancing the cluster's cut pipeline.
func (d *mhcDriver) combineCut(cl *mhcCluster, col *cutCollect) {
	col.combining = true
	d.certs.Combines++
	d.certs.Busy += cl.seat.Suite.Cost.TSCombine
	cl.seat.CPU.Exec(cl.seat.Suite.Cost.TSCombine, func() {
		if cl.collect != col {
			return
		}
		cert, err := combineCutCert(d.keys[cl.idx], col.msg, col.shares)
		cl.collect = nil
		if err != nil {
			// Unreachable with verified shares; restart the collection.
			d.pumpCuts(cl)
			return
		}
		cl.nextCut = col.epoch + 1
		cl.gchain.Submit(MakeCutTx(cl.idx, col.epoch, col.digest, cert))
		d.pumpCuts(cl)
	})
}

// onGlobalCommit processes seat c's newly committed global entry: every
// transaction's cut certificate is verified (TSVerify on the seat's CPU)
// before the cut is counted into the cross-cluster order — forged,
// unsigned, or malformed records are rejected and never reach the cut
// tally or the frontier beacons. The beacon for this entry is queued on
// the same serialized CPU, so it always reflects the entry's accepted
// cuts.
func (d *mhcDriver) onGlobalCommit(cl *mhcCluster, g int) {
	entry := cl.gchain.Log()[g]
	for _, tx := range entry.Txs {
		tx := tx
		c2, e, dig, cert, ok := parseCutTx(tx)
		if !ok || c2 >= len(d.clusters) || e >= d.target {
			// Malformed or out-of-range: rejected with no crypto spent.
			d.rejectCut(cl, g)
			continue
		}
		d.certs.Verifies++
		d.certs.Busy += cl.seat.Suite.Cost.TSVerify
		cl.seat.CPU.Exec(cl.seat.Suite.Cost.TSVerify, func() {
			if verifyCutCert(d.keys[c2], d.gsession, c2, e, dig, cert) {
				d.acceptCut(cl, tx, c2, e)
			} else {
				d.rejectCut(cl, g)
			}
		})
	}
	cl.seat.CPU.Exec(0, func() { d.beacon(cl, g) })
}

// acceptCut folds a certificate-verified cut into the seat's view of the
// cross-cluster order: the rolling beacon digest, the cut count, and the
// global-tier barrier.
func (d *mhcDriver) acceptCut(cl *mhcCluster, tx []byte, c2, e int) {
	h := sha256.New()
	h.Write(cl.cutDigest[:])
	h.Write(tx)
	h.Sum(cl.cutDigest[:0])
	cl.cutCount++
	if cl.gotCuts[c2] == nil {
		cl.gotCuts[c2] = make(map[int]bool)
	}
	cl.gotCuts[c2][e] = true
}

// rejectCut discards a committed global transaction that failed cut
// authentication, counting it into the seat transport's Stats.Rejected
// like every other verification discard.
func (d *mhcDriver) rejectCut(cl *mhcCluster, g int) {
	d.certs.RejectedCuts++
	if tr := cl.seat.Mux().Lookup(uint16(g)); tr != nil {
		tr.NoteRejected()
	}
}

// beacon broadcasts the cluster seat's current global frontier — cut
// count plus rolling digest — through the rotating relay's newest open
// local epoch transport. Followers keep the highest count heard.
func (d *mhcDriver) beacon(cl *mhcCluster, g int) {
	p := d.spec.Topology.PerCluster
	var relay *mhcMember
	for k := 0; k < p; k++ {
		m := cl.members[(g+k)%p]
		if !m.byz && !m.node.Down() && m.latest != nil {
			relay = m
			break
		}
	}
	if relay == nil {
		return // cluster blackout; the next commit re-beacons
	}
	payload := make([]byte, 4+32)
	binary.BigEndian.PutUint32(payload, uint32(cl.cutCount))
	copy(payload[4:], cl.cutDigest[:])
	relay.latest.Update(core.Intent{IntentKey: beaconKey, Data: payload})
	// The relay learned the frontier from its own seat.
	if cl.cutCount > relay.heardCuts {
		relay.heardCuts = cl.cutCount
		relay.heardDigest = cl.cutDigest
	}
}

// hookMember wires one member's chain into the driver: cut relay on local
// commits, the pipeline-depth gauge, and beacon send/receive on every
// pipeline epoch transport.
func (d *mhcDriver) hookMember(cl *mhcCluster, m *mhcMember, maxOpen *int) {
	m.chain.OnCommit = func(int) {
		if o := m.chain.OpenEpochs(); o > *maxOpen {
			*maxOpen = o
		}
		d.pumpCuts(cl)
	}
	m.chain.OnEpochOpen = func(_ int, tr *core.Transport) {
		m.latest = tr
		tr.Register(packet.KindGlobal, core.HandlerFunc(func(_ uint16, sec packet.Section) {
			for _, ent := range sec.Entries {
				if len(ent.Data) != 4+32 {
					continue
				}
				count := int(binary.BigEndian.Uint32(ent.Data))
				if count > m.heardCuts {
					m.heardCuts = count
					copy(m.heardDigest[:], ent.Data[4:])
				}
			}
		}))
	}
}

// runClusteredChain executes the Clustered × Chain cell.
func runClusteredChain(spec Spec) (*Report, error) {
	M, P := spec.Topology.Clusters, spec.Topology.PerCluster
	fg := (M - 1) / 3
	byzN := spec.Scenario.ByzNodes()
	if err := byzPerGroup(byzN, M, P, spec.F); err != nil {
		return nil, err
	}
	perma := spec.Scenario.DownForever()
	// A byz event taints its whole cluster's uplink seat, so tainted
	// clusters are Byzantine participants of the M-seat global group:
	// more than f_g of them exceeds what the global tier tolerates.
	// Reject upfront, like every other invalid adversarial plan.
	taintedClusters := 0
	for c := 0; c < M; c++ {
		for i := 0; i < P; i++ {
			if byzN[c*P+i] {
				taintedClusters++
				break
			}
		}
	}
	if taintedClusters > fg {
		return nil, fmt.Errorf("run: byz events taint %d clusters' uplink seats, global tier tolerates f=%d", taintedClusters, fg)
	}
	// Every cluster needs f+1 honest members not scripted to stay dead:
	// relay duty and the reference log come from the honest live members,
	// and a cut certificate needs f+1 shares — fewer surviving honest
	// signers would stall the cluster's cuts (and the global barrier)
	// until the deadline. Reject upfront.
	for c := 0; c < M; c++ {
		live := 0
		for i := 0; i < P; i++ {
			if flat := c*P + i; !perma[flat] && !byzN[flat] {
				live++
			}
		}
		if live <= spec.F {
			return nil, fmt.Errorf("run: cluster %d has %d honest live members; cut certificates need f+1 = %d signers", c, live, spec.F+1)
		}
	}
	target := spec.Workload.Epochs

	sched := sim.New(spec.Seed)
	globalCh := wireless.NewChannel(sched, spec.Net)
	globalSuites, err := crypto.DealCached(M, fg, spec.Crypto, spec.Seed^0x61)
	if err != nil {
		return nil, err
	}
	// Per-cluster suites are dealt before the global chain is configured:
	// the cluster keys' signature length sets the certified-cut wire size
	// the global mempool's batch policy must know.
	clusterSuites := make([][]*crypto.Suite, M)
	for c := 0; c < M; c++ {
		if clusterSuites[c], err = crypto.DealCached(P, spec.F, spec.Crypto, spec.Seed+int64(c)*101); err != nil {
			return nil, err
		}
	}
	cutTxSize := cutHeaderSize + clusterSuites[0][0].TSLow.SignatureLen()

	ccfg, err := chainConfig(spec)
	if err != nil {
		return nil, err
	}
	// The global chain orders cut records: no payload encryption (digests
	// are public), no sharding (each seat proposes exactly its own
	// cluster's cuts), and a cut policy that proposes as soon as one cut
	// is pending — cut cadence, not batch fill, sets the global tempo.
	gccfg := protocol.DefaultChainConfig(spec.Protocol, spec.Coin)
	gccfg.Batched = spec.Batched
	gccfg.Encrypt = false
	gccfg.Window = spec.Workload.Window
	gccfg.GCLag = spec.Workload.GCLag
	gccfg.MaxEpochs = 0 // runs until every cluster's cuts are ordered
	gccfg.Mempool = protocol.MempoolConfig{TargetBatchBytes: cutTxSize, Shards: 1}

	d := &mhcDriver{spec: spec, target: target, perma: perma, keys: make([]*threshsig.PublicKey, M)}
	for c := 0; c < M; c++ {
		d.keys[c] = clusterSuites[c][0].TSLow
	}
	ncfg := node.Config{Transport: spec.Transport, Batched: spec.Batched, Seed: spec.Seed}
	gcfg := node.Config{Transport: spec.Transport, Batched: spec.Batched, Seed: spec.Seed ^ 0x61}
	gcfg.Transport.Session = globalSession(spec.Transport.Session)
	d.gsession = gcfg.Transport.Session

	maxOpen := 0
	for c := 0; c < M; c++ {
		ch := wireless.NewChannel(sched, spec.Net)
		suites := clusterSuites[c]
		cl := &mhcCluster{idx: c, ch: ch, gotCuts: make([]map[int]bool, M)}
		for i := 0; i < P; i++ {
			n := node.NewMux(sched, ch, wireless.NodeID(i), suites[i], ncfg)
			chain := protocol.NewChain(sched, n.CPU, n.Mux(), suites[i], P, spec.F, i,
				n.TransportConfig().Session, n.Rand, ccfg)
			m := &mhcMember{node: n, chain: chain, byz: byzN[c*P+i],
				cutShares: make(map[int]*threshsig.SigShare)}
			cl.tainted = cl.tainted || m.byz
			cl.members = append(cl.members, m)
		}
		// The uplink seat: a second radio+MCU per cluster on the global
		// channel, running the cross-cluster ordering chain.
		cl.seat = node.NewMux(sched, globalCh, wireless.NodeID(c), globalSuites[c], gcfg)
		cl.gchain = protocol.NewChain(sched, cl.seat.CPU, cl.seat.Mux(), globalSuites[c], M, fg, c,
			cl.seat.TransportConfig().Session, cl.seat.Rand, gccfg)
		d.clusters = append(d.clusters, cl)
	}
	for _, cl := range d.clusters {
		cl := cl
		for _, m := range cl.members {
			d.hookMember(cl, m, &maxOpen)
		}
		cl.gchain.OnCommit = func(g int) { d.onGlobalCommit(cl, g) }
	}

	eng := scenario.Start(sched, spec.Scenario, spec.Seed, d)
	for c, cl := range d.clusters {
		base := c * P
		cl.ch.SetDeliveryHook(eng.HookMapped(func(id wireless.NodeID) int { return base + int(id) }))
	}
	globalCh.SetDeliveryHook(eng.HookNetOnly())

	// Client workload: each cluster receives its own sustained stream —
	// one transaction per TxInterval, broadcast to the cluster's live
	// mempools. Sequence numbers are global so payloads are distinct
	// across clusters.
	honestMember := func(flat int) bool { return !byzN[flat] && !perma[flat] }
	localsDone := func() bool {
		for c, cl := range d.clusters {
			for i, m := range cl.members {
				if honestMember(c*P+i) && m.chain.CommittedEpochs() < target {
					return false
				}
			}
		}
		return true
	}
	untainted := 0
	for _, cl := range d.clusters {
		if !cl.tainted {
			untainted++
		}
	}
	globalDone := func() bool {
		for _, cl := range d.clusters {
			if cl.tainted {
				continue
			}
			for _, cl2 := range d.clusters {
				if cl2.tainted {
					continue
				}
				if len(cl.gotCuts[cl2.idx]) < target {
					return false
				}
			}
		}
		return true
	}
	heardDone := func() bool {
		for c, cl := range d.clusters {
			if cl.tainted {
				continue
			}
			for i, m := range cl.members {
				if honestMember(c*P+i) && m.heardCuts < untainted*target {
					return false
				}
			}
		}
		return true
	}
	done := func() bool { return localsDone() && globalDone() && heardDone() }

	submitted := 0
	var inject func()
	inject = func() {
		if localsDone() {
			return
		}
		for _, cl := range d.clusters {
			tx := protocol.MakeClientTx(submitted, spec.Workload.TxSize)
			submitted++
			for _, m := range cl.members {
				if !m.node.Down() {
					m.chain.Submit(tx)
				}
			}
		}
		sched.PostAfter(spec.Workload.TxInterval, inject)
	}
	sched.PostAfter(100*time.Millisecond, inject)
	for _, cl := range d.clusters {
		for _, m := range cl.members {
			m.chain.Start()
		}
		cl.gchain.Start()
	}

	if err := node.Drive(sched, spec.Deadline, done); err != nil {
		front := make([][]int, M)
		cuts := make([]int, M)
		heard := make([][]int, M)
		gstate := make([]string, M)
		for c, cl := range d.clusters {
			cuts[c] = cl.cutCount
			gstate[c] = fmt.Sprintf("c%d{gfront=%d open=%d pool=%d/%dB nextCut=%d}",
				c, cl.gchain.CommittedEpochs(), cl.gchain.OpenEpochs(),
				cl.gchain.Mempool().Len(), cl.gchain.Mempool().PendingBytes(), cl.nextCut)
			for _, m := range cl.members {
				front[c] = append(front[c], m.chain.CommittedEpochs())
				heard[c] = append(heard[c], m.heardCuts)
			}
		}
		return nil, fmt.Errorf("run: clustered chain (%s %s batched=%v depth=%d) at frontiers %v, seat cuts %v, heard %v, global %v: %w",
			spec.Protocol, spec.Coin, spec.Batched, spec.Workload.Window, front, cuts, heard, gstate, err)
	}

	rep, err := d.finishClusteredChain(spec, sched, globalCh, submitted, maxOpen, byzN)
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// finishClusteredChain runs the post-run safety checks — local agreement
// per cluster, global agreement across untainted seats, cut provenance,
// and follower frontier-digest consistency — then folds the two tiers'
// measurements into the Report.
func (d *mhcDriver) finishClusteredChain(spec Spec, sched *sim.Scheduler, globalCh *wireless.Channel, submitted, maxOpen int, byzN map[int]bool) (*Report, error) {
	M, P := spec.Topology.Clusters, spec.Topology.PerCluster

	// Local tier: the honest members of every cluster (tainted or not)
	// must have committed identical gap-free logs.
	refMember := make([]*mhcMember, M) // first honest member per cluster
	for c, cl := range d.clusters {
		honest := make([]*protocol.Chain, P)
		for i, m := range cl.members {
			flat := c*P + i
			if !byzN[flat] && !d.perma[flat] {
				honest[i] = m.chain
				if refMember[c] == nil {
					refMember[c] = m
				}
			}
		}
		if err := protocol.CheckLogs(honest); err != nil {
			return nil, fmt.Errorf("run: cluster %d: %w", c, err)
		}
		if refMember[c] == nil {
			return nil, fmt.Errorf("run: cluster %d has no honest live member", c)
		}
	}

	// Global tier: untainted seats must agree on the cross-cluster order.
	var refSeat *mhcCluster
	globalHonest := make([]*protocol.Chain, M)
	for c, cl := range d.clusters {
		if cl.tainted {
			continue
		}
		globalHonest[c] = cl.gchain
		if refSeat == nil || cl.cutCount > refSeat.cutCount {
			refSeat = cl
		}
	}
	if refSeat == nil {
		return nil, fmt.Errorf("run: every cluster is Byzantine-tainted; no trusted global order")
	}
	if err := protocol.CheckLogs(globalHonest); err != nil {
		return nil, fmt.Errorf("run: global tier: %w", err)
	}

	// Cut provenance: walk the longest untainted global order once,
	// applying the same accept predicate the seats applied in-run — parse,
	// range-check, verify the threshold certificate — and rebuilding the
	// rolling beacon digests from the accepted cuts. Every accepted cut
	// claiming an untainted cluster must match that cluster's true
	// committed entry (a mismatch here would mean a forgery carried a
	// valid f+1 certificate — a broken threshold guarantee), and the true
	// cut of every untainted (cluster, epoch) must appear.
	seen := make([]map[int]bool, M)
	for c := range seen {
		seen[c] = make(map[int]bool)
	}
	var rolling [32]byte
	digests := make([][32]byte, 1, refSeat.cutCount+1)
	for _, entry := range refSeat.gchain.Log() {
		for _, tx := range entry.Txs {
			c2, e, dig, cert, ok := parseCutTx(tx)
			if !ok || c2 >= M || e >= d.target || !verifyCutCert(d.keys[c2], d.gsession, c2, e, dig, cert) {
				continue // rejected at every seat; only a tainted seat submits these
			}
			h := sha256.New()
			h.Write(rolling[:])
			h.Write(tx)
			h.Sum(rolling[:0])
			digests = append(digests, rolling)
			if d.clusters[c2].tainted {
				continue
			}
			if want := entryDigest(refMember[c2].chain.Log()[e]); dig != want {
				return nil, fmt.Errorf("run: global order holds a forged cut with a valid certificate for cluster %d epoch %d", c2, e)
			}
			seen[c2][e] = true
		}
	}
	for c, cl := range d.clusters {
		if cl.tainted {
			continue
		}
		for e := 0; e < d.target; e++ {
			if !seen[c][e] {
				return nil, fmt.Errorf("run: cluster %d epoch %d missing from the global order", c, e)
			}
		}
	}

	// Follower dissemination: every honest member of an untainted cluster
	// must have heard a frontier beacon consistent with the global order.
	for c, cl := range d.clusters {
		if cl.tainted {
			continue
		}
		for i, m := range cl.members {
			flat := c*P + i
			if byzN[flat] || d.perma[flat] {
				continue
			}
			if m.heardCuts > refSeat.cutCount {
				return nil, fmt.Errorf("run: cluster %d member %d heard frontier %d beyond the global order (%d)",
					c, i, m.heardCuts, refSeat.cutCount)
			}
			if !bytes.Equal(m.heardDigest[:], digests[m.heardCuts][:]) {
				return nil, fmt.Errorf("run: cluster %d member %d heard a frontier digest diverging from the global order", c, i)
			}
		}
	}

	rep := spec.report()
	rep.Duration = sched.Now()
	cr := &ChainReport{
		EpochsCommitted: d.target,
		SubmittedTxs:    submitted,
		MaxOpenEpochs:   maxOpen,
		Logs:            make([][]protocol.LogEntry, M*P),
	}
	rep.Chain = cr
	var latSum time.Duration
	for c, cl := range d.clusters {
		ref := refMember[c]
		cr.CommittedTxs += ref.chain.CommittedTxs()
		cr.CommittedBytes += ref.chain.CommittedBytes()
		cr.DedupDropped += ref.chain.DedupDropped()
		latSum += ref.chain.MeanCommitLatency()
		for i, m := range cl.members {
			flat := c*P + i
			if !byzN[flat] && !d.perma[flat] {
				cr.Logs[flat] = m.chain.Log()
			}
		}
	}
	cr.MeanCommitLatency = latSum / time.Duration(M)
	if rep.Duration > 0 {
		cr.ThroughputBps = float64(cr.CommittedBytes) / rep.Duration.Seconds()
	}

	certs := d.certs
	rep.Tiers = &TierReport{
		GlobalEntries: len(refSeat.gchain.Log()),
		OrderedCuts:   refSeat.cutCount,
		CutCerts:      &certs,
		GlobalLogs:    make([][]protocol.LogEntry, M),
	}
	var localChs []*wireless.Channel
	var nodes, seats []*node.Node
	for _, cl := range d.clusters {
		localChs = append(localChs, cl.ch)
		for _, m := range cl.members {
			nodes = append(nodes, m.node)
		}
		seats = append(seats, cl.seat)
		if !cl.tainted {
			rep.Tiers.GlobalLogs[cl.idx] = cl.gchain.Log()
		}
	}
	foldTwoTierStats(rep, globalCh, localChs, nodes, seats)
	return rep, nil
}
