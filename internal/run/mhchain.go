package run

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/byz"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/node"
	"repro/internal/packet"
	"repro/internal/protocol"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/wireless"
)

// Clustered × Chain: the matrix cell the legacy drivers could not reach —
// pipelined multi-epoch SMR over the paper's Sec. V-B two-tier wireless
// deployment.
//
// Each cluster is a full chain deployment on its own channel: P mux nodes
// running protocol.Chain, ordering that cluster's client traffic into a
// local replicated log. One uplink seat per cluster (a second radio+MCU
// on the global channel) runs a second protocol.Chain over the M seats,
// whose "client transactions" are cluster cuts — (cluster, epoch, digest)
// records of committed local log entries. Relay duty rotates: the leader
// for local epoch e is member e mod P; when it commits e it hands the cut
// to its seat, and the global chain pipelines the cuts of all clusters
// into the cross-cluster total order. If the designated leader is down,
// relay duty fails over to the next live member in rotation (the cut
// content is identical at every honest member, so any of them can relay
// it). Committed global entries flow back down: the relay for global
// epoch g broadcasts a frontier beacon — (ordered-cut count, rolling
// digest of the global order) — on its newest open local epoch transport,
// so followers continuously learn how far the cross-cluster order has
// advanced.
//
// The scenario engine is wired through both tiers. Crash/recovery acts on
// cluster nodes with full mid-run chain recovery; partitions act within
// cluster channels; loss/jam/delay also cover the global channel; a byz
// event arms its behavior on the member and on the cluster's seat — the
// cluster's uplink is only as trustworthy as its members — so the global
// tier faces a real Byzantine participant. A cluster any byz event ever
// targets is "tainted": relay duty skips its scripted nodes, and the
// global-tier barrier, log agreement, and cut-provenance checks cover
// untainted seats and clusters only (within a cluster, the honest members
// must still agree among themselves). Cuts are not yet authenticated by
// their cluster — a Byzantine seat can forge cut records, which the
// post-run provenance check surfaces — so, as with the one-shot clustered
// driver, adversarial runs measure how far the defenses reach rather than
// promising full cross-tier Byzantine tolerance.

// cutSize is the wire size of one cluster-cut record:
// u32 cluster | u32 local epoch | 32-byte entry digest.
const cutSize = 40

// beaconKey is the frontier beacon's intent slot on the local channels.
var beaconKey = core.IntentKey{Kind: packet.KindGlobal, Phase: packet.PhaseFinish, Slot: 0}

// MakeCutTx builds the cluster-cut record the rotating leader submits to
// the global tier for one committed local epoch.
func MakeCutTx(cluster, epoch int, digest [32]byte) []byte {
	tx := make([]byte, cutSize)
	binary.BigEndian.PutUint32(tx, uint32(cluster))
	binary.BigEndian.PutUint32(tx[4:], uint32(epoch))
	copy(tx[8:], digest[:])
	return tx
}

// parseCutTx decodes a cut record; ok is false for foreign payloads.
func parseCutTx(tx []byte) (cluster, epoch int, digest [32]byte, ok bool) {
	if len(tx) != cutSize {
		return 0, 0, digest, false
	}
	cluster = int(binary.BigEndian.Uint32(tx))
	epoch = int(binary.BigEndian.Uint32(tx[4:]))
	copy(digest[:], tx[8:])
	return cluster, epoch, digest, true
}

// entryDigest binds a cut to the exact committed entry content.
func entryDigest(entry protocol.LogEntry) [32]byte {
	h := sha256.New()
	var eb [4]byte
	binary.BigEndian.PutUint32(eb[:], uint32(entry.Epoch))
	h.Write(eb[:])
	h.Write(protocol.EncodeBatch(entry.Txs))
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// mhcMember is one cluster node and its chain engine plus the driver-side
// dissemination state.
type mhcMember struct {
	node  *node.Node
	chain *protocol.Chain
	byz   bool // scripted Byzantine at any point (excluded from relay duty)
	// latest is the newest open local epoch transport (beacon carrier).
	latest *core.Transport
	// heardCuts/heardDigest is the highest global frontier beacon received.
	heardCuts   int
	heardDigest [32]byte
}

// mhcCluster is one cluster: members on a private channel plus the
// global-tier seat and its ordering chain.
type mhcCluster struct {
	idx     int
	ch      *wireless.Channel
	members []*mhcMember
	seat    *node.Node
	gchain  *protocol.Chain
	tainted bool // some byz event targets this cluster
	// nextCut is the lowest local epoch whose cut is not yet submitted.
	nextCut int
	// cuts tracks the global order as this cluster's seat commits it:
	// total cut count and the rolling digest the relays beacon.
	cutCount  int
	cutDigest [32]byte
	// gotCuts[c2] is the set of local epochs for which a cut of cluster
	// c2 appeared in this seat's global log (the global-tier barrier).
	gotCuts []map[int]bool
}

// mhcDriver holds the whole deployment for the lifecycle and callbacks.
type mhcDriver struct {
	spec     Spec
	target   int
	clusters []*mhcCluster
	perma    map[int]bool
}

func (d *mhcDriver) member(flat int) (*mhcCluster, *mhcMember) {
	p := d.spec.Topology.PerCluster
	return d.clusters[flat/p], d.clusters[flat/p].members[flat%p]
}

// CrashNode implements scenario.Lifecycle across the cluster tier.
func (d *mhcDriver) CrashNode(i int) {
	if i < 0 || i >= d.spec.Nodes() {
		return
	}
	cl, m := d.member(i)
	if m.node.Down() {
		return
	}
	m.chain.Crash()
	m.node.Crash()
	m.latest = nil // its transports are gone with the mux epochs
	// Relay failover: cuts the crashed node was designated to submit are
	// taken over by the next live member in rotation.
	d.pumpCuts(cl)
}

// RecoverNode implements scenario.Lifecycle: mid-run chain recovery.
func (d *mhcDriver) RecoverNode(i int) {
	if i < 0 || i >= d.spec.Nodes() {
		return
	}
	cl, m := d.member(i)
	if !m.node.Down() {
		return
	}
	m.node.Recover()
	m.chain.Recover()
	// A member that comes back with its chain already at the target has no
	// pipeline epoch left to carry or hear beacons on (Chain.Recover cannot
	// reopen epochs past MaxEpochs): it re-syncs the frontier directly from
	// its cluster's uplink seat — the same driver-level link relays hand
	// cuts up through in the other direction.
	if m.chain.CommittedEpochs() >= d.target && cl.cutCount > m.heardCuts {
		m.heardCuts = cl.cutCount
		m.heardDigest = cl.cutDigest
	}
	// Both driver-glue directions stalled by a whole-cluster outage must
	// restart here, because no further local commit may come to retrigger
	// them: pending cuts go up (relay duty re-evaluated against the
	// recovered membership), and the current global frontier is
	// re-beaconed down so recovered followers hear it.
	d.pumpCuts(cl)
	d.beacon(cl, len(cl.gchain.Log()))
}

// SetByzantine arms the behavior on the member and on its cluster's seat:
// the cluster's uplink is only as trustworthy as its members.
func (d *mhcDriver) SetByzantine(i int, behavior string) {
	if i < 0 || i >= d.spec.Nodes() {
		return
	}
	b, err := byz.New(behavior)
	if err != nil {
		return
	}
	cl, m := d.member(i)
	m.node.SetBehavior(b)
	cl.seat.SetBehavior(b)
}

// pumpCuts submits every due cluster cut in order. The designated relay
// for local epoch e is member e mod P; the cut is handed to the seat when
// the relay commits e, or — if the relay is down or scripted Byzantine —
// when the next live honest member in rotation has the entry committed.
func (d *mhcDriver) pumpCuts(cl *mhcCluster) {
	p := d.spec.Topology.PerCluster
	for cl.nextCut < d.target {
		e := cl.nextCut
		var src *protocol.Chain
		for k := 0; k < p; k++ {
			m := cl.members[(e+k)%p]
			if m.byz || m.node.Down() {
				continue // untrusted or dead relay; duty passes on
			}
			// First trustworthy live member in rotation is the relay; the
			// cut waits until it has committed the epoch (it will: honest
			// live chains reach the target, recovering mid-run if needed).
			// The log, not CommittedEpochs, carries the signal: OnCommit
			// fires after the entry is appended but before the frontier
			// counter advances.
			if len(m.chain.Log()) > e {
				src = m.chain
			}
			break
		}
		if src == nil {
			return
		}
		cl.gchain.Submit(MakeCutTx(cl.idx, e, entryDigest(src.Log()[e])))
		cl.nextCut++
	}
}

// onGlobalCommit tallies seat c's newly committed global entry and has
// the rotating relay beacon the advanced frontier into the cluster.
func (d *mhcDriver) onGlobalCommit(cl *mhcCluster, g int) {
	entry := cl.gchain.Log()[g]
	for _, tx := range entry.Txs {
		h := sha256.New()
		h.Write(cl.cutDigest[:])
		h.Write(tx)
		h.Sum(cl.cutDigest[:0])
		cl.cutCount++
		if c2, e, _, ok := parseCutTx(tx); ok && c2 >= 0 && c2 < len(d.clusters) && e >= 0 && e < d.target {
			if cl.gotCuts[c2] == nil {
				cl.gotCuts[c2] = make(map[int]bool)
			}
			cl.gotCuts[c2][e] = true
		}
	}
	d.beacon(cl, g)
}

// beacon broadcasts the cluster seat's current global frontier — cut
// count plus rolling digest — through the rotating relay's newest open
// local epoch transport. Followers keep the highest count heard.
func (d *mhcDriver) beacon(cl *mhcCluster, g int) {
	p := d.spec.Topology.PerCluster
	var relay *mhcMember
	for k := 0; k < p; k++ {
		m := cl.members[(g+k)%p]
		if !m.byz && !m.node.Down() && m.latest != nil {
			relay = m
			break
		}
	}
	if relay == nil {
		return // cluster blackout; the next commit re-beacons
	}
	payload := make([]byte, 4+32)
	binary.BigEndian.PutUint32(payload, uint32(cl.cutCount))
	copy(payload[4:], cl.cutDigest[:])
	relay.latest.Update(core.Intent{IntentKey: beaconKey, Data: payload})
	// The relay learned the frontier from its own seat.
	if cl.cutCount > relay.heardCuts {
		relay.heardCuts = cl.cutCount
		relay.heardDigest = cl.cutDigest
	}
}

// hookMember wires one member's chain into the driver: cut relay on local
// commits, the pipeline-depth gauge, and beacon send/receive on every
// pipeline epoch transport.
func (d *mhcDriver) hookMember(cl *mhcCluster, m *mhcMember, maxOpen *int) {
	m.chain.OnCommit = func(int) {
		if o := m.chain.OpenEpochs(); o > *maxOpen {
			*maxOpen = o
		}
		d.pumpCuts(cl)
	}
	m.chain.OnEpochOpen = func(_ int, tr *core.Transport) {
		m.latest = tr
		tr.Register(packet.KindGlobal, core.HandlerFunc(func(_ uint16, sec packet.Section) {
			for _, ent := range sec.Entries {
				if len(ent.Data) != 4+32 {
					continue
				}
				count := int(binary.BigEndian.Uint32(ent.Data))
				if count > m.heardCuts {
					m.heardCuts = count
					copy(m.heardDigest[:], ent.Data[4:])
				}
			}
		}))
	}
}

// runClusteredChain executes the Clustered × Chain cell.
func runClusteredChain(spec Spec) (*Report, error) {
	M, P := spec.Topology.Clusters, spec.Topology.PerCluster
	fg := (M - 1) / 3
	byzN := spec.Scenario.ByzNodes()
	if err := byzPerGroup(byzN, M, P, spec.F); err != nil {
		return nil, err
	}
	perma := spec.Scenario.DownForever()
	// A byz event taints its whole cluster's uplink seat, so tainted
	// clusters are Byzantine participants of the M-seat global group:
	// more than f_g of them exceeds what the global tier tolerates.
	// Reject upfront, like every other invalid adversarial plan.
	taintedClusters := 0
	for c := 0; c < M; c++ {
		for i := 0; i < P; i++ {
			if byzN[c*P+i] {
				taintedClusters++
				break
			}
		}
	}
	if taintedClusters > fg {
		return nil, fmt.Errorf("run: byz events taint %d clusters' uplink seats, global tier tolerates f=%d", taintedClusters, fg)
	}
	// Every cluster needs at least one honest member that is not scripted
	// to stay dead: relay duty and the reference log both come from the
	// honest live members, and a fully dead (or fully untrusted) cluster
	// would stall the global barrier until the deadline. Reject upfront.
	for c := 0; c < M; c++ {
		live := false
		for i := 0; i < P; i++ {
			if flat := c*P + i; !perma[flat] && !byzN[flat] {
				live = true
				break
			}
		}
		if !live {
			return nil, fmt.Errorf("run: cluster %d has no honest live member; its cuts could never be relayed", c)
		}
	}
	target := spec.Workload.Epochs

	sched := sim.New(spec.Seed)
	globalCh := wireless.NewChannel(sched, spec.Net)
	globalSuites, err := crypto.DealCached(M, fg, spec.Crypto, spec.Seed^0x61)
	if err != nil {
		return nil, err
	}

	ccfg, err := chainConfig(spec)
	if err != nil {
		return nil, err
	}
	// The global chain orders cut records: no payload encryption (digests
	// are public), no sharding (each seat proposes exactly its own
	// cluster's cuts), and a cut policy that proposes as soon as one cut
	// is pending — cut cadence, not batch fill, sets the global tempo.
	gccfg := protocol.DefaultChainConfig(spec.Protocol, spec.Coin)
	gccfg.Batched = spec.Batched
	gccfg.Encrypt = false
	gccfg.Window = spec.Workload.Window
	gccfg.GCLag = spec.Workload.GCLag
	gccfg.MaxEpochs = 0 // runs until every cluster's cuts are ordered
	gccfg.Mempool = protocol.MempoolConfig{TargetBatchBytes: cutSize, Shards: 1}

	d := &mhcDriver{spec: spec, target: target, perma: perma}
	ncfg := node.Config{Transport: spec.Transport, Batched: spec.Batched, Seed: spec.Seed}
	gcfg := node.Config{Transport: spec.Transport, Batched: spec.Batched, Seed: spec.Seed ^ 0x61}
	gcfg.Transport.Session = globalSession(spec.Transport.Session)

	maxOpen := 0
	for c := 0; c < M; c++ {
		ch := wireless.NewChannel(sched, spec.Net)
		suites, err := crypto.DealCached(P, spec.F, spec.Crypto, spec.Seed+int64(c)*101)
		if err != nil {
			return nil, err
		}
		cl := &mhcCluster{idx: c, ch: ch, gotCuts: make([]map[int]bool, M)}
		for i := 0; i < P; i++ {
			n := node.NewMux(sched, ch, wireless.NodeID(i), suites[i], ncfg)
			chain := protocol.NewChain(sched, n.CPU, n.Mux(), suites[i], P, spec.F, i,
				n.TransportConfig().Session, n.Rand, ccfg)
			m := &mhcMember{node: n, chain: chain, byz: byzN[c*P+i]}
			cl.tainted = cl.tainted || m.byz
			cl.members = append(cl.members, m)
		}
		// The uplink seat: a second radio+MCU per cluster on the global
		// channel, running the cross-cluster ordering chain.
		cl.seat = node.NewMux(sched, globalCh, wireless.NodeID(c), globalSuites[c], gcfg)
		cl.gchain = protocol.NewChain(sched, cl.seat.CPU, cl.seat.Mux(), globalSuites[c], M, fg, c,
			cl.seat.TransportConfig().Session, cl.seat.Rand, gccfg)
		d.clusters = append(d.clusters, cl)
	}
	for _, cl := range d.clusters {
		cl := cl
		for _, m := range cl.members {
			d.hookMember(cl, m, &maxOpen)
		}
		cl.gchain.OnCommit = func(g int) { d.onGlobalCommit(cl, g) }
	}

	eng := scenario.Start(sched, spec.Scenario, spec.Seed, d)
	for c, cl := range d.clusters {
		base := c * P
		cl.ch.SetDeliveryHook(eng.HookMapped(func(id wireless.NodeID) int { return base + int(id) }))
	}
	globalCh.SetDeliveryHook(eng.HookNetOnly())

	// Client workload: each cluster receives its own sustained stream —
	// one transaction per TxInterval, broadcast to the cluster's live
	// mempools. Sequence numbers are global so payloads are distinct
	// across clusters.
	honestMember := func(flat int) bool { return !byzN[flat] && !perma[flat] }
	localsDone := func() bool {
		for c, cl := range d.clusters {
			for i, m := range cl.members {
				if honestMember(c*P+i) && m.chain.CommittedEpochs() < target {
					return false
				}
			}
		}
		return true
	}
	untainted := 0
	for _, cl := range d.clusters {
		if !cl.tainted {
			untainted++
		}
	}
	globalDone := func() bool {
		for _, cl := range d.clusters {
			if cl.tainted {
				continue
			}
			for _, cl2 := range d.clusters {
				if cl2.tainted {
					continue
				}
				if len(cl.gotCuts[cl2.idx]) < target {
					return false
				}
			}
		}
		return true
	}
	heardDone := func() bool {
		for c, cl := range d.clusters {
			if cl.tainted {
				continue
			}
			for i, m := range cl.members {
				if honestMember(c*P+i) && m.heardCuts < untainted*target {
					return false
				}
			}
		}
		return true
	}
	done := func() bool { return localsDone() && globalDone() && heardDone() }

	submitted := 0
	var inject func()
	inject = func() {
		if localsDone() {
			return
		}
		for _, cl := range d.clusters {
			tx := protocol.MakeClientTx(submitted, spec.Workload.TxSize)
			submitted++
			for _, m := range cl.members {
				if !m.node.Down() {
					m.chain.Submit(tx)
				}
			}
		}
		sched.After(spec.Workload.TxInterval, inject)
	}
	sched.After(100*time.Millisecond, inject)
	for _, cl := range d.clusters {
		for _, m := range cl.members {
			m.chain.Start()
		}
		cl.gchain.Start()
	}

	if err := node.Drive(sched, spec.Deadline, done); err != nil {
		front := make([][]int, M)
		cuts := make([]int, M)
		heard := make([][]int, M)
		gstate := make([]string, M)
		for c, cl := range d.clusters {
			cuts[c] = cl.cutCount
			gstate[c] = fmt.Sprintf("c%d{gfront=%d open=%d pool=%d/%dB nextCut=%d}",
				c, cl.gchain.CommittedEpochs(), cl.gchain.OpenEpochs(),
				cl.gchain.Mempool().Len(), cl.gchain.Mempool().PendingBytes(), cl.nextCut)
			for _, m := range cl.members {
				front[c] = append(front[c], m.chain.CommittedEpochs())
				heard[c] = append(heard[c], m.heardCuts)
			}
		}
		return nil, fmt.Errorf("run: clustered chain (%s %s batched=%v depth=%d) at frontiers %v, seat cuts %v, heard %v, global %v: %w",
			spec.Protocol, spec.Coin, spec.Batched, spec.Workload.Window, front, cuts, heard, gstate, err)
	}

	rep, err := d.finishClusteredChain(spec, sched, globalCh, submitted, maxOpen, byzN)
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// finishClusteredChain runs the post-run safety checks — local agreement
// per cluster, global agreement across untainted seats, cut provenance,
// and follower frontier-digest consistency — then folds the two tiers'
// measurements into the Report.
func (d *mhcDriver) finishClusteredChain(spec Spec, sched *sim.Scheduler, globalCh *wireless.Channel, submitted, maxOpen int, byzN map[int]bool) (*Report, error) {
	M, P := spec.Topology.Clusters, spec.Topology.PerCluster

	// Local tier: the honest members of every cluster (tainted or not)
	// must have committed identical gap-free logs.
	refMember := make([]*mhcMember, M) // first honest member per cluster
	for c, cl := range d.clusters {
		honest := make([]*protocol.Chain, P)
		for i, m := range cl.members {
			flat := c*P + i
			if !byzN[flat] && !d.perma[flat] {
				honest[i] = m.chain
				if refMember[c] == nil {
					refMember[c] = m
				}
			}
		}
		if err := protocol.CheckLogs(honest); err != nil {
			return nil, fmt.Errorf("run: cluster %d: %w", c, err)
		}
		if refMember[c] == nil {
			return nil, fmt.Errorf("run: cluster %d has no honest live member", c)
		}
	}

	// Global tier: untainted seats must agree on the cross-cluster order.
	var refSeat *mhcCluster
	globalHonest := make([]*protocol.Chain, M)
	for c, cl := range d.clusters {
		if cl.tainted {
			continue
		}
		globalHonest[c] = cl.gchain
		if refSeat == nil || cl.cutCount > refSeat.cutCount {
			refSeat = cl
		}
	}
	if refSeat == nil {
		return nil, fmt.Errorf("run: every cluster is Byzantine-tainted; no trusted global order")
	}
	if err := protocol.CheckLogs(globalHonest); err != nil {
		return nil, fmt.Errorf("run: global tier: %w", err)
	}

	// Cut provenance: walk the longest untainted global order once,
	// rebuilding the rolling beacon digests, verifying that every cut
	// claiming an untainted cluster matches that cluster's true committed
	// entry, and that the true cut of every untainted (cluster, epoch)
	// appears.
	seen := make([]map[int]bool, M)
	for c := range seen {
		seen[c] = make(map[int]bool)
	}
	var rolling [32]byte
	digests := make([][32]byte, 1, refSeat.cutCount+1)
	for _, entry := range refSeat.gchain.Log() {
		for _, tx := range entry.Txs {
			h := sha256.New()
			h.Write(rolling[:])
			h.Write(tx)
			h.Sum(rolling[:0])
			digests = append(digests, rolling)
			c2, e, dig, ok := parseCutTx(tx)
			if !ok || c2 < 0 || c2 >= M || e < 0 || e >= d.target {
				continue // foreign payload; only a tainted seat can produce one
			}
			if d.clusters[c2].tainted {
				continue
			}
			if want := entryDigest(refMember[c2].chain.Log()[e]); dig != want {
				return nil, fmt.Errorf("run: global order holds a forged cut for cluster %d epoch %d", c2, e)
			}
			seen[c2][e] = true
		}
	}
	for c, cl := range d.clusters {
		if cl.tainted {
			continue
		}
		for e := 0; e < d.target; e++ {
			if !seen[c][e] {
				return nil, fmt.Errorf("run: cluster %d epoch %d missing from the global order", c, e)
			}
		}
	}

	// Follower dissemination: every honest member of an untainted cluster
	// must have heard a frontier beacon consistent with the global order.
	for c, cl := range d.clusters {
		if cl.tainted {
			continue
		}
		for i, m := range cl.members {
			flat := c*P + i
			if byzN[flat] || d.perma[flat] {
				continue
			}
			if m.heardCuts > refSeat.cutCount {
				return nil, fmt.Errorf("run: cluster %d member %d heard frontier %d beyond the global order (%d)",
					c, i, m.heardCuts, refSeat.cutCount)
			}
			if !bytes.Equal(m.heardDigest[:], digests[m.heardCuts][:]) {
				return nil, fmt.Errorf("run: cluster %d member %d heard a frontier digest diverging from the global order", c, i)
			}
		}
	}

	rep := spec.report()
	rep.Duration = sched.Now()
	cr := &ChainReport{
		EpochsCommitted: d.target,
		SubmittedTxs:    submitted,
		MaxOpenEpochs:   maxOpen,
		Logs:            make([][]protocol.LogEntry, M*P),
	}
	rep.Chain = cr
	var latSum time.Duration
	for c, cl := range d.clusters {
		ref := refMember[c]
		cr.CommittedTxs += ref.chain.CommittedTxs()
		cr.CommittedBytes += ref.chain.CommittedBytes()
		cr.DedupDropped += ref.chain.DedupDropped()
		latSum += ref.chain.MeanCommitLatency()
		for i, m := range cl.members {
			flat := c*P + i
			if !byzN[flat] && !d.perma[flat] {
				cr.Logs[flat] = m.chain.Log()
			}
		}
	}
	cr.MeanCommitLatency = latSum / time.Duration(M)
	if rep.Duration > 0 {
		cr.ThroughputBps = float64(cr.CommittedBytes) / rep.Duration.Seconds()
	}

	rep.Tiers = &TierReport{
		GlobalEntries: len(refSeat.gchain.Log()),
		OrderedCuts:   refSeat.cutCount,
		GlobalLogs:    make([][]protocol.LogEntry, M),
	}
	var localChs []*wireless.Channel
	var nodes, seats []*node.Node
	for _, cl := range d.clusters {
		localChs = append(localChs, cl.ch)
		for _, m := range cl.members {
			nodes = append(nodes, m.node)
		}
		seats = append(seats, cl.seat)
		if !cl.tainted {
			rep.Tiers.GlobalLogs[cl.idx] = cl.gchain.Log()
		}
	}
	foldTwoTierStats(rep, globalCh, localChs, nodes, seats)
	return rep, nil
}
