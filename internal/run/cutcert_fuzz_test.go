package run

import (
	"bytes"
	"testing"

	"repro/internal/crypto"
	"repro/internal/crypto/threshsig"
)

// FuzzParseCutTx: parseCutTx must accept exactly the records MakeCutTx
// builds — any parsed record re-encodes to the identical bytes, and
// nothing at or below the bare header parses.
func FuzzParseCutTx(f *testing.F) {
	var digest [32]byte
	for i := range digest {
		digest[i] = byte(i)
	}
	f.Add(MakeCutTx(3, 7, digest, bytes.Repeat([]byte{0xAB}, 64)))
	f.Add(MakeCutTx(0, 0, [32]byte{}, []byte{1}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, cutHeaderSize))
	f.Fuzz(func(t *testing.T, tx []byte) {
		c, e, dig, cert, ok := parseCutTx(tx)
		if !ok {
			if len(tx) > cutHeaderSize {
				t.Fatalf("header+cert record of %d bytes failed to parse", len(tx))
			}
			return
		}
		if c < 0 || e < 0 || len(cert) == 0 {
			t.Fatalf("parsed cut has c=%d e=%d certlen=%d", c, e, len(cert))
		}
		if !bytes.Equal(MakeCutTx(c, e, dig, cert), tx) {
			t.Fatal("parse/encode round trip diverged")
		}
	})
}

// FuzzCutCertDecode: certificate decoding and verification must never
// panic, and no mutation of a valid certified cut — tuple or certificate
// bytes — may verify. Only the exact record the cluster threshold-signed
// does.
func FuzzCutCertDecode(f *testing.F) {
	suites, err := crypto.DealCached(4, 1, crypto.LightConfig(), 11)
	if err != nil {
		f.Fatal(err)
	}
	key := suites[0].TSLow
	const session = 7
	digest := [32]byte{1, 2, 3}
	msg := cutMsg(session, 2, 5, digest)
	sh0, err := key.Sign(suites[0].TSLowShare, msg, zeroReader{})
	if err != nil {
		f.Fatal(err)
	}
	sh1, err := key.Sign(suites[1].TSLowShare, msg, zeroReader{})
	if err != nil {
		f.Fatal(err)
	}
	cert, err := combineCutCert(key, msg, []*threshsig.SigShare{sh0, sh1})
	if err != nil {
		f.Fatal(err)
	}
	valid := MakeCutTx(2, 5, digest, cert)
	f.Add(valid)
	f.Add(append([]byte(nil), valid[:50]...))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, tx []byte) {
		c, e, dig, crt, ok := parseCutTx(tx)
		if !ok {
			return
		}
		if verifyCutCert(key, session, c, e, dig, crt) && !bytes.Equal(tx, valid) {
			t.Fatalf("forged record of %d bytes verified", len(tx))
		}
	})
}
