package run_test

import (
	"testing"
	"time"

	"repro/internal/byz"
	"repro/internal/node"
	"repro/internal/protocol"
	"repro/internal/run"
	"repro/internal/scenario"
)

// TestSustainedEquivocationWedge pins ROADMAP item 6 as an in-tree
// repro: under a sustained equivocation adversary (f Byzantine nodes
// from t=0), the three BENCH_alea.json cells below wedge — every honest
// node stalls at the same epoch frontier until the run deadline fires —
// instead of committing all 12 epochs. Alea-SC survives the same plan
// (its VCBC certificates pin one payload per slot), so the wedge is
// likely in RBC's equivocation-repair path shared by the HB and Dumbo
// engines.
//
// The test is skipped: it documents a known open bug, not a regression
// gate. Whoever fixes item 6 should delete the Skip and flip the
// expectation — a fixed engine commits all 12 epochs and the run
// returns nil.
func TestSustainedEquivocationWedge(t *testing.T) {
	t.Skip("ROADMAP item 6: sustained-equivocation liveness wedge (known open bug; " +
		"remove this Skip when fixing it and expect the runs to succeed)")

	cases := []struct {
		name    string
		kind    protocol.Kind
		batched bool
	}{
		// The three FAILED byz-equivocate cells of BENCH_alea.json, seed 2.
		{"HB-SC/batched", protocol.HoneyBadger, true},
		{"HB-SC/baseline", protocol.HoneyBadger, false},
		{"Dumbo-SC/baseline", protocol.DumboKind, false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			spec := run.Defaults(tc.kind, protocol.CoinSig)
			spec.Batched = tc.batched
			spec.Seed = 2
			spec.Workload = run.Chain(12)
			spec.Workload.TxInterval = time.Second
			spec.Workload.GCLag = 12
			plan := scenario.Plan{}
			for i := 0; i < spec.F; i++ {
				plan = plan.Then(scenario.ByzAt(0, spec.N-1-i, byz.NameEquivocate))
			}
			spec.Scenario = plan
			_, err := run.Run(spec)
			if err == nil {
				t.Fatal("cell completed: the equivocation wedge is gone — " +
					"close ROADMAP item 6 and turn this into a liveness gate")
			}
			if !node.IsDeadline(err) {
				t.Fatalf("expected the documented deadline wedge, got a different failure: %v", err)
			}
		})
	}
}
