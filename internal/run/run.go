package run

import (
	"fmt"

	"repro/internal/byz"
	"repro/internal/scenario"
)

// Run executes one experiment and returns its measurements. The Spec's
// two axes select the driver:
//
//	SingleHop × OneShot — the paper's evaluation runs (Fig. 13a)
//	Clustered × OneShot — the Sec. V-B two-tier deployment (Fig. 13b)
//	SingleHop × Chain   — pipelined SMR on one channel
//	Clustered × Chain   — pipelined SMR per cluster, with rotating
//	                      leaders ordering cluster cuts on the global tier
//
// Zero-valued tuning fields are normalized to the workload defaults
// first; malformed axes fail before any virtual time elapses.
func Run(spec Spec) (*Report, error) {
	spec = spec.normalize()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if err := validateByz(spec.Scenario, spec.Nodes()); err != nil {
		return nil, err
	}
	switch {
	case spec.Topology.Kind == TopoSingleHop && spec.Workload.Kind == LoadOneShot:
		return runOneShot(spec)
	case spec.Topology.Kind == TopoClustered && spec.Workload.Kind == LoadOneShot:
		return runClusteredOneShot(spec)
	case spec.Topology.Kind == TopoSingleHop && spec.Workload.Kind == LoadChain:
		return runChain(spec)
	default:
		return runClusteredChain(spec)
	}
}

// validateByz rejects plans naming unknown Byzantine behaviors or
// out-of-range nodes before any virtual time elapses (the engine fires
// byz events mid-run, too late to surface an error — and a typo'd node
// id would otherwise yield a vacuously "Byzantine" run with no
// adversary in it).
func validateByz(plan scenario.Plan, n int) error {
	for _, ev := range plan.Events {
		if ev.Kind != scenario.KindByz {
			continue
		}
		if _, err := byz.New(ev.Behavior); err != nil {
			return err
		}
		if ev.Node < 0 || ev.Node >= n {
			return fmt.Errorf("run: byz event targets node %d, have nodes 0..%d", ev.Node, n-1)
		}
	}
	return nil
}

// byzPerGroup enforces the per-group Byzantine bound: at most f scripted
// Byzantine nodes in each consensus group of size per (the whole network
// when groups == 1).
func byzPerGroup(byzN map[int]bool, groups, per, f int) error {
	count := make([]int, groups)
	for nd := range byzN {
		count[nd/per]++
	}
	for g, cnt := range count {
		if cnt > f {
			if groups == 1 {
				return fmt.Errorf("run: %d Byzantine nodes exceed F=%d", cnt, f)
			}
			return fmt.Errorf("run: cluster %d has %d Byzantine nodes, exceeds F=%d", g, cnt, f)
		}
	}
	return nil
}

// globalSession derives the global tier's session id from the local one,
// domain-separating the two tiers' coins and signed transcripts.
func globalSession(local uint32) uint32 { return local ^ 0x006C0BA1 }
