package run

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/byz"
	"repro/internal/component"
	"repro/internal/protocol"
	"repro/internal/scenario"
)

// This file is the cross-engine conformance suite: one table-driven
// harness that runs the same chain workload over every registered
// protocol engine × both transports × a scenario battery, and re-checks
// the consensus invariants independently of the driver's own enforcement
// (run.Run already fails on agreement violations; the suite additionally
// pins validity and total-order prefix consistency from the committed
// logs, so a driver regression can't mask an engine regression). Engines
// are enumerated from the protocol registry, so a fourth engine inherits
// the whole battery by registering itself.

// conformanceCoin picks each family's evaluation coin (BEAT is defined
// by its flip coin; everything else runs the signature coin).
func conformanceCoin(kind protocol.Kind) protocol.CoinKind {
	if kind == protocol.BEAT {
		return protocol.CoinFlip
	}
	return protocol.CoinSig
}

// conformanceSpec is the shared cell: 4-node single-hop chain, 4 epochs
// at 1 s client cadence, GC parked so full logs survive for auditing.
func conformanceSpec(kind protocol.Kind, batched bool) Spec {
	spec := Defaults(kind, conformanceCoin(kind))
	spec.Workload = Chain(4)
	spec.Workload.TxInterval = time.Second
	spec.Workload.GCLag = spec.Workload.Epochs
	spec.Seed = 7
	spec.Batched = batched
	return spec
}

// conformanceScenario is one battery entry. rewritesProposals marks the
// adversary that forges its own proposal payload in place (ForgeCut): a
// Byzantine proposer fabricating its own batch is permitted by consensus
// validity, and the repo's defense against the fabrication reaching the
// log is the threshold-encrypted proposal path — so the forged-entry
// audit applies only to engines that run with encryption on. Agreement
// and total order must hold for every engine regardless.
type conformanceScenario struct {
	name              string
	plan              scenario.Plan
	rewritesProposals bool
}

// conformanceScenarios is the fault battery: clean, a crash/recover
// cycle, a quorum-splitting partition that heals, and every registered
// Byzantine behavior armed on node 3 from t=0. Timings sit inside the
// ~23-minute 4-epoch window so every event actually fires.
func conformanceScenarios() []conformanceScenario {
	out := []conformanceScenario{
		{name: "clean"},
		{name: "crash-recover", plan: scenario.Plan{}.Then(
			scenario.CrashAt(8*time.Minute, 2), scenario.RecoverAt(16*time.Minute, 2))},
		{name: "partition-heal", plan: scenario.Plan{}.Then(
			scenario.PartitionAt(5*time.Minute, []int{0, 1}, []int{2, 3}),
			scenario.HealAt(15*time.Minute))},
	}
	for _, b := range byz.Names() {
		out = append(out, conformanceScenario{
			name:              "byz-" + b,
			plan:              scenario.Byz(b, 3),
			rewritesProposals: b == byz.NameForgeCut,
		})
	}
	return out
}

// checkConformance re-derives the consensus invariants from the
// committed logs, independently of the driver's internal checks:
// validity (every committed transaction is a genuine client submission),
// agreement / total-order prefix consistency (any two honest logs are
// prefixes of one common sequence), and gap-freedom (epochs commit in
// order without holes).
func checkConformance(t *testing.T, spec Spec, rep *Report, auditForgery bool) {
	t.Helper()
	if rep.Chain == nil {
		t.Fatal("conformance cell produced no chain report")
	}
	logs := rep.Chain.Logs
	if forged := protocol.CountForged(logs, spec.Workload.TxSize, rep.Chain.SubmittedTxs); auditForgery && forged != 0 {
		t.Errorf("validity violated: %d forged transactions committed", forged)
	}
	var ref []protocol.LogEntry
	committed := 0
	for nd, log := range logs {
		if log == nil {
			continue // Byzantine or perma-crashed node: not part of the honest bar
		}
		committed++
		for i, entry := range log {
			if entry.Epoch != i {
				t.Fatalf("node %d: gap in log at position %d (epoch %d)", nd, i, entry.Epoch)
			}
		}
		if ref == nil || len(log) > len(ref) {
			if ref != nil {
				checkPrefix(t, nd, log, ref)
			}
			ref = log
			continue
		}
		checkPrefix(t, nd, ref, log)
	}
	if committed == 0 {
		t.Fatal("no honest logs in the report")
	}
	if len(ref) != spec.Workload.Epochs {
		t.Fatalf("longest honest log committed %d epochs, want %d", len(ref), spec.Workload.Epochs)
	}
}

// checkPrefix asserts log is entry-for-entry identical to the longer
// reference over its whole length (total-order prefix consistency).
func checkPrefix(t *testing.T, nd int, longer, log []protocol.LogEntry) {
	t.Helper()
	for i, entry := range log {
		want := longer[i]
		if entry.Epoch != want.Epoch || len(entry.Txs) != len(want.Txs) {
			t.Fatalf("node %d: log diverges at position %d", nd, i)
		}
		for j := range entry.Txs {
			if !bytes.Equal(entry.Txs[j], want.Txs[j]) {
				t.Fatalf("node %d: transaction disagreement at epoch %d index %d", nd, i, j)
			}
		}
	}
}

// TestConformanceEngines is the full battery: every registered engine ×
// {batched, baseline} transport × every scenario.
func TestConformanceEngines(t *testing.T) {
	for _, eng := range protocol.Engines() {
		kind := eng.Kind
		for _, batched := range []bool{true, false} {
			batched := batched
			transport := map[bool]string{true: "batched", false: "baseline"}[batched]
			for _, sc := range conformanceScenarios() {
				sc := sc
				t.Run(string(kind)+"/"+transport+"/"+sc.name, func(t *testing.T) {
					t.Parallel()
					spec := conformanceSpec(kind, batched)
					spec.Scenario = sc.plan
					rep, err := Run(spec)
					if err != nil {
						t.Fatalf("driver rejected the run: %v", err)
					}
					checkConformance(t, spec, rep, !sc.rewritesProposals || spec.Encrypt)
				})
			}
		}
	}
}

// TestFullStopRecovery pins the beyond-fault-budget recovery path: two
// simultaneous crashes in the 4-node chain (more than f, so no epoch can
// complete anywhere during the outage) followed by recovery of both. The
// in-flight epoch must then complete cooperatively from survivor state
// plus the recovered nodes' re-proposals. Only Alea guarantees this, via
// the proposal WAL (protocol.ChainConfig.ProposalWAL) — the write-ahead
// log the Alea-BFT paper requires of its broadcast component — plus the
// WAL-replay repair pull (Alea.Reproposed) that has survivors re-serve
// the VCBC certificate or their standing echo shares, and RoundCatchUp's
// pruned-round send replay. The other engines are excluded:
// HB and BEAT wedge on this scenario outright, and Dumbo's recovery is
// interleaving-dependent (some seeds complete, some wedge) — a known
// family limitation (see DESIGN.md); ProposalWAL is gated off for them
// to keep the frozen BENCH goldens.
func TestFullStopRecovery(t *testing.T) {
	for _, kind := range []protocol.Kind{protocol.AleaKind} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			spec := conformanceSpec(kind, true)
			spec.Workload = Chain(5)
			spec.Workload.TxInterval = time.Second
			spec.Workload.GCLag = spec.Workload.Epochs
			spec.Scenario = scenario.Plan{}.Then(
				scenario.CrashAt(10*time.Minute, 1),
				scenario.CrashAt(10*time.Minute, 2),
				scenario.RecoverAt(20*time.Minute, 1),
				scenario.RecoverAt(20*time.Minute, 2),
			)
			rep, err := Run(spec)
			if err != nil {
				t.Fatalf("full-stop recovery wedged: %v", err)
			}
			checkConformance(t, spec, rep, true)
		})
	}
}

// TestConformanceDeterminism pins the reproducibility contract per
// engine: the same Spec (same seed) must produce byte-identical Reports.
func TestConformanceDeterminism(t *testing.T) {
	for _, eng := range protocol.Engines() {
		kind := eng.Kind
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			spec := conformanceSpec(kind, true)
			a, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			ja, _ := json.Marshal(a)
			jb, _ := json.Marshal(b)
			if !bytes.Equal(ja, jb) {
				t.Fatalf("same seed, different Report:\n%s\nvs\n%s", ja, jb)
			}
		})
	}
}

// TestConformanceClustered runs each engine through the clustered
// topology cell (the acceptance bar for new engines: every engine must
// drive every matrix cell, not just the flat one).
func TestConformanceClustered(t *testing.T) {
	for _, eng := range protocol.Engines() {
		kind := eng.Kind
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			spec := Defaults(kind, conformanceCoin(kind))
			spec.Topology = Clustered(4, 4)
			spec.Workload = OneShot(1)
			spec.Seed = 7
			rep, err := Run(spec)
			if err != nil {
				t.Fatalf("clustered cell failed: %v", err)
			}
			if rep.OneShot.DeliveredTxs == 0 {
				t.Fatal("clustered cell delivered nothing")
			}
		})
	}
}

// forgingInstance wraps a real engine instance and appends one extra
// output slot carrying a transaction the clients never submitted. On
// one node it is an agreement breaker; on all nodes it is a validity
// breaker the driver cannot see (the logs still agree).
type forgingInstance struct {
	protocol.Instance
}

func (f *forgingInstance) Outputs() [][]byte {
	out := f.Instance.Outputs()
	if out == nil {
		return nil
	}
	forged := make([]byte, 64)
	forged[0] = 0xFF // sequence 1<<56+: far past anything submitted
	return append(append([][]byte(nil), out...), protocol.EncodeBatch([][]byte{forged}))
}

// TestConformanceCatchesBrokenEngines proves the gate has teeth: a stub
// engine violating agreement must fail the driver, and one violating
// validity (undetectable from agreement alone) must fail
// checkConformance's forgery audit. Deliberately not parallel — it
// mutates the global engine registry and restores it before returning,
// and sequential top-level tests never overlap the parallel suites.
func TestConformanceCatchesBrokenEngines(t *testing.T) {
	base, ok := protocol.Lookup(protocol.HoneyBadger)
	if !ok {
		t.Fatal("honeybadger missing from registry")
	}
	wrap := func(tainted func(me int) bool) func(*component.Env, protocol.CoinKind, bool, bool, func()) protocol.Instance {
		return func(env *component.Env, coin protocol.CoinKind, batched, encrypt bool, onDecide func()) protocol.Instance {
			inst := base.New(env, coin, batched, encrypt, onDecide)
			if tainted(env.Me) {
				return &forgingInstance{Instance: inst}
			}
			return inst
		}
	}

	restore := protocol.Register(protocol.Engine{
		Kind: "broken-agreement", DefaultEncrypt: true,
		New: wrap(func(me int) bool { return me == 0 }),
	})
	spec := conformanceSpec("broken-agreement", true)
	if _, err := Run(spec); err == nil {
		t.Error("agreement-violating engine passed the driver")
	}
	restore()

	restore = protocol.Register(protocol.Engine{
		Kind: "broken-validity", DefaultEncrypt: true,
		New: wrap(func(int) bool { return true }),
	})
	spec = conformanceSpec("broken-validity", true)
	rep, err := Run(spec)
	if err != nil {
		t.Fatalf("validity-only breaker tripped the driver early: %v", err)
	}
	if forged := protocol.CountForged(rep.Chain.Logs, spec.Workload.TxSize, rep.Chain.SubmittedTxs); forged == 0 {
		t.Error("validity-violating engine produced no detectable forgeries")
	}
	restore()

	if _, ok := protocol.Lookup("broken-validity"); ok {
		t.Fatal("registry not restored after the broken-engine runs")
	}
}
