package run

import (
	"fmt"
	"time"

	"repro/internal/byz"
	"repro/internal/component"
	"repro/internal/crypto"
	"repro/internal/node"
	"repro/internal/protocol"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/wireless"
)

// osNode bundles one node's per-run state on top of the deployment layer
// for the one-shot drivers.
type osNode struct {
	*node.Node
	idx     int
	crashed bool // currently down (scenario-driven)
	// byz marks a node the scenario ever scripts Byzantine: it keeps
	// running (and misbehaving) but is excluded from completion barriers
	// and from the honest-safety checks.
	byz  bool
	inst protocol.Instance
	done bool
}

// osLifecycle adapts a slice of osNodes to the scenario engine. Crash
// takes the node off the air immediately and excludes it from the epoch
// barrier; recovery re-admits it at the next epoch boundary (one-shot
// epochs have no mid-epoch join protocol — contrast with the chain
// workload, which rejoins mid-run).
type osLifecycle struct{ nodes []*osNode }

func (l osLifecycle) CrashNode(i int) {
	if i < 0 || i >= len(l.nodes) {
		return
	}
	n := l.nodes[i]
	if n.crashed {
		return
	}
	n.crashed = true
	n.inst = nil  // in-memory epoch state is gone
	n.done = true // excluded from the epoch barrier
	n.Node.Crash()
}

func (l osLifecycle) RecoverNode(i int) {
	if i < 0 || i >= len(l.nodes) {
		return
	}
	n := l.nodes[i]
	if !n.crashed {
		return
	}
	n.Node.Recover()
	n.crashed = false
	// done stays true: the node sits out the rest of the current epoch.
}

// SetByzantine implements scenario.ByzLifecycle: arm the behavior on the
// deployment node. The name was validated by validateByz before the run.
func (l osLifecycle) SetByzantine(i int, behavior string) {
	if i < 0 || i >= len(l.nodes) {
		return
	}
	b, err := byz.New(behavior)
	if err != nil {
		return
	}
	l.nodes[i].byz = true
	l.nodes[i].Node.SetBehavior(b)
}

// runOneShot executes the SingleHop × OneShot cell.
func runOneShot(spec Spec) (*Report, error) {
	byzN := spec.Scenario.ByzNodes()
	if err := byzPerGroup(byzN, 1, spec.N, spec.F); err != nil {
		return nil, err
	}
	sched := sim.New(spec.Seed)
	ch := wireless.NewChannel(sched, spec.Net)

	suites, err := crypto.DealCached(spec.N, spec.F, spec.Crypto, spec.Seed^0x5eed)
	if err != nil {
		return nil, err
	}
	ncfg := node.Config{Transport: spec.Transport, Batched: spec.Batched, Seed: spec.Seed}
	nodes := make([]*osNode, spec.N)
	for i := range nodes {
		nodes[i] = &osNode{Node: node.New(sched, ch, wireless.NodeID(i), suites[i], ncfg), idx: i, byz: byzN[i]}
	}
	eng := scenario.Start(sched, spec.Scenario, spec.Seed, osLifecycle{nodes})
	ch.SetDeliveryHook(eng.Hook())

	rep := spec.report()
	os := &OneShotReport{}
	rep.OneShot = os
	for epoch := 0; epoch < spec.Workload.Epochs; epoch++ {
		start := sched.Now()
		for _, n := range nodes {
			n.startEpoch(sched, uint16(epoch), spec, nil)
		}
		err := node.Drive(sched, start+spec.Deadline, func() bool { return allHonestDone(nodes) })
		if err != nil {
			return nil, fmt.Errorf("run: epoch %d (%s %s batched=%v): %w",
				epoch, spec.Protocol, spec.Coin, spec.Batched, err)
		}
		os.EpochLatencies = append(os.EpochLatencies, sched.Now()-start)
		os.DeliveredTxs += countTxs(nodes, spec.Workload.TxSize)
		insts := make([]protocol.Instance, 0, len(nodes))
		for _, n := range nodes {
			// Agreement is an honest-node property: a Byzantine node's own
			// engine is not bound by what it told its peers.
			if !n.crashed && !n.byz && n.inst != nil {
				insts = append(insts, n.inst)
			}
		}
		if err := protocol.AgreementCheck(insts); err != nil {
			return nil, fmt.Errorf("run: epoch %d safety violation: %w", epoch, err)
		}
	}

	finishOneShot(rep, sched)
	chst := ch.Stats()
	rep.Accesses = chst.Accesses
	rep.Collisions = chst.Collisions
	rep.Frames = chst.Frames
	rep.BytesOnAir = chst.BytesOnAir
	deployed := make([]*node.Node, len(nodes))
	for i, n := range nodes {
		deployed[i] = n.Node
	}
	foldNodeStats(rep, deployed)
	return rep, nil
}

// startEpoch rebuilds the node's components for a fresh epoch and submits
// its proposal. onDone, if non-nil, fires when the node decides the epoch
// locally (the clustered driver chains the global tier off it).
func (n *osNode) startEpoch(sched *sim.Scheduler, epoch uint16, spec Spec, onDone func()) {
	n.done = false
	n.inst = nil
	if n.crashed {
		n.done = true // crashed nodes never finish; exclude from barrier
		return
	}
	tr := n.Transport()
	tr.SetEpoch(epoch)
	env := &component.Env{
		N:       spec.N,
		F:       spec.F,
		Me:      n.idx,
		Epoch:   epoch,
		Session: n.TransportConfig().Session,
		Suite:   n.Suite,
		T:       tr,
		CPU:     n.CPU,
		Sched:   sched,
		Rand:    n.Rand,
	}
	n.inst = protocol.NewInstance(env, spec.Protocol, spec.Coin, spec.Batched, spec.Encrypt, func() {
		n.done = true
		if onDone != nil {
			onDone()
		}
	})
	n.inst.Start(protocol.MakeProposal(n.idx, int(epoch), spec.Workload.BatchSize, spec.Workload.TxSize))
}

func allHonestDone(nodes []*osNode) bool {
	for _, n := range nodes {
		if !n.done && !n.byz {
			return false
		}
	}
	return true
}

// countTxs counts the transactions accepted this epoch (from the first
// honest node's output; agreement tests verify outputs match).
func countTxs(nodes []*osNode, txSize int) int {
	for _, n := range nodes {
		if n.crashed || n.byz || n.inst == nil {
			continue
		}
		total := 0
		for _, prop := range n.inst.Outputs() {
			total += len(prop) / txSize
		}
		return total
	}
	return 0
}

// finishOneShot derives the mean latency and throughput measurements.
func finishOneShot(rep *Report, sched *sim.Scheduler) {
	os := rep.OneShot
	var sum time.Duration
	for _, l := range os.EpochLatencies {
		sum += l
	}
	if len(os.EpochLatencies) > 0 {
		os.MeanLatency = sum / time.Duration(len(os.EpochLatencies))
	}
	rep.Duration = sched.Now()
	if now := sched.Now(); now > 0 {
		os.TPM = float64(os.DeliveredTxs) / now.Minutes()
	}
}

// foldNodeStats sums the deployment nodes' transport counters into the
// flat Report fields.
func foldNodeStats(rep *Report, nodes []*node.Node) {
	ts := node.SumStats(nodes)
	rep.LogicalSent = ts.LogicalSent
	rep.SignOps = ts.SignOps
	rep.VerifyOps = ts.VerifyOps
	rep.Rejected = ts.Rejected
}
