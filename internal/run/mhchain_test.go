package run

import (
	"testing"
	"time"

	"repro/internal/byz"
	"repro/internal/crypto"
	"repro/internal/protocol"
	"repro/internal/scenario"
)

func quickMHChainSpec(p protocol.Kind, coin protocol.CoinKind, target int, seed int64) Spec {
	spec := Defaults(p, coin)
	spec.Topology = Clustered(4, 4)
	spec.Workload = Chain(target)
	spec.Workload.TxInterval = 2 * time.Second
	spec.Seed = seed
	return spec
}

// TestClusteredChainAgreement is the acceptance run for the new matrix
// cell: 4 clusters of 4 run pipelined SMR on the lossy default channel,
// every honest node commits the per-cluster target, every cluster's cuts
// land in the cross-cluster total order, the untainted seats' global logs
// agree, and every follower's heard frontier digest matches the global
// order (Run fails on any violation; the assertions below are the
// measurements).
func TestClusteredChainAgreement(t *testing.T) {
	res, err := Run(quickMHChainSpec(protocol.HoneyBadger, protocol.CoinSig, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Chain.EpochsCommitted != 4 {
		t.Fatalf("per-cluster target not reached: %d", res.Chain.EpochsCommitted)
	}
	if res.Tiers == nil || res.Tiers.OrderedCuts < 4*4 {
		t.Fatalf("global order holds %d cuts, want >= 16 (4 clusters x 4 epochs)", res.Tiers.OrderedCuts)
	}
	if res.Tiers.GlobalEntries == 0 || res.Tiers.GlobalAccesses == 0 || res.Tiers.LocalAccesses == 0 {
		t.Fatalf("expected traffic and commits on both tiers: %+v", res.Tiers)
	}
	if res.Chain.CommittedTxs == 0 || res.Chain.ThroughputBps <= 0 {
		t.Fatalf("no sustained throughput: %+v", res.Chain)
	}
	// Per-cluster logs must exist for every node and carry distinct
	// traffic (clusters order disjoint client streams).
	seen := map[string]bool{}
	for flat, log := range res.Chain.Logs {
		if len(log) != 4 {
			t.Fatalf("node %d committed %d epochs, want 4", flat, len(log))
		}
		for _, entry := range log {
			for _, tx := range entry.Txs {
				key := string(tx)
				if flat%4 == 0 && seen[key] {
					t.Fatalf("tx committed by two clusters; client streams not disjoint")
				}
				if flat%4 == 0 {
					seen[key] = true
				}
			}
		}
	}
	t.Logf("4x4 clustered chain: %d txs, %d cuts in %d global entries, %v virtual, %.2f B/s",
		res.Chain.CommittedTxs, res.Tiers.OrderedCuts, res.Tiers.GlobalEntries,
		res.Duration.Round(time.Second), res.Chain.ThroughputBps)
}

// TestClusteredChainDumbo exercises the second protocol family end to end
// on the new cell (Dumbo's serial-ABA path is distinct code on both
// tiers).
func TestClusteredChainDumbo(t *testing.T) {
	res, err := Run(quickMHChainSpec(protocol.DumboKind, protocol.CoinSig, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Tiers.OrderedCuts < 4*3 {
		t.Fatalf("global order holds %d cuts, want >= 12", res.Tiers.OrderedCuts)
	}
}

// TestClusteredChainLeaderCrash crashes a rotating relay leader mid-run:
// cluster 0's member 0 (the relay for local epochs 0, 4, ...) goes down
// and later recovers. Relay duty must fail over so cluster 0's cuts keep
// reaching the global tier, the crashed node must catch back up to the
// full log, and every cross-cluster check must still pass.
func TestClusteredChainLeaderCrash(t *testing.T) {
	spec := quickMHChainSpec(protocol.HoneyBadger, protocol.CoinSig, 6, 3)
	spec.Workload.GCLag = spec.Workload.Epochs // peers must hold the outage's epochs
	spec.Scenario = scenario.Plan{}.Then(
		scenario.CrashAt(20*time.Minute, 0),   // cluster 0, member 0: relay for epoch 4
		scenario.RecoverAt(80*time.Minute, 0), // back for the tail of the run
	)
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Chain.Logs[0]); got != spec.Workload.Epochs {
		t.Fatalf("crashed leader committed %d epochs after recovery, want %d", got, spec.Workload.Epochs)
	}
	if res.Tiers.OrderedCuts < 4*spec.Workload.Epochs {
		t.Fatalf("global order holds %d cuts, want >= %d despite the leader crash",
			res.Tiers.OrderedCuts, 4*spec.Workload.Epochs)
	}
}

// TestClusteredChainByzantineMember arms a Byzantine member (and, through
// it, the cluster's uplink seat) and requires the untainted clusters to
// stay safe and live: local logs agree, their cuts are all ordered with
// matching digests, and no forged cut for an untainted cluster survives
// (Run fails otherwise).
func TestClusteredChainByzantineMember(t *testing.T) {
	spec := quickMHChainSpec(protocol.HoneyBadger, protocol.CoinSig, 3, 4)
	spec.Workload.GCLag = spec.Workload.Epochs
	// Flat node 15 = cluster 3, member 3: a follower in early epochs.
	spec.Scenario = scenario.Byz(byz.NameGarbage, 15)
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	for flat, log := range res.Chain.Logs {
		if flat == 15 {
			if log != nil {
				t.Fatal("Byzantine member's log included in the honest result set")
			}
			continue
		}
		if len(log) != spec.Workload.Epochs {
			t.Fatalf("honest node %d committed %d epochs, want %d", flat, len(log), spec.Workload.Epochs)
		}
	}
	if res.Tiers.GlobalLogs[3] != nil {
		t.Fatal("tainted seat's global log included in the trusted set")
	}
	if res.Rejected == 0 {
		t.Error("garbage adversary ran but no rejections surfaced in Stats")
	}
}

// TestClusteredChainForgedCutsRejected is the tentpole's acceptance
// matrix: a Byzantine relay seat running forgecut — rewriting the cut
// records in its own global proposals to claim an untainted cluster with
// an attacker-chosen digest — commits zero forged cuts under both
// engines, whether armed from the start or mid-run. Run itself re-walks
// the committed global order and fails on any forgery carrying a valid
// certificate, so a passing run is the zero-forged-cuts proof; the
// assertions below check the attack actually fired (rejections counted)
// and the untainted clusters stayed live.
func TestClusteredChainForgedCutsRejected(t *testing.T) {
	cases := []struct {
		name   string
		proto  protocol.Kind
		target int
		seed   int64
		armAt  time.Duration // 0 = from the start
	}{
		{"acs-start", protocol.HoneyBadger, 3, 6, 0},
		{"acs-midrun", protocol.HoneyBadger, 3, 7, 8 * time.Minute},
		{"dumbo-start", protocol.DumboKind, 3, 8, 0},
		{"dumbo-midrun", protocol.DumboKind, 3, 9, 8 * time.Minute},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			spec := quickMHChainSpec(tc.proto, protocol.CoinSig, tc.target, tc.seed)
			// Flat node 15 = cluster 3, member 3; arming it also arms
			// cluster 3's relay seat on the global tier.
			spec.Scenario = scenario.Plan{}.Then(scenario.ByzAt(tc.armAt, 15, byz.NameForgeCut))
			res, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			// The three untainted clusters' cuts must all be ordered.
			if res.Tiers.OrderedCuts < 3*tc.target {
				t.Fatalf("cut order holds %d cuts, want >= %d from the untainted clusters",
					res.Tiers.OrderedCuts, 3*tc.target)
			}
			if res.Tiers.GlobalLogs[3] != nil {
				t.Fatal("forging seat's global log included in the trusted set")
			}
			if res.Tiers.CutCerts.RejectedCuts == 0 {
				t.Error("forgecut adversary ran but no cut was rejected")
			}
			if res.Rejected == 0 {
				t.Error("rejected cuts did not surface in Report.Rejected")
			}
		})
	}
}

// TestClusteredChainForgeDuringFailover combines the two hard paths: an
// untainted cluster's designated relay crashes mid-run (share
// re-collection by the taking-over relay) while a Byzantine seat forges
// cuts the whole time. The recovered relay must catch up, every
// untainted cluster's certified cuts must be ordered, and zero forged
// cuts survive (Run fails otherwise).
func TestClusteredChainForgeDuringFailover(t *testing.T) {
	spec := quickMHChainSpec(protocol.HoneyBadger, protocol.CoinSig, 6, 10)
	spec.Workload.GCLag = spec.Workload.Epochs
	spec.Scenario = scenario.Byz(byz.NameForgeCut, 15).Then(
		scenario.CrashAt(20*time.Minute, 0),   // cluster 0, member 0: relay for epoch 4
		scenario.RecoverAt(80*time.Minute, 0), // back for the tail of the run
	)
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Chain.Logs[0]); got != spec.Workload.Epochs {
		t.Fatalf("crashed relay committed %d epochs after recovery, want %d", got, spec.Workload.Epochs)
	}
	if res.Tiers.OrderedCuts < 3*spec.Workload.Epochs {
		t.Fatalf("cut order holds %d cuts, want >= %d despite crash and forgery",
			res.Tiers.OrderedCuts, 3*spec.Workload.Epochs)
	}
	if res.Tiers.CutCerts.RejectedCuts == 0 {
		t.Error("forgecut adversary ran but no cut was rejected")
	}
	if res.Rejected == 0 {
		t.Error("rejected cuts did not surface in Report.Rejected")
	}
}

// TestClusteredChainCertCostPinned pins the simulated time the cut
// certificates charge: every threshold op the driver schedules (member
// share signing, seat share verification, combining, per-seat
// certificate verification) bills the crypto cost model exactly once, so
// the charged total is a fixed linear function of the op counts. The
// fault-free 4x4 run also pins the counts themselves: one combine per
// cut, f+1 share verifications per cut, and every seat verifying every
// cut.
func TestClusteredChainCertCostPinned(t *testing.T) {
	spec := quickMHChainSpec(protocol.HoneyBadger, protocol.CoinSig, 4, 1)
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	cc := res.Tiers.CutCerts
	if cc == nil {
		t.Fatal("clustered chain report carries no cut-certificate stats")
	}
	const clusters, cuts = 4, 4 * 4 // M x target
	if cc.Combines != cuts {
		t.Errorf("combines = %d, want one per cut (%d)", cc.Combines, cuts)
	}
	if want := 2 * cuts; cc.ShareVerifies != want { // f+1 = 2 per certificate
		t.Errorf("share verifies = %d, want f+1 per cut (%d)", cc.ShareVerifies, want)
	}
	if want := clusters * cuts; cc.Verifies != want { // every seat, every cut
		t.Errorf("certificate verifies = %d, want %d (every seat verifies every cut)", cc.Verifies, want)
	}
	if cc.Signs < 2*cuts || cc.Signs > 4*cuts {
		t.Errorf("signs = %d, want between f+1 and P per cut [%d, %d]", cc.Signs, 2*cuts, 4*cuts)
	}
	if cc.RejectedCuts != 0 {
		t.Errorf("fault-free run rejected %d cuts", cc.RejectedCuts)
	}
	cost := crypto.CostFor(spec.Crypto.ThresholdSet)
	want := time.Duration(cc.Signs)*cost.TSSign +
		time.Duration(cc.ShareVerifies)*cost.TSVerifyShare +
		time.Duration(cc.Combines)*cost.TSCombine +
		time.Duration(cc.Verifies)*cost.TSVerify
	if cc.Busy != want {
		t.Errorf("charged cut-certificate time %v, want %v (op counts x cost model)", cc.Busy, want)
	}
}

// TestClusteredChainDeterministic: same Spec, same Report — the new cell
// preserves run-level determinism (cut relay, beacons, and failover all
// ride the scheduler).
func TestClusteredChainDeterministic(t *testing.T) {
	spec := quickMHChainSpec(protocol.HoneyBadger, protocol.CoinSig, 3, 5)
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Duration != b.Duration || a.Chain.CommittedTxs != b.Chain.CommittedTxs ||
		a.Accesses != b.Accesses || a.Tiers.OrderedCuts != b.Tiers.OrderedCuts {
		t.Errorf("same seed differs: %v/%d/%d/%d vs %v/%d/%d/%d",
			a.Duration, a.Chain.CommittedTxs, a.Accesses, a.Tiers.OrderedCuts,
			b.Duration, b.Chain.CommittedTxs, b.Accesses, b.Tiers.OrderedCuts)
	}
}
