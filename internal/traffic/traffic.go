// Package traffic is the open-loop client workload layer: a
// deterministic, seed-derived generator of transaction arrival processes
// from a population of simulated clients, driven off the internal/sim
// scheduler. Unlike the chain workload's legacy fixed-interval loop
// (closed-loop and gentle), an open-loop generator keeps offering load at
// its own pace regardless of how fast the system commits — which is what
// exposes saturation behavior: throughput plateaus at capacity, latency
// percentiles climb with the backlog, and mempool admission control
// (protocol.MempoolConfig.MaxPendingBytes) starts rejecting what the
// chain cannot absorb.
//
// Two arrival processes cover the load shapes a wireless deployment
// faces: Poisson (memoryless aggregate arrivals, the superposition of the
// whole client population) and OnOff (bursty Markov-modulated arrivals:
// each client alternates exponential ON bursts and OFF silences, emitting
// only while ON, so the instantaneous rate swings far above and below the
// long-run average). Both are pure functions of the seed: the same seed
// reproduces the same arrival times bit-for-bit, which the BENCH golden
// tests rely on.
package traffic

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/sim"
)

// Kind names an arrival process.
type Kind string

// The arrival-process vocabulary.
const (
	// Poisson is memoryless aggregate arrivals at Rate tx/s: the
	// superposition of the client population's independent Poisson
	// processes, generated exactly as one exponential inter-arrival
	// stream at the aggregate rate (superposition of Poisson processes
	// is Poisson with the summed rate, so the population size does not
	// change the process — only the story).
	Poisson Kind = "poisson"
	// OnOff is the bursty pattern: every client alternates exponential ON
	// bursts (mean OnMean) and OFF silences (mean OffMean), emitting
	// Poisson arrivals only while ON, scaled so the time-averaged
	// aggregate stays Rate tx/s. With OffMean >> OnMean the load arrives
	// in synchronized-looking clumps whenever several clients burst at
	// once — the tail-latency stressor Poisson hides.
	OnOff Kind = "onoff"
)

// Pattern describes one open-loop workload. The zero value is disabled:
// drivers fall back to their legacy fixed-interval submission loop.
type Pattern struct {
	Kind Kind
	// Clients is the simulated client population size (on-off state
	// machines; the Poisson aggregate is population-invariant).
	Clients int
	// Rate is the aggregate offered load in transactions per second,
	// time-averaged across the whole population.
	Rate float64
	// OnMean and OffMean are the mean per-client burst and silence
	// lengths (on-off only).
	OnMean  time.Duration
	OffMean time.Duration
}

// Enabled reports whether the pattern selects an open-loop process.
func (p Pattern) Enabled() bool { return p.Kind != "" }

// WithDefaults fills zero-valued tuning fields: 1000 clients, 2 min
// bursts, 8 min silences (a 20% duty factor, so on-off bursts run at 5x
// the average rate).
func (p Pattern) WithDefaults() Pattern {
	if !p.Enabled() {
		return p
	}
	if p.Clients <= 0 {
		p.Clients = 1000
	}
	if p.OnMean <= 0 {
		p.OnMean = 2 * time.Minute
	}
	if p.OffMean <= 0 {
		p.OffMean = 8 * time.Minute
	}
	return p
}

// Validate rejects malformed patterns. The zero (disabled) pattern is
// valid.
func (p Pattern) Validate() error {
	switch p.Kind {
	case "":
		return nil
	case Poisson, OnOff:
	default:
		return fmt.Errorf("traffic: unknown arrival kind %q (have %q, %q)", p.Kind, Poisson, OnOff)
	}
	if p.Rate <= 0 {
		return fmt.Errorf("traffic: arrival rate must be positive, got %g tx/s", p.Rate)
	}
	return nil
}

// String renders the pattern for labels and reports.
func (p Pattern) String() string {
	if !p.Enabled() {
		return "fixed-interval"
	}
	return fmt.Sprintf("%s(%g tx/s, %d clients)", p.Kind, p.Rate, p.Clients)
}

// Gen drives one Pattern on a scheduler. Each arrival invokes the submit
// callback with its global sequence number (monotonic from 0, the
// provenance contract protocol.MakeClientTx expects); the first false
// return stops the generator for good.
type Gen struct {
	sched  *sim.Scheduler
	rng    *rand.Rand
	pat    Pattern
	submit func(seq int) bool
	seq    int
	done   bool
}

// New builds a generator for a validated pattern. Its randomness is
// derived from the run seed (not the scheduler's RNG), so the arrival
// process is independent of protocol-side draw order.
func New(sched *sim.Scheduler, p Pattern, seed int64, submit func(seq int) bool) *Gen {
	return &Gen{
		sched:  sched,
		rng:    rand.New(rand.NewSource(seed ^ 0x7aff1c)),
		pat:    p.WithDefaults(),
		submit: submit,
	}
}

// Start arms the arrival process. Poisson schedules the single aggregate
// stream; on-off spawns one state machine per client.
func (g *Gen) Start() {
	switch g.pat.Kind {
	case Poisson:
		g.sched.PostAfter(g.expGap(g.pat.Rate), g.poissonArrive)
	case OnOff:
		// Scale the per-client ON rate so the population's time average
		// is Rate: each client is ON for OnMean/(OnMean+OffMean) of the
		// time.
		onFrac := float64(g.pat.OnMean) / float64(g.pat.OnMean+g.pat.OffMean)
		lambda := g.pat.Rate / float64(g.pat.Clients) / onFrac
		for i := 0; i < g.pat.Clients; i++ {
			g.startClient(lambda)
		}
	}
}

// Submitted returns how many arrivals have been offered so far.
func (g *Gen) Submitted() int { return g.seq }

// emit offers one arrival; false means the run refused it and the
// generator is done.
func (g *Gen) emit() bool {
	if g.done {
		return false
	}
	if !g.submit(g.seq) {
		g.done = true
		return false
	}
	g.seq++
	return true
}

func (g *Gen) poissonArrive() {
	if !g.emit() {
		return
	}
	g.sched.PostAfter(g.expGap(g.pat.Rate), g.poissonArrive)
}

// startClient runs one on-off state machine: an OFF silence, then an ON
// burst emitting Poisson arrivals at lambda, repeating. The initial
// silence doubles as phase desynchronization — clients do not all burst
// at t=0.
func (g *Gen) startClient(lambda float64) {
	var burst func()
	var onUntil time.Duration
	// gen invalidates a burst's leftover arrival chain: an arrival drawn
	// past the burst's end must not leak into the next burst.
	var gen int
	var schedArrive func(gap time.Duration)
	schedArrive = func(gap time.Duration) {
		myGen := gen
		g.sched.PostAfter(gap, func() {
			if g.done || myGen != gen || g.sched.Now() >= onUntil {
				return
			}
			if !g.emit() {
				return
			}
			schedArrive(g.expGap(lambda))
		})
	}
	burst = func() {
		if g.done {
			return
		}
		gen++
		on := g.expMean(g.pat.OnMean)
		onUntil = g.sched.Now() + on
		schedArrive(g.expGap(lambda))
		g.sched.PostAfter(on+g.expMean(g.pat.OffMean), burst)
	}
	g.sched.PostAfter(g.expMean(g.pat.OffMean), burst)
}

// expGap draws an exponential inter-arrival gap for rate events/s.
func (g *Gen) expGap(rate float64) time.Duration {
	return time.Duration(g.rng.ExpFloat64() / rate * float64(time.Second))
}

// expMean draws an exponential duration with the given mean.
func (g *Gen) expMean(mean time.Duration) time.Duration {
	return time.Duration(g.rng.ExpFloat64() * float64(mean))
}
