package traffic

import (
	"math"
	"testing"
	"time"

	"repro/internal/sim"
)

// collect runs a pattern until the virtual horizon and records every
// arrival time.
func collect(t *testing.T, p Pattern, seed int64, horizon time.Duration) []time.Duration {
	t.Helper()
	sched := sim.New(seed)
	var times []time.Duration
	g := New(sched, p, seed, func(seq int) bool {
		if sched.Now() >= horizon {
			return false
		}
		if seq != len(times) {
			t.Fatalf("sequence gap: got seq %d at arrival %d", seq, len(times))
		}
		times = append(times, sched.Now())
		return true
	})
	g.Start()
	sched.RunUntil(horizon)
	if g.Submitted() != len(times) {
		t.Fatalf("Submitted() = %d, recorded %d", g.Submitted(), len(times))
	}
	return times
}

func TestPoissonRate(t *testing.T) {
	horizon := 2000 * time.Second
	times := collect(t, Pattern{Kind: Poisson, Rate: 1}, 7, horizon)
	// ~2000 expected arrivals; 4 sigma is ~180.
	if n := len(times); n < 1800 || n > 2200 {
		t.Fatalf("poisson at 1 tx/s over %v: %d arrivals, want ~2000", horizon, n)
	}
}

func TestOnOffRateAndBurstiness(t *testing.T) {
	p := Pattern{Kind: OnOff, Clients: 50, Rate: 1,
		OnMean: 30 * time.Second, OffMean: 120 * time.Second}
	horizon := 4000 * time.Second
	times := collect(t, p, 3, horizon)
	if n := len(times); n < 3000 || n > 5000 {
		t.Fatalf("onoff at 1 tx/s over %v: %d arrivals, want ~4000", horizon, n)
	}
	// Burstiness: the index of dispersion (var/mean of per-window counts)
	// is 1 for Poisson and must exceed it for Markov-modulated arrivals.
	disp := func(times []time.Duration) float64 {
		window := 10 * time.Second
		counts := make([]float64, int(horizon/window))
		for _, at := range times {
			if i := int(at / window); i < len(counts) {
				counts[i]++
			}
		}
		var sum, sq float64
		for _, c := range counts {
			sum += c
		}
		mean := sum / float64(len(counts))
		for _, c := range counts {
			sq += (c - mean) * (c - mean)
		}
		return sq / float64(len(counts)) / mean
	}
	poisson := collect(t, Pattern{Kind: Poisson, Rate: 1}, 3, horizon)
	dOn, dPo := disp(times), disp(poisson)
	if dOn <= dPo {
		t.Fatalf("onoff dispersion %.2f not above poisson %.2f", dOn, dPo)
	}
}

func TestDeterminism(t *testing.T) {
	for _, p := range []Pattern{
		{Kind: Poisson, Rate: 0.5},
		{Kind: OnOff, Clients: 20, Rate: 0.5, OnMean: time.Minute, OffMean: 4 * time.Minute},
	} {
		a := collect(t, p, 11, 1000*time.Second)
		b := collect(t, p, 11, 1000*time.Second)
		if len(a) != len(b) {
			t.Fatalf("%s: %d vs %d arrivals at same seed", p.Kind, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: arrival %d at %v vs %v (same seed)", p.Kind, i, a[i], b[i])
			}
		}
		c := collect(t, p, 12, 1000*time.Second)
		if len(a) == len(c) {
			same := true
			for i := range a {
				if a[i] != c[i] {
					same = false
					break
				}
			}
			if same {
				t.Fatalf("%s: seeds 11 and 12 produced identical arrivals", p.Kind)
			}
		}
	}
}

func TestSubmitFalseStopsGenerator(t *testing.T) {
	sched := sim.New(1)
	calls := 0
	g := New(sched, Pattern{Kind: Poisson, Rate: 10}, 1, func(int) bool {
		calls++
		return calls < 5
	})
	g.Start()
	sched.RunUntil(1000 * time.Second)
	if calls != 5 {
		t.Fatalf("submit called %d times after refusal, want exactly 5", calls)
	}
	if g.Submitted() != 4 {
		t.Fatalf("Submitted() = %d after 4 accepted arrivals", g.Submitted())
	}
}

func TestPatternValidate(t *testing.T) {
	if err := (Pattern{}).Validate(); err != nil {
		t.Errorf("zero pattern must validate: %v", err)
	}
	if err := (Pattern{Kind: Poisson, Rate: 0.1}).Validate(); err != nil {
		t.Errorf("poisson: %v", err)
	}
	if err := (Pattern{Kind: "burst", Rate: 1}).Validate(); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := (Pattern{Kind: OnOff}).Validate(); err == nil {
		t.Error("zero rate accepted")
	}
	def := Pattern{Kind: OnOff, Rate: 1}.WithDefaults()
	if def.Clients <= 0 || def.OnMean <= 0 || def.OffMean <= 0 {
		t.Fatalf("WithDefaults left zeros: %+v", def)
	}
	if (Pattern{}).Enabled() || !def.Enabled() {
		t.Error("Enabled wrong")
	}
	if (Pattern{}).String() != "fixed-interval" {
		t.Error("zero pattern String")
	}
}

func TestOnOffApproachesConfiguredAverage(t *testing.T) {
	// Long-horizon sanity at a low duty factor: the time-averaged rate
	// must track Rate even though the instantaneous ON rate is 5x it.
	p := Pattern{Kind: OnOff, Clients: 100, Rate: 2,
		OnMean: 20 * time.Second, OffMean: 80 * time.Second}
	horizon := 5000 * time.Second
	n := float64(len(collect(t, p, 9, horizon)))
	want := 2 * horizon.Seconds()
	if math.Abs(n-want)/want > 0.15 {
		t.Fatalf("onoff long-run rate: %v arrivals, want within 15%% of %v", n, want)
	}
}
