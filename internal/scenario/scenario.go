// Package scenario is the scripted fault-scenario engine: a Plan is an
// ordered set of timed events — node crashes and recoveries, network
// partitions, loss and jamming bursts, the asynchronous delay adversary,
// and active-Byzantine behavior activation — that a driver compiles onto
// the wireless delivery hook and its node lifecycle. One engine drives
// one simulation; its randomness is derived from the run seed, so a
// scenario is as reproducible as the rest of the simulation.
//
// The same Plan runs against every cell of the run.Spec experiment
// matrix (internal/run); what differs is the lifecycle the driver
// exposes. The one-shot drivers rejoin a recovered node at the next
// epoch boundary; the chain drivers rejoin it mid-run through
// core.Mux.OnUnknownEpoch and NACK retransmission catch-up; the
// clustered drivers map flat node ids onto cluster channels and carry
// byz behaviors onto the global tier.
package scenario

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Kind names a scripted fault event type.
type Kind string

// The event vocabulary.
const (
	KindCrash     Kind = "crash"     // node goes off the air, memory lost
	KindRecover   Kind = "recover"   // node rejoins with stable storage only
	KindPartition Kind = "partition" // frames cross groups are dropped
	KindHeal      Kind = "heal"      // partition ends
	KindLoss      Kind = "loss"      // elevated random loss for a window
	KindJam       Kind = "jam"       // total loss for a window (interference burst)
	KindDelay     Kind = "delay"     // the paper's asynchronous delay adversary
	KindByz       Kind = "byz"       // node turns actively Byzantine (internal/byz)
	KindMobility  Kind = "mobility"  // random-waypoint motion re-derives link quality
	KindDutyCycle Kind = "dutycycle" // radios sleep on staggered on/off schedules
	KindChurn     Kind = "churn"     // recurring crash-and-rejoin of random nodes
)

// Kinds lists the full event vocabulary. The DSL docs tests check that
// every kind is documented in the Parse grammar and EXPERIMENTS.md.
func Kinds() []Kind {
	return []Kind{KindCrash, KindRecover, KindPartition, KindHeal,
		KindLoss, KindJam, KindDelay, KindByz,
		KindMobility, KindDutyCycle, KindChurn}
}

// Event is one timed scripted fault.
type Event struct {
	At   time.Duration
	Kind Kind
	// Node is the crash/recover target.
	Node int
	// Groups partitions the node-id space; frames between different groups
	// (or to/from a node in no group) are dropped. Nil outside partitions.
	Groups [][]int
	// Prob is the per-delivery probability for loss and delay events.
	Prob float64
	// Max bounds the extra delivery delay drawn by the delay adversary.
	Max time.Duration
	// Duration bounds loss/jam/delay windows; 0 means until the run ends.
	Duration time.Duration
	// Behavior names the byz event's active-Byzantine behavior (one of
	// internal/byz.Names; drivers validate before the run starts).
	Behavior string
	// Speed is the mobility event's node speed in metres per second.
	Speed float64
	// Range is the mobility event's radio range in metres (on the engine's
	// fixed 1 km x 1 km field); pairs farther apart cannot hear each other.
	Range float64
	// Period is the dutycycle event's full on+off cycle length, and the
	// churn event's interval between crash draws.
	Period time.Duration
	// Downtime is how long each churned node stays down before rejoining.
	Downtime time.Duration
}

// Plan is a scripted fault scenario. The zero value is the fault-free run.
type Plan struct {
	Events []Event
}

// CrashAt schedules a crash of one node: it stops sending, its radio queue
// is flushed, inbound frames are discarded, and its in-memory protocol
// state is lost. Committed state (the SMR log, mempool digests) survives,
// modelling a process crash with stable storage.
func CrashAt(at time.Duration, nd int) Event {
	return Event{At: at, Kind: KindCrash, Node: nd}
}

// RecoverAt schedules the recovery of a crashed node. How it rejoins is
// driver-specific: the one-shot drivers re-admit it at the next epoch
// boundary; the SMR driver restarts its chain engine at the commit
// frontier and lets it catch up over NACK retransmission.
func RecoverAt(at time.Duration, nd int) Event {
	return Event{At: at, Kind: KindRecover, Node: nd}
}

// PartitionAt splits the network: frames between nodes in different groups
// (or involving a node listed in no group) are dropped until HealAt.
func PartitionAt(at time.Duration, groups ...[]int) Event {
	return Event{At: at, Kind: KindPartition, Groups: groups}
}

// HealAt ends the current partition.
func HealAt(at time.Duration) Event {
	return Event{At: at, Kind: KindHeal}
}

// LossBurst raises the per-delivery drop probability to prob for dur
// (0 = rest of the run) — bursty interference.
func LossBurst(at, dur time.Duration, prob float64) Event {
	return Event{At: at, Kind: KindLoss, Prob: prob, Duration: dur}
}

// JamAt blanks the channel entirely for dur: every delivery in the window
// is dropped. Equivalent to LossBurst with probability 1.
func JamAt(at, dur time.Duration) Event {
	return Event{At: at, Kind: KindJam, Prob: 1, Duration: dur}
}

// DelayFrom activates the asynchronous delay adversary from at (for dur;
// 0 = rest of the run): each delivery is independently delayed by up to
// max with probability prob.
func DelayFrom(at time.Duration, prob float64, max time.Duration, dur time.Duration) Event {
	return Event{At: at, Kind: KindDelay, Prob: prob, Max: max, Duration: dur}
}

// ByzAt schedules a node turning actively Byzantine: from at onwards its
// outbound component state is rewritten by the named behavior (see
// internal/byz). The node stays Byzantine for the rest of the run —
// drivers exclude it from completion barriers and safety checks, which
// cover honest nodes only.
func ByzAt(at time.Duration, nd int, behavior string) Event {
	return Event{At: at, Kind: KindByz, Node: nd, Behavior: behavior}
}

// MobilityFrom puts every node in random-waypoint motion from at (for
// dur; 0 = rest of the run) on a 1 km x 1 km field: each node walks to
// uniformly drawn waypoints at the given speed (m/s), and a delivery is
// dropped outright when the pair is out of radio range (metres), with
// distance-graded loss inside it. Node trajectories derive from the run
// seed.
func MobilityFrom(at, dur time.Duration, speed, radioRange float64) Event {
	return Event{At: at, Kind: KindMobility, Duration: dur, Speed: speed, Range: radioRange}
}

// DutyCycleFrom puts every radio on an on/off sleep schedule from at (for
// dur; 0 = rest of the run): each node is awake for onFrac of every
// period, with per-node phase offsets staggered by the golden ratio so
// the network never sleeps in lockstep. A delivery is dropped when either
// endpoint is asleep.
func DutyCycleFrom(at, dur time.Duration, onFrac float64, period time.Duration) Event {
	return Event{At: at, Kind: KindDutyCycle, Duration: dur, Prob: onFrac, Period: period}
}

// ChurnFrom runs recurring churn from at (for dur; 0 = rest of the run):
// every period one uniformly drawn node crashes and rejoins downtime
// later through the driver's recovery path (the chain drivers catch the
// rejoiner up over NACK retransmission — keep downtime within the GCLag
// horizon or the rejoiner is stranded).
func ChurnFrom(at, dur time.Duration, period, downtime time.Duration) Event {
	return Event{At: at, Kind: KindChurn, Duration: dur, Period: period, Downtime: downtime}
}

// Byz is the static adversary plan: the listed nodes run the behavior
// from the start.
func Byz(behavior string, nodes ...int) Plan {
	p := Plan{}
	for _, nd := range nodes {
		p.Events = append(p.Events, ByzAt(0, nd, behavior))
	}
	return p
}

// Crash is the classic static fault plan: the listed nodes are down from
// the start and never recover.
func Crash(nodes ...int) Plan {
	p := Plan{}
	for _, nd := range nodes {
		p.Events = append(p.Events, CrashAt(0, nd))
	}
	return p
}

// Delay is the delay-adversary-only plan active for the whole run.
func Delay(prob float64, max time.Duration) Plan {
	return Plan{Events: []Event{DelayFrom(0, prob, max, 0)}}
}

// Then appends events, returning the plan for chaining.
func (p Plan) Then(evs ...Event) Plan {
	p.Events = append(append([]Event(nil), p.Events...), evs...)
	return p
}

// Empty reports whether the plan has no events (fault-free run).
func (p Plan) Empty() bool { return len(p.Events) == 0 }

// DownForever returns the nodes that crash and never recover afterwards.
// Drivers exclude them from completion barriers: waiting on a node that is
// scripted to stay dead would deadline every run.
func (p Plan) DownForever() map[int]bool {
	last := map[int]Event{}
	for _, e := range p.sorted() {
		if e.Kind == KindCrash || e.Kind == KindRecover {
			prev, ok := last[e.Node]
			if !ok || e.At > prev.At || (e.At == prev.At && e.Kind == KindRecover) {
				last[e.Node] = e
			}
		}
	}
	down := map[int]bool{}
	for nd, e := range last {
		if e.Kind == KindCrash {
			down[nd] = true
		}
	}
	return down
}

// ByzNodes returns every node a byz event ever targets. A node is
// untrusted for the whole run once scripted to misbehave at any point,
// so drivers use this set to scope barriers and safety checks to the
// honest nodes.
func (p Plan) ByzNodes() map[int]bool {
	out := map[int]bool{}
	for _, e := range p.Events {
		if e.Kind == KindByz {
			out[e.Node] = true
		}
	}
	return out
}

// CrashedNodes returns every node a crash event targets, recovered or not.
func (p Plan) CrashedNodes() []int {
	seen := map[int]bool{}
	var out []int
	for _, e := range p.Events {
		if e.Kind == KindCrash && !seen[e.Node] {
			seen[e.Node] = true
			out = append(out, e.Node)
		}
	}
	sort.Ints(out)
	return out
}

// sorted returns the events in firing order (stable on equal times).
func (p Plan) sorted() []Event {
	evs := append([]Event(nil), p.Events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return evs
}

// String renders the plan in the -scenario DSL (see Parse).
func (p Plan) String() string {
	if p.Empty() {
		return "fault-free"
	}
	parts := make([]string, 0, len(p.Events))
	for _, e := range p.Events {
		parts = append(parts, e.String())
	}
	return strings.Join(parts, ";")
}

// String renders one event in the DSL.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s@%s", e.Kind, e.At)
	if e.Duration > 0 {
		fmt.Fprintf(&b, "+%s", e.Duration)
	}
	switch e.Kind {
	case KindCrash, KindRecover:
		fmt.Fprintf(&b, ":%d", e.Node)
	case KindPartition:
		groups := make([]string, 0, len(e.Groups))
		for _, g := range e.Groups {
			ids := make([]string, 0, len(g))
			for _, nd := range g {
				ids = append(ids, fmt.Sprint(nd))
			}
			groups = append(groups, strings.Join(ids, ","))
		}
		fmt.Fprintf(&b, ":%s", strings.Join(groups, "/"))
	case KindLoss:
		fmt.Fprintf(&b, ":%g", e.Prob)
	case KindDelay:
		fmt.Fprintf(&b, ":%g,%s", e.Prob, e.Max)
	case KindByz:
		fmt.Fprintf(&b, ":%d:%s", e.Node, e.Behavior)
	case KindMobility:
		fmt.Fprintf(&b, ":%g,%g", e.Speed, e.Range)
	case KindDutyCycle:
		fmt.Fprintf(&b, ":%g,%s", e.Prob, e.Period)
	case KindChurn:
		fmt.Fprintf(&b, ":%s,%s", e.Period, e.Downtime)
	}
	return b.String()
}
