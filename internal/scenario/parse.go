package scenario

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Parse reads the -scenario DSL: events separated by ';', each of the form
//
//	kind[@at[+duration]][:args]
//
// with times in Go duration syntax. The full event vocabulary (every
// scenario.Kind), one example each:
//
//	crash@30m:3                   crash node 3 at t=30m
//	recover@55m:3                 recover node 3 at t=55m
//	partition@10m:0,1/2,3         split {0,1} from {2,3} at t=10m
//	heal@20m                      end the partition
//	loss@5m+90s:0.5               50% delivery loss for 90s
//	jam@5m+60s                    total loss for 60s
//	delay:0.25,10s                delay adversary for the whole run
//	delay@1h+30m:0.25,10s         ... for 30m starting at t=1h
//	byz@0s:3:equivocate           node 3 is actively Byzantine from t=0
//	mobility@0s+2h:25,800         random-waypoint motion at 25 m/s,
//	                              800 m radio range, for 2h
//	dutycycle@0s:0.6,90s          radios awake 60% of each 90s cycle
//	churn@10m+2h:20m,5m           every 20m a random node crashes and
//	                              rejoins 5m later, for 2h
//
// byz behaviors are "equivocate", "withhold", "garbage", "flipvotes",
// and "forgecut" (internal/byz); Parse accepts any token and the driver
// validates it against the byz vocabulary before the run starts.
//
// The empty string and "fault-free" parse to the empty plan.
func Parse(spec string) (Plan, error) {
	var p Plan
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "fault-free" {
		return p, nil
	}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ev, err := parseEvent(part)
		if err != nil {
			return Plan{}, fmt.Errorf("scenario: %q: %w", part, err)
		}
		p.Events = append(p.Events, ev)
	}
	return p, nil
}

// MustParse is Parse for trusted literals (tests, benches); it panics on error.
func MustParse(spec string) Plan {
	p, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return p
}

func parseEvent(s string) (Event, error) {
	head, args := s, ""
	if i := strings.IndexByte(s, ':'); i >= 0 {
		head, args = s[:i], s[i+1:]
	}
	kind := head
	var at, dur time.Duration
	if i := strings.IndexByte(head, '@'); i >= 0 {
		kind = head[:i]
		timing := head[i+1:]
		durSpec := ""
		if j := strings.IndexByte(timing, '+'); j >= 0 {
			timing, durSpec = timing[:j], timing[j+1:]
		}
		var err error
		if at, err = time.ParseDuration(timing); err != nil {
			return Event{}, fmt.Errorf("bad time %q: %w", timing, err)
		}
		if durSpec != "" {
			if dur, err = time.ParseDuration(durSpec); err != nil {
				return Event{}, fmt.Errorf("bad duration %q: %w", durSpec, err)
			}
		}
	}

	switch Kind(kind) {
	case KindCrash, KindRecover:
		nd, err := strconv.Atoi(args)
		if err != nil {
			return Event{}, fmt.Errorf("bad node id %q", args)
		}
		if Kind(kind) == KindCrash {
			return CrashAt(at, nd), nil
		}
		return RecoverAt(at, nd), nil
	case KindPartition:
		if args == "" {
			return Event{}, fmt.Errorf("partition needs groups, e.g. 0,1/2,3")
		}
		var groups [][]int
		for _, gspec := range strings.Split(args, "/") {
			var g []int
			for _, idSpec := range strings.Split(gspec, ",") {
				nd, err := strconv.Atoi(strings.TrimSpace(idSpec))
				if err != nil {
					return Event{}, fmt.Errorf("bad node id %q", idSpec)
				}
				g = append(g, nd)
			}
			groups = append(groups, g)
		}
		return PartitionAt(at, groups...), nil
	case KindHeal:
		return HealAt(at), nil
	case KindLoss:
		prob, err := strconv.ParseFloat(args, 64)
		if err != nil || prob < 0 || prob > 1 {
			return Event{}, fmt.Errorf("bad loss probability %q", args)
		}
		return LossBurst(at, dur, prob), nil
	case KindJam:
		return JamAt(at, dur), nil
	case KindDelay:
		fields := strings.SplitN(args, ",", 2)
		if len(fields) != 2 {
			return Event{}, fmt.Errorf("delay needs prob,maxDelay (e.g. 0.25,10s)")
		}
		prob, err := strconv.ParseFloat(fields[0], 64)
		if err != nil || prob < 0 || prob > 1 {
			return Event{}, fmt.Errorf("bad delay probability %q", fields[0])
		}
		max, err := time.ParseDuration(fields[1])
		if err != nil || max <= 0 {
			return Event{}, fmt.Errorf("bad delay bound %q", fields[1])
		}
		return DelayFrom(at, prob, max, dur), nil
	case KindByz:
		fields := strings.SplitN(args, ":", 2)
		if len(fields) != 2 || fields[1] == "" {
			return Event{}, fmt.Errorf("byz needs node:behavior (e.g. 3:equivocate)")
		}
		nd, err := strconv.Atoi(strings.TrimSpace(fields[0]))
		if err != nil {
			return Event{}, fmt.Errorf("bad node id %q", fields[0])
		}
		return ByzAt(at, nd, fields[1]), nil
	case KindMobility:
		fields := strings.SplitN(args, ",", 2)
		if len(fields) != 2 {
			return Event{}, fmt.Errorf("mobility needs speed,range (e.g. 25,800)")
		}
		speed, err := strconv.ParseFloat(fields[0], 64)
		if err != nil || speed <= 0 {
			return Event{}, fmt.Errorf("bad mobility speed %q", fields[0])
		}
		rng, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || rng <= 0 {
			return Event{}, fmt.Errorf("bad mobility range %q", fields[1])
		}
		return MobilityFrom(at, dur, speed, rng), nil
	case KindDutyCycle:
		fields := strings.SplitN(args, ",", 2)
		if len(fields) != 2 {
			return Event{}, fmt.Errorf("dutycycle needs onFrac,period (e.g. 0.6,90s)")
		}
		frac, err := strconv.ParseFloat(fields[0], 64)
		if err != nil || frac <= 0 || frac > 1 {
			return Event{}, fmt.Errorf("bad dutycycle on-fraction %q", fields[0])
		}
		period, err := time.ParseDuration(fields[1])
		if err != nil || period <= 0 {
			return Event{}, fmt.Errorf("bad dutycycle period %q", fields[1])
		}
		return DutyCycleFrom(at, dur, frac, period), nil
	case KindChurn:
		fields := strings.SplitN(args, ",", 2)
		if len(fields) != 2 {
			return Event{}, fmt.Errorf("churn needs period,downtime (e.g. 20m,5m)")
		}
		period, err := time.ParseDuration(fields[0])
		if err != nil || period <= 0 {
			return Event{}, fmt.Errorf("bad churn period %q", fields[0])
		}
		down, err := time.ParseDuration(fields[1])
		if err != nil || down <= 0 {
			return Event{}, fmt.Errorf("bad churn downtime %q", fields[1])
		}
		return ChurnFrom(at, dur, period, down), nil
	default:
		return Event{}, fmt.Errorf("unknown event kind %q", kind)
	}
}
