package scenario

import (
	"math/rand"
	"time"

	"repro/internal/sim"
	"repro/internal/wireless"
)

// Lifecycle is the driver-side interface the engine drives crash and
// recovery events through. Implementations must be idempotent: crashing a
// dead node or recovering a live one is a no-op.
type Lifecycle interface {
	CrashNode(i int)
	RecoverNode(i int)
}

// ByzLifecycle is the optional extension a Lifecycle implements to
// support byz events: arm the named active-Byzantine behavior on a node.
// Drivers validate behavior names before the run, so implementations may
// treat them as trusted.
type ByzLifecycle interface {
	SetByzantine(i int, behavior string)
}

// Engine compiles one Plan onto a running simulation: timed events fire on
// the scheduler, network effects apply through delivery hooks installed on
// one or more channels, and crash/recovery flows through the Lifecycle.
// All randomness (loss draws, delay draws) comes from a generator derived
// from the run seed, so different seeds see different adversary behaviour
// and identical seeds reproduce exactly.
type Engine struct {
	sched *sim.Scheduler
	rng   *rand.Rand
	life  Lifecycle

	group     map[int]int // node -> partition group; nil = healed
	lossProb  float64
	lossGen   int // invalidates a burst's scheduled clear when superseded
	delayProb float64
	delayMax  time.Duration
	delayGen  int
}

// Start schedules a plan's events on the scheduler and returns the engine.
// life may be nil when the plan contains no crash/recover events (or when
// the caller only wants the delivery-level effects). Install the returned
// engine's Hook on every channel the scenario should affect.
func Start(sched *sim.Scheduler, plan Plan, seed int64, life Lifecycle) *Engine {
	e := &Engine{
		sched: sched,
		// Derived from the run seed (not a constant): different seeds must
		// see different adversary randomness.
		rng:  rand.New(rand.NewSource(seed ^ 0x05CEA210)),
		life: life,
	}
	for _, ev := range plan.sorted() {
		ev := ev
		switch ev.Kind {
		case KindCrash:
			sched.Post(ev.At, func() {
				if e.life != nil {
					e.life.CrashNode(ev.Node)
				}
			})
		case KindRecover:
			sched.Post(ev.At, func() {
				if e.life != nil {
					e.life.RecoverNode(ev.Node)
				}
			})
		case KindByz:
			sched.Post(ev.At, func() {
				if bl, ok := e.life.(ByzLifecycle); ok {
					bl.SetByzantine(ev.Node, ev.Behavior)
				}
			})
		case KindPartition:
			sched.Post(ev.At, func() {
				e.group = make(map[int]int)
				for g, ids := range ev.Groups {
					for _, nd := range ids {
						e.group[nd] = g
					}
				}
			})
		case KindHeal:
			sched.Post(ev.At, func() { e.group = nil })
		case KindLoss, KindJam:
			sched.Post(ev.At, func() {
				e.lossProb = ev.Prob
				e.lossGen++
				gen := e.lossGen
				if ev.Duration > 0 {
					sched.Post(ev.At+ev.Duration, func() {
						if e.lossGen == gen {
							e.lossProb = 0
						}
					})
				}
			})
		case KindDelay:
			sched.Post(ev.At, func() {
				e.delayProb, e.delayMax = ev.Prob, ev.Max
				e.delayGen++
				gen := e.delayGen
				if ev.Duration > 0 {
					sched.Post(ev.At+ev.Duration, func() {
						if e.delayGen == gen {
							e.delayProb, e.delayMax = 0, 0
						}
					})
				}
			})
		}
	}
	return e
}

// Hook returns the delivery hook for a channel whose station IDs are the
// scenario's node indices directly (single-hop deployments).
func (e *Engine) Hook() wireless.DeliveryHook {
	return e.HookMapped(func(id wireless.NodeID) int { return int(id) })
}

// HookMapped returns a delivery hook for a channel whose station IDs must
// first be translated into scenario node indices (multihop clusters attach
// stations 0..N_i-1 on every cluster channel; the driver maps them to flat
// node indices).
func (e *Engine) HookMapped(mapID func(wireless.NodeID) int) wireless.DeliveryHook {
	return func(from, to wireless.NodeID, _ []byte) (time.Duration, bool) {
		return e.apply(mapID(from), mapID(to), true)
	}
}

// HookNetOnly returns a hook that applies only the network-level effects
// (loss bursts, jamming, the delay adversary) and ignores partitions —
// used for tiers whose station IDs do not live in the scenario's node-id
// space, like the multihop global channel.
func (e *Engine) HookNetOnly() wireless.DeliveryHook {
	return func(from, to wireless.NodeID, _ []byte) (time.Duration, bool) {
		return e.apply(int(from), int(to), false)
	}
}

// apply evaluates the current network state for one delivery.
func (e *Engine) apply(from, to int, partitions bool) (time.Duration, bool) {
	if partitions && e.group != nil {
		gf, okf := e.group[from]
		gt, okt := e.group[to]
		if !okf || !okt || gf != gt {
			return 0, true
		}
	}
	if e.lossProb > 0 && e.rng.Float64() < e.lossProb {
		return 0, true
	}
	if e.delayProb > 0 && e.delayMax > 0 && e.rng.Float64() < e.delayProb {
		return time.Duration(e.rng.Int63n(int64(e.delayMax))), false
	}
	return 0, false
}
