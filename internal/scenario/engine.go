package scenario

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/sim"
	"repro/internal/wireless"
)

// Lifecycle is the driver-side interface the engine drives crash and
// recovery events through. Implementations must be idempotent: crashing a
// dead node or recovering a live one is a no-op.
type Lifecycle interface {
	CrashNode(i int)
	RecoverNode(i int)
}

// ByzLifecycle is the optional extension a Lifecycle implements to
// support byz events: arm the named active-Byzantine behavior on a node.
// Drivers validate behavior names before the run, so implementations may
// treat them as trusted.
type ByzLifecycle interface {
	SetByzantine(i int, behavior string)
}

// Sizer is the optional extension a Lifecycle implements to support
// churn events, which draw victims uniformly and so need to know how
// many nodes exist. Churn events are silently inert without it.
type Sizer interface {
	NodeCount() int
}

// mobilityField is the fixed field edge (metres) mobility events walk
// nodes across; the DSL parameterizes speed and radio range instead.
const mobilityField = 1000.0

// mobilityEdgeLoss is the loss probability a pair sees at the very edge
// of radio range; loss inside the range grades quadratically down to
// zero at distance zero.
const mobilityEdgeLoss = 0.5

// Engine compiles one Plan onto a running simulation: timed events fire on
// the scheduler, network effects apply through delivery hooks installed on
// one or more channels, and crash/recovery flows through the Lifecycle.
// All randomness (loss draws, delay draws) comes from a generator derived
// from the run seed, so different seeds see different adversary behaviour
// and identical seeds reproduce exactly.
type Engine struct {
	sched *sim.Scheduler
	rng   *rand.Rand
	life  Lifecycle

	group     map[int]int // node -> partition group; nil = healed
	lossProb  float64
	lossGen   int // invalidates a burst's scheduled clear when superseded
	delayProb float64
	delayMax  time.Duration
	delayGen  int

	mob      *wireless.Waypoint // nil = no mobility window active
	mobRange float64
	mobGen   int

	dutyFrac   float64 // 0 = no duty-cycle window active
	dutyPeriod time.Duration
	dutyStart  time.Duration
	dutyGen    int

	churned map[int]bool // nodes currently down to churn (no double-crash)
}

// Start schedules a plan's events on the scheduler and returns the engine.
// life may be nil when the plan contains no crash/recover events (or when
// the caller only wants the delivery-level effects). Install the returned
// engine's Hook on every channel the scenario should affect.
func Start(sched *sim.Scheduler, plan Plan, seed int64, life Lifecycle) *Engine {
	e := &Engine{
		sched: sched,
		// Derived from the run seed (not a constant): different seeds must
		// see different adversary randomness.
		rng:     rand.New(rand.NewSource(seed ^ 0x05CEA210)),
		life:    life,
		churned: make(map[int]bool),
	}
	for _, ev := range plan.sorted() {
		ev := ev
		switch ev.Kind {
		case KindCrash:
			sched.Post(ev.At, func() {
				if e.life != nil {
					e.life.CrashNode(ev.Node)
				}
			})
		case KindRecover:
			sched.Post(ev.At, func() {
				if e.life != nil {
					e.life.RecoverNode(ev.Node)
				}
			})
		case KindByz:
			sched.Post(ev.At, func() {
				if bl, ok := e.life.(ByzLifecycle); ok {
					bl.SetByzantine(ev.Node, ev.Behavior)
				}
			})
		case KindPartition:
			sched.Post(ev.At, func() {
				e.group = make(map[int]int)
				for g, ids := range ev.Groups {
					for _, nd := range ids {
						e.group[nd] = g
					}
				}
			})
		case KindHeal:
			sched.Post(ev.At, func() { e.group = nil })
		case KindLoss, KindJam:
			sched.Post(ev.At, func() {
				e.lossProb = ev.Prob
				e.lossGen++
				gen := e.lossGen
				if ev.Duration > 0 {
					sched.Post(ev.At+ev.Duration, func() {
						if e.lossGen == gen {
							e.lossProb = 0
						}
					})
				}
			})
		case KindDelay:
			sched.Post(ev.At, func() {
				e.delayProb, e.delayMax = ev.Prob, ev.Max
				e.delayGen++
				gen := e.delayGen
				if ev.Duration > 0 {
					sched.Post(ev.At+ev.Duration, func() {
						if e.delayGen == gen {
							e.delayProb, e.delayMax = 0, 0
						}
					})
				}
			})
		case KindMobility:
			sched.Post(ev.At, func() {
				e.mob = wireless.NewWaypoint(mobilityField, ev.Speed, e.rng.Int63())
				e.mobRange = ev.Range
				e.mobGen++
				gen := e.mobGen
				if ev.Duration > 0 {
					sched.Post(ev.At+ev.Duration, func() {
						if e.mobGen == gen {
							e.mob, e.mobRange = nil, 0
						}
					})
				}
			})
		case KindDutyCycle:
			sched.Post(ev.At, func() {
				e.dutyFrac, e.dutyPeriod, e.dutyStart = ev.Prob, ev.Period, sched.Now()
				e.dutyGen++
				gen := e.dutyGen
				if ev.Duration > 0 {
					sched.Post(ev.At+ev.Duration, func() {
						if e.dutyGen == gen {
							e.dutyFrac, e.dutyPeriod = 0, 0
						}
					})
				}
			})
		case KindChurn:
			until := time.Duration(0) // 0 = whole run
			if ev.Duration > 0 {
				until = ev.At + ev.Duration
			}
			var tick func()
			tick = func() {
				sz, ok := e.life.(Sizer)
				if !ok {
					return // driver cannot size the deployment; churn is inert
				}
				if until > 0 && sched.Now() >= until {
					return
				}
				victim := e.rng.Intn(sz.NodeCount())
				if !e.churned[victim] {
					e.churned[victim] = true
					e.life.CrashNode(victim)
					sched.PostAfter(ev.Downtime, func() {
						delete(e.churned, victim)
						e.life.RecoverNode(victim)
					})
				}
				sched.PostAfter(ev.Period, tick)
			}
			sched.Post(ev.At+ev.Period, tick)
		}
	}
	return e
}

// Hook returns the delivery hook for a channel whose station IDs are the
// scenario's node indices directly (single-hop deployments).
func (e *Engine) Hook() wireless.DeliveryHook {
	return e.HookMapped(func(id wireless.NodeID) int { return int(id) })
}

// HookMapped returns a delivery hook for a channel whose station IDs must
// first be translated into scenario node indices (multihop clusters attach
// stations 0..N_i-1 on every cluster channel; the driver maps them to flat
// node indices).
func (e *Engine) HookMapped(mapID func(wireless.NodeID) int) wireless.DeliveryHook {
	return func(from, to wireless.NodeID, _ []byte) (time.Duration, bool) {
		return e.apply(mapID(from), mapID(to), true)
	}
}

// HookNetOnly returns a hook that applies only the network-level effects
// (loss bursts, jamming, the delay adversary) and ignores the effects
// keyed by scenario node id (partitions, mobility, duty-cycling) — used
// for tiers whose station IDs do not live in the scenario's node-id
// space, like the multihop global channel.
func (e *Engine) HookNetOnly() wireless.DeliveryHook {
	return func(from, to wireless.NodeID, _ []byte) (time.Duration, bool) {
		return e.apply(int(from), int(to), false)
	}
}

// apply evaluates the current network state for one delivery. nodeSpace
// reports whether from/to are scenario node ids; the id-keyed effects
// (partitions, duty-cycle sleep, mobility range) only fire when they are.
func (e *Engine) apply(from, to int, nodeSpace bool) (time.Duration, bool) {
	if nodeSpace && e.group != nil {
		gf, okf := e.group[from]
		gt, okt := e.group[to]
		if !okf || !okt || gf != gt {
			return 0, true
		}
	}
	if nodeSpace && e.dutyFrac > 0 && e.dutyPeriod > 0 {
		if e.asleep(from) || e.asleep(to) {
			return 0, true
		}
	}
	if nodeSpace && e.mob != nil {
		d := e.mob.Dist(from, to, e.sched.Now())
		if d >= e.mobRange {
			return 0, true // out of radio range
		}
		// Inside range, loss grades quadratically with distance: near
		// pairs are clean, edge-of-range pairs lossy.
		frac := d / e.mobRange
		if e.rng.Float64() < frac*frac*mobilityEdgeLoss {
			return 0, true
		}
	}
	if e.lossProb > 0 && e.rng.Float64() < e.lossProb {
		return 0, true
	}
	if e.delayProb > 0 && e.delayMax > 0 && e.rng.Float64() < e.delayProb {
		return time.Duration(e.rng.Int63n(int64(e.delayMax))), false
	}
	return 0, false
}

// asleep reports whether a node's radio is in the off part of its duty
// cycle. Per-node phases are staggered by the golden ratio so awake
// windows interleave instead of the whole network sleeping in lockstep.
func (e *Engine) asleep(nd int) bool {
	phase := time.Duration(float64(e.dutyPeriod) * goldenFrac(nd))
	into := (e.sched.Now() - e.dutyStart + phase) % e.dutyPeriod
	return into >= time.Duration(float64(e.dutyPeriod)*e.dutyFrac)
}

// goldenFrac returns frac(i * golden ratio), the low-discrepancy phase
// offset for node i.
func goldenFrac(i int) float64 {
	_, f := math.Modf(float64(i) * 0.6180339887498949)
	return f
}
