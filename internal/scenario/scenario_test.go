package scenario

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/wireless"
)

type recorder struct {
	crashes, recovers []struct {
		node int
		at   time.Duration
	}
	byzed []struct {
		node     int
		behavior string
	}
	sched *sim.Scheduler
}

func (r *recorder) CrashNode(i int) {
	r.crashes = append(r.crashes, struct {
		node int
		at   time.Duration
	}{i, r.sched.Now()})
}

func (r *recorder) RecoverNode(i int) {
	r.recovers = append(r.recovers, struct {
		node int
		at   time.Duration
	}{i, r.sched.Now()})
}

func (r *recorder) SetByzantine(i int, behavior string) {
	r.byzed = append(r.byzed, struct {
		node     int
		behavior string
	}{i, behavior})
}

func TestEngineFiresLifecycleEvents(t *testing.T) {
	sched := sim.New(1)
	rec := &recorder{sched: sched}
	plan := Plan{}.Then(CrashAt(time.Minute, 2), RecoverAt(3*time.Minute, 2))
	Start(sched, plan, 1, rec)
	sched.Run()
	if len(rec.crashes) != 1 || rec.crashes[0].node != 2 || rec.crashes[0].at != time.Minute {
		t.Fatalf("crashes = %+v", rec.crashes)
	}
	if len(rec.recovers) != 1 || rec.recovers[0].node != 2 || rec.recovers[0].at != 3*time.Minute {
		t.Fatalf("recovers = %+v", rec.recovers)
	}
}

func TestEngineFiresByzEvents(t *testing.T) {
	sched := sim.New(1)
	rec := &recorder{sched: sched}
	Start(sched, Plan{}.Then(ByzAt(2*time.Minute, 3, "equivocate")), 1, rec)
	sched.Run()
	if len(rec.byzed) != 1 || rec.byzed[0].node != 3 || rec.byzed[0].behavior != "equivocate" {
		t.Fatalf("byzed = %+v", rec.byzed)
	}
	// A lifecycle without the ByzLifecycle extension must be skipped, not
	// crash the engine.
	sched2 := sim.New(1)
	plain := struct{ Lifecycle }{}
	Start(sched2, Plan{}.Then(ByzAt(time.Minute, 1, "garbage")), 1, plain)
	sched2.Run()
}

func TestByzNodes(t *testing.T) {
	p := Plan{}.Then(
		ByzAt(0, 3, "garbage"),
		ByzAt(30*time.Minute, 1, "withhold"),
		CrashAt(time.Minute, 2),
	)
	b := p.ByzNodes()
	if len(b) != 2 || !b[3] || !b[1] {
		t.Fatalf("ByzNodes = %v, want {1, 3}", b)
	}
	if got := Byz("flipvotes", 0, 2).ByzNodes(); len(got) != 2 || !got[0] || !got[2] {
		t.Fatalf("Byz plan nodes = %v", got)
	}
}

func TestEnginePartitionAndHeal(t *testing.T) {
	sched := sim.New(1)
	eng := Start(sched, Plan{}.Then(
		PartitionAt(time.Minute, []int{0, 1}, []int{2, 3}),
		HealAt(2*time.Minute),
	), 1, nil)
	hook := eng.Hook()
	drop := func(from, to wireless.NodeID) bool {
		_, d := hook(from, to, nil)
		return d
	}
	if drop(0, 3) {
		t.Error("dropped before partition")
	}
	sched.RunUntil(time.Minute)
	if !drop(0, 3) || !drop(3, 0) {
		t.Error("cross-group delivery survived the partition")
	}
	if drop(0, 1) || drop(2, 3) {
		t.Error("intra-group delivery dropped")
	}
	if !drop(0, 7) {
		t.Error("node outside every group reachable during partition")
	}
	sched.RunUntil(2 * time.Minute)
	if drop(0, 3) {
		t.Error("dropped after heal")
	}
}

func TestEngineJamWindowAndDelay(t *testing.T) {
	sched := sim.New(1)
	eng := Start(sched, Plan{}.Then(
		JamAt(time.Minute, 30*time.Second),
		DelayFrom(10*time.Minute, 1.0, 5*time.Second, 0),
	), 7, nil)
	hook := eng.Hook()
	sched.RunUntil(time.Minute)
	if _, drop := hook(0, 1, nil); !drop {
		t.Error("jam window not dropping")
	}
	sched.RunUntil(time.Minute + 31*time.Second)
	if _, drop := hook(0, 1, nil); drop {
		t.Error("jam persisted past its window")
	}
	sched.RunUntil(10 * time.Minute)
	for i := 0; i < 32; i++ {
		extra, drop := hook(0, 1, nil)
		if drop {
			t.Fatal("delay adversary dropped a frame")
		}
		if extra < 0 || extra >= 5*time.Second {
			t.Fatalf("delay %v outside [0, 5s)", extra)
		}
	}
}

func TestEngineSeedVariesAdversary(t *testing.T) {
	sample := func(seed int64) []time.Duration {
		sched := sim.New(1)
		eng := Start(sched, Delay(1.0, time.Minute), seed, nil)
		hook := eng.Hook()
		sched.RunUntil(time.Second)
		var out []time.Duration
		for i := 0; i < 8; i++ {
			extra, _ := hook(0, 1, nil)
			out = append(out, extra)
		}
		return out
	}
	a, b, a2 := sample(1), sample(2), sample(1)
	same := true
	for i := range a {
		if a[i] != a2[i] {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, a[i], a2[i])
		}
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced an identical delay pattern (constant-seed bug)")
	}
}

func TestEngineDutyCycleSleepWindows(t *testing.T) {
	sched := sim.New(1)
	eng := Start(sched, Plan{}.Then(
		DutyCycleFrom(0, 2*time.Minute, 0.5, time.Minute),
	), 1, nil)
	hook := eng.Hook()
	// Node 0 has phase offset 0: awake for the first 30s of each minute.
	sched.RunUntil(10 * time.Second)
	if _, drop := hook(0, 0, nil); drop {
		t.Error("node 0 asleep inside its awake window")
	}
	sched.RunUntil(40 * time.Second)
	if _, drop := hook(0, 0, nil); !drop {
		t.Error("node 0 awake inside its sleep window")
	}
	// Phases are staggered: at any instant some pair must differ.
	differ := false
	for nd := wireless.NodeID(1); nd < 8; nd++ {
		_, d0 := hook(0, 0, nil)
		_, dn := hook(nd, nd, nil)
		if d0 != dn {
			differ = true
		}
	}
	if !differ {
		t.Error("every node shares node 0's sleep schedule (no phase stagger)")
	}
	// The window ends: everyone is reachable again.
	sched.RunUntil(2*time.Minute + 40*time.Second)
	if _, drop := hook(0, 0, nil); drop {
		t.Error("duty cycle persisted past its window")
	}
}

func TestEngineMobilityRangeAndWindow(t *testing.T) {
	sched := sim.New(1)
	// Tiny radio range: on a 1 km field nearly every pair is out of range,
	// so deliveries drop while the window is active.
	eng := Start(sched, Plan{}.Then(
		MobilityFrom(time.Minute, time.Hour, 20, 1),
	), 1, nil)
	hook := eng.Hook()
	if _, drop := hook(0, 1, nil); drop {
		t.Error("dropped before the mobility window")
	}
	sched.RunUntil(2 * time.Minute)
	if _, drop := hook(0, 1, nil); !drop {
		t.Error("1 m radio range let a delivery through")
	}
	if _, drop := hook(2, 2, nil); drop {
		t.Error("self-delivery dropped (distance 0 must always pass)")
	}
	sched.RunUntil(time.Minute + 2*time.Hour)
	if _, drop := hook(0, 1, nil); drop {
		t.Error("mobility persisted past its window")
	}
}

func (r *recorder) NodeCount() int { return 4 }

func TestEngineChurnCrashesAndRejoins(t *testing.T) {
	sched := sim.New(1)
	rec := &recorder{sched: sched}
	Start(sched, Plan{}.Then(
		ChurnFrom(0, 30*time.Minute, 5*time.Minute, time.Minute),
	), 1, rec)
	sched.Run()
	if len(rec.crashes) == 0 {
		t.Fatal("churn never crashed a node")
	}
	if len(rec.crashes) != len(rec.recovers) {
		t.Fatalf("%d crashes but %d recoveries", len(rec.crashes), len(rec.recovers))
	}
	for i, c := range rec.crashes {
		r := rec.recovers[i]
		if r.node != c.node || r.at != c.at+time.Minute {
			t.Fatalf("crash %+v not matched by recovery %+v", c, r)
		}
		if c.node < 0 || c.node >= 4 {
			t.Fatalf("victim %d outside the deployment", c.node)
		}
	}
	// A Lifecycle without NodeCount leaves churn inert.
	sched2 := sim.New(1)
	plain := struct{ Lifecycle }{}
	Start(sched2, Plan{}.Then(ChurnFrom(0, 0, 5*time.Minute, time.Minute)), 1, plain)
	sched2.RunUntil(time.Hour)
}

func TestDownForever(t *testing.T) {
	p := Plan{}.Then(
		CrashAt(0, 3),
		CrashAt(time.Minute, 1),
		RecoverAt(2*time.Minute, 1),
	)
	down := p.DownForever()
	if !down[3] || down[1] || len(down) != 1 {
		t.Fatalf("DownForever = %v, want {3}", down)
	}
	if got := p.CrashedNodes(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("CrashedNodes = %v", got)
	}
}

func TestParseRoundTrip(t *testing.T) {
	specs := []string{
		"crash@30m:3",
		"crash@0s:3;recover@55m:3",
		"partition@10m:0,1/2,3;heal@20m",
		"loss@5m+90s:0.5",
		"jam@5m+60s",
		"delay@0s:0.25,10s",
		"delay@1h+30m:0.25,10s",
		"byz@0s:3:equivocate",
		"byz@45m:2:flipvotes;crash@1h:2",
		"mobility@0s+2h:25,800",
		"dutycycle@0s:0.6,90s",
		"churn@10m+2h:20m,5m",
	}
	// Every Kind in the vocabulary must be exercised by a spec above, so
	// a new event type cannot ship without round-trip coverage.
	for _, k := range Kinds() {
		covered := false
		for _, spec := range specs {
			p := MustParse(spec)
			for _, e := range p.Events {
				if e.Kind == k {
					covered = true
				}
			}
		}
		if !covered {
			t.Errorf("Kind %q has no round-trip spec", k)
		}
	}
	for _, spec := range specs {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		back, err := Parse(p.String())
		if err != nil {
			t.Fatalf("re-Parse(%q -> %q): %v", spec, p.String(), err)
		}
		if back.String() != p.String() {
			t.Errorf("round trip %q -> %q -> %q", spec, p.String(), back.String())
		}
	}
	if p, err := Parse(""); err != nil || !p.Empty() {
		t.Error("empty spec must parse to the empty plan")
	}
	if p, err := Parse("fault-free"); err != nil || !p.Empty() {
		t.Error("fault-free must parse to the empty plan")
	}
	for _, bad := range []string{"crash@30m", "explode@1m:2", "delay:oops", "partition@1m", "loss@1m:1.5", "byz@0s:3", "byz@0s:x:garbage",
		"mobility@0s:25", "mobility@0s:0,800", "dutycycle@0s:1.5,90s", "dutycycle@0s:0.6,0s", "churn@0s:20m", "churn@0s:0s,5m"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}
