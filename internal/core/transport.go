// Package core implements ConsensusBatcher, the paper's primary
// contribution: a transport that batches the messages of N parallel (or
// serial) consensus components into single wireless transmissions.
//
// Components express their outbound state as slot-granular Intents ("my
// ECHO vote for RBC instance 2 is h"). The batched transport merges all
// current intents of the same (kind, phase) into one packet section
// (vertical batching, Fig. 3/4 of the paper) and all pending sections into
// one signed frame (horizontal batching), paying for a single channel
// access. The baseline transport — the paper's comparison point — sends one
// signed frame per instance-level update, which is how the wired protocols
// behave when ported naively.
//
// Reliability is NACK-based (Sec. IV-B1): frames are state snapshots, a
// periodic retransmission timer re-broadcasts current state, and per-phase
// O(N) NACK bitmaps let peers suppress or trigger repairs. Frames larger
// than the radio MTU are fragmented and reassembled; a newer snapshot from
// the same sender supersedes any partial older one.
package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/wireless"
)

// IntentKey identifies one slot-granular contribution. Round is part of
// the identity so that state for adjacent ABA rounds coexists on the air
// (a lagging peer still needs round r while the sender is in r+1);
// components prune stale rounds explicitly.
type IntentKey struct {
	Kind  packet.Kind
	Phase packet.Phase
	Slot  uint8
	Sub   uint8
	Round uint16
}

// Intent is a component's current outbound state for one key. Updating an
// existing key replaces its data (state-snapshot semantics): a node's newer
// vote supersedes the older one.
type Intent struct {
	IntentKey
	Flags uint8
	Data  []byte
}

// Handler consumes inbound sections for one component kind.
type Handler interface {
	HandleSection(from uint16, sec packet.Section)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(from uint16, sec packet.Section)

// HandleSection implements Handler.
func (f HandlerFunc) HandleSection(from uint16, sec packet.Section) { f(from, sec) }

// Interceptor rewrites a node's outbound intents before they enter the
// transport's snapshot state. It is the behavior-interposition point the
// active-Byzantine layer (internal/byz) hooks: the returned set replaces
// the intent, so an interceptor can pass it through unchanged, drop it
// (withholding), corrupt it, or fork conflicting variants (equivocation).
// The transport is passed so an interceptor can schedule later injections
// against the same epoch's state via Inject.
type Interceptor interface {
	Outbound(t *Transport, in Intent) []Intent
}

// Auth signs and verifies logical frames. RealAuth (package node) uses the
// crypto suite; SizedAuth produces correctly sized placeholder signatures
// for large honest-only sweeps, while still charging virtual compute cost.
type Auth interface {
	Sign(body []byte) ([]byte, error)
	Verify(sender uint16, body, sig []byte) error
	SigLen() int
	SignCost() time.Duration
	VerifyCost() time.Duration
}

// Config tunes a transport.
type Config struct {
	Session      uint32
	Batched      bool          // ConsensusBatcher vs baseline per-instance packets
	FlushDelay   time.Duration // aggregation window before assembling a frame
	RetxInterval time.Duration // NACK retransmission period (0 disables)
	MaxQueue     int           // station backpressure threshold, in frames
}

// DefaultConfig returns transport parameters calibrated for the LoRa-class
// channel: a short aggregation window and a retransmission period a few
// airtimes long.
func DefaultConfig(batched bool) Config {
	return Config{
		Batched:      batched,
		FlushDelay:   120 * time.Millisecond,
		RetxInterval: 4 * time.Second,
		MaxQueue:     3,
	}
}

// Stats counts transport-level work.
type Stats struct {
	LogicalSent   uint64 // signed logical packets
	FragmentsSent uint64 // radio frames handed to the station
	BytesSent     uint64
	LogicalRecv   uint64
	AuthFailures  uint64
	DroppedEpoch  uint64 // frames for other epochs
	SignOps       uint64
	VerifyOps     uint64
	// Rejected counts component-level discards of invalid inbound state:
	// threshold shares, certificates, and proofs that fail verification,
	// undecodable payloads, and equivocating proposals caught against a
	// quorum. Under an active-Byzantine scenario this is the measure of how
	// much adversarial traffic the defenses absorbed.
	Rejected uint64
}

// Transport is one node's ConsensusBatcher (or baseline) instance.
type Transport struct {
	sched   *sim.Scheduler
	cpu     *sim.CPU
	station *wireless.Station
	auth    Auth
	cfg     Config

	icept Interceptor

	epoch    uint16
	intents  map[IntentKey]Intent
	order    []IntentKey // live keys, maintained in wire (sortKeys) order
	nacks    map[[2]uint8]packet.BitSet
	dirty    map[IntentKey]bool // baseline: per-key pending sends
	handlers map[packet.Kind]Handler

	// Flush-time scratch, reused across flushes. Safe because sendLogical
	// encodes the frame body before returning (the deferred work in the CPU
	// queue holds only the encoded bytes, never these slices).
	secScratch   []packet.Section
	entScratch   []packet.Entry
	startScratch []int
	keyScratch   []IntentKey

	// flushArmed tracks whether a flush is already queued. The flush event
	// carries no cancellation handle — doFlush guards itself with the
	// stopped flag, so after Stop a queued slot fires as a no-op — which
	// lets the backpressure poll loop re-arm through the scheduler's
	// allocation-free lane path.
	flushArmed bool
	// flushFn is t.doFlush captured once: scheduling a method value
	// allocates a fresh closure per call, and the backpressure poll loop
	// re-arms it every FlushDelay while the radio queue is saturated.
	flushFn func()
	retxEvt *sim.Event
	// seqSrc allocates fragment sequence numbers. Standalone transports own
	// a private counter; transports opened through a Mux share the mux's, so
	// one node's frames across pipelined epochs form a single seq space.
	seqSrc  *uint32
	stopped bool
	// quiesced switches the periodic snapshot rebroadcast to exponential
	// backoff (retxBoost doubles per firing, capped). See Quiesce.
	quiesced  bool
	retxBoost int

	reasm *reassembler
	stats Stats
}

// New creates a transport bound to a station. Frames received on the
// station must be routed to ReceiveFrame (wire the station's receiver to
// the transport at attach time).
func New(sched *sim.Scheduler, cpu *sim.CPU, station *wireless.Station, auth Auth, cfg Config) *Transport {
	if cfg.FlushDelay <= 0 {
		cfg.FlushDelay = time.Millisecond
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 3
	}
	t := &Transport{
		sched:    sched,
		cpu:      cpu,
		station:  station,
		auth:     auth,
		cfg:      cfg,
		intents:  make(map[IntentKey]Intent),
		nacks:    make(map[[2]uint8]packet.BitSet),
		dirty:    make(map[IntentKey]bool),
		handlers: make(map[packet.Kind]Handler),
		reasm:    newReassembler(),
		seqSrc:   new(uint32),
	}
	t.flushFn = t.doFlush
	return t
}

// Register installs the handler for a component kind. Re-registration
// replaces the previous handler (used at epoch changeover).
func (t *Transport) Register(kind packet.Kind, h Handler) { t.handlers[kind] = h }

// BindStation attaches the radio. Construction is two-phase because the
// station's receiver is the transport itself: create the transport with a
// nil station, attach it to the channel, then bind the returned station.
func (t *Transport) BindStation(st *wireless.Station) { t.station = st }

// SetInterceptor installs (or, with nil, clears) the outbound-intent
// interceptor. Honest nodes run without one; the deployment layer installs
// one to make a node Byzantine.
func (t *Transport) SetInterceptor(ic Interceptor) { t.icept = ic }

// NoteRejected counts one component-level discard of invalid inbound
// state (see Stats.Rejected). Components call it through their Env when a
// share, certificate, proof, or proposal fails verification.
func (t *Transport) NoteRejected() { t.stats.Rejected++ }

// Stats returns a snapshot of the counters.
func (t *Transport) Stats() Stats { return t.stats }

// Epoch returns the current epoch.
func (t *Transport) Epoch() uint16 { return t.epoch }

// SetEpoch advances to a new epoch, discarding all outbound state.
// In-flight frames from other epochs are dropped on receipt.
func (t *Transport) SetEpoch(e uint16) {
	t.epoch = e
	t.intents = make(map[IntentKey]Intent)
	t.order = t.order[:0]
	t.nacks = make(map[[2]uint8]packet.BitSet)
	t.dirty = make(map[IntentKey]bool)
}

// Stop cancels pending timers; the transport sends nothing further. A
// queued flush slot is not cancellable (it has no handle); it fires as a
// no-op under the stopped guard.
func (t *Transport) Stop() {
	t.stopped = true
	t.retxEvt.Cancel()
}

// Quiesce backs the periodic snapshot rebroadcast off exponentially (2x
// per firing, capped at 16x the base interval) instead of firing at the
// base rate. An SMR pipeline quiesces an epoch once it decides locally:
// the epoch's state is final and mostly redundant on the air, but lagging
// peers may still need it, so it keeps flowing — just ever more slowly.
// Inbound repair requests still answer at full speed through the normal
// update/flush path, and Update/Remove keep working.
func (t *Transport) Quiesce() {
	if !t.quiesced {
		t.quiesced = true
		t.retxBoost = 1
	}
}

// Update upserts an intent and schedules a flush. With an interceptor
// installed, the intent first passes through it and whatever comes back —
// possibly nothing — is applied instead.
func (t *Transport) Update(in Intent) {
	if t.icept == nil {
		t.apply(in)
		return
	}
	for _, out := range t.icept.Outbound(t, in) {
		t.apply(out)
	}
}

// Inject upserts an intent bypassing the interceptor. Interceptors use it
// to plant delayed conflicting state (equivocation) without re-entering
// themselves.
func (t *Transport) Inject(in Intent) {
	if t.stopped {
		return
	}
	t.apply(in)
}

func (t *Transport) apply(in Intent) {
	if _, ok := t.intents[in.IntentKey]; !ok {
		// Keep order sorted on insert so flushes walk it directly instead
		// of copying and re-sorting the whole key set every window.
		i := sort.Search(len(t.order), func(i int) bool { return keyLess(in.IntentKey, t.order[i]) })
		t.order = append(t.order, IntentKey{})
		copy(t.order[i+1:], t.order[i:])
		t.order[i] = in.IntentKey
	}
	t.intents[in.IntentKey] = in
	t.dirty[in.IntentKey] = true
	t.Flush()
	t.ensureRetx()
}

// Remove deletes an intent (the component completed that piece of state).
func (t *Transport) Remove(k IntentKey) {
	if _, ok := t.intents[k]; !ok {
		return
	}
	delete(t.intents, k)
	delete(t.dirty, k)
	for i, ok := range t.order {
		if ok == k {
			t.order = append(t.order[:i], t.order[i+1:]...)
			break
		}
	}
}

// RemoveKind drops all intents of a kind (component teardown).
func (t *Transport) RemoveKind(kind packet.Kind) {
	t.RemoveWhere(func(k IntentKey) bool { return k.Kind == kind })
}

// RemoveWhere deletes every intent whose key matches the predicate (used
// by the ABAs to prune state for stale rounds and halted instances).
func (t *Transport) RemoveWhere(pred func(IntentKey) bool) {
	kept := t.order[:0]
	for _, k := range t.order {
		if pred(k) {
			delete(t.intents, k)
			delete(t.dirty, k)
			continue
		}
		kept = append(kept, k)
	}
	t.order = kept
}

// SetNack installs the compressed O(N) NACK bitmap attached to every
// outbound section of (kind, phase).
func (t *Transport) SetNack(kind packet.Kind, phase packet.Phase, bits packet.BitSet) {
	t.nacks[[2]uint8{uint8(kind), uint8(phase)}] = bits.Clone()
}

// Flush schedules frame assembly after the aggregation window. Multiple
// calls within the window coalesce — this is where channel-contention
// pressure turns into batching opportunity.
func (t *Transport) Flush() {
	if t.stopped || t.flushArmed {
		return
	}
	t.flushArmed = true
	t.sched.PostAfterFixed(t.cfg.FlushDelay, t.flushFn)
}

func (t *Transport) ensureRetx() {
	if t.stopped || t.cfg.RetxInterval <= 0 || (t.retxEvt != nil && !t.retxEvt.Cancelled()) {
		return
	}
	base := t.cfg.RetxInterval
	if t.quiesced {
		base *= time.Duration(t.retxBoost)
	}
	jitter := time.Duration(float64(base) * (0.75 + 0.5*t.sched.Rand().Float64()))
	t.retxEvt = t.sched.After(jitter, func() {
		t.retxEvt = nil
		if t.stopped || len(t.intents) == 0 {
			return
		}
		if t.quiesced && t.retxBoost < 16 {
			t.retxBoost *= 2
		}
		// Re-send the full current snapshot: NACK-driven repair.
		for k := range t.intents {
			t.dirty[k] = true
		}
		t.Flush()
		t.ensureRetx()
	})
}

func (t *Transport) doFlush() {
	t.flushArmed = false
	if t.stopped || len(t.intents) == 0 {
		return
	}
	// Backpressure: if the radio queue is saturated, wait for it to drain;
	// intents keep accumulating, which *increases* the batch size — the
	// mechanism by which contention feeds batching.
	if t.station.QueueLen() >= t.cfg.MaxQueue {
		// Dense re-polling is deliberate: skipping ticks that "provably"
		// cannot observe a dequeue is NOT outcome-preserving, because every
		// event the poll does or does not schedule shifts sequence numbers,
		// and with all delays on a quantized lattice, same-timestamp ties
		// (poll vs. transmit-completion) resolve by sequence order. The
		// handle-free lane post makes the dense polls cost nothing but the
		// slot itself.
		t.flushArmed = true
		t.sched.PostAfterFixed(t.cfg.FlushDelay, t.flushFn)
		return
	}
	if t.cfg.Batched {
		t.flushBatched()
	} else {
		t.flushBaseline()
	}
}

// flushBatched emits one logical frame carrying the node's entire current
// state: every (kind, phase) becomes a section (vertical batching), and all
// sections ride in the same frame (horizontal batching). Sections and
// entries are built in reused scratch; entry spans are attached after the
// walk because the entries slice may reallocate while growing.
func (t *Transport) flushBatched() {
	if len(t.dirty) == 0 {
		return
	}
	secs := t.secScratch[:0]
	ents := t.entScratch[:0]
	starts := t.startScratch[:0]
	for _, k := range t.order {
		in := t.intents[k]
		if n := len(secs); n == 0 || secs[n-1].Kind != k.Kind || secs[n-1].Phase != k.Phase {
			secs = append(secs, packet.Section{
				Kind:  k.Kind,
				Phase: k.Phase,
				Nack:  t.nacks[[2]uint8{uint8(k.Kind), uint8(k.Phase)}],
			})
			starts = append(starts, len(ents))
		}
		ents = append(ents, packet.Entry{
			Slot: k.Slot, Sub: k.Sub, Round: k.Round, Flags: in.Flags, Data: in.Data,
		})
	}
	for i := range secs {
		end := len(ents)
		if i+1 < len(secs) {
			end = starts[i+1]
		}
		secs[i].Entries = ents[starts[i]:end]
	}
	t.secScratch, t.entScratch, t.startScratch = secs, ents, starts
	clear(t.dirty)
	t.sendLogical(secs)
}

// flushBaseline emits one logical frame per dirty intent — the unbatched
// deployment where every instance-phase event competes for the channel
// separately.
func (t *Transport) flushBaseline() {
	keys := t.keyScratch[:0]
	for k := range t.dirty {
		if _, live := t.intents[k]; live {
			keys = append(keys, k)
		}
	}
	sortKeys(keys)
	t.keyScratch = keys
	clear(t.dirty)
	for _, k := range keys {
		in := t.intents[k]
		secs := t.secScratch[:0]
		ents := t.entScratch[:0]
		ents = append(ents, packet.Entry{
			Slot: k.Slot, Sub: k.Sub, Round: k.Round, Flags: in.Flags, Data: in.Data,
		})
		secs = append(secs, packet.Section{
			Kind:    k.Kind,
			Phase:   k.Phase,
			Nack:    t.nacks[[2]uint8{uint8(k.Kind), uint8(k.Phase)}],
			Entries: ents,
		})
		t.secScratch, t.entScratch = secs, ents
		t.sendLogical(secs)
	}
}

// sendLogical signs and fragments one logical packet. Signing is charged
// to the node's CPU before the frame reaches the radio. The body is
// encoded into a pooled buffer before this returns — required so the
// caller's section/entry scratch can be reused — and the buffer is
// recycled once the fragments (which copy out of it) are on the air.
// Intent data and NACK bitmaps are snapshots that are never mutated in
// place, so encoding now and signing at the virtual completion time
// produce the same bytes the deferred encoding did.
func (t *Transport) sendLogical(sections []packet.Section) {
	frame := &packet.Frame{
		Sender:   uint16(t.station.ID()),
		Session:  t.cfg.Session,
		Epoch:    t.epoch,
		Sections: sections,
	}
	body, err := frame.AppendBody(packet.GetBuf())
	if err != nil {
		panic(fmt.Sprintf("core: frame encoding: %v", err))
	}
	seq := *t.seqSrc
	*t.seqSrc++
	t.cpu.Exec(t.auth.SignCost(), func() {
		raw := body
		defer func() { packet.PutBuf(raw) }()
		if t.stopped {
			return
		}
		sig, err := t.auth.Sign(body)
		if err != nil {
			panic(fmt.Sprintf("core: frame signing: %v", err))
		}
		t.stats.SignOps++
		raw = append(raw, byte(len(sig)>>8), byte(len(sig)))
		raw = append(raw, sig...)
		t.stats.LogicalSent++
		t.stats.BytesSent += uint64(len(raw))
		for _, frag := range fragment(raw, uint16(t.station.ID()), seq, t.station.Channel().Config().MaxFrame) {
			t.stats.FragmentsSent++
			t.station.Broadcast(frag)
		}
	})
}

// ReceiveFrame implements wireless.Receiver: reassemble, verify, dispatch.
func (t *Transport) ReceiveFrame(from wireless.NodeID, payload []byte) {
	if t.stopped {
		return
	}
	raw, ok := t.reasm.feed(payload)
	if !ok {
		return
	}
	t.receiveLogical(raw)
}

// receiveLogical verifies and dispatches one reassembled logical packet.
// The Mux calls this directly after its shared reassembly step.
func (t *Transport) receiveLogical(raw []byte) {
	if t.stopped {
		return
	}
	t.cpu.Exec(t.auth.VerifyCost(), func() {
		if t.stopped {
			return
		}
		t.stats.VerifyOps++
		frame, bodyLen, err := packet.Decode(raw)
		if err != nil {
			t.stats.AuthFailures++
			return
		}
		if err := t.auth.Verify(frame.Sender, raw[:bodyLen], frame.Sig); err != nil {
			t.stats.AuthFailures++
			return
		}
		if frame.Session != t.cfg.Session || frame.Epoch != t.epoch {
			t.stats.DroppedEpoch++
			return
		}
		t.stats.LogicalRecv++
		for _, sec := range frame.Sections {
			if h, ok := t.handlers[sec.Kind]; ok {
				h.HandleSection(frame.Sender, sec)
			}
		}
	})
}

// keyLess is the wire ordering of intent keys: sections group by
// (kind, phase), entries order by (slot, sub, round).
func keyLess(a, b IntentKey) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Phase != b.Phase {
		return a.Phase < b.Phase
	}
	if a.Slot != b.Slot {
		return a.Slot < b.Slot
	}
	if a.Sub != b.Sub {
		return a.Sub < b.Sub
	}
	return a.Round < b.Round
}

func sortKeys(keys []IntentKey) {
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
}
