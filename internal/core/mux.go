package core

import (
	"fmt"
	"sort"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/wireless"
)

// Mux multiplexes several epochs' transports onto one radio. A single
// Transport is strictly epoch-scoped — SetEpoch wipes its state and frames
// for other epochs are dropped — which is fine for one-shot consensus but
// rules out pipelining. The Mux is the SMR-enabling layer underneath
// protocol.Chain: it owns the station, a shared fragment sequence space and
// one reassembly buffer per peer, and routes each reassembled logical
// packet to the open transport of the frame's epoch.
//
// Outbound, every per-epoch transport broadcasts through the shared
// station, so the channel backpressure (Config.MaxQueue) and the batching
// pressure it creates apply across the whole pipeline. Inbound, frames for
// epochs that are not (or no longer) open are counted and dropped; the
// sender's NACK retransmission machinery re-delivers their state once the
// receiver opens the epoch, and OnUnknownEpoch gives the SMR layer an early
// signal that a peer is already working on a future epoch.
type Mux struct {
	sched *sim.Scheduler
	cpu   *sim.CPU
	auth  Auth
	cfg   Config // template for per-epoch transports

	station *wireless.Station
	epochs  map[uint16]*Transport
	seq     uint32
	reasm   *reassembler
	icept   Interceptor // propagated onto every per-epoch transport

	// OnUnknownEpoch, if set, is invoked when a frame for an epoch with no
	// open transport arrives. The callback may open the epoch, but the
	// triggering frame is still dropped (retransmission repairs it).
	OnUnknownEpoch func(epoch uint16)

	closedStats Stats // accumulated counters of closed transports
	dropped     uint64
	droppedSess uint64
}

// NewMux creates an epoch demultiplexer. cfg is the template every
// per-epoch transport is created from (Session, FlushDelay, RetxInterval,
// MaxQueue, Batched).
func NewMux(sched *sim.Scheduler, cpu *sim.CPU, auth Auth, cfg Config) *Mux {
	return &Mux{
		sched:  sched,
		cpu:    cpu,
		auth:   auth,
		cfg:    cfg,
		epochs: make(map[uint16]*Transport),
		reasm:  newReassembler(),
	}
}

// BindStation attaches the radio, mirroring Transport's two-phase
// construction: attach the Mux to the channel as the receiver, then bind
// the returned station.
func (m *Mux) BindStation(st *wireless.Station) {
	m.station = st
	for _, t := range m.epochs {
		t.BindStation(st)
	}
}

// SetInterceptor installs (or clears) the outbound-intent interceptor on
// every open epoch's transport and every transport opened afterwards, so a
// node that turns Byzantine mid-run misbehaves across its whole pipeline.
func (m *Mux) SetInterceptor(ic Interceptor) {
	m.icept = ic
	for _, t := range m.epochs {
		t.SetInterceptor(ic)
	}
}

// Open creates (or returns) the transport for an epoch. The transport
// shares the mux's station, CPU, auth, fragment sequence space, and
// interceptor.
func (m *Mux) Open(epoch uint16) *Transport {
	if t, ok := m.epochs[epoch]; ok {
		return t
	}
	t := New(m.sched, m.cpu, m.station, m.auth, m.cfg)
	t.epoch = epoch
	t.seqSrc = &m.seq
	t.icept = m.icept
	m.epochs[epoch] = t
	return t
}

// Lookup returns the open transport for an epoch, or nil.
func (m *Mux) Lookup(epoch uint16) *Transport { return m.epochs[epoch] }

// Open epochs in ascending order (diagnostics and tests).
func (m *Mux) OpenEpochs() []uint16 {
	out := make([]uint16, 0, len(m.epochs))
	for e := range m.epochs {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Close stops and discards an epoch's transport, folding its counters into
// the mux-level stats. This is the epoch garbage collection hook: after
// Close, the epoch's intents, NACK maps, and timers are gone and inbound
// frames for it are dropped.
func (m *Mux) Close(epoch uint16) {
	t, ok := m.epochs[epoch]
	if !ok {
		return
	}
	t.Stop()
	m.closedStats = AddStats(m.closedStats, t.Stats())
	delete(m.epochs, epoch)
}

// Stop closes every open epoch.
func (m *Mux) Stop() {
	for _, e := range m.OpenEpochs() {
		m.Close(e)
	}
}

// DroppedUnknownEpoch counts reassembled frames discarded because their
// epoch had no open transport.
func (m *Mux) DroppedUnknownEpoch() uint64 { return m.dropped }

// DroppedSession counts reassembled frames discarded for an unparsable
// header or a session mismatch (foreign or corrupted traffic).
func (m *Mux) DroppedSession() uint64 { return m.droppedSess }

// NoteRejected counts one node-level discard of refused inbound state
// that belongs to no single epoch's transport — the chain layer calls it
// for mempool admission-control rejections, so backpressure drops surface
// in the same Stats.Rejected counter Byzantine discards use.
func (m *Mux) NoteRejected() { m.closedStats.Rejected++ }

// Stats aggregates counters across closed and still-open transports.
func (m *Mux) Stats() Stats {
	s := m.closedStats
	for _, t := range m.epochs {
		s = AddStats(s, t.Stats())
	}
	s.DroppedEpoch += m.dropped
	return s
}

// AddStats sums two transport counter snapshots field-by-field. Deployment
// layers use it to fold discarded transports into run-level aggregates.
func AddStats(a, b Stats) Stats {
	a.LogicalSent += b.LogicalSent
	a.FragmentsSent += b.FragmentsSent
	a.BytesSent += b.BytesSent
	a.LogicalRecv += b.LogicalRecv
	a.AuthFailures += b.AuthFailures
	a.DroppedEpoch += b.DroppedEpoch
	a.SignOps += b.SignOps
	a.VerifyOps += b.VerifyOps
	a.Rejected += b.Rejected
	return a
}

var _ wireless.Receiver = (*Mux)(nil)

// ReceiveFrame implements wireless.Receiver: shared reassembly, then route
// by the frame header's epoch. Authentication happens inside the routed
// transport, exactly as in the single-epoch path.
func (m *Mux) ReceiveFrame(from wireless.NodeID, payload []byte) {
	raw, ok := m.reasm.feed(payload)
	if !ok {
		return
	}
	_, session, epoch, ok := packet.PeekHeader(raw)
	if !ok || session != m.cfg.Session {
		m.droppedSess++
		return
	}
	t, open := m.epochs[epoch]
	if !open {
		m.dropped++
		if m.OnUnknownEpoch != nil {
			m.OnUnknownEpoch(epoch)
		}
		return
	}
	t.receiveLogical(raw)
}

// String renders a short diagnostic summary.
func (m *Mux) String() string {
	return fmt.Sprintf("mux{epochs=%v dropped=%d}", m.OpenEpochs(), m.dropped)
}
