package core

import (
	"fmt"
	"time"

	"repro/internal/crypto/pksig"
)

// RealAuth signs and verifies frames with actual public-key cryptography
// (per-node keys from the suite dealer). Byzantine-fault tests use it to
// show forged or tampered frames are dropped; large honest-only sweeps use
// SizedAuth instead, which has identical virtual-time and byte-size
// behaviour.
type RealAuth struct {
	Signer     *pksig.PrivateKey
	Peers      []pksig.PublicKey // by node id
	CostSign   time.Duration
	CostVerify time.Duration
}

var _ Auth = (*RealAuth)(nil)

// Sign implements Auth.
func (a *RealAuth) Sign(body []byte) ([]byte, error) { return a.Signer.Sign(body) }

// Verify implements Auth.
func (a *RealAuth) Verify(sender uint16, body, sig []byte) error {
	if int(sender) >= len(a.Peers) {
		return fmt.Errorf("core: unknown sender %d", sender)
	}
	return a.Peers[sender].Verify(body, sig)
}

// SigLen implements Auth.
func (a *RealAuth) SigLen() int { return a.Signer.Scheme().SignatureLen() }

// SignCost implements Auth.
func (a *RealAuth) SignCost() time.Duration { return a.CostSign }

// VerifyCost implements Auth.
func (a *RealAuth) VerifyCost() time.Duration { return a.CostVerify }
