package core

import "encoding/binary"

// Fragment header: sender(2) seq(4) idx(1) total(1). Fragments of a newer
// logical packet from the same sender supersede any partial older one —
// logical packets are state snapshots, so losing an old one entirely is
// harmless once a newer one exists. Sequence numbers are per sender node,
// not per epoch: a node pipelining several epochs draws all its frames from
// one seq space so receivers keep a single reassembly buffer per peer.
const fragHeaderLen = 8

// fragment splits one logical packet into MTU-sized radio frames.
func fragment(raw []byte, sender uint16, seq uint32, mtu int) [][]byte {
	chunk := mtu - fragHeaderLen
	if chunk <= 0 {
		panic("core: MTU smaller than fragment header")
	}
	total := (len(raw) + chunk - 1) / chunk
	if total == 0 {
		total = 1
	}
	if total > 255 {
		panic("core: logical packet needs more than 255 fragments")
	}
	out := make([][]byte, 0, total)
	for i := 0; i < total; i++ {
		lo := i * chunk
		hi := lo + chunk
		if hi > len(raw) {
			hi = len(raw)
		}
		frag := make([]byte, fragHeaderLen, fragHeaderLen+(hi-lo))
		binary.BigEndian.PutUint16(frag[0:], sender)
		binary.BigEndian.PutUint32(frag[2:], seq)
		frag[6] = byte(i)
		frag[7] = byte(total)
		frag = append(frag, raw[lo:hi]...)
		out = append(out, frag)
	}
	return out
}

type partial struct {
	seq    uint32
	total  uint8
	chunks map[uint8][]byte
}

// reassembler holds per-sender reassembly buffers. A standalone Transport
// owns one; a Mux owns a single shared one for all of its epochs.
type reassembler struct {
	bufs map[uint16]*partial
}

func newReassembler() *reassembler {
	return &reassembler{bufs: make(map[uint16]*partial)}
}

// feed consumes one radio frame and returns the completed logical packet
// when all of its fragments are present.
func (r *reassembler) feed(frag []byte) ([]byte, bool) {
	if len(frag) < fragHeaderLen {
		return nil, false
	}
	sender := binary.BigEndian.Uint16(frag[0:])
	seq := binary.BigEndian.Uint32(frag[2:])
	idx, total := frag[6], frag[7]
	if total == 0 || idx >= total {
		return nil, false
	}
	body := frag[fragHeaderLen:]
	if total == 1 {
		return body, true
	}
	p := r.bufs[sender]
	if p == nil || seq > p.seq {
		p = &partial{seq: seq, total: total, chunks: make(map[uint8][]byte, total)}
		r.bufs[sender] = p
	}
	if seq < p.seq || total != p.total {
		return nil, false // stale or inconsistent fragment
	}
	if _, dup := p.chunks[idx]; dup {
		return nil, false
	}
	p.chunks[idx] = body
	if len(p.chunks) < int(p.total) {
		return nil, false
	}
	n := 0
	for i := uint8(0); i < p.total; i++ {
		n += len(p.chunks[i])
	}
	out := make([]byte, 0, n)
	for i := uint8(0); i < p.total; i++ {
		out = append(out, p.chunks[i]...)
	}
	delete(r.bufs, sender)
	return out, true
}
