package core

import (
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/wireless"
)

type rig struct {
	sched      *sim.Scheduler
	ch         *wireless.Channel
	transports []*Transport
	received   []map[packet.Kind][]recv
}

type recv struct {
	from uint16
	sec  packet.Section
}

func newRig(t *testing.T, n int, batched bool, mutate func(*wireless.Config)) *rig {
	t.Helper()
	s := sim.New(3)
	cfg := wireless.DefaultConfig()
	cfg.LossProb = 0
	if mutate != nil {
		mutate(&cfg)
	}
	ch := wireless.NewChannel(s, cfg)
	r := &rig{sched: s, ch: ch}
	for i := 0; i < n; i++ {
		i := i
		cpu := sim.NewCPU(s)
		auth := &SizedAuth{Len: 56, CostSign: 5 * time.Millisecond, CostVerify: 10 * time.Millisecond}
		tcfg := DefaultConfig(batched)
		tcfg.RetxInterval = 0 // tests control retransmission explicitly
		tr := New(s, cpu, nil, auth, tcfg)
		st := ch.Attach(wireless.NodeID(i), tr)
		tr.station = st
		r.transports = append(r.transports, tr)
		r.received = append(r.received, map[packet.Kind][]recv{})
		for _, k := range []packet.Kind{packet.KindRBC, packet.KindABA} {
			k := k
			tr.Register(k, HandlerFunc(func(from uint16, sec packet.Section) {
				r.received[i][k] = append(r.received[i][k], recv{from, sec})
			}))
		}
	}
	return r
}

func TestBatchedMergesIntents(t *testing.T) {
	r := newRig(t, 3, true, nil)
	tr := r.transports[0]
	// Four same-phase intents (vertical) plus one other-phase (horizontal):
	// all must leave in ONE logical packet and one channel access.
	for slot := 0; slot < 4; slot++ {
		tr.Update(Intent{
			IntentKey: IntentKey{Kind: packet.KindRBC, Phase: packet.PhaseEcho, Slot: uint8(slot)},
			Data:      []byte{byte(slot)},
		})
	}
	tr.Update(Intent{
		IntentKey: IntentKey{Kind: packet.KindRBC, Phase: packet.PhaseReady, Slot: 1},
		Data:      []byte{9},
	})
	r.sched.Run()
	if got := tr.Stats().LogicalSent; got != 1 {
		t.Fatalf("LogicalSent = %d, want 1 (batched)", got)
	}
	if got := r.ch.Stats().Accesses; got != 1 {
		t.Fatalf("channel accesses = %d, want 1", got)
	}
	secs := r.received[1][packet.KindRBC]
	if len(secs) != 2 {
		t.Fatalf("receiver saw %d RBC sections, want 2 (echo + ready)", len(secs))
	}
	var echo *packet.Section
	for i := range secs {
		if secs[i].sec.Phase == packet.PhaseEcho {
			echo = &secs[i].sec
		}
	}
	if echo == nil || len(echo.Entries) != 4 {
		t.Fatalf("echo section entries = %v, want 4 slots", echo)
	}
}

func TestBaselineSendsPerInstance(t *testing.T) {
	r := newRig(t, 3, false, nil)
	tr := r.transports[0]
	for slot := 0; slot < 4; slot++ {
		tr.Update(Intent{
			IntentKey: IntentKey{Kind: packet.KindRBC, Phase: packet.PhaseEcho, Slot: uint8(slot)},
			Data:      []byte{byte(slot)},
		})
	}
	r.sched.Run()
	if got := tr.Stats().LogicalSent; got != 4 {
		t.Fatalf("LogicalSent = %d, want 4 (baseline, one per instance)", got)
	}
	if got := r.ch.Stats().Accesses; got != 4 {
		t.Fatalf("channel accesses = %d, want 4", got)
	}
}

func TestUpdateSupersedesSameKey(t *testing.T) {
	r := newRig(t, 2, true, nil)
	tr := r.transports[0]
	key := IntentKey{Kind: packet.KindABA, Phase: packet.PhaseBval, Slot: 0, Round: 1}
	tr.Update(Intent{IntentKey: key, Data: []byte{0}})
	tr.Update(Intent{IntentKey: key, Data: []byte{1}})
	r.sched.Run()
	got := r.received[1][packet.KindABA]
	if len(got) != 1 {
		t.Fatalf("got %d sections, want 1", len(got))
	}
	if len(got[0].sec.Entries) != 1 {
		t.Fatalf("got %d entries, want 1 (same key coalesces)", len(got[0].sec.Entries))
	}
	e := got[0].sec.Entries[0]
	if e.Data[0] != 1 {
		t.Errorf("entry data = %v; newer update did not supersede", e.Data)
	}
}

func TestAdjacentRoundsCoexist(t *testing.T) {
	r := newRig(t, 2, true, nil)
	tr := r.transports[0]
	tr.Update(Intent{IntentKey: IntentKey{Kind: packet.KindABA, Phase: packet.PhaseBval, Slot: 0, Round: 1}, Data: []byte{0}})
	tr.Update(Intent{IntentKey: IntentKey{Kind: packet.KindABA, Phase: packet.PhaseBval, Slot: 0, Round: 2}, Data: []byte{1}})
	r.sched.Run()
	got := r.received[1][packet.KindABA]
	if len(got) != 1 {
		t.Fatalf("got %d sections, want 1", len(got))
	}
	if len(got[0].sec.Entries) != 2 {
		t.Fatalf("got %d entries, want 2 (rounds coexist)", len(got[0].sec.Entries))
	}
	// RemoveWhere prunes round 1.
	tr.RemoveWhere(func(k IntentKey) bool { return k.Round < 2 })
	tr.Update(Intent{IntentKey: IntentKey{Kind: packet.KindABA, Phase: packet.PhaseAux, Slot: 0, Round: 2}, Data: []byte{1}})
	r.sched.Run()
	got = r.received[1][packet.KindABA]
	last := got[len(got)-2:] // bval + aux sections of the final frame
	for _, rec := range last {
		for _, e := range rec.sec.Entries {
			if e.Round < 2 {
				t.Errorf("pruned round still transmitted: %+v", e)
			}
		}
	}
}

func TestFragmentationRoundTrip(t *testing.T) {
	r := newRig(t, 2, true, nil)
	tr := r.transports[0]
	big := make([]byte, 700) // > 240-byte MTU after framing: multiple fragments
	for i := range big {
		big[i] = byte(i)
	}
	tr.Update(Intent{
		IntentKey: IntentKey{Kind: packet.KindRBC, Phase: packet.PhaseInitial, Slot: 0},
		Data:      big,
	})
	r.sched.Run()
	if tr.Stats().FragmentsSent < 3 {
		t.Fatalf("FragmentsSent = %d, want >= 3", tr.Stats().FragmentsSent)
	}
	got := r.received[1][packet.KindRBC]
	if len(got) != 1 {
		t.Fatalf("receiver reassembled %d sections, want 1", len(got))
	}
	data := got[0].sec.Entries[0].Data
	if len(data) != len(big) {
		t.Fatalf("data %d bytes, want %d", len(data), len(big))
	}
	for i := range big {
		if data[i] != big[i] {
			t.Fatalf("byte %d corrupted", i)
		}
	}
}

func TestLostFragmentRecoveredByRetransmission(t *testing.T) {
	r := newRig(t, 2, true, nil)
	tr := r.transports[0]
	// Drop the first radio frame only.
	dropped := false
	r.ch.SetDeliveryHook(func(_, _ wireless.NodeID, _ []byte) (time.Duration, bool) {
		if !dropped {
			dropped = true
			return 0, true
		}
		return 0, false
	})
	tr.Update(Intent{
		IntentKey: IntentKey{Kind: packet.KindRBC, Phase: packet.PhaseInitial, Slot: 0},
		Data:      make([]byte, 600),
	})
	r.sched.Run()
	if len(r.received[1][packet.KindRBC]) != 0 {
		t.Fatal("partial packet delivered despite lost fragment")
	}
	// Simulate the retransmission timer: mark dirty and flush again.
	for k := range tr.intents {
		tr.dirty[k] = true
	}
	tr.Flush()
	r.sched.Run()
	if len(r.received[1][packet.KindRBC]) != 1 {
		t.Fatal("snapshot retransmission did not repair the loss")
	}
}

func TestEpochFiltering(t *testing.T) {
	r := newRig(t, 2, true, nil)
	r.transports[0].SetEpoch(1)
	// Receiver still in epoch 0.
	r.transports[0].Update(Intent{
		IntentKey: IntentKey{Kind: packet.KindRBC, Phase: packet.PhaseEcho, Slot: 0},
		Data:      []byte{1},
	})
	r.sched.Run()
	if len(r.received[1][packet.KindRBC]) != 0 {
		t.Fatal("frame from future epoch delivered")
	}
	if r.transports[1].Stats().DroppedEpoch != 1 {
		t.Errorf("DroppedEpoch = %d, want 1", r.transports[1].Stats().DroppedEpoch)
	}
}

func TestRemoveStopsTransmission(t *testing.T) {
	r := newRig(t, 2, true, nil)
	tr := r.transports[0]
	key := IntentKey{Kind: packet.KindRBC, Phase: packet.PhaseEcho, Slot: 0}
	tr.Update(Intent{IntentKey: key, Data: []byte{1}})
	r.sched.Run()
	before := tr.Stats().LogicalSent
	tr.Remove(key)
	tr.Update(Intent{IntentKey: IntentKey{Kind: packet.KindRBC, Phase: packet.PhaseReady, Slot: 1}, Data: []byte{2}})
	r.sched.Run()
	last := r.received[1][packet.KindRBC]
	final := last[len(last)-1].sec
	if final.Phase == packet.PhaseEcho {
		t.Error("removed intent still transmitted")
	}
	if tr.Stats().LogicalSent != before+1 {
		t.Errorf("LogicalSent = %d, want %d", tr.Stats().LogicalSent, before+1)
	}
}

func TestNackBitsAttached(t *testing.T) {
	r := newRig(t, 2, true, nil)
	tr := r.transports[0]
	bits := packet.NewBitSet(4)
	bits.Set(2)
	tr.SetNack(packet.KindRBC, packet.PhaseEcho, bits)
	tr.Update(Intent{IntentKey: IntentKey{Kind: packet.KindRBC, Phase: packet.PhaseEcho, Slot: 0}, Data: []byte{1}})
	r.sched.Run()
	got := r.received[1][packet.KindRBC]
	if len(got) != 1 {
		t.Fatal("no section received")
	}
	if !got[0].sec.Nack.Get(2) || got[0].sec.Nack.Get(1) {
		t.Errorf("nack bits = %x", []byte(got[0].sec.Nack))
	}
}

func TestSignAndVerifyCostsCharged(t *testing.T) {
	r := newRig(t, 2, true, nil)
	tr := r.transports[0]
	tr.Update(Intent{IntentKey: IntentKey{Kind: packet.KindRBC, Phase: packet.PhaseEcho, Slot: 0}, Data: []byte{1}})
	r.sched.Run()
	if tr.cpu.BusyTotal() < 5*time.Millisecond {
		t.Errorf("sender CPU charged %v, want >= sign cost", tr.cpu.BusyTotal())
	}
	if r.transports[1].cpu.BusyTotal() < 10*time.Millisecond {
		t.Errorf("receiver CPU charged %v, want >= verify cost", r.transports[1].cpu.BusyTotal())
	}
	if tr.Stats().SignOps != 1 || r.transports[1].Stats().VerifyOps != 1 {
		t.Error("sign/verify op counters wrong")
	}
}

func TestStopSilencesTransport(t *testing.T) {
	r := newRig(t, 2, true, nil)
	tr := r.transports[0]
	tr.Update(Intent{IntentKey: IntentKey{Kind: packet.KindRBC, Phase: packet.PhaseEcho, Slot: 0}, Data: []byte{1}})
	tr.Stop()
	r.sched.Run()
	if tr.Stats().LogicalSent != 0 {
		t.Error("stopped transport transmitted")
	}
}

func TestFragmentHelperBounds(t *testing.T) {
	frags := fragment(make([]byte, 1000), 1, 42, 240)
	if len(frags) != 5 {
		t.Fatalf("got %d fragments, want 5", len(frags))
	}
	total := 0
	for _, f := range frags {
		if len(f) > 240 {
			t.Errorf("fragment %d bytes exceeds MTU", len(f))
		}
		total += len(f) - fragHeaderLen
	}
	if total != 1000 {
		t.Errorf("fragments carry %d bytes, want 1000", total)
	}
	// Empty payload still produces one fragment.
	if got := fragment(nil, 1, 0, 240); len(got) != 1 {
		t.Errorf("empty payload: %d fragments", len(got))
	}
}
