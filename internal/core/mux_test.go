package core

import (
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/wireless"
)

type muxRig struct {
	sched *sim.Scheduler
	ch    *wireless.Channel
	muxes []*Mux
}

func newMuxRig(t *testing.T, n int) *muxRig {
	t.Helper()
	s := sim.New(5)
	cfg := wireless.DefaultConfig()
	cfg.LossProb = 0
	ch := wireless.NewChannel(s, cfg)
	r := &muxRig{sched: s, ch: ch}
	for i := 0; i < n; i++ {
		cpu := sim.NewCPU(s)
		auth := &SizedAuth{Len: 56, CostSign: 5 * time.Millisecond, CostVerify: 10 * time.Millisecond}
		tcfg := DefaultConfig(true)
		tcfg.RetxInterval = 0
		m := NewMux(s, cpu, auth, tcfg)
		st := ch.Attach(wireless.NodeID(i), m)
		m.BindStation(st)
		r.muxes = append(r.muxes, m)
	}
	return r
}

func intentFor(slot uint8) Intent {
	return Intent{
		IntentKey: IntentKey{Kind: packet.KindRBC, Phase: packet.PhaseEcho, Slot: slot},
		Data:      []byte{slot},
	}
}

// collect registers a counter handler on an epoch transport.
func collect(tr *Transport, got *int) {
	tr.Register(packet.KindRBC, HandlerFunc(func(from uint16, sec packet.Section) {
		*got += len(sec.Entries)
	}))
}

func TestMuxRoutesByEpoch(t *testing.T) {
	r := newMuxRig(t, 2)
	send0 := r.muxes[0].Open(3)
	send1 := r.muxes[0].Open(4)
	var got3, got4 int
	collect(r.muxes[1].Open(3), &got3)
	collect(r.muxes[1].Open(4), &got4)

	send0.Update(intentFor(1))
	send1.Update(intentFor(2))
	r.sched.Run()

	if got3 != 1 || got4 != 1 {
		t.Fatalf("epoch3=%d epoch4=%d entries, want 1 and 1", got3, got4)
	}
	if d := r.muxes[1].DroppedUnknownEpoch(); d != 0 {
		t.Fatalf("dropped %d frames, want 0", d)
	}
}

func TestMuxDropsAndSignalsUnknownEpoch(t *testing.T) {
	r := newMuxRig(t, 2)
	sender := r.muxes[0].Open(7)

	var signalled []uint16
	r.muxes[1].OnUnknownEpoch = func(e uint16) { signalled = append(signalled, e) }

	sender.Update(intentFor(0))
	r.sched.Run()

	if d := r.muxes[1].DroppedUnknownEpoch(); d != 1 {
		t.Fatalf("dropped = %d, want 1", d)
	}
	if len(signalled) != 1 || signalled[0] != 7 {
		t.Fatalf("OnUnknownEpoch got %v, want [7]", signalled)
	}

	// Once the receiver opens the epoch, a retransmitted snapshot lands.
	var got int
	collect(r.muxes[1].Open(7), &got)
	sender.Update(intentFor(0)) // snapshot resend
	r.sched.Run()
	if got != 1 {
		t.Fatalf("after open: got %d entries, want 1", got)
	}
}

func TestMuxSharedSeqSpaceAcrossEpochs(t *testing.T) {
	r := newMuxRig(t, 2)
	a := r.muxes[0].Open(1)
	b := r.muxes[0].Open(2)
	var got1, got2 int
	collect(r.muxes[1].Open(1), &got1)
	collect(r.muxes[1].Open(2), &got2)

	// Payloads larger than one MTU force fragmentation; interleaved
	// multi-fragment packets from two epochs of the same sender must not
	// corrupt each other's reassembly because they share one seq space.
	big := make([]byte, 600)
	for i := 0; i < 4; i++ {
		in := intentFor(uint8(i))
		in.Data = big
		a.Update(in)
		r.sched.RunFor(30 * time.Second)
		in2 := intentFor(uint8(i))
		in2.Data = big
		b.Update(in2)
		r.sched.RunFor(30 * time.Second)
	}
	r.sched.Run()
	if got1 == 0 || got2 == 0 {
		t.Fatalf("epoch1=%d epoch2=%d entries, want both > 0", got1, got2)
	}
}

func TestMuxCloseGarbageCollects(t *testing.T) {
	r := newMuxRig(t, 2)
	sender := r.muxes[0].Open(1)
	var got int
	recvTr := r.muxes[1].Open(1)
	collect(recvTr, &got)

	sender.Update(intentFor(0))
	r.sched.Run()
	if got != 1 {
		t.Fatalf("pre-close: got %d entries, want 1", got)
	}
	sent := r.muxes[0].Stats().LogicalSent

	r.muxes[1].Close(1)
	if epochs := r.muxes[1].OpenEpochs(); len(epochs) != 0 {
		t.Fatalf("open epochs after close: %v", epochs)
	}
	sender.Update(intentFor(1))
	r.sched.Run()
	if got != 1 {
		t.Fatalf("post-close: got %d entries, want still 1", got)
	}
	if d := r.muxes[1].DroppedUnknownEpoch(); d != 1 {
		t.Fatalf("dropped = %d, want 1", d)
	}
	// Closed transports' counters fold into the mux aggregate.
	if s := r.muxes[1].Stats(); s.LogicalRecv == 0 {
		t.Fatalf("mux stats lost closed transport counters: %+v", s)
	}
	if s := r.muxes[0].Stats(); s.LogicalSent <= sent-1 {
		t.Fatalf("sender stats = %+v, want >= %d logical sent", s, sent)
	}
}
