package core

import (
	"errors"
	"time"
)

// SizedAuth is an Auth that produces placeholder signatures of the right
// length and always verifies, while still charging the configured virtual
// compute cost. Honest-only parameter sweeps use it to keep wall-clock time
// reasonable: the simulated latency (what the experiments measure) is
// unchanged because both the bytes on air and the virtual CPU charges match
// the real scheme. Byzantine-fault tests use node.RealAuth instead.
type SizedAuth struct {
	Len        int
	CostSign   time.Duration
	CostVerify time.Duration
}

var _ Auth = (*SizedAuth)(nil)

// Sign returns a deterministic placeholder signature.
func (a *SizedAuth) Sign(body []byte) ([]byte, error) {
	sig := make([]byte, a.Len)
	for i := range sig {
		sig[i] = byte(i) ^ 0x5A
	}
	return sig, nil
}

// Verify accepts any signature of the right length.
func (a *SizedAuth) Verify(_ uint16, _, sig []byte) error {
	if len(sig) != a.Len {
		return errors.New("core: placeholder signature length mismatch")
	}
	return nil
}

// SigLen implements Auth.
func (a *SizedAuth) SigLen() int { return a.Len }

// SignCost implements Auth.
func (a *SizedAuth) SignCost() time.Duration { return a.CostSign }

// VerifyCost implements Auth.
func (a *SizedAuth) VerifyCost() time.Duration { return a.CostVerify }
