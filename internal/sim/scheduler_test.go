package sim

import (
	"testing"
	"time"
)

func TestSchedulerOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.After(30*time.Millisecond, func() { got = append(got, 3) })
	s.After(10*time.Millisecond, func() { got = append(got, 1) })
	s.After(20*time.Millisecond, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d = %d, want %d", i, got[i], want[i])
		}
	}
	if s.Now() != 30*time.Millisecond {
		t.Errorf("Now() = %v, want 30ms", s.Now())
	}
}

func TestSchedulerFIFOAtSameTime(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(time.Second, func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events fired out of submission order: %v", got)
		}
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := New(1)
	fired := false
	e := s.After(time.Second, func() { fired = true })
	e.Cancel()
	s.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Error("Cancelled() = false after Cancel")
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := New(1)
	var tick int
	var loop func()
	loop = func() {
		tick++
		if tick < 5 {
			s.After(time.Second, loop)
		}
	}
	s.After(0, loop)
	s.Run()
	if tick != 5 {
		t.Errorf("tick = %d, want 5", tick)
	}
	if s.Now() != 4*time.Second {
		t.Errorf("Now() = %v, want 4s", s.Now())
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	s := New(1)
	var fired []time.Duration
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		d := d
		s.After(d, func() { fired = append(fired, d) })
	}
	s.RunUntil(2 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2 (boundary inclusive)", len(fired))
	}
	if s.Now() != 2*time.Second {
		t.Errorf("Now() = %v, want 2s", s.Now())
	}
	s.Run()
	if len(fired) != 3 {
		t.Errorf("after Run, fired %d events, want 3", len(fired))
	}
}

func TestSchedulerRunFor(t *testing.T) {
	s := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.After(time.Duration(i)*time.Second, func() { count++ })
	}
	s.RunFor(5 * time.Second)
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	s.RunFor(2 * time.Second)
	if count != 7 {
		t.Errorf("count = %d, want 7", count)
	}
}

func TestSchedulerStop(t *testing.T) {
	s := New(1)
	count := 0
	for i := 0; i < 10; i++ {
		s.After(time.Duration(i)*time.Second, func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Errorf("count = %d, want 3 (stopped early)", count)
	}
	if !s.Stopped() {
		t.Error("Stopped() = false")
	}
}

func TestSchedulerPastEventClamped(t *testing.T) {
	s := New(1)
	s.After(time.Second, func() {
		s.At(0, func() {}) // in the past; must clamp, not rewind clock
	})
	s.Run()
	if s.Now() != time.Second {
		t.Errorf("clock rewound: Now() = %v", s.Now())
	}
}

func TestSchedulerDeterminism(t *testing.T) {
	run := func(seed int64) []int64 {
		s := New(seed)
		var vals []int64
		var loop func()
		loop = func() {
			vals = append(vals, s.Rand().Int63n(1000))
			if len(vals) < 20 {
				s.After(time.Duration(s.Rand().Intn(100))*time.Millisecond, loop)
			}
		}
		s.After(0, loop)
		s.Run()
		return vals
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %d != %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical runs")
	}
}

func TestCPUSerializesWork(t *testing.T) {
	s := New(1)
	cpu := NewCPU(s)
	var done []time.Duration
	record := func() { done = append(done, s.Now()) }
	cpu.Exec(100*time.Millisecond, record)
	cpu.Exec(50*time.Millisecond, record)
	cpu.Exec(0, record)
	s.Run()
	want := []time.Duration{100 * time.Millisecond, 150 * time.Millisecond, 150 * time.Millisecond}
	for i := range want {
		if done[i] != want[i] {
			t.Errorf("job %d completed at %v, want %v", i, done[i], want[i])
		}
	}
	if cpu.BusyTotal() != 150*time.Millisecond {
		t.Errorf("BusyTotal = %v, want 150ms", cpu.BusyTotal())
	}
}

func TestCPUIdleGapThenWork(t *testing.T) {
	s := New(1)
	cpu := NewCPU(s)
	var at time.Duration
	cpu.Exec(10*time.Millisecond, func() {})
	s.After(time.Second, func() {
		cpu.Exec(10*time.Millisecond, func() { at = s.Now() })
	})
	s.Run()
	if at != time.Second+10*time.Millisecond {
		t.Errorf("second job at %v, want 1.01s (no stale busyUntil)", at)
	}
	if cpu.Busy() {
		t.Error("CPU still busy after drain")
	}
}

func TestEventNilSafety(t *testing.T) {
	// Cancel and Cancelled must both tolerate a nil event: drivers keep
	// "current timer" fields that are nil until first armed.
	var e *Event
	e.Cancel() // must not panic
	if !e.Cancelled() {
		t.Error("nil event not Cancelled: a nil timer can never fire")
	}
	s := New(1)
	live := s.After(time.Second, func() {})
	if live.Cancelled() {
		t.Error("pending event reported cancelled")
	}
	live.Cancel()
	if !live.Cancelled() {
		t.Error("cancelled event not reported cancelled")
	}
}
