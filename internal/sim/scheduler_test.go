package sim

import (
	"testing"
	"time"
)

func TestSchedulerOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.After(30*time.Millisecond, func() { got = append(got, 3) })
	s.After(10*time.Millisecond, func() { got = append(got, 1) })
	s.After(20*time.Millisecond, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d = %d, want %d", i, got[i], want[i])
		}
	}
	if s.Now() != 30*time.Millisecond {
		t.Errorf("Now() = %v, want 30ms", s.Now())
	}
}

func TestSchedulerFIFOAtSameTime(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(time.Second, func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events fired out of submission order: %v", got)
		}
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := New(1)
	fired := false
	e := s.After(time.Second, func() { fired = true })
	e.Cancel()
	s.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Error("Cancelled() = false after Cancel")
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := New(1)
	var tick int
	var loop func()
	loop = func() {
		tick++
		if tick < 5 {
			s.After(time.Second, loop)
		}
	}
	s.After(0, loop)
	s.Run()
	if tick != 5 {
		t.Errorf("tick = %d, want 5", tick)
	}
	if s.Now() != 4*time.Second {
		t.Errorf("Now() = %v, want 4s", s.Now())
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	s := New(1)
	var fired []time.Duration
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		d := d
		s.After(d, func() { fired = append(fired, d) })
	}
	s.RunUntil(2 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2 (boundary inclusive)", len(fired))
	}
	if s.Now() != 2*time.Second {
		t.Errorf("Now() = %v, want 2s", s.Now())
	}
	s.Run()
	if len(fired) != 3 {
		t.Errorf("after Run, fired %d events, want 3", len(fired))
	}
}

func TestSchedulerRunFor(t *testing.T) {
	s := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.After(time.Duration(i)*time.Second, func() { count++ })
	}
	s.RunFor(5 * time.Second)
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	s.RunFor(2 * time.Second)
	if count != 7 {
		t.Errorf("count = %d, want 7", count)
	}
}

func TestSchedulerStop(t *testing.T) {
	s := New(1)
	count := 0
	for i := 0; i < 10; i++ {
		s.After(time.Duration(i)*time.Second, func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Errorf("count = %d, want 3 (stopped early)", count)
	}
	if !s.Stopped() {
		t.Error("Stopped() = false")
	}
}

func TestSchedulerPastEventClamped(t *testing.T) {
	s := New(1)
	s.After(time.Second, func() {
		s.At(0, func() {}) // in the past; must clamp, not rewind clock
	})
	s.Run()
	if s.Now() != time.Second {
		t.Errorf("clock rewound: Now() = %v", s.Now())
	}
}

func TestSchedulerDeterminism(t *testing.T) {
	run := func(seed int64) []int64 {
		s := New(seed)
		var vals []int64
		var loop func()
		loop = func() {
			vals = append(vals, s.Rand().Int63n(1000))
			if len(vals) < 20 {
				s.After(time.Duration(s.Rand().Intn(100))*time.Millisecond, loop)
			}
		}
		s.After(0, loop)
		s.Run()
		return vals
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %d != %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical runs")
	}
}

func TestCPUSerializesWork(t *testing.T) {
	s := New(1)
	cpu := NewCPU(s)
	var done []time.Duration
	record := func() { done = append(done, s.Now()) }
	cpu.Exec(100*time.Millisecond, record)
	cpu.Exec(50*time.Millisecond, record)
	cpu.Exec(0, record)
	s.Run()
	want := []time.Duration{100 * time.Millisecond, 150 * time.Millisecond, 150 * time.Millisecond}
	for i := range want {
		if done[i] != want[i] {
			t.Errorf("job %d completed at %v, want %v", i, done[i], want[i])
		}
	}
	if cpu.BusyTotal() != 150*time.Millisecond {
		t.Errorf("BusyTotal = %v, want 150ms", cpu.BusyTotal())
	}
}

func TestCPUIdleGapThenWork(t *testing.T) {
	s := New(1)
	cpu := NewCPU(s)
	var at time.Duration
	cpu.Exec(10*time.Millisecond, func() {})
	s.After(time.Second, func() {
		cpu.Exec(10*time.Millisecond, func() { at = s.Now() })
	})
	s.Run()
	if at != time.Second+10*time.Millisecond {
		t.Errorf("second job at %v, want 1.01s (no stale busyUntil)", at)
	}
	if cpu.Busy() {
		t.Error("CPU still busy after drain")
	}
}

func TestEventNilSafety(t *testing.T) {
	// Cancel and Cancelled must both tolerate a nil event: drivers keep
	// "current timer" fields that are nil until first armed.
	var e *Event
	e.Cancel() // must not panic
	if !e.Cancelled() {
		t.Error("nil event not Cancelled: a nil timer can never fire")
	}
	s := New(1)
	live := s.After(time.Second, func() {})
	if live.Cancelled() {
		t.Error("pending event reported cancelled")
	}
	live.Cancel()
	if !live.Cancelled() {
		t.Error("cancelled event not reported cancelled")
	}
}

func TestSchedulerPendingExcludesCancelled(t *testing.T) {
	s := New(1)
	var evts []*Event
	for i := 0; i < 10; i++ {
		evts = append(evts, s.After(time.Duration(i+1)*time.Second, func() {}))
	}
	if s.Pending() != 10 || s.Cancelled() != 0 {
		t.Fatalf("Pending=%d Cancelled=%d, want 10/0", s.Pending(), s.Cancelled())
	}
	for _, e := range evts[:4] {
		e.Cancel()
	}
	if s.Pending() != 6 {
		t.Errorf("Pending = %d after 4 cancels, want 6", s.Pending())
	}
	if s.Cancelled() != 4 {
		t.Errorf("Cancelled = %d, want 4", s.Cancelled())
	}
	evts[0].Cancel() // double-cancel must not double-count
	if s.Cancelled() != 4 {
		t.Errorf("Cancelled = %d after double-cancel, want 4", s.Cancelled())
	}
	s.Run()
	if s.Pending() != 0 || s.Cancelled() != 0 {
		t.Errorf("after drain: Pending=%d Cancelled=%d, want 0/0", s.Pending(), s.Cancelled())
	}
	if s.Fired() != 6 {
		t.Errorf("Fired = %d, want 6", s.Fired())
	}
	// Cancelling an already-fired event must not disturb the accounting.
	evts[9].Cancel()
	if s.Cancelled() != 0 {
		t.Errorf("Cancelled = %d after post-fire cancel, want 0", s.Cancelled())
	}
}

func TestSchedulerCompaction(t *testing.T) {
	s := New(1)
	fired := 0
	// Interleave survivors among a large majority of cancelled events so
	// compaction triggers (cancelled > half the queue) mid-stream.
	var doomed []*Event
	for i := 0; i < 1000; i++ {
		d := time.Duration(i+1) * time.Millisecond
		if i%10 == 0 {
			s.After(d, func() { fired++ })
		} else {
			doomed = append(doomed, s.After(d, func() { t.Error("cancelled event fired") }))
		}
	}
	for _, e := range doomed {
		e.Cancel()
	}
	if got := s.Pending(); got != 100 {
		t.Fatalf("Pending = %d after mass cancel, want 100", got)
	}
	// Compaction must have discarded the cancelled slots in bulk.
	if s.Cancelled()*2 > s.Pending()+s.Cancelled() {
		t.Errorf("compaction did not run: %d cancelled slots remain", s.Cancelled())
	}
	s.Run()
	if fired != 100 {
		t.Errorf("fired = %d survivors, want 100", fired)
	}
	if s.Now() != 991*time.Millisecond {
		t.Errorf("Now() = %v, want 991ms (last survivor)", s.Now())
	}
}

func TestSchedulerPostOrdering(t *testing.T) {
	// Post/PostAfter events interleave with At/After events in strict
	// (time, submission) order.
	s := New(1)
	var got []int
	s.Post(2*time.Second, func() { got = append(got, 2) })
	s.After(time.Second, func() { got = append(got, 1) })
	s.PostAfter(time.Second, func() { got = append(got, 11) })
	s.At(2*time.Second, func() { got = append(got, 22) })
	s.PostAfter(-time.Second, func() { got = append(got, 0) })
	s.Run()
	want := []int{0, 1, 11, 2, 22}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

func BenchmarkSchedulerChurn(b *testing.B) {
	// The bench-grid hot path: a rolling horizon of scheduled events, a
	// fraction of which are cancelled before they fire (retransmission
	// timers), the rest firing in time order.
	s := New(1)
	var timer *Event
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := time.Duration(s.Rand().Intn(1000)) * time.Microsecond
		s.PostAfter(d, func() {})
		if i%4 == 0 {
			timer.Cancel()
			timer = s.After(d+time.Millisecond, func() { timer = nil })
		}
		s.Step()
	}
	s.Run()
}

// TestLaneOrderingMatchesHeap schedules the same mix of delays through
// the lane paths (AfterFixed/PostAfterFixed) and through the heap
// (After/Post) and requires identical firing order: lanes are a data
// structure change, never an ordering change. Same-timestamp ties must
// resolve by scheduling order (seq) across the lane/heap boundary.
func TestLaneOrderingMatchesHeap(t *testing.T) {
	type sched struct {
		d    time.Duration
		lane bool
	}
	// Interleave two recurring delays with heap events, including exact
	// timestamp collisions (1ms lane vs 1ms heap).
	plan := []sched{
		{1 * time.Millisecond, true},
		{1 * time.Millisecond, false},
		{2 * time.Millisecond, true},
		{1 * time.Millisecond, true},
		{2 * time.Millisecond, false},
		{0, true},
		{0, false},
		{3 * time.Millisecond, true}, // third distinct lane delay
	}
	run := func(useLanes bool) []int {
		s := New(1)
		var got []int
		for i, p := range plan {
			i := i
			fn := func() { got = append(got, i) }
			if p.lane && useLanes {
				if i%2 == 0 {
					s.AfterFixed(p.d, fn)
				} else {
					s.PostAfterFixed(p.d, fn)
				}
			} else {
				if i%2 == 0 {
					s.After(p.d, fn)
				} else {
					s.PostAfter(p.d, fn)
				}
			}
		}
		s.Run()
		return got
	}
	want := run(false)
	got := run(true)
	if len(got) != len(plan) {
		t.Fatalf("fired %d of %d events", len(got), len(plan))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("firing order diverged at %d: lanes %v, heap %v", i, got, want)
		}
	}
}

// TestLaneRecurringFIFO re-arms a fixed delay from its own callback many
// times — the transport's poll pattern — and checks the virtual clock
// advances exactly one delay per firing.
func TestLaneRecurringFIFO(t *testing.T) {
	s := New(1)
	const d = 5 * time.Millisecond
	n := 0
	var tick func()
	tick = func() {
		n++
		if want := time.Duration(n) * d; s.Now() != want {
			t.Fatalf("firing %d at %v, want %v", n, s.Now(), want)
		}
		if n < 1000 {
			s.PostAfterFixed(d, tick)
		}
	}
	s.PostAfterFixed(d, tick)
	s.Run()
	if n != 1000 {
		t.Fatalf("fired %d times, want 1000", n)
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending() = %d after drain", s.Pending())
	}
}

// TestLaneCancelAccounting cancels a laned event and checks it neither
// fires nor lingers in Pending, matching heap-event cancel semantics.
func TestLaneCancelAccounting(t *testing.T) {
	s := New(1)
	fired := false
	e := s.AfterFixed(time.Millisecond, func() { fired = true })
	s.AfterFixed(time.Millisecond, func() {})
	if got := s.Pending(); got != 2 {
		t.Fatalf("Pending() = %d, want 2", got)
	}
	e.Cancel()
	if got := s.Pending(); got != 1 {
		t.Fatalf("Pending() after cancel = %d, want 1", got)
	}
	if got := s.Cancelled(); got != 1 {
		t.Fatalf("Cancelled() = %d, want 1", got)
	}
	s.Run()
	if fired {
		t.Fatal("cancelled laned event fired")
	}
	if got := s.Cancelled(); got != 0 {
		t.Fatalf("Cancelled() after run = %d, want 0", got)
	}
	// Cancelling after the pop must not corrupt the accounting.
	e.Cancel()
	if got := s.Cancelled(); got != 0 {
		t.Fatalf("Cancelled() after late cancel = %d, want 0", got)
	}
}

// TestLaneOverflowFallsBack schedules more distinct fixed delays than
// there are lanes; the excess must still fire, in correct order.
func TestLaneOverflowFallsBack(t *testing.T) {
	s := New(1)
	var got []time.Duration
	for i := maxLanes + 2; i >= 1; i-- {
		d := time.Duration(i) * time.Millisecond
		s.PostAfterFixed(d, func() { got = append(got, s.Now()) })
	}
	s.Run()
	if len(got) != maxLanes+2 {
		t.Fatalf("fired %d events, want %d", len(got), maxLanes+2)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("out of order: %v", got)
		}
	}
}

// TestLaneSharedByManyPollers has many independent pollers share one
// delay, so the lane never fully drains and must reclaim its consumed
// prefix instead of growing without bound.
func TestLaneSharedByManyPollers(t *testing.T) {
	s := New(1)
	const pollers, rounds = 16, 2000
	total := 0
	for p := 0; p < pollers; p++ {
		n := 0
		var tick func()
		tick = func() {
			total++
			if n++; n < rounds {
				s.PostAfterFixed(time.Millisecond, tick)
			}
		}
		s.PostAfterFixed(time.Millisecond, tick)
	}
	s.Run()
	if total != pollers*rounds {
		t.Fatalf("fired %d, want %d", total, pollers*rounds)
	}
	// The compaction threshold (head > 64) plus slack for the live tail
	// bounds the backing array far below the pollers*rounds slots the lane
	// consumed over its lifetime.
	for i := range s.lanes {
		if cap(s.lanes[i].items) > 1024 {
			t.Fatalf("lane %d backing array grew to %d slots for %d pollers", i, cap(s.lanes[i].items), pollers)
		}
	}
}
