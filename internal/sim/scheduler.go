// Package sim provides a deterministic discrete-event scheduler with a
// virtual clock. All protocol and wireless-channel behaviour in this
// repository runs on top of it, which makes simulations of LoRa-scale
// latencies (tens of seconds of virtual time) complete in milliseconds of
// wall time and makes every run reproducible from a seed.
package sim

import (
	"container/heap"
	"math/rand"
	"time"
)

// Event is a scheduled callback. It can be cancelled before it fires.
type Event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	cancelled bool
	index     int // heap index, -1 once popped
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.cancelled = true
	}
}

// Cancelled reports whether Cancel was called on the event. Like Cancel,
// it is nil-safe: a nil event (never scheduled) reports true, since it will
// certainly never fire.
func (e *Event) Cancelled() bool { return e == nil || e.cancelled }

// At returns the virtual time at which the event is scheduled to fire.
func (e *Event) At() time.Duration { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Scheduler is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; an entire simulation (all nodes, channels, and
// protocol instances) runs inside one Scheduler. Concurrency across
// simulations (e.g. parameter sweeps) is achieved by running independent
// Schedulers in separate goroutines.
type Scheduler struct {
	now     time.Duration
	seq     uint64
	events  eventHeap
	rng     *rand.Rand
	stopped bool
	fired   uint64
}

// New returns a Scheduler whose random source is seeded with seed.
// Identical seeds produce identical simulations.
func New(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time (duration since simulation start).
func (s *Scheduler) Now() time.Duration { return s.now }

// Rand returns the scheduler's deterministic random source.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Fired returns the total number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Pending returns the number of events waiting in the queue (including
// cancelled events that have not yet been discarded).
func (s *Scheduler) Pending() int { return len(s.events) }

// After schedules fn to run d from now. Negative d is treated as zero.
func (s *Scheduler) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// At schedules fn at absolute virtual time t. Times in the past are clamped
// to now.
func (s *Scheduler) At(t time.Duration, fn func()) *Event {
	if t < s.now {
		t = s.now
	}
	e := &Event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, e)
	return e
}

// Step executes the next event, advancing the clock. It returns false when
// the queue is empty or the scheduler has been stopped.
func (s *Scheduler) Step() bool {
	for len(s.events) > 0 && !s.stopped {
		e := heap.Pop(&s.events).(*Event)
		if e.cancelled {
			continue
		}
		s.now = e.at
		s.fired++
		e.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then sets the clock to t.
// Events scheduled exactly at t do fire.
func (s *Scheduler) RunUntil(t time.Duration) {
	for len(s.events) > 0 && !s.stopped {
		// Peek.
		next := s.events[0]
		if next.cancelled {
			heap.Pop(&s.events)
			continue
		}
		if next.at > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// RunFor advances the simulation by d of virtual time.
func (s *Scheduler) RunFor(d time.Duration) { s.RunUntil(s.now + d) }

// Stop halts Run/RunUntil at the next event boundary. Pending events remain
// queued.
func (s *Scheduler) Stop() { s.stopped = true }

// Stopped reports whether Stop has been called.
func (s *Scheduler) Stopped() bool { return s.stopped }
