// Package sim provides a deterministic discrete-event scheduler with a
// virtual clock. All protocol and wireless-channel behaviour in this
// repository runs on top of it, which makes simulations of LoRa-scale
// latencies (tens of seconds of virtual time) complete in milliseconds of
// wall time and makes every run reproducible from a seed.
package sim

import (
	"math/rand"
	"time"
)

// Event is the cancellation handle for a callback scheduled with At or
// After. Most events are never cancelled; schedule those with Post or
// PostAfter instead, which skip the handle allocation entirely — the
// queue slot itself carries the callback.
type Event struct {
	at        time.Duration
	fn        func()
	s         *Scheduler
	cancelled bool
	// popped marks that the event's queue slot has been consumed (fired,
	// skipped, or compacted away), so a late Cancel must not perturb the
	// scheduler's cancelled-event accounting.
	popped bool
	// laned marks that the slot lives in a FIFO lane rather than the heap,
	// so Cancel charges the right counter (lanes are never heap-compacted).
	laned bool
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() {
	if e == nil || e.cancelled {
		return
	}
	e.cancelled = true
	e.fn = nil // release the closure; it can never run
	if !e.popped {
		if e.laned {
			e.s.nCancelledLane++
		} else {
			e.s.nCancelled++
			e.s.maybeCompact()
		}
	}
}

// Cancelled reports whether Cancel was called on the event. Like Cancel,
// it is nil-safe: a nil event (never scheduled) reports true, since it will
// certainly never fire.
func (e *Event) Cancelled() bool { return e == nil || e.cancelled }

// At returns the virtual time at which the event is scheduled to fire.
func (e *Event) At() time.Duration { return e.at }

// item is one queue slot. The queue stores items by value in a packed
// 4-ary heap: no per-event heap node, no container/heap interface calls,
// and — for the Post/PostAfter and CPU.Exec fast paths, which carry the
// callback inline — no per-event allocation at all. Cancellable events
// (At/After) carry an *Event handle instead and are skipped lazily at pop
// time.
type item struct {
	at  time.Duration
	seq uint64
	fn  func() // inline callback; nil when e carries it
	e   *Event // cancellation handle; nil on the fast path
	cpu *CPU   // when set, a CPU completion: decrement cpu.queued at fire
}

// Scheduler is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; an entire simulation (all nodes, channels, and
// protocol instances) runs inside one Scheduler. Concurrency across
// simulations (e.g. parameter sweeps) is achieved by running independent
// Schedulers in separate goroutines.
//
// Pop order is the strict total order (at, seq) — seq is unique — so the
// firing sequence is independent of the heap's internal layout and
// identical to the previous container/heap implementation.
type Scheduler struct {
	now        time.Duration
	seq        uint64
	heap       []item
	nCancelled int // cancelled-but-unpopped heap events still occupying slots
	rng        *rand.Rand
	stopped    bool
	fired      uint64

	// lanes are FIFO fast paths for recurring fixed relative delays
	// (AfterFixed): a polling interval re-armed millions of times would
	// otherwise dominate heap traffic. For one fixed d, at = now + d and
	// seq are both monotone in scheduling order, so append order IS
	// (at, seq) pop order — O(1) insert and pop, no sifting.
	lanes          []lane
	laneN          int // live + cancelled slots across all lanes
	nCancelledLane int // cancelled-but-unpopped lane slots
}

// lane is one fixed-delay FIFO: slots between head and len(items) are
// queued in firing order. The backing array is reset (not reallocated)
// whenever the lane empties.
type lane struct {
	d     time.Duration
	items []item
	head  int
}

// maxLanes bounds the per-pop lane scan. Delays beyond the cap fall back
// to the heap, which is always correct.
const maxLanes = 4

// New returns a Scheduler whose random source is seeded with seed.
// Identical seeds produce identical simulations.
func New(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time (duration since simulation start).
func (s *Scheduler) Now() time.Duration { return s.now }

// Rand returns the scheduler's deterministic random source.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Fired returns the total number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Pending returns the number of events still eligible to fire. Cancelled
// events that have not yet been discarded from the queue are excluded.
func (s *Scheduler) Pending() int {
	return len(s.heap) + s.laneN - s.nCancelled - s.nCancelledLane
}

// Cancelled returns the number of cancelled events still occupying queue
// slots (they are discarded lazily at pop time, or in bulk when they come
// to dominate the queue).
func (s *Scheduler) Cancelled() int { return s.nCancelled + s.nCancelledLane }

// After schedules fn to run d from now. Negative d is treated as zero.
func (s *Scheduler) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// At schedules fn at absolute virtual time t and returns a cancellation
// handle. Times in the past are clamped to now. Callers that never cancel
// should prefer Post, which does not allocate a handle.
func (s *Scheduler) At(t time.Duration, fn func()) *Event {
	if t < s.now {
		t = s.now
	}
	e := &Event{at: t, fn: fn, s: s}
	s.push(item{at: t, seq: s.seq, e: e})
	s.seq++
	return e
}

// Post schedules fn at absolute virtual time t with no cancellation
// handle. It is the allocation-free fast path for fire-and-forget events
// (deliveries, CPU completions, injection loops): the callback rides in
// the queue slot itself. Times in the past are clamped to now.
func (s *Scheduler) Post(t time.Duration, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.push(item{at: t, seq: s.seq, fn: fn})
	s.seq++
}

// PostAfter schedules fn to run d from now with no cancellation handle.
// Negative d is treated as zero.
func (s *Scheduler) PostAfter(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.Post(s.now+d, fn)
}

// AfterFixed is After for a delay that recurs with the same value many
// times over a run — an aggregation window or polling interval re-armed on
// every firing. Slots go to a per-delay FIFO lane with O(1) insert and pop
// instead of the heap; firing order is identical to After (the strict
// (time, seq) order), because for one fixed delay both the target time and
// the sequence number are monotone in scheduling order. The first few
// distinct delays get lanes; later ones silently fall back to After.
func (s *Scheduler) AfterFixed(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	l := s.laneFor(d)
	if l == nil {
		return s.At(s.now+d, fn)
	}
	t := s.now + d
	e := &Event{at: t, fn: fn, s: s, laned: true}
	l.items = append(l.items, item{at: t, seq: s.seq, e: e})
	s.seq++
	s.laneN++
	return e
}

// PostAfterFixed is AfterFixed without a cancellation handle: the
// callback rides in the lane slot itself, so a poll re-armed millions of
// times allocates nothing at all. Use it for recurring fixed delays whose
// callbacks guard themselves (a stopped flag, a generation check) instead
// of cancelling the event.
func (s *Scheduler) PostAfterFixed(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	l := s.laneFor(d)
	if l == nil {
		s.Post(s.now+d, fn)
		return
	}
	l.items = append(l.items, item{at: s.now + d, seq: s.seq, fn: fn})
	s.seq++
	s.laneN++
}

// laneFor returns the lane dedicated to delay d, creating it if the cap
// allows, or nil when d must use the heap.
func (s *Scheduler) laneFor(d time.Duration) *lane {
	for i := range s.lanes {
		if s.lanes[i].d == d {
			return &s.lanes[i]
		}
	}
	if len(s.lanes) >= maxLanes {
		return nil
	}
	s.lanes = append(s.lanes, lane{d: d})
	return &s.lanes[len(s.lanes)-1]
}

// minLane returns the index of the lane whose head slot fires earliest,
// or -1 when every lane is empty.
func (s *Scheduler) minLane() int {
	best := -1
	for i := range s.lanes {
		l := &s.lanes[i]
		if l.head >= len(l.items) {
			continue
		}
		if best < 0 || less(&l.items[l.head], &s.lanes[best].items[s.lanes[best].head]) {
			best = i
		}
	}
	return best
}

// peekAny returns the earliest queued slot across the heap and all lanes
// (which may be cancelled), or nil when nothing is queued.
func (s *Scheduler) peekAny() *item {
	li := s.minLane()
	if li < 0 {
		if len(s.heap) == 0 {
			return nil
		}
		return &s.heap[0]
	}
	lh := &s.lanes[li].items[s.lanes[li].head]
	if len(s.heap) == 0 || less(lh, &s.heap[0]) {
		return lh
	}
	return &s.heap[0]
}

// popAny removes and returns the earliest slot across the heap and all
// lanes. The caller guarantees at least one slot is queued.
func (s *Scheduler) popAny() item {
	li := s.minLane()
	if li >= 0 {
		l := &s.lanes[li]
		lh := &l.items[l.head]
		if len(s.heap) == 0 || less(lh, &s.heap[0]) {
			it := *lh
			*lh = item{} // release the handle for GC
			l.head++
			switch {
			case l.head == len(l.items):
				l.items = l.items[:0] // reuse the backing array
				l.head = 0
			case l.head > 64 && l.head*2 >= len(l.items):
				// A lane shared by many pollers never fully drains, so
				// also reclaim the consumed prefix once it dominates:
				// slide the live tail to the front (amortized O(1) — each
				// slot moves at most once per lifetime).
				n := copy(l.items, l.items[l.head:])
				tail := l.items[n:]
				for i := range tail {
					tail[i] = item{}
				}
				l.items = l.items[:n]
				l.head = 0
			}
			s.laneN--
			return it
		}
	}
	return s.popMin()
}

// postCPU enqueues a CPU completion: fn runs at t, immediately after the
// owning CPU's queue accounting is decremented. t is never in the past
// (CPU completion times are >= now by construction).
func (s *Scheduler) postCPU(t time.Duration, fn func(), c *CPU) {
	s.push(item{at: t, seq: s.seq, fn: fn, cpu: c})
	s.seq++
}

// Step executes the next event, advancing the clock. It returns false when
// the queue is empty or the scheduler has been stopped.
func (s *Scheduler) Step() bool {
	for len(s.heap)+s.laneN > 0 && !s.stopped {
		it := s.popAny()
		fn := it.fn
		if it.e != nil {
			e := it.e
			e.popped = true
			if e.cancelled {
				if e.laned {
					s.nCancelledLane--
				} else {
					s.nCancelled--
				}
				continue
			}
			fn = e.fn
		}
		s.now = it.at
		s.fired++
		if it.cpu != nil {
			it.cpu.queued--
		}
		fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then sets the clock to t.
// Events scheduled exactly at t do fire.
func (s *Scheduler) RunUntil(t time.Duration) {
	for !s.stopped {
		head := s.peekAny()
		if head == nil {
			break
		}
		if head.e != nil && head.e.cancelled {
			it := s.popAny()
			it.e.popped = true
			if it.e.laned {
				s.nCancelledLane--
			} else {
				s.nCancelled--
			}
			continue
		}
		if head.at > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// RunFor advances the simulation by d of virtual time.
func (s *Scheduler) RunFor(d time.Duration) { s.RunUntil(s.now + d) }

// Stop halts Run/RunUntil at the next event boundary. Pending events remain
// queued.
func (s *Scheduler) Stop() { s.stopped = true }

// Stopped reports whether Stop has been called.
func (s *Scheduler) Stopped() bool { return s.stopped }

// less orders queue slots by (at, seq) — the firing order.
func less(a, b *item) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts it into the 4-ary heap, sifting up with hole movement (each
// level costs one copy, not one swap).
func (s *Scheduler) push(it item) {
	s.heap = append(s.heap, item{})
	h := s.heap
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if less(&h[p], &it) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = it
}

// popMin removes and returns the earliest slot. The caller guarantees the
// heap is non-empty.
func (s *Scheduler) popMin() item {
	h := s.heap
	min := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = item{} // release closures/handles for GC
	s.heap = h[:n]
	if n > 1 {
		s.siftDown(0)
	}
	return min
}

// siftDown restores the heap property below slot i. A 4-ary layout halves
// tree depth versus binary; the extra comparisons per level stay in one
// cache line of packed items.
func (s *Scheduler) siftDown(i int) {
	h := s.heap
	n := len(h)
	it := h[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if less(&h[j], &h[m]) {
				m = j
			}
		}
		if less(&it, &h[m]) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = it
}

// maybeCompact discards cancelled slots in bulk once they dominate the
// queue, so workloads that cancel far more events than they fire (e.g.
// per-message retransmission timers) keep the heap — and every sift —
// proportional to the live event count.
func (s *Scheduler) maybeCompact() {
	if s.nCancelled <= 64 || s.nCancelled*2 <= len(s.heap) {
		return
	}
	live := s.heap[:0]
	for _, it := range s.heap {
		if it.e != nil && it.e.cancelled {
			it.e.popped = true
			continue
		}
		live = append(live, it)
	}
	tail := s.heap[len(live):]
	for i := range tail {
		tail[i] = item{}
	}
	s.heap = live
	s.nCancelled = 0
	for i := (len(live) - 2) >> 2; i >= 0; i-- {
		s.siftDown(i)
	}
}
