package sim

import "time"

// CPU models a single-core processor (the paper evaluates on an STM32F767).
// Work submitted with Exec is serialized: each job starts no earlier than
// the completion of all previously submitted jobs, and completes after its
// stated cost of virtual compute time. This is how cryptographic operation
// latencies (threshold signing, share verification, combining) are charged
// against protocol latency, and how packets queue behind a busy CPU — the
// effect the paper's DMA alignment module exists to mitigate.
type CPU struct {
	sched     *Scheduler
	busyUntil time.Duration
	queued    int
	busyTotal time.Duration
}

// NewCPU returns a CPU bound to the scheduler.
func NewCPU(s *Scheduler) *CPU {
	return &CPU{sched: s}
}

// Exec schedules fn to run after cost of serialized compute time. Zero-cost
// jobs still run asynchronously (on the next scheduler step) to keep event
// ordering uniform. The completion rides the scheduler's allocation-free
// queue slot; CPU jobs cannot be cancelled once submitted.
func (c *CPU) Exec(cost time.Duration, fn func()) {
	if cost < 0 {
		cost = 0
	}
	start := c.sched.Now()
	if c.busyUntil > start {
		start = c.busyUntil
	}
	done := start + cost
	c.busyUntil = done
	c.busyTotal += cost
	c.queued++
	c.sched.postCPU(done, fn, c)
}

// Busy reports whether the CPU has outstanding work at the current time.
func (c *CPU) Busy() bool { return c.busyUntil > c.sched.Now() || c.queued > 0 }

// BusyUntil returns the virtual time at which all submitted work completes.
func (c *CPU) BusyUntil() time.Duration { return c.busyUntil }

// BusyTotal returns the cumulative compute time charged so far.
func (c *CPU) BusyTotal() time.Duration { return c.busyTotal }

// QueueLen returns the number of jobs submitted but not yet completed.
func (c *CPU) QueueLen() int { return c.queued }
