// Package bench is the experiment harness: for every table and figure in
// the paper's evaluation (Table I, Fig. 10a–d, Fig. 11a–b, Fig. 12a–b,
// Fig. 13a–b) — plus the beyond-the-paper SMR sweeps — it declares a
// sweep.Grid over a base configuration and executes it on the parallel
// grid engine (internal/sweep). The registry in registry.go catalogs the
// experiments for cmd/wbft-bench (-list/-exp dispatch); emit.go is the
// one row-emission path (JSON trajectories, CSV, progress).
// cmd/wbft-bench prints the results as tables; the root bench_test.go
// exposes each experiment as a Go benchmark. EXPERIMENTS.md records
// paper-vs-measured shapes and the engine's determinism contract.
package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/component"
	"repro/internal/crypto"
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/wireless"
)

// ComponentRig is a 4-node single-hop network for component-level
// experiments (broadcast protocols and ABA in isolation, as in Fig. 11/12).
type ComponentRig struct {
	Sched *sim.Scheduler
	Ch    *wireless.Channel
	Envs  []*component.Env
}

// NewComponentRig builds the rig. Batched selects the transport mode.
func NewComponentRig(seed int64, batched bool, cfg crypto.Config, net wireless.Config) (*ComponentRig, error) {
	const n, f = 4, 1
	sched := sim.New(seed)
	ch := wireless.NewChannel(sched, net)
	suites, err := crypto.DealCached(n, f, cfg, seed^0xbe)
	if err != nil {
		return nil, err
	}
	rig := &ComponentRig{Sched: sched, Ch: ch}
	ncfg := node.Config{Batched: batched, Seed: seed}
	for i := 0; i < n; i++ {
		nd := node.New(sched, ch, wireless.NodeID(i), suites[i], ncfg)
		rig.Envs = append(rig.Envs, &component.Env{
			N: n, F: f, Me: i,
			Suite: suites[i],
			T:     nd.Transport(),
			CPU:   nd.CPU,
			Sched: sched,
			// The rig keeps its historical RNG derivation so component
			// benchmark trajectories stay comparable across PRs.
			Rand: rand.New(rand.NewSource(seed + int64(i)*337)),
		})
	}
	return rig, nil
}

// RunUntil drives the simulation until done() or the virtual deadline,
// returning the completion time.
func (r *ComponentRig) RunUntil(deadline time.Duration, done func() bool) (time.Duration, error) {
	for r.Sched.Now() < deadline {
		if done() {
			return r.Sched.Now(), nil
		}
		if !r.Sched.Step() {
			break
		}
	}
	if done() {
		return r.Sched.Now(), nil
	}
	return 0, fmt.Errorf("bench: experiment did not converge by %v", deadline)
}

// LogicalPerNode returns the mean signed logical packets sent per node.
func (r *ComponentRig) LogicalPerNode() float64 {
	var total uint64
	for _, env := range r.Envs {
		total += env.T.Stats().LogicalSent
	}
	return float64(total) / float64(len(r.Envs))
}
