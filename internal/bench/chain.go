package bench

import (
	"fmt"
	"io"

	"repro/internal/run"
	"repro/internal/sweep"
)

// ChainPoint is one sustained-SMR measurement: committed payload bytes per
// virtual second at a given pipeline depth. This experiment goes beyond the
// paper's one-epoch-at-a-time evaluation: it measures the replicated-log
// deployment (as HoneyBadgerBFT and Dumbo report their throughput) on the
// wireless channel, and how much epoch pipelining buys on top of
// ConsensusBatcher.
type ChainPoint struct {
	Protocol       string  `json:"protocol"`
	Transport      string  `json:"transport"` // "batched" | "baseline"
	Depth          int     `json:"depth"`
	Epochs         int     `json:"epochs"`
	CommittedTxs   int     `json:"committed_txs"`
	CommittedBytes uint64  `json:"committed_bytes"`
	VirtualSecs    float64 `json:"virtual_s"`
	ThroughputBps  float64 `json:"throughput_Bps"`
	CommitLatencyS float64 `json:"commit_latency_s"`
	Accesses       uint64  `json:"accesses"`
	DedupDropped   int     `json:"dedup_dropped"`
	// ElapsedMS is the wall-clock cost of producing this row — sweep
	// metadata, not a simulated (golden-checked) outcome.
	ElapsedMS int64 `json:"elapsed_ms"`
}

// ChainThroughput sweeps pipeline depth for two protocol families under
// both transports on the lossy default channel. Traffic is sized so the
// mempool can always fill the next proposal: the sweep isolates how much
// of the epoch cadence pipelining reclaims.
func ChainThroughput(seed int64, epochs int, opts sweep.Options) ([]ChainPoint, error) {
	if epochs <= 0 {
		epochs = 10
	}
	grid := sweep.Grid[run.Spec]{
		Base: chainBase(seed, epochs),
		Axes: []sweep.Axis[run.Spec]{protoAxis(), transportAxis(), depthAxis(1, 2, 4)},
	}
	results, err := sweep.Run(grid, opts, func(c sweep.Cell[run.Spec]) (ChainPoint, error) {
		res, err := run.Run(c.Config)
		if err != nil {
			return ChainPoint{}, fmt.Errorf("bench: chain %s: %w", c.Name(), err)
		}
		return ChainPoint{
			Protocol:       c.Labels[0],
			Transport:      c.Labels[1],
			Depth:          c.Config.Workload.Window,
			Epochs:         res.Chain.EpochsCommitted,
			CommittedTxs:   res.Chain.CommittedTxs,
			CommittedBytes: res.Chain.CommittedBytes,
			VirtualSecs:    res.Duration.Seconds(),
			ThroughputBps:  res.Chain.ThroughputBps,
			CommitLatencyS: res.Chain.MeanCommitLatency.Seconds(),
			Accesses:       res.Accesses,
			DedupDropped:   res.Chain.DedupDropped,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]ChainPoint, len(results))
	for i, r := range results {
		r.Value.ElapsedMS = r.Elapsed.Milliseconds()
		rows[i] = r.Value
	}
	return rows, nil
}

// runChainExp is the registry entry: sweep, table, trajectory.
func runChainExp(ctx *Context) error {
	rows, err := ChainThroughput(ctx.Seed, ctx.ChainEpochs, ctx.sweepOpts(false))
	if err != nil {
		return err
	}
	PrintChain(ctx.Out, rows)
	return ctx.emit("chain-sustained-throughput", rows)
}

// PrintChain renders the sustained-throughput sweep.
func PrintChain(w io.Writer, rows []ChainPoint) {
	fmt.Fprintln(w, "Chain/SMR — sustained committed bytes/sec vs pipeline depth (beyond the paper)")
	fmt.Fprintf(w, "%-9s %-9s %5s %7s %6s %10s %10s %12s %9s\n",
		"protocol", "transport", "depth", "epochs", "txs", "virtual_s", "Bps", "commit_lat", "accesses")
	for _, r := range rows {
		fmt.Fprintf(w, "%-9s %-9s %5d %7d %6d %10.0f %10.2f %11.0fs %9d\n",
			r.Protocol, r.Transport, r.Depth, r.Epochs, r.CommittedTxs,
			r.VirtualSecs, r.ThroughputBps, r.CommitLatencyS, r.Accesses)
	}
}
