package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/protocol"
	"repro/internal/run"
)

// ChainPoint is one sustained-SMR measurement: committed payload bytes per
// virtual second at a given pipeline depth. This experiment goes beyond the
// paper's one-epoch-at-a-time evaluation: it measures the replicated-log
// deployment (as HoneyBadgerBFT and Dumbo report their throughput) on the
// wireless channel, and how much epoch pipelining buys on top of
// ConsensusBatcher.
type ChainPoint struct {
	Protocol       string  `json:"protocol"`
	Transport      string  `json:"transport"` // "batched" | "baseline"
	Depth          int     `json:"depth"`
	Epochs         int     `json:"epochs"`
	CommittedTxs   int     `json:"committed_txs"`
	CommittedBytes uint64  `json:"committed_bytes"`
	VirtualSecs    float64 `json:"virtual_s"`
	ThroughputBps  float64 `json:"throughput_Bps"`
	CommitLatencyS float64 `json:"commit_latency_s"`
	Accesses       uint64  `json:"accesses"`
	DedupDropped   int     `json:"dedup_dropped"`
}

// ChainThroughput sweeps pipeline depth for two protocol families under
// both transports on the lossy default channel. Traffic is sized so the
// mempool can always fill the next proposal: the sweep isolates how much
// of the epoch cadence pipelining reclaims.
func ChainThroughput(seed int64, epochs int) ([]ChainPoint, error) {
	if epochs <= 0 {
		epochs = 10
	}
	var out []ChainPoint
	for _, p := range []struct {
		name string
		kind protocol.Kind
		coin protocol.CoinKind
	}{
		{"HB-SC", protocol.HoneyBadger, protocol.CoinSig},
		{"Dumbo-SC", protocol.DumboKind, protocol.CoinSig},
	} {
		for _, batched := range []bool{true, false} {
			for _, depth := range []int{1, 2, 4} {
				spec := run.Defaults(p.kind, p.coin)
				spec.Seed = seed
				spec.Batched = batched
				spec.Workload = run.Chain(epochs)
				spec.Workload.Window = depth
				spec.Workload.TxInterval = time.Second // keep proposals full
				res, err := run.Run(spec)
				if err != nil {
					return nil, fmt.Errorf("bench: chain %s batched=%v depth=%d: %w", p.name, batched, depth, err)
				}
				tname := "baseline"
				if batched {
					tname = "batched"
				}
				out = append(out, ChainPoint{
					Protocol:       p.name,
					Transport:      tname,
					Depth:          depth,
					Epochs:         res.Chain.EpochsCommitted,
					CommittedTxs:   res.Chain.CommittedTxs,
					CommittedBytes: res.Chain.CommittedBytes,
					VirtualSecs:    res.Duration.Seconds(),
					ThroughputBps:  res.Chain.ThroughputBps,
					CommitLatencyS: res.Chain.MeanCommitLatency.Seconds(),
					Accesses:       res.Accesses,
					DedupDropped:   res.Chain.DedupDropped,
				})
			}
		}
	}
	return out, nil
}

// PrintChain renders the sustained-throughput sweep.
func PrintChain(w io.Writer, rows []ChainPoint) {
	fmt.Fprintln(w, "Chain/SMR — sustained committed bytes/sec vs pipeline depth (beyond the paper)")
	fmt.Fprintf(w, "%-9s %-9s %5s %7s %6s %10s %10s %12s %9s\n",
		"protocol", "transport", "depth", "epochs", "txs", "virtual_s", "Bps", "commit_lat", "accesses")
	for _, r := range rows {
		fmt.Fprintf(w, "%-9s %-9s %5d %7d %6d %10.0f %10.2f %11.0fs %9d\n",
			r.Protocol, r.Transport, r.Depth, r.Epochs, r.CommittedTxs,
			r.VirtualSecs, r.ThroughputBps, r.CommitLatencyS, r.Accesses)
	}
}

// WriteChainJSON records the sweep as the BENCH_chain.json trajectory file
// referenced by EXPERIMENTS.md.
func WriteChainJSON(w io.Writer, seed int64, rows []ChainPoint) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Experiment string       `json:"experiment"`
		Seed       int64        `json:"seed"`
		Points     []ChainPoint `json:"points"`
	}{Experiment: "chain-sustained-throughput", Seed: seed, Points: rows})
}
