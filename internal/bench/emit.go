package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"runtime"
	"strings"
)

// This file is the package's one row-emission path: every sweep's points
// go through WriteTrajectory (the BENCH_*.json files), WriteCSV, or the
// per-experiment Print function — there is no bespoke emit code left in
// the experiment files.

// GeneratedWith records how a trajectory file was produced. It is sweep
// metadata, deliberately separate from the points: the golden tests (and
// the determinism guarantee) cover the points only, while workers and the
// Go version may legitimately differ between regenerations that produce
// bit-identical results.
type GeneratedWith struct {
	Workers   int    `json:"workers"`
	GoVersion string `json:"goversion"`
}

// WriteTrajectory writes one sweep's machine-readable record:
//
//	{experiment, seed, generated_with: {workers, goversion}, points: [...]}
//
// points is the sweep's row slice; each row carries its own elapsed_ms.
// Result fields are a pure function of (experiment, seed) — regeneration
// at any worker count reproduces them bit-identically; only the
// generated_with header and the per-row elapsed_ms wall-clock fields
// vary between invocations.
func WriteTrajectory(w io.Writer, experiment string, seed int64, workers int, points any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Experiment    string        `json:"experiment"`
		Seed          int64         `json:"seed"`
		GeneratedWith GeneratedWith `json:"generated_with"`
		Points        any           `json:"points"`
	}{
		Experiment:    experiment,
		Seed:          seed,
		GeneratedWith: GeneratedWith{Workers: workers, GoVersion: runtime.Version()},
		Points:        points,
	})
}

// WriteCSV flattens a slice of point structs into CSV, deriving the
// header from the structs' json tags (the same names the trajectory
// files use). Values are rendered with %v; strings containing commas or
// quotes are quoted.
func WriteCSV(w io.Writer, points any) error {
	v := reflect.ValueOf(points)
	if v.Kind() != reflect.Slice {
		return fmt.Errorf("bench: WriteCSV wants a slice, got %T", points)
	}
	if v.Len() == 0 {
		return nil
	}
	st := v.Index(0).Type()
	if st.Kind() != reflect.Struct {
		return fmt.Errorf("bench: WriteCSV wants a slice of structs, got %T", points)
	}
	var cols []int
	var header []string
	for i := 0; i < st.NumField(); i++ {
		f := st.Field(i)
		if !f.IsExported() {
			continue
		}
		name := strings.Split(f.Tag.Get("json"), ",")[0]
		if name == "-" {
			continue
		}
		if name == "" {
			name = f.Name
		}
		cols = append(cols, i)
		header = append(header, name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for r := 0; r < v.Len(); r++ {
		row := make([]string, len(cols))
		for j, i := range cols {
			row[j] = csvField(fmt.Sprintf("%v", v.Index(r).Field(i).Interface()))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func csvField(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
