package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/run"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

// FaultPoint is one sustained-SMR measurement under a scripted fault
// scenario. The fault sweep is the evaluation the paper leaves out: its
// runs are fault-free (plus a t=0 crash), but the asynchronous-BFT value
// proposition only shows under the conditions wireless deployments face —
// crashes with recovery, partitions, jamming bursts, and the adversarial
// delay schedule the asynchronous model is defined against.
type FaultPoint struct {
	Scenario       string  `json:"scenario"`
	Spec           string  `json:"spec"` // the scenario DSL actually run
	Protocol       string  `json:"protocol"`
	Transport      string  `json:"transport"` // "batched" | "baseline"
	Epochs         int     `json:"epochs"`
	CommittedTxs   int     `json:"committed_txs"`
	VirtualSecs    float64 `json:"virtual_s"`
	ThroughputBps  float64 `json:"throughput_Bps"`
	CommitLatencyS float64 `json:"commit_latency_s"`
	Accesses       uint64  `json:"accesses"`
	Collisions     uint64  `json:"collisions"`
	Error          string  `json:"error,omitempty"` // deadline/deadlock, if the scenario defeated the run
	// ElapsedMS is the wall-clock cost of producing this row — sweep
	// metadata, not a simulated (golden-checked) outcome.
	ElapsedMS int64 `json:"elapsed_ms"`
}

// faultScenario names one scripted plan of the sweep. Crash/recovery times
// are placed against the ~5m45s default epoch cadence: the crash lands
// around epoch 5 and the recovery around epoch 10.
type faultScenario struct {
	name string
	plan scenario.Plan
}

func faultScenarios() []faultScenario {
	return []faultScenario{
		{"fault-free", scenario.Plan{}},
		{"crash-f", scenario.Crash(3)},
		{"crash-recover", scenario.Plan{}.Then(
			scenario.CrashAt(30*time.Minute, 2),
			scenario.RecoverAt(60*time.Minute, 2),
		)},
		{"delay-adversary", scenario.Delay(0.25, 10*time.Second)},
		{"jam-burst", scenario.Plan{}.Then(
			scenario.JamAt(20*time.Minute, 90*time.Second),
			scenario.LossBurst(40*time.Minute, 5*time.Minute, 0.3),
		)},
		{"partition-heal", scenario.Plan{}.Then(
			scenario.PartitionAt(15*time.Minute, []int{0, 1}, []int{2, 3}),
			scenario.HealAt(45*time.Minute),
		)},
	}
}

// scenarioAxis turns the scripted fault plans into a grid axis.
func scenarioAxis() sweep.Axis[run.Spec] {
	ax := sweep.Axis[run.Spec]{Name: "scenario"}
	for _, sc := range faultScenarios() {
		sc := sc
		ax.Points = append(ax.Points, sweep.Point[run.Spec]{
			Label: sc.name,
			Apply: func(s *run.Spec) { s.Scenario = sc.plan },
		})
	}
	return ax
}

// FaultSweep runs every fault scenario against two protocol families under
// both transports on the sustained SMR deployment and reports throughput,
// latency, and contention under each condition. A scenario that defeats a
// run (deadline or deadlock) is recorded as a row with Error set rather
// than aborting the sweep — "this configuration does not survive this
// fault" is itself the measurement.
func FaultSweep(seed int64, epochs int, opts sweep.Options) ([]FaultPoint, error) {
	if epochs <= 0 {
		epochs = 12
	}
	base := chainBase(seed, epochs)
	// Recovery catch-up needs peers to keep the missing epochs alive; give
	// every run the same (generous) GC window so the scenarios stay
	// comparable.
	base.Workload.GCLag = epochs
	grid := sweep.Grid[run.Spec]{
		Base: base,
		Axes: []sweep.Axis[run.Spec]{scenarioAxis(), protoAxis(), transportAxis()},
	}
	results, err := sweep.Run(grid, opts, func(c sweep.Cell[run.Spec]) (FaultPoint, error) {
		pt := FaultPoint{
			Scenario:  c.Labels[0],
			Spec:      c.Config.Scenario.String(),
			Protocol:  c.Labels[1],
			Transport: c.Labels[2],
		}
		res, err := run.Run(c.Config)
		if err != nil {
			pt.Error = err.Error()
			return pt, nil
		}
		pt.Epochs = res.Chain.EpochsCommitted
		pt.CommittedTxs = res.Chain.CommittedTxs
		pt.VirtualSecs = res.Duration.Seconds()
		pt.ThroughputBps = res.Chain.ThroughputBps
		pt.CommitLatencyS = res.Chain.MeanCommitLatency.Seconds()
		pt.Accesses = res.Accesses
		pt.Collisions = res.Collisions
		return pt, nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]FaultPoint, len(results))
	for i, r := range results {
		r.Value.ElapsedMS = r.Elapsed.Milliseconds()
		rows[i] = r.Value
	}
	return rows, nil
}

// runFaultsExp is the registry entry: sweep, table, trajectory.
func runFaultsExp(ctx *Context) error {
	rows, err := FaultSweep(ctx.Seed, ctx.ChainEpochs, ctx.sweepOpts(false))
	if err != nil {
		return err
	}
	PrintFaults(ctx.Out, rows)
	return ctx.emit("fault-scenario-sweep", rows)
}

// PrintFaults renders the fault sweep.
func PrintFaults(w io.Writer, rows []FaultPoint) {
	fmt.Fprintln(w, "Faults — sustained SMR under scripted fault scenarios (beyond the paper)")
	fmt.Fprintf(w, "%-15s %-9s %-9s %7s %6s %10s %8s %12s %9s\n",
		"scenario", "protocol", "transport", "epochs", "txs", "virtual_s", "Bps", "commit_lat", "accesses")
	for _, r := range rows {
		if r.Error != "" {
			fmt.Fprintf(w, "%-15s %-9s %-9s %s\n", r.Scenario, r.Protocol, r.Transport, "FAILED: "+r.Error)
			continue
		}
		fmt.Fprintf(w, "%-15s %-9s %-9s %7d %6d %10.0f %8.2f %11.0fs %9d\n",
			r.Scenario, r.Protocol, r.Transport, r.Epochs, r.CommittedTxs,
			r.VirtualSecs, r.ThroughputBps, r.CommitLatencyS, r.Accesses)
	}
}
