package bench

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/byz"
	"repro/internal/run"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

// MHChainPoint is one Clustered × Chain measurement: sustained pipelined
// SMR per cluster with rotating leaders ordering threshold-certified
// cluster cuts on the global tier — the matrix cell the unified run API
// unlocked. Neither the paper (one-shot multihop) nor the earlier chain
// experiment (single-hop) covers it.
type MHChainPoint struct {
	Protocol  string `json:"protocol"`
	Transport string `json:"transport"` // "batched" | "baseline"
	Depth     int    `json:"depth"`
	Clusters  int    `json:"clusters"`
	// Scenario is the fault/adversary DSL the cell ran (empty for the
	// fault-free grid).
	Scenario string `json:"scenario,omitempty"`
	// Epochs is the per-cluster commit target every honest node reached.
	Epochs int `json:"epochs"`
	// CommittedTxs sums one reference node per cluster.
	CommittedTxs int `json:"committed_txs"`
	// OrderedCuts / GlobalEntries describe the cross-cluster total order
	// built on the global tier (certificate-verified cuts only).
	OrderedCuts   int `json:"ordered_cuts"`
	GlobalEntries int `json:"global_entries"`
	// RejectedCuts counts committed global records every seat discarded
	// as forged/unsigned (summed across seats); ForgedCommitted counts
	// forged cuts that survived into the cut order — the run driver's
	// provenance check fails the whole cell if it is ever non-zero.
	RejectedCuts    int     `json:"rejected_cuts"`
	ForgedCommitted int     `json:"forged_committed"`
	VirtualSecs     float64 `json:"virtual_s"`
	ThroughputBps   float64 `json:"throughput_Bps"`
	CommitLatencyS  float64 `json:"commit_latency_s"`
	LocalAccesses   uint64  `json:"local_accesses"`
	GlobalAccesses  uint64  `json:"global_accesses"`
	Error           string  `json:"error,omitempty"`
	// ElapsedMS is the wall-clock cost of producing this row — sweep
	// metadata, not a simulated (golden-checked) outcome.
	ElapsedMS int64 `json:"elapsed_ms"`
}

// forgeAxis scripts the forged-cut attack (byz.NameForgeCut) on the last
// cluster's last member, which also taints that cluster's relay seat —
// the Byzantine seat then rewrites the cut records in its own global
// proposals to claim a cluster it does not control. The three points
// cover the acceptance matrix: armed from the start, armed mid-run, and
// forging while an untainted cluster's designated relay is crashed (the
// failover re-collection path).
func forgeAxis() sweep.Axis[run.Spec] {
	victim := func(s *run.Spec) int { return s.Topology.Clusters*s.Topology.PerCluster - 1 }
	return sweep.Axis[run.Spec]{Name: "forge", Points: []sweep.Point[run.Spec]{
		{Label: "forge-start", Apply: func(s *run.Spec) {
			s.Scenario = scenario.Byz(byz.NameForgeCut, victim(s))
		}},
		{Label: "forge-midrun", Apply: func(s *run.Spec) {
			s.Scenario = scenario.Plan{}.Then(scenario.ByzAt(10*time.Minute, victim(s), byz.NameForgeCut))
		}},
		{Label: "forge-failover", Apply: func(s *run.Spec) {
			s.Scenario = scenario.Byz(byz.NameForgeCut, victim(s)).
				Then(scenario.CrashAt(15*time.Minute, 0), scenario.RecoverAt(45*time.Minute, 0))
			s.Workload.GCLag = s.Workload.Epochs // recovery must out-span the outage
		}},
	}}
}

// MHChainSweep runs the Clustered × Chain cell for two protocol families
// under both transports at pipeline depths 1 and 2 (4 clusters of 4, the
// paper's 16-node deployment), then the forged-cut adversarial cells:
// both families against a Byzantine relay seat forging cuts from the
// start, mid-run, and during relay failover. A configuration the
// deployment defeats is recorded as a row with Error set rather than
// aborting the sweep.
func MHChainSweep(seed int64, epochs int, opts sweep.Options) ([]MHChainPoint, error) {
	if epochs <= 0 {
		epochs = 4
	}
	base := chainBase(seed, epochs)
	base.Topology = run.Clustered(4, 4)
	exec := func(c sweep.Cell[run.Spec]) (MHChainPoint, error) {
		pt := MHChainPoint{
			Protocol:  c.Labels[0],
			Transport: "batched",
			Depth:     c.Config.Workload.Window,
			Clusters:  c.Config.Topology.Clusters,
			Scenario:  c.Config.Scenario.String(),
		}
		if len(c.Labels) > 2 { // the fault-free grid's transport axis
			pt.Transport = c.Labels[1]
		}
		res, err := run.Run(c.Config)
		if err != nil {
			pt.Error = err.Error()
			return pt, nil
		}
		pt.Epochs = res.Chain.EpochsCommitted
		pt.CommittedTxs = res.Chain.CommittedTxs
		pt.OrderedCuts = res.Tiers.OrderedCuts
		pt.GlobalEntries = res.Tiers.GlobalEntries
		pt.RejectedCuts = res.Tiers.CutCerts.RejectedCuts
		// The driver's post-run provenance walk re-verifies every
		// certificate against the true cluster logs and errors on any
		// forgery that slipped through, so a successful run proves zero.
		pt.ForgedCommitted = 0
		pt.VirtualSecs = res.Duration.Seconds()
		pt.ThroughputBps = res.Chain.ThroughputBps
		pt.CommitLatencyS = res.Chain.MeanCommitLatency.Seconds()
		pt.LocalAccesses = res.Tiers.LocalAccesses
		pt.GlobalAccesses = res.Tiers.GlobalAccesses
		return pt, nil
	}
	grid := sweep.Grid[run.Spec]{
		Base: base,
		Axes: []sweep.Axis[run.Spec]{protoAxis(), transportAxis(), depthAxis(1, 2)},
	}
	// A -filter may select cells from only one of the two grids; that is
	// an error only when it matches neither.
	results, err := sweep.Run(grid, opts, exec)
	if err != nil && !errors.Is(err, sweep.ErrNoCells) {
		return nil, err
	}
	forgeGrid := sweep.Grid[run.Spec]{
		Base: base,
		Axes: []sweep.Axis[run.Spec]{protoAxis(), forgeAxis()},
	}
	forgeResults, ferr := sweep.Run(forgeGrid, opts, exec)
	if ferr != nil && !errors.Is(ferr, sweep.ErrNoCells) {
		return nil, ferr
	}
	if err != nil && ferr != nil {
		return nil, err
	}
	results = append(results, forgeResults...)
	rows := make([]MHChainPoint, len(results))
	for i, r := range results {
		r.Value.ElapsedMS = r.Elapsed.Milliseconds()
		rows[i] = r.Value
	}
	return rows, nil
}

// runMHChainExp is the registry entry: sweep, table, trajectory.
func runMHChainExp(ctx *Context) error {
	rows, err := MHChainSweep(ctx.Seed, ctx.ChainEpochs, ctx.sweepOpts(false))
	if err != nil {
		return err
	}
	PrintMHChain(ctx.Out, rows)
	return ctx.emit("clustered-chain-smr", rows)
}

// PrintMHChain renders the clustered-chain sweep.
func PrintMHChain(w io.Writer, rows []MHChainPoint) {
	fmt.Fprintln(w, "Clustered chain — pipelined SMR per cluster, certified cluster cuts ordered on the global tier")
	fmt.Fprintf(w, "%-9s %-9s %5s %7s %6s %5s %8s %7s %10s %8s %12s %-s\n",
		"protocol", "transport", "depth", "epochs", "txs", "cuts", "rej_cuts", "forged", "virtual_s", "Bps", "commit_lat", "scenario")
	for _, r := range rows {
		scen := r.Scenario
		if scen == "" {
			scen = "fault-free"
		}
		if r.Error != "" {
			fmt.Fprintf(w, "%-9s %-9s %5d %s\n", r.Protocol, r.Transport, r.Depth, "FAILED: "+r.Error)
			continue
		}
		fmt.Fprintf(w, "%-9s %-9s %5d %7d %6d %5d %8d %7d %10.0f %8.2f %11.0fs %-s\n",
			r.Protocol, r.Transport, r.Depth, r.Epochs, r.CommittedTxs, r.OrderedCuts,
			r.RejectedCuts, r.ForgedCommitted, r.VirtualSecs, r.ThroughputBps, r.CommitLatencyS, scen)
	}
}
