package bench

import (
	"fmt"
	"io"

	"repro/internal/run"
	"repro/internal/sweep"
)

// MHChainPoint is one Clustered × Chain measurement: sustained pipelined
// SMR per cluster with rotating leaders ordering cluster cuts on the
// global tier — the matrix cell the unified run API unlocked. Neither the
// paper (one-shot multihop) nor the earlier chain experiment (single-hop)
// covers it.
type MHChainPoint struct {
	Protocol  string `json:"protocol"`
	Transport string `json:"transport"` // "batched" | "baseline"
	Depth     int    `json:"depth"`
	Clusters  int    `json:"clusters"`
	// Epochs is the per-cluster commit target every honest node reached.
	Epochs int `json:"epochs"`
	// CommittedTxs sums one reference node per cluster.
	CommittedTxs int `json:"committed_txs"`
	// OrderedCuts / GlobalEntries describe the cross-cluster total order
	// built on the global tier.
	OrderedCuts    int     `json:"ordered_cuts"`
	GlobalEntries  int     `json:"global_entries"`
	VirtualSecs    float64 `json:"virtual_s"`
	ThroughputBps  float64 `json:"throughput_Bps"`
	CommitLatencyS float64 `json:"commit_latency_s"`
	LocalAccesses  uint64  `json:"local_accesses"`
	GlobalAccesses uint64  `json:"global_accesses"`
	Error          string  `json:"error,omitempty"`
	// ElapsedMS is the wall-clock cost of producing this row — sweep
	// metadata, not a simulated (golden-checked) outcome.
	ElapsedMS int64 `json:"elapsed_ms"`
}

// MHChainSweep runs the Clustered × Chain cell for two protocol families
// under both transports at pipeline depths 1 and 2 (4 clusters of 4, the
// paper's 16-node deployment). A configuration the deployment defeats is
// recorded as a row with Error set rather than aborting the sweep.
func MHChainSweep(seed int64, epochs int, opts sweep.Options) ([]MHChainPoint, error) {
	if epochs <= 0 {
		epochs = 4
	}
	base := chainBase(seed, epochs)
	base.Topology = run.Clustered(4, 4)
	grid := sweep.Grid[run.Spec]{
		Base: base,
		Axes: []sweep.Axis[run.Spec]{protoAxis(), transportAxis(), depthAxis(1, 2)},
	}
	results, err := sweep.Run(grid, opts, func(c sweep.Cell[run.Spec]) (MHChainPoint, error) {
		pt := MHChainPoint{
			Protocol:  c.Labels[0],
			Transport: c.Labels[1],
			Depth:     c.Config.Workload.Window,
			Clusters:  c.Config.Topology.Clusters,
		}
		res, err := run.Run(c.Config)
		if err != nil {
			pt.Error = err.Error()
			return pt, nil
		}
		pt.Epochs = res.Chain.EpochsCommitted
		pt.CommittedTxs = res.Chain.CommittedTxs
		pt.OrderedCuts = res.Tiers.OrderedCuts
		pt.GlobalEntries = res.Tiers.GlobalEntries
		pt.VirtualSecs = res.Duration.Seconds()
		pt.ThroughputBps = res.Chain.ThroughputBps
		pt.CommitLatencyS = res.Chain.MeanCommitLatency.Seconds()
		pt.LocalAccesses = res.Tiers.LocalAccesses
		pt.GlobalAccesses = res.Tiers.GlobalAccesses
		return pt, nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]MHChainPoint, len(results))
	for i, r := range results {
		r.Value.ElapsedMS = r.Elapsed.Milliseconds()
		rows[i] = r.Value
	}
	return rows, nil
}

// runMHChainExp is the registry entry: sweep, table, trajectory.
func runMHChainExp(ctx *Context) error {
	rows, err := MHChainSweep(ctx.Seed, ctx.ChainEpochs, ctx.sweepOpts(false))
	if err != nil {
		return err
	}
	PrintMHChain(ctx.Out, rows)
	return ctx.emit("clustered-chain-smr", rows)
}

// PrintMHChain renders the clustered-chain sweep.
func PrintMHChain(w io.Writer, rows []MHChainPoint) {
	fmt.Fprintln(w, "Clustered chain — pipelined SMR per cluster, cluster cuts ordered on the global tier")
	fmt.Fprintf(w, "%-9s %-9s %5s %7s %6s %5s %10s %8s %12s %9s %9s\n",
		"protocol", "transport", "depth", "epochs", "txs", "cuts", "virtual_s", "Bps", "commit_lat", "local_acc", "globl_acc")
	for _, r := range rows {
		if r.Error != "" {
			fmt.Fprintf(w, "%-9s %-9s %5d %s\n", r.Protocol, r.Transport, r.Depth, "FAILED: "+r.Error)
			continue
		}
		fmt.Fprintf(w, "%-9s %-9s %5d %7d %6d %5d %10.0f %8.2f %11.0fs %9d %9d\n",
			r.Protocol, r.Transport, r.Depth, r.Epochs, r.CommittedTxs, r.OrderedCuts,
			r.VirtualSecs, r.ThroughputBps, r.CommitLatencyS, r.LocalAccesses, r.GlobalAccesses)
	}
}
