package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/protocol"
	"repro/internal/run"
	"repro/internal/sweep"
	"repro/internal/traffic"
)

// TrafficPoint is one open-loop saturation measurement: an arrival
// process (Poisson or bursty on-off) offers transactions at a configured
// aggregate rate regardless of how fast the engine commits, and the row
// records where the offered/committed curves part ways — the saturation
// knee — along with the client-visible latency percentiles and the
// admission-control drop count under the bounded mempool.
type TrafficPoint struct {
	Protocol string  `json:"protocol"`
	Pattern  string  `json:"pattern"` // "poisson" | "onoff"
	RateTPS  float64 `json:"rate_tps"`
	Seed     int64   `json:"seed"`
	Epochs   int     `json:"epochs"`
	// OfferedTxs counts generator arrivals; CommittedTxs what the chain
	// ordered; RejectedTxs what the reference node's bounded mempool
	// refused at admission. Offered - committed - rejected is backlog
	// still pooled at run end, not loss.
	OfferedTxs    int     `json:"offered_txs"`
	CommittedTxs  int     `json:"committed_txs"`
	RejectedTxs   int     `json:"rejected_txs"`
	PeakPoolBytes int     `json:"peak_pool_bytes"`
	VirtualSecs   float64 `json:"virtual_s"`
	ThroughputBps float64 `json:"throughput_Bps"`
	// Per-transaction submit->commit latency percentiles (seconds) at the
	// reference node — the client-visible tail, not epoch latency.
	P50S       float64 `json:"p50_s"`
	P90S       float64 `json:"p90_s"`
	P99S       float64 `json:"p99_s"`
	HonestSafe bool    `json:"honest_safe"`
	Error      string  `json:"error,omitempty"`
	// ElapsedMS is the wall-clock cost of producing this row — sweep
	// metadata, not a simulated (golden-checked) outcome.
	ElapsedMS int64 `json:"elapsed_ms"`
}

// trafficPatternAxis selects the arrival process. Both points share the
// same 1000-client population; on-off adds the bursty duty cycle (awake
// 2 min of every 10, so the active subset churns and arrivals clump).
func trafficPatternAxis() sweep.Axis[run.Spec] {
	return sweep.Axis[run.Spec]{Name: "pattern", Points: []sweep.Point[run.Spec]{
		{Label: "poisson", Apply: func(s *run.Spec) {
			s.Workload.Arrival = traffic.Pattern{Kind: traffic.Poisson, Clients: 1000}
		}},
		{Label: "onoff", Apply: func(s *run.Spec) {
			s.Workload.Arrival = traffic.Pattern{
				Kind: traffic.OnOff, Clients: 1000,
				OnMean: 2 * time.Minute, OffMean: 8 * time.Minute,
			}
		}},
	}}
}

// trafficRateAxis sweeps the aggregate offered rate (tx/s). It goes last
// so rates are innermost: a row's neighbors trace one saturation curve.
// Apply only sets Rate, so it composes with the pattern axis's Pattern.
func trafficRateAxis(rates ...float64) sweep.Axis[run.Spec] {
	ax := sweep.Axis[run.Spec]{Name: "rate"}
	for _, r := range rates {
		r := r
		ax.Points = append(ax.Points, sweep.Point[run.Spec]{
			Label: fmt.Sprintf("rate=%g", r),
			Apply: func(s *run.Spec) { s.Workload.Arrival.Rate = r },
		})
	}
	return ax
}

// TrafficSweep runs the open-loop saturation matrix: engine x arrival
// pattern x offered rate, every cell under a 2 KiB mempool admission cap
// so overload shows up as counted rejections instead of unbounded pool
// growth. The rates bracket the measured HB-SC commit capacity
// (~0.025 tx/s at 64-byte transactions on the LoRa-class channel, from
// BENCH_chain.json): 0.2x, 0.8x, ~3x, and ~13x capacity, so each curve
// crosses its knee inside the sweep. Rows record failures (Error /
// HonestSafe=false) rather than aborting.
func TrafficSweep(seed int64, epochs int, opts sweep.Options) ([]TrafficPoint, error) {
	if epochs <= 0 {
		epochs = 6
	}
	base := chainBase(seed, epochs)
	base.Workload.GCLag = epochs // full logs survive for the provenance audit
	base.Workload.Mempool.MaxPendingBytes = 2048
	grid := sweep.Grid[run.Spec]{
		Base: base,
		Axes: []sweep.Axis[run.Spec]{
			aleaProtoAxis(), trafficPatternAxis(),
			trafficRateAxis(0.005, 0.02, 0.08, 0.32),
		},
	}
	results, err := sweep.Run(grid, opts, func(c sweep.Cell[run.Spec]) (TrafficPoint, error) {
		pt := TrafficPoint{
			Protocol: c.Labels[0],
			Pattern:  c.Labels[1],
			RateTPS:  c.Config.Workload.Arrival.Rate,
			Seed:     c.Config.Seed,
		}
		res, err := run.Run(c.Config)
		if err != nil {
			pt.Error = err.Error()
			return pt, nil
		}
		pt.Epochs = res.Chain.EpochsCommitted
		pt.OfferedTxs = res.Chain.SubmittedTxs
		pt.CommittedTxs = res.Chain.CommittedTxs
		pt.RejectedTxs = res.Chain.AdmissionRejected
		pt.PeakPoolBytes = res.Chain.PeakMempoolBytes
		pt.VirtualSecs = res.Duration.Seconds()
		pt.ThroughputBps = res.Chain.ThroughputBps
		if lat := res.Chain.TxLatency; lat != nil {
			pt.P50S = lat.P50.Seconds()
			pt.P90S = lat.P90.Seconds()
			pt.P99S = lat.P99.Seconds()
		}
		// The driver already verified agreement and gap-freedom across
		// honest logs; what remains is provenance.
		forged := protocol.CountForged(res.Chain.Logs, c.Config.Workload.TxSize, res.Chain.SubmittedTxs)
		pt.HonestSafe = forged == 0
		if forged > 0 {
			pt.Error = fmt.Sprintf("%d forged transactions committed", forged)
		}
		return pt, nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]TrafficPoint, len(results))
	for i, r := range results {
		r.Value.ElapsedMS = r.Elapsed.Milliseconds()
		rows[i] = r.Value
	}
	return rows, nil
}

// runTrafficExp is the registry entry: sweep, table, trajectory.
func runTrafficExp(ctx *Context) error {
	rows, err := TrafficSweep(ctx.Seed, ctx.ChainEpochs, ctx.sweepOpts(false))
	if err != nil {
		return err
	}
	PrintTraffic(ctx.Out, rows)
	return ctx.emit("traffic-sweep", rows)
}

// PrintTraffic renders the saturation curves.
func PrintTraffic(w io.Writer, rows []TrafficPoint) {
	fmt.Fprintln(w, "Traffic — open-loop saturation: offered rate vs commit throughput, tail latency, drops")
	fmt.Fprintf(w, "%-9s %-8s %7s %8s %9s %7s %8s %8s %8s %6s %6s\n",
		"protocol", "pattern", "rate", "offered", "committed", "reject", "Bps", "p50", "p99", "pool", "safe")
	for _, r := range rows {
		if r.Error != "" && r.Epochs == 0 {
			fmt.Fprintf(w, "%-9s %-8s %7g %s\n", r.Protocol, r.Pattern, r.RateTPS, "FAILED: "+r.Error)
			continue
		}
		safe := "OK"
		if !r.HonestSafe {
			safe = "FAIL"
		}
		fmt.Fprintf(w, "%-9s %-8s %7g %8d %9d %7d %8.2f %7.1fs %7.1fs %6d %6s\n",
			r.Protocol, r.Pattern, r.RateTPS, r.OfferedTxs, r.CommittedTxs,
			r.RejectedTxs, r.ThroughputBps, r.P50S, r.P99S, r.PeakPoolBytes, safe)
	}
}
