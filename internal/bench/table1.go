package bench

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"repro/internal/component"
	"repro/internal/crypto"
	"repro/internal/sweep"
	"repro/internal/wireless"
)

// Table1Row is one row of Table I: message overhead per node for an
// N-component parallel protocol, analytic columns plus our measured
// logical-packet counts per node in both transport modes.
type Table1Row struct {
	Component        string
	Wired            int // analytic, per paper
	BaselineWireless int // analytic
	Batcher          int // analytic
	MeasuredBaseline float64
	MeasuredBatched  float64
}

// table1Cell is the grid configuration of one measured Table I point.
type table1Cell struct {
	Component string
	Batched   bool
}

// Table1 computes the paper's Table I for N=4: the analytic columns use
// the paper's formulas; the measured columns run each component with N
// parallel instances on the simulator and count signed logical packets per
// node (retransmissions make measured values slightly exceed the analytic
// ideal). The 5x2 measured grid runs on the sweep engine; the analytic
// columns are joined onto the results by grid coordinate.
func Table1(seed int64, opts sweep.Options) ([]Table1Row, error) {
	const n = 4
	rows := []Table1Row{
		{Component: "RBC", Wired: (n - 1) * (1 + 2*n), BaselineWireless: 1 + 2*n, Batcher: 1 + 2},
		{Component: "CBC", Wired: 3 * (n - 1), BaselineWireless: 1 + (n - 1) + 1, Batcher: 3},
		{Component: "PRBC", Wired: (n - 1) * (1 + 3*n), BaselineWireless: 1 + 3*n, Batcher: 1 + 3},
		{Component: "Bracha's ABA", Wired: 3 * n * (n - 1) * (1 + 2*n), BaselineWireless: 3 * n * (1 + 2*n), Batcher: 3 * 3},
		{Component: "Cachin's ABA", Wired: 3 * n * (n - 1), BaselineWireless: 3 * n, Batcher: 3},
	}
	compAxis := sweep.Axis[table1Cell]{Name: "component"}
	for _, r := range rows {
		name := r.Component
		compAxis.Points = append(compAxis.Points, sweep.Point[table1Cell]{
			Label: name,
			Apply: func(c *table1Cell) { c.Component = name },
		})
	}
	grid := sweep.Grid[table1Cell]{
		Axes: []sweep.Axis[table1Cell]{compAxis, {Name: "transport", Points: []sweep.Point[table1Cell]{
			{Label: "baseline", Apply: func(c *table1Cell) { c.Batched = false }},
			{Label: "batched", Apply: func(c *table1Cell) { c.Batched = true }},
		}}},
	}
	results, err := sweep.Run(grid, opts, func(c sweep.Cell[table1Cell]) (float64, error) {
		got, err := measureComponentPackets(c.Config.Component, c.Config.Batched, seed)
		if err != nil {
			return 0, fmt.Errorf("bench: table1 %s: %w", c.Name(), err)
		}
		return got, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		if r.Coords[1] == 1 {
			rows[r.Coords[0]].MeasuredBatched = r.Value
		} else {
			rows[r.Coords[0]].MeasuredBaseline = r.Value
		}
	}
	return rows, nil
}

// runTable1 is the registry entry.
func runTable1(ctx *Context) error {
	rows, err := Table1(ctx.Seed, ctx.sweepOpts(false))
	if err != nil {
		return err
	}
	PrintTable1(ctx.Out, rows)
	return nil
}

func measureComponentPackets(name string, batched bool, seed int64) (float64, error) {
	net := wireless.DefaultConfig()
	net.LossProb = 0 // analytic comparison wants the loss-free ideal
	rig, err := NewComponentRig(seed, batched, crypto.LightConfig(), net)
	if err != nil {
		return 0, err
	}
	var done func() bool
	switch name {
	case "RBC":
		rbcs := make([]*component.RBC, 4)
		for i, env := range rig.Envs {
			rbcs[i] = component.NewRBC(env, component.RBCOptions{Slots: 4})
		}
		for i := range rig.Envs {
			rbcs[i].Propose(i, bytes.Repeat([]byte{byte(i)}, 64))
		}
		done = func() bool {
			for _, r := range rbcs {
				if r.DeliveredCount() < 4 {
					return false
				}
			}
			return true
		}
	case "CBC":
		cbcs := make([]*component.CBC, 4)
		for i, env := range rig.Envs {
			cbcs[i] = component.NewCBC(env, component.CBCOptions{Kind: 3, Slots: 4})
		}
		for i := range rig.Envs {
			cbcs[i].Propose(i, bytes.Repeat([]byte{byte(i)}, 64))
		}
		done = func() bool {
			for _, c := range cbcs {
				if c.DeliveredCount() < 4 {
					return false
				}
			}
			return true
		}
	case "PRBC":
		prbcs := make([]*component.PRBC, 4)
		for i, env := range rig.Envs {
			prbcs[i] = component.NewPRBC(env, component.PRBCOptions{Slots: 4})
		}
		for i := range rig.Envs {
			prbcs[i].Propose(i, bytes.Repeat([]byte{byte(i)}, 64))
		}
		done = func() bool {
			for _, p := range prbcs {
				if p.ProvenCount() < 4 {
					return false
				}
			}
			return true
		}
	case "Bracha's ABA":
		abas := make([]*component.BrachaABA, 4)
		for i, env := range rig.Envs {
			abas[i] = component.NewBrachaABA(env, component.BrachaOptions{Slots: 4})
		}
		for i := range rig.Envs {
			for s := 0; s < 4; s++ {
				abas[i].Input(s, true)
			}
		}
		done = func() bool {
			for _, a := range abas {
				if a.DecidedCount() < 4 {
					return false
				}
			}
			return true
		}
	case "Cachin's ABA":
		abas := make([]*component.CachinABA, 4)
		for i, env := range rig.Envs {
			env := env
			abas[i] = component.NewCachinABA(env, component.CachinOptions{
				Slots: 4, SharedCoin: batched,
				Coin: &component.SigCoin{PK: env.Suite.TSLow, Share: env.Suite.TSLowShare, Env: env},
			})
		}
		for i := range rig.Envs {
			for s := 0; s < 4; s++ {
				abas[i].Input(s, true)
			}
		}
		done = func() bool {
			for _, a := range abas {
				if a.DecidedCount() < 4 {
					return false
				}
			}
			return true
		}
	default:
		return 0, fmt.Errorf("bench: unknown component %q", name)
	}
	if _, err := rig.RunUntil(8*time.Hour, done); err != nil {
		return 0, err
	}
	return rig.LogicalPerNode(), nil
}

// PrintTable1 renders Table I. A measured cell the sweep never ran
// (excluded by -filter) renders as "-" — every real measurement is at
// least one packet per node, so zero always means "not measured".
func PrintTable1(w io.Writer, rows []Table1Row) {
	meas := func(v float64) string {
		if v == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f", v)
	}
	fmt.Fprintf(w, "Table I — message overhead per node, N=4 parallel components\n")
	fmt.Fprintf(w, "%-14s %8s %10s %9s | %12s %11s\n",
		"component", "wired", "baseline", "batcher", "measured-bl", "measured-cb")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %8d %10d %9d | %12s %11s\n",
			r.Component, r.Wired, r.BaselineWireless, r.Batcher,
			meas(r.MeasuredBaseline), meas(r.MeasuredBatched))
	}
}
