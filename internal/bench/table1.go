package bench

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"repro/internal/component"
	"repro/internal/crypto"
	"repro/internal/wireless"
)

// Table1Row is one row of Table I: message overhead per node for an
// N-component parallel protocol, analytic columns plus our measured
// logical-packet counts per node in both transport modes.
type Table1Row struct {
	Component        string
	Wired            int // analytic, per paper
	BaselineWireless int // analytic
	Batcher          int // analytic
	MeasuredBaseline float64
	MeasuredBatched  float64
}

// Table1 computes the paper's Table I for N=4: the analytic columns use
// the paper's formulas; the measured columns run each component with N
// parallel instances on the simulator and count signed logical packets per
// node (retransmissions make measured values slightly exceed the analytic
// ideal).
func Table1(seed int64) ([]Table1Row, error) {
	const n = 4
	rows := []Table1Row{
		{Component: "RBC", Wired: (n - 1) * (1 + 2*n), BaselineWireless: 1 + 2*n, Batcher: 1 + 2},
		{Component: "CBC", Wired: 3 * (n - 1), BaselineWireless: 1 + (n - 1) + 1, Batcher: 3},
		{Component: "PRBC", Wired: (n - 1) * (1 + 3*n), BaselineWireless: 1 + 3*n, Batcher: 1 + 3},
		{Component: "Bracha's ABA", Wired: 3 * n * (n - 1) * (1 + 2*n), BaselineWireless: 3 * n * (1 + 2*n), Batcher: 3 * 3},
		{Component: "Cachin's ABA", Wired: 3 * n * (n - 1), BaselineWireless: 3 * n, Batcher: 3},
	}
	for i := range rows {
		for _, batched := range []bool{false, true} {
			got, err := measureComponentPackets(rows[i].Component, batched, seed)
			if err != nil {
				return nil, fmt.Errorf("bench: table1 %s batched=%v: %w", rows[i].Component, batched, err)
			}
			if batched {
				rows[i].MeasuredBatched = got
			} else {
				rows[i].MeasuredBaseline = got
			}
		}
	}
	return rows, nil
}

func measureComponentPackets(name string, batched bool, seed int64) (float64, error) {
	net := wireless.DefaultConfig()
	net.LossProb = 0 // analytic comparison wants the loss-free ideal
	rig, err := NewComponentRig(seed, batched, crypto.LightConfig(), net)
	if err != nil {
		return 0, err
	}
	var done func() bool
	switch name {
	case "RBC":
		rbcs := make([]*component.RBC, 4)
		for i, env := range rig.Envs {
			rbcs[i] = component.NewRBC(env, component.RBCOptions{Slots: 4})
		}
		for i := range rig.Envs {
			rbcs[i].Propose(i, bytes.Repeat([]byte{byte(i)}, 64))
		}
		done = func() bool {
			for _, r := range rbcs {
				if r.DeliveredCount() < 4 {
					return false
				}
			}
			return true
		}
	case "CBC":
		cbcs := make([]*component.CBC, 4)
		for i, env := range rig.Envs {
			cbcs[i] = component.NewCBC(env, component.CBCOptions{Kind: 3, Slots: 4})
		}
		for i := range rig.Envs {
			cbcs[i].Propose(i, bytes.Repeat([]byte{byte(i)}, 64))
		}
		done = func() bool {
			for _, c := range cbcs {
				if c.DeliveredCount() < 4 {
					return false
				}
			}
			return true
		}
	case "PRBC":
		prbcs := make([]*component.PRBC, 4)
		for i, env := range rig.Envs {
			prbcs[i] = component.NewPRBC(env, component.PRBCOptions{Slots: 4})
		}
		for i := range rig.Envs {
			prbcs[i].Propose(i, bytes.Repeat([]byte{byte(i)}, 64))
		}
		done = func() bool {
			for _, p := range prbcs {
				if p.ProvenCount() < 4 {
					return false
				}
			}
			return true
		}
	case "Bracha's ABA":
		abas := make([]*component.BrachaABA, 4)
		for i, env := range rig.Envs {
			abas[i] = component.NewBrachaABA(env, component.BrachaOptions{Slots: 4})
		}
		for i := range rig.Envs {
			for s := 0; s < 4; s++ {
				abas[i].Input(s, true)
			}
		}
		done = func() bool {
			for _, a := range abas {
				if a.DecidedCount() < 4 {
					return false
				}
			}
			return true
		}
	case "Cachin's ABA":
		abas := make([]*component.CachinABA, 4)
		for i, env := range rig.Envs {
			env := env
			abas[i] = component.NewCachinABA(env, component.CachinOptions{
				Slots: 4, SharedCoin: batched,
				Coin: &component.SigCoin{PK: env.Suite.TSLow, Share: env.Suite.TSLowShare, Env: env},
			})
		}
		for i := range rig.Envs {
			for s := 0; s < 4; s++ {
				abas[i].Input(s, true)
			}
		}
		done = func() bool {
			for _, a := range abas {
				if a.DecidedCount() < 4 {
					return false
				}
			}
			return true
		}
	default:
		return 0, fmt.Errorf("bench: unknown component %q", name)
	}
	if _, err := rig.RunUntil(8*time.Hour, done); err != nil {
		return 0, err
	}
	return rig.LogicalPerNode(), nil
}

// PrintTable1 renders Table I.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "Table I — message overhead per node, N=4 parallel components\n")
	fmt.Fprintf(w, "%-14s %8s %10s %9s | %12s %11s\n",
		"component", "wired", "baseline", "batcher", "measured-bl", "measured-cb")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %8d %10d %9d | %12.1f %11.1f\n",
			r.Component, r.Wired, r.BaselineWireless, r.Batcher, r.MeasuredBaseline, r.MeasuredBatched)
	}
}
