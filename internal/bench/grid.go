package bench

import (
	"fmt"
	"time"

	"repro/internal/protocol"
	"repro/internal/run"
	"repro/internal/sweep"
)

// This file holds the axes the run.Spec-based sweeps share. Every sweep
// in the package is a sweep.Grid over either run.Spec (protocol-level
// experiments) or a small local cell struct (component rigs, crypto
// microbenchmarks); the grid declares *what* varies and the engine owns
// *how* cells execute. Row order in every emitted table and trajectory
// file is grid enumeration order, which reproduces the historical
// nested-loop order of the pre-engine drivers — the committed BENCH
// files did not reorder when the loops were deleted.

// specPoint sets the protocol family on a run.Spec, replicating
// run.Defaults' coupling of Encrypt to the family (Dumbo runs without the
// threshold-encryption censorship defense).
func specPoint(name string, kind protocol.Kind, coin protocol.CoinKind) sweep.Point[run.Spec] {
	return sweep.Point[run.Spec]{Label: name, Apply: func(s *run.Spec) {
		s.Protocol, s.Coin = kind, coin
		s.Encrypt = protocol.DefaultEncrypt(kind)
	}}
}

// protoAxis is the two-family protocol axis of the SMR sweeps.
func protoAxis() sweep.Axis[run.Spec] {
	return sweep.Axis[run.Spec]{Name: "protocol", Points: []sweep.Point[run.Spec]{
		specPoint("HB-SC", protocol.HoneyBadger, protocol.CoinSig),
		specPoint("Dumbo-SC", protocol.DumboKind, protocol.CoinSig),
	}}
}

// transportAxis selects ConsensusBatcher vs the per-instance baseline.
func transportAxis() sweep.Axis[run.Spec] {
	return sweep.Axis[run.Spec]{Name: "transport", Points: []sweep.Point[run.Spec]{
		{Label: "batched", Apply: func(s *run.Spec) { s.Batched = true }},
		{Label: "baseline", Apply: func(s *run.Spec) { s.Batched = false }},
	}}
}

// depthAxis sweeps the chain pipeline depth.
func depthAxis(depths ...int) sweep.Axis[run.Spec] {
	ax := sweep.Axis[run.Spec]{Name: "depth"}
	for _, d := range depths {
		d := d
		ax.Points = append(ax.Points, sweep.Point[run.Spec]{
			Label: fmt.Sprintf("depth=%d", d),
			Apply: func(s *run.Spec) { s.Workload.Window = d },
		})
	}
	return ax
}

// chainBase is the shared base Spec of the sustained-SMR sweeps: chain
// workload at 1 s client interval (proposals always full), protocol and
// transport left to the axes.
func chainBase(seed int64, epochs int) run.Spec {
	spec := run.Defaults(protocol.HoneyBadger, protocol.CoinSig)
	spec.Seed = seed
	spec.Workload = run.Chain(epochs)
	spec.Workload.TxInterval = time.Second
	return spec
}
