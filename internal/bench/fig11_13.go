package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/protocol"
	"repro/internal/run"
	"repro/internal/sweep"
)

// Fig11aPoint is one (variant, parallelism) latency measurement.
type Fig11aPoint struct {
	Kind     BroadcastKind
	Parallel int
	Latency  time.Duration
}

// figSeeds is how many seeds each figure point averages over: common-coin
// round counts are luck-driven, so single-seed points are noisy. On the
// grid the seeds are their own (innermost) axis, so the engine runs every
// (point, seed) cell independently and the aggregation below averages
// results per outer grid point.
const figSeeds = 5

// figCell is the grid configuration shared by the Fig. 11/12 component
// sweeps: which rig experiment to run and with what knobs. Each sweep
// uses the fields its axes set and ignores the rest.
type figCell struct {
	Kind     BroadcastKind
	Variant  ABAVariant
	Parallel int
	Packets  int
	Serial   int
	Seed     int64
}

// seedAxis is the innermost averaging axis; the derivation (base +
// s*1009) is historical and keeps figure trajectories comparable across
// PRs.
func seedAxis(base int64) sweep.Axis[figCell] {
	ax := sweep.Axis[figCell]{Name: "seed"}
	for s := int64(0); s < figSeeds; s++ {
		seed := base + s*1009
		ax.Points = append(ax.Points, sweep.Point[figCell]{
			Label: fmt.Sprintf("seed=%d", seed),
			Apply: func(c *figCell) { c.Seed = seed },
		})
	}
	return ax
}

func countAxis(name string, set func(*figCell, int), vals ...int) sweep.Axis[figCell] {
	ax := sweep.Axis[figCell]{Name: name}
	for _, v := range vals {
		v := v
		ax.Points = append(ax.Points, sweep.Point[figCell]{
			Label: fmt.Sprintf("%s=%d", name, v),
			Apply: func(c *figCell) { set(c, v) },
		})
	}
	return ax
}

// meanGroup is one outer grid point's seed-averaged latency, identified
// by its coordinates on the non-seed axes.
type meanGroup struct {
	coords []int // per-axis point indices, seed axis dropped
	lat    time.Duration
}

// outerCoords strips the innermost (seed) axis from a result's
// coordinates.
func outerCoords(r sweep.Result[time.Duration]) []int {
	return r.Coords[:len(r.Coords)-1]
}

func sameCoords(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// meanLatencies averages results per outer grid point. Grouping by the
// cells' axis coordinates (results arrive in grid order, so a group is a
// consecutive run) keeps the association correct when -filter drops some
// seeds or points, and lets callers read axis values off the group
// instead of re-deriving positions arithmetically.
func meanLatencies(results []sweep.Result[time.Duration]) []meanGroup {
	var out []meanGroup
	for i := 0; i < len(results); {
		outer := outerCoords(results[i])
		var sum time.Duration
		n := 0
		for i < len(results) && sameCoords(outerCoords(results[i]), outer) {
			sum += results[i].Value
			n++
			i++
		}
		out = append(out, meanGroup{coords: outer, lat: sum / time.Duration(n)})
	}
	return out
}

// Fig11aBroadcastParallelism sweeps parallelism 1..4 for the five
// broadcast variants (Fig. 11a: PRBC > CBC > RBC; -small variants flatter).
func Fig11aBroadcastParallelism(seed int64, opts sweep.Options) ([]Fig11aPoint, error) {
	kindAx := sweep.Axis[figCell]{Name: "variant"}
	for _, k := range AllBroadcastKinds() {
		k := k
		kindAx.Points = append(kindAx.Points, sweep.Point[figCell]{
			Label: string(k),
			Apply: func(c *figCell) { c.Kind = k },
		})
	}
	counts := []int{1, 2, 3, 4}
	grid := sweep.Grid[figCell]{Axes: []sweep.Axis[figCell]{
		kindAx,
		countAxis("parallel", func(c *figCell, v int) { c.Parallel = v }, counts...),
		seedAxis(seed),
	}}
	results, err := sweep.Run(grid, opts, func(c sweep.Cell[figCell]) (time.Duration, error) {
		lat, err := BroadcastLatency(c.Config.Kind, c.Config.Parallel, 1, true, c.Config.Seed)
		if err != nil {
			return 0, fmt.Errorf("bench: fig11a %s: %w", c.Name(), err)
		}
		return lat, nil
	})
	if err != nil {
		return nil, err
	}
	var out []Fig11aPoint
	for _, m := range meanLatencies(results) {
		out = append(out, Fig11aPoint{
			Kind:     AllBroadcastKinds()[m.coords[0]],
			Parallel: counts[m.coords[1]],
			Latency:  m.lat,
		})
	}
	return out, nil
}

// Fig11bPoint is one (variant, proposal size) latency measurement.
type Fig11bPoint struct {
	Kind    BroadcastKind
	Packets int
	Latency time.Duration
}

// Fig11bProposalSize sweeps proposal sizes of 1..4 packets at full
// parallelism for RBC/PRBC/CBC (Fig. 11b: the CBC-RBC gap grows with
// proposal size).
func Fig11bProposalSize(seed int64, opts sweep.Options) ([]Fig11bPoint, error) {
	kinds := []BroadcastKind{BRBC, BPRBC, BCBC}
	kindAx := sweep.Axis[figCell]{Name: "variant"}
	for _, k := range kinds {
		k := k
		kindAx.Points = append(kindAx.Points, sweep.Point[figCell]{
			Label: string(k),
			Apply: func(c *figCell) { c.Kind = k },
		})
	}
	counts := []int{1, 2, 3, 4}
	grid := sweep.Grid[figCell]{Axes: []sweep.Axis[figCell]{
		kindAx,
		countAxis("packets", func(c *figCell, v int) { c.Packets = v }, counts...),
		seedAxis(seed),
	}}
	results, err := sweep.Run(grid, opts, func(c sweep.Cell[figCell]) (time.Duration, error) {
		lat, err := BroadcastLatency(c.Config.Kind, 4, c.Config.Packets, true, c.Config.Seed)
		if err != nil {
			return 0, fmt.Errorf("bench: fig11b %s: %w", c.Name(), err)
		}
		return lat, nil
	})
	if err != nil {
		return nil, err
	}
	var out []Fig11bPoint
	for _, m := range meanLatencies(results) {
		out = append(out, Fig11bPoint{Kind: kinds[m.coords[0]], Packets: counts[m.coords[1]], Latency: m.lat})
	}
	return out, nil
}

// Fig12Point is one ABA latency measurement.
type Fig12Point struct {
	Variant ABAVariant
	Count   int // parallel or serial instances
	Latency time.Duration
}

func abaAxis(variants []ABAVariant) sweep.Axis[figCell] {
	ax := sweep.Axis[figCell]{Name: "variant"}
	for _, v := range variants {
		v := v
		ax.Points = append(ax.Points, sweep.Point[figCell]{
			Label: string(v),
			Apply: func(c *figCell) { c.Variant = v },
		})
	}
	return ax
}

// Fig12aParallel sweeps 1..4 parallel instances for the three ABA variants.
func Fig12aParallel(seed int64, opts sweep.Options) ([]Fig12Point, error) {
	counts := []int{1, 2, 3, 4}
	grid := sweep.Grid[figCell]{Axes: []sweep.Axis[figCell]{
		abaAxis(AllABAVariants()),
		countAxis("parallel", func(c *figCell, v int) { c.Parallel = v }, counts...),
		seedAxis(seed),
	}}
	results, err := sweep.Run(grid, opts, func(c sweep.Cell[figCell]) (time.Duration, error) {
		lat, err := ABAParallelLatency(c.Config.Variant, c.Config.Parallel, c.Config.Seed)
		if err != nil {
			return 0, fmt.Errorf("bench: fig12a %s: %w", c.Name(), err)
		}
		return lat, nil
	})
	if err != nil {
		return nil, err
	}
	var out []Fig12Point
	for _, m := range meanLatencies(results) {
		out = append(out, Fig12Point{Variant: AllABAVariants()[m.coords[0]], Count: counts[m.coords[1]], Latency: m.lat})
	}
	return out, nil
}

// Fig12bSerial sweeps 1..4 serial instances for ABA-LC and ABA-SC.
func Fig12bSerial(seed int64, opts sweep.Options) ([]Fig12Point, error) {
	variants := []ABAVariant{ABALC, ABASC}
	counts := []int{1, 2, 3, 4}
	grid := sweep.Grid[figCell]{Axes: []sweep.Axis[figCell]{
		abaAxis(variants),
		countAxis("serial", func(c *figCell, v int) { c.Serial = v }, counts...),
		seedAxis(seed),
	}}
	results, err := sweep.Run(grid, opts, func(c sweep.Cell[figCell]) (time.Duration, error) {
		lat, err := ABASerialLatency(c.Config.Variant, c.Config.Serial, c.Config.Seed)
		if err != nil {
			return 0, fmt.Errorf("bench: fig12b %s: %w", c.Name(), err)
		}
		return lat, nil
	})
	if err != nil {
		return nil, err
	}
	var out []Fig12Point
	for _, m := range meanLatencies(results) {
		out = append(out, Fig12Point{Variant: variants[m.coords[0]], Count: counts[m.coords[1]], Latency: m.lat})
	}
	return out, nil
}

// ProtocolPoint is one protocol's (latency, throughput) measurement for
// Fig. 13a/13b.
type ProtocolPoint struct {
	Name    string
	Latency time.Duration
	TPM     float64
}

// fig13Configs enumerates the paper's 8 protocol configurations: five
// ConsensusBatcher-based and three baselines (shared-coin versions only,
// as the paper does for baselines).
func fig13Configs() []struct {
	Name    string
	Kind    protocol.Kind
	Coin    protocol.CoinKind
	Batched bool
} {
	return []struct {
		Name    string
		Kind    protocol.Kind
		Coin    protocol.CoinKind
		Batched bool
	}{
		{"HoneyBadgerBFT-SC", protocol.HoneyBadger, protocol.CoinSig, true},
		{"HoneyBadgerBFT-LC", protocol.HoneyBadger, protocol.CoinLocal, true},
		{"Dumbo-SC", protocol.DumboKind, protocol.CoinSig, true},
		{"Dumbo-LC", protocol.DumboKind, protocol.CoinLocal, true},
		{"BEAT", protocol.BEAT, protocol.CoinFlip, true},
		{"HoneyBadgerBFT-SC-baseline", protocol.HoneyBadger, protocol.CoinSig, false},
		{"Dumbo-SC-baseline", protocol.DumboKind, protocol.CoinSig, false},
		{"BEAT-baseline", protocol.BEAT, protocol.CoinFlip, false},
	}
}

// fig13Point is one seed's (latency, throughput) sample.
type fig13Point struct {
	Latency time.Duration
	TPM     float64
}

// fig13Sweep runs the 8-configuration x figSeeds grid for one topology.
func fig13Sweep(seed int64, epochs, batch int, topo run.Topology, deadline time.Duration, opts sweep.Options) ([]ProtocolPoint, error) {
	configs := fig13Configs()
	cfgAx := sweep.Axis[run.Spec]{Name: "config"}
	for _, c := range configs {
		c := c
		cfgAx.Points = append(cfgAx.Points, sweep.Point[run.Spec]{
			Label: c.Name,
			Apply: func(s *run.Spec) {
				s.Protocol, s.Coin, s.Batched = c.Kind, c.Coin, c.Batched
				s.Encrypt = c.Kind != protocol.DumboKind
			},
		})
	}
	seedAx := sweep.Axis[run.Spec]{Name: "seed"}
	for s := int64(0); s < figSeeds; s++ {
		sv := seed + s*1009
		seedAx.Points = append(seedAx.Points, sweep.Point[run.Spec]{
			Label: fmt.Sprintf("seed=%d", sv),
			Apply: func(spec *run.Spec) { spec.Seed = sv },
		})
	}
	base := run.Defaults(protocol.HoneyBadger, protocol.CoinSig)
	base.Topology = topo
	base.Workload = run.OneShot(epochs)
	base.Workload.BatchSize = batch
	base.Deadline = deadline
	grid := sweep.Grid[run.Spec]{Base: base, Axes: []sweep.Axis[run.Spec]{cfgAx, seedAx}}
	results, err := sweep.Run(grid, opts, func(c sweep.Cell[run.Spec]) (fig13Point, error) {
		res, err := run.Run(c.Config)
		if err != nil {
			return fig13Point{}, fmt.Errorf("bench: fig13 %s: %w", c.Name(), err)
		}
		return fig13Point{Latency: res.OneShot.MeanLatency, TPM: res.OneShot.TPM}, nil
	})
	if err != nil {
		return nil, err
	}
	var out []ProtocolPoint
	for i := 0; i < len(results); {
		cfg := results[i].Coords[0]
		var latSum time.Duration
		var tpmSum float64
		n := 0
		for i < len(results) && results[i].Coords[0] == cfg {
			latSum += results[i].Value.Latency
			tpmSum += results[i].Value.TPM
			n++
			i++
		}
		out = append(out, ProtocolPoint{
			Name:    configs[cfg].Name,
			Latency: latSum / time.Duration(n),
			TPM:     tpmSum / float64(n),
		})
	}
	return out, nil
}

// Fig13aSingleHop measures all eight configurations on the 4-node
// single-hop network.
func Fig13aSingleHop(seed int64, epochs, batch int, opts sweep.Options) ([]ProtocolPoint, error) {
	return fig13Sweep(seed, epochs, batch, run.SingleHop(), 4*time.Hour, opts)
}

// Fig13bMultiHop measures all eight configurations on the 16-node,
// 4-cluster network.
func Fig13bMultiHop(seed int64, epochs, batch int, opts sweep.Options) ([]ProtocolPoint, error) {
	return fig13Sweep(seed, epochs, batch, run.Clustered(4, 4), 8*time.Hour, opts)
}

// Registry entries for the Fig. 11–13 experiments.
func runFig11a(ctx *Context) error {
	rows, err := Fig11aBroadcastParallelism(ctx.Seed, ctx.sweepOpts(false))
	if err != nil {
		return err
	}
	PrintFig11a(ctx.Out, rows)
	return nil
}

func runFig11b(ctx *Context) error {
	rows, err := Fig11bProposalSize(ctx.Seed, ctx.sweepOpts(false))
	if err != nil {
		return err
	}
	PrintFig11b(ctx.Out, rows)
	return nil
}

func runFig12a(ctx *Context) error {
	rows, err := Fig12aParallel(ctx.Seed, ctx.sweepOpts(false))
	if err != nil {
		return err
	}
	PrintFig12(ctx.Out, "Fig. 12a — ABA latency vs parallel instances", rows)
	return nil
}

func runFig12b(ctx *Context) error {
	rows, err := Fig12bSerial(ctx.Seed, ctx.sweepOpts(false))
	if err != nil {
		return err
	}
	PrintFig12(ctx.Out, "Fig. 12b — ABA latency vs serial instances", rows)
	return nil
}

func runFig13a(ctx *Context) error {
	rows, err := Fig13aSingleHop(ctx.Seed, ctx.Epochs, ctx.Batch, ctx.sweepOpts(false))
	if err != nil {
		return err
	}
	PrintFig13(ctx.Out, "Fig. 13a — single-hop: 8 consensus configurations", rows)
	return nil
}

func runFig13b(ctx *Context) error {
	rows, err := Fig13bMultiHop(ctx.Seed, ctx.Epochs, ctx.Batch, ctx.sweepOpts(false))
	if err != nil {
		return err
	}
	PrintFig13(ctx.Out, "Fig. 13b — multi-hop (16 nodes, 4 clusters): 8 configurations", rows)
	return nil
}

// PrintFig11a renders the broadcast-parallelism series.
func PrintFig11a(w io.Writer, rows []Fig11aPoint) {
	fmt.Fprintln(w, "Fig. 11a — broadcast latency vs parallel instances")
	fmt.Fprintf(w, "%-10s %9s %12s\n", "variant", "parallel", "latency")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %9d %12s\n", r.Kind, r.Parallel, r.Latency.Round(time.Millisecond))
	}
}

// PrintFig11b renders the proposal-size series.
func PrintFig11b(w io.Writer, rows []Fig11bPoint) {
	fmt.Fprintln(w, "Fig. 11b — broadcast latency vs proposal size (packets)")
	fmt.Fprintf(w, "%-10s %8s %12s\n", "variant", "packets", "latency")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %8d %12s\n", r.Kind, r.Packets, r.Latency.Round(time.Millisecond))
	}
}

// PrintFig12 renders an ABA series.
func PrintFig12(w io.Writer, title string, rows []Fig12Point) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%-8s %6s %12s\n", "variant", "count", "latency")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %6d %12s\n", r.Variant, r.Count, r.Latency.Round(time.Millisecond))
	}
}

// PrintFig13 renders a protocol comparison.
func PrintFig13(w io.Writer, title string, rows []ProtocolPoint) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%-28s %12s %10s\n", "protocol", "latency", "TPM")
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %12s %10.1f\n", r.Name, r.Latency.Round(time.Millisecond), r.TPM)
	}
}
