package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/protocol"
	"repro/internal/run"
)

// Fig11aPoint is one (variant, parallelism) latency measurement.
type Fig11aPoint struct {
	Kind     BroadcastKind
	Parallel int
	Latency  time.Duration
}

// figSeeds is how many seeds each figure point averages over: common-coin
// round counts are luck-driven, so single-seed points are noisy.
const figSeeds = 5

func meanOverSeeds(base int64, f func(seed int64) (time.Duration, error)) (time.Duration, error) {
	var sum time.Duration
	for s := int64(0); s < figSeeds; s++ {
		lat, err := f(base + s*1009)
		if err != nil {
			return 0, err
		}
		sum += lat
	}
	return sum / figSeeds, nil
}

// Fig11aBroadcastParallelism sweeps parallelism 1..4 for the five
// broadcast variants (Fig. 11a: PRBC > CBC > RBC; -small variants flatter).
func Fig11aBroadcastParallelism(seed int64) ([]Fig11aPoint, error) {
	var out []Fig11aPoint
	for _, k := range AllBroadcastKinds() {
		for par := 1; par <= 4; par++ {
			k, par := k, par
			lat, err := meanOverSeeds(seed, func(s int64) (time.Duration, error) {
				return BroadcastLatency(k, par, 1, true, s)
			})
			if err != nil {
				return nil, fmt.Errorf("bench: fig11a %s par=%d: %w", k, par, err)
			}
			out = append(out, Fig11aPoint{Kind: k, Parallel: par, Latency: lat})
		}
	}
	return out, nil
}

// Fig11bPoint is one (variant, proposal size) latency measurement.
type Fig11bPoint struct {
	Kind    BroadcastKind
	Packets int
	Latency time.Duration
}

// Fig11bProposalSize sweeps proposal sizes of 1..4 packets at full
// parallelism for RBC/PRBC/CBC (Fig. 11b: the CBC-RBC gap grows with
// proposal size).
func Fig11bProposalSize(seed int64) ([]Fig11bPoint, error) {
	var out []Fig11bPoint
	for _, k := range []BroadcastKind{BRBC, BPRBC, BCBC} {
		for pk := 1; pk <= 4; pk++ {
			k, pk := k, pk
			lat, err := meanOverSeeds(seed, func(s int64) (time.Duration, error) {
				return BroadcastLatency(k, 4, pk, true, s)
			})
			if err != nil {
				return nil, fmt.Errorf("bench: fig11b %s packets=%d: %w", k, pk, err)
			}
			out = append(out, Fig11bPoint{Kind: k, Packets: pk, Latency: lat})
		}
	}
	return out, nil
}

// Fig12Point is one ABA latency measurement.
type Fig12Point struct {
	Variant ABAVariant
	Count   int // parallel or serial instances
	Latency time.Duration
}

// Fig12aParallel sweeps 1..4 parallel instances for the three ABA variants.
func Fig12aParallel(seed int64) ([]Fig12Point, error) {
	var out []Fig12Point
	for _, v := range AllABAVariants() {
		for par := 1; par <= 4; par++ {
			v, par := v, par
			lat, err := meanOverSeeds(seed, func(s int64) (time.Duration, error) {
				return ABAParallelLatency(v, par, s)
			})
			if err != nil {
				return nil, fmt.Errorf("bench: fig12a %s par=%d: %w", v, par, err)
			}
			out = append(out, Fig12Point{Variant: v, Count: par, Latency: lat})
		}
	}
	return out, nil
}

// Fig12bSerial sweeps 1..4 serial instances for ABA-LC and ABA-SC.
func Fig12bSerial(seed int64) ([]Fig12Point, error) {
	var out []Fig12Point
	for _, v := range []ABAVariant{ABALC, ABASC} {
		for ser := 1; ser <= 4; ser++ {
			v, ser := v, ser
			lat, err := meanOverSeeds(seed, func(s int64) (time.Duration, error) {
				return ABASerialLatency(v, ser, s)
			})
			if err != nil {
				return nil, fmt.Errorf("bench: fig12b %s serial=%d: %w", v, ser, err)
			}
			out = append(out, Fig12Point{Variant: v, Count: ser, Latency: lat})
		}
	}
	return out, nil
}

// ProtocolPoint is one protocol's (latency, throughput) measurement for
// Fig. 13a/13b.
type ProtocolPoint struct {
	Name    string
	Latency time.Duration
	TPM     float64
}

// fig13Configs enumerates the paper's 8 protocol configurations: five
// ConsensusBatcher-based and three baselines (shared-coin versions only,
// as the paper does for baselines).
func fig13Configs() []struct {
	Name    string
	Kind    protocol.Kind
	Coin    protocol.CoinKind
	Batched bool
} {
	return []struct {
		Name    string
		Kind    protocol.Kind
		Coin    protocol.CoinKind
		Batched bool
	}{
		{"HoneyBadgerBFT-SC", protocol.HoneyBadger, protocol.CoinSig, true},
		{"HoneyBadgerBFT-LC", protocol.HoneyBadger, protocol.CoinLocal, true},
		{"Dumbo-SC", protocol.DumboKind, protocol.CoinSig, true},
		{"Dumbo-LC", protocol.DumboKind, protocol.CoinLocal, true},
		{"BEAT", protocol.BEAT, protocol.CoinFlip, true},
		{"HoneyBadgerBFT-SC-baseline", protocol.HoneyBadger, protocol.CoinSig, false},
		{"Dumbo-SC-baseline", protocol.DumboKind, protocol.CoinSig, false},
		{"BEAT-baseline", protocol.BEAT, protocol.CoinFlip, false},
	}
}

// Fig13aSingleHop measures all eight configurations on the 4-node
// single-hop network.
func Fig13aSingleHop(seed int64, epochs, batch int) ([]ProtocolPoint, error) {
	var out []ProtocolPoint
	for _, c := range fig13Configs() {
		c := c
		var tpmSum float64
		lat, err := meanOverSeeds(seed, func(s int64) (time.Duration, error) {
			spec := run.Defaults(c.Kind, c.Coin)
			spec.Batched = c.Batched
			spec.Workload = run.OneShot(epochs)
			spec.Workload.BatchSize = batch
			spec.Seed = s
			spec.Deadline = 4 * time.Hour
			res, err := run.Run(spec)
			if err != nil {
				return 0, err
			}
			tpmSum += res.OneShot.TPM
			return res.OneShot.MeanLatency, nil
		})
		if err != nil {
			return nil, fmt.Errorf("bench: fig13a %s: %w", c.Name, err)
		}
		out = append(out, ProtocolPoint{Name: c.Name, Latency: lat, TPM: tpmSum / figSeeds})
	}
	return out, nil
}

// Fig13bMultiHop measures all eight configurations on the 16-node,
// 4-cluster network.
func Fig13bMultiHop(seed int64, epochs, batch int) ([]ProtocolPoint, error) {
	var out []ProtocolPoint
	for _, c := range fig13Configs() {
		c := c
		var tpmSum float64
		lat, err := meanOverSeeds(seed, func(s int64) (time.Duration, error) {
			spec := run.Defaults(c.Kind, c.Coin)
			spec.Topology = run.Clustered(4, 4)
			spec.Batched = c.Batched
			spec.Workload = run.OneShot(epochs)
			spec.Workload.BatchSize = batch
			spec.Seed = s
			spec.Deadline = 8 * time.Hour
			res, err := run.Run(spec)
			if err != nil {
				return 0, err
			}
			tpmSum += res.OneShot.TPM
			return res.OneShot.MeanLatency, nil
		})
		if err != nil {
			return nil, fmt.Errorf("bench: fig13b %s: %w", c.Name, err)
		}
		out = append(out, ProtocolPoint{Name: c.Name, Latency: lat, TPM: tpmSum / figSeeds})
	}
	return out, nil
}

// PrintFig11a renders the broadcast-parallelism series.
func PrintFig11a(w io.Writer, rows []Fig11aPoint) {
	fmt.Fprintln(w, "Fig. 11a — broadcast latency vs parallel instances")
	fmt.Fprintf(w, "%-10s %9s %12s\n", "variant", "parallel", "latency")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %9d %12s\n", r.Kind, r.Parallel, r.Latency.Round(time.Millisecond))
	}
}

// PrintFig11b renders the proposal-size series.
func PrintFig11b(w io.Writer, rows []Fig11bPoint) {
	fmt.Fprintln(w, "Fig. 11b — broadcast latency vs proposal size (packets)")
	fmt.Fprintf(w, "%-10s %8s %12s\n", "variant", "packets", "latency")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %8d %12s\n", r.Kind, r.Packets, r.Latency.Round(time.Millisecond))
	}
}

// PrintFig12 renders an ABA series.
func PrintFig12(w io.Writer, title string, rows []Fig12Point) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%-8s %6s %12s\n", "variant", "count", "latency")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %6d %12s\n", r.Variant, r.Count, r.Latency.Round(time.Millisecond))
	}
}

// PrintFig13 renders a protocol comparison.
func PrintFig13(w io.Writer, title string, rows []ProtocolPoint) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%-28s %12s %10s\n", "protocol", "latency", "TPM")
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %12s %10.1f\n", r.Name, r.Latency.Round(time.Millisecond), r.TPM)
	}
}
