package bench

import (
	"testing"
	"time"

	"repro/internal/sweep"
)

func TestBroadcastLatencyAllKinds(t *testing.T) {
	for _, k := range AllBroadcastKinds() {
		k := k
		t.Run(string(k), func(t *testing.T) {
			t.Parallel()
			lat, err := BroadcastLatency(k, 2, 1, true, 1)
			if err != nil {
				t.Fatal(err)
			}
			if lat <= 0 {
				t.Error("zero latency")
			}
		})
	}
}

func TestBroadcastLatencyGrowsWithProposalSize(t *testing.T) {
	small, err := BroadcastLatency(BRBC, 4, 1, true, 2)
	if err != nil {
		t.Fatal(err)
	}
	large, err := BroadcastLatency(BRBC, 4, 4, true, 2)
	if err != nil {
		t.Fatal(err)
	}
	if large <= small {
		t.Errorf("4-packet proposal (%v) not slower than 1-packet (%v)", large, small)
	}
}

func TestABAParallelAllVariants(t *testing.T) {
	for _, v := range AllABAVariants() {
		v := v
		t.Run(string(v), func(t *testing.T) {
			t.Parallel()
			lat, err := ABAParallelLatency(v, 2, 3)
			if err != nil {
				t.Fatal(err)
			}
			if lat <= 0 {
				t.Error("zero latency")
			}
		})
	}
}

func TestABASerial(t *testing.T) {
	lat1, err := ABASerialLatency(ABASC, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	lat2, err := ABASerialLatency(ABASC, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if lat2 <= lat1 {
		t.Errorf("2 serial ABAs (%v) not slower than 1 (%v)", lat2, lat1)
	}
}

func TestTable1ShapesHold(t *testing.T) {
	rows, err := Table1(5, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Wired <= r.BaselineWireless || r.BaselineWireless < r.Batcher {
			t.Errorf("%s: analytic columns not monotone: %d %d %d",
				r.Component, r.Wired, r.BaselineWireless, r.Batcher)
		}
		if r.MeasuredBatched >= r.MeasuredBaseline {
			t.Errorf("%s: measured batched (%0.1f) not below baseline (%0.1f)",
				r.Component, r.MeasuredBatched, r.MeasuredBaseline)
		}
	}
}

func TestFig10cSizesMonotone(t *testing.T) {
	rows := Fig10cSizes()
	if len(rows) != 11 {
		t.Fatalf("got %d size rows, want 11 (5 pk + 6 threshold)", len(rows))
	}
}

func TestFig10CryptoOpsFast(t *testing.T) {
	if testing.Short() {
		t.Skip("real crypto measurements")
	}
	rows, err := Fig10bThresholdCoin(1, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Shape: heavier sets slower to sign (compare lightest vs heaviest).
	bySet := map[string]time.Duration{}
	for _, r := range rows {
		if r.Op == "sign" {
			bySet[r.Set] = r.Latency
		}
	}
	if bySet["SG-3072"] <= bySet["SG-512"] {
		t.Errorf("SG-3072 sign (%v) not slower than SG-512 (%v)", bySet["SG-3072"], bySet["SG-512"])
	}
}

func TestFaultSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("24 chain runs")
	}
	rows, err := FaultSweep(1, 2, sweep.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6*2*2 {
		t.Fatalf("got %d rows, want 24 (6 scenarios x 2 protocols x 2 transports)", len(rows))
	}
	for _, r := range rows {
		if r.Error != "" {
			t.Errorf("%s/%s/%s failed: %s", r.Scenario, r.Protocol, r.Transport, r.Error)
			continue
		}
		if r.Epochs != 2 || r.CommittedTxs == 0 {
			t.Errorf("%s/%s/%s: no progress: %+v", r.Scenario, r.Protocol, r.Transport, r)
		}
	}
}

func TestByzSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("16 chain runs")
	}
	rows, err := ByzSweep(1, 2, sweep.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4*2*2 {
		t.Fatalf("got %d rows, want 16 (4 behaviors x 2 protocols x 2 transports)", len(rows))
	}
	sawRejected := false
	for _, r := range rows {
		if r.Error != "" {
			t.Errorf("%s/%s/%s failed: %s", r.Behavior, r.Protocol, r.Transport, r.Error)
			continue
		}
		if !r.HonestSafe {
			t.Errorf("%s/%s/%s: honest-safety check failed", r.Behavior, r.Protocol, r.Transport)
		}
		if r.Epochs != 2 || r.CommittedTxs == 0 {
			t.Errorf("%s/%s/%s: no progress: %+v", r.Behavior, r.Protocol, r.Transport, r)
		}
		if r.RejectedMsgs > 0 {
			sawRejected = true
		}
	}
	if !sawRejected {
		t.Error("no configuration rejected any Byzantine message; the defenses were never exercised")
	}
}
