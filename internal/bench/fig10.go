package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/crypto"
	"repro/internal/crypto/group"
	"repro/internal/crypto/threshcoin"
	"repro/internal/crypto/threshsig"
	"repro/internal/protocol"
	"repro/internal/run"
)

// CryptoOpRow is one (parameter set, operation) measurement for
// Fig. 10a/10b: the real wall-clock latency of our implementations on this
// machine. The paper measures MIRACL on an STM32F767; the *ordering* of
// parameter sets and of operations is the reproducible shape.
type CryptoOpRow struct {
	Set     string
	PaperEq string
	Op      string
	Latency time.Duration
}

// Fig10aThresholdSig measures dealer/sign/verify-share/combine/verify for
// every embedded parameter set (reps repetitions, mean reported).
func Fig10aThresholdSig(reps int) ([]CryptoOpRow, error) {
	if reps <= 0 {
		reps = 3
	}
	var rows []CryptoOpRow
	paperEq := paperNames()
	for _, fix := range threshsig.Fixtures() {
		rng := rand.New(rand.NewSource(7))
		var key *threshsig.Key
		dealT := measure(reps, func() {
			var err error
			key, err = threshsig.Deal(fix.Name, fix.P, fix.Q, 2, 4, rng)
			if err != nil {
				panic(err)
			}
		})
		msg := []byte("fig10a")
		var share *threshsig.SigShare
		signT := measure(reps, func() {
			var err error
			share, err = key.Public.Sign(key.Shares[0], msg, rng)
			if err != nil {
				panic(err)
			}
		})
		verifyShareT := measure(reps, func() {
			if err := key.Public.VerifyShare(msg, share); err != nil {
				panic(err)
			}
		})
		share2, err := key.Public.Sign(key.Shares[1], msg, rng)
		if err != nil {
			return nil, err
		}
		var sig *threshsig.Signature
		combineT := measure(reps, func() {
			var err error
			sig, err = key.Public.Combine(msg, []*threshsig.SigShare{share, share2})
			if err != nil {
				panic(err)
			}
		})
		verifyT := measure(reps, func() {
			if err := key.Public.Verify(msg, sig); err != nil {
				panic(err)
			}
		})
		for _, p := range []struct {
			op string
			d  time.Duration
		}{
			{"dealer", dealT}, {"sign", signT}, {"verifyshare", verifyShareT},
			{"combineshare", combineT}, {"verifysignature", verifyT},
		} {
			rows = append(rows, CryptoOpRow{Set: fix.Name, PaperEq: paperEq[fix.Name], Op: p.op, Latency: p.d})
		}
	}
	return rows, nil
}

// Fig10bThresholdCoin measures dealer/sign/verify-share/combine for the
// DH-based coin across group sizes.
func Fig10bThresholdCoin(reps int) ([]CryptoOpRow, error) {
	if reps <= 0 {
		reps = 3
	}
	var rows []CryptoOpRow
	groupToSig := map[string]string{
		"SG-512": "TS-512", "SG-768": "TS-768", "SG-1024": "TS-1024",
		"SG-1536": "TS-1536", "SG-2048": "TS-2048", "SG-3072": "TS-3072",
	}
	paperEq := paperNames()
	for _, g := range group.All() {
		rng := rand.New(rand.NewSource(7))
		var key *threshcoin.Key
		dealT := measure(reps, func() {
			var err error
			key, err = threshcoin.Deal(g, 2, 4, rng)
			if err != nil {
				panic(err)
			}
		})
		name := []byte("fig10b")
		var share *threshcoin.CoinShare
		signT := measure(reps, func() {
			var err error
			share, err = key.Public.Share(key.Shares[0], name, rng)
			if err != nil {
				panic(err)
			}
		})
		verifyT := measure(reps, func() {
			if err := key.Public.VerifyShare(name, share); err != nil {
				panic(err)
			}
		})
		share2, err := key.Public.Share(key.Shares[1], name, rng)
		if err != nil {
			return nil, err
		}
		combineT := measure(reps, func() {
			if _, err := key.Public.Combine(name, []*threshcoin.CoinShare{share, share2}); err != nil {
				panic(err)
			}
		})
		for _, p := range []struct {
			op string
			d  time.Duration
		}{
			{"dealer", dealT}, {"sign", signT}, {"verifyshare", verifyT}, {"combineshare", combineT},
		} {
			rows = append(rows, CryptoOpRow{Set: g.Name, PaperEq: paperEq[groupToSig[g.Name]], Op: p.op, Latency: p.d})
		}
	}
	return rows, nil
}

func paperNames() map[string]string {
	out := map[string]string{}
	for _, r := range crypto.ParamSetNames() {
		out[r.Ours] = r.Paper
	}
	return out
}

func measure(reps int, fn func()) time.Duration {
	start := time.Now()
	for i := 0; i < reps; i++ {
		fn()
	}
	return time.Since(start) / time.Duration(reps)
}

// SizeRow is a Fig. 10c bar: signature size per scheme.
type SizeRow struct {
	Name  string
	Kind  string // "public-key" or "threshold"
	Bytes int
}

// Fig10cSizes reports the signature-size bars.
func Fig10cSizes() []SizeRow {
	pk, thr := crypto.SignatureSizes()
	var rows []SizeRow
	for _, p := range pk {
		rows = append(rows, SizeRow{Name: p.Name, Kind: "public-key", Bytes: p.Size})
	}
	for _, t := range thr {
		rows = append(rows, SizeRow{Name: t.Name, Kind: "threshold", Bytes: t.Size})
	}
	return rows
}

// Fig10dPoint is one (throughput, latency) point of the crypto-impact plot.
type Fig10dPoint struct {
	Config    string
	BatchSize int
	Latency   time.Duration
	TPM       float64
}

// Fig10dCryptoImpact runs HoneyBadgerBFT-SC with the light and heavy
// crypto configurations over a batch-size sweep (Fig. 10d: lighter curves
// give lower latency and higher throughput).
func Fig10dCryptoImpact(seed int64, epochs int, batches []int) ([]Fig10dPoint, error) {
	if len(batches) == 0 {
		batches = []int{2, 4, 8, 16}
	}
	var out []Fig10dPoint
	for _, cfgRow := range []struct {
		name string
		cfg  crypto.Config
	}{
		{"light(BN158-eq)", crypto.LightConfig()},
		{"heavy(BN254-eq)", crypto.HeavyConfig()},
	} {
		for _, b := range batches {
			spec := run.Defaults(protocol.HoneyBadger, protocol.CoinSig)
			spec.Crypto = cfgRow.cfg
			spec.Workload = run.OneShot(epochs)
			spec.Workload.BatchSize = b
			spec.Seed = seed
			res, err := run.Run(spec)
			if err != nil {
				return nil, fmt.Errorf("bench: fig10d %s b=%d: %w", cfgRow.name, b, err)
			}
			out = append(out, Fig10dPoint{
				Config: cfgRow.name, BatchSize: b,
				Latency: res.OneShot.MeanLatency, TPM: res.OneShot.TPM,
			})
		}
	}
	return out, nil
}

// PrintCryptoOps renders Fig. 10a/10b rows.
func PrintCryptoOps(w io.Writer, title string, rows []CryptoOpRow) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%-9s %-9s %-16s %12s\n", "set", "paper-eq", "op", "latency")
	for _, r := range rows {
		fmt.Fprintf(w, "%-9s %-9s %-16s %12s\n", r.Set, r.PaperEq, r.Op, r.Latency.Round(time.Microsecond))
	}
}

// PrintSizes renders Fig. 10c rows.
func PrintSizes(w io.Writer, rows []SizeRow) {
	fmt.Fprintln(w, "Fig. 10c — signature sizes")
	fmt.Fprintf(w, "%-12s %-11s %6s\n", "scheme", "kind", "bytes")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-11s %6d\n", r.Name, r.Kind, r.Bytes)
	}
}

// PrintFig10d renders the crypto-impact points.
func PrintFig10d(w io.Writer, rows []Fig10dPoint) {
	fmt.Fprintln(w, "Fig. 10d — HoneyBadgerBFT-SC latency/throughput vs crypto weight")
	fmt.Fprintf(w, "%-16s %6s %12s %10s\n", "config", "batch", "latency", "TPM")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %6d %12s %10.1f\n", r.Config, r.BatchSize, r.Latency.Round(time.Millisecond), r.TPM)
	}
}
