package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/crypto"
	"repro/internal/crypto/group"
	"repro/internal/crypto/threshcoin"
	"repro/internal/crypto/threshsig"
	"repro/internal/protocol"
	"repro/internal/run"
	"repro/internal/sweep"
)

// CryptoOpRow is one (parameter set, operation) measurement for
// Fig. 10a/10b: the real wall-clock latency of our implementations on this
// machine. The paper measures MIRACL on an STM32F767; the *ordering* of
// parameter sets and of operations is the reproducible shape.
type CryptoOpRow struct {
	Set     string
	PaperEq string
	Op      string
	Latency time.Duration
}

// Fig. 10a/10b run on the sweep engine like every other experiment, with
// one cell per parameter set — but they are registered Serial: the cells
// measure wall-clock latency, and concurrent cells contending for cores
// would distort exactly the numbers being reported.

// measureFig10aSet runs the threshold-signature op ladder for one
// parameter set.
func measureFig10aSet(fix threshsig.ModulusFixture, reps int, paperEq map[string]string) ([]CryptoOpRow, error) {
	rng := rand.New(rand.NewSource(7))
	var key *threshsig.Key
	dealT := measure(reps, func() {
		var err error
		key, err = threshsig.Deal(fix.Name, fix.P, fix.Q, 2, 4, rng)
		if err != nil {
			panic(err)
		}
	})
	msg := []byte("fig10a")
	var share *threshsig.SigShare
	signT := measure(reps, func() {
		var err error
		share, err = key.Public.Sign(key.Shares[0], msg, rng)
		if err != nil {
			panic(err)
		}
	})
	verifyShareT := measure(reps, func() {
		if err := key.Public.VerifyShare(msg, share); err != nil {
			panic(err)
		}
	})
	share2, err := key.Public.Sign(key.Shares[1], msg, rng)
	if err != nil {
		return nil, err
	}
	var sig *threshsig.Signature
	combineT := measure(reps, func() {
		var err error
		sig, err = key.Public.Combine(msg, []*threshsig.SigShare{share, share2})
		if err != nil {
			panic(err)
		}
	})
	verifyT := measure(reps, func() {
		if err := key.Public.Verify(msg, sig); err != nil {
			panic(err)
		}
	})
	var rows []CryptoOpRow
	for _, p := range []struct {
		op string
		d  time.Duration
	}{
		{"dealer", dealT}, {"sign", signT}, {"verifyshare", verifyShareT},
		{"combineshare", combineT}, {"verifysignature", verifyT},
	} {
		rows = append(rows, CryptoOpRow{Set: fix.Name, PaperEq: paperEq[fix.Name], Op: p.op, Latency: p.d})
	}
	return rows, nil
}

// Fig10aThresholdSig measures dealer/sign/verify-share/combine/verify for
// every embedded parameter set (reps repetitions, mean reported).
func Fig10aThresholdSig(reps int, opts sweep.Options) ([]CryptoOpRow, error) {
	if reps <= 0 {
		reps = 3
	}
	paperEq := paperNames()
	ax := sweep.Axis[threshsig.ModulusFixture]{Name: "set"}
	for _, fix := range threshsig.Fixtures() {
		fix := fix
		ax.Points = append(ax.Points, sweep.Point[threshsig.ModulusFixture]{
			Label: fix.Name,
			Apply: func(c *threshsig.ModulusFixture) { *c = fix },
		})
	}
	grid := sweep.Grid[threshsig.ModulusFixture]{Axes: []sweep.Axis[threshsig.ModulusFixture]{ax}}
	results, err := sweep.Run(grid, opts, func(c sweep.Cell[threshsig.ModulusFixture]) ([]CryptoOpRow, error) {
		return measureFig10aSet(c.Config, reps, paperEq)
	})
	if err != nil {
		return nil, err
	}
	var rows []CryptoOpRow
	for _, r := range results {
		rows = append(rows, r.Value...)
	}
	return rows, nil
}

// measureFig10bGroup runs the coin op ladder for one DH group.
func measureFig10bGroup(g *group.Group, reps int, paperEq map[string]string) ([]CryptoOpRow, error) {
	groupToSig := map[string]string{
		"SG-512": "TS-512", "SG-768": "TS-768", "SG-1024": "TS-1024",
		"SG-1536": "TS-1536", "SG-2048": "TS-2048", "SG-3072": "TS-3072",
	}
	rng := rand.New(rand.NewSource(7))
	var key *threshcoin.Key
	dealT := measure(reps, func() {
		var err error
		key, err = threshcoin.Deal(g, 2, 4, rng)
		if err != nil {
			panic(err)
		}
	})
	name := []byte("fig10b")
	var share *threshcoin.CoinShare
	signT := measure(reps, func() {
		var err error
		share, err = key.Public.Share(key.Shares[0], name, rng)
		if err != nil {
			panic(err)
		}
	})
	verifyT := measure(reps, func() {
		if err := key.Public.VerifyShare(name, share); err != nil {
			panic(err)
		}
	})
	share2, err := key.Public.Share(key.Shares[1], name, rng)
	if err != nil {
		return nil, err
	}
	combineT := measure(reps, func() {
		if _, err := key.Public.Combine(name, []*threshcoin.CoinShare{share, share2}); err != nil {
			panic(err)
		}
	})
	var rows []CryptoOpRow
	for _, p := range []struct {
		op string
		d  time.Duration
	}{
		{"dealer", dealT}, {"sign", signT}, {"verifyshare", verifyT}, {"combineshare", combineT},
	} {
		rows = append(rows, CryptoOpRow{Set: g.Name, PaperEq: paperEq[groupToSig[g.Name]], Op: p.op, Latency: p.d})
	}
	return rows, nil
}

// Fig10bThresholdCoin measures dealer/sign/verify-share/combine for the
// DH-based coin across group sizes.
func Fig10bThresholdCoin(reps int, opts sweep.Options) ([]CryptoOpRow, error) {
	if reps <= 0 {
		reps = 3
	}
	paperEq := paperNames()
	ax := sweep.Axis[*group.Group]{Name: "group"}
	for _, g := range group.All() {
		g := g
		ax.Points = append(ax.Points, sweep.Point[*group.Group]{
			Label: g.Name,
			Apply: func(c **group.Group) { *c = g },
		})
	}
	grid := sweep.Grid[*group.Group]{Axes: []sweep.Axis[*group.Group]{ax}}
	results, err := sweep.Run(grid, opts, func(c sweep.Cell[*group.Group]) ([]CryptoOpRow, error) {
		return measureFig10bGroup(c.Config, reps, paperEq)
	})
	if err != nil {
		return nil, err
	}
	var rows []CryptoOpRow
	for _, r := range results {
		rows = append(rows, r.Value...)
	}
	return rows, nil
}

func paperNames() map[string]string {
	out := map[string]string{}
	for _, r := range crypto.ParamSetNames() {
		out[r.Ours] = r.Paper
	}
	return out
}

func measure(reps int, fn func()) time.Duration {
	start := time.Now()
	for i := 0; i < reps; i++ {
		fn()
	}
	return time.Since(start) / time.Duration(reps)
}

// SizeRow is a Fig. 10c bar: signature size per scheme.
type SizeRow struct {
	Name  string
	Kind  string // "public-key" or "threshold"
	Bytes int
}

// Fig10cSizes reports the signature-size bars.
func Fig10cSizes() []SizeRow {
	pk, thr := crypto.SignatureSizes()
	var rows []SizeRow
	for _, p := range pk {
		rows = append(rows, SizeRow{Name: p.Name, Kind: "public-key", Bytes: p.Size})
	}
	for _, t := range thr {
		rows = append(rows, SizeRow{Name: t.Name, Kind: "threshold", Bytes: t.Size})
	}
	return rows
}

// Fig10dPoint is one (throughput, latency) point of the crypto-impact plot.
type Fig10dPoint struct {
	Config    string
	BatchSize int
	Latency   time.Duration
	TPM       float64
}

// Fig10dCryptoImpact runs HoneyBadgerBFT-SC with the light and heavy
// crypto configurations over a batch-size sweep (Fig. 10d: lighter curves
// give lower latency and higher throughput).
func Fig10dCryptoImpact(seed int64, epochs int, batches []int, opts sweep.Options) ([]Fig10dPoint, error) {
	if len(batches) == 0 {
		batches = []int{2, 4, 8, 16}
	}
	base := run.Defaults(protocol.HoneyBadger, protocol.CoinSig)
	base.Seed = seed
	base.Workload = run.OneShot(epochs)
	cfgAxis := sweep.Axis[run.Spec]{Name: "config", Points: []sweep.Point[run.Spec]{
		{Label: "light(BN158-eq)", Apply: func(s *run.Spec) { s.Crypto = crypto.LightConfig() }},
		{Label: "heavy(BN254-eq)", Apply: func(s *run.Spec) { s.Crypto = crypto.HeavyConfig() }},
	}}
	batchAxis := sweep.Axis[run.Spec]{Name: "batch"}
	for _, b := range batches {
		b := b
		batchAxis.Points = append(batchAxis.Points, sweep.Point[run.Spec]{
			Label: fmt.Sprintf("batch=%d", b),
			Apply: func(s *run.Spec) { s.Workload.BatchSize = b },
		})
	}
	grid := sweep.Grid[run.Spec]{Base: base, Axes: []sweep.Axis[run.Spec]{cfgAxis, batchAxis}}
	results, err := sweep.Run(grid, opts, func(c sweep.Cell[run.Spec]) (Fig10dPoint, error) {
		res, err := run.Run(c.Config)
		if err != nil {
			return Fig10dPoint{}, fmt.Errorf("bench: fig10d %s: %w", c.Name(), err)
		}
		return Fig10dPoint{
			Config: c.Labels[0], BatchSize: c.Config.Workload.BatchSize,
			Latency: res.OneShot.MeanLatency, TPM: res.OneShot.TPM,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return sweep.Values(results), nil
}

// Registry entries for the Fig. 10 experiments.
func runFig10a(ctx *Context) error {
	rows, err := Fig10aThresholdSig(ctx.Reps, ctx.sweepOpts(true))
	if err != nil {
		return err
	}
	PrintCryptoOps(ctx.Out, "Fig. 10a — threshold signature operation latency (this machine)", rows)
	return nil
}

func runFig10b(ctx *Context) error {
	rows, err := Fig10bThresholdCoin(ctx.Reps, ctx.sweepOpts(true))
	if err != nil {
		return err
	}
	PrintCryptoOps(ctx.Out, "Fig. 10b — threshold coin flipping operation latency (this machine)", rows)
	return nil
}

func runFig10c(ctx *Context) error {
	PrintSizes(ctx.Out, Fig10cSizes())
	return nil
}

func runFig10d(ctx *Context) error {
	rows, err := Fig10dCryptoImpact(ctx.Seed, ctx.Epochs, nil, ctx.sweepOpts(false))
	if err != nil {
		return err
	}
	PrintFig10d(ctx.Out, rows)
	return nil
}

// PrintCryptoOps renders Fig. 10a/10b rows.
func PrintCryptoOps(w io.Writer, title string, rows []CryptoOpRow) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%-9s %-9s %-16s %12s\n", "set", "paper-eq", "op", "latency")
	for _, r := range rows {
		fmt.Fprintf(w, "%-9s %-9s %-16s %12s\n", r.Set, r.PaperEq, r.Op, r.Latency.Round(time.Microsecond))
	}
}

// PrintSizes renders Fig. 10c rows.
func PrintSizes(w io.Writer, rows []SizeRow) {
	fmt.Fprintln(w, "Fig. 10c — signature sizes")
	fmt.Fprintf(w, "%-12s %-11s %6s\n", "scheme", "kind", "bytes")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-11s %6d\n", r.Name, r.Kind, r.Bytes)
	}
}

// PrintFig10d renders the crypto-impact points.
func PrintFig10d(w io.Writer, rows []Fig10dPoint) {
	fmt.Fprintln(w, "Fig. 10d — HoneyBadgerBFT-SC latency/throughput vs crypto weight")
	fmt.Fprintf(w, "%-16s %6s %12s %10s\n", "config", "batch", "latency", "TPM")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %6d %12s %10.1f\n", r.Config, r.BatchSize, r.Latency.Round(time.Millisecond), r.TPM)
	}
}
