package bench

import (
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/sweep"
)

// Context carries one wbft-bench invocation's knobs to every experiment:
// the sweep parameters, the worker pool and filter for the grid engine,
// and the output sinks. The registry below is the single catalog of
// experiments — cmd/wbft-bench enumerates it for -list, dispatches -exp
// through it, and there is no other wiring between the command and the
// experiment code.
type Context struct {
	Seed        int64
	Epochs      int // one-shot epochs per run
	Batch       int // one-shot proposal size
	Reps        int // crypto microbenchmark repetitions
	ChainEpochs int // chain-workload commit target per run

	Workers int    // sweep worker pool size (Serial experiments force 1)
	Filter  string // substring filter on cell names ("HB-SC/batched/...")

	Out      io.Writer // rendered tables
	JSONPath string    // trajectory output ("" = none)
	CSVPath  string    // CSV output ("" = none)
	// Progress, if non-nil, observes every completed cell.
	Progress func(done, total int, name string, elapsed time.Duration)
}

// sweepOpts builds the engine options for one experiment. Serial
// experiments measure wall-clock latency (Fig. 10a/10b), where concurrent
// cells would contend for the CPU and distort the numbers.
func (c *Context) sweepOpts(serial bool) sweep.Options {
	workers := c.Workers
	if serial {
		workers = 1
	}
	return sweep.Options{Workers: workers, Filter: c.Filter, Progress: c.Progress}
}

// emit writes an experiment's points to the configured JSON trajectory
// and/or CSV sinks. This (plus the Print helpers) is the only row-emission
// path in the package.
func (c *Context) emit(experiment string, points any) error {
	workers := c.Workers
	if workers < 1 {
		workers = 1
	}
	if c.JSONPath != "" {
		if err := writeFile(c.JSONPath, func(f *os.File) error {
			return WriteTrajectory(f, experiment, c.Seed, workers, points)
		}); err != nil {
			return err
		}
		fmt.Fprintf(c.Out, "wrote %s\n", c.JSONPath)
	}
	if c.CSVPath != "" {
		if err := writeFile(c.CSVPath, func(f *os.File) error {
			return WriteCSV(f, points)
		}); err != nil {
			return err
		}
		fmt.Fprintf(c.Out, "wrote %s\n", c.CSVPath)
	}
	return nil
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Experiment is one registry entry.
type Experiment struct {
	Name string
	Desc string
	// Serial experiments run their cells one at a time regardless of
	// -parallel: they measure real wall-clock crypto latency.
	Serial bool
	// Trajectory experiments emit machine-readable point files (-json /
	// -csv); the committed BENCH_*.json sweeps.
	Trajectory bool
	Run        func(*Context) error
}

// Experiments returns the registry in canonical (-exp all) order.
func Experiments() []Experiment {
	return []Experiment{
		{Name: "table1", Desc: "Table I — message overhead per node, N=4 parallel components", Run: runTable1},
		{Name: "fig10a", Desc: "Fig. 10a — threshold signature operation latency (wall-clock)", Serial: true, Run: runFig10a},
		{Name: "fig10b", Desc: "Fig. 10b — threshold coin flipping operation latency (wall-clock)", Serial: true, Run: runFig10b},
		{Name: "fig10c", Desc: "Fig. 10c — signature sizes", Run: runFig10c},
		{Name: "fig10d", Desc: "Fig. 10d — HoneyBadgerBFT-SC latency/throughput vs crypto weight", Run: runFig10d},
		{Name: "fig11a", Desc: "Fig. 11a — broadcast latency vs parallel instances", Run: runFig11a},
		{Name: "fig11b", Desc: "Fig. 11b — broadcast latency vs proposal size", Run: runFig11b},
		{Name: "fig12a", Desc: "Fig. 12a — ABA latency vs parallel instances", Run: runFig12a},
		{Name: "fig12b", Desc: "Fig. 12b — ABA latency vs serial instances", Run: runFig12b},
		{Name: "fig13a", Desc: "Fig. 13a — single-hop: 8 consensus configurations", Run: runFig13a},
		{Name: "fig13b", Desc: "Fig. 13b — multi-hop (16 nodes, 4 clusters): 8 configurations", Run: runFig13b},
		{Name: "chain", Desc: "chain — sustained SMR throughput vs pipeline depth (BENCH_chain.json)", Trajectory: true, Run: runChainExp},
		{Name: "faults", Desc: "faults — SMR under scripted fault scenarios (BENCH_faults.json)", Trajectory: true, Run: runFaultsExp},
		{Name: "byz", Desc: "byz — SMR with f actively Byzantine replicas (BENCH_byz.json)", Trajectory: true, Run: runByzExp},
		{Name: "mhchain", Desc: "mhchain — clustered chained SMR, cuts ordered globally (BENCH_mhchain.json)", Trajectory: true, Run: runMHChainExp},
		{Name: "alea", Desc: "alea — three-engine rivalry: Alea-BFT vs HB-ACS vs Dumbo (BENCH_alea.json)", Trajectory: true, Run: runAleaExp},
		{Name: "traffic", Desc: "traffic — open-loop Poisson/bursty load: saturation and backpressure (BENCH_traffic.json)", Trajectory: true, Run: runTrafficExp},
	}
}

// Lookup finds a registered experiment by name.
func Lookup(name string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// Names returns the registered experiment names in order.
func Names() []string {
	exps := Experiments()
	out := make([]string, len(exps))
	for i, e := range exps {
		out[i] = e.Name
	}
	return out
}
