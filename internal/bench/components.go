package bench

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/component"
	"repro/internal/crypto"
	"repro/internal/packet"
	"repro/internal/wireless"
)

// This file holds the single-cell executors of the Fig. 11/12 component
// grids: each function runs one rig to completion and returns one
// latency sample. The grids in fig11_13.go fan these out across
// variants, counts, and averaging seeds on the sweep engine; nothing
// here loops.

// BroadcastKind names a broadcast protocol variant from Fig. 11.
type BroadcastKind string

// The five broadcast variants the paper measures.
const (
	BRBC      BroadcastKind = "RBC"
	BRBCSmall BroadcastKind = "RBC-small"
	BPRBC     BroadcastKind = "PRBC"
	BCBC      BroadcastKind = "CBC"
	BCBCSmall BroadcastKind = "CBC-small"
)

// AllBroadcastKinds returns the Fig. 11a ordering.
func AllBroadcastKinds() []BroadcastKind {
	return []BroadcastKind{BRBC, BRBCSmall, BPRBC, BCBC, BCBCSmall}
}

// BroadcastLatency runs `parallel` instances of a broadcast protocol with
// proposals of `proposalPackets` radio frames each and returns the virtual
// time until every node delivers every started instance (Fig. 11a/11b
// point). Small variants carry a fixed tiny payload.
func BroadcastLatency(kind BroadcastKind, parallel, proposalPackets int, batched bool, seed int64) (time.Duration, error) {
	rig, err := NewComponentRig(seed, batched, crypto.LightConfig(), wireless.DefaultConfig())
	if err != nil {
		return 0, err
	}
	const fragSize = 160
	value := func(i int) []byte {
		if kind == BRBCSmall {
			return []byte{byte(i)}
		}
		if kind == BCBCSmall {
			s := packet.NewBitSet(4)
			s.Set(i)
			return s
		}
		return bytes.Repeat([]byte{byte(i + 1)}, fragSize*proposalPackets)
	}

	var done func() bool
	switch kind {
	case BRBC, BRBCSmall:
		rbcs := make([]*component.RBC, 4)
		for i, env := range rig.Envs {
			rbcs[i] = component.NewRBC(env, component.RBCOptions{
				Slots: 4, Small: kind == BRBCSmall, FragSize: fragSize,
			})
		}
		for i := 0; i < parallel; i++ {
			rbcs[i].Propose(i, value(i))
		}
		done = func() bool {
			for _, r := range rbcs {
				for s := 0; s < parallel; s++ {
					if !r.Delivered(s) {
						return false
					}
				}
			}
			return true
		}
	case BPRBC:
		prbcs := make([]*component.PRBC, 4)
		for i, env := range rig.Envs {
			prbcs[i] = component.NewPRBC(env, component.PRBCOptions{Slots: 4, FragSize: fragSize})
		}
		for i := 0; i < parallel; i++ {
			prbcs[i].Propose(i, value(i))
		}
		done = func() bool {
			for _, p := range prbcs {
				for s := 0; s < parallel; s++ {
					if p.Proof(s) == nil {
						return false
					}
				}
			}
			return true
		}
	case BCBC, BCBCSmall:
		cbcs := make([]*component.CBC, 4)
		for i, env := range rig.Envs {
			cbcs[i] = component.NewCBC(env, component.CBCOptions{
				Kind: packet.KindCBCValue, Slots: 4, Small: kind == BCBCSmall, FragSize: fragSize,
			})
		}
		for i := 0; i < parallel; i++ {
			cbcs[i].Propose(i, value(i))
		}
		done = func() bool {
			for _, c := range cbcs {
				for s := 0; s < parallel; s++ {
					if !c.Delivered(s) {
						return false
					}
				}
			}
			return true
		}
	default:
		return 0, fmt.Errorf("bench: unknown broadcast kind %q", kind)
	}
	return rig.RunUntil(4*time.Hour, done)
}

// ABAVariant names an ABA implementation from Fig. 12.
type ABAVariant string

// The three ABA variants.
const (
	ABALC ABAVariant = "ABA-LC" // Bracha, local coin
	ABASC ABAVariant = "ABA-SC" // Cachin, threshold-signature coin
	ABACP ABAVariant = "ABA-CP" // BEAT, threshold coin flipping
)

// AllABAVariants returns the Fig. 12a ordering.
func AllABAVariants() []ABAVariant { return []ABAVariant{ABALC, ABASC, ABACP} }

func newBenchABA(env *component.Env, v ABAVariant, slots int, shared bool) interface {
	Input(int, bool)
	DecidedCount() int
	Decided(int) *bool
} {
	switch v {
	case ABALC:
		return component.NewBrachaABA(env, component.BrachaOptions{Slots: slots})
	case ABASC:
		return component.NewCachinABA(env, component.CachinOptions{
			Slots: slots, SharedCoin: shared,
			Coin: &component.SigCoin{PK: env.Suite.TSLow, Share: env.Suite.TSLowShare, Env: env},
		})
	case ABACP:
		return component.NewCachinABA(env, component.CachinOptions{
			Slots: slots, SharedCoin: shared,
			Coin: &component.FlipCoin{PK: env.Suite.TC, Share: env.Suite.TCShare, Env: env},
		})
	default:
		panic(fmt.Sprintf("bench: unknown ABA variant %q", v))
	}
}

// ABAParallelLatency measures the time for `parallel` simultaneous ABA
// instances to decide everywhere (Fig. 12a point). Inputs are mixed
// (slot parity) to exercise coin rounds.
func ABAParallelLatency(v ABAVariant, parallel int, seed int64) (time.Duration, error) {
	rig, err := NewComponentRig(seed, true, crypto.LightConfig(), wireless.DefaultConfig())
	if err != nil {
		return 0, err
	}
	abas := make([]interface {
		Input(int, bool)
		DecidedCount() int
		Decided(int) *bool
	}, 4)
	for i, env := range rig.Envs {
		abas[i] = newBenchABA(env, v, 4, v != ABALC)
	}
	for i := range rig.Envs {
		for s := 0; s < parallel; s++ {
			abas[i].Input(s, s%2 == 0)
		}
	}
	return rig.RunUntil(8*time.Hour, func() bool {
		for _, a := range abas {
			for s := 0; s < parallel; s++ {
				if a.Decided(s) == nil {
					return false
				}
			}
		}
		return true
	})
}

// ABASerialLatency measures `serial` consecutive ABA executions, each
// started only after the previous decided everywhere (Fig. 12b point).
func ABASerialLatency(v ABAVariant, serial int, seed int64) (time.Duration, error) {
	rig, err := NewComponentRig(seed, true, crypto.LightConfig(), wireless.DefaultConfig())
	if err != nil {
		return 0, err
	}
	abas := make([]interface {
		Input(int, bool)
		DecidedCount() int
		Decided(int) *bool
	}, 4)
	for i, env := range rig.Envs {
		abas[i] = newBenchABA(env, v, serial, false)
	}
	current := 0
	for i := range rig.Envs {
		abas[i].Input(0, true)
	}
	return rig.RunUntil(8*time.Hour, func() bool {
		decidedAll := true
		for _, a := range abas {
			if a.Decided(current) == nil {
				decidedAll = false
				break
			}
		}
		if decidedAll {
			current++
			if current >= serial {
				return true
			}
			for i := range rig.Envs {
				abas[i].Input(current, current%2 == 0)
			}
		}
		return false
	})
}
