package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/byz"
	"repro/internal/protocol"
	"repro/internal/run"
	"repro/internal/scenario"
)

// ByzPoint is one sustained-SMR measurement with f actively Byzantine
// replicas (behavior x protocol x transport). HonestSafe is the sweep's
// acceptance bar: the honest nodes committed identical gap-free logs
// containing only genuine client transactions — nothing the adversary
// forged, corrupted, or equivocated survived into the log.
type ByzPoint struct {
	Behavior       string  `json:"behavior"`
	Spec           string  `json:"spec"` // the scenario DSL actually run
	Protocol       string  `json:"protocol"`
	Transport      string  `json:"transport"` // "batched" | "baseline"
	ByzNodes       int     `json:"byz_nodes"` // f = (N-1)/3
	Epochs         int     `json:"epochs"`
	CommittedTxs   int     `json:"committed_txs"`
	VirtualSecs    float64 `json:"virtual_s"`
	ThroughputBps  float64 `json:"throughput_Bps"`
	CommitLatencyS float64 `json:"commit_latency_s"`
	// RejectedMsgs counts the invalid shares, certificates, proofs, and
	// malformed proposals the component defenses discarded across all
	// nodes — how much of the attack the verification layer absorbed.
	RejectedMsgs uint64 `json:"rejected_msgs"`
	HonestSafe   bool   `json:"honest_safe"`
	Error        string `json:"error,omitempty"`
}

// ByzSweep runs every active-Byzantine behavior against two protocol
// families under both transports on the sustained SMR deployment, with
// f = (N-1)/3 Byzantine nodes from t=0. This is the adversarial
// counterpart of FaultSweep: the fault sweep's scenarios are all
// crash/omission-shaped, so the BFT machinery (echo quorums, share
// verification, the DECIDED gadget) runs but is never attacked; here it
// is. A behavior that defeats a configuration is recorded as a row with
// Error or HonestSafe=false rather than aborting the sweep.
func ByzSweep(seed int64, epochs int) ([]ByzPoint, error) {
	if epochs <= 0 {
		epochs = 8
	}
	var out []ByzPoint
	for _, behavior := range byz.Names() {
		for _, p := range []struct {
			name string
			kind protocol.Kind
			coin protocol.CoinKind
		}{
			{"HB-SC", protocol.HoneyBadger, protocol.CoinSig},
			{"Dumbo-SC", protocol.DumboKind, protocol.CoinSig},
		} {
			for _, batched := range []bool{true, false} {
				spec := run.Defaults(p.kind, p.coin)
				spec.Seed = seed
				spec.Batched = batched
				spec.Workload = run.Chain(epochs)
				spec.Workload.TxInterval = time.Second // keep proposals full
				spec.Workload.GCLag = epochs           // comparable with FaultSweep
				f := (spec.N - 1) / 3
				plan := scenario.Plan{}
				for i := 0; i < f; i++ {
					plan = plan.Then(scenario.ByzAt(0, spec.N-1-i, behavior))
				}
				spec.Scenario = plan
				tname := "baseline"
				if batched {
					tname = "batched"
				}
				pt := ByzPoint{
					Behavior:  behavior,
					Spec:      plan.String(),
					Protocol:  p.name,
					Transport: tname,
					ByzNodes:  f,
				}
				res, err := run.Run(spec)
				if err != nil {
					pt.Error = err.Error()
				} else {
					pt.Epochs = res.Chain.EpochsCommitted
					pt.CommittedTxs = res.Chain.CommittedTxs
					pt.VirtualSecs = res.Duration.Seconds()
					pt.ThroughputBps = res.Chain.ThroughputBps
					pt.CommitLatencyS = res.Chain.MeanCommitLatency.Seconds()
					pt.RejectedMsgs = res.Rejected
					// The driver already verified agreement and gap-freedom
					// across honest logs; what remains is provenance.
					forged := protocol.CountForged(res.Chain.Logs, spec.Workload.TxSize, res.Chain.SubmittedTxs)
					pt.HonestSafe = forged == 0
					if forged > 0 {
						pt.Error = fmt.Sprintf("%d forged transactions committed", forged)
					}
				}
				out = append(out, pt)
			}
		}
	}
	return out, nil
}

// PrintByz renders the Byzantine sweep.
func PrintByz(w io.Writer, rows []ByzPoint) {
	fmt.Fprintln(w, "Byzantine — sustained SMR with f actively Byzantine replicas (beyond the paper)")
	fmt.Fprintf(w, "%-11s %-9s %-9s %4s %7s %6s %8s %9s %6s\n",
		"behavior", "protocol", "transport", "byz", "epochs", "txs", "Bps", "rejected", "safe")
	for _, r := range rows {
		if r.Error != "" && !r.HonestSafe && r.Epochs == 0 {
			fmt.Fprintf(w, "%-11s %-9s %-9s %s\n", r.Behavior, r.Protocol, r.Transport, "FAILED: "+r.Error)
			continue
		}
		safe := "OK"
		if !r.HonestSafe {
			safe = "FAIL"
		}
		fmt.Fprintf(w, "%-11s %-9s %-9s %4d %7d %6d %8.2f %9d %6s\n",
			r.Behavior, r.Protocol, r.Transport, r.ByzNodes, r.Epochs,
			r.CommittedTxs, r.ThroughputBps, r.RejectedMsgs, safe)
	}
}

// WriteByzJSON records the sweep as the BENCH_byz.json trajectory file
// referenced by EXPERIMENTS.md.
func WriteByzJSON(w io.Writer, seed int64, rows []ByzPoint) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Experiment string     `json:"experiment"`
		Seed       int64      `json:"seed"`
		Points     []ByzPoint `json:"points"`
	}{Experiment: "byzantine-sweep", Seed: seed, Points: rows})
}
