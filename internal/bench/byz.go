package bench

import (
	"fmt"
	"io"

	"repro/internal/byz"
	"repro/internal/protocol"
	"repro/internal/run"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

// ByzPoint is one sustained-SMR measurement with f actively Byzantine
// replicas (behavior x protocol x transport). HonestSafe is the sweep's
// acceptance bar: the honest nodes committed identical gap-free logs
// containing only genuine client transactions — nothing the adversary
// forged, corrupted, or equivocated survived into the log.
type ByzPoint struct {
	Behavior       string  `json:"behavior"`
	Spec           string  `json:"spec"` // the scenario DSL actually run
	Protocol       string  `json:"protocol"`
	Transport      string  `json:"transport"` // "batched" | "baseline"
	ByzNodes       int     `json:"byz_nodes"` // f = (N-1)/3
	Epochs         int     `json:"epochs"`
	CommittedTxs   int     `json:"committed_txs"`
	VirtualSecs    float64 `json:"virtual_s"`
	ThroughputBps  float64 `json:"throughput_Bps"`
	CommitLatencyS float64 `json:"commit_latency_s"`
	// RejectedMsgs counts the invalid shares, certificates, proofs, and
	// malformed proposals the component defenses discarded across all
	// nodes — how much of the attack the verification layer absorbed.
	RejectedMsgs uint64 `json:"rejected_msgs"`
	HonestSafe   bool   `json:"honest_safe"`
	Error        string `json:"error,omitempty"`
	// ElapsedMS is the wall-clock cost of producing this row — sweep
	// metadata, not a simulated (golden-checked) outcome.
	ElapsedMS int64 `json:"elapsed_ms"`
}

// behaviorAxis arms f = (N-1)/3 replicas with one active-Byzantine
// behavior from t=0. The axis reads the Spec's N, so it must come after
// any axis that changes the group size (here none does — N stays at the
// base's 4). The behavior list is pinned to the four single-hop attacks
// rather than byz.Names(): byz.NameForgeCut targets the clustered
// chain's cut records and has its own MHChainSweep cells — on this
// single-hop deployment it would add rows that never forge anything.
func behaviorAxis() sweep.Axis[run.Spec] {
	ax := sweep.Axis[run.Spec]{Name: "behavior"}
	for _, behavior := range []string{byz.NameEquivocate, byz.NameFlipVotes, byz.NameGarbage, byz.NameWithhold} {
		behavior := behavior
		ax.Points = append(ax.Points, sweep.Point[run.Spec]{
			Label: behavior,
			Apply: func(s *run.Spec) {
				f := (s.N - 1) / 3
				plan := scenario.Plan{}
				for i := 0; i < f; i++ {
					plan = plan.Then(scenario.ByzAt(0, s.N-1-i, behavior))
				}
				s.Scenario = plan
			},
		})
	}
	return ax
}

// ByzSweep runs every active-Byzantine behavior against two protocol
// families under both transports on the sustained SMR deployment, with
// f = (N-1)/3 Byzantine nodes from t=0. This is the adversarial
// counterpart of FaultSweep: the fault sweep's scenarios are all
// crash/omission-shaped, so the BFT machinery (echo quorums, share
// verification, the DECIDED gadget) runs but is never attacked; here it
// is. A behavior that defeats a configuration is recorded as a row with
// Error or HonestSafe=false rather than aborting the sweep.
func ByzSweep(seed int64, epochs int, opts sweep.Options) ([]ByzPoint, error) {
	if epochs <= 0 {
		epochs = 8
	}
	base := chainBase(seed, epochs)
	base.Workload.GCLag = epochs // comparable with FaultSweep
	grid := sweep.Grid[run.Spec]{
		Base: base,
		Axes: []sweep.Axis[run.Spec]{behaviorAxis(), protoAxis(), transportAxis()},
	}
	results, err := sweep.Run(grid, opts, func(c sweep.Cell[run.Spec]) (ByzPoint, error) {
		pt := ByzPoint{
			Behavior:  c.Labels[0],
			Spec:      c.Config.Scenario.String(),
			Protocol:  c.Labels[1],
			Transport: c.Labels[2],
			ByzNodes:  (c.Config.N - 1) / 3,
		}
		res, err := run.Run(c.Config)
		if err != nil {
			pt.Error = err.Error()
			return pt, nil
		}
		pt.Epochs = res.Chain.EpochsCommitted
		pt.CommittedTxs = res.Chain.CommittedTxs
		pt.VirtualSecs = res.Duration.Seconds()
		pt.ThroughputBps = res.Chain.ThroughputBps
		pt.CommitLatencyS = res.Chain.MeanCommitLatency.Seconds()
		pt.RejectedMsgs = res.Rejected
		// The driver already verified agreement and gap-freedom across
		// honest logs; what remains is provenance.
		forged := protocol.CountForged(res.Chain.Logs, c.Config.Workload.TxSize, res.Chain.SubmittedTxs)
		pt.HonestSafe = forged == 0
		if forged > 0 {
			pt.Error = fmt.Sprintf("%d forged transactions committed", forged)
		}
		return pt, nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]ByzPoint, len(results))
	for i, r := range results {
		r.Value.ElapsedMS = r.Elapsed.Milliseconds()
		rows[i] = r.Value
	}
	return rows, nil
}

// runByzExp is the registry entry: sweep, table, trajectory.
func runByzExp(ctx *Context) error {
	rows, err := ByzSweep(ctx.Seed, ctx.ChainEpochs, ctx.sweepOpts(false))
	if err != nil {
		return err
	}
	PrintByz(ctx.Out, rows)
	return ctx.emit("byzantine-sweep", rows)
}

// PrintByz renders the Byzantine sweep.
func PrintByz(w io.Writer, rows []ByzPoint) {
	fmt.Fprintln(w, "Byzantine — sustained SMR with f actively Byzantine replicas (beyond the paper)")
	fmt.Fprintf(w, "%-11s %-9s %-9s %4s %7s %6s %8s %9s %6s\n",
		"behavior", "protocol", "transport", "byz", "epochs", "txs", "Bps", "rejected", "safe")
	for _, r := range rows {
		if r.Error != "" && !r.HonestSafe && r.Epochs == 0 {
			fmt.Fprintf(w, "%-11s %-9s %-9s %s\n", r.Behavior, r.Protocol, r.Transport, "FAILED: "+r.Error)
			continue
		}
		safe := "OK"
		if !r.HonestSafe {
			safe = "FAIL"
		}
		fmt.Fprintf(w, "%-11s %-9s %-9s %4d %7d %6d %8.2f %9d %6s\n",
			r.Behavior, r.Protocol, r.Transport, r.ByzNodes, r.Epochs,
			r.CommittedTxs, r.ThroughputBps, r.RejectedMsgs, safe)
	}
}
