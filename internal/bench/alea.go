package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/byz"
	"repro/internal/protocol"
	"repro/internal/run"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

// AleaPoint is one sustained-SMR measurement of the three-engine
// rivalry: Alea-BFT's serial queue agreement against HB-ACS's N parallel
// ABAs and Dumbo's committee path, under the same transport, fault, and
// adversary axes. All engines charge crypto through the same cost model,
// so the latency/throughput columns are head-to-head comparable.
type AleaPoint struct {
	Protocol       string  `json:"protocol"`
	Transport      string  `json:"transport"` // "batched" | "baseline"
	Scenario       string  `json:"scenario"`
	Spec           string  `json:"spec,omitempty"` // the scenario DSL actually run
	Seed           int64   `json:"seed"`
	Epochs         int     `json:"epochs"`
	CommittedTxs   int     `json:"committed_txs"`
	VirtualSecs    float64 `json:"virtual_s"`
	ThroughputBps  float64 `json:"throughput_Bps"`
	CommitLatencyS float64 `json:"commit_latency_s"`
	HonestSafe     bool    `json:"honest_safe"`
	Error          string  `json:"error,omitempty"`
	// ElapsedMS is the wall-clock cost of producing this row — sweep
	// metadata, not a simulated (golden-checked) outcome.
	ElapsedMS int64 `json:"elapsed_ms"`
}

// aleaProtoAxis is the three-engine axis, signature coin throughout (the
// strongest common configuration across the families).
func aleaProtoAxis() sweep.Axis[run.Spec] {
	return sweep.Axis[run.Spec]{Name: "protocol", Points: []sweep.Point[run.Spec]{
		specPoint("HB-SC", protocol.HoneyBadger, protocol.CoinSig),
		specPoint("Dumbo-SC", protocol.DumboKind, protocol.CoinSig),
		specPoint("Alea-SC", protocol.AleaKind, protocol.CoinSig),
	}}
}

// aleaScenarioAxis is the condensed fault battery: clean, the
// FaultSweep's crash/recover cycle, and the equivocation adversary (the
// attack that stresses each engine's broadcast layer — RBC echo quorums,
// CBC/VCBC certificates — most directly).
func aleaScenarioAxis() sweep.Axis[run.Spec] {
	return sweep.Axis[run.Spec]{Name: "scenario", Points: []sweep.Point[run.Spec]{
		{Label: "fault-free", Apply: func(s *run.Spec) { s.Scenario = scenario.Plan{} }},
		{Label: "crash-recover", Apply: func(s *run.Spec) {
			s.Scenario = scenario.Plan{}.Then(
				scenario.CrashAt(30*time.Minute, 2),
				scenario.RecoverAt(60*time.Minute, 2))
		}},
		{Label: "byz-equivocate", Apply: func(s *run.Spec) {
			f := (s.N - 1) / 3
			plan := scenario.Plan{}
			for i := 0; i < f; i++ {
				plan = plan.Then(scenario.ByzAt(0, s.N-1-i, byz.NameEquivocate))
			}
			s.Scenario = plan
		}},
	}}
}

// aleaSeedAxis replicates every cell at consecutive seeds. It goes last
// in the grid — the sweep enumerates the final axis fastest, so seeds are
// innermost and a row's neighbors are its seed replicas.
func aleaSeedAxis(seed int64, n int) sweep.Axis[run.Spec] {
	ax := sweep.Axis[run.Spec]{Name: "seed"}
	for i := 0; i < n; i++ {
		s := seed + int64(i)
		ax.Points = append(ax.Points, sweep.Point[run.Spec]{
			Label: fmt.Sprintf("seed=%d", s),
			Apply: func(sp *run.Spec) { sp.Seed = s },
		})
	}
	return ax
}

// AleaSweep runs the three-engine comparison on the sustained SMR
// deployment: protocol x transport x scenario, two seeds innermost.
// Rows record failures (Error / HonestSafe=false) rather than aborting.
func AleaSweep(seed int64, epochs int, opts sweep.Options) ([]AleaPoint, error) {
	if epochs <= 0 {
		epochs = 12
	}
	base := chainBase(seed, epochs)
	base.Workload.GCLag = epochs // full logs survive for the provenance audit
	grid := sweep.Grid[run.Spec]{
		Base: base,
		Axes: []sweep.Axis[run.Spec]{
			aleaProtoAxis(), transportAxis(), aleaScenarioAxis(), aleaSeedAxis(seed, 2),
		},
	}
	results, err := sweep.Run(grid, opts, func(c sweep.Cell[run.Spec]) (AleaPoint, error) {
		pt := AleaPoint{
			Protocol:  c.Labels[0],
			Transport: c.Labels[1],
			Scenario:  c.Labels[2],
			Spec:      c.Config.Scenario.String(),
			Seed:      c.Config.Seed,
		}
		res, err := run.Run(c.Config)
		if err != nil {
			pt.Error = err.Error()
			return pt, nil
		}
		pt.Epochs = res.Chain.EpochsCommitted
		pt.CommittedTxs = res.Chain.CommittedTxs
		pt.VirtualSecs = res.Duration.Seconds()
		pt.ThroughputBps = res.Chain.ThroughputBps
		pt.CommitLatencyS = res.Chain.MeanCommitLatency.Seconds()
		// The driver already verified agreement and gap-freedom across
		// honest logs; what remains is provenance.
		forged := protocol.CountForged(res.Chain.Logs, c.Config.Workload.TxSize, res.Chain.SubmittedTxs)
		pt.HonestSafe = forged == 0
		if forged > 0 {
			pt.Error = fmt.Sprintf("%d forged transactions committed", forged)
		}
		return pt, nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]AleaPoint, len(results))
	for i, r := range results {
		r.Value.ElapsedMS = r.Elapsed.Milliseconds()
		rows[i] = r.Value
	}
	return rows, nil
}

// runAleaExp is the registry entry: sweep, table, trajectory.
func runAleaExp(ctx *Context) error {
	rows, err := AleaSweep(ctx.Seed, ctx.ChainEpochs, ctx.sweepOpts(false))
	if err != nil {
		return err
	}
	PrintAlea(ctx.Out, rows)
	return ctx.emit("alea-sweep", rows)
}

// PrintAlea renders the three-engine comparison.
func PrintAlea(w io.Writer, rows []AleaPoint) {
	fmt.Fprintln(w, "Alea — three-engine SMR rivalry: Alea-BFT vs HB-ACS vs Dumbo (beyond the paper)")
	fmt.Fprintf(w, "%-9s %-9s %-14s %5s %7s %6s %8s %9s %6s\n",
		"protocol", "transport", "scenario", "seed", "epochs", "txs", "Bps", "latency", "safe")
	for _, r := range rows {
		if r.Error != "" && r.Epochs == 0 {
			fmt.Fprintf(w, "%-9s %-9s %-14s %5d %s\n", r.Protocol, r.Transport, r.Scenario, r.Seed, "FAILED: "+r.Error)
			continue
		}
		safe := "OK"
		if !r.HonestSafe {
			safe = "FAIL"
		}
		fmt.Fprintf(w, "%-9s %-9s %-14s %5d %7d %6d %8.2f %8.1fs %6s\n",
			r.Protocol, r.Transport, r.Scenario, r.Seed, r.Epochs,
			r.CommittedTxs, r.ThroughputBps, r.CommitLatencyS, safe)
	}
}
