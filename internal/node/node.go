// Package node is the deployment layer: it assembles one simulated
// consensus participant — CPU, frame authentication, radio station, and
// either a single-epoch core.Transport or an epoch-pipelining core.Mux —
// from a crypto suite and a transport configuration. All three protocol
// drivers (Run, RunMultihop, ChainRun) and the bench rigs build their
// nodes here instead of hand-wiring the same five objects.
//
// The layer also owns the node fault lifecycle the scenario engine drives:
// Crash takes the node off the air (inbound gate closed, radio queue
// flushed, transports stopped, in-memory state forfeited) and Recover
// brings it back with only its "stable storage" — keys, station, and
// whatever state the protocol layer chose to persist — and the node's
// trust status: a node assembled (or later armed) with a non-nil
// byz.Behavior becomes actively Byzantine, its outbound component state
// rewritten by the behavior before it reaches the air.
package node

import (
	"math/rand"

	"repro/internal/byz"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/sim"
	"repro/internal/wireless"
)

// Config bundles the per-node wiring parameters every driver shares.
type Config struct {
	// Transport is the template transport configuration. If all tuning
	// fields (FlushDelay, RetxInterval, MaxQueue) are zero it is replaced
	// by core.DefaultConfig, keeping the Session.
	Transport core.Config
	// Batched selects ConsensusBatcher vs the per-instance baseline.
	Batched bool
	// Seed is the run seed; the node's private RNG is derived from it and
	// the node index.
	Seed int64
	// CPU, if non-nil, shares an existing compute core instead of creating
	// one (a multihop leader's global-tier radio is a second interface on
	// the same processor).
	CPU *sim.CPU
	// Behavior, if non-nil, makes the node Byzantine from the start (the
	// scenario engine can also arm one mid-run through SetBehavior).
	Behavior byz.Behavior
}

// resolve returns the effective transport configuration.
func (c Config) resolve() core.Config {
	tcfg := c.Transport
	if tcfg.FlushDelay == 0 && tcfg.RetxInterval == 0 && tcfg.MaxQueue == 0 {
		session := tcfg.Session
		tcfg = core.DefaultConfig(c.Batched)
		tcfg.Session = session
	}
	tcfg.Batched = c.Batched
	return tcfg
}

// Node is one wired participant. Exactly one of Transport()/Mux() is live,
// depending on the constructor used.
type Node struct {
	ID    wireless.NodeID
	CPU   *sim.CPU
	Suite *crypto.Suite
	// Rand is the node's private randomness (local coins, repair jitter),
	// derived from the run seed and node index.
	Rand *rand.Rand

	sched   *sim.Scheduler
	tcfg    core.Config
	station *wireless.Station
	recv    wireless.Receiver // the live transport or mux
	tr      *core.Transport
	mux     *core.Mux
	down    bool
	closed  core.Stats // counters of transports discarded by Crash

	behavior byz.Behavior
	icept    *byz.Interceptor
}

// New wires a single-transport node (the one-shot drivers and bench rigs).
func New(sched *sim.Scheduler, ch *wireless.Channel, id wireless.NodeID, suite *crypto.Suite, cfg Config) *Node {
	n := newBare(sched, ch, id, suite, cfg)
	n.tr = core.New(sched, n.CPU, nil, n.auth(), n.tcfg)
	n.tr.BindStation(n.station)
	n.recv = n.tr
	n.SetBehavior(cfg.Behavior)
	return n
}

// NewMux wires an epoch-mux node (the SMR pipeline): per-epoch transports
// are opened through Mux() as the chain advances.
func NewMux(sched *sim.Scheduler, ch *wireless.Channel, id wireless.NodeID, suite *crypto.Suite, cfg Config) *Node {
	n := newBare(sched, ch, id, suite, cfg)
	n.mux = core.NewMux(sched, n.CPU, n.auth(), n.tcfg)
	n.mux.BindStation(n.station)
	n.recv = n.mux
	n.SetBehavior(cfg.Behavior)
	return n
}

func newBare(sched *sim.Scheduler, ch *wireless.Channel, id wireless.NodeID, suite *crypto.Suite, cfg Config) *Node {
	cpu := cfg.CPU
	if cpu == nil {
		cpu = sim.NewCPU(sched)
	}
	n := &Node{
		ID:    id,
		CPU:   cpu,
		Suite: suite,
		Rand:  rand.New(rand.NewSource(cfg.Seed + int64(id)*7919)),
		sched: sched,
		tcfg:  cfg.resolve(),
	}
	n.station = ch.Attach(id, n)
	return n
}

// auth builds the frame authenticator from the suite's signature scheme,
// charging the suite's virtual sign/verify costs.
func (n *Node) auth() core.Auth {
	return &core.SizedAuth{
		Len:        n.Suite.Signer.Scheme().SignatureLen(),
		CostSign:   n.Suite.Cost.PKSign,
		CostVerify: n.Suite.Cost.PKVerify,
	}
}

// Transport returns the single-epoch transport (New-constructed nodes).
func (n *Node) Transport() *core.Transport { return n.tr }

// Mux returns the epoch mux (NewMux-constructed nodes).
func (n *Node) Mux() *core.Mux { return n.mux }

// Station returns the node's radio handle.
func (n *Node) Station() *wireless.Station { return n.station }

// TransportConfig returns the effective (resolved) transport config.
func (n *Node) TransportConfig() core.Config { return n.tcfg }

// Down reports whether the node is currently crashed.
func (n *Node) Down() bool { return n.down }

// SetBehavior arms (or, with nil, disarms) an active-Byzantine behavior:
// an interceptor seeded from the node's private randomness is installed
// on the live transport — for mux nodes, on every open and future epoch
// transport — and survives crash/recovery (a restarted adversary is still
// an adversary).
func (n *Node) SetBehavior(b byz.Behavior) {
	n.behavior = b
	if b == nil {
		n.icept = nil
	} else {
		n.icept = &byz.Interceptor{Rand: n.Rand, Sched: n.sched, Behavior: b}
	}
	n.installInterceptor()
}

func (n *Node) installInterceptor() {
	var ic core.Interceptor
	if n.icept != nil {
		ic = n.icept
	}
	if n.mux != nil {
		n.mux.SetInterceptor(ic)
	} else if n.tr != nil {
		n.tr.SetInterceptor(ic)
	}
}

// Behavior returns the armed Byzantine behavior, or nil for an honest
// node.
func (n *Node) Behavior() byz.Behavior { return n.behavior }

// Byzantine reports whether a behavior is armed.
func (n *Node) Byzantine() bool { return n.behavior != nil }

// ReceiveFrame implements wireless.Receiver: the node is the station's
// receiver so that crash/recovery can gate inbound delivery and swap the
// underlying transport without re-attaching to the channel.
func (n *Node) ReceiveFrame(from wireless.NodeID, payload []byte) {
	if n.down || n.recv == nil {
		return
	}
	n.recv.ReceiveFrame(from, payload)
}

// Crash takes the node off the air: inbound frames are discarded, the
// radio queue is flushed, and the transport (every open epoch, for mux
// nodes) is stopped. Counters survive; in-memory protocol state does not.
// Idempotent.
func (n *Node) Crash() {
	if n.down {
		return
	}
	n.down = true
	if n.mux != nil {
		n.mux.Stop() // closed-epoch counters accumulate inside the mux
	} else if n.tr != nil {
		n.closed = core.AddStats(n.closed, n.tr.Stats())
		n.tr.Stop()
		n.tr = nil
		n.recv = nil
	}
	n.station.Reset()
}

// Recover brings a crashed node back with amnesia: a fresh transport on
// the same station and keys (mux nodes keep their mux — Crash already
// closed every epoch, so it holds no protocol state). The protocol layer
// decides what "stable storage" survived and how to rejoin. Idempotent.
func (n *Node) Recover() {
	if !n.down {
		return
	}
	n.down = false
	if n.mux == nil {
		n.tr = core.New(n.sched, n.CPU, nil, n.auth(), n.tcfg)
		n.tr.BindStation(n.station)
		n.recv = n.tr
		n.installInterceptor()
	}
}

// Stats returns the node's cumulative transport counters, including
// transports discarded by crashes and, for mux nodes, closed epochs.
func (n *Node) Stats() core.Stats {
	s := n.closed
	if n.mux != nil {
		s = core.AddStats(s, n.mux.Stats())
	}
	if n.tr != nil {
		s = core.AddStats(s, n.tr.Stats())
	}
	return s
}

var _ wireless.Receiver = (*Node)(nil)
