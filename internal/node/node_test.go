package node

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/wireless"
)

func deal(t *testing.T, n int) []*crypto.Suite {
	t.Helper()
	suites, err := crypto.Deal(n, (n-1)/3, crypto.LightConfig(), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return suites
}

func losslessNet() wireless.Config {
	cfg := wireless.DefaultConfig()
	cfg.LossProb = 0
	return cfg
}

// TestCrashRecoverTransportLifecycle: a crashed node is deaf and silent;
// a recovered one sends and receives again through a fresh transport, and
// Stats keeps counting across the crash.
func TestCrashRecoverTransportLifecycle(t *testing.T) {
	sched := sim.New(1)
	ch := wireless.NewChannel(sched, losslessNet())
	suites := deal(t, 4)
	cfg := Config{Batched: true, Seed: 1}
	nodes := make([]*Node, 4)
	for i := range nodes {
		nodes[i] = New(sched, ch, wireless.NodeID(i), suites[i], cfg)
	}
	recv := make([]int, 4)
	for i, n := range nodes {
		i := i
		n.Transport().Register(packet.KindRBC, core.HandlerFunc(func(uint16, packet.Section) { recv[i]++ }))
	}
	send := func(n *Node) {
		n.Transport().Update(core.Intent{
			IntentKey: core.IntentKey{Kind: packet.KindRBC, Phase: packet.PhaseEcho, Slot: 0},
			Data:      []byte("x"),
		})
	}
	send(nodes[0])
	sched.RunFor(time.Minute)
	if recv[1] == 0 || recv[3] == 0 {
		t.Fatal("baseline delivery failed")
	}

	nodes[3].Crash()
	if !nodes[3].Down() {
		t.Fatal("Down() false after Crash")
	}
	before := recv[3]
	send(nodes[0])
	sched.RunFor(time.Minute)
	if recv[3] != before {
		t.Error("crashed node still receiving")
	}
	preStats := nodes[3].Stats()

	nodes[3].Recover()
	// Re-register on the fresh transport (the protocol layer's job).
	nodes[3].Transport().Register(packet.KindRBC, core.HandlerFunc(func(uint16, packet.Section) { recv[3]++ }))
	send(nodes[0])
	send(nodes[3])
	sched.RunFor(time.Minute)
	if recv[3] == before {
		t.Error("recovered node not receiving")
	}
	if recv[0] == 0 {
		t.Error("recovered node not sending")
	}
	post := nodes[3].Stats()
	if post.LogicalSent < preStats.LogicalSent || post.VerifyOps <= preStats.VerifyOps {
		t.Errorf("stats lost across crash: pre %+v post %+v", preStats, post)
	}
	// Double crash / double recover are no-ops.
	nodes[3].Recover()
	nodes[3].Crash()
	nodes[3].Crash()
	nodes[3].Recover()
}

// TestMuxNodeCrashKeepsMux: mux nodes keep one mux across crashes; closed
// epochs fold into the cumulative counters.
func TestMuxNodeCrashKeepsMux(t *testing.T) {
	sched := sim.New(2)
	ch := wireless.NewChannel(sched, losslessNet())
	suites := deal(t, 4)
	cfg := Config{Batched: true, Seed: 2}
	a := NewMux(sched, ch, 0, suites[0], cfg)
	b := NewMux(sched, ch, 1, suites[1], cfg)
	for i := 2; i < 4; i++ {
		NewMux(sched, ch, wireless.NodeID(i), suites[i], cfg)
	}
	tr := a.Mux().Open(0)
	tr.Update(core.Intent{IntentKey: core.IntentKey{Kind: packet.KindRBC, Phase: packet.PhaseEcho}, Data: []byte("y")})
	b.Mux().Open(0)
	sched.RunFor(time.Minute)
	if a.Stats().LogicalSent == 0 {
		t.Fatal("mux node never sent")
	}
	sent := a.Stats().LogicalSent
	a.Crash()
	if got := len(a.Mux().OpenEpochs()); got != 0 {
		t.Fatalf("crash left %d epochs open", got)
	}
	a.Recover()
	if a.Mux() == nil {
		t.Fatal("mux lost across recovery")
	}
	tr2 := a.Mux().Open(1)
	tr2.Update(core.Intent{IntentKey: core.IntentKey{Kind: packet.KindRBC, Phase: packet.PhaseEcho}, Data: []byte("z")})
	sched.RunFor(time.Minute)
	if a.Stats().LogicalSent <= sent {
		t.Error("recovered mux node not sending")
	}
}

func TestDriveErrors(t *testing.T) {
	sched := sim.New(3)
	if err := Drive(sched, time.Hour, func() bool { return true }); err != nil {
		t.Fatalf("done-at-entry drive failed: %v", err)
	}
	err := Drive(sched, time.Hour, func() bool { return false })
	if !IsDeadlock(err) {
		t.Fatalf("empty queue: got %v, want deadlock", err)
	}
	sched2 := sim.New(3)
	var tick func()
	tick = func() { sched2.After(time.Minute, tick) }
	tick()
	err = Drive(sched2, time.Hour, func() bool { return false })
	if !IsDeadline(err) {
		t.Fatalf("busy loop: got %v, want deadline", err)
	}
}
