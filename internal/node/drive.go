package node

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

// ErrDeadline reports a drive loop that passed its virtual-time bound
// before done() held — the liveness failure every driver must detect.
var ErrDeadline = errors.New("node: virtual deadline exceeded")

// ErrDeadlock reports a drained event queue with done() still false: some
// component stopped scheduling work without finishing — a protocol bug.
var ErrDeadlock = errors.New("node: simulation deadlocked")

// Drive is the shared drive loop: it steps the scheduler until done()
// holds, wrapping the two failure modes in ErrDeadline/ErrDeadlock (with
// the virtual timestamp). Drivers add run context with fmt.Errorf("...:
// %w", err) and callers test with errors.Is.
func Drive(sched *sim.Scheduler, deadline time.Duration, done func() bool) error {
	for !done() {
		if sched.Now() > deadline {
			return fmt.Errorf("%w (deadline %v)", ErrDeadline, deadline)
		}
		if !sched.Step() {
			return fmt.Errorf("%w at %v", ErrDeadlock, sched.Now())
		}
	}
	return nil
}

// IsDeadline reports whether err wraps ErrDeadline.
func IsDeadline(err error) bool { return errors.Is(err, ErrDeadline) }

// IsDeadlock reports whether err wraps ErrDeadlock.
func IsDeadlock(err error) bool { return errors.Is(err, ErrDeadlock) }

// SumStats folds every node's cumulative transport counters (crashed and
// recovered transports included) into one aggregate.
func SumStats(nodes []*Node) core.Stats {
	var s core.Stats
	for _, n := range nodes {
		if n != nil {
			s = core.AddStats(s, n.Stats())
		}
	}
	return s
}
