package protocol

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"time"

	"repro/internal/component"
	"repro/internal/crypto"
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/wireless"
)

// aleaNet runs a 4-node Alea network to completion and returns the
// instances for inspection.
func aleaNet(t *testing.T, seed int64, coin CoinKind, loss float64) []*Alea {
	t.Helper()
	const n, f = 4, 1
	net := wireless.DefaultConfig()
	net.LossProb = loss
	sched := sim.New(seed)
	ch := wireless.NewChannel(sched, net)
	suites, err := crypto.Deal(n, f, crypto.LightConfig(), rand.New(rand.NewSource(seed^0x5eed)))
	if err != nil {
		t.Fatal(err)
	}
	ncfg := node.Config{Batched: true, Seed: seed}
	done := make([]bool, n)
	insts := make([]*Alea, n)
	for i := 0; i < n; i++ {
		nd := node.New(sched, ch, wireless.NodeID(i), suites[i], ncfg)
		nd.Transport().SetEpoch(0)
		env := &component.Env{
			N: n, F: f, Me: i, Epoch: 0,
			Suite: nd.Suite, T: nd.Transport(), CPU: nd.CPU, Sched: sched, Rand: nd.Rand,
		}
		i := i
		insts[i] = NewAlea(env, AleaOptions{Coin: coin, Batched: true,
			OnDecide: func() { done[i] = true }})
		insts[i].Start(aleaProposal(i))
	}
	allDone := func() bool {
		for _, d := range done {
			if !d {
				return false
			}
		}
		return true
	}
	for sched.Now() < 60*time.Minute && !allDone() {
		if !sched.Step() {
			break
		}
	}
	if !allDone() {
		for i, a := range insts {
			t.Logf("node %d: delivered=%d started=%v round=%d accepted=%d done=%v",
				i, a.vcbc.DeliveredCount(), a.started, a.round, a.acceptedN, done[i])
		}
		t.Fatalf("alea stuck at %v", sched.Now())
	}
	return insts
}

func aleaProposal(i int) []byte {
	prop := make([]byte, 64)
	binary.BigEndian.PutUint32(prop, uint32(i))
	return prop
}

// TestAleaAgreement pins the engine's core contract: every node decides
// the same slot-indexed outputs, exactly 2f+1 queues are accepted, and
// each accepted slot carries the proposer's exact batch (validity).
func TestAleaAgreement(t *testing.T) {
	for _, tc := range []struct {
		name string
		coin CoinKind
		loss float64
	}{
		{"sig-coin", CoinSig, 0},
		{"flip-coin", CoinFlip, 0},
		{"lossy", CoinSig, 0.05},
	} {
		t.Run(tc.name, func(t *testing.T) {
			insts := aleaNet(t, 7, tc.coin, tc.loss)
			ref := insts[0].Outputs()
			if len(ref) != 4 {
				t.Fatalf("want 4 output slots, got %d", len(ref))
			}
			accepted := 0
			for q, out := range ref {
				if out == nil {
					continue
				}
				accepted++
				if !bytes.Equal(out, aleaProposal(q)) {
					t.Errorf("slot %d: output is not proposer %d's batch", q, q)
				}
			}
			if accepted != 3 {
				t.Errorf("want exactly 2f+1=3 accepted queues, got %d", accepted)
			}
			for i, a := range insts[1:] {
				out := a.Outputs()
				if len(out) != len(ref) {
					t.Fatalf("node %d: %d slots vs %d", i+1, len(out), len(ref))
				}
				for q := range ref {
					if !bytes.Equal(out[q], ref[q]) {
						t.Errorf("node %d disagrees at slot %d", i+1, q)
					}
				}
			}
		})
	}
}

// TestAleaQueueStates checks the queue snapshots: accepted heads across
// nodes agree on the value digest, and every delivered head's proof is
// transferable — it verifies on a different node than the one that
// produced it.
func TestAleaQueueStates(t *testing.T) {
	insts := aleaNet(t, 11, CoinSig, 0)
	ref := insts[0].QueueStates()
	for _, a := range insts[1:] {
		states := a.QueueStates()
		for q, qs := range states {
			if qs.Status == QueuePending {
				continue
			}
			if ref[q].Status != QueuePending && qs.Hash != ref[q].Hash {
				t.Errorf("queue %d: hash disagreement across nodes", q)
			}
			// Proof produced on this node, verified against node 0's view.
			if err := insts[0].VerifyQueueProof(qs); err != nil {
				t.Errorf("queue %d: transferable proof rejected: %v", q, err)
			}
		}
	}
	// Tampered proofs must not verify.
	for _, qs := range ref {
		if qs.Status == QueuePending {
			continue
		}
		bad := qs
		bad.Proof = append([]byte(nil), qs.Proof...)
		bad.Proof[len(bad.Proof)/2] ^= 0x40
		if insts[1].VerifyQueueProof(bad) == nil {
			t.Errorf("queue %d: tampered proof verified", qs.Queue)
		}
	}
}

// TestQueueStateRoundTrip pins the canonical codec on handcrafted states.
func TestQueueStateRoundTrip(t *testing.T) {
	cases := []QueueState{
		{},
		{Queue: 3, Epoch: 9, Status: QueueDelivered, Hash: component.Hash8{1, 2, 3, 4, 5, 6, 7, 8}},
		{Queue: 255, Epoch: 65535, Status: QueueAccepted, Proof: bytes.Repeat([]byte{0xAB}, 300)},
	}
	for i, qs := range cases {
		raw := EncodeQueueState(qs)
		got, err := DecodeQueueState(raw)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !bytes.Equal(EncodeQueueState(got), raw) {
			t.Errorf("case %d: decode∘encode is not the identity", i)
		}
	}
	if _, err := DecodeQueueState(EncodeQueueState(cases[1])[:5]); err == nil {
		t.Error("truncated state decoded")
	}
	if _, err := DecodeQueueState(append(EncodeQueueState(cases[1]), 0)); err == nil {
		t.Error("over-long state decoded")
	}
}

// TestAleaOrder pins the common permutation: deterministic for an epoch
// identity, a valid permutation, and epoch-rotated.
func TestAleaOrder(t *testing.T) {
	a := aleaOrder(42, 3, 7)
	b := aleaOrder(42, 3, 7)
	seen := make([]bool, 7)
	for i, v := range a {
		if v != b[i] {
			t.Fatal("order not deterministic")
		}
		if v < 0 || v >= 7 || seen[v] {
			t.Fatalf("not a permutation: %v", a)
		}
		seen[v] = true
	}
	rotated := false
	for e := uint16(0); e < 8 && !rotated; e++ {
		c := aleaOrder(42, e, 7)
		for i := range a {
			if c[i] != a[i] {
				rotated = true
				break
			}
		}
	}
	if !rotated {
		t.Error("order never rotates across epochs")
	}
}

// TestEngineRegistry covers the registry surface the drivers and the
// conformance suite rely on: the builtin set, lookup, encrypt defaults,
// and Register/restore semantics.
func TestEngineRegistry(t *testing.T) {
	kinds := Kinds()
	want := []Kind{HoneyBadger, BEAT, DumboKind, AleaKind}
	if len(kinds) != len(want) {
		t.Fatalf("builtin kinds = %v, want %v", kinds, want)
	}
	for i, k := range want {
		if kinds[i] != k {
			t.Fatalf("builtin kinds = %v, want %v", kinds, want)
		}
	}
	if !DefaultEncrypt(HoneyBadger) || DefaultEncrypt(AleaKind) || DefaultEncrypt("nope") {
		t.Error("DefaultEncrypt defaults wrong")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup found an unregistered kind")
	}
	restore := Register(Engine{Kind: "stub", DefaultEncrypt: true})
	if _, ok := Lookup("stub"); !ok {
		t.Error("registered stub not found")
	}
	if len(Kinds()) != len(want)+1 {
		t.Error("stub did not append")
	}
	restore()
	if _, ok := Lookup("stub"); ok {
		t.Error("restore did not remove the stub")
	}
	// Replacement path: same Kind overrides in place, restore reinstates.
	restore = Register(Engine{Kind: AleaKind, DefaultEncrypt: true})
	if !DefaultEncrypt(AleaKind) || len(Kinds()) != len(want) {
		t.Error("same-kind Register did not replace in place")
	}
	restore()
	if DefaultEncrypt(AleaKind) {
		t.Error("restore did not reinstate the builtin alea entry")
	}
}
