package protocol

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/scenario"
)

func quickOpts(p Kind, coin CoinKind, batched bool, seed int64) Options {
	opts := DefaultOptions(p, coin)
	opts.Batched = batched
	opts.Epochs = 1
	opts.BatchSize = 2
	opts.Seed = seed
	opts.Net.LossProb = 0
	return opts
}

func TestHoneyBadgerSCSingleEpoch(t *testing.T) {
	res, err := Run(quickOpts(HoneyBadger, CoinSig, true, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredTxs < 2*3 { // at least 2f+1 proposals accepted
		t.Errorf("delivered %d txs, want >= 6", res.DeliveredTxs)
	}
	if res.MeanLatency <= 0 {
		t.Error("zero latency")
	}
	t.Logf("HB-SC: latency=%v txs=%d accesses=%d", res.MeanLatency, res.DeliveredTxs, res.Accesses)
}

func TestHoneyBadgerLC(t *testing.T) {
	res, err := Run(quickOpts(HoneyBadger, CoinLocal, true, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredTxs == 0 {
		t.Error("no transactions delivered")
	}
	t.Logf("HB-LC: latency=%v", res.MeanLatency)
}

func TestBEAT(t *testing.T) {
	res, err := Run(quickOpts(BEAT, CoinFlip, true, 3))
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredTxs == 0 {
		t.Error("no transactions delivered")
	}
	t.Logf("BEAT: latency=%v", res.MeanLatency)
}

func TestDumboSC(t *testing.T) {
	res, err := Run(quickOpts(DumboKind, CoinSig, true, 4))
	if err != nil {
		t.Fatal(err)
	}
	// Dumbo accepts exactly the 2f+1 proposals of the winning vector.
	if res.DeliveredTxs != 3*2 {
		t.Errorf("delivered %d txs, want 6 (2f+1 proposals x 2 txs)", res.DeliveredTxs)
	}
	t.Logf("Dumbo-SC: latency=%v", res.MeanLatency)
}

func TestDumboLC(t *testing.T) {
	res, err := Run(quickOpts(DumboKind, CoinLocal, true, 5))
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredTxs == 0 {
		t.Error("no transactions delivered")
	}
	t.Logf("Dumbo-LC: latency=%v", res.MeanLatency)
}

func TestBaselineSlowerThanBatched(t *testing.T) {
	batched, err := Run(quickOpts(HoneyBadger, CoinSig, true, 6))
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := Run(quickOpts(HoneyBadger, CoinSig, false, 6))
	if err != nil {
		t.Fatal(err)
	}
	if batched.MeanLatency >= baseline.MeanLatency {
		t.Errorf("batched %v not faster than baseline %v", batched.MeanLatency, baseline.MeanLatency)
	}
	if batched.Accesses >= baseline.Accesses {
		t.Errorf("batched accesses %d not fewer than baseline %d", batched.Accesses, baseline.Accesses)
	}
	t.Logf("latency: batched=%v baseline=%v; accesses: %d vs %d",
		batched.MeanLatency, baseline.MeanLatency, batched.Accesses, baseline.Accesses)
}

func TestMultiEpochProgress(t *testing.T) {
	opts := quickOpts(HoneyBadger, CoinSig, true, 7)
	opts.Epochs = 3
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EpochLatencies) != 3 {
		t.Fatalf("got %d epochs", len(res.EpochLatencies))
	}
	if res.TPM <= 0 {
		t.Error("zero throughput")
	}
}

func TestWithPacketLoss(t *testing.T) {
	opts := quickOpts(HoneyBadger, CoinSig, true, 8)
	opts.Net.LossProb = 0.08
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredTxs == 0 {
		t.Error("no delivery under loss")
	}
}

func TestWithCrashFault(t *testing.T) {
	for _, p := range []struct {
		kind Kind
		coin CoinKind
	}{{HoneyBadger, CoinSig}, {DumboKind, CoinSig}} {
		p := p
		t.Run(string(p.kind), func(t *testing.T) {
			opts := quickOpts(p.kind, p.coin, true, 9)
			opts.Scenario = scenario.Crash(3)
			opts.Deadline = 120 * time.Minute
			res, err := Run(opts)
			if err != nil {
				t.Fatal(err)
			}
			if res.DeliveredTxs == 0 {
				t.Error("no delivery with crashed node")
			}
		})
	}
}

func TestWithAdversarialDelays(t *testing.T) {
	opts := quickOpts(HoneyBadger, CoinSig, true, 10)
	opts.Scenario = scenario.Delay(0.3, 5*time.Second)
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredTxs == 0 {
		t.Error("no delivery under adversarial delay")
	}
}

// TestCrashRecoverAtEpochBoundary: in the one-shot driver a node crashed
// mid-run rejoins at the next epoch boundary and participates again.
func TestCrashRecoverAtEpochBoundary(t *testing.T) {
	opts := quickOpts(HoneyBadger, CoinSig, true, 14)
	opts.Epochs = 4
	opts.Deadline = 120 * time.Minute
	// Crash node 3 during epoch 0 and recover it a while later: it sits
	// out the rest of the epoch in progress and rejoins at the boundary.
	opts.Scenario = scenario.Plan{}.Then(
		scenario.CrashAt(30*time.Second, 3),
		scenario.RecoverAt(10*time.Minute, 3),
	)
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EpochLatencies) != 4 {
		t.Fatalf("got %d epochs", len(res.EpochLatencies))
	}
	if res.DeliveredTxs == 0 {
		t.Error("no delivery across crash/recovery")
	}
}

// TestRunScenarioDeterministic: scripted faults must preserve determinism
// in the one-shot driver, and full Results must match field-for-field.
func TestRunScenarioDeterministic(t *testing.T) {
	opts := quickOpts(HoneyBadger, CoinSig, true, 15)
	opts.Epochs = 2
	opts.Deadline = 4 * time.Hour
	opts.Scenario = scenario.Plan{}.Then(
		scenario.DelayFrom(0, 0.25, 8*time.Second, 0),
		scenario.JamAt(2*time.Minute, 30*time.Second),
	)
	a, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed differs under scenario:\n%+v\nvs\n%+v", a, b)
	}
}

func TestDeterministicRuns(t *testing.T) {
	a, err := Run(quickOpts(HoneyBadger, CoinSig, true, 11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickOpts(HoneyBadger, CoinSig, true, 11))
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanLatency != b.MeanLatency || a.Accesses != b.Accesses {
		t.Errorf("same seed differs: %v/%d vs %v/%d", a.MeanLatency, a.Accesses, b.MeanLatency, b.Accesses)
	}
}

func TestSeedsVaryOutcome(t *testing.T) {
	a, err := Run(quickOpts(HoneyBadger, CoinSig, true, 12))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickOpts(HoneyBadger, CoinSig, true, 13))
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanLatency == b.MeanLatency {
		t.Log("two seeds produced identical latency (possible, not failing)")
	}
}

func TestInvalidOptions(t *testing.T) {
	opts := quickOpts(HoneyBadger, CoinSig, true, 1)
	opts.N = 5
	if _, err := Run(opts); err == nil {
		t.Error("N != 3F+1 accepted")
	}
}

func TestAllFiveProtocolsComplete(t *testing.T) {
	cases := []struct {
		kind Kind
		coin CoinKind
	}{
		{HoneyBadger, CoinLocal},
		{HoneyBadger, CoinSig},
		{BEAT, CoinFlip},
		{DumboKind, CoinLocal},
		{DumboKind, CoinSig},
	}
	for i, c := range cases {
		c, i := c, i
		t.Run(fmt.Sprintf("%s-%s", c.kind, c.coin), func(t *testing.T) {
			t.Parallel()
			res, err := Run(quickOpts(c.kind, c.coin, true, 20+int64(i)))
			if err != nil {
				t.Fatal(err)
			}
			if res.DeliveredTxs == 0 {
				t.Error("no transactions delivered")
			}
		})
	}
}

func TestMultihop(t *testing.T) {
	opts := DefaultMultihopOptions(HoneyBadger, CoinSig)
	opts.Single.Epochs = 1
	opts.Single.BatchSize = 2
	opts.Single.Net.LossProb = 0
	opts.Single.Seed = 30
	res, err := RunMultihop(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredTxs == 0 {
		t.Error("no transactions delivered in multihop")
	}
	if res.GlobalAccesses == 0 || res.LocalAccesses == 0 {
		t.Error("expected traffic on both tiers")
	}
	// Regression for the stats-aggregation fix: the global tier's signed
	// packets must be measured and folded into the flat counters.
	if res.GlobalLogicalSent == 0 {
		t.Error("global-tier transport counters not folded into the result")
	}
	if res.LogicalSent <= res.GlobalLogicalSent {
		t.Errorf("LogicalSent %d does not include local tiers on top of global %d",
			res.LogicalSent, res.GlobalLogicalSent)
	}
	t.Logf("multihop: latency=%v local=%d global=%d globalSent=%d", res.MeanLatency,
		res.LocalAccesses, res.GlobalAccesses, res.GlobalLogicalSent)
}

// TestMultihopCrashRecovery: a follower crashed mid-epoch is excused from
// the epoch barrier, sits out the rest of the epoch after recovering
// mid-epoch (its fresh transport has no RESULT handler yet), and rejoins
// at the next boundary — here even rotating into the leader seat.
func TestMultihopCrashRecovery(t *testing.T) {
	opts := DefaultMultihopOptions(HoneyBadger, CoinSig)
	opts.Single.Epochs = 2
	opts.Single.BatchSize = 2
	opts.Single.Net.LossProb = 0
	opts.Single.Seed = 32
	opts.Single.Scenario = scenario.Plan{}.Then(
		scenario.CrashAt(10*time.Second, 1), // cluster 0, follower in epoch 0
		scenario.RecoverAt(2*time.Minute, 1),
	)
	res, err := RunMultihop(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EpochLatencies) != 2 {
		t.Fatalf("got %d epochs", len(res.EpochLatencies))
	}
	if res.DeliveredTxs == 0 {
		t.Error("no delivery across the crash/recovery")
	}
}

// TestMultihopScenarioDelay: scripted network effects apply across the
// multihop tiers and keep the run deterministic.
func TestMultihopScenarioDelay(t *testing.T) {
	opts := DefaultMultihopOptions(HoneyBadger, CoinSig)
	opts.Single.Epochs = 1
	opts.Single.BatchSize = 2
	opts.Single.Net.LossProb = 0
	opts.Single.Seed = 31
	opts.Single.Scenario = scenario.Delay(0.2, 5*time.Second)
	a, err := RunMultihop(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMultihop(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanLatency != b.MeanLatency || a.Accesses != b.Accesses {
		t.Errorf("multihop scenario run not deterministic: %v/%d vs %v/%d",
			a.MeanLatency, a.Accesses, b.MeanLatency, b.Accesses)
	}
}
