package protocol

import (
	"bytes"
	"testing"
)

// FuzzQueueStateRoundTrip pins the queue-state codec both ways: any raw
// bytes the decoder accepts re-encode to the identical string (canonical
// wire form), and any structured state survives an encode/decode round
// trip field-for-field.
func FuzzQueueStateRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint8(0), uint16(0), uint8(0))
	f.Add(EncodeQueueState(QueueState{Queue: 2, Epoch: 7, Status: QueueAccepted,
		Proof: []byte{1, 2, 3}}), uint8(3), uint16(9), uint8(QueueDelivered))
	f.Add([]byte{0, 0, 1, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 5}, uint8(255), uint16(65535), uint8(200))
	f.Fuzz(func(t *testing.T, raw []byte, queue uint8, epoch uint16, status uint8) {
		// Direction 1: decoder accepts => canonical.
		if qs, err := DecodeQueueState(raw); err == nil {
			if !bytes.Equal(EncodeQueueState(qs), raw) {
				t.Fatalf("accepted non-canonical encoding: %x", raw)
			}
		}
		// Direction 2: structured round trip, reusing raw as the proof blob
		// (truncated to the u16 length prefix's range).
		proof := raw
		if len(proof) > 65535 {
			proof = proof[:65535]
		}
		in := QueueState{Queue: queue, Epoch: epoch, Status: status}
		copy(in.Hash[:], raw)
		if len(proof) > 0 {
			in.Proof = proof
		}
		out, err := DecodeQueueState(EncodeQueueState(in))
		if err != nil {
			t.Fatalf("genuine encoding rejected: %v", err)
		}
		if out.Queue != in.Queue || out.Epoch != in.Epoch || out.Status != in.Status ||
			out.Hash != in.Hash || !bytes.Equal(out.Proof, in.Proof) {
			t.Fatalf("round trip mutated the state: %+v vs %+v", out, in)
		}
	})
}
