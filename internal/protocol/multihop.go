package protocol

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/component"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/node"
	"repro/internal/packet"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/wireless"
)

// MultihopOptions configures a clustered (multi-hop) run per Sec. V-B: M
// single-hop clusters each run local consensus on their own channel; one
// rotating leader per cluster joins a global tier on a separate channel
// (the paper uses separate channels to avoid interference), which orders
// the clusters' proposals; leaders then disseminate the global order back
// into their clusters.
//
// Single.Scenario applies across the deployment: node indices are flat
// (cluster*PerCluster + in-cluster index), crash/recovery and byz events
// act on the cluster nodes (a Byzantine node that becomes its cluster's
// leader carries its behavior onto the global tier with it), partitions
// act on the cluster channels, and the network-level effects (loss, jam,
// delay) also cover the global channel. Crashing a node that is the
// cluster leader for the current epoch stalls that cluster's global seat
// for the epoch — the deployment has no leader failover, so such a
// scenario ends in a deadline error, which is itself a measurable
// outcome. The same applies to a Byzantine leader that withholds its
// RESULT dissemination: followers have no way to distinguish it from a
// dead one, so script Byzantine nodes that stay followers (or accept the
// stall as the measurement) until a failover mechanism exists.
type MultihopOptions struct {
	Single   Options // protocol, coin, batching, crypto, channel template
	Clusters int     // M (must be 3f_g+1; the paper uses 4)
	// PerCluster is the cluster size N_i (must be 3f_i+1; the paper uses 4).
	PerCluster int
}

// DefaultMultihopOptions mirrors the paper's 16-node, 4-cluster setup.
func DefaultMultihopOptions(p Kind, coin CoinKind) MultihopOptions {
	return MultihopOptions{Single: DefaultOptions(p, coin), Clusters: 4, PerCluster: 4}
}

// MultihopResult extends Result with per-tier counters. The flat Result
// counters (LogicalSent, SignOps, VerifyOps) cover both tiers: cluster
// members' radios and the leaders' global-tier radios.
type MultihopResult struct {
	Result
	GlobalAccesses uint64
	LocalAccesses  uint64
	// GlobalLogicalSent counts the signed logical packets of the global
	// tier alone (also included in LogicalSent).
	GlobalLogicalSent uint64
}

// globalSession derives the global tier's session id from the local one,
// domain-separating the two tiers' coins and signed transcripts.
func globalSession(local uint32) uint32 { return local ^ 0x006C0BA1 }

type mhCluster struct {
	idx   int
	ch    *wireless.Channel
	nodes []*runNode
	// Global-tier state: one persistent seat per cluster, occupied by the
	// epoch's leader.
	global     *node.Node
	leader     int // index within cluster this epoch
	globalInst Instance
	resultSent bool
	// Followers' completion flags.
	gotResult []bool
}

// RunMultihop executes a multi-hop simulation.
func RunMultihop(opts MultihopOptions) (*MultihopResult, error) {
	so := opts.Single
	if opts.Clusters < 4 || (opts.Clusters-1)%3 != 0 {
		return nil, fmt.Errorf("protocol: clusters must be 3f+1 >= 4, got %d", opts.Clusters)
	}
	if opts.PerCluster != 3*so.F+1 {
		return nil, fmt.Errorf("protocol: cluster size %d != 3F+1", opts.PerCluster)
	}
	if so.Deadline <= 0 {
		so.Deadline = 120 * time.Minute
	}
	if err := validateByz(so.Scenario, opts.Clusters*opts.PerCluster); err != nil {
		return nil, err
	}
	byzN := so.Scenario.ByzNodes()
	perCluster := make([]int, opts.Clusters)
	for nd := range byzN {
		perCluster[nd/opts.PerCluster]++
	}
	for c, cnt := range perCluster {
		if cnt > so.F {
			return nil, fmt.Errorf("protocol: cluster %d has %d Byzantine nodes, exceeds F=%d", c, cnt, so.F)
		}
	}
	sched := sim.New(so.Seed)
	fg := (opts.Clusters - 1) / 3

	globalCh := wireless.NewChannel(sched, so.Net)
	globalSuites, err := crypto.Deal(opts.Clusters, fg, so.Crypto, rand.New(rand.NewSource(so.Seed^0x61)))
	if err != nil {
		return nil, err
	}

	ncfg := node.Config{Transport: so.Transport, Batched: so.Batched, Seed: so.Seed}
	clusters := make([]*mhCluster, opts.Clusters)
	var flat []*runNode // scenario node-id space: cluster*PerCluster + i
	for c := range clusters {
		ch := wireless.NewChannel(sched, so.Net)
		suites, err := crypto.Deal(opts.PerCluster, so.F, so.Crypto, rand.New(rand.NewSource(so.Seed+int64(c)*101)))
		if err != nil {
			return nil, err
		}
		cl := &mhCluster{idx: c, ch: ch, gotResult: make([]bool, opts.PerCluster)}
		for i := 0; i < opts.PerCluster; i++ {
			n := &runNode{Node: node.New(sched, ch, wireless.NodeID(i), suites[i], ncfg), idx: i,
				byz: byzN[c*opts.PerCluster+i]}
			cl.nodes = append(cl.nodes, n)
			flat = append(flat, n)
		}
		clusters[c] = cl
	}
	eng := scenario.Start(sched, so.Scenario, so.Seed, runLifecycle{flat})
	for c, cl := range clusters {
		base := c * opts.PerCluster
		cl.ch.SetDeliveryHook(eng.HookMapped(func(id wireless.NodeID) int { return base + int(id) }))
	}
	globalCh.SetDeliveryHook(eng.HookNetOnly())

	res := &MultihopResult{}
	for epoch := 0; epoch < so.Epochs; epoch++ {
		start := sched.Now()
		leaderIdx := epoch % opts.PerCluster
		for c, cl := range clusters {
			cl.leader = leaderIdx
			cl.resultSent = false
			for i := range cl.gotResult {
				cl.gotResult[i] = false
			}
			// The global instance must exist before the leader's local
			// decision callback can feed it the cluster digest.
			cl.attachGlobal(sched, globalCh, globalSuites[c], uint16(epoch), so, opts.Clusters)
			cl.startLocalEpoch(sched, uint16(epoch), so)
		}
		done := func() bool {
			for _, cl := range clusters {
				for i := range cl.gotResult {
					// Only nodes participating in this epoch are waited on:
					// inst is nil for nodes that were down at the epoch start
					// or crashed mid-epoch, and stays nil for a node that
					// recovered mid-epoch (it has no RESULT handler yet; it
					// sits the rest of the epoch out and rejoins at the next
					// boundary, like the single-hop driver).
					if !cl.gotResult[i] && cl.nodes[i].inst != nil && !cl.nodes[i].byz {
						return false
					}
				}
			}
			return true
		}
		if err := node.Drive(sched, start+so.Deadline, done); err != nil {
			return nil, fmt.Errorf("protocol: multihop epoch %d (%s %s): %w", epoch, so.Protocol, so.Coin, err)
		}
		res.EpochLatencies = append(res.EpochLatencies, sched.Now()-start)
		for _, cl := range clusters {
			res.DeliveredTxs += countTxs(cl.nodes, so)
		}
	}

	var sum time.Duration
	for _, l := range res.EpochLatencies {
		sum += l
	}
	if len(res.EpochLatencies) > 0 {
		res.MeanLatency = sum / time.Duration(len(res.EpochLatencies))
	}
	if now := sched.Now(); now > 0 {
		res.TPM = float64(res.DeliveredTxs) / now.Minutes()
	}
	res.GlobalAccesses = globalCh.Stats().Accesses
	var all []*node.Node
	for _, cl := range clusters {
		st := cl.ch.Stats()
		res.LocalAccesses += st.Accesses
		res.Collisions += st.Collisions
		res.Frames += st.Frames
		res.BytesOnAir += st.BytesOnAir
		for _, n := range cl.nodes {
			all = append(all, n.Node)
		}
		if cl.global != nil {
			all = append(all, cl.global)
			res.GlobalLogicalSent += cl.global.Stats().LogicalSent
		}
	}
	gst := globalCh.Stats()
	res.Collisions += gst.Collisions
	res.Frames += gst.Frames
	res.BytesOnAir += gst.BytesOnAir
	// Fold both tiers' transport counters: cluster radios and the leaders'
	// global-tier radios (the latter were dropped before this refactor).
	ts := node.SumStats(all)
	res.LogicalSent = ts.LogicalSent
	res.SignOps = ts.SignOps
	res.VerifyOps = ts.VerifyOps
	res.Rejected = ts.Rejected
	res.Accesses = res.LocalAccesses + res.GlobalAccesses
	return res, nil
}

// startLocalEpoch starts every cluster member's epoch. The leader's local
// decision submits the cluster digest to the global tier — a completion
// callback, not a polling loop.
func (cl *mhCluster) startLocalEpoch(sched *sim.Scheduler, epoch uint16, so Options) {
	leader := cl.nodes[cl.leader]
	for _, n := range cl.nodes {
		var onDone func()
		if n == leader {
			inst := cl.globalInst
			onDone = func() { inst.Start(clusterDigest(leader, epoch)) }
		}
		n.startEpoch(sched, epoch, so, onDone)
	}
	// Followers additionally listen for the leader's global RESULT.
	for i, n := range cl.nodes {
		if n.crashed {
			continue
		}
		i := i
		n.Transport().Register(packet.KindGlobal, core.HandlerFunc(func(from uint16, sec packet.Section) {
			if sec.Phase == packet.PhaseFinish && int(from) == cl.leader {
				cl.gotResult[i] = true
			}
		}))
	}
}

// attachGlobal wires this epoch's cluster leader into the global tier and
// builds the epoch's global consensus instance.
func (cl *mhCluster) attachGlobal(sched *sim.Scheduler, globalCh *wireless.Channel, suite *crypto.Suite, epoch uint16, so Options, clusters int) {
	leader := cl.nodes[cl.leader]
	if cl.global == nil {
		// The leader's radio on the global channel is a second interface;
		// compute, however, shares the node's single core. For simplicity
		// each seat keeps one deployment node attached across epochs.
		gcfg := node.Config{
			Transport: so.Transport,
			Batched:   so.Batched,
			Seed:      so.Seed ^ 0x61,
			CPU:       leader.CPU,
		}
		gcfg.Transport.Session = globalSession(so.Transport.Session)
		cl.global = node.New(sched, globalCh, wireless.NodeID(cl.idx), suite, gcfg)
	}
	// The seat persists while leaders rotate: it is only as Byzantine as
	// the node currently occupying it.
	cl.global.SetBehavior(leader.Node.Behavior())
	gtr := cl.global.Transport()
	gtr.SetEpoch(epoch)
	env := &component.Env{
		N:       clusters,
		F:       (clusters - 1) / 3,
		Me:      cl.idx,
		Epoch:   epoch,
		Session: cl.global.TransportConfig().Session,
		Suite:   suite,
		T:       gtr,
		CPU:     cl.global.CPU,
		Sched:   sched,
		Rand:    leader.Rand,
	}
	onGlobalDecide := func() { cl.publishResult(epoch) }
	switch so.Protocol {
	case DumboKind:
		cl.globalInst = NewDumbo(env, DumboOptions{Coin: so.Coin, Batched: so.Batched, OnDecide: onGlobalDecide})
	default:
		coin := so.Coin
		if so.Protocol == BEAT && coin == "" {
			coin = CoinFlip
		}
		cl.globalInst = NewACS(env, ACSOptions{Coin: coin, Batched: so.Batched, Encrypt: false, OnDecide: onGlobalDecide})
	}
}

// publishResult broadcasts the global order into the cluster. The leader
// itself completes at this point.
func (cl *mhCluster) publishResult(epoch uint16) {
	if cl.resultSent {
		return
	}
	leader := cl.nodes[cl.leader]
	if leader.crashed {
		return // a dead leader cannot disseminate; the epoch stalls
	}
	cl.resultSent = true
	var digest []byte
	for _, out := range cl.globalInst.Outputs() {
		d := sha256.Sum256(out)
		digest = append(digest, d[:8]...)
	}
	leader.Transport().Update(core.Intent{
		IntentKey: core.IntentKey{Kind: packet.KindGlobal, Phase: packet.PhaseFinish, Slot: 0},
		Data:      digest,
	})
	cl.gotResult[cl.leader] = true
}

// clusterDigest summarizes a cluster's local output for the global tier.
func clusterDigest(leader *runNode, epoch uint16) []byte {
	h := sha256.New()
	var eb [2]byte
	binary.BigEndian.PutUint16(eb[:], epoch)
	h.Write(eb[:])
	for _, out := range leader.inst.Outputs() {
		h.Write(out)
	}
	return h.Sum(nil)
}
