package protocol

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/component"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/wireless"
)

// MultihopOptions configures a clustered (multi-hop) run per Sec. V-B: M
// single-hop clusters each run local consensus on their own channel; one
// rotating leader per cluster joins a global tier on a separate channel
// (the paper uses separate channels to avoid interference), which orders
// the clusters' proposals; leaders then disseminate the global order back
// into their clusters.
type MultihopOptions struct {
	Single   Options // protocol, coin, batching, crypto, channel template
	Clusters int     // M (must be 3f_g+1; the paper uses 4)
	// PerCluster is the cluster size N_i (must be 3f_i+1; the paper uses 4).
	PerCluster int
}

// DefaultMultihopOptions mirrors the paper's 16-node, 4-cluster setup.
func DefaultMultihopOptions(p Kind, coin CoinKind) MultihopOptions {
	return MultihopOptions{Single: DefaultOptions(p, coin), Clusters: 4, PerCluster: 4}
}

// MultihopResult extends Result with per-tier channel counters.
type MultihopResult struct {
	Result
	GlobalAccesses uint64
	LocalAccesses  uint64
}

type mhCluster struct {
	ch     *wireless.Channel
	nodes  []*runNode
	leader int // index within cluster this epoch
	// Global-tier state for the leader.
	globalTr   *core.Transport
	globalCPU  *sim.CPU
	globalInst Instance
	globalDone bool
	resultSent bool
	// Followers' completion flags.
	gotResult []bool
}

// RunMultihop executes a multi-hop simulation.
func RunMultihop(opts MultihopOptions) (*MultihopResult, error) {
	so := opts.Single
	if opts.Clusters < 4 || (opts.Clusters-1)%3 != 0 {
		return nil, fmt.Errorf("protocol: clusters must be 3f+1 >= 4, got %d", opts.Clusters)
	}
	if opts.PerCluster != 3*so.F+1 {
		return nil, fmt.Errorf("protocol: cluster size %d != 3F+1", opts.PerCluster)
	}
	if so.Deadline <= 0 {
		so.Deadline = 120 * time.Minute
	}
	sched := sim.New(so.Seed)
	fg := (opts.Clusters - 1) / 3

	globalCh := wireless.NewChannel(sched, so.Net)
	globalSuites, err := crypto.Deal(opts.Clusters, fg, so.Crypto, rand.New(rand.NewSource(so.Seed^0x61)))
	if err != nil {
		return nil, err
	}

	clusters := make([]*mhCluster, opts.Clusters)
	for c := range clusters {
		ch := wireless.NewChannel(sched, so.Net)
		suites, err := crypto.Deal(opts.PerCluster, so.F, so.Crypto, rand.New(rand.NewSource(so.Seed+int64(c)*101)))
		if err != nil {
			return nil, err
		}
		cl := &mhCluster{ch: ch, gotResult: make([]bool, opts.PerCluster)}
		for i := 0; i < opts.PerCluster; i++ {
			cl.nodes = append(cl.nodes, newRunNode(sched, ch, wireless.NodeID(i), suites[i], so, false))
		}
		clusters[c] = cl
	}

	res := &MultihopResult{}
	for epoch := 0; epoch < so.Epochs; epoch++ {
		start := sched.Now()
		leaderIdx := epoch % opts.PerCluster
		for c, cl := range clusters {
			cl.leader = leaderIdx
			cl.globalDone = false
			cl.resultSent = false
			for i := range cl.gotResult {
				cl.gotResult[i] = false
			}
			cl.startLocalEpoch(sched, uint16(epoch), so)
			cl.attachGlobal(sched, globalCh, globalSuites[c], wireless.NodeID(c), uint16(epoch), so, clusters)
		}
		deadline := start + so.Deadline
		done := func() bool {
			for _, cl := range clusters {
				for i := range cl.gotResult {
					if !cl.gotResult[i] {
						return false
					}
				}
			}
			return true
		}
		for !done() {
			if sched.Now() > deadline {
				return nil, fmt.Errorf("protocol: multihop epoch %d missed deadline (%s %s)", epoch, so.Protocol, so.Coin)
			}
			if !sched.Step() {
				return nil, fmt.Errorf("protocol: multihop epoch %d deadlocked at %v", epoch, sched.Now())
			}
		}
		res.EpochLatencies = append(res.EpochLatencies, sched.Now()-start)
		for _, cl := range clusters {
			res.DeliveredTxs += countTxs(cl.nodes, so)
		}
	}

	var sum time.Duration
	for _, l := range res.EpochLatencies {
		sum += l
	}
	if len(res.EpochLatencies) > 0 {
		res.MeanLatency = sum / time.Duration(len(res.EpochLatencies))
	}
	if now := sched.Now(); now > 0 {
		res.TPM = float64(res.DeliveredTxs) / now.Minutes()
	}
	res.GlobalAccesses = globalCh.Stats().Accesses
	for _, cl := range clusters {
		st := cl.ch.Stats()
		res.LocalAccesses += st.Accesses
		res.Collisions += st.Collisions
		res.Frames += st.Frames
		res.BytesOnAir += st.BytesOnAir
		for _, n := range cl.nodes {
			ts := n.tr.Stats()
			res.LogicalSent += ts.LogicalSent
			res.SignOps += ts.SignOps
			res.VerifyOps += ts.VerifyOps
		}
	}
	res.Accesses = res.LocalAccesses + res.GlobalAccesses
	return res, nil
}

func (cl *mhCluster) startLocalEpoch(sched *sim.Scheduler, epoch uint16, so Options) {
	for _, n := range cl.nodes {
		n.startEpoch(sched, epoch, so)
	}
	// Followers additionally listen for the leader's global RESULT.
	for i, n := range cl.nodes {
		i, n := i, n
		n.tr.Register(packet.KindGlobal, core.HandlerFunc(func(from uint16, sec packet.Section) {
			if sec.Phase == packet.PhaseFinish && int(from) == cl.leader {
				cl.gotResult[i] = true
			}
		}))
	}
}

// attachGlobal wires this epoch's cluster leader into the global tier.
func (cl *mhCluster) attachGlobal(sched *sim.Scheduler, globalCh *wireless.Channel, suite *crypto.Suite, seat wireless.NodeID, epoch uint16, so Options, clusters []*mhCluster) {
	leader := cl.nodes[cl.leader]
	if cl.globalCPU == nil {
		// The leader's radio on the global channel is a second interface;
		// compute, however, shares the node's single core. For simplicity
		// each seat keeps one transport attached across epochs.
		cl.globalCPU = leader.cpu
		auth := &core.SizedAuth{
			Len:        suite.Signer.Scheme().SignatureLen(),
			CostSign:   suite.Cost.PKSign,
			CostVerify: suite.Cost.PKVerify,
		}
		tcfg := core.DefaultConfig(so.Batched)
		tcfg.Batched = so.Batched
		tr := core.New(sched, cl.globalCPU, nil, auth, tcfg)
		st := globalCh.Attach(seat, tr)
		tr.BindStation(st)
		cl.globalTr = tr
	}
	cl.globalTr.SetEpoch(epoch)
	env := &component.Env{
		N:       len(clusters),
		F:       (len(clusters) - 1) / 3,
		Me:      int(seat),
		Epoch:   epoch,
		Session: so.Transport.Session ^ 0x006C0BA1, // distinct global-tier session
		Suite:   suite,
		T:       cl.globalTr,
		CPU:     cl.globalCPU,
		Sched:   sched,
		Rand:    leader.rand,
	}
	onGlobalDecide := func() {
		cl.globalDone = true
		cl.publishResult(epoch)
	}
	switch so.Protocol {
	case DumboKind:
		cl.globalInst = NewDumbo(env, DumboOptions{Coin: so.Coin, Batched: so.Batched, OnDecide: onGlobalDecide})
	default:
		coin := so.Coin
		if so.Protocol == BEAT && coin == "" {
			coin = CoinFlip
		}
		cl.globalInst = NewACS(env, ACSOptions{Coin: coin, Batched: so.Batched, Encrypt: false, OnDecide: onGlobalDecide})
	}
	// The leader submits the cluster digest once local consensus finishes.
	waitLocal(sched, cl, epoch, so)
}

// waitLocal polls for local completion, then starts the global instance
// with the cluster digest. (Polling stays on the event queue, so virtual
// time accounting is exact.)
func waitLocal(sched *sim.Scheduler, cl *mhCluster, epoch uint16, so Options) {
	leader := cl.nodes[cl.leader]
	var check func()
	check = func() {
		if !leader.done {
			sched.After(100*time.Millisecond, check)
			return
		}
		digest := clusterDigest(leader, epoch)
		cl.globalInst.Start(digest)
		waitGlobalResult(sched, cl, epoch)
	}
	sched.After(100*time.Millisecond, check)
}

func waitGlobalResult(sched *sim.Scheduler, cl *mhCluster, epoch uint16) {
	var check func()
	check = func() {
		if !cl.globalDone {
			sched.After(100*time.Millisecond, check)
			return
		}
		cl.publishResult(epoch)
	}
	sched.After(100*time.Millisecond, check)
}

// publishResult broadcasts the global order into the cluster. The leader
// itself completes at this point.
func (cl *mhCluster) publishResult(epoch uint16) {
	if cl.resultSent {
		return
	}
	cl.resultSent = true
	leader := cl.nodes[cl.leader]
	var digest []byte
	for _, out := range cl.globalInst.Outputs() {
		d := sha256.Sum256(out)
		digest = append(digest, d[:8]...)
	}
	leader.tr.Update(core.Intent{
		IntentKey: core.IntentKey{Kind: packet.KindGlobal, Phase: packet.PhaseFinish, Slot: 0},
		Data:      digest,
	})
	cl.gotResult[cl.leader] = true
}

// clusterDigest summarizes a cluster's local output for the global tier.
func clusterDigest(leader *runNode, epoch uint16) []byte {
	h := sha256.New()
	var eb [2]byte
	binary.BigEndian.PutUint16(eb[:], epoch)
	h.Write(eb[:])
	for _, out := range leader.inst.Outputs() {
		h.Write(out)
	}
	return h.Sum(nil)
}
