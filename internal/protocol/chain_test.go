package protocol

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/scenario"
)

func quickChainOpts(p Kind, coin CoinKind, batched bool, seed int64) ChainOptions {
	opts := DefaultChainOptions(p, coin)
	opts.Batched = batched
	opts.Seed = seed
	return opts
}

// TestChainPipelinedLossy is the acceptance run: >= 20 epochs at pipeline
// depth 2 on the lossy default channel, for both ConsensusBatcher and the
// baseline transport; all correct nodes must commit identical, gap-free
// logs (ChainRun fails otherwise).
func TestChainPipelinedLossy(t *testing.T) {
	for _, batched := range []bool{true, false} {
		batched := batched
		t.Run(fmt.Sprintf("batched=%v", batched), func(t *testing.T) {
			t.Parallel()
			opts := quickChainOpts(HoneyBadger, CoinSig, batched, 1)
			res, err := ChainRun(opts)
			if err != nil {
				t.Fatal(err)
			}
			if res.EpochsCommitted < 20 {
				t.Fatalf("committed %d epochs, want >= 20", res.EpochsCommitted)
			}
			if res.CommittedTxs == 0 || res.ThroughputBps <= 0 {
				t.Fatalf("no sustained throughput: %+v", res)
			}
			t.Logf("batched=%v: %d epochs, %d txs, %.1f B/s, commit latency %v, dedup dropped %d",
				batched, res.EpochsCommitted, res.CommittedTxs, res.ThroughputBps,
				res.MeanCommitLatency.Round(time.Millisecond), res.DedupDropped)
		})
	}
}

// TestChainAllVariantsLossy runs multi-epoch SMR agreement for all five
// protocol variants on the lossy channel.
func TestChainAllVariantsLossy(t *testing.T) {
	for i, v := range Variants() {
		v, i := v, i
		t.Run(v.Name, func(t *testing.T) {
			t.Parallel()
			opts := quickChainOpts(v.Kind, v.Coin, true, 40+int64(i))
			opts.TargetEpochs = 6
			res, err := ChainRun(opts)
			if err != nil {
				t.Fatal(err)
			}
			if res.CommittedTxs == 0 {
				t.Error("no transactions committed")
			}
			t.Logf("%s: %d txs in %v (%.1f B/s)", v.Name, res.CommittedTxs,
				res.Duration.Round(time.Second), res.ThroughputBps)
		})
	}
}

// TestChainDeeperPipelineKeepsAgreement raises the depth beyond 2.
func TestChainDeeperPipelineKeepsAgreement(t *testing.T) {
	opts := quickChainOpts(HoneyBadger, CoinSig, true, 3)
	opts.Window = 4
	opts.TargetEpochs = 10
	res, err := ChainRun(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxOpenEpochs <= 1 {
		t.Errorf("pipeline never overlapped: max open epochs %d", res.MaxOpenEpochs)
	}
}

// TestChainWithCrashFault checks sustained progress with f crashed nodes.
func TestChainWithCrashFault(t *testing.T) {
	opts := quickChainOpts(HoneyBadger, CoinSig, true, 4)
	opts.TargetEpochs = 5
	opts.Scenario = scenario.Crash(3)
	res, err := ChainRun(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.CommittedTxs == 0 {
		t.Error("no transactions committed with a crashed node")
	}
	if res.Logs[3] != nil {
		t.Error("crashed node produced a log")
	}
}

// TestChainDeterministic: same seed, same log and measurements.
func TestChainDeterministic(t *testing.T) {
	opts := quickChainOpts(DumboKind, CoinSig, true, 5)
	opts.TargetEpochs = 4
	a, err := ChainRun(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ChainRun(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Duration != b.Duration || a.CommittedTxs != b.CommittedTxs || a.Accesses != b.Accesses {
		t.Errorf("same seed differs: %v/%d/%d vs %v/%d/%d",
			a.Duration, a.CommittedTxs, a.Accesses, b.Duration, b.CommittedTxs, b.Accesses)
	}
}

// TestChainEpochGC: open epoch state stays bounded by the GC lag, not the
// chain length.
func TestChainEpochGC(t *testing.T) {
	opts := quickChainOpts(HoneyBadger, CoinSig, true, 6)
	opts.TargetEpochs = 12
	opts.Window = 2
	opts.GCLag = 3
	res, err := ChainRun(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxOpenEpochs > opts.GCLag+opts.Window+1 {
		t.Errorf("max open epochs %d exceeds GC bound %d", res.MaxOpenEpochs, opts.GCLag+opts.Window+1)
	}
}

// TestChainDedup: every client tx is broadcast to all four mempools, so
// without commit-time dedup the log would repeat most payloads ~4x.
func TestChainDedup(t *testing.T) {
	opts := quickChainOpts(HoneyBadger, CoinSig, true, 7)
	opts.TargetEpochs = 8
	res, err := ChainRun(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.DedupDropped == 0 {
		t.Error("commit dedup never triggered despite broadcast clients")
	}
	seen := map[string]bool{}
	for _, entry := range res.Logs[0] {
		for _, tx := range entry.Txs {
			if seen[string(tx)] {
				t.Fatalf("duplicate tx committed in epoch %d", entry.Epoch)
			}
			seen[string(tx)] = true
		}
	}
	if res.CommittedTxs > res.SubmittedTxs {
		t.Errorf("committed %d txs > submitted %d", res.CommittedTxs, res.SubmittedTxs)
	}
}

// TestChainCrashRecovery is the crash-recovery acceptance run: node 2
// crashes around epoch 5 and recovers around epoch 10 (the default cadence
// is ~5m45s per epoch). The recovered node must rejoin mid-run through
// core.Mux.OnUnknownEpoch, catch up on the epochs it lost through NACK
// retransmission and repair, and commit the same gap-free log as everyone
// else — under both transports.
func TestChainCrashRecovery(t *testing.T) {
	for _, batched := range []bool{true, false} {
		batched := batched
		t.Run(fmt.Sprintf("batched=%v", batched), func(t *testing.T) {
			t.Parallel()
			opts := quickChainOpts(HoneyBadger, CoinSig, batched, 1)
			opts.TargetEpochs = 14
			// Peers must still hold the recovered node's missing epochs:
			// keep the GC window as long as the run.
			opts.GCLag = opts.TargetEpochs
			opts.Scenario = scenario.Plan{}.Then(
				scenario.CrashAt(30*time.Minute, 2),   // ~epoch 5
				scenario.RecoverAt(60*time.Minute, 2), // ~epoch 10
			)
			res, err := ChainRun(opts)
			if err != nil {
				t.Fatal(err)
			}
			for i, log := range res.Logs {
				if len(log) != opts.TargetEpochs {
					t.Fatalf("node %d committed %d epochs, want %d (recovered node must catch up)",
						i, len(log), opts.TargetEpochs)
				}
				for e, entry := range log {
					if entry.Epoch != e {
						t.Fatalf("node %d log has a gap at %d (epoch %d)", i, e, entry.Epoch)
					}
				}
			}
			// The recovered node's log must be byte-identical to node 0's.
			for e := range res.Logs[0] {
				a, b := res.Logs[0][e], res.Logs[2][e]
				if len(a.Txs) != len(b.Txs) {
					t.Fatalf("epoch %d: node0 %d txs, recovered node %d txs", e, len(a.Txs), len(b.Txs))
				}
				for j := range a.Txs {
					if string(a.Txs[j]) != string(b.Txs[j]) {
						t.Fatalf("epoch %d tx %d differs between node 0 and the recovered node", e, j)
					}
				}
			}
			t.Logf("batched=%v: recovered node caught up; %d epochs in %v",
				batched, res.EpochsCommitted, res.Duration.Round(time.Second))
		})
	}
}

// TestChainCrashRecoveryAllFamilies runs the same crash-recovery scenario
// across the other protocol families (Dumbo's serial-ABA catch-up and
// BEAT's coin-flipping path are distinct code).
func TestChainCrashRecoveryAllFamilies(t *testing.T) {
	for _, tc := range []struct {
		name string
		kind Kind
		coin CoinKind
	}{
		{"Dumbo-SC", DumboKind, CoinSig},
		{"BEAT", BEAT, CoinFlip},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			opts := quickChainOpts(tc.kind, tc.coin, true, 2)
			opts.TargetEpochs = 12
			opts.GCLag = opts.TargetEpochs
			opts.Scenario = scenario.Plan{}.Then(
				scenario.CrashAt(25*time.Minute, 1),
				scenario.RecoverAt(55*time.Minute, 1),
			)
			res, err := ChainRun(opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Logs[1]) != opts.TargetEpochs {
				t.Fatalf("recovered node committed %d epochs, want %d", len(res.Logs[1]), opts.TargetEpochs)
			}
		})
	}
}

// TestChainPartitionHeals: a partition that splits the quorum stalls the
// asynchronous protocol (safety holds, liveness waits); healing it lets
// the run complete.
func TestChainPartitionHeals(t *testing.T) {
	opts := quickChainOpts(HoneyBadger, CoinSig, true, 3)
	opts.TargetEpochs = 8
	opts.Scenario = scenario.Plan{}.Then(
		scenario.PartitionAt(10*time.Minute, []int{0, 1}, []int{2, 3}),
		scenario.HealAt(40*time.Minute),
	)
	res, err := ChainRun(opts)
	if err != nil {
		t.Fatal(err)
	}
	// The 30-minute partition must show up as lost time relative to the
	// fault-free run of the same seed.
	opts.Scenario = scenario.Plan{}
	free, err := ChainRun(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration <= free.Duration {
		t.Errorf("partitioned run (%v) not slower than fault-free (%v)", res.Duration, free.Duration)
	}
}

// TestChainScenarioDeterministic: the scenario engine (crash, recovery,
// catch-up, and the seed-derived adversary randomness) must not break
// run-level determinism.
func TestChainScenarioDeterministic(t *testing.T) {
	opts := quickChainOpts(HoneyBadger, CoinSig, true, 9)
	opts.TargetEpochs = 10
	opts.GCLag = 10
	opts.Scenario = scenario.Plan{}.Then(
		scenario.CrashAt(20*time.Minute, 3),
		scenario.RecoverAt(45*time.Minute, 3),
		scenario.LossBurst(15*time.Minute, 5*time.Minute, 0.3),
	)
	a, err := ChainRun(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ChainRun(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Duration != b.Duration || a.CommittedTxs != b.CommittedTxs || a.Accesses != b.Accesses {
		t.Errorf("same seed differs under scenario: %v/%d/%d vs %v/%d/%d",
			a.Duration, a.CommittedTxs, a.Accesses, b.Duration, b.CommittedTxs, b.Accesses)
	}
}

// --- Mempool unit tests -------------------------------------------------

func TestMempoolDedupAndPolicy(t *testing.T) {
	cfg := MempoolConfig{TargetBatchBytes: 100, MaxBatchBytes: 120, MaxTxAge: 10 * time.Second, DedupHorizon: 2}
	m := NewMempool(cfg)
	tx := func(b byte) []byte { tx := make([]byte, 40); tx[0] = b; return tx }

	if !m.Add(tx(1), 0) || !m.Add(tx(2), time.Second) {
		t.Fatal("fresh adds rejected")
	}
	if m.Add(tx(1), 2*time.Second) {
		t.Error("pending duplicate accepted")
	}
	if m.Ready(2 * time.Second) {
		t.Error("ready below size target and age limit")
	}
	if !m.Ready(10 * time.Second) {
		t.Error("not ready past MaxTxAge")
	}
	m.Add(tx(3), 2*time.Second)
	if !m.Ready(3 * time.Second) {
		t.Error("not ready past TargetBatchBytes")
	}

	cut := m.Cut(0, 3*time.Second)
	if len(cut) != 3 {
		t.Fatalf("cut %d txs, want 3 (120B cap)", len(cut))
	}
	if m.Ready(3 * time.Second) {
		t.Error("ready while everything is in flight")
	}
	// In-flight txs are skipped by later cuts.
	if got := m.Cut(1, 3*time.Second); len(got) != 0 {
		t.Fatalf("second cut got %d txs, want 0", len(got))
	}

	// Epoch 0 commits txs 1 and 2 (say tx 3's slot lost the subset).
	m.MarkCommitted([]txKey{txDigest(tx(1)), txDigest(tx(2))}, 0)
	m.Requeue(0)
	if m.Len() != 1 || m.PendingBytes() != 40 {
		t.Fatalf("after requeue: len=%d pending=%dB, want 1/40", m.Len(), m.PendingBytes())
	}
	if m.Add(tx(1), 4*time.Second) {
		t.Error("committed duplicate accepted")
	}
	if got := m.Cut(1, 5*time.Second); len(got) != 1 {
		t.Fatalf("requeued tx not cuttable: got %d", len(got))
	}
}

func TestMempoolSharding(t *testing.T) {
	cfg := MempoolConfig{
		TargetBatchBytes: 40, MaxBatchBytes: 400,
		MaxTxAge: 10 * time.Second, ReproposeAge: time.Minute,
		Shard: 0, Shards: 2,
	}
	m := NewMempool(cfg)
	mine := func(i byte) []byte { return []byte{2 * i, i, 10, 11, 12, 13, 14, 15, 16, 17} }    // key[0] even
	other := func(i byte) []byte { return []byte{2*i + 1, i, 20, 21, 22, 23, 24, 25, 26, 27} } // key[0] odd
	// Transaction assignment follows the digest, not the payload: find
	// payloads that land on each shard.
	var ours, theirs [][]byte
	for i := byte(0); i < 40 && (len(ours) < 4 || len(theirs) < 4); i++ {
		for _, tx := range [][]byte{mine(i), other(i)} {
			if int(txDigest(tx)[0])%2 == 0 {
				ours = append(ours, tx)
			} else {
				theirs = append(theirs, tx)
			}
		}
	}
	for _, tx := range theirs[:4] {
		m.Add(tx, 0)
	}
	if m.Ready(5 * time.Second) {
		t.Error("ready on unassigned traffic alone")
	}
	for _, tx := range ours[:4] {
		m.Add(tx, time.Second)
	}
	if !m.Ready(5 * time.Second) {
		t.Error("not ready with assigned bytes past target")
	}
	cut := m.Cut(0, 5*time.Second)
	for _, tx := range cut {
		if int(txDigest(tx)[0])%2 != 0 {
			t.Fatalf("cut took unassigned tx %v before ReproposeAge", tx)
		}
	}
	if len(cut) != 4 {
		t.Fatalf("cut %d assigned txs, want 4", len(cut))
	}
	// Past ReproposeAge the crash fallback opens the rest to everyone.
	if got := m.Cut(1, 2*time.Minute); len(got) != 4 {
		t.Fatalf("fallback cut %d txs, want 4 unassigned", len(got))
	}
}

func TestMempoolGCHorizon(t *testing.T) {
	m := NewMempool(MempoolConfig{DedupHorizon: 3})
	tx := []byte("gc-me")
	m.MarkCommitted([]txKey{txDigest(tx)}, 0)
	m.GC(2)
	if !m.WasCommitted(txDigest(tx)) {
		t.Fatal("digest dropped inside horizon")
	}
	if m.Add(tx, 0) {
		t.Error("duplicate accepted inside horizon")
	}
	m.GC(3)
	if m.WasCommitted(txDigest(tx)) {
		t.Fatal("digest survived past horizon")
	}
	if !m.Add(tx, 0) {
		t.Error("re-add rejected after horizon GC")
	}
	if m.CommittedSize() != 0 {
		t.Errorf("committed memory %d, want 0", m.CommittedSize())
	}
}

func TestBatchCodecRoundtrip(t *testing.T) {
	for _, txs := range [][][]byte{nil, {[]byte("a")}, {[]byte("one"), []byte(""), []byte("three")}} {
		enc := EncodeBatch(txs)
		got, err := DecodeBatch(enc)
		if err != nil {
			t.Fatalf("decode(%q): %v", enc, err)
		}
		if len(got) != len(txs) {
			t.Fatalf("roundtrip count %d != %d", len(got), len(txs))
		}
		for i := range txs {
			if string(got[i]) != string(txs[i]) {
				t.Fatalf("tx %d mismatch", i)
			}
		}
	}
	for _, bad := range [][]byte{{}, {0}, {0, 1}, {0, 1, 0, 5, 'x'}, append(EncodeBatch([][]byte{[]byte("t")}), 0)} {
		if _, err := DecodeBatch(bad); err == nil {
			t.Errorf("malformed batch %v accepted", bad)
		}
	}
}
