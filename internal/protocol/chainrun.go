package protocol

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/byz"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/node"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/wireless"
)

// ChainOptions configures a sustained multi-epoch SMR simulation: N Chain
// engines on one lossy wireless channel, fed continuous client traffic,
// running until every correct node has committed TargetEpochs epochs.
type ChainOptions struct {
	Protocol Kind
	Coin     CoinKind
	Batched  bool // ConsensusBatcher vs baseline transport
	N, F     int
	// Window is the pipeline depth (1 = sequential epochs).
	Window int
	// TargetEpochs is the commit frontier every correct node must reach.
	TargetEpochs int
	// TxSize is the client payload size; TxInterval the mean gap between
	// client submissions. Each transaction is broadcast to every node's
	// mempool (the usual BFT client pattern), which is what makes commit-
	// time deduplication load-bearing.
	TxSize     int
	TxInterval time.Duration
	Mempool    MempoolConfig
	GCLag      int
	Seed       int64
	Net        wireless.Config
	Crypto     crypto.Config
	Transport  core.Config
	// Scenario scripts faults into the run. This driver supports the full
	// vocabulary including mid-run recovery: a recovered node restarts its
	// chain engine at the commit frontier (its log and mempool digests are
	// stable storage) and catches up through core.Mux.OnUnknownEpoch and
	// peers' NACK retransmissions. Mind GCLag: peers serve repairs only for
	// epochs the GC hasn't closed, so recovery gaps longer than GCLag
	// epochs leave the node unable to catch up (a deadline error).
	// byz events arm active-Byzantine behaviors (up to F nodes); the
	// completion barrier and log checks then cover honest nodes only.
	Scenario scenario.Plan
	// Deadline bounds the whole run in virtual time (default 8 h).
	Deadline time.Duration
}

// DefaultChainOptions returns the paper-calibrated SMR setup: N=4 on the
// lossy LoRa-class channel, depth-2 pipeline, 20 epochs of 64-byte client
// transactions, ConsensusBatcher on.
func DefaultChainOptions(p Kind, coin CoinKind) ChainOptions {
	return ChainOptions{
		Protocol:     p,
		Coin:         coin,
		Batched:      true,
		N:            4,
		F:            1,
		Window:       2,
		TargetEpochs: 20,
		TxSize:       64,
		TxInterval:   4 * time.Second,
		Mempool:      DefaultMempoolConfig(),
		Seed:         1,
		Net:          wireless.DefaultConfig(),
		Crypto:       crypto.LightConfig(),
		Deadline:     8 * time.Hour,
	}
}

// ChainResult aggregates a sustained run's measurements.
type ChainResult struct {
	EpochsCommitted int
	CommittedTxs    int           // unique transactions in the log (node 0)
	CommittedBytes  uint64        // unique payload bytes in the log (node 0)
	Duration        time.Duration // virtual time until the last node reached the target
	// ThroughputBps is committed payload bytes per virtual second — the
	// sustained-SMR metric (contrast with the one-shot Result.TPM).
	ThroughputBps float64
	// MeanCommitLatency is the mean epoch start->commit time at node 0.
	// Under pipelining, epochs overlap, so commit latency exceeds the
	// per-epoch interval Duration/EpochsCommitted.
	MeanCommitLatency time.Duration
	DedupDropped      int // duplicate txs suppressed at commit (node 0)
	// SubmittedTxs counts client transactions offered over the whole run.
	// Offered load normally exceeds what TargetEpochs can order; the
	// shortfall is mempool backlog at run end, not transaction loss.
	SubmittedTxs  int
	MaxOpenEpochs int // peak concurrent epoch state at any node (GC bound)

	Accesses    uint64
	Collisions  uint64
	BytesOnAir  uint64
	LogicalSent uint64
	// Rejected counts component-level discards of invalid inbound state
	// across all nodes (invalid shares, certificates, proofs, malformed
	// proposals) — the Byzantine traffic the defenses absorbed.
	Rejected uint64

	// Logs holds each honest node's committed log (index = node id; nil
	// for nodes scripted to stay crashed or to turn Byzantine), already
	// checked for agreement and gap-freedom. A crashed-and-recovered node
	// appears with a full log: catch-up is part of the acceptance bar.
	Logs [][]LogEntry
}

// chainLifecycle adapts the SMR deployment to the scenario engine. Unlike
// the one-shot drivers, recovery here is mid-run: the chain engine resumes
// at its commit frontier and catches up on the live pipeline.
type chainLifecycle struct {
	nodes  []*node.Node
	chains []*Chain
}

func (l chainLifecycle) CrashNode(i int) {
	if i < 0 || i >= len(l.nodes) || l.nodes[i].Down() {
		return
	}
	l.chains[i].Crash()
	l.nodes[i].Crash()
}

func (l chainLifecycle) RecoverNode(i int) {
	if i < 0 || i >= len(l.nodes) || !l.nodes[i].Down() {
		return
	}
	l.nodes[i].Recover()
	l.chains[i].Recover()
}

// SetByzantine implements scenario.ByzLifecycle. The behavior lands on
// the node's mux, so every epoch of the pipeline — open and future —
// misbehaves from here on.
func (l chainLifecycle) SetByzantine(i int, behavior string) {
	if i < 0 || i >= len(l.nodes) {
		return
	}
	b, err := byz.New(behavior)
	if err != nil {
		return
	}
	l.nodes[i].SetBehavior(b)
}

// ChainRun executes a sustained SMR simulation and returns measurements.
// It fails if any correct pair of nodes commits diverging logs, if a log
// has a gap, or if the deadline passes before every correct node commits
// TargetEpochs epochs.
func ChainRun(opts ChainOptions) (*ChainResult, error) {
	if opts.N != 3*opts.F+1 {
		return nil, fmt.Errorf("protocol: need N = 3F+1, got N=%d F=%d", opts.N, opts.F)
	}
	if opts.Window <= 0 {
		opts.Window = 1
	}
	if opts.TargetEpochs <= 0 {
		opts.TargetEpochs = 1
	}
	if opts.TxSize < 12 {
		opts.TxSize = 12
	}
	if opts.TxInterval <= 0 {
		opts.TxInterval = 4 * time.Second
	}
	if opts.Deadline <= 0 {
		opts.Deadline = 8 * time.Hour
	}
	if err := validateByz(opts.Scenario, opts.N); err != nil {
		return nil, err
	}
	byzN := opts.Scenario.ByzNodes()
	if len(byzN) > opts.F {
		return nil, fmt.Errorf("protocol: %d Byzantine nodes exceed F=%d", len(byzN), opts.F)
	}
	perma := opts.Scenario.DownForever()
	if len(perma) >= opts.N {
		return nil, fmt.Errorf("protocol: all %d nodes crashed; nothing to run", opts.N)
	}
	sched := sim.New(opts.Seed)
	ch := wireless.NewChannel(sched, opts.Net)

	suites, err := crypto.Deal(opts.N, opts.F, opts.Crypto, rand.New(rand.NewSource(opts.Seed^0x5eed)))
	if err != nil {
		return nil, err
	}

	ccfg := DefaultChainConfig(opts.Protocol, opts.Coin)
	ccfg.Batched = opts.Batched
	ccfg.Window = opts.Window
	ccfg.GCLag = opts.GCLag
	ccfg.MaxEpochs = opts.TargetEpochs
	ccfg.Mempool = opts.Mempool
	if max := opts.Mempool.withDefaults().MaxBatchBytes; opts.TxSize > max {
		return nil, fmt.Errorf("protocol: TxSize %d exceeds proposal cap MaxBatchBytes %d", opts.TxSize, max)
	}
	ncfg := node.Config{Transport: opts.Transport, Batched: opts.Batched, Seed: opts.Seed}
	nodes := make([]*node.Node, opts.N)
	chains := make([]*Chain, opts.N)
	maxOpen := 0
	for i := 0; i < opts.N; i++ {
		nodes[i] = node.NewMux(sched, ch, wireless.NodeID(i), suites[i], ncfg)
		c := NewChain(sched, nodes[i].CPU, nodes[i].Mux(), suites[i], opts.N, opts.F, i,
			nodes[i].TransportConfig().Session, nodes[i].Rand, ccfg)
		c.OnCommit = func(int) {
			if o := c.OpenEpochs(); o > maxOpen {
				maxOpen = o
			}
		}
		chains[i] = c
	}
	eng := scenario.Start(sched, opts.Scenario, opts.Seed, chainLifecycle{nodes: nodes, chains: chains})
	ch.SetDeliveryHook(eng.Hook())

	// Client workload: one TxSize-byte transaction every TxInterval,
	// broadcast to every live node's mempool, sustained for the whole
	// run — this is an offered-load experiment, so injection only ceases
	// with the run itself. Whatever the chain cannot absorb stays behind
	// as mempool backlog (SubmittedTxs - CommittedTxs), not loss. A node
	// that is down misses the submissions of its outage (clients cannot
	// reach it), which commit-time dedup makes harmless.
	target := opts.TargetEpochs
	chainsDone := func() bool {
		for i, c := range chains {
			if perma[i] || byzN[i] {
				continue // dead or Byzantine; the barrier covers honest nodes
			}
			if c.CommittedEpochs() < target {
				return false
			}
		}
		return true
	}
	submitted := 0
	var inject func()
	inject = func() {
		if chainsDone() {
			return
		}
		tx := MakeClientTx(submitted, opts.TxSize)
		submitted++
		for i, c := range chains {
			if !nodes[i].Down() {
				c.Submit(tx)
			}
		}
		sched.After(opts.TxInterval, inject)
	}
	sched.After(100*time.Millisecond, inject)
	for _, c := range chains {
		c.Start()
	}

	if err := node.Drive(sched, opts.Deadline, chainsDone); err != nil {
		return nil, fmt.Errorf("protocol: chain run (%s %s batched=%v depth=%d) at frontier %v: %w",
			opts.Protocol, opts.Coin, opts.Batched, opts.Window, frontiers(chains), err)
	}
	res := &ChainResult{
		EpochsCommitted: opts.TargetEpochs,
		Duration:        sched.Now(),
		SubmittedTxs:    submitted,
		MaxOpenEpochs:   maxOpen,
		Logs:            make([][]LogEntry, opts.N),
	}
	// Safety is an honest-node property: a Byzantine node's own log is
	// not bound by what it told its peers, so it is excluded here.
	honest := make([]*Chain, len(chains))
	for i, c := range chains {
		if !byzN[i] {
			honest[i] = c
		}
	}
	if err := CheckLogs(honest); err != nil {
		return nil, err
	}
	first := true
	for i, c := range chains {
		if perma[i] || byzN[i] {
			continue
		}
		res.Logs[i] = c.Log()
		if first {
			first = false
			res.CommittedTxs = c.CommittedTxs()
			res.CommittedBytes = c.CommittedBytes()
			res.MeanCommitLatency = c.MeanCommitLatency()
			res.DedupDropped = c.DedupDropped()
		}
	}
	if res.Duration > 0 {
		res.ThroughputBps = float64(res.CommittedBytes) / res.Duration.Seconds()
	}
	st := ch.Stats()
	res.Accesses = st.Accesses
	res.Collisions = st.Collisions
	res.BytesOnAir = st.BytesOnAir
	ts := node.SumStats(nodes)
	res.LogicalSent = ts.LogicalSent
	res.Rejected = ts.Rejected
	return res, nil
}

func frontiers(chains []*Chain) []int {
	out := make([]int, 0, len(chains))
	for _, c := range chains {
		if c != nil {
			out = append(out, c.CommittedEpochs())
		}
	}
	return out
}

// CountForged counts committed transactions across the given logs that
// are not byte-identical to a MakeClientTx submission of the run — the
// adversary's payloads, if any slipped past the commit-layer decoders.
// The Byzantine sweep, example, and tests all assert it returns zero.
func CountForged(logs [][]LogEntry, txSize, submitted int) int {
	forged := 0
	for _, log := range logs {
		for _, entry := range log {
			for _, tx := range entry.Txs {
				if len(tx) < 8 {
					forged++
					continue
				}
				seq := binary.BigEndian.Uint64(tx)
				if seq >= uint64(submitted) || !bytes.Equal(tx, MakeClientTx(int(seq), txSize)) {
					forged++
				}
			}
		}
	}
	return forged
}

// MakeClientTx builds the deterministic client payload for a sequence
// number: the number followed by pseudo-random filler derived from it.
// Exported with CountForged so adversarial runs can verify transaction
// provenance.
func MakeClientTx(seq, size int) []byte {
	tx := make([]byte, size)
	binary.BigEndian.PutUint64(tx, uint64(seq))
	for i := 8; i < size; i++ {
		tx[i] = byte((seq*131 + i*17) ^ (i >> 3))
	}
	return tx
}
