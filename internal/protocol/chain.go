package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/component"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/sim"
)

// This file is the SMR layer: Chain turns the single-epoch Instance engines
// into a replicated log. One Chain per node wraps any of the five protocol
// variants, pipelines a window of epochs over a core.Mux (epoch e+1's RBC
// phase runs while epoch e's ABA is still deciding), deduplicates the union
// of accepted proposals into a total-order log, and garbage-collects old
// epochs so memory stays bounded under sustained traffic. This is the shape
// HoneyBadgerBFT and Dumbo deploy as — continuous multi-epoch ordering —
// rather than the one-shot ACS the paper's evaluation times.

// ChainConfig tunes one node's SMR engine.
type ChainConfig struct {
	Protocol Kind
	Coin     CoinKind
	Batched  bool
	Encrypt  bool
	// Window is the pipeline depth: how many epochs may run concurrently.
	// 1 reproduces strictly sequential epochs.
	Window int
	// GCLag is how many epochs behind the commit frontier an epoch's
	// transport is kept alive to serve NACK repairs to lagging peers before
	// being closed. It must be at least Window.
	GCLag int
	// MaxEpochs stops the engine from starting epochs >= this (0 = no cap).
	MaxEpochs int
	Mempool   MempoolConfig
	// ProposalWAL makes the proposer's per-epoch cut stable storage: a
	// recovered node re-proposes the exact batch it first cut for each
	// still-uncommitted epoch instead of cutting a fresh one. Alea needs
	// it — VCBC echoes are signature shares over the first value a queue
	// head carries, so after a full-stop crash (more than f nodes down at
	// once, no epoch progress possible anywhere) a fresh post-recovery
	// batch can never certify: survivors are bound to the old hash and the
	// old broadcast lost its leader's share with the crash. Re-proposing
	// the recorded batch lets the surviving echo shares complete the
	// original broadcast — the write-ahead log the Alea-BFT paper requires
	// of its broadcast component. The replay is signalled to the engine
	// (see reproposer) so its dissemination layer can pull surviving
	// broadcast state back. The RBC engines share the value-binding
	// limitation (HB/BEAT wedge on the same scenario; Dumbo recovers only
	// on lucky interleavings) but run with the WAL off — they implement no
	// replay pull, and flipping their proposal path would shift the frozen
	// BENCH goldens.
	ProposalWAL bool
}

// DefaultChainConfig returns a depth-2 pipeline for a protocol variant.
func DefaultChainConfig(p Kind, coin CoinKind) ChainConfig {
	return ChainConfig{
		Protocol:    p,
		Coin:        coin,
		Batched:     true,
		Encrypt:     DefaultEncrypt(p),
		Window:      2,
		GCLag:       4,
		Mempool:     DefaultMempoolConfig(),
		ProposalWAL: p == AleaKind,
	}
}

// LogEntry is one committed epoch: the deduplicated union of the epoch's
// accepted proposals, in deterministic (slot, proposal-position) order.
type LogEntry struct {
	Epoch int
	Txs   [][]byte
}

// chainEpoch is one in-flight or committed epoch at one node.
type chainEpoch struct {
	inst      Instance
	tr        *core.Transport
	startedAt time.Duration
	decided   bool
}

// Chain is one node's replicated-log engine.
type Chain struct {
	n, f    int
	me      int
	session uint32
	suite   *crypto.Suite
	sched   *sim.Scheduler
	cpu     *sim.CPU
	mux     *core.Mux
	rand    *rand.Rand
	cfg     ChainConfig

	mempool *Mempool
	epochs  map[int]*chainEpoch
	// proposed is the proposal WAL (ChainConfig.ProposalWAL): epoch -> the
	// encoded batch this node first cut for it. Crash preserves it, so a
	// recovered proposer re-broadcasts the value peers may already have
	// echoed. Entries die with the epoch GC.
	proposed map[int][]byte
	// nextStart is the lowest epoch not yet started here; nextCommit the
	// lowest not yet committed. Invariant: nextCommit <= nextStart <
	// nextCommit + Window.
	nextStart  int
	nextCommit int
	// peerMax is the highest epoch observed in peers' frames for epochs this
	// node has not opened: the pipeline signal that lets a node with a quiet
	// mempool join epochs its peers are already driving. The signal arrives
	// before frame authentication, so it never does more than start epochs
	// the window would permit anyway; a forged epoch number cannot push the
	// engine past nextCommit+Window.
	peerMax int

	log            []LogEntry
	committedTxs   int
	committedBytes uint64
	dedupDropped   int
	commitLatency  time.Duration // summed start->commit across committed epochs
	// submitAt records when each locally admitted transaction was
	// submitted; commit moves the entry into txLat as a true per-
	// transaction submit->commit latency sample. MeanCommitLatency is
	// epoch-granularity (proposal cut -> epoch commit) and under bursty
	// load wildly understates what a client actually waits — a
	// transaction can sit pooled across many epochs before any cut takes
	// it — so the percentile reporting runs off these samples instead.
	// Bookkeeping only: no scheduler or RNG interaction, so enabling it
	// cannot shift a simulated outcome.
	submitAt map[txKey]time.Duration
	txLat    []time.Duration

	ageEvt *sim.Event
	// OnCommit, if set, fires after each epoch commits (driver barrier).
	OnCommit func(epoch int)
	// OnEpochOpen, if set, fires when the engine opens an epoch's transport,
	// before the epoch's instance starts. Drivers use it to piggyback
	// cross-cutting state on the pipeline — the clustered chain deployment
	// registers its global-order dissemination handler here.
	OnEpochOpen func(epoch int, tr *core.Transport)
}

// NewChain builds the engine around an epoch mux. Call Start once the
// network is assembled.
func NewChain(sched *sim.Scheduler, cpu *sim.CPU, mux *core.Mux, suite *crypto.Suite, n, f, me int, session uint32, rng *rand.Rand, cfg ChainConfig) *Chain {
	if cfg.Window <= 0 {
		cfg.Window = 1
	}
	if cfg.GCLag <= 0 {
		cfg.GCLag = cfg.Window + 2
	}
	if cfg.GCLag < cfg.Window {
		cfg.GCLag = cfg.Window
	}
	if cfg.Mempool.Shards == 0 {
		cfg.Mempool.Shard, cfg.Mempool.Shards = me, n
	}
	c := &Chain{
		n: n, f: f, me: me,
		session:  session,
		suite:    suite,
		sched:    sched,
		cpu:      cpu,
		mux:      mux,
		rand:     rng,
		cfg:      cfg,
		mempool:  NewMempool(cfg.Mempool),
		epochs:   make(map[int]*chainEpoch),
		proposed: make(map[int][]byte),
		submitAt: make(map[txKey]time.Duration),
		peerMax:  -1,
	}
	mux.OnUnknownEpoch = c.onPeerEpoch
	return c
}

// Mempool exposes the node's pool (workload injection, tests).
func (c *Chain) Mempool() *Mempool { return c.mempool }

// Log returns the committed entries in order.
func (c *Chain) Log() []LogEntry { return c.log }

// CommittedEpochs returns the commit frontier (epochs 0..n-1 committed).
func (c *Chain) CommittedEpochs() int { return c.nextCommit }

// CommittedTxs returns the total committed transaction count.
func (c *Chain) CommittedTxs() int { return c.committedTxs }

// CommittedBytes returns the total committed payload bytes.
func (c *Chain) CommittedBytes() uint64 { return c.committedBytes }

// DedupDropped returns how many accepted-proposal transactions the commit
// step suppressed as duplicates (proposed by several nodes, or re-proposed
// by a pipelined epoch before its predecessor committed).
func (c *Chain) DedupDropped() int { return c.dedupDropped }

// MeanCommitLatency returns the mean epoch start-to-commit time here.
func (c *Chain) MeanCommitLatency() time.Duration {
	if c.nextCommit == 0 {
		return 0
	}
	return c.commitLatency / time.Duration(c.nextCommit)
}

// OpenEpochs returns how many epochs currently hold live state (GC bound).
func (c *Chain) OpenEpochs() int { return len(c.epochs) }

// Submit admits one client payload and advances the pipeline if the cut
// policy is now satisfied. Admission-control rejections (the
// MempoolConfig.MaxPendingBytes backpressure cap) are surfaced through
// the mux's Rejected counter, the same place Byzantine discards land.
func (c *Chain) Submit(tx []byte) bool {
	full := c.mempool.RejectedFull()
	ok := c.mempool.Add(tx, c.sched.Now())
	if !ok {
		if c.mempool.RejectedFull() != full {
			c.mux.NoteRejected()
		}
		return false
	}
	c.submitAt[txDigest(tx)] = c.sched.Now()
	c.advance()
	return true
}

// TxLatencies returns every committed transaction's submit->commit
// latency sample at this node, in commit order. Only transactions
// admitted here contribute (a node down at submission time never saw the
// client's transaction).
func (c *Chain) TxLatencies() []time.Duration { return c.txLat }

// Start arms the engine. Epochs begin as soon as the mempool's cut policy
// or a peer's pipeline signal triggers.
func (c *Chain) Start() { c.advance() }

// Stop closes every open epoch's transport.
func (c *Chain) Stop() {
	c.ageEvt.Cancel()
	c.mux.Stop()
}

// Crash models a process failure with stable storage: the committed log,
// the mempool (pending transactions and committed-digest horizon), the
// commit frontier, and the proposal WAL (ChainConfig.ProposalWAL) survive;
// every in-flight epoch's protocol state and per-epoch transport are
// discarded. The node-level crash (radio off,
// inbound gated) is the deployment layer's job — see node.Node.Crash.
func (c *Chain) Crash() {
	c.ageEvt.Cancel()
	c.ageEvt = nil
	c.mux.Stop()
	for e := range c.epochs {
		delete(c.epochs, e)
	}
}

// Recover restarts the engine after Crash: the pipeline resumes at the
// commit frontier (the epochs lost in flight are re-opened with fresh
// instances) and converges to the same log as everyone else — decided
// epochs are repaired from peers' NACK retransmissions, and the DECIDED
// gadget carries their ABAs over the line. This is the late-join path
// core.Mux.OnUnknownEpoch exists for: frames from epochs the peers are
// already driving pull the recovered node forward as fast as the pipeline
// window allows. Peers must still hold the frontier epochs (GCLag bounds
// how far back they serve repairs).
func (c *Chain) Recover() {
	c.nextStart = c.nextCommit
	c.peerMax = -1 // re-learn the peers' frontier from their frames
	c.advance()
}

// onPeerEpoch handles a frame for an epoch this node has not opened. A
// frame for an epoch at or past nextStart means peers have already cut
// proposals up to there, so waiting on our own batch policy only delays
// those epochs' 2f+1 quorums: join as far as the window allows.
func (c *Chain) onPeerEpoch(epoch uint16) {
	e := int(epoch)
	if e < c.nextStart {
		return // stale: an epoch we already started (and perhaps closed)
	}
	if e > c.peerMax {
		c.peerMax = e
	}
	c.advance()
}

// advance starts every epoch the pipeline window and cut policy allow.
func (c *Chain) advance() {
	for c.canStart() {
		c.startEpoch(c.nextStart)
		c.nextStart++
	}
	c.armAgeTimer()
}

func (c *Chain) canStart() bool {
	e := c.nextStart
	if e >= c.nextCommit+c.cfg.Window {
		return false // window full
	}
	if c.cfg.MaxEpochs > 0 && e >= c.cfg.MaxEpochs {
		return false
	}
	return c.mempool.Ready(c.sched.Now()) || e <= c.peerMax
}

// armAgeTimer schedules the re-evaluation at which the oldest pending
// transaction trips the age half of the cut policy.
func (c *Chain) armAgeTimer() {
	c.ageEvt.Cancel()
	c.ageEvt = nil
	if c.nextStart >= c.nextCommit+c.cfg.Window {
		return // window full; commit will re-advance
	}
	if c.cfg.MaxEpochs > 0 && c.nextStart >= c.cfg.MaxEpochs {
		return // chain capped; nothing left to start
	}
	if c.mempool.Ready(c.sched.Now()) {
		return // policy already satisfied; advance() consumed what it could
	}
	at, ok := c.mempool.AgeDeadline()
	if !ok {
		return
	}
	c.ageEvt = c.sched.At(at, c.advance)
}

// startEpoch opens the epoch's transport on the mux, builds the component
// environment and the protocol instance, and submits the cut proposal.
func (c *Chain) startEpoch(e int) {
	tr := c.mux.Open(uint16(e))
	if c.OnEpochOpen != nil {
		c.OnEpochOpen(e, tr)
	}
	env := &component.Env{
		N:       c.n,
		F:       c.f,
		Me:      c.me,
		Epoch:   uint16(e),
		Session: c.session,
		Suite:   c.suite,
		T:       tr,
		CPU:     c.cpu,
		Sched:   c.sched,
		Rand:    c.rand,
	}
	ep := &chainEpoch{tr: tr, startedAt: c.sched.Now()}
	ep.inst = NewInstance(env, c.cfg.Protocol, c.cfg.Coin, c.cfg.Batched, c.cfg.Encrypt, func() { c.onDecide(e) })
	c.epochs[e] = ep
	prop := c.proposed[e]
	replayed := prop != nil
	if prop == nil {
		prop = EncodeBatch(c.mempool.Cut(e, c.sched.Now()))
		if c.cfg.ProposalWAL {
			c.proposed[e] = prop
		}
	}
	ep.inst.Start(prop)
	if replayed {
		if r, ok := ep.inst.(reproposer); ok {
			r.Reproposed()
		}
	}
}

// reproposer is implemented by engines whose dissemination layer needs to
// know that a Start carried a WAL replay rather than a fresh cut: the
// node crashed after first proposing this epoch, so peers may hold
// broadcast state (echo shares, even a full certificate) that died with
// the node's transport and must be pulled back rather than waiting for a
// fresh round of echoes that value-bound peers will never send.
type reproposer interface{ Reproposed() }

// onDecide records the epoch's local decision and commits every contiguous
// decided epoch at the frontier, in order — the log never has gaps.
func (c *Chain) onDecide(e int) {
	ep := c.epochs[e]
	if ep == nil || ep.decided {
		return
	}
	ep.decided = true
	// The epoch's outbound state is final: back its rebroadcasts off so
	// they stop contending with the epochs still deciding. Lagging peers
	// keep receiving (slowing) snapshots until GC closes the epoch.
	ep.tr.Quiesce()
	for {
		cur := c.epochs[c.nextCommit]
		if cur == nil || !cur.decided {
			break
		}
		c.commit(c.nextCommit, cur)
		c.nextCommit++
		// Epoch GC: everything GCLag behind the frontier stops serving
		// NACK repairs and is discarded.
		if old := c.nextCommit - 1 - c.cfg.GCLag; old >= 0 {
			c.mux.Close(uint16(old))
			delete(c.epochs, old)
			delete(c.proposed, old)
		}
	}
	c.advance()
}

// commit folds one decided epoch into the log: decode each accepted slot's
// batch, drop duplicates (within the union and against the recent-commit
// horizon), and append the survivors in slot order.
func (c *Chain) commit(e int, ep *chainEpoch) {
	var txs [][]byte
	var keys []txKey
	seen := make(map[txKey]bool)
	for _, prop := range ep.inst.Outputs() {
		if len(prop) == 0 {
			continue
		}
		batch, err := DecodeBatch(prop)
		if err != nil {
			continue // malformed batch from a Byzantine proposer
		}
		for _, tx := range batch {
			k := txDigest(tx)
			if seen[k] || c.mempool.WasCommitted(k) {
				c.dedupDropped++
				continue
			}
			seen[k] = true
			txs = append(txs, tx)
			keys = append(keys, k)
			c.committedBytes += uint64(len(tx))
		}
	}
	c.log = append(c.log, LogEntry{Epoch: e, Txs: txs})
	c.committedTxs += len(txs)
	now := c.sched.Now()
	for _, k := range keys {
		if at, ok := c.submitAt[k]; ok {
			c.txLat = append(c.txLat, now-at)
			delete(c.submitAt, k)
		}
	}
	c.commitLatency += now - ep.startedAt
	c.mempool.MarkCommitted(keys, e)
	// Our own proposals that lost the common subset go back in the pool.
	c.mempool.Requeue(e)
	c.mempool.GC(e)
	if c.OnCommit != nil {
		c.OnCommit(e)
	}
}

// EncodeBatch serializes a proposal batch: u16 count, then u16-length-
// prefixed transactions. An empty batch encodes to a 2-byte header, so a
// node with nothing to propose still participates in the epoch.
func EncodeBatch(txs [][]byte) []byte {
	out := binary.BigEndian.AppendUint16(nil, uint16(len(txs)))
	for _, tx := range txs {
		out = binary.BigEndian.AppendUint16(out, uint16(len(tx)))
		out = append(out, tx...)
	}
	return out
}

var errBadBatch = errors.New("protocol: malformed proposal batch")

// DecodeBatch parses EncodeBatch's format, rejecting trailing garbage.
func DecodeBatch(raw []byte) ([][]byte, error) {
	if len(raw) < 2 {
		return nil, errBadBatch
	}
	count := int(binary.BigEndian.Uint16(raw))
	raw = raw[2:]
	txs := make([][]byte, 0, count)
	for i := 0; i < count; i++ {
		if len(raw) < 2 {
			return nil, errBadBatch
		}
		n := int(binary.BigEndian.Uint16(raw))
		raw = raw[2:]
		if len(raw) < n {
			return nil, errBadBatch
		}
		txs = append(txs, raw[:n])
		raw = raw[n:]
	}
	if len(raw) != 0 {
		return nil, errBadBatch
	}
	return txs, nil
}

// CheckLogs verifies SMR safety across nodes: every node's log must be
// gap-free from epoch 0 and identical to the others' over the shared
// prefix. Exported for the property tests and the ChainRun driver.
func CheckLogs(chains []*Chain) error {
	var ref *Chain
	for _, c := range chains {
		if c == nil {
			continue
		}
		for i, entry := range c.log {
			if entry.Epoch != i {
				return fmt.Errorf("protocol: node %d log has gap: entry %d is epoch %d", c.me, i, entry.Epoch)
			}
		}
		if ref == nil {
			ref = c
			continue
		}
		n := len(ref.log)
		if len(c.log) < n {
			n = len(c.log)
		}
		for i := 0; i < n; i++ {
			a, b := ref.log[i], c.log[i]
			if len(a.Txs) != len(b.Txs) {
				return fmt.Errorf("protocol: epoch %d: node %d committed %d txs, node %d committed %d",
					i, ref.me, len(a.Txs), c.me, len(b.Txs))
			}
			for j := range a.Txs {
				if string(a.Txs[j]) != string(b.Txs[j]) {
					return fmt.Errorf("protocol: epoch %d tx %d differs between nodes %d and %d", i, j, ref.me, c.me)
				}
			}
		}
	}
	return nil
}
