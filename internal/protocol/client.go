package protocol

import (
	"bytes"
	"encoding/binary"
)

// Client-payload helpers shared by the chain drivers (internal/run), the
// Byzantine bench sweep, and the examples: deterministic transaction
// construction and post-run provenance verification.

// CountForged counts committed transactions across the given logs that
// are not byte-identical to a MakeClientTx submission of the run — the
// adversary's payloads, if any slipped past the commit-layer decoders.
// The Byzantine sweep, example, and tests all assert it returns zero.
func CountForged(logs [][]LogEntry, txSize, submitted int) int {
	forged := 0
	for _, log := range logs {
		for _, entry := range log {
			for _, tx := range entry.Txs {
				if len(tx) < 8 {
					forged++
					continue
				}
				seq := binary.BigEndian.Uint64(tx)
				if seq >= uint64(submitted) || !bytes.Equal(tx, MakeClientTx(int(seq), txSize)) {
					forged++
				}
			}
		}
	}
	return forged
}

// MakeClientTx builds the deterministic client payload for a sequence
// number: the number followed by pseudo-random filler derived from it.
// Exported with CountForged so adversarial runs can verify transaction
// provenance.
func MakeClientTx(seq, size int) []byte {
	tx := make([]byte, size)
	binary.BigEndian.PutUint64(tx, uint64(seq))
	for i := 8; i < size; i++ {
		tx[i] = byte((seq*131 + i*17) ^ (i >> 3))
	}
	return tx
}
