package protocol

import (
	"crypto/sha256"
	"time"
)

// txKey is the truncated transaction digest used for mempool and commit
// deduplication. 16 bytes keeps collision probability negligible at the
// transaction volumes a LoRa-class channel can carry.
type txKey [16]byte

func txDigest(tx []byte) txKey {
	full := sha256.Sum256(tx)
	var k txKey
	copy(k[:], full[:16])
	return k
}

// MempoolConfig tunes the proposal-cut policy and the dedup horizon.
type MempoolConfig struct {
	// TargetBatchBytes makes the pool "ready" as soon as this many payload
	// bytes are pending: the size half of the cut policy.
	TargetBatchBytes int
	// MaxBatchBytes caps one proposal; Cut never exceeds it.
	MaxBatchBytes int
	// MaxTxAge makes the pool ready once its oldest pending transaction has
	// waited this long, so light traffic still commits promptly: the age
	// half of the cut policy.
	MaxTxAge time.Duration
	// DedupHorizon is how many epochs committed digests are remembered for.
	// It must exceed the pipeline window: a transaction committed in epoch
	// e can reappear in the in-flight proposals of epochs up to e+window.
	DedupHorizon int
	// Shard/Shards partition proposals across nodes: with Shards = N, this
	// node's cuts prefer transactions whose digest maps to Shard, so the N
	// broadcast mempools contribute mostly disjoint batches and the epoch's
	// union carries ~N distinct batches instead of N copies of one.
	// Shards <= 1 disables sharding. ReproposeAge is the crash fallback:
	// a transaction unproposed for that long becomes fair game for every
	// node (commit-time dedup absorbs the resulting overlap).
	Shard, Shards int
	ReproposeAge  time.Duration
	// MaxPendingBytes is the admission-control cap on the pool's total
	// payload bytes, pending plus in-flight: an Add that would push the
	// pool past it is rejected (and counted, see RejectedFull) instead of
	// queueing unboundedly — the backpressure open-loop traffic needs to
	// degrade gracefully under overload. Zero disables the cap, which is
	// the default: legacy fixed-interval workloads keep their unbounded
	// pool and their frozen BENCH goldens.
	MaxPendingBytes int
}

// DefaultMempoolConfig sizes the policy for the paper's 64-byte
// transactions on the LoRa-class channel.
func DefaultMempoolConfig() MempoolConfig {
	return MempoolConfig{
		TargetBatchBytes: 256,
		MaxBatchBytes:    512,
		MaxTxAge:         20 * time.Second,
		DedupHorizon:     16,
		ReproposeAge:     5 * time.Minute,
	}
}

type mtx struct {
	data []byte
	key  txKey
	enq  time.Duration
	// inflight is the epoch currently proposing this transaction, or -1.
	// In-flight transactions stay in the pool (their slot may be rejected
	// by the common subset) but are skipped by later cuts until requeued.
	inflight int
}

// Mempool accumulates client payloads for one node's Chain engine. It
// deduplicates admissions against both pending and recently committed
// transactions, cuts proposals oldest-first under the size/age policy, and
// garbage-collects its committed-digest memory beyond a sliding epoch
// horizon so state stays bounded under sustained load.
//
// Like everything else in the simulator it is single-threaded: the
// scheduler serializes all calls.
type Mempool struct {
	cfg         MempoolConfig
	txs         []*mtx
	pending     int // bytes not in flight
	pendingMine int // bytes not in flight and assigned to this shard
	// nMine/nOther count not-in-flight transactions per shard class, so
	// AgeDeadline knows when a class is absent without scanning for it.
	nMine, nOther int
	index         map[txKey]*mtx
	// committed maps digest -> commit epoch, pruned by GC to the horizon.
	committed map[txKey]int
	// duplicates counts admissions rejected as already pending/committed.
	duplicates int
	// pooled is the pool's total payload bytes, pending plus in flight
	// (the quantity MaxPendingBytes caps); peakPooled is its high-water
	// mark and rejectedFull counts admissions the cap refused.
	pooled, peakPooled int
	rejectedFull       int
}

// WithDefaults fills zero-valued fields from DefaultMempoolConfig.
func (cfg MempoolConfig) WithDefaults() MempoolConfig {
	def := DefaultMempoolConfig()
	if cfg.TargetBatchBytes <= 0 {
		cfg.TargetBatchBytes = def.TargetBatchBytes
	}
	if cfg.MaxBatchBytes <= 0 {
		cfg.MaxBatchBytes = def.MaxBatchBytes
	}
	if cfg.MaxTxAge <= 0 {
		cfg.MaxTxAge = def.MaxTxAge
	}
	if cfg.DedupHorizon <= 0 {
		cfg.DedupHorizon = def.DedupHorizon
	}
	if cfg.ReproposeAge <= 0 {
		cfg.ReproposeAge = def.ReproposeAge
	}
	return cfg
}

// NewMempool builds an empty pool. Zero-valued config fields fall back to
// defaults.
func NewMempool(cfg MempoolConfig) *Mempool {
	return &Mempool{
		cfg:       cfg.WithDefaults(),
		index:     make(map[txKey]*mtx),
		committed: make(map[txKey]int),
	}
}

// Add admits a transaction at virtual time now. It reports false for
// duplicates of pending or recently committed transactions, and for
// transactions too large to ever fit a proposal.
func (m *Mempool) Add(tx []byte, now time.Duration) bool {
	if len(tx) > m.cfg.MaxBatchBytes || len(tx) > 65535 {
		return false // cannot fit a proposal / EncodeBatch's u16 length
	}
	key := txDigest(tx)
	if _, dup := m.index[key]; dup {
		m.duplicates++
		return false
	}
	if _, done := m.committed[key]; done {
		m.duplicates++
		return false
	}
	if m.cfg.MaxPendingBytes > 0 && m.pooled+len(tx) > m.cfg.MaxPendingBytes {
		m.rejectedFull++
		return false
	}
	e := &mtx{data: tx, key: key, enq: now, inflight: -1}
	m.txs = append(m.txs, e)
	m.index[key] = e
	m.pooled += len(tx)
	if m.pooled > m.peakPooled {
		m.peakPooled = m.pooled
	}
	m.pending += len(tx)
	if m.assigned(key) {
		m.pendingMine += len(tx)
		m.nMine++
	} else {
		m.nOther++
	}
	return true
}

// assigned reports whether this shard prefers the transaction.
func (m *Mempool) assigned(key txKey) bool {
	return m.cfg.Shards <= 1 || int(key[0])%m.cfg.Shards == m.cfg.Shard
}

// proposable reports whether a cut at virtual time now may take the
// transaction: it is not in flight, and either assigned to this shard or
// so old that the crash fallback opens it to everyone.
func (m *Mempool) proposable(e *mtx, now time.Duration) bool {
	if e.inflight >= 0 {
		return false
	}
	return m.assigned(e.key) || now-e.enq >= m.cfg.ReproposeAge
}

// Ready reports whether the cut policy would produce a proposal now:
// either TargetBatchBytes of assigned payload is pending, or the oldest
// assigned transaction has exceeded MaxTxAge, or an unassigned one has
// exceeded ReproposeAge.
func (m *Mempool) Ready(now time.Duration) bool {
	if m.pendingMine >= m.cfg.TargetBatchBytes {
		return true
	}
	at, ok := m.AgeDeadline()
	return ok && now >= at
}

// AgeDeadline returns the earliest virtual time at which some pending
// transaction trips the age half of the cut policy (the moment Ready flips
// true on age alone). ok is false when nothing is pending. The pool is
// FIFO by enqueue time, so the first pending transaction of each class
// (assigned / unassigned) carries that class's earliest deadline and the
// scan stops there — Submit-time Ready checks stay cheap even when a slow
// chain lets the pool back up.
func (m *Mempool) AgeDeadline() (at time.Duration, ok bool) {
	sawMine, sawOther := m.nMine == 0, m.nOther == 0
	if sawMine && sawOther {
		return 0, false
	}
	for _, e := range m.txs {
		if e.inflight >= 0 {
			continue
		}
		mine := m.assigned(e.key)
		if (mine && sawMine) || (!mine && sawOther) {
			continue
		}
		d := e.enq + m.cfg.MaxTxAge
		if mine {
			sawMine = true
		} else {
			sawOther = true
			d = e.enq + m.cfg.ReproposeAge
		}
		if !ok || d < at {
			at, ok = d, true
		}
		if sawMine && sawOther {
			break
		}
	}
	return at, ok
}

// Cut collects the oldest proposable transactions up to MaxBatchBytes and
// marks them in flight for epoch. They remain pooled until committed (their
// slot may lose the common subset) but later cuts skip them.
func (m *Mempool) Cut(epoch int, now time.Duration) [][]byte {
	var out [][]byte
	var bytes int
	for _, e := range m.txs {
		if !m.proposable(e, now) {
			continue
		}
		if bytes+len(e.data) > m.cfg.MaxBatchBytes && bytes > 0 {
			break
		}
		e.inflight = epoch
		m.pending -= len(e.data)
		if m.assigned(e.key) {
			m.pendingMine -= len(e.data)
			m.nMine--
		} else {
			m.nOther--
		}
		bytes += len(e.data)
		out = append(out, e.data)
		if bytes >= m.cfg.MaxBatchBytes {
			break
		}
	}
	return out
}

// MarkCommitted records keys as committed in epoch and drops matching
// transactions from the pool, whether pending or in flight.
func (m *Mempool) MarkCommitted(keys []txKey, epoch int) {
	drop := make(map[txKey]bool, len(keys))
	for _, k := range keys {
		m.committed[k] = epoch
		drop[k] = true
	}
	kept := m.txs[:0]
	for _, e := range m.txs {
		if drop[e.key] {
			delete(m.index, e.key)
			m.pooled -= len(e.data)
			if e.inflight < 0 {
				m.pending -= len(e.data)
				if m.assigned(e.key) {
					m.pendingMine -= len(e.data)
					m.nMine--
				} else {
					m.nOther--
				}
			}
			continue
		}
		kept = append(kept, e)
	}
	for i := len(kept); i < len(m.txs); i++ {
		m.txs[i] = nil
	}
	m.txs = kept
}

// Requeue returns epoch's surviving in-flight transactions to pending:
// called after the epoch commits, when any of its proposals that the
// common subset rejected must become eligible for a future cut.
func (m *Mempool) Requeue(epoch int) {
	for _, e := range m.txs {
		if e.inflight == epoch {
			e.inflight = -1
			m.pending += len(e.data)
			if m.assigned(e.key) {
				m.pendingMine += len(e.data)
				m.nMine++
			} else {
				m.nOther++
			}
		}
	}
}

// GC prunes committed digests older than the horizon, keeping dedup memory
// proportional to traffic within the window rather than the chain's life.
func (m *Mempool) GC(commitEpoch int) {
	for k, e := range m.committed {
		if e+m.cfg.DedupHorizon <= commitEpoch {
			delete(m.committed, k)
		}
	}
}

// WasCommitted reports whether key committed within the dedup horizon.
func (m *Mempool) WasCommitted(key txKey) bool {
	_, ok := m.committed[key]
	return ok
}

// Len returns the number of pooled transactions (pending plus in flight).
func (m *Mempool) Len() int { return len(m.txs) }

// PendingBytes returns the payload bytes eligible for the next cut.
func (m *Mempool) PendingBytes() int { return m.pending }

// CommittedSize returns the committed-digest memory size (GC observability).
func (m *Mempool) CommittedSize() int { return len(m.committed) }

// Duplicates returns how many admissions were rejected as duplicates.
func (m *Mempool) Duplicates() int { return m.duplicates }

// PoolBytes returns the pool's total payload bytes, pending plus in
// flight — the quantity MaxPendingBytes caps.
func (m *Mempool) PoolBytes() int { return m.pooled }

// PeakPoolBytes returns the pool's byte high-water mark: the proof that
// backpressure kept mempool growth bounded over a run.
func (m *Mempool) PeakPoolBytes() int { return m.peakPooled }

// RejectedFull returns how many admissions the MaxPendingBytes cap
// refused (always zero with the cap disabled).
func (m *Mempool) RejectedFull() int { return m.rejectedFull }
