package protocol

import (
	"crypto/sha256"
	"encoding/binary"
	"math/rand"

	"repro/internal/component"
)

// Alea implements the Alea-BFT pipeline: dissemination and agreement are
// split into two decoupled halves. Every node VCBC-broadcasts its batch
// into its own priority queue (one queue per sender, slot = sender), and
// a sequential agreement loop runs repropose-able binary agreement over
// the queue heads: round r targets the next queue in the common priority
// order π that has not been accepted yet, each node inputs 1 iff that
// queue's VCBC has delivered locally, and a 1-decision accepts the queue
// (fetching its value by certificate if this node missed the broadcast).
// A 0-decided queue is not discarded — the cyclic order retries it on the
// next pass, which is Alea's reproposal. The epoch decides once 2f+1
// queues are accepted.
//
// The rivalry against HB-ACS is the ABA-instance count: HB runs N
// parallel ABAs every epoch, Alea runs one at a time and stops at 2f+1
// acceptances — in the common case 2f+1 unanimous-1 single-round
// instances, each sharing the ABA/threshcoin machinery and cost model of
// the other engines, so the bench numbers are head-to-head comparable.
type Alea struct {
	env  *component.Env
	vcbc *component.VCBC
	aba  binaryAgreement

	order     []int // π: common cyclic queue priority order
	started   bool  // agreement loop armed (2f+1 VCBC start rule)
	round     int   // next agreement round (= serial ABA slot) to settle
	cursor    int   // cyclic position in π the next round scans from
	running   bool  // this node has input the current round's ABA
	accepted  []bool
	acceptedN int
	outputs   [][]byte
	onDecide  func()
}

// aleaRounds caps the serial agreement schedule. Once every honest
// sender's VCBC has delivered everywhere, each targeted honest queue
// decides 1 unanimously in one round, so real runs settle within a few
// cycles of N; the cap only bounds the ABA slot space (and turns a
// livelock bug into a loud failure instead of a silent stall).
const aleaRounds = 64

// AleaOptions configures an Alea instance.
type AleaOptions struct {
	Coin     CoinKind // CoinSig / CoinFlip / CoinLocal
	Batched  bool
	OnDecide func()
}

// NewAlea builds the instance and registers its components.
func NewAlea(env *component.Env, opts AleaOptions) *Alea {
	a := &Alea{
		env:      env,
		order:    aleaOrder(env.Session, env.Epoch, env.N),
		accepted: make([]bool, env.N),
		onDecide: opts.OnDecide,
	}
	a.vcbc = component.NewVCBC(env, component.VCBCOptions{
		Slots:     env.N,
		OnDeliver: a.onVCBCDeliver,
	})
	// Serial ABA, one slot per agreement round: instances execute one at a
	// time, so coins are per-instance (the Dumbo serial rule — no
	// cross-instance sharing to leak future coins). Round catch-up is on:
	// the serial schedule repeats estimates across consecutive rounds, so
	// pacing skew between nodes is structural, not transient.
	a.aba = newABA(env, aleaRounds, opts.Coin, false, true, a.onABADecide)
	return a
}

var _ Instance = (*Alea)(nil)

// Start implements Instance: push this node's batch onto its queue.
func (a *Alea) Start(proposal []byte) { a.vcbc.Broadcast(a.env.Me, proposal) }

// Reproposed implements the chain's WAL-replay signal: this node crashed
// after first broadcasting the epoch's batch, so peers are bound to that
// value — their echo shares, and possibly a completed certificate, refer
// to broadcast state this node no longer holds (its FINISH intent died
// with the transport, and peers that delivered removed their echo intents
// at delivery). Pull that state back through the repair path: survivors
// re-publish the certificate if one exists, or their standing echo
// intents complete the quorum again on this node. The proposal WAL
// guarantees the replayed value hashes identically, so the pulled state
// binds to the value just re-broadcast.
func (a *Alea) Reproposed() { a.vcbc.Fetch(a.env.Me) }

// Done implements Instance.
func (a *Alea) Done() bool { return a.outputs != nil }

// Outputs implements Instance.
func (a *Alea) Outputs() [][]byte { return a.outputs }

// onVCBCDeliver applies the wireless start rule (the ABA-start analogue
// of Sec. V-A): the agreement loop arms once 2f+1 queue heads have
// delivered locally, so the fastest 2f+1 broadcasts are favored and a
// lone early sender cannot steer the schedule.
func (a *Alea) onVCBCDeliver(int, []byte, []byte) {
	if !a.started && a.vcbc.DeliveredCount() >= a.env.Quorum() {
		a.started = true
	}
	a.pump()
	a.maybeFinish()
}

// target returns the queue the current round operates on and its position
// in the cyclic scan: the first queue at or after cursor in π order that
// has not been accepted. The mapping is a pure function of π and the
// prior rounds' decisions, so every node attributes round r to the same
// queue.
func (a *Alea) target() (q, pos int) {
	n := a.env.N
	for i := 0; i < n; i++ {
		pos = a.cursor + i
		q = a.order[pos%n]
		if !a.accepted[q] {
			return q, pos
		}
	}
	panic("protocol: alea agreement loop ran past termination")
}

// pump advances the serial schedule: consume already-settled rounds in
// order (peers' DECIDED claims may arrive long before this node runs the
// round itself — the late-join/recovery case), then input the current
// round's ABA if the loop is armed. Decisions are attributed strictly in
// round order, which keeps the round→queue mapping common.
func (a *Alea) pump() {
	for a.outputs == nil && a.acceptedN < a.env.Quorum() {
		if a.round >= aleaRounds {
			panic("protocol: alea agreement exceeded the round cap")
		}
		q, pos := a.target()
		if dec := a.aba.Decided(a.round); dec != nil {
			a.running = false
			a.round++
			a.cursor = pos + 1
			if *dec && !a.accepted[q] {
				a.accepted[q] = true
				a.acceptedN++
				if !a.vcbc.Delivered(q) {
					// VCBC has no totality: pull the accepted head by its
					// certificate.
					a.vcbc.Fetch(q)
				}
			}
			continue
		}
		if a.running || !a.started {
			return
		}
		a.running = true
		a.aba.Input(a.round, a.vcbc.Delivered(q))
		return
	}
	a.maybeFinish()
}

func (a *Alea) onABADecide(int, bool) {
	// Attribution happens inside pump via Decided(a.round): a decision for
	// the current round is consumed now; claims for rounds this node has
	// not reached yet are consumed when the serial schedule gets there.
	a.pump()
}

// maybeFinish assembles the epoch output once 2f+1 queues are accepted
// and every accepted head has (by broadcast or certificate fetch)
// delivered locally.
func (a *Alea) maybeFinish() {
	if a.outputs != nil || a.acceptedN < a.env.Quorum() {
		return
	}
	for q := 0; q < a.env.N; q++ {
		if a.accepted[q] && !a.vcbc.Delivered(q) {
			a.vcbc.Fetch(q) // idempotent re-request
			return
		}
	}
	outputs := make([][]byte, a.env.N)
	for q := range outputs {
		if a.accepted[q] {
			outputs[q] = a.vcbc.Value(q)
		}
	}
	a.outputs = outputs
	if a.onDecide != nil {
		a.onDecide()
	}
}

// aleaOrder derives the common queue priority order π from the epoch
// identity, like Dumbo's candidate permutation: all nodes compute the
// same order, rotated across epochs so no sender is permanently favored.
func aleaOrder(session uint32, epoch uint16, n int) []int {
	var seedInput [16]byte
	copy(seedInput[:], "alea-pi")
	binary.BigEndian.PutUint32(seedInput[8:], session)
	binary.BigEndian.PutUint16(seedInput[12:], epoch)
	d := sha256.Sum256(seedInput[:])
	rng := rand.New(rand.NewSource(int64(binary.BigEndian.Uint64(d[:8]))))
	return rng.Perm(n)
}

// Queue-head status codes of the QueueState snapshot.
const (
	// QueuePending: nothing delivered for the queue head yet.
	QueuePending uint8 = iota
	// QueueDelivered: the head's VCBC completed locally (hash and proof
	// are populated).
	QueueDelivered
	// QueueAccepted: the agreement loop accepted the queue into the epoch
	// output.
	QueueAccepted
)

// QueueState is the snapshot of one priority queue's head: its position
// (queue id and epoch), progress status, and — once delivered — the value
// digest and the transferable VCBC proof any peer can verify.
type QueueState struct {
	Queue  uint8
	Epoch  uint16
	Status uint8
	Hash   component.Hash8
	Proof  []byte
}

// QueueStates snapshots all N queue heads (exported for the demos and
// the cross-node consistency checks of the conformance/property tests).
func (a *Alea) QueueStates() []QueueState {
	out := make([]QueueState, a.env.N)
	for q := range out {
		qs := QueueState{Queue: uint8(q), Epoch: a.env.Epoch}
		if a.vcbc.Delivered(q) {
			qs.Status = QueueDelivered
			qs.Hash = component.HashValue(a.vcbc.Value(q))
			qs.Proof = a.vcbc.Proof(q)
		}
		if a.accepted[q] {
			qs.Status = QueueAccepted
		}
		out[q] = qs
	}
	return out
}

// VerifyQueueProof checks a queue-head proof against this instance's
// epoch identity (charges no virtual CPU; protocol paths wrap it in
// Exec like the other proof verifications).
func (a *Alea) VerifyQueueProof(qs QueueState) error {
	return a.vcbc.VerifyProof(int(qs.Queue), qs.Proof)
}

var errBadQueueState = errorString("protocol: malformed queue state")

// EncodeQueueState packs a queue-head snapshot. The layout is canonical —
// fixed header, length-prefixed proof, no trailing bytes — so
// decode-then-encode is the identity on every accepted input (the
// fuzz-pinned property).
func EncodeQueueState(qs QueueState) []byte {
	buf := make([]byte, 0, 1+2+1+8+2+len(qs.Proof))
	buf = append(buf, qs.Queue)
	buf = binary.BigEndian.AppendUint16(buf, qs.Epoch)
	buf = append(buf, qs.Status)
	buf = append(buf, qs.Hash[:]...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(qs.Proof)))
	return append(buf, qs.Proof...)
}

// DecodeQueueState parses EncodeQueueState's format, rejecting truncated
// and over-long encodings.
func DecodeQueueState(raw []byte) (QueueState, error) {
	var qs QueueState
	if len(raw) < 1+2+1+8+2 {
		return qs, errBadQueueState
	}
	qs.Queue = raw[0]
	qs.Epoch = binary.BigEndian.Uint16(raw[1:3])
	qs.Status = raw[3]
	copy(qs.Hash[:], raw[4:12])
	n := int(binary.BigEndian.Uint16(raw[12:14]))
	raw = raw[14:]
	if len(raw) != n {
		return qs, errBadQueueState
	}
	if n > 0 {
		qs.Proof = append([]byte(nil), raw...)
	}
	return qs, nil
}
