package protocol

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/byz"
	"repro/internal/component"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/node"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/wireless"
)

// Kind names a consensus protocol family.
type Kind string

// The three protocol families the paper adapts.
const (
	HoneyBadger Kind = "honeybadger"
	BEAT        Kind = "beat"
	DumboKind   Kind = "dumbo"
)

// Options configures a single-hop protocol run.
type Options struct {
	Protocol  Kind
	Coin      CoinKind
	Batched   bool // ConsensusBatcher vs baseline transport
	N, F      int
	BatchSize int // transactions per proposal
	TxSize    int // bytes per transaction
	Encrypt   bool
	Epochs    int
	Seed      int64
	Net       wireless.Config
	Crypto    crypto.Config
	Transport core.Config // Session/FlushDelay/RetxInterval; zero = defaults
	// Scenario scripts faults into the run: crashes, recoveries,
	// partitions, loss/jam bursts, and the asynchronous delay adversary.
	// The zero value is the fault-free run. In this one-shot driver a
	// recovered node rejoins at the next epoch boundary.
	Scenario scenario.Plan
	// Deadline bounds each epoch in virtual time (default 60 min).
	Deadline time.Duration
}

// DefaultOptions returns the paper's single-hop setup: N=4, LoRa-class
// channel, light crypto, ConsensusBatcher on.
func DefaultOptions(p Kind, coin CoinKind) Options {
	return Options{
		Protocol:  p,
		Coin:      coin,
		Batched:   true,
		N:         4,
		F:         1,
		BatchSize: 4,
		TxSize:    64,
		Encrypt:   p != DumboKind,
		Epochs:    3,
		Seed:      1,
		Net:       wireless.DefaultConfig(),
		Crypto:    crypto.LightConfig(),
		Deadline:  60 * time.Minute,
	}
}

// Result aggregates a run's measurements.
type Result struct {
	EpochLatencies []time.Duration
	MeanLatency    time.Duration
	TPM            float64 // transactions per minute of virtual time
	DeliveredTxs   int

	Accesses    uint64 // channel accesses (the paper's contention metric)
	Collisions  uint64
	Frames      uint64
	BytesOnAir  uint64
	LogicalSent uint64 // signed logical packets across all nodes
	SignOps     uint64
	VerifyOps   uint64
	// Rejected counts component-level discards of invalid inbound state
	// across all nodes — the volume of Byzantine traffic the defenses
	// absorbed (zero in honest runs).
	Rejected uint64
}

// runNode bundles one node's per-run state on top of the deployment layer.
type runNode struct {
	*node.Node
	idx     int
	crashed bool // currently down (scenario-driven)
	// byz marks a node the scenario ever scripts Byzantine: it keeps
	// running (and misbehaving) but is excluded from completion barriers
	// and from the honest-safety checks.
	byz  bool
	inst Instance
	done bool
}

// runLifecycle adapts a slice of runNodes to the scenario engine. Crash
// takes the node off the air immediately and excludes it from the epoch
// barrier; recovery re-admits it at the next epoch boundary (one-shot
// epochs have no mid-epoch join protocol — contrast with Chain, which
// rejoins mid-run).
type runLifecycle struct{ nodes []*runNode }

func (l runLifecycle) CrashNode(i int) {
	if i < 0 || i >= len(l.nodes) {
		return
	}
	n := l.nodes[i]
	if n.crashed {
		return
	}
	n.crashed = true
	n.inst = nil  // in-memory epoch state is gone
	n.done = true // excluded from the epoch barrier
	n.Node.Crash()
}

func (l runLifecycle) RecoverNode(i int) {
	if i < 0 || i >= len(l.nodes) {
		return
	}
	n := l.nodes[i]
	if !n.crashed {
		return
	}
	n.Node.Recover()
	n.crashed = false
	// done stays true: the node sits out the rest of the current epoch.
}

// SetByzantine implements scenario.ByzLifecycle: arm the behavior on the
// deployment node. The name was validated by validateByz before the run.
func (l runLifecycle) SetByzantine(i int, behavior string) {
	if i < 0 || i >= len(l.nodes) {
		return
	}
	b, err := byz.New(behavior)
	if err != nil {
		return
	}
	l.nodes[i].byz = true
	l.nodes[i].Node.SetBehavior(b)
}

// validateByz rejects plans naming unknown Byzantine behaviors or
// out-of-range nodes before any virtual time elapses (the engine fires
// byz events mid-run, too late to surface an error — and a typo'd node
// id would otherwise yield a vacuously "Byzantine" run with no
// adversary in it).
func validateByz(plan scenario.Plan, n int) error {
	for _, ev := range plan.Events {
		if ev.Kind != scenario.KindByz {
			continue
		}
		if _, err := byz.New(ev.Behavior); err != nil {
			return err
		}
		if ev.Node < 0 || ev.Node >= n {
			return fmt.Errorf("protocol: byz event targets node %d, have nodes 0..%d", ev.Node, n-1)
		}
	}
	return nil
}

// Run executes a single-hop protocol simulation and returns measurements.
func Run(opts Options) (*Result, error) {
	if opts.N != 3*opts.F+1 {
		return nil, fmt.Errorf("protocol: need N = 3F+1, got N=%d F=%d", opts.N, opts.F)
	}
	if opts.Deadline <= 0 {
		opts.Deadline = 60 * time.Minute
	}
	if err := validateByz(opts.Scenario, opts.N); err != nil {
		return nil, err
	}
	byzN := opts.Scenario.ByzNodes()
	if len(byzN) > opts.F {
		return nil, fmt.Errorf("protocol: %d Byzantine nodes exceed F=%d", len(byzN), opts.F)
	}
	sched := sim.New(opts.Seed)
	ch := wireless.NewChannel(sched, opts.Net)

	suites, err := crypto.Deal(opts.N, opts.F, opts.Crypto, rand.New(rand.NewSource(opts.Seed^0x5eed)))
	if err != nil {
		return nil, err
	}
	ncfg := node.Config{Transport: opts.Transport, Batched: opts.Batched, Seed: opts.Seed}
	nodes := make([]*runNode, opts.N)
	for i := range nodes {
		nodes[i] = &runNode{Node: node.New(sched, ch, wireless.NodeID(i), suites[i], ncfg), idx: i, byz: byzN[i]}
	}
	eng := scenario.Start(sched, opts.Scenario, opts.Seed, runLifecycle{nodes})
	ch.SetDeliveryHook(eng.Hook())

	res := &Result{}
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		start := sched.Now()
		for _, n := range nodes {
			n.startEpoch(sched, uint16(epoch), opts, nil)
		}
		err := node.Drive(sched, start+opts.Deadline, func() bool { return allHonestDone(nodes) })
		if err != nil {
			return nil, fmt.Errorf("protocol: epoch %d (%s %s batched=%v): %w",
				epoch, opts.Protocol, opts.Coin, opts.Batched, err)
		}
		res.EpochLatencies = append(res.EpochLatencies, sched.Now()-start)
		res.DeliveredTxs += countTxs(nodes, opts)
		insts := make([]Instance, 0, len(nodes))
		for _, n := range nodes {
			// Agreement is an honest-node property: a Byzantine node's own
			// engine is not bound by what it told its peers.
			if !n.crashed && !n.byz && n.inst != nil {
				insts = append(insts, n.inst)
			}
		}
		if err := AgreementCheck(insts); err != nil {
			return nil, fmt.Errorf("protocol: epoch %d safety violation: %w", epoch, err)
		}
	}

	finalize(res, sched, ch, nodes)
	return res, nil
}

// startEpoch rebuilds the node's components for a fresh epoch and submits
// its proposal. onDone, if non-nil, fires when the node decides the epoch
// locally (the multihop driver chains the global tier off it).
func (n *runNode) startEpoch(sched *sim.Scheduler, epoch uint16, opts Options, onDone func()) {
	n.done = false
	n.inst = nil
	if n.crashed {
		n.done = true // crashed nodes never finish; exclude from barrier
		return
	}
	tr := n.Transport()
	tr.SetEpoch(epoch)
	env := &component.Env{
		N:       opts.N,
		F:       opts.F,
		Me:      n.idx,
		Epoch:   epoch,
		Session: n.TransportConfig().Session,
		Suite:   n.Suite,
		T:       tr,
		CPU:     n.CPU,
		Sched:   sched,
		Rand:    n.Rand,
	}
	n.inst = newInstance(env, opts.Protocol, opts.Coin, opts.Batched, opts.Encrypt, func() {
		n.done = true
		if onDone != nil {
			onDone()
		}
	})
	n.inst.Start(makeProposal(n.idx, int(epoch), opts))
}

// newInstance builds one epoch's consensus engine for a protocol variant.
// Both the one-shot runner and the Chain SMR engine construct epochs
// through this factory.
func newInstance(env *component.Env, p Kind, coin CoinKind, batched, encrypt bool, onDecide func()) Instance {
	switch p {
	case HoneyBadger:
		return NewACS(env, ACSOptions{Coin: coin, Batched: batched, Encrypt: encrypt, OnDecide: onDecide})
	case BEAT:
		if coin == "" {
			coin = CoinFlip
		}
		return NewACS(env, ACSOptions{Coin: coin, Batched: batched, Encrypt: true, OnDecide: onDecide})
	case DumboKind:
		return NewDumbo(env, DumboOptions{Coin: coin, Batched: batched, OnDecide: onDecide})
	default:
		panic(fmt.Sprintf("protocol: unknown protocol %q", p))
	}
}

// Variant names one of the paper's five protocol configurations.
type Variant struct {
	Name string
	Kind Kind
	Coin CoinKind
}

// Variants returns the paper's five protocol variants (Fig. 13 legend).
func Variants() []Variant {
	return []Variant{
		{"HB-LC", HoneyBadger, CoinLocal},
		{"HB-SC", HoneyBadger, CoinSig},
		{"BEAT", BEAT, CoinFlip},
		{"Dumbo-LC", DumboKind, CoinLocal},
		{"Dumbo-SC", DumboKind, CoinSig},
	}
}

// makeProposal builds a deterministic batch of transactions.
func makeProposal(node, epoch int, opts Options) []byte {
	prop := make([]byte, opts.BatchSize*opts.TxSize)
	for t := 0; t < opts.BatchSize; t++ {
		tx := prop[t*opts.TxSize : (t+1)*opts.TxSize]
		binary.BigEndian.PutUint32(tx, uint32(node))
		binary.BigEndian.PutUint32(tx[4:], uint32(epoch))
		binary.BigEndian.PutUint32(tx[8:], uint32(t))
		for i := 12; i < len(tx); i++ {
			tx[i] = byte(i * (node + 1))
		}
	}
	return prop
}

func allHonestDone(nodes []*runNode) bool {
	for _, n := range nodes {
		if !n.done && !n.byz {
			return false
		}
	}
	return true
}

// countTxs counts the transactions accepted this epoch (from the first
// honest node's output; agreement tests verify outputs match).
func countTxs(nodes []*runNode, opts Options) int {
	for _, n := range nodes {
		if n.crashed || n.byz || n.inst == nil {
			continue
		}
		total := 0
		for _, prop := range n.inst.Outputs() {
			total += len(prop) / opts.TxSize
		}
		return total
	}
	return 0
}

func finalize(res *Result, sched *sim.Scheduler, ch *wireless.Channel, nodes []*runNode) {
	var sum time.Duration
	for _, l := range res.EpochLatencies {
		sum += l
	}
	if len(res.EpochLatencies) > 0 {
		res.MeanLatency = sum / time.Duration(len(res.EpochLatencies))
	}
	if now := sched.Now(); now > 0 {
		res.TPM = float64(res.DeliveredTxs) / now.Minutes()
	}
	st := ch.Stats()
	res.Accesses = st.Accesses
	res.Collisions = st.Collisions
	res.Frames = st.Frames
	res.BytesOnAir = st.BytesOnAir
	deployed := make([]*node.Node, len(nodes))
	for i, n := range nodes {
		deployed[i] = n.Node
	}
	ts := node.SumStats(deployed)
	res.LogicalSent = ts.LogicalSent
	res.SignOps = ts.SignOps
	res.VerifyOps = ts.VerifyOps
	res.Rejected = ts.Rejected
}

// AgreementCheck verifies that all honest nodes produced identical outputs
// in their final epoch (test helper; exported for the property tests).
func AgreementCheck(nodes []Instance) error {
	var ref [][]byte
	for _, inst := range nodes {
		if inst == nil || !inst.Done() {
			continue
		}
		if ref == nil {
			ref = inst.Outputs()
			continue
		}
		out := inst.Outputs()
		if len(out) != len(ref) {
			return fmt.Errorf("protocol: output length mismatch: %d vs %d", len(out), len(ref))
		}
		for i := range ref {
			if string(ref[i]) != string(out[i]) {
				return fmt.Errorf("protocol: output disagreement at slot %d", i)
			}
		}
	}
	return nil
}
