package protocol

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/component"
)

// This file is the protocol-variant surface shared by every deployment
// driver: the engine registry, the five named variants of the paper's
// evaluation, the epoch-instance factory, and the agreement check. The
// drivers themselves — one-shot, clustered, and chain SMR over both
// topologies — live in internal/run behind the unified run.Spec API.

// Kind names a consensus protocol family.
type Kind string

// The registered protocol families: the three the paper adapts plus the
// beyond-the-paper Alea-BFT pipeline.
const (
	HoneyBadger Kind = "honeybadger"
	BEAT        Kind = "beat"
	DumboKind   Kind = "dumbo"
	AleaKind    Kind = "alea"
)

// Engine is one registry entry: a protocol family and its epoch-instance
// constructor. Everything downstream — run.Spec validation, the Encrypt
// default, the bench axes, the wbft CLI vocabulary, and the cross-engine
// conformance suite — enumerates this registry instead of hardcoding the
// family list, so adding an engine is one Register (or one slice entry)
// and zero call-site changes.
type Engine struct {
	Kind Kind
	// DefaultEncrypt is whether run.Defaults turns on the
	// threshold-encrypted proposal path for this family.
	DefaultEncrypt bool
	// New builds one epoch's consensus instance.
	New func(env *component.Env, coin CoinKind, batched, encrypt bool, onDecide func()) Instance
}

func builtinEngines() []Engine {
	return []Engine{
		{Kind: HoneyBadger, DefaultEncrypt: true,
			New: func(env *component.Env, coin CoinKind, batched, encrypt bool, onDecide func()) Instance {
				return NewACS(env, ACSOptions{Coin: coin, Batched: batched, Encrypt: encrypt, OnDecide: onDecide})
			}},
		{Kind: BEAT, DefaultEncrypt: true,
			New: func(env *component.Env, coin CoinKind, batched, encrypt bool, onDecide func()) Instance {
				if coin == "" {
					coin = CoinFlip
				}
				return NewACS(env, ACSOptions{Coin: coin, Batched: batched, Encrypt: true, OnDecide: onDecide})
			}},
		{Kind: DumboKind, DefaultEncrypt: false,
			New: func(env *component.Env, coin CoinKind, batched, encrypt bool, onDecide func()) Instance {
				return NewDumbo(env, DumboOptions{Coin: coin, Batched: batched, OnDecide: onDecide})
			}},
		{Kind: AleaKind, DefaultEncrypt: false,
			New: func(env *component.Env, coin CoinKind, batched, encrypt bool, onDecide func()) Instance {
				return NewAlea(env, AleaOptions{Coin: coin, Batched: batched, OnDecide: onDecide})
			}},
	}
}

var (
	engineMu sync.RWMutex
	engines  = builtinEngines()
)

// Engines returns the registry in registration order.
func Engines() []Engine {
	engineMu.RLock()
	defer engineMu.RUnlock()
	return append([]Engine(nil), engines...)
}

// Kinds returns the registered family names in registration order.
func Kinds() []Kind {
	engineMu.RLock()
	defer engineMu.RUnlock()
	out := make([]Kind, len(engines))
	for i, e := range engines {
		out[i] = e.Kind
	}
	return out
}

// Lookup finds a registered engine by family name.
func Lookup(k Kind) (Engine, bool) {
	engineMu.RLock()
	defer engineMu.RUnlock()
	for _, e := range engines {
		if e.Kind == k {
			return e, true
		}
	}
	return Engine{}, false
}

// DefaultEncrypt reports run.Defaults' Encrypt setting for a family
// (false for unregistered names).
func DefaultEncrypt(k Kind) bool {
	e, ok := Lookup(k)
	return ok && e.DefaultEncrypt
}

// Register adds an engine to the registry (replacing any same-Kind entry
// — latest wins) and returns a restore function that reinstates the
// prior registry. The conformance suite uses it to run intentionally
// broken engine stubs through the real drivers.
func Register(e Engine) (restore func()) {
	engineMu.Lock()
	defer engineMu.Unlock()
	prev := append([]Engine(nil), engines...)
	replaced := false
	for i := range engines {
		if engines[i].Kind == e.Kind {
			engines[i] = e
			replaced = true
			break
		}
	}
	if !replaced {
		engines = append(engines, e)
	}
	return func() {
		engineMu.Lock()
		defer engineMu.Unlock()
		engines = prev
	}
}

// NewInstance builds one epoch's consensus engine for a protocol variant.
// The one-shot drivers and the Chain SMR engine construct every epoch
// through this factory.
func NewInstance(env *component.Env, p Kind, coin CoinKind, batched, encrypt bool, onDecide func()) Instance {
	e, ok := Lookup(p)
	if !ok {
		panic(fmt.Sprintf("protocol: unknown protocol %q", p))
	}
	return e.New(env, coin, batched, encrypt, onDecide)
}

// Variant names one of the paper's five protocol configurations.
type Variant struct {
	Name string
	Kind Kind
	Coin CoinKind
}

// Variants returns the paper's five protocol variants (Fig. 13 legend).
// Alea is not among them — it is the beyond-the-paper engine and shows up
// through the registry-driven sweeps instead.
func Variants() []Variant {
	return []Variant{
		{"HB-LC", HoneyBadger, CoinLocal},
		{"HB-SC", HoneyBadger, CoinSig},
		{"BEAT", BEAT, CoinFlip},
		{"Dumbo-LC", DumboKind, CoinLocal},
		{"Dumbo-SC", DumboKind, CoinSig},
	}
}

// MakeProposal builds the one-shot drivers' deterministic proposal batch:
// batchSize transactions of txSize bytes, tagged with the proposer and
// epoch.
func MakeProposal(node, epoch, batchSize, txSize int) []byte {
	prop := make([]byte, batchSize*txSize)
	for t := 0; t < batchSize; t++ {
		tx := prop[t*txSize : (t+1)*txSize]
		binary.BigEndian.PutUint32(tx, uint32(node))
		binary.BigEndian.PutUint32(tx[4:], uint32(epoch))
		binary.BigEndian.PutUint32(tx[8:], uint32(t))
		for i := 12; i < len(tx); i++ {
			tx[i] = byte(i * (node + 1))
		}
	}
	return prop
}

// AgreementCheck verifies that all honest nodes produced identical outputs
// in their final epoch (exported for the drivers and property tests).
func AgreementCheck(nodes []Instance) error {
	var ref [][]byte
	for _, inst := range nodes {
		if inst == nil || !inst.Done() {
			continue
		}
		if ref == nil {
			ref = inst.Outputs()
			continue
		}
		out := inst.Outputs()
		if len(out) != len(ref) {
			return fmt.Errorf("protocol: output length mismatch: %d vs %d", len(out), len(ref))
		}
		for i := range ref {
			if string(ref[i]) != string(out[i]) {
				return fmt.Errorf("protocol: output disagreement at slot %d", i)
			}
		}
	}
	return nil
}
