package protocol

import (
	"encoding/binary"
	"fmt"

	"repro/internal/component"
)

// This file is the protocol-variant surface shared by every deployment
// driver: the protocol families, the five named variants of the paper's
// evaluation, the epoch-instance factory, and the agreement check. The
// drivers themselves — one-shot, clustered, and chain SMR over both
// topologies — live in internal/run behind the unified run.Spec API.

// Kind names a consensus protocol family.
type Kind string

// The three protocol families the paper adapts.
const (
	HoneyBadger Kind = "honeybadger"
	BEAT        Kind = "beat"
	DumboKind   Kind = "dumbo"
)

// NewInstance builds one epoch's consensus engine for a protocol variant.
// The one-shot drivers and the Chain SMR engine construct every epoch
// through this factory.
func NewInstance(env *component.Env, p Kind, coin CoinKind, batched, encrypt bool, onDecide func()) Instance {
	switch p {
	case HoneyBadger:
		return NewACS(env, ACSOptions{Coin: coin, Batched: batched, Encrypt: encrypt, OnDecide: onDecide})
	case BEAT:
		if coin == "" {
			coin = CoinFlip
		}
		return NewACS(env, ACSOptions{Coin: coin, Batched: batched, Encrypt: true, OnDecide: onDecide})
	case DumboKind:
		return NewDumbo(env, DumboOptions{Coin: coin, Batched: batched, OnDecide: onDecide})
	default:
		panic(fmt.Sprintf("protocol: unknown protocol %q", p))
	}
}

// Variant names one of the paper's five protocol configurations.
type Variant struct {
	Name string
	Kind Kind
	Coin CoinKind
}

// Variants returns the paper's five protocol variants (Fig. 13 legend).
func Variants() []Variant {
	return []Variant{
		{"HB-LC", HoneyBadger, CoinLocal},
		{"HB-SC", HoneyBadger, CoinSig},
		{"BEAT", BEAT, CoinFlip},
		{"Dumbo-LC", DumboKind, CoinLocal},
		{"Dumbo-SC", DumboKind, CoinSig},
	}
}

// MakeProposal builds the one-shot drivers' deterministic proposal batch:
// batchSize transactions of txSize bytes, tagged with the proposer and
// epoch.
func MakeProposal(node, epoch, batchSize, txSize int) []byte {
	prop := make([]byte, batchSize*txSize)
	for t := 0; t < batchSize; t++ {
		tx := prop[t*txSize : (t+1)*txSize]
		binary.BigEndian.PutUint32(tx, uint32(node))
		binary.BigEndian.PutUint32(tx[4:], uint32(epoch))
		binary.BigEndian.PutUint32(tx[8:], uint32(t))
		for i := 12; i < len(tx); i++ {
			tx[i] = byte(i * (node + 1))
		}
	}
	return prop
}

// AgreementCheck verifies that all honest nodes produced identical outputs
// in their final epoch (exported for the drivers and property tests).
func AgreementCheck(nodes []Instance) error {
	var ref [][]byte
	for _, inst := range nodes {
		if inst == nil || !inst.Done() {
			continue
		}
		if ref == nil {
			ref = inst.Outputs()
			continue
		}
		out := inst.Outputs()
		if len(out) != len(ref) {
			return fmt.Errorf("protocol: output length mismatch: %d vs %d", len(out), len(ref))
		}
		for i := range ref {
			if string(ref[i]) != string(out[i]) {
				return fmt.Errorf("protocol: output disagreement at slot %d", i)
			}
		}
	}
	return nil
}
