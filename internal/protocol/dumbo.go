package protocol

import (
	"crypto/sha256"
	"encoding/binary"
	"math/rand"

	"repro/internal/component"
	"repro/internal/packet"
)

// Dumbo implements Dumbo2 (Fig. 7b): N parallel PRBC instances produce
// provable deliveries; two sets of N parallel CBC instances (CBC-value
// carrying 2f+1-proof vectors, CBC-commit carrying small index sets)
// synchronize the completed-PRBC views; a common string π orders the
// candidates; serial ABA instances then run until one accepts, and the
// accepted candidate's proof vector defines the output set.
type Dumbo struct {
	env *component.Env

	prbc      *component.PRBC
	cbcValue  *component.CBC
	cbcCommit *component.CBC
	aba       binaryAgreement

	proofs        map[int][]byte // slot -> PRBC proof
	valueSent     bool
	commitSent    bool
	abaSeq        []int // π: candidate order
	abaIdx        int   // next candidate to run
	abaRunning    bool
	selected      int // accepted candidate (-1 until decided)
	wantSlots     []wEntry
	verifiedW     bool
	pendingVerify int
	outputs       [][]byte
	onDecide      func()
}

type wEntry struct {
	slot  int
	hash  component.Hash8
	proof []byte
}

// DumboOptions configures a Dumbo instance.
type DumboOptions struct {
	Coin     CoinKind // CoinSig (Dumbo-SC) or CoinLocal (Dumbo-LC)
	Batched  bool
	OnDecide func()
}

// NewDumbo builds the instance and registers its components.
func NewDumbo(env *component.Env, opts DumboOptions) *Dumbo {
	d := &Dumbo{
		env:      env,
		proofs:   make(map[int][]byte),
		selected: -1,
		onDecide: opts.OnDecide,
	}
	d.prbc = component.NewPRBC(env, component.PRBCOptions{
		Slots:     env.N,
		OnProof:   d.onProof,
		OnDeliver: func(int, []byte) { d.maybeFinish() },
	})
	d.cbcValue = component.NewCBC(env, component.CBCOptions{
		Kind:      packet.KindCBCValue,
		Slots:     env.N,
		OnDeliver: d.onCBCValue,
	})
	d.cbcCommit = component.NewCBC(env, component.CBCOptions{
		Kind:      packet.KindCBCCommit,
		Slots:     env.N,
		Small:     true,
		OnDeliver: d.onCBCCommit,
	})
	// Serial ABA: instances execute one at a time in π order, so coins are
	// per-instance (no cross-instance sharing to leak future coins).
	d.aba = newABA(env, env.N, opts.Coin, false, false, d.onABADecide)
	return d
}

var _ Instance = (*Dumbo)(nil)

// Start implements Instance.
func (d *Dumbo) Start(proposal []byte) { d.prbc.Propose(d.env.Me, proposal) }

// Done implements Instance.
func (d *Dumbo) Done() bool { return d.outputs != nil }

// Outputs implements Instance.
func (d *Dumbo) Outputs() [][]byte { return d.outputs }

// onProof fires when a PRBC slot has a combined delivery proof. At 2f+1
// proofs this node CBC-broadcasts its proof vector W_i.
func (d *Dumbo) onProof(slot int, _ []byte, proof []byte) {
	d.proofs[slot] = proof
	if d.valueSent || len(d.proofs) < d.env.Quorum() {
		return
	}
	d.valueSent = true
	var w []byte
	count := 0
	for _, s := range sortedKeys(d.proofs) {
		if count == d.env.Quorum() {
			break
		}
		h := component.HashValue(d.prbc.RBC().Value(s))
		w = append(w, byte(s))
		w = append(w, h[:]...)
		w = binary.BigEndian.AppendUint16(w, uint16(len(d.proofs[s])))
		w = append(w, d.proofs[s]...)
		count++
	}
	d.cbcValue.Propose(d.env.Me, w)
}

// onCBCValue fires when candidate j's proof vector is consistently
// delivered. At 2f+1 deliveries this node CBC-broadcasts its commit set.
func (d *Dumbo) onCBCValue(int, []byte, []byte) {
	if n := d.cbcValue.DeliveredCount(); !d.commitSent && n >= d.env.Quorum() {
		d.commitSent = true
		set := packet.NewBitSet(d.env.N)
		for s := 0; s < d.env.N; s++ {
			if d.cbcValue.Delivered(s) {
				set.Set(s)
			}
		}
		d.cbcCommit.Propose(d.env.Me, set)
	}
	d.pumpSelected()
}

// onCBCCommit fires when a commit set is delivered. At 2f+1 commits the
// common order π is fixed and the serial ABA phase begins.
func (d *Dumbo) onCBCCommit(int, []byte, []byte) {
	if d.abaSeq != nil || d.cbcCommit.DeliveredCount() < d.env.Quorum() {
		return
	}
	d.abaSeq = commonPermutation(d.env.Session, d.env.Epoch, d.env.N)
	d.runNextCandidate()
}

// runNextCandidate inputs the next serial ABA in π order: 1 if this node
// saw the candidate's CBC-value complete, 0 otherwise. A candidate that
// already decided (its peers' DECIDED claims arrived while this node was
// still in the CBC phase — the late-join case) is consumed directly.
func (d *Dumbo) runNextCandidate() {
	if d.abaRunning || d.selected >= 0 || d.abaIdx >= len(d.abaSeq) {
		return
	}
	c := d.abaSeq[d.abaIdx]
	if dec := d.aba.Decided(c); dec != nil {
		d.onABADecide(c, *dec)
		return
	}
	d.abaRunning = true
	d.aba.Input(c, d.cbcValue.Delivered(c))
}

func (d *Dumbo) onABADecide(slot int, v bool) {
	if d.selected >= 0 {
		return
	}
	if v {
		// The serial schedule accepts exactly one candidate, so any
		// 1-decision identifies it — even when it arrives out of π order
		// through peers' DECIDED claims before this (recovering) node has
		// fixed π or run the earlier candidates itself.
		d.abaRunning = false
		d.selected = slot
		if !d.cbcValue.Delivered(slot) {
			// CBC has no totality: fetch the accepted vector explicitly.
			d.cbcValue.Fetch(slot)
			return
		}
		d.pumpSelected()
		return
	}
	// 0-decisions advance the serial schedule strictly in π order.
	if d.abaSeq == nil || d.abaIdx >= len(d.abaSeq) || slot != d.abaSeq[d.abaIdx] {
		return
	}
	d.abaRunning = false
	d.abaIdx++
	d.runNextCandidate()
}

// pumpSelected advances output assembly once the accepted candidate's
// vector is available: verify the PRBC proofs inside it, then wait for the
// referenced PRBC values (totality + NACK repair deliver them).
func (d *Dumbo) pumpSelected() {
	if d.outputs != nil || d.selected < 0 || !d.cbcValue.Delivered(d.selected) {
		return
	}
	if !d.verifiedW {
		w, err := parseW(d.cbcValue.Value(d.selected))
		if err != nil || len(w) < d.env.Quorum() {
			// Malformed vector from a Byzantine candidate should have been
			// filtered by external validity; skip the candidate to keep
			// liveness in the simulation.
			d.env.Reject()
			d.selected = -1
			d.abaIdx++
			d.runNextCandidate()
			return
		}
		d.wantSlots = w
		d.verifiedW = true
		d.pendingVerify = len(w)
		env := d.env
		for _, e := range w {
			e := e
			env.Exec(env.Suite.Cost.TSVerify, func() {
				if err := d.prbc.VerifyProof(e.slot, e.hash, e.proof); err != nil {
					// Invalid proof: reject the candidate entirely.
					env.Reject()
					d.wantSlots = nil
				}
				d.pendingVerify--
				d.maybeFinish()
			})
		}
		return
	}
	d.maybeFinish()
}

func (d *Dumbo) maybeFinish() {
	if d.outputs != nil || !d.verifiedW || d.pendingVerify > 0 {
		return
	}
	if d.wantSlots == nil {
		// Candidate rejected after proof verification: move on.
		d.selected = -1
		d.verifiedW = false
		d.abaIdx++
		d.runNextCandidate()
		return
	}
	rbc := d.prbc.RBC()
	for _, e := range d.wantSlots {
		if !rbc.Delivered(e.slot) {
			// The verified proof is evidence the slot must deliver; ask for
			// repair explicitly (idempotent). In steady state totality is
			// already under way, but a recovering node faces peers that
			// pruned their vote intents long ago and re-announces them only
			// on request.
			rbc.RequestRepair(e.slot)
			return
		}
	}
	outputs := make([][]byte, d.env.N)
	for _, e := range d.wantSlots {
		outputs[e.slot] = rbc.Value(e.slot)
	}
	d.outputs = outputs
	if d.onDecide != nil {
		d.onDecide()
	}
}

func parseW(raw []byte) ([]wEntry, error) {
	var out []wEntry
	for len(raw) > 0 {
		if len(raw) < 1+8+2 {
			return nil, errMalformedW
		}
		var e wEntry
		e.slot = int(raw[0])
		copy(e.hash[:], raw[1:9])
		n := int(binary.BigEndian.Uint16(raw[9:11]))
		raw = raw[11:]
		if len(raw) < n {
			return nil, errMalformedW
		}
		e.proof = append([]byte(nil), raw[:n]...)
		raw = raw[n:]
		out = append(out, e)
	}
	return out, nil
}

var errMalformedW = errorString("protocol: malformed proof vector")

type errorString string

func (e errorString) Error() string { return string(e) }

// commonPermutation derives π from the epoch identity. All nodes compute
// the same order. (Dumbo derives π from unpredictable randomness to resist
// adaptive adversaries; a public hash preserves the protocol structure the
// evaluation measures and is documented in DESIGN.md.)
func commonPermutation(session uint32, epoch uint16, n int) []int {
	var seedInput [16]byte
	copy(seedInput[:], "dumbo-pi")
	binary.BigEndian.PutUint32(seedInput[8:], session)
	binary.BigEndian.PutUint16(seedInput[12:], epoch)
	d := sha256.Sum256(seedInput[:])
	rng := rand.New(rand.NewSource(int64(binary.BigEndian.Uint64(d[:8]))))
	out := rng.Perm(n)
	return out
}

func sortedKeys(m map[int][]byte) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
