package protocol

import (
	"testing"
	"time"

	"repro/internal/byz"
	"repro/internal/scenario"
)

// TestHonestSafetyUnderByzantineBehaviors runs every active-Byzantine
// behavior against both protocol families with f Byzantine nodes. The
// driver itself enforces the honest-safety bar: Run fails if the honest
// nodes' outputs disagree (AgreementCheck), so a nil error plus progress
// is the assertion.
func TestHonestSafetyUnderByzantineBehaviors(t *testing.T) {
	for _, behavior := range byz.Names() {
		for _, p := range []struct {
			name string
			kind Kind
		}{
			{"ACS", HoneyBadger},
			{"Dumbo", DumboKind},
		} {
			behavior, p := behavior, p
			t.Run(p.name+"/"+behavior, func(t *testing.T) {
				t.Parallel()
				opts := DefaultOptions(p.kind, CoinSig)
				opts.Epochs = 2
				opts.Seed = 11
				opts.Scenario = scenario.Byz(behavior, opts.N-1) // f = 1 of N = 4
				res, err := Run(opts)
				if err != nil {
					t.Fatalf("honest safety/liveness violated: %v", err)
				}
				if res.DeliveredTxs == 0 {
					t.Fatal("no transactions delivered: the adversary stalled the honest nodes")
				}
				// Garbage produces cryptographically invalid shares and
				// undecodable payloads every epoch: the defenses must have
				// visibly rejected some, and Stats must surface the count.
				if behavior == byz.NameGarbage && res.Rejected == 0 {
					t.Error("garbage behavior ran but Stats.Rejected == 0")
				}
			})
		}
	}
}

// TestChainHonestSafetyUnderMidRunByzantine arms a behavior mid-run on
// the SMR pipeline: the honest chains must still commit identical
// gap-free logs of genuine client transactions, and the Byzantine node's
// mux must misbehave across the epochs opened after activation.
func TestChainHonestSafetyUnderMidRunByzantine(t *testing.T) {
	for _, behavior := range []string{byz.NameGarbage, byz.NameEquivocate} {
		behavior := behavior
		t.Run(behavior, func(t *testing.T) {
			t.Parallel()
			opts := DefaultChainOptions(HoneyBadger, CoinSig)
			opts.Seed = 5
			opts.TargetEpochs = 5
			opts.GCLag = opts.TargetEpochs
			opts.Scenario = scenario.Plan{}.Then(scenario.ByzAt(10*time.Minute, 3, behavior))
			res, err := ChainRun(opts)
			if err != nil {
				t.Fatalf("honest safety/liveness violated: %v", err)
			}
			if res.Logs[3] != nil {
				t.Error("Byzantine node's log included in the honest result set")
			}
			for i, log := range res.Logs[:3] {
				if len(log) != opts.TargetEpochs {
					t.Fatalf("honest node %d committed %d epochs, want %d", i, len(log), opts.TargetEpochs)
				}
			}
			if forged := CountForged(res.Logs, opts.TxSize, res.SubmittedTxs); forged != 0 {
				t.Fatalf("honest nodes committed %d forged transactions", forged)
			}
		})
	}
}

// TestMultihopByzantineFollower checks the third driver: a Byzantine
// cluster member (never the epoch leader) must not break the clustered
// deployment's agreement or completion.
func TestMultihopByzantineFollower(t *testing.T) {
	opts := DefaultMultihopOptions(HoneyBadger, CoinSig)
	opts.Single.Epochs = 1
	opts.Single.Seed = 3
	// Flat node 7 = cluster 1, member 3; epoch 0's leaders are member 0.
	opts.Single.Scenario = scenario.Byz(byz.NameGarbage, 7)
	res, err := RunMultihop(opts)
	if err != nil {
		t.Fatalf("multihop with Byzantine follower: %v", err)
	}
	if res.DeliveredTxs == 0 {
		t.Fatal("no transactions delivered")
	}
	if res.Rejected == 0 {
		t.Error("garbage follower ran but no rejections surfaced in Stats")
	}
}

// TestByzValidation: unknown behaviors and more than F Byzantine nodes
// must be rejected before any virtual time elapses.
func TestByzValidation(t *testing.T) {
	opts := DefaultOptions(HoneyBadger, CoinSig)
	opts.Scenario = scenario.Byz("omniscient", 3)
	if _, err := Run(opts); err == nil {
		t.Error("unknown behavior accepted")
	}
	opts.Scenario = scenario.Byz(byz.NameWithhold, 2, 3)
	if _, err := Run(opts); err == nil {
		t.Error("2 Byzantine nodes accepted with F=1")
	}
	opts.Scenario = scenario.Byz(byz.NameWithhold, 9)
	if _, err := Run(opts); err == nil {
		t.Error("byz event on nonexistent node 9 accepted (vacuous adversarial run)")
	}
	copts := DefaultChainOptions(HoneyBadger, CoinSig)
	copts.Scenario = scenario.Byz("omniscient", 3)
	if _, err := ChainRun(copts); err == nil {
		t.Error("ChainRun accepted an unknown behavior")
	}
	mopts := DefaultMultihopOptions(HoneyBadger, CoinSig)
	mopts.Single.Scenario = scenario.Byz(byz.NameGarbage, 4, 5) // both in cluster 1, F=1
	if _, err := RunMultihop(mopts); err == nil {
		t.Error("RunMultihop accepted 2 Byzantine nodes in one F=1 cluster")
	}
}
