package protocol

import (
	"testing"
	"time"
)

// --- Mempool unit tests -------------------------------------------------

func TestMempoolDedupAndPolicy(t *testing.T) {
	cfg := MempoolConfig{TargetBatchBytes: 100, MaxBatchBytes: 120, MaxTxAge: 10 * time.Second, DedupHorizon: 2}
	m := NewMempool(cfg)
	tx := func(b byte) []byte { tx := make([]byte, 40); tx[0] = b; return tx }

	if !m.Add(tx(1), 0) || !m.Add(tx(2), time.Second) {
		t.Fatal("fresh adds rejected")
	}
	if m.Add(tx(1), 2*time.Second) {
		t.Error("pending duplicate accepted")
	}
	if m.Ready(2 * time.Second) {
		t.Error("ready below size target and age limit")
	}
	if !m.Ready(10 * time.Second) {
		t.Error("not ready past MaxTxAge")
	}
	m.Add(tx(3), 2*time.Second)
	if !m.Ready(3 * time.Second) {
		t.Error("not ready past TargetBatchBytes")
	}

	cut := m.Cut(0, 3*time.Second)
	if len(cut) != 3 {
		t.Fatalf("cut %d txs, want 3 (120B cap)", len(cut))
	}
	if m.Ready(3 * time.Second) {
		t.Error("ready while everything is in flight")
	}
	// In-flight txs are skipped by later cuts.
	if got := m.Cut(1, 3*time.Second); len(got) != 0 {
		t.Fatalf("second cut got %d txs, want 0", len(got))
	}

	// Epoch 0 commits txs 1 and 2 (say tx 3's slot lost the subset).
	m.MarkCommitted([]txKey{txDigest(tx(1)), txDigest(tx(2))}, 0)
	m.Requeue(0)
	if m.Len() != 1 || m.PendingBytes() != 40 {
		t.Fatalf("after requeue: len=%d pending=%dB, want 1/40", m.Len(), m.PendingBytes())
	}
	if m.Add(tx(1), 4*time.Second) {
		t.Error("committed duplicate accepted")
	}
	if got := m.Cut(1, 5*time.Second); len(got) != 1 {
		t.Fatalf("requeued tx not cuttable: got %d", len(got))
	}
}

func TestMempoolSharding(t *testing.T) {
	cfg := MempoolConfig{
		TargetBatchBytes: 40, MaxBatchBytes: 400,
		MaxTxAge: 10 * time.Second, ReproposeAge: time.Minute,
		Shard: 0, Shards: 2,
	}
	m := NewMempool(cfg)
	mine := func(i byte) []byte { return []byte{2 * i, i, 10, 11, 12, 13, 14, 15, 16, 17} }    // key[0] even
	other := func(i byte) []byte { return []byte{2*i + 1, i, 20, 21, 22, 23, 24, 25, 26, 27} } // key[0] odd
	// Transaction assignment follows the digest, not the payload: find
	// payloads that land on each shard.
	var ours, theirs [][]byte
	for i := byte(0); i < 40 && (len(ours) < 4 || len(theirs) < 4); i++ {
		for _, tx := range [][]byte{mine(i), other(i)} {
			if int(txDigest(tx)[0])%2 == 0 {
				ours = append(ours, tx)
			} else {
				theirs = append(theirs, tx)
			}
		}
	}
	for _, tx := range theirs[:4] {
		m.Add(tx, 0)
	}
	if m.Ready(5 * time.Second) {
		t.Error("ready on unassigned traffic alone")
	}
	for _, tx := range ours[:4] {
		m.Add(tx, time.Second)
	}
	if !m.Ready(5 * time.Second) {
		t.Error("not ready with assigned bytes past target")
	}
	cut := m.Cut(0, 5*time.Second)
	for _, tx := range cut {
		if int(txDigest(tx)[0])%2 != 0 {
			t.Fatalf("cut took unassigned tx %v before ReproposeAge", tx)
		}
	}
	if len(cut) != 4 {
		t.Fatalf("cut %d assigned txs, want 4", len(cut))
	}
	// Past ReproposeAge the crash fallback opens the rest to everyone.
	if got := m.Cut(1, 2*time.Minute); len(got) != 4 {
		t.Fatalf("fallback cut %d txs, want 4 unassigned", len(got))
	}
}

func TestMempoolReproposeAgeFallback(t *testing.T) {
	// A transaction assigned to another shard is untouchable until
	// ReproposeAge, then becomes proposable by everyone — the crash
	// fallback that keeps a dead shard's traffic from queueing forever.
	cfg := MempoolConfig{
		TargetBatchBytes: 40, MaxBatchBytes: 400,
		MaxTxAge: 10 * time.Second, ReproposeAge: time.Minute,
		Shard: 0, Shards: 2,
	}
	m := NewMempool(cfg)
	var other []byte
	for i := byte(0); ; i++ {
		tx := []byte{i, 1, 2, 3, 4, 5, 6, 7, 8, 9}
		if int(txDigest(tx)[0])%2 == 1 {
			other = tx
			break
		}
	}
	if !m.Add(other, 0) {
		t.Fatal("fresh add rejected")
	}
	if m.Ready(30 * time.Second) {
		t.Error("ready on unassigned traffic before ReproposeAge")
	}
	if got := m.Cut(0, 30*time.Second); len(got) != 0 {
		t.Fatalf("cut took %d unassigned txs before ReproposeAge", len(got))
	}
	// The age deadline for the unassigned class is enq + ReproposeAge.
	if at, ok := m.AgeDeadline(); !ok || at != time.Minute {
		t.Fatalf("AgeDeadline = %v/%v, want 1m0s/true", at, ok)
	}
	if !m.Ready(time.Minute) {
		t.Error("not ready at ReproposeAge")
	}
	if got := m.Cut(1, time.Minute); len(got) != 1 {
		t.Fatalf("fallback cut %d txs, want 1", len(got))
	}
}

func TestMempoolShardOverlapCommitDedup(t *testing.T) {
	// Two shards repropose the same aged transaction; when one copy
	// commits, the other shard's pool must drop its pooled (even
	// in-flight) copy and refuse re-admission — the dedup that makes the
	// ReproposeAge overlap harmless.
	cfg := MempoolConfig{
		TargetBatchBytes: 40, MaxBatchBytes: 400,
		MaxTxAge: 10 * time.Second, ReproposeAge: time.Minute,
		Shard: 1, Shards: 2,
	}
	m := NewMempool(cfg)
	var other []byte // assigned to shard 0, i.e. NOT ours
	for i := byte(0); ; i++ {
		tx := []byte{i, 9, 8, 7, 6, 5, 4, 3, 2, 1}
		if int(txDigest(tx)[0])%2 == 0 {
			other = tx
			break
		}
	}
	m.Add(other, 0)
	// Our shard reproposes it after the fallback age...
	if got := m.Cut(5, 2*time.Minute); len(got) != 1 {
		t.Fatalf("fallback cut %d txs, want 1", len(got))
	}
	// ...but shard 0's copy commits first, in epoch 4.
	m.MarkCommitted([]txKey{txDigest(other)}, 4)
	if m.Len() != 0 || m.PoolBytes() != 0 {
		t.Fatalf("in-flight copy survived the commit: len=%d pool=%dB", m.Len(), m.PoolBytes())
	}
	// Requeue of our epoch must not resurrect it.
	m.Requeue(5)
	if m.PendingBytes() != 0 {
		t.Fatalf("requeue resurrected a committed tx: %dB pending", m.PendingBytes())
	}
	if m.Add(other, 3*time.Minute) {
		t.Error("committed duplicate re-admitted")
	}
}

func TestMempoolAdmissionCap(t *testing.T) {
	cfg := MempoolConfig{
		TargetBatchBytes: 40, MaxBatchBytes: 80,
		MaxTxAge: 10 * time.Second, MaxPendingBytes: 100,
	}
	m := NewMempool(cfg)
	tx := func(b byte) []byte { tx := make([]byte, 40); tx[0] = b; return tx }

	if !m.Add(tx(1), 0) || !m.Add(tx(2), 0) {
		t.Fatal("adds under the cap rejected")
	}
	// 80/100 bytes pooled: a 40-byte add must be refused and counted.
	if m.Add(tx(3), time.Second) {
		t.Error("add past MaxPendingBytes accepted")
	}
	if m.RejectedFull() != 1 {
		t.Fatalf("RejectedFull = %d, want 1", m.RejectedFull())
	}
	// A duplicate of a pooled tx is a duplicate, not a cap rejection.
	if m.Add(tx(1), time.Second) || m.RejectedFull() != 1 || m.Duplicates() != 1 {
		t.Fatalf("duplicate misclassified: rejectedFull=%d duplicates=%d", m.RejectedFull(), m.Duplicates())
	}
	// In-flight bytes still count against the cap: cutting frees nothing.
	if got := m.Cut(0, 2*time.Second); len(got) != 2 {
		t.Fatalf("cut %d txs, want 2", len(got))
	}
	if m.PoolBytes() != 80 {
		t.Fatalf("PoolBytes = %d after cut, want 80 (in-flight still pooled)", m.PoolBytes())
	}
	if m.Add(tx(4), 3*time.Second) {
		t.Error("cap ignored in-flight bytes")
	}
	if m.RejectedFull() != 2 {
		t.Fatalf("RejectedFull = %d, want 2", m.RejectedFull())
	}
	// Commit frees the space; admission resumes.
	m.MarkCommitted([]txKey{txDigest(tx(1)), txDigest(tx(2))}, 0)
	m.Requeue(0)
	if m.PoolBytes() != 0 {
		t.Fatalf("PoolBytes = %d after commit, want 0", m.PoolBytes())
	}
	if !m.Add(tx(5), 4*time.Second) {
		t.Error("add rejected after commit freed the pool")
	}
	if m.PeakPoolBytes() != 80 {
		t.Fatalf("PeakPoolBytes = %d, want 80", m.PeakPoolBytes())
	}
	// The cap is opt-in: a zero-cap pool admits the same sequence freely.
	free := NewMempool(MempoolConfig{TargetBatchBytes: 40, MaxBatchBytes: 80, MaxTxAge: 10 * time.Second})
	for i := byte(0); i < 10; i++ {
		if !free.Add(tx(i), 0) {
			t.Fatal("unbounded pool refused an admission")
		}
	}
	if free.RejectedFull() != 0 {
		t.Errorf("unbounded pool counted %d cap rejections", free.RejectedFull())
	}
}

func TestMempoolGCHorizon(t *testing.T) {
	m := NewMempool(MempoolConfig{DedupHorizon: 3})
	tx := []byte("gc-me")
	m.MarkCommitted([]txKey{txDigest(tx)}, 0)
	m.GC(2)
	if !m.WasCommitted(txDigest(tx)) {
		t.Fatal("digest dropped inside horizon")
	}
	if m.Add(tx, 0) {
		t.Error("duplicate accepted inside horizon")
	}
	m.GC(3)
	if m.WasCommitted(txDigest(tx)) {
		t.Fatal("digest survived past horizon")
	}
	if !m.Add(tx, 0) {
		t.Error("re-add rejected after horizon GC")
	}
	if m.CommittedSize() != 0 {
		t.Errorf("committed memory %d, want 0", m.CommittedSize())
	}
}

func TestBatchCodecRoundtrip(t *testing.T) {
	for _, txs := range [][][]byte{nil, {[]byte("a")}, {[]byte("one"), []byte(""), []byte("three")}} {
		enc := EncodeBatch(txs)
		got, err := DecodeBatch(enc)
		if err != nil {
			t.Fatalf("decode(%q): %v", enc, err)
		}
		if len(got) != len(txs) {
			t.Fatalf("roundtrip count %d != %d", len(got), len(txs))
		}
		for i := range txs {
			if string(got[i]) != string(txs[i]) {
				t.Fatalf("tx %d mismatch", i)
			}
		}
	}
	for _, bad := range [][]byte{{}, {0}, {0, 1}, {0, 1, 0, 5, 'x'}, append(EncodeBatch([][]byte{[]byte("t")}), 0)} {
		if _, err := DecodeBatch(bad); err == nil {
			t.Errorf("malformed batch %v accepted", bad)
		}
	}
}
