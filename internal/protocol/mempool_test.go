package protocol

import (
	"testing"
	"time"
)

// --- Mempool unit tests -------------------------------------------------

func TestMempoolDedupAndPolicy(t *testing.T) {
	cfg := MempoolConfig{TargetBatchBytes: 100, MaxBatchBytes: 120, MaxTxAge: 10 * time.Second, DedupHorizon: 2}
	m := NewMempool(cfg)
	tx := func(b byte) []byte { tx := make([]byte, 40); tx[0] = b; return tx }

	if !m.Add(tx(1), 0) || !m.Add(tx(2), time.Second) {
		t.Fatal("fresh adds rejected")
	}
	if m.Add(tx(1), 2*time.Second) {
		t.Error("pending duplicate accepted")
	}
	if m.Ready(2 * time.Second) {
		t.Error("ready below size target and age limit")
	}
	if !m.Ready(10 * time.Second) {
		t.Error("not ready past MaxTxAge")
	}
	m.Add(tx(3), 2*time.Second)
	if !m.Ready(3 * time.Second) {
		t.Error("not ready past TargetBatchBytes")
	}

	cut := m.Cut(0, 3*time.Second)
	if len(cut) != 3 {
		t.Fatalf("cut %d txs, want 3 (120B cap)", len(cut))
	}
	if m.Ready(3 * time.Second) {
		t.Error("ready while everything is in flight")
	}
	// In-flight txs are skipped by later cuts.
	if got := m.Cut(1, 3*time.Second); len(got) != 0 {
		t.Fatalf("second cut got %d txs, want 0", len(got))
	}

	// Epoch 0 commits txs 1 and 2 (say tx 3's slot lost the subset).
	m.MarkCommitted([]txKey{txDigest(tx(1)), txDigest(tx(2))}, 0)
	m.Requeue(0)
	if m.Len() != 1 || m.PendingBytes() != 40 {
		t.Fatalf("after requeue: len=%d pending=%dB, want 1/40", m.Len(), m.PendingBytes())
	}
	if m.Add(tx(1), 4*time.Second) {
		t.Error("committed duplicate accepted")
	}
	if got := m.Cut(1, 5*time.Second); len(got) != 1 {
		t.Fatalf("requeued tx not cuttable: got %d", len(got))
	}
}

func TestMempoolSharding(t *testing.T) {
	cfg := MempoolConfig{
		TargetBatchBytes: 40, MaxBatchBytes: 400,
		MaxTxAge: 10 * time.Second, ReproposeAge: time.Minute,
		Shard: 0, Shards: 2,
	}
	m := NewMempool(cfg)
	mine := func(i byte) []byte { return []byte{2 * i, i, 10, 11, 12, 13, 14, 15, 16, 17} }    // key[0] even
	other := func(i byte) []byte { return []byte{2*i + 1, i, 20, 21, 22, 23, 24, 25, 26, 27} } // key[0] odd
	// Transaction assignment follows the digest, not the payload: find
	// payloads that land on each shard.
	var ours, theirs [][]byte
	for i := byte(0); i < 40 && (len(ours) < 4 || len(theirs) < 4); i++ {
		for _, tx := range [][]byte{mine(i), other(i)} {
			if int(txDigest(tx)[0])%2 == 0 {
				ours = append(ours, tx)
			} else {
				theirs = append(theirs, tx)
			}
		}
	}
	for _, tx := range theirs[:4] {
		m.Add(tx, 0)
	}
	if m.Ready(5 * time.Second) {
		t.Error("ready on unassigned traffic alone")
	}
	for _, tx := range ours[:4] {
		m.Add(tx, time.Second)
	}
	if !m.Ready(5 * time.Second) {
		t.Error("not ready with assigned bytes past target")
	}
	cut := m.Cut(0, 5*time.Second)
	for _, tx := range cut {
		if int(txDigest(tx)[0])%2 != 0 {
			t.Fatalf("cut took unassigned tx %v before ReproposeAge", tx)
		}
	}
	if len(cut) != 4 {
		t.Fatalf("cut %d assigned txs, want 4", len(cut))
	}
	// Past ReproposeAge the crash fallback opens the rest to everyone.
	if got := m.Cut(1, 2*time.Minute); len(got) != 4 {
		t.Fatalf("fallback cut %d txs, want 4 unassigned", len(got))
	}
}

func TestMempoolGCHorizon(t *testing.T) {
	m := NewMempool(MempoolConfig{DedupHorizon: 3})
	tx := []byte("gc-me")
	m.MarkCommitted([]txKey{txDigest(tx)}, 0)
	m.GC(2)
	if !m.WasCommitted(txDigest(tx)) {
		t.Fatal("digest dropped inside horizon")
	}
	if m.Add(tx, 0) {
		t.Error("duplicate accepted inside horizon")
	}
	m.GC(3)
	if m.WasCommitted(txDigest(tx)) {
		t.Fatal("digest survived past horizon")
	}
	if !m.Add(tx, 0) {
		t.Error("re-add rejected after horizon GC")
	}
	if m.CommittedSize() != 0 {
		t.Errorf("committed memory %d, want 0", m.CommittedSize())
	}
}

func TestBatchCodecRoundtrip(t *testing.T) {
	for _, txs := range [][][]byte{nil, {[]byte("a")}, {[]byte("one"), []byte(""), []byte("three")}} {
		enc := EncodeBatch(txs)
		got, err := DecodeBatch(enc)
		if err != nil {
			t.Fatalf("decode(%q): %v", enc, err)
		}
		if len(got) != len(txs) {
			t.Fatalf("roundtrip count %d != %d", len(got), len(txs))
		}
		for i := range txs {
			if string(got[i]) != string(txs[i]) {
				t.Fatalf("tx %d mismatch", i)
			}
		}
	}
	for _, bad := range [][]byte{{}, {0}, {0, 1}, {0, 1, 0, 5, 'x'}, append(EncodeBatch([][]byte{[]byte("t")}), 0)} {
		if _, err := DecodeBatch(bad); err == nil {
			t.Errorf("malformed batch %v accepted", bad)
		}
	}
}
