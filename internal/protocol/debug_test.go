package protocol

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/component"
	"repro/internal/crypto"
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/wireless"
)

// TestDebugHoneyBadgerTrace is a diagnostic harness: it runs HB-SC with
// direct access to component internals and dumps progress when stuck.
func TestDebugHoneyBadgerTrace(t *testing.T) {
	opts := quickOpts(HoneyBadger, CoinSig, true, 1)
	sched := sim.New(opts.Seed)
	ch := wireless.NewChannel(sched, opts.Net)
	suites, err := crypto.Deal(opts.N, opts.F, opts.Crypto, rand.New(rand.NewSource(opts.Seed^0x5eed)))
	if err != nil {
		t.Fatal(err)
	}
	ncfg := node.Config{Transport: opts.Transport, Batched: opts.Batched, Seed: opts.Seed}
	nodes := make([]*runNode, opts.N)
	insts := make([]*ACS, opts.N)
	for i := 0; i < opts.N; i++ {
		nodes[i] = &runNode{Node: node.New(sched, ch, wireless.NodeID(i), suites[i], ncfg), idx: i}
	}
	for i, n := range nodes {
		n.Transport().SetEpoch(0)
		env := &component.Env{
			N: opts.N, F: opts.F, Me: i, Epoch: 0,
			Suite: n.Suite, T: n.Transport(), CPU: n.CPU, Sched: sched, Rand: n.Rand,
		}
		i := i
		insts[i] = NewACS(env, ACSOptions{Coin: CoinSig, Batched: true, Encrypt: true,
			OnDecide: func() { nodes[i].done = true }})
		prop := make([]byte, 64)
		binary.BigEndian.PutUint32(prop, uint32(i))
		insts[i].Start(prop)
	}
	deadline := 30 * time.Minute
	for sched.Now() < deadline && !allHonestDone(nodes) {
		if !sched.Step() {
			break
		}
	}
	if allHonestDone(nodes) {
		t.Logf("completed at %v", sched.Now())
		return
	}
	for i, a := range insts {
		decs := ""
		for s := 0; s < 4; s++ {
			if v, ok := a.decisions[s]; ok {
				decs += fmt.Sprintf("%d:%v ", s, v)
			} else {
				decs += fmt.Sprintf("%d:? ", s)
			}
		}
		t.Logf("node %d: rbcDelivered=%d abaStarted=%v decisions=[%s] plains=%d outputs=%v done=%v",
			i, a.rbc.DeliveredCount(), a.abaStarted, decs, len(a.plains), a.outputs != nil, nodes[i].done)
	}
	t.Fatalf("stuck at %v", sched.Now())
}
