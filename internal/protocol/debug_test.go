package protocol

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/component"
	"repro/internal/crypto"
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/wireless"
)

// TestDebugHoneyBadgerTrace is a diagnostic harness: it runs HB-SC with
// direct access to component internals and dumps progress when stuck.
func TestDebugHoneyBadgerTrace(t *testing.T) {
	const (
		n, f       = 4, 1
		seed int64 = 1
	)
	net := wireless.DefaultConfig()
	net.LossProb = 0
	sched := sim.New(seed)
	ch := wireless.NewChannel(sched, net)
	suites, err := crypto.Deal(n, f, crypto.LightConfig(), rand.New(rand.NewSource(seed^0x5eed)))
	if err != nil {
		t.Fatal(err)
	}
	ncfg := node.Config{Batched: true, Seed: seed}
	nodes := make([]*node.Node, n)
	done := make([]bool, n)
	insts := make([]*ACS, n)
	for i := 0; i < n; i++ {
		nodes[i] = node.New(sched, ch, wireless.NodeID(i), suites[i], ncfg)
	}
	for i, nd := range nodes {
		nd.Transport().SetEpoch(0)
		env := &component.Env{
			N: n, F: f, Me: i, Epoch: 0,
			Suite: nd.Suite, T: nd.Transport(), CPU: nd.CPU, Sched: sched, Rand: nd.Rand,
		}
		i := i
		insts[i] = NewACS(env, ACSOptions{Coin: CoinSig, Batched: true, Encrypt: true,
			OnDecide: func() { done[i] = true }})
		prop := make([]byte, 64)
		binary.BigEndian.PutUint32(prop, uint32(i))
		insts[i].Start(prop)
	}
	allDone := func() bool {
		for _, d := range done {
			if !d {
				return false
			}
		}
		return true
	}
	deadline := 30 * time.Minute
	for sched.Now() < deadline && !allDone() {
		if !sched.Step() {
			break
		}
	}
	if allDone() {
		t.Logf("completed at %v", sched.Now())
		return
	}
	for i, a := range insts {
		decs := ""
		for s := 0; s < 4; s++ {
			if v, ok := a.decisions[s]; ok {
				decs += fmt.Sprintf("%d:%v ", s, v)
			} else {
				decs += fmt.Sprintf("%d:? ", s)
			}
		}
		t.Logf("node %d: rbcDelivered=%d abaStarted=%v decisions=[%s] plains=%d outputs=%v done=%v",
			i, a.rbc.DeliveredCount(), a.abaStarted, decs, len(a.plains), a.outputs != nil, done[i])
	}
	t.Fatalf("stuck at %v", sched.Now())
}
