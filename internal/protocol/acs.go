// Package protocol assembles the paper's five asynchronous BFT consensus
// protocols from the batched components:
//
//   - HoneyBadgerBFT-LC / HoneyBadgerBFT-SC: N parallel RBC + N parallel
//     ABA (Bracha local-coin or Cachin shared-coin), Fig. 7a;
//   - BEAT (BEAT0): HoneyBadgerBFT with threshold coin flipping and
//     threshold encryption;
//   - Dumbo-LC / Dumbo-SC (Dumbo2): N parallel PRBC, two sets of N parallel
//     CBC, serial ABA, Fig. 7b;
//
// in both ConsensusBatcher and baseline transport modes, single-hop and
// multi-hop (clustered) deployments.
package protocol

import (
	"fmt"
	"time"

	"repro/internal/component"
)

// Instance is one node's consensus engine for one epoch. Outputs is nil
// until the epoch decides; afterwards it holds the accepted proposals
// sorted by proposer slot.
type Instance interface {
	// Start submits this node's proposal for the epoch.
	Start(proposal []byte)
	// Done reports whether the epoch has decided locally.
	Done() bool
	// Outputs returns the accepted proposals (by slot; nil entries for
	// rejected slots) once Done.
	Outputs() [][]byte
}

// CoinKind selects the ABA randomness implementation.
type CoinKind string

// The paper's three ABA variants.
const (
	CoinLocal CoinKind = "LC" // Bracha's ABA, local coin
	CoinSig   CoinKind = "SC" // Cachin's ABA, threshold-signature coin
	CoinFlip  CoinKind = "CP" // BEAT's ABA, threshold coin flipping
)

// binaryAgreement abstracts the two ABA components behind one interface.
type binaryAgreement interface {
	Input(slot int, v bool)
	Decided(slot int) *bool
	DecidedCount() int
}

// newABA builds the ABA matching the coin kind. Batched deployments share
// one coin per round across parallel instances (Sec. V-A). catchUp opts
// into the common-coin ABA's round catch-up replay (see
// component.CachinOptions.RoundCatchUp) — required by serial one-at-a-time
// schedules like Alea's, a no-op for Bracha's local-coin ABA.
func newABA(env *component.Env, slots int, coin CoinKind, shared, catchUp bool, onDecide func(int, bool)) binaryAgreement {
	switch coin {
	case CoinLocal:
		return component.NewBrachaABA(env, component.BrachaOptions{
			Slots:    slots,
			OnDecide: onDecide,
		})
	case CoinSig:
		return component.NewCachinABA(env, component.CachinOptions{
			Slots:        slots,
			SharedCoin:   shared,
			RoundCatchUp: catchUp,
			Coin:         &component.SigCoin{PK: env.Suite.TSLow, Share: env.Suite.TSLowShare, Env: env},
			OnDecide:     onDecide,
		})
	case CoinFlip:
		return component.NewCachinABA(env, component.CachinOptions{
			Slots:        slots,
			SharedCoin:   shared,
			RoundCatchUp: catchUp,
			Coin:         &component.FlipCoin{PK: env.Suite.TC, Share: env.Suite.TCShare, Env: env},
			OnDecide:     onDecide,
		})
	default:
		panic(fmt.Sprintf("protocol: unknown coin kind %q", coin))
	}
}

// ACS is HoneyBadgerBFT's (and BEAT's) asynchronous common subset: N
// parallel RBCs feed N parallel ABAs; the union of 1-decided slots is the
// epoch output. Optional threshold encryption adds the decryption-share
// exchange after the subset is fixed.
type ACS struct {
	env     *component.Env
	rbc     *component.RBC
	aba     binaryAgreement
	dec     *component.Decryptor
	encrypt bool

	abaStarted bool
	delivered  map[int]bool
	decisions  map[int]bool
	plains     map[int][]byte
	outputs    [][]byte
	onDecide   func()
}

// ACSOptions configures an ACS instance.
type ACSOptions struct {
	Coin     CoinKind
	Batched  bool // shared coin across parallel ABAs (wireless rule)
	Encrypt  bool // threshold-encrypt proposals (HB/BEAT)
	OnDecide func()
}

// NewACS builds the instance and registers its components.
func NewACS(env *component.Env, opts ACSOptions) *ACS {
	a := &ACS{
		env:       env,
		encrypt:   opts.Encrypt,
		delivered: make(map[int]bool),
		decisions: make(map[int]bool),
		plains:    make(map[int][]byte),
		onDecide:  opts.OnDecide,
	}
	a.rbc = component.NewRBC(env, component.RBCOptions{
		Slots:     env.N,
		OnDeliver: a.onRBCDeliver,
	})
	a.aba = newABA(env, env.N, opts.Coin, opts.Batched, false, a.onABADecide)
	if opts.Encrypt {
		a.dec = component.NewDecryptor(env, env.N, a.onPlain)
	}
	return a
}

var _ Instance = (*ACS)(nil)

// Start implements Instance.
func (a *ACS) Start(proposal []byte) {
	if !a.encrypt {
		a.rbc.Propose(a.env.Me, proposal)
		return
	}
	env := a.env
	env.Exec(env.Suite.Cost.TEEncrypt, func() {
		ct, err := env.Suite.TE.Encrypt(proposal, env.Rand)
		if err != nil {
			panic(fmt.Sprintf("protocol: encrypting proposal: %v", err))
		}
		a.rbc.Propose(env.Me, component.EncodeCiphertext(ct))
	})
}

// Done implements Instance.
func (a *ACS) Done() bool { return a.outputs != nil }

// Outputs implements Instance.
func (a *ACS) Outputs() [][]byte { return a.outputs }

// onRBCDeliver applies the wireless ABA-start rule of Sec. V-A: once 2f+1
// RBCs complete, ALL ABA instances start simultaneously — 1 for the
// completed set, 0 for the rest — so Byzantine nodes cannot exploit early
// coin access, and the fastest 2f+1 proposals are favored.
func (a *ACS) onRBCDeliver(slot int, _ []byte) {
	a.delivered[slot] = true
	if !a.abaStarted && len(a.delivered) >= a.env.Quorum() {
		a.abaStarted = true
		for s := 0; s < a.env.N; s++ {
			a.aba.Input(s, a.delivered[s])
		}
	}
	a.maybeFinish()
}

// abaRepairGrace is how long an accepted slot's RBC may stay undelivered
// after its ABA decides before the node requests an explicit repair. In
// steady state totality closes the gap by itself; the explicit request is
// the late-joiner path (SMR crash recovery), where peers pruned their vote
// intents long ago and only a repair request brings them back on the air.
const abaRepairGrace = 8 * time.Second

func (a *ACS) onABADecide(slot int, v bool) {
	a.decisions[slot] = v
	if v && !a.delivered[slot] {
		a.env.Sched.PostAfter(abaRepairGrace, func() {
			if !a.delivered[slot] {
				a.rbc.RequestRepair(slot)
			}
		})
	}
	a.maybeFinish()
}

func (a *ACS) onPlain(slot int, plain []byte) {
	a.plains[slot] = plain
	a.maybeFinish()
}

// maybeFinish assembles the epoch output once every ABA has decided, every
// accepted slot's RBC has delivered (totality guarantees it will), and —
// with encryption — every accepted ciphertext has been decrypted.
func (a *ACS) maybeFinish() {
	if a.outputs != nil || len(a.decisions) < a.env.N {
		return
	}
	for slot := 0; slot < a.env.N; slot++ {
		v := a.decisions[slot]
		if !v {
			continue
		}
		if !a.delivered[slot] {
			return // RBC totality will deliver it; NACK repair is running
		}
		if a.encrypt {
			if _, ok := a.plains[slot]; !ok {
				ct, err := component.DecodeCiphertext(a.rbc.Value(slot))
				if err != nil {
					// Malformed ciphertext from a Byzantine proposer: the
					// slot contributes nothing.
					a.env.Reject()
					a.plains[slot] = nil
					continue
				}
				a.dec.SubmitLate(slot, ct)
				return
			}
		}
	}
	outputs := make([][]byte, a.env.N)
	for slot := 0; slot < a.env.N; slot++ {
		v := a.decisions[slot]
		if !v {
			continue
		}
		if a.encrypt {
			outputs[slot] = a.plains[slot]
		} else {
			outputs[slot] = a.rbc.Value(slot)
		}
	}
	a.outputs = outputs
	if a.onDecide != nil {
		a.onDecide()
	}
}
