package component

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/packet"
)

// TestRBCEquivocatingLeader has the leader broadcast two different
// proposals for the same slot (the strongest equivocation a broadcast
// channel admits: conflicting frames at different times). Honest nodes
// must never deliver conflicting values.
func TestRBCEquivocatingLeader(t *testing.T) {
	tn := newTestNet(t, 21, 0, true)
	rbcs := make([]*RBC, 4)
	for i, env := range tn.envs {
		rbcs[i] = NewRBC(env, RBCOptions{Slots: 4})
	}
	// Leader 0 equivocates: proposes A, then immediately overwrites its
	// INITIAL intent with B (so different receivers may assemble either).
	rbcs[0].Propose(0, []byte("value-A"))
	tn.envs[0].T.Update(core.Intent{
		IntentKey: core.IntentKey{Kind: packet.KindRBC, Phase: packet.PhaseInitial, Slot: 0},
		Flags:     1,
		Data:      []byte("value-B"),
	})
	// Honest proposers for the other slots.
	for i := 1; i < 4; i++ {
		rbcs[i].Propose(i, []byte{byte(i)})
	}
	tn.run(t, 30*time.Minute, func() bool {
		// Wait for the honest slots everywhere; slot 0 may or may not
		// deliver depending on which value wins the quorum.
		for i := 0; i < 4; i++ {
			for s := 1; s < 4; s++ {
				if !rbcs[i].Delivered(s) {
					return false
				}
			}
		}
		return true
	})
	// Agreement on slot 0: any two nodes that delivered must agree.
	var ref []byte
	for i := 0; i < 4; i++ {
		if !rbcs[i].Delivered(0) {
			continue
		}
		v := rbcs[i].Value(0)
		if ref == nil {
			ref = v
			continue
		}
		if !bytes.Equal(ref, v) {
			t.Fatalf("equivocation broke agreement: %q vs %q", ref, v)
		}
	}
}

// byzantineShareInjector corrupts PRBC DONE shares from node 3.
func TestPRBCByzantineShareRejected(t *testing.T) {
	tn := newTestNet(t, 22, 0, true)
	prbcs := make([]*PRBC, 4)
	for i, env := range tn.envs {
		prbcs[i] = NewPRBC(env, PRBCOptions{Slots: 4})
	}
	for i := range tn.envs {
		prbcs[i].Propose(i, []byte(fmt.Sprintf("p-%d", i)))
	}
	// Node 3 additionally injects garbage DONE shares for every slot under
	// its own sub id — they must be discarded by share verification, and
	// proofs must still form from the honest shares.
	for s := 0; s < 4; s++ {
		tn.envs[3].T.Update(core.Intent{
			IntentKey: core.IntentKey{Kind: packet.KindPRBC, Phase: packet.PhaseDone, Slot: uint8(s), Sub: 3},
			Data:      bytes.Repeat([]byte{0xFF}, 90),
		})
	}
	tn.run(t, 30*time.Minute, func() bool {
		for i := 0; i < 3; i++ { // honest nodes
			if prbcs[i].ProvenCount() < 4 {
				return false
			}
		}
		return true
	})
	for slot := 0; slot < 4; slot++ {
		h := HashValue(prbcs[0].RBC().Value(slot))
		if err := prbcs[0].VerifyProof(slot, h, prbcs[0].Proof(slot)); err != nil {
			t.Errorf("slot %d proof invalid despite honest quorum: %v", slot, err)
		}
	}
}

// TestCachinABAByzantineCoinShares injects garbage coin shares; agreement
// and termination must be unaffected (DLEQ/proof verification drops them).
func TestCachinABAByzantineCoinShares(t *testing.T) {
	tn := newTestNet(t, 23, 0, true)
	abas := make([]*CachinABA, 4)
	for i, env := range tn.envs {
		env := env
		abas[i] = NewCachinABA(env, CachinOptions{
			Slots:      2,
			SharedCoin: true,
			Coin:       &SigCoin{PK: env.Suite.TSLow, Share: env.Suite.TSLowShare, Env: env},
		})
	}
	// Node 3 spams forged coin shares for rounds 1..3.
	for r := uint16(1); r <= 3; r++ {
		tn.envs[3].T.Update(core.Intent{
			IntentKey: core.IntentKey{Kind: packet.KindABA, Phase: packet.PhaseShare, Slot: 0xFF, Sub: 3, Round: r},
			Data:      bytes.Repeat([]byte{0xAB}, 100),
		})
	}
	for i := range tn.envs {
		abas[i].Input(0, i%2 == 0)
		abas[i].Input(1, true)
	}
	tn.run(t, 60*time.Minute, func() bool {
		for _, a := range abas {
			if a.DecidedCount() < 2 {
				return false
			}
		}
		return true
	})
	for slot := 0; slot < 2; slot++ {
		want := *abas[0].Decided(slot)
		for i := 1; i < 4; i++ {
			if *abas[i].Decided(slot) != want {
				t.Fatalf("agreement violated on slot %d with Byzantine coin shares", slot)
			}
		}
	}
	if v := abas[0].Decided(1); v == nil || !*v {
		t.Error("unanimous-1 instance decided 0 (validity)")
	}
}

// TestForgedFrameRejectedByRealAuth shows real signature verification
// drops frames whose signature does not match the claimed sender.
func TestForgedFrameRejectedByRealAuth(t *testing.T) {
	tn := newTestNet(t, 24, 0, true)
	// Swap in real authentication on the receiving side and a mismatched
	// signer on the sending side.
	var peers []struct{}
	_ = peers
	rbc1 := NewRBC(tn.envs[1], RBCOptions{Slots: 4})
	_ = rbc1
	// Build a frame signed by node 2's key but claiming sender 0.
	auth := &core.RealAuth{
		Signer: tn.envs[2].Suite.Signer,
		Peers:  tn.envs[2].Suite.Verify,
	}
	frame := &packet.Frame{
		Sender:  0, // lie
		Session: 0,
		Epoch:   0,
		Sections: []packet.Section{{
			Kind: packet.KindRBC, Phase: packet.PhaseInitial,
			Entries: []packet.Entry{{Slot: 0, Flags: 1, Data: []byte("forged")}},
		}},
	}
	body, err := frame.AppendBody(nil)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := auth.Sign(body)
	if err != nil {
		t.Fatal(err)
	}
	if err := auth.Verify(0, body, sig); err == nil {
		t.Fatal("forged frame (signed by node 2, claiming node 0) verified")
	}
	if err := auth.Verify(2, body, sig); err != nil {
		t.Fatalf("honest verification failed: %v", err)
	}
}
