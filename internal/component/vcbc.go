package component

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/crypto/threshsig"
	"repro/internal/packet"
)

// VCBC runs N parallel verifiable consistent-broadcast instances, the
// dissemination half of Alea-BFT's broadcast/agreement split: sender i
// broadcasts its batch into queue i (INITIAL), every node returns a
// 2f+1-threshold signature share over it (ECHO), and the sender combines
// and broadcasts the quorum certificate (FINISH). The "verifiable" part
// beyond CBC is the transferable proof: Proof packs (slot, hash,
// certificate) into a self-contained blob any third party can check with
// VerifyProof, which is what lets queue heads move between nodes after
// the agreement phase accepts a queue this node never saw delivered.
type VCBC struct {
	env   *Env
	frag  int
	slots []*vcbcSlot

	onDeliver func(slot int, value []byte, cert []byte)

	finDone packet.BitSet
}

type vcbcSlot struct {
	value     []byte
	frags     [][]byte
	fragTotal int
	assembled bool

	sentShare bool
	shares    map[int]*threshsig.SigShare // sender only
	combining bool

	cert      []byte
	certHash  Hash8
	delivered bool

	needRepair bool
	repairAt   time.Duration
}

// VCBCOptions configures a VCBC component.
type VCBCOptions struct {
	Slots     int
	FragSize  int
	OnDeliver func(slot int, value []byte, cert []byte)
}

// NewVCBC creates the component and registers it on the transport. Slot i
// is always led by node i: one broadcast queue per sender.
func NewVCBC(env *Env, opts VCBCOptions) *VCBC {
	if opts.FragSize <= 0 {
		opts.FragSize = 160
	}
	v := &VCBC{
		env:       env,
		frag:      opts.FragSize,
		onDeliver: opts.OnDeliver,
		finDone:   packet.NewBitSet(opts.Slots),
	}
	for i := 0; i < opts.Slots; i++ {
		v.slots = append(v.slots, &vcbcSlot{shares: make(map[int]*threshsig.SigShare)})
	}
	env.T.Register(packet.KindVCBC, v)
	return v
}

// leader returns the slot's broadcaster (slot i is queue i, led by node i).
func (v *VCBC) leader(slot int) int { return slot % v.env.N }

// Delivered reports whether a slot completed.
func (v *VCBC) Delivered(slot int) bool { return v.slots[slot].delivered }

// DeliveredCount returns the number of completed slots.
func (v *VCBC) DeliveredCount() int {
	n := 0
	for _, s := range v.slots {
		if s.delivered {
			n++
		}
	}
	return n
}

// Value returns a delivered slot's value (nil before delivery).
func (v *VCBC) Value(slot int) []byte {
	if !v.slots[slot].delivered {
		return nil
	}
	return v.slots[slot].value
}

// Proof returns a delivered slot's transferable proof — the (slot, hash,
// certificate) blob VerifyProof checks — or nil before delivery.
func (v *VCBC) Proof(slot int) []byte {
	s := v.slots[slot]
	if !s.delivered {
		return nil
	}
	return EncodeVCBCProof(VCBCProof{Slot: uint8(slot), Hash: s.certHash, Cert: s.cert})
}

// VerifyProof checks a transferable proof against this component's
// epoch identity: the blob must decode, name the given slot, and carry a
// 2f+1-threshold certificate over that slot's share message. Pure
// verification — callers on the protocol path charge Suite.Cost.TSVerify
// around it (the Dumbo proof-vector idiom).
func (v *VCBC) VerifyProof(slot int, raw []byte) error {
	p, err := DecodeVCBCProof(raw)
	if err != nil {
		return err
	}
	if int(p.Slot) != slot {
		return fmt.Errorf("component: vcbc proof names slot %d, want %d", p.Slot, slot)
	}
	msg := v.shareMessage(slot, p.Hash)
	return v.env.Suite.TSHigh.Verify(msg, &threshsig.Signature{S: bigFromBytes(p.Cert)})
}

// shareMessage is the string the ECHO threshold shares sign,
// domain-separated from CBC's by the "vcbc-echo" tag and the wire kind.
func (v *VCBC) shareMessage(slot int, h Hash8) []byte {
	msg := make([]byte, 0, 32)
	msg = append(msg, "vcbc-echo"...)
	msg = append(msg, byte(packet.KindVCBC))
	msg = binary.BigEndian.AppendUint32(msg, v.env.Session)
	msg = binary.BigEndian.AppendUint16(msg, v.env.Epoch)
	msg = append(msg, byte(slot))
	return append(msg, h[:]...)
}

// Broadcast starts instance slot with this node as the sender, pushing
// value onto the head of this node's queue.
func (v *VCBC) Broadcast(slot int, value []byte) {
	if v.leader(slot) != v.env.Me {
		panic(fmt.Sprintf("component: node %d broadcasting VCBC queue %d owned by %d", v.env.Me, slot, v.leader(slot)))
	}
	total := (len(value) + v.frag - 1) / v.frag
	if total == 0 {
		total = 1
	}
	for i := 0; i < total; i++ {
		lo, hi := i*v.frag, (i+1)*v.frag
		if hi > len(value) {
			hi = len(value)
		}
		v.env.T.Update(core.Intent{
			IntentKey: core.IntentKey{Kind: packet.KindVCBC, Phase: packet.PhaseInitial, Slot: uint8(slot), Sub: uint8(i)},
			Flags:     uint8(total),
			Data:      append([]byte(nil), value[lo:hi]...),
		})
	}
	v.acceptValue(slot, value)
}

func (v *VCBC) acceptValue(slot int, value []byte) {
	s := v.slots[slot]
	if s.assembled {
		return
	}
	s.assembled = true
	s.value = value
	if !s.sentShare {
		s.sentShare = true
		h := HashValue(value)
		msg := v.shareMessage(slot, h)
		env := v.env
		env.Exec(env.Suite.Cost.TSSign, func() {
			share, err := env.Suite.TSHigh.Sign(env.Suite.TSHighShare, msg, env.Rand)
			if err != nil {
				panic(fmt.Sprintf("component: vcbc share signing: %v", err))
			}
			env.T.Update(core.Intent{
				IntentKey: core.IntentKey{Kind: packet.KindVCBC, Phase: packet.PhaseEcho, Slot: uint8(slot), Sub: uint8(env.Me)},
				Data:      EncodeSigShare(share),
			})
			if v.leader(slot) == env.Me {
				v.applyShare(slot, env.Me, share)
			}
		})
	}
	v.deliver(slot)
}

// HandleSection implements core.Handler.
func (v *VCBC) HandleSection(from uint16, sec packet.Section) {
	w := int(from)
	switch sec.Phase {
	case packet.PhaseInitial:
		for _, e := range sec.Entries {
			v.handleInitial(w, e)
		}
	case packet.PhaseEcho:
		for _, e := range sec.Entries {
			slot := int(e.Slot)
			if slot >= len(v.slots) {
				continue
			}
			// Only the queue's sender combines shares.
			if v.leader(slot) != v.env.Me {
				continue
			}
			v.handleShareData(slot, w, e.Data)
		}
	case packet.PhaseFinish:
		for _, e := range sec.Entries {
			v.handleFinish(int(e.Slot), e.Data)
		}
	case packet.PhaseRepair:
		for _, e := range sec.Entries {
			v.handleRepairRequest(int(e.Slot), e.Data)
		}
	}
}

func (v *VCBC) handleInitial(w int, e packet.Entry) {
	slot := int(e.Slot)
	if slot >= len(v.slots) {
		return
	}
	s := v.slots[slot]
	// After a repair request any peer may supply the value; delivery
	// re-checks the hash against the quorum certificate.
	if s.assembled || (w != v.leader(slot) && !s.needRepair) {
		return
	}
	total := int(e.Flags)
	if total == 0 {
		return
	}
	if s.frags == nil {
		s.frags = make([][]byte, total)
		s.fragTotal = total
	}
	if total != s.fragTotal || int(e.Sub) >= total || s.frags[e.Sub] != nil {
		return
	}
	s.frags[e.Sub] = append([]byte(nil), e.Data...)
	for _, f := range s.frags {
		if f == nil {
			return
		}
	}
	var value []byte
	for _, f := range s.frags {
		value = append(value, f...)
	}
	v.acceptValue(slot, value)
}

func (v *VCBC) handleShareData(slot, w int, raw []byte) {
	s := v.slots[slot]
	if _, dup := s.shares[w]; dup || s.cert != nil || !s.assembled {
		return
	}
	share, err := DecodeSigShare(raw)
	if err != nil {
		v.env.Reject()
		return
	}
	ver := v.env.Suite.TSHigh.Verifier(v.shareMessage(slot, HashValue(s.value)))
	env := v.env
	env.Exec(env.Suite.Cost.TSVerifyShare, func() {
		if _, dup := s.shares[w]; dup || s.cert != nil {
			return
		}
		if err := ver.Verify(share); err != nil {
			env.Reject()
			return
		}
		v.applyShare(slot, w, share)
	})
}

func (v *VCBC) applyShare(slot, w int, share *threshsig.SigShare) {
	s := v.slots[slot]
	if _, dup := s.shares[w]; dup || s.cert != nil {
		return
	}
	s.shares[w] = share
	if len(s.shares) < v.env.Quorum() || s.combining {
		return
	}
	s.combining = true
	shares := make([]*threshsig.SigShare, 0, len(s.shares))
	for _, sh := range s.shares {
		shares = append(shares, sh)
	}
	h := HashValue(s.value)
	msg := v.shareMessage(slot, h)
	env := v.env
	env.Exec(env.Suite.Cost.TSCombine, func() {
		sig, err := env.Suite.TSHigh.Combine(msg, shares)
		if err != nil {
			s.combining = false
			s.shares = make(map[int]*threshsig.SigShare)
			return
		}
		s.cert = sig.Bytes()
		s.certHash = h
		env.T.Update(core.Intent{
			IntentKey: core.IntentKey{Kind: packet.KindVCBC, Phase: packet.PhaseFinish, Slot: uint8(slot)},
			Data:      EncodeFinish(h, s.cert),
		})
		v.deliver(slot)
	})
}

func (v *VCBC) handleFinish(slot int, raw []byte) {
	if slot >= len(v.slots) {
		return
	}
	s := v.slots[slot]
	if s.delivered {
		return
	}
	h, cert, err := DecodeFinish(raw)
	if err != nil {
		v.env.Reject()
		return
	}
	msg := v.shareMessage(slot, h)
	env := v.env
	env.Exec(env.Suite.Cost.TSVerify, func() {
		if s.delivered {
			return
		}
		if err := env.Suite.TSHigh.Verify(msg, &threshsig.Signature{S: bigFromBytes(cert)}); err != nil {
			env.Reject()
			return
		}
		s.cert = cert
		s.certHash = h
		if !s.assembled {
			v.requestRepair(slot)
			return
		}
		if HashValue(s.value) != h {
			// A certificate for a different value than we assembled: the
			// certificate wins (2f+1 nodes vouched for it).
			s.assembled = false
			s.value = nil
			s.frags = nil
			v.requestRepair(slot)
			return
		}
		v.deliver(slot)
	})
}

func (v *VCBC) deliver(slot int) {
	s := v.slots[slot]
	if s.delivered || s.cert == nil || !s.assembled {
		return
	}
	if HashValue(s.value) != s.certHash {
		// Repair supplied a value that does not match the certificate.
		s.assembled = false
		s.value = nil
		s.frags = nil
		s.needRepair = false
		v.requestRepair(slot)
		return
	}
	s.delivered = true
	v.finDone.Set(slot)
	v.env.T.SetNack(packet.KindVCBC, packet.PhaseFinish, v.finDone)
	v.env.T.Remove(core.IntentKey{Kind: packet.KindVCBC, Phase: packet.PhaseEcho, Slot: uint8(slot), Sub: uint8(v.env.Me)})
	if s.needRepair {
		v.env.T.Remove(core.IntentKey{Kind: packet.KindVCBC, Phase: packet.PhaseRepair, Slot: uint8(slot)})
	}
	if v.onDeliver != nil {
		v.onDeliver(slot, s.value, s.cert)
	}
}

// Fetch requests a slot's value and certificate from peers. Alea's
// agreement loop calls this when a binary agreement accepts a queue whose
// VCBC this node missed; like CBC, VCBC has no totality guarantee of its
// own, so acceptance is the pull trigger.
func (v *VCBC) Fetch(slot int) { v.requestRepair(slot) }

func (v *VCBC) requestRepair(slot int) {
	s := v.slots[slot]
	if s.needRepair {
		return
	}
	s.needRepair = true
	have := packet.NewBitSet(256)
	if s.assembled {
		// Re-proposal pull (Reproposed): the value is already in hand, only
		// the certificate state is missing — advertise every fragment held
		// so responders skip the value re-serve.
		total := (len(s.value) + v.frag - 1) / v.frag
		if total == 0 {
			total = 1
		}
		for i := 0; i < total; i++ {
			have.Set(i)
		}
	} else {
		for i, f := range s.frags {
			if f != nil {
				have.Set(i)
			}
		}
	}
	v.env.T.Update(core.Intent{
		IntentKey: core.IntentKey{Kind: packet.KindVCBC, Phase: packet.PhaseRepair, Slot: uint8(slot)},
		Data:      have,
	})
}

func (v *VCBC) handleRepairRequest(slot int, have packet.BitSet) {
	if slot >= len(v.slots) {
		return
	}
	s := v.slots[slot]
	if !s.assembled {
		return
	}
	now := v.env.Sched.Now()
	if s.repairAt != 0 && now-s.repairAt < 2*time.Second {
		return
	}
	s.repairAt = now
	delay := time.Duration(float64(300*time.Millisecond) * (0.5 + v.env.Rand.Float64()))
	value := s.value
	if s.cert != nil {
		// Anyone holding the certificate can re-publish FINISH; it
		// verifies under the threshold key regardless of the sender.
		cert, h := s.cert, s.certHash
		v.env.T.Update(core.Intent{
			IntentKey: core.IntentKey{Kind: packet.KindVCBC, Phase: packet.PhaseFinish, Slot: uint8(slot)},
			Data:      EncodeFinish(h, cert),
		})
	}
	v.env.Sched.PostAfter(delay, func() {
		total := (len(value) + v.frag - 1) / v.frag
		if total == 0 {
			total = 1
		}
		for i := 0; i < total; i++ {
			if have.Get(i) {
				continue
			}
			lo, hi := i*v.frag, (i+1)*v.frag
			if hi > len(value) {
				hi = len(value)
			}
			v.env.T.Update(core.Intent{
				IntentKey: core.IntentKey{Kind: packet.KindVCBC, Phase: packet.PhaseInitial, Slot: uint8(slot), Sub: uint8(i)},
				Flags:     uint8(total),
				Data:      append([]byte(nil), value[lo:hi]...),
			})
		}
	})
}

// VCBCProof is the decoded transferable proof: a slot's identity, value
// digest, and 2f+1-threshold quorum certificate.
type VCBCProof struct {
	Slot uint8
	Hash Hash8
	Cert []byte
}

// EncodeVCBCProof packs a transferable proof. The encoding is canonical:
// DecodeVCBCProof rejects trailing bytes, so decode-then-encode is the
// identity on every accepted input (the fuzz-pinned property).
func EncodeVCBCProof(p VCBCProof) []byte {
	buf := make([]byte, 0, 1+8+2+len(p.Cert))
	buf = append(buf, p.Slot)
	buf = append(buf, p.Hash[:]...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(p.Cert)))
	return append(buf, p.Cert...)
}

// DecodeVCBCProof parses a transferable proof, rejecting truncated and
// over-long encodings.
func DecodeVCBCProof(raw []byte) (VCBCProof, error) {
	var p VCBCProof
	if len(raw) < 1+8+2 {
		return p, errShortShare
	}
	p.Slot = raw[0]
	copy(p.Hash[:], raw[1:9])
	n := int(binary.BigEndian.Uint16(raw[9:11]))
	raw = raw[11:]
	if len(raw) != n {
		return p, errShortShare
	}
	if n > 0 {
		p.Cert = append([]byte(nil), raw...)
	}
	return p, nil
}
