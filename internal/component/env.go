// Package component implements the paper's consensus components — RBC,
// PRBC, CBC (plus the -small variants), Bracha's ABA (local coin), and
// Cachin-style ABA (shared coin / coin flipping) — as event-driven state
// machines over the ConsensusBatcher transport (internal/core).
//
// Components are transport-mode agnostic: they emit slot-granular intents
// and the transport decides whether to batch them (ConsensusBatcher) or
// send one frame per instance event (baseline). A node's own contributions
// are applied locally through the same code path as received ones, so
// self-votes are never double-counted or forgotten.
package component

import (
	"crypto/sha256"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/sim"
)

// Env is the per-node execution environment shared by all components of
// one epoch.
type Env struct {
	N, F    int
	Me      int // 0-based node index
	Epoch   uint16
	Session uint32
	Suite   *crypto.Suite
	T       *core.Transport
	CPU     *sim.CPU
	Sched   *sim.Scheduler
	Rand    *rand.Rand
}

// Quorum returns 2f+1.
func (e *Env) Quorum() int { return 2*e.F + 1 }

// Weak returns f+1.
func (e *Env) Weak() int { return e.F + 1 }

// Exec charges cost to the node's CPU and then runs fn.
func (e *Env) Exec(cost time.Duration, fn func()) { e.CPU.Exec(cost, fn) }

// Reject counts one discarded invalid inbound contribution — a share,
// certificate, proof, or proposal that failed verification — in the
// transport's Stats.Rejected. Under active-Byzantine scenarios this is
// how much adversarial traffic the component defenses absorbed.
func (e *Env) Reject() { e.T.NoteRejected() }

// Hash8 is the truncated proposal digest used inside batched vote packets
// (the paper's "hash part" identifies each of the N proposals).
type Hash8 [8]byte

// HashValue computes the truncated digest of a proposal.
func HashValue(v []byte) Hash8 {
	full := sha256.Sum256(v)
	var h Hash8
	copy(h[:], full[:8])
	return h
}

// voteNone marks an absent vote in serialized vote vectors.
const voteNone = 3

const (
	// sharedSlot is the sentinel slot for state shared across all parallel
	// instances (e.g. the per-round common coin of batched Cachin ABA).
	sharedSlot = 0xFF
)
