package component

import (
	"repro/internal/core"
	"repro/internal/packet"
)

// BrachaABA runs k parallel (or serial) instances of Bracha's
// local-coin binary agreement (Fig. 1c): each round has three voting
// phases, and each phase's votes are themselves reliably broadcast (the
// source of the O(N^3) wired message complexity the paper cites). Votes
// are tiny (0/1/⊥), so the vote-RBC rides the RBC-small packet shape
// (Fig. 5a), and the whole per-round state batches per Fig. 6a.
//
// Wire form: one entry per (slot, phase) carrying the node's full
// vote-RBC view — its own vote plus its echo and ready vectors over all
// voters — so a single batched frame carries everything the paper's
// Nack_RBC_1..3 fields do.
//
// Termination uses the same DECIDED-claim gadget as CachinABA.
type BrachaABA struct {
	env      *Env
	slots    []*brachaSlot
	onDecide func(slot int, value bool)
	roundCap int
}

const (
	voteZero = 0
	voteOne  = 1
	voteBot  = 2
)

type brachaSlot struct {
	started bool
	round   uint16
	est     uint8 // voteZero or voteOne
	decided *bool
	halted  bool
	claims  map[int]bool
	rounds  map[uint16]*brachaRound
}

type brachaRound struct {
	phases [3]*brachaPhase
}

type brachaPhase struct {
	myVote    uint8   // voteNone until cast
	votes     []uint8 // voter -> claimed vote (voteNone if unknown)
	myEcho    []uint8 // voter -> value I echoed (voteNone if none)
	myReady   []uint8
	echoes    []map[int]uint8 // voter -> {echoer -> value}
	readies   []map[int]uint8
	delivered []uint8 // voter -> delivered vote (voteNone if not yet)
	nDeliv    int
	resolved  bool // phase threshold reached and consumed
}

// BrachaOptions configures the component.
type BrachaOptions struct {
	Slots    int
	RoundCap int
	OnDecide func(slot int, value bool)
}

// NewBrachaABA creates the component and registers it on the transport.
func NewBrachaABA(env *Env, opts BrachaOptions) *BrachaABA {
	if opts.RoundCap <= 0 {
		opts.RoundCap = 64
	}
	a := &BrachaABA{env: env, onDecide: opts.OnDecide, roundCap: opts.RoundCap}
	for i := 0; i < opts.Slots; i++ {
		a.slots = append(a.slots, &brachaSlot{
			rounds: make(map[uint16]*brachaRound),
			claims: make(map[int]bool),
		})
	}
	env.T.Register(packet.KindABA, a)
	return a
}

// Input starts an instance with an initial estimate.
func (a *BrachaABA) Input(slot int, v bool) {
	s := a.slots[slot]
	if s.started {
		return
	}
	s.started = true
	s.est = uint8(b2i(v))
	s.round = 1
	a.castVote(slot, s.round, 0, s.est)
}

// Decided returns the decision for a slot, or nil.
func (a *BrachaABA) Decided(slot int) *bool { return a.slots[slot].decided }

// DecidedCount returns how many instances decided.
func (a *BrachaABA) DecidedCount() int {
	n := 0
	for _, s := range a.slots {
		if s.decided != nil {
			n++
		}
	}
	return n
}

func (a *BrachaABA) phase(slot int, round uint16, ph int) *brachaPhase {
	s := a.slots[slot]
	rd := s.rounds[round]
	if rd == nil {
		rd = &brachaRound{}
		s.rounds[round] = rd
	}
	if rd.phases[ph] == nil {
		n := a.env.N
		p := &brachaPhase{
			myVote:    voteNone,
			votes:     filled(n, voteNone),
			myEcho:    filled(n, voteNone),
			myReady:   filled(n, voteNone),
			delivered: filled(n, voteNone),
			echoes:    make([]map[int]uint8, n),
			readies:   make([]map[int]uint8, n),
		}
		for i := 0; i < n; i++ {
			p.echoes[i] = make(map[int]uint8)
			p.readies[i] = make(map[int]uint8)
		}
		rd.phases[ph] = p
	}
	return rd.phases[ph]
}

func filled(n int, v uint8) []uint8 {
	s := make([]uint8, n)
	for i := range s {
		s[i] = v
	}
	return s
}

// castVote sets this node's vote for (slot, round, phase) and publishes
// the updated vote-RBC view.
func (a *BrachaABA) castVote(slot int, round uint16, ph int, v uint8) {
	p := a.phase(slot, round, ph)
	if p.myVote != voteNone {
		return
	}
	p.myVote = v
	a.publish(slot, round, ph)
	a.applyView(slot, round, ph, a.env.Me, a.viewData(slot, round, ph))
}

// viewData serializes my vote-RBC view: [myVote | echo[N] | ready[N]].
func (a *BrachaABA) viewData(slot int, round uint16, ph int) []byte {
	p := a.phase(slot, round, ph)
	data := make([]byte, 0, 1+2*a.env.N)
	data = append(data, p.myVote)
	data = append(data, p.myEcho...)
	data = append(data, p.myReady...)
	return data
}

func (a *BrachaABA) publish(slot int, round uint16, ph int) {
	a.env.T.Update(core.Intent{
		IntentKey: core.IntentKey{
			Kind:  packet.KindABA,
			Phase: packet.PhaseVote1 + packet.Phase(ph),
			Slot:  uint8(slot),
			Round: round,
		},
		Data: a.viewData(slot, round, ph),
	})
}

// HandleSection implements core.Handler.
func (a *BrachaABA) HandleSection(from uint16, sec packet.Section) {
	w := int(from)
	switch {
	case sec.Phase >= packet.PhaseVote1 && sec.Phase <= packet.PhaseVote3:
		ph := int(sec.Phase - packet.PhaseVote1)
		for _, e := range sec.Entries {
			if int(e.Slot) >= len(a.slots) {
				continue
			}
			a.applyView(int(e.Slot), e.Round, ph, w, e.Data)
		}
	case sec.Phase == packet.PhaseDecided:
		for _, e := range sec.Entries {
			if int(e.Slot) >= len(a.slots) || len(e.Data) < 1 {
				continue
			}
			a.applyDecided(int(e.Slot), w, e.Data[0] == 1)
		}
	}
}

// applyView merges a peer's vote-RBC view into local state, advancing the
// embedded per-vote reliable broadcasts.
func (a *BrachaABA) applyView(slot int, round uint16, ph int, w int, data []byte) {
	s := a.slots[slot]
	n := a.env.N
	if !s.started || s.halted || int(round) > a.roundCap || len(data) < 1+2*n {
		return
	}
	p := a.phase(slot, round, ph)
	changed := false

	// w's own vote: treat as the INITIAL of w's vote-RBC.
	if v := data[0]; v <= voteBot && p.votes[w] == voteNone {
		p.votes[w] = v
		if p.myEcho[w] == voteNone {
			p.myEcho[w] = v
			changed = true
		}
	}
	// w's echo vector.
	for u := 0; u < n; u++ {
		v := data[1+u]
		if v > voteBot {
			continue
		}
		if _, dup := p.echoes[u][w]; dup {
			continue
		}
		p.echoes[u][w] = v
		if cnt := countByte(p.echoes[u], v); cnt >= a.env.Quorum() && p.myReady[u] == voteNone {
			p.myReady[u] = v
			changed = true
		}
	}
	// w's ready vector.
	for u := 0; u < n; u++ {
		v := data[1+n+u]
		if v > voteBot {
			continue
		}
		if _, dup := p.readies[u][w]; dup {
			continue
		}
		p.readies[u][w] = v
		cnt := countByte(p.readies[u], v)
		if cnt >= a.env.Weak() && p.myReady[u] == voteNone {
			p.myReady[u] = v
			changed = true
		}
		if cnt >= a.env.Quorum() && p.delivered[u] == voteNone {
			p.delivered[u] = v
			p.nDeliv++
		}
	}
	if changed {
		a.publish(slot, round, ph)
		a.applyView(slot, round, ph, a.env.Me, a.viewData(slot, round, ph))
	}
	a.checkPhase(slot, round, ph)
}

// checkPhase fires when N-f votes of a phase have been vote-RBC-delivered.
func (a *BrachaABA) checkPhase(slot int, round uint16, ph int) {
	s := a.slots[slot]
	if s.halted || round != s.round {
		return
	}
	p := a.phase(slot, round, ph)
	if p.resolved || p.myVote == voteNone || p.nDeliv < a.env.N-a.env.F {
		return
	}
	p.resolved = true
	counts := [3]int{}
	for _, v := range p.delivered {
		if v != voteNone {
			counts[v]++
		}
	}
	switch ph {
	case 0:
		// Phase 2 vote = majority of delivered phase-1 votes.
		m := voteZero
		if counts[voteOne] > counts[voteZero] {
			m = voteOne
		}
		a.castVote(slot, round, 1, uint8(m))
	case 1:
		// Phase 3 vote = v if > N/2 delivered phase-2 votes agree, else ⊥.
		x := uint8(voteBot)
		for _, v := range []uint8{voteZero, voteOne} {
			if counts[v] > a.env.N/2 {
				x = v
			}
		}
		a.castVote(slot, round, 2, x)
	case 2:
		a.finishRound(slot, round, counts)
	}
}

func (a *BrachaABA) finishRound(slot int, round uint16, counts [3]int) {
	s := a.slots[slot]
	v, c := voteZero, counts[voteZero]
	if counts[voteOne] > c {
		v, c = voteOne, counts[voteOne]
	}
	switch {
	case c >= a.env.Quorum():
		s.est = uint8(v)
		a.decide(slot, v == voteOne)
	case c >= a.env.Weak():
		s.est = uint8(v)
	default:
		// Local coin: private randomness, the paper's ABA-LC.
		s.est = uint8(a.env.Rand.Intn(2))
	}
	if s.halted {
		return
	}
	if int(round)+1 > a.roundCap {
		panic("component: bracha ABA exceeded round cap (liveness bug)")
	}
	s.round = round + 1
	if s.round >= 2 {
		cutoff := s.round - 1
		a.env.T.RemoveWhere(func(k core.IntentKey) bool {
			return k.Kind == packet.KindABA && int(k.Slot) == slot &&
				k.Phase >= packet.PhaseVote1 && k.Phase <= packet.PhaseVote3 &&
				k.Round != 0 && k.Round < cutoff
		})
	}
	a.castVote(slot, s.round, 0, s.est)
}

func (a *BrachaABA) decide(slot int, v bool) {
	s := a.slots[slot]
	if s.decided != nil {
		return
	}
	dec := v
	s.decided = &dec
	a.env.T.Update(core.Intent{
		IntentKey: core.IntentKey{Kind: packet.KindABA, Phase: packet.PhaseDecided, Slot: uint8(slot)},
		Data:      []byte{uint8(b2i(v))},
	})
	a.applyDecided(slot, a.env.Me, v)
	if a.onDecide != nil {
		a.onDecide(slot, v)
	}
}

func (a *BrachaABA) applyDecided(slot, w int, v bool) {
	s := a.slots[slot]
	if _, seen := s.claims[w]; seen {
		return
	}
	s.claims[w] = v
	matching := 0
	for _, cv := range s.claims {
		if cv == v {
			matching++
		}
	}
	if matching >= a.env.Weak() && s.decided == nil {
		a.decide(slot, v)
	}
	if matching >= a.env.N-a.env.F && !s.halted {
		s.halted = true
		a.env.T.RemoveWhere(func(k core.IntentKey) bool {
			return k.Kind == packet.KindABA && int(k.Slot) == slot &&
				k.Phase >= packet.PhaseVote1 && k.Phase <= packet.PhaseVote3
		})
	}
}

func countByte(m map[int]uint8, v uint8) int {
	n := 0
	for _, x := range m {
		if x == v {
			n++
		}
	}
	return n
}
