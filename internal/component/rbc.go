package component

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/packet"
)

// RBC runs N parallel Bracha reliable-broadcast instances (one slot per
// proposer). Phases follow Fig. 1a of the paper: INITIAL (1-to-N proposal
// dissemination, fragmented across packets when large), ECHO and READY
// (N-to-N hash votes). The -small variant (Fig. 5a) carries tiny proposals
// inline in the vote packet, merging INITIAL into the other phases.
//
// Reliability is NACK-based: a node holding 2f+1 READYs for a value it
// never received requests the INITIAL fragments it is missing via a
// PhaseRepair intent; peers holding the value re-broadcast the missing
// fragments after a randomized suppression delay.
type RBC struct {
	env   *Env
	kind  packet.Kind
	small bool
	frag  int
	slots []*rbcSlot

	onDeliver func(slot int, value []byte)

	echoDone  packet.BitSet // compressed O(N) NACK: slot reached 2f+1 echoes
	readyDone packet.BitSet
}

type rbcSlot struct {
	leader int

	// Value dissemination.
	value     []byte
	frags     [][]byte
	fragTotal int
	assembled bool

	// Votes: first vote per peer wins (equivocation containment).
	echoes  map[int]Hash8
	readies map[int]Hash8

	sentEcho   bool
	sentReady  bool
	readyHash  Hash8
	delivered  bool
	needRepair bool
	repairAt   time.Duration // last repair response, for rate limiting

	peersEchoDone  packet.BitSet
	peersReadyDone packet.BitSet
}

// RBCOptions configures an RBC component.
type RBCOptions struct {
	Kind      packet.Kind // section kind (KindRBC, or a CBC kind is NOT valid here)
	Slots     int         // number of parallel instances (= N normally)
	Small     bool        // inline small proposals (RBC-small)
	FragSize  int         // INITIAL fragment payload size
	OnDeliver func(slot int, value []byte)
}

// NewRBC creates the component and registers it on the transport.
func NewRBC(env *Env, opts RBCOptions) *RBC {
	if opts.FragSize <= 0 {
		opts.FragSize = 160
	}
	if opts.Kind == 0 {
		opts.Kind = packet.KindRBC
	}
	r := &RBC{
		env:       env,
		kind:      opts.Kind,
		small:     opts.Small,
		frag:      opts.FragSize,
		onDeliver: opts.OnDeliver,
		echoDone:  packet.NewBitSet(opts.Slots),
		readyDone: packet.NewBitSet(opts.Slots),
	}
	for i := 0; i < opts.Slots; i++ {
		r.slots = append(r.slots, &rbcSlot{
			leader:         i % env.N,
			echoes:         make(map[int]Hash8),
			readies:        make(map[int]Hash8),
			peersEchoDone:  packet.NewBitSet(env.N),
			peersReadyDone: packet.NewBitSet(env.N),
		})
	}
	env.T.Register(opts.Kind, r)
	return r
}

// Delivered reports whether a slot has delivered.
func (r *RBC) Delivered(slot int) bool { return r.slots[slot].delivered }

// Value returns the delivered value of a slot (nil before delivery).
func (r *RBC) Value(slot int) []byte {
	s := r.slots[slot]
	if !s.delivered {
		return nil
	}
	return s.value
}

// DeliveredCount returns how many slots have delivered.
func (r *RBC) DeliveredCount() int {
	n := 0
	for _, s := range r.slots {
		if s.delivered {
			n++
		}
	}
	return n
}

// Propose starts instance slot with this node as leader.
func (r *RBC) Propose(slot int, value []byte) {
	s := r.slots[slot]
	if s.leader != r.env.Me {
		panic(fmt.Sprintf("component: node %d proposing for slot %d led by %d", r.env.Me, slot, s.leader))
	}
	if r.small {
		r.env.T.Update(core.Intent{
			IntentKey: core.IntentKey{Kind: r.kind, Phase: packet.PhaseInitial, Slot: uint8(slot)},
			Data:      append([]byte(nil), value...),
		})
	} else {
		total := (len(value) + r.frag - 1) / r.frag
		if total == 0 {
			total = 1
		}
		for i := 0; i < total; i++ {
			lo, hi := i*r.frag, (i+1)*r.frag
			if hi > len(value) {
				hi = len(value)
			}
			r.env.T.Update(core.Intent{
				IntentKey: core.IntentKey{Kind: r.kind, Phase: packet.PhaseInitial, Slot: uint8(slot), Sub: uint8(i)},
				Flags:     uint8(total),
				Data:      append([]byte(nil), value[lo:hi]...),
			})
		}
	}
	r.acceptValue(slot, value)
}

// acceptValue handles a fully assembled proposal (own or received).
func (r *RBC) acceptValue(slot int, value []byte) {
	s := r.slots[slot]
	if s.assembled {
		return
	}
	s.assembled = true
	s.value = value
	if !s.sentEcho {
		s.sentEcho = true
		h := HashValue(value)
		r.env.T.Update(core.Intent{
			IntentKey: core.IntentKey{Kind: r.kind, Phase: packet.PhaseEcho, Slot: uint8(slot)},
			Data:      h[:],
		})
		r.applyEcho(slot, r.env.Me, h)
	}
	r.maybeDeliver(slot)
}

// HandleSection implements core.Handler.
func (r *RBC) HandleSection(from uint16, sec packet.Section) {
	w := int(from)
	switch sec.Phase {
	case packet.PhaseInitial:
		for _, e := range sec.Entries {
			r.handleInitial(w, e)
		}
	case packet.PhaseEcho:
		for _, e := range sec.Entries {
			if int(e.Slot) < len(r.slots) && len(e.Data) >= 8 {
				var h Hash8
				copy(h[:], e.Data)
				r.applyEcho(int(e.Slot), w, h)
			}
		}
		r.trackPeerDone(sec.Nack, w, packet.PhaseEcho)
	case packet.PhaseReady:
		for _, e := range sec.Entries {
			if int(e.Slot) < len(r.slots) && len(e.Data) >= 8 {
				var h Hash8
				copy(h[:], e.Data)
				r.applyReady(int(e.Slot), w, h)
			}
		}
		r.trackPeerDone(sec.Nack, w, packet.PhaseReady)
	case packet.PhaseRepair:
		for _, e := range sec.Entries {
			r.handleRepairRequest(int(e.Slot), e.Data)
		}
	}
}

func (r *RBC) handleInitial(w int, e packet.Entry) {
	slot := int(e.Slot)
	if slot >= len(r.slots) {
		return
	}
	s := r.slots[slot]
	// INITIAL is normally only accepted from the leader; after a repair
	// request any peer may supply the value (delivery re-checks the hash
	// against the READY quorum, so forged repairs cannot be delivered).
	if s.assembled || (w != s.leader && !s.needRepair) {
		return
	}
	if r.small {
		r.acceptValue(slot, append([]byte(nil), e.Data...))
		return
	}
	total := int(e.Flags)
	if total == 0 || total > 255 {
		return
	}
	if s.frags == nil {
		s.frags = make([][]byte, total)
		s.fragTotal = total
	}
	if total != s.fragTotal || int(e.Sub) >= total || s.frags[e.Sub] != nil {
		return
	}
	s.frags[e.Sub] = append([]byte(nil), e.Data...)
	for _, f := range s.frags {
		if f == nil {
			return
		}
	}
	var value []byte
	for _, f := range s.frags {
		value = append(value, f...)
	}
	r.acceptValue(slot, value)
}

func (r *RBC) applyEcho(slot, w int, h Hash8) {
	s := r.slots[slot]
	if _, seen := s.echoes[w]; seen {
		return
	}
	s.echoes[w] = h
	if n := countVotes(s.echoes, h); n >= r.env.Quorum() {
		if !r.echoDone.Get(slot) {
			r.echoDone.Set(slot)
			r.env.T.SetNack(r.kind, packet.PhaseEcho, r.echoDone)
		}
		r.sendReady(slot, h)
	}
}

func (r *RBC) applyReady(slot, w int, h Hash8) {
	s := r.slots[slot]
	if _, seen := s.readies[w]; seen {
		return
	}
	s.readies[w] = h
	n := countVotes(s.readies, h)
	if n >= r.env.Weak() {
		r.sendReady(slot, h) // READY amplification
	}
	if n >= r.env.Quorum() && !r.readyDone.Get(slot) {
		r.readyDone.Set(slot)
		r.env.T.SetNack(r.kind, packet.PhaseReady, r.readyDone)
	}
	r.maybeDeliver(slot)
}

func (r *RBC) sendReady(slot int, h Hash8) {
	s := r.slots[slot]
	if s.sentReady {
		return
	}
	s.sentReady = true
	s.readyHash = h
	r.env.T.Update(core.Intent{
		IntentKey: core.IntentKey{Kind: r.kind, Phase: packet.PhaseReady, Slot: uint8(slot)},
		Data:      h[:],
	})
	r.applyReady(slot, r.env.Me, h)
}

func (r *RBC) maybeDeliver(slot int) {
	s := r.slots[slot]
	if s.delivered {
		return
	}
	// Find a hash with a READY quorum.
	var qh Hash8
	found := false
	for _, h := range s.readies {
		if countVotes(s.readies, h) >= r.env.Quorum() {
			qh, found = h, true
			break
		}
	}
	if !found {
		return
	}
	if !s.assembled {
		r.requestRepair(slot)
		return
	}
	if HashValue(s.value) != qh {
		// The quorum converged on a different proposal than the one we
		// assembled (equivocating leader). Drop ours and repair.
		r.env.Reject()
		s.assembled = false
		s.value = nil
		s.frags = nil
		r.requestRepair(slot)
		return
	}
	s.delivered = true
	if s.needRepair {
		r.env.T.Remove(core.IntentKey{Kind: r.kind, Phase: packet.PhaseRepair, Slot: uint8(slot)})
	}
	if r.onDeliver != nil {
		r.onDeliver(slot, s.value)
	}
}

// RequestRepair asks peers to re-announce a slot's INITIAL fragments and
// READY votes. The quorum path calls it automatically; late joiners (SMR
// crash recovery) call it for slots that external evidence — an ABA
// DECIDED quorum — says must deliver, because peers may have pruned their
// vote intents back when every node of the time had confirmed completion.
// Delivery still requires a full READY quorum on the repaired value, so a
// forged repair response cannot smuggle in a wrong value.
func (r *RBC) RequestRepair(slot int) {
	if slot < len(r.slots) && !r.slots[slot].delivered {
		r.requestRepair(slot)
	}
}

// requestRepair asks peers for the INITIAL fragments of a slot we are
// missing while holding a READY quorum for it.
func (r *RBC) requestRepair(slot int) {
	s := r.slots[slot]
	if s.needRepair {
		return
	}
	s.needRepair = true
	have := packet.NewBitSet(256)
	for i, f := range s.frags {
		if f != nil {
			have.Set(i)
		}
	}
	r.env.T.Update(core.Intent{
		IntentKey: core.IntentKey{Kind: r.kind, Phase: packet.PhaseRepair, Slot: uint8(slot)},
		Data:      have,
	})
}

// handleRepairRequest re-broadcasts INITIAL fragments for peers that are
// stuck, after a randomized suppression delay.
func (r *RBC) handleRepairRequest(slot int, have packet.BitSet) {
	if slot >= len(r.slots) {
		return
	}
	s := r.slots[slot]
	if !s.assembled {
		return
	}
	now := r.env.Sched.Now()
	if s.repairAt != 0 && now-s.repairAt < 2*time.Second {
		return // rate-limit repair responses
	}
	s.repairAt = now
	// Re-announce our ECHO and READY votes alongside the fragments: a
	// requester that lost its state (crash recovery) needs the vote quorum
	// back on the air, and trackPeerDone may have pruned those intents when
	// every node of the time had confirmed the slot.
	if s.sentEcho {
		h := HashValue(s.value)
		r.env.T.Update(core.Intent{
			IntentKey: core.IntentKey{Kind: r.kind, Phase: packet.PhaseEcho, Slot: uint8(slot)},
			Data:      h[:],
		})
	}
	if s.sentReady {
		r.env.T.Update(core.Intent{
			IntentKey: core.IntentKey{Kind: r.kind, Phase: packet.PhaseReady, Slot: uint8(slot)},
			Data:      s.readyHash[:],
		})
	}
	delay := time.Duration(float64(300*time.Millisecond) * (0.5 + r.env.Rand.Float64()))
	value := s.value
	r.env.Sched.PostAfter(delay, func() {
		if r.small {
			r.env.T.Update(core.Intent{
				IntentKey: core.IntentKey{Kind: r.kind, Phase: packet.PhaseInitial, Slot: uint8(slot)},
				Data:      append([]byte(nil), value...),
			})
			return
		}
		total := (len(value) + r.frag - 1) / r.frag
		if total == 0 {
			total = 1
		}
		for i := 0; i < total; i++ {
			if have.Get(i) {
				continue
			}
			lo, hi := i*r.frag, (i+1)*r.frag
			if hi > len(value) {
				hi = len(value)
			}
			r.env.T.Update(core.Intent{
				IntentKey: core.IntentKey{Kind: r.kind, Phase: packet.PhaseInitial, Slot: uint8(slot), Sub: uint8(i)},
				Flags:     uint8(total),
				Data:      append([]byte(nil), value[lo:hi]...),
			})
		}
	})
}

// trackPeerDone prunes our vote intents once every peer has signalled (via
// the compressed NACK bits) that the slot reached its quorum.
func (r *RBC) trackPeerDone(nack packet.BitSet, w int, phase packet.Phase) {
	if len(nack) == 0 {
		return
	}
	for slot := range r.slots {
		if !nack.Get(slot) {
			continue
		}
		s := r.slots[slot]
		var done packet.BitSet
		if phase == packet.PhaseEcho {
			done = s.peersEchoDone
		} else {
			done = s.peersReadyDone
		}
		done.Set(w)
		if done.Count() >= r.env.N-1 {
			r.env.T.Remove(core.IntentKey{Kind: r.kind, Phase: phase, Slot: uint8(slot)})
		}
	}
}

func countVotes(votes map[int]Hash8, h Hash8) int {
	n := 0
	for _, v := range votes {
		if v == h {
			n++
		}
	}
	return n
}
