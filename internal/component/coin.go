package component

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/crypto/threshcoin"
	"repro/internal/crypto/threshsig"
)

// CoinSource abstracts the common-coin implementations the paper compares:
// threshold signatures (ABA-SC, HoneyBadgerBFT/Dumbo) and threshold coin
// flipping (ABA-CP, BEAT). Bracha's ABA (ABA-LC) needs no CoinSource — its
// coin is local randomness.
type CoinSource interface {
	// ShareData returns this node's encoded share of the named coin.
	ShareData(name []byte) ([]byte, error)
	// VerifyShare checks a peer's encoded share.
	VerifyShare(name []byte, data []byte) error
	// Combine folds threshold verified shares into the coin bit.
	Combine(name []byte, shares [][]byte) (bool, error)
	// Threshold is the number of shares Combine needs.
	Threshold() int
	// Costs returns the virtual compute times (share, verify, combine).
	Costs() (share, verify, combine time.Duration)
	// ShareLen returns the approximate encoded share size in bytes.
	ShareLen() int
}

// SigCoin derives the coin from a threshold signature on the coin name
// (hash of the unique combined signature), as HoneyBadgerBFT does.
type SigCoin struct {
	PK    *threshsig.PublicKey
	Share threshsig.PrivateShare
	Env   *Env
}

var _ CoinSource = (*SigCoin)(nil)

// ShareData implements CoinSource.
func (c *SigCoin) ShareData(name []byte) ([]byte, error) {
	sh, err := c.PK.Sign(c.Share, name, c.Env.Rand)
	if err != nil {
		return nil, fmt.Errorf("component: signing coin share: %w", err)
	}
	return EncodeSigShare(sh), nil
}

// VerifyShare implements CoinSource.
func (c *SigCoin) VerifyShare(name, data []byte) error {
	sh, err := DecodeSigShare(data)
	if err != nil {
		return err
	}
	return c.PK.VerifyShare(name, sh)
}

// Combine implements CoinSource.
func (c *SigCoin) Combine(name []byte, raw [][]byte) (bool, error) {
	shares := make([]*threshsig.SigShare, 0, len(raw))
	for _, d := range raw {
		sh, err := DecodeSigShare(d)
		if err != nil {
			return false, err
		}
		shares = append(shares, sh)
	}
	sig, err := c.PK.Combine(name, shares)
	if err != nil {
		return false, err
	}
	d := sha256.Sum256(sig.Bytes())
	return d[0]&1 == 1, nil
}

// Threshold implements CoinSource.
func (c *SigCoin) Threshold() int { return c.PK.K }

// Costs implements CoinSource.
func (c *SigCoin) Costs() (time.Duration, time.Duration, time.Duration) {
	cost := c.Env.Suite.Cost
	return cost.TSSign, cost.TSVerifyShare, cost.TSCombine
}

// ShareLen implements CoinSource.
func (c *SigCoin) ShareLen() int { return c.PK.ShareLen() }

// FlipCoin is BEAT's threshold coin flipping (Cachin–Kursawe–Shoup PRF).
type FlipCoin struct {
	PK    *threshcoin.PublicKey
	Share threshcoin.PrivateShare
	Env   *Env
}

var _ CoinSource = (*FlipCoin)(nil)

// ShareData implements CoinSource.
func (c *FlipCoin) ShareData(name []byte) ([]byte, error) {
	sh, err := c.PK.Share(c.Share, name, c.Env.Rand)
	if err != nil {
		return nil, fmt.Errorf("component: coin flipping share: %w", err)
	}
	return EncodeCoinShare(sh), nil
}

// VerifyShare implements CoinSource.
func (c *FlipCoin) VerifyShare(name, data []byte) error {
	sh, err := DecodeCoinShare(data)
	if err != nil {
		return err
	}
	return c.PK.VerifyShare(name, sh)
}

// Combine implements CoinSource.
func (c *FlipCoin) Combine(name []byte, raw [][]byte) (bool, error) {
	shares := make([]*threshcoin.CoinShare, 0, len(raw))
	for _, d := range raw {
		sh, err := DecodeCoinShare(d)
		if err != nil {
			return false, err
		}
		shares = append(shares, sh)
	}
	out, err := c.PK.Combine(name, shares)
	if err != nil {
		return false, err
	}
	return threshcoin.Bit(out), nil
}

// Threshold implements CoinSource.
func (c *FlipCoin) Threshold() int { return c.PK.K }

// Costs implements CoinSource.
func (c *FlipCoin) Costs() (time.Duration, time.Duration, time.Duration) {
	cost := c.Env.Suite.Cost
	return cost.TCShare, cost.TCVerifyShare, cost.TCCombine
}

// ShareLen implements CoinSource.
func (c *FlipCoin) ShareLen() int { return c.PK.ShareLen() }

// coinName builds the canonical coin identifier. Batched parallel ABA uses
// one coin per round shared across instances (slot = sharedSlot), exactly
// the optimization Sec. IV-C2 argues is safe on a broadcast channel.
func coinName(session uint32, epoch uint16, slot uint8, round uint16) []byte {
	name := make([]byte, 0, 16)
	name = append(name, "aba-coin"...)
	name = binary.BigEndian.AppendUint32(name, session)
	name = binary.BigEndian.AppendUint16(name, epoch)
	name = append(name, slot)
	return binary.BigEndian.AppendUint16(name, round)
}
