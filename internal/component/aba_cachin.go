package component

import (
	"time"

	"repro/internal/core"
	"repro/internal/packet"
)

// CachinABA runs k parallel (or serial) instances of the shared-coin
// binary-agreement protocol the paper calls "Cachin's ABA" (the
// BVAL/AUX/SHARE round structure of Fig. 1d, packets per Fig. 6b).
//
// Wireless adaptations from Sec. V-A:
//   - batched parallel instances share one coin per round (SharedCoin);
//   - serial execution releases coin shares only for the active instance,
//     so Byzantine nodes cannot learn future coins early.
type CachinABA struct {
	env        *Env
	coin       CoinSource
	sharedCoin bool
	catchUp    bool
	slots      []*abaSlot
	coins      map[coinKey]*coinState

	onDecide func(slot int, value bool)

	roundCap int
}

type coinKey struct {
	slot  uint8 // sharedSlot when the coin is shared across instances
	round uint16
}

type coinState struct {
	released bool
	shares   map[int][]byte
	verified int
	value    *bool
	waiting  []func(bool)
	combined bool
}

type abaSlot struct {
	started bool
	round   uint16
	est     bool
	decided *bool
	halted  bool
	claims  map[int]bool // DECIDED claims by peer
	rounds  map[uint16]*abaRound
}

type abaRound struct {
	bvalSent  [2]bool
	bvalRecv  [2]map[int]bool
	binValues [2]bool
	auxSent   bool
	auxVal    bool
	auxRecv   map[int]*bool
	valsReady bool
	advanced  bool
	// reservedAt rate-limits reserveRound's pruned-send replay.
	reservedAt time.Duration
}

// CachinOptions configures the component.
type CachinOptions struct {
	Slots      int
	Coin       CoinSource
	SharedCoin bool // one coin per round across all instances (batched mode)
	RoundCap   int  // safety bound on rounds (default 64)
	// RoundCatchUp replays the round == s.round sends this node skipped
	// while peers raced ahead (see startRound), and re-serves this node's
	// pruned sends for rounds a reborn peer is still climbing through
	// (see reserveRound). Serial-schedule users (Alea's one-at-a-time
	// agreement loop) need it: a repeated-estimate schedule under a
	// withholding adversary makes the skew structural and the wedge
	// permanent, and a full-stop crash-recovery restarts instances at
	// round 1 with no DECIDED claims to carry them. The parallel engines
	// predate the option and run with it off — their concurrent instances
	// keep enough traffic flowing to recover, and enabling it would shift
	// the frozen BENCH goldens.
	RoundCatchUp bool
	OnDecide     func(slot int, value bool)
}

// NewCachinABA creates the component and registers it on the transport.
func NewCachinABA(env *Env, opts CachinOptions) *CachinABA {
	if opts.RoundCap <= 0 {
		opts.RoundCap = 64
	}
	a := &CachinABA{
		env:        env,
		coin:       opts.Coin,
		sharedCoin: opts.SharedCoin,
		catchUp:    opts.RoundCatchUp,
		coins:      make(map[coinKey]*coinState),
		onDecide:   opts.OnDecide,
		roundCap:   opts.RoundCap,
	}
	for i := 0; i < opts.Slots; i++ {
		a.slots = append(a.slots, &abaSlot{
			rounds: make(map[uint16]*abaRound),
			claims: make(map[int]bool),
		})
	}
	env.T.Register(packet.KindABA, a)
	return a
}

// Input starts an instance with an initial estimate. The wireless rule of
// Sec. V-A (all parallel instances start simultaneously once 2f+1 RBCs
// finish) is enforced by the protocol layer calling Input for all slots in
// the same event.
func (a *CachinABA) Input(slot int, v bool) {
	s := a.slots[slot]
	if s.started {
		return
	}
	s.started = true
	s.est = v
	s.round = 1
	a.startRound(slot)
}

// Decided returns the decision for a slot, or nil.
func (a *CachinABA) Decided(slot int) *bool { return a.slots[slot].decided }

// DecidedCount returns how many instances have decided.
func (a *CachinABA) DecidedCount() int {
	n := 0
	for _, s := range a.slots {
		if s.decided != nil {
			n++
		}
	}
	return n
}

func (a *CachinABA) round(slot int, r uint16) *abaRound {
	s := a.slots[slot]
	rd := s.rounds[r]
	if rd == nil {
		rd = &abaRound{
			bvalRecv: [2]map[int]bool{{}, {}},
			auxRecv:  make(map[int]*bool),
		}
		s.rounds[r] = rd
	}
	return rd
}

func (a *CachinABA) startRound(slot int) {
	s := a.slots[slot]
	if s.halted {
		return
	}
	if int(s.round) > a.roundCap {
		panic("component: cachin ABA exceeded round cap (liveness bug)")
	}
	a.sendBval(slot, s.round, s.est)
	if !a.catchUp {
		return
	}
	// Catch-up (RoundCatchUp): peers racing ahead may have completed this
	// round's whole exchange while this node was still in the previous
	// one. Those early bvals and AUX votes were recorded but their
	// round == s.round sends were skipped, and nothing else replays them —
	// without this, a node entering a round where the quorums already
	// formed never emits its AUX vote and the exchange can wedge one vote
	// short of N-f.
	rd := a.round(slot, s.round)
	for _, v := range []bool{false, true} {
		if !rd.bvalSent[b2i(v)] && len(rd.bvalRecv[b2i(v)]) >= a.env.Weak() {
			a.sendBval(slot, s.round, v)
		}
		if rd.binValues[b2i(v)] && !rd.auxSent {
			a.sendAux(slot, s.round, v)
		}
	}
	a.checkRound(slot, s.round)
}

func b2i(v bool) int {
	if v {
		return 1
	}
	return 0
}

func (a *CachinABA) sendBval(slot int, round uint16, v bool) {
	rd := a.round(slot, round)
	if rd.bvalSent[b2i(v)] {
		return
	}
	rd.bvalSent[b2i(v)] = true
	var bits uint8
	if rd.bvalSent[0] {
		bits |= 1
	}
	if rd.bvalSent[1] {
		bits |= 2
	}
	a.env.T.Update(core.Intent{
		IntentKey: core.IntentKey{Kind: packet.KindABA, Phase: packet.PhaseBval, Slot: uint8(slot), Round: round},
		Data:      []byte{bits},
	})
	a.applyBval(slot, round, a.env.Me, v)
}

func (a *CachinABA) sendAux(slot int, round uint16, v bool) {
	rd := a.round(slot, round)
	if rd.auxSent {
		return
	}
	rd.auxSent = true
	rd.auxVal = v
	a.env.T.Update(core.Intent{
		IntentKey: core.IntentKey{Kind: packet.KindABA, Phase: packet.PhaseAux, Slot: uint8(slot), Round: round},
		Data:      []byte{uint8(b2i(v))},
	})
	a.applyAux(slot, round, a.env.Me, v)
}

// HandleSection implements core.Handler.
func (a *CachinABA) HandleSection(from uint16, sec packet.Section) {
	w := int(from)
	switch sec.Phase {
	case packet.PhaseBval:
		for _, e := range sec.Entries {
			if int(e.Slot) >= len(a.slots) || len(e.Data) < 1 {
				continue
			}
			if e.Data[0]&1 != 0 {
				a.applyBval(int(e.Slot), e.Round, w, false)
			}
			if e.Data[0]&2 != 0 {
				a.applyBval(int(e.Slot), e.Round, w, true)
			}
			a.reserveRound(int(e.Slot), e.Round)
		}
	case packet.PhaseAux:
		for _, e := range sec.Entries {
			if int(e.Slot) >= len(a.slots) || len(e.Data) < 1 {
				continue
			}
			a.applyAux(int(e.Slot), e.Round, w, e.Data[0] == 1)
			a.reserveRound(int(e.Slot), e.Round)
		}
	case packet.PhaseShare:
		for _, e := range sec.Entries {
			a.handleCoinShare(e.Slot, e.Round, w, e.Data)
		}
	case packet.PhaseDecided:
		for _, e := range sec.Entries {
			if int(e.Slot) >= len(a.slots) || len(e.Data) < 1 {
				continue
			}
			a.applyDecided(int(e.Slot), w, e.Data[0] == 1)
		}
	}
}

// reserveRound re-installs this node's pruned sends for an old round
// (RoundCatchUp only). pruneRounds assumes a lagging honest peer is at
// most one coin exchange behind, but a peer reborn from a full-stop crash
// restarts the instance at round 1 — and if no honest node ever decided
// the slot (the quorum was down), the DECIDED gadget cannot carry it
// either. Traffic for a round this node has fully left is the signal:
// replay the recorded bval/aux/coin-share sends for exactly that round so
// the reborn peer can climb the schedule the protocol's own way — no
// estimates are injected, so the round-by-round safety argument is
// untouched. Rate-limited per round; survivors cannot advance (and
// re-prune) while the laggard climbs, because they lack the quorum.
func (a *CachinABA) reserveRound(slot int, round uint16) {
	if !a.catchUp {
		return
	}
	s := a.slots[slot]
	// pruneRounds' cutoff is s.round-1: anything at or past it still has
	// live intents and needs no replay.
	if s.halted || !s.started || s.round < 2 || round == 0 || round >= s.round-1 {
		return
	}
	rd := s.rounds[round]
	if rd == nil {
		return
	}
	now := a.env.Sched.Now()
	if rd.reservedAt != 0 && now-rd.reservedAt < 2*time.Second {
		return
	}
	rd.reservedAt = now
	if rd.bvalSent[0] || rd.bvalSent[1] {
		var bits uint8
		if rd.bvalSent[0] {
			bits |= 1
		}
		if rd.bvalSent[1] {
			bits |= 2
		}
		a.env.T.Update(core.Intent{
			IntentKey: core.IntentKey{Kind: packet.KindABA, Phase: packet.PhaseBval, Slot: uint8(slot), Round: round},
			Data:      []byte{bits},
		})
	}
	if rd.auxSent {
		a.env.T.Update(core.Intent{
			IntentKey: core.IntentKey{Kind: packet.KindABA, Phase: packet.PhaseAux, Slot: uint8(slot), Round: round},
			Data:      []byte{uint8(b2i(rd.auxVal))},
		})
	}
	k := a.coinKeyFor(slot, round)
	if cs := a.coins[k]; cs != nil && cs.released {
		if data := cs.shares[a.env.Me]; data != nil {
			a.env.T.Update(core.Intent{
				IntentKey: core.IntentKey{Kind: packet.KindABA, Phase: packet.PhaseShare, Slot: k.slot, Sub: uint8(a.env.Me), Round: round},
				Data:      data,
			})
		}
	}
}

// decide records the local decision and broadcasts a DECIDED claim. The
// node keeps participating in rounds (deterministically, est = v) until
// N-f claims confirm that every honest node can terminate — the standard
// termination gadget for common-coin ABA.
func (a *CachinABA) decide(slot int, v bool) {
	s := a.slots[slot]
	if s.decided != nil {
		return
	}
	dec := v
	s.decided = &dec
	a.env.T.Update(core.Intent{
		IntentKey: core.IntentKey{Kind: packet.KindABA, Phase: packet.PhaseDecided, Slot: uint8(slot)},
		Data:      []byte{uint8(b2i(v))},
	})
	a.applyDecided(slot, a.env.Me, v)
	if a.onDecide != nil {
		a.onDecide(slot, v)
	}
}

func (a *CachinABA) applyDecided(slot, w int, v bool) {
	s := a.slots[slot]
	if _, seen := s.claims[w]; seen {
		return
	}
	s.claims[w] = v
	matching := 0
	for _, cv := range s.claims {
		if cv == v {
			matching++
		}
	}
	// f+1 matching claims contain one honest decider: adopt.
	if matching >= a.env.Weak() && s.decided == nil {
		a.decide(slot, v)
	}
	// N-f claims: every honest node can now terminate from claims alone.
	if matching >= a.env.N-a.env.F && !s.halted {
		s.halted = true
		a.env.T.RemoveWhere(func(k core.IntentKey) bool {
			if k.Kind != packet.KindABA || int(k.Slot) != slot {
				return false
			}
			return k.Phase == packet.PhaseBval || k.Phase == packet.PhaseAux ||
				(k.Phase == packet.PhaseShare && !a.sharedCoin)
		})
	}
}

func (a *CachinABA) applyBval(slot int, round uint16, w int, v bool) {
	s := a.slots[slot]
	if !s.started || s.halted || int(round) > a.roundCap {
		return
	}
	rd := a.round(slot, round)
	if rd.bvalRecv[b2i(v)][w] {
		return
	}
	rd.bvalRecv[b2i(v)][w] = true
	n := len(rd.bvalRecv[b2i(v)])
	if n >= a.env.Weak() && !rd.bvalSent[b2i(v)] && round == s.round {
		a.sendBval(slot, round, v) // BVAL amplification
	}
	if n >= a.env.Quorum() && !rd.binValues[b2i(v)] {
		rd.binValues[b2i(v)] = true
		if !rd.auxSent && round == s.round {
			a.sendAux(slot, round, v)
		}
		a.checkRound(slot, round)
	}
}

func (a *CachinABA) applyAux(slot int, round uint16, w int, v bool) {
	s := a.slots[slot]
	if !s.started || s.halted || int(round) > a.roundCap {
		return
	}
	rd := a.round(slot, round)
	if _, seen := rd.auxRecv[w]; seen {
		return
	}
	val := v
	rd.auxRecv[w] = &val
	a.checkRound(slot, round)
}

// checkRound fires when N-f AUX votes carrying bin_values have arrived:
// release the coin share, and once the coin is known, advance.
func (a *CachinABA) checkRound(slot int, round uint16) {
	s := a.slots[slot]
	if round != s.round || s.rounds[round].advanced {
		return
	}
	rd := s.rounds[round]
	count := 0
	vals := [2]bool{}
	for _, v := range rd.auxRecv {
		if rd.binValues[b2i(*v)] {
			count++
			vals[b2i(*v)] = true
		}
	}
	if count < a.env.N-a.env.F {
		return
	}
	rd.valsReady = true
	a.releaseCoinShare(slot, round)
	a.withCoin(slot, round, func(coin bool) {
		a.advance(slot, round, vals, coin)
	})
}

// coinKeyFor returns the coin identity for (slot, round) under the
// configured sharing mode.
func (a *CachinABA) coinKeyFor(slot int, round uint16) coinKey {
	if a.sharedCoin {
		return coinKey{slot: sharedSlot, round: round}
	}
	return coinKey{slot: uint8(slot), round: round}
}

func (a *CachinABA) coinState(k coinKey) *coinState {
	cs := a.coins[k]
	if cs == nil {
		cs = &coinState{shares: make(map[int][]byte)}
		a.coins[k] = cs
	}
	return cs
}

func (a *CachinABA) releaseCoinShare(slot int, round uint16) {
	k := a.coinKeyFor(slot, round)
	cs := a.coinState(k)
	if cs.released {
		return
	}
	cs.released = true
	name := coinName(a.env.Session, a.env.Epoch, k.slot, k.round)
	shareCost, _, _ := a.coin.Costs()
	env := a.env
	env.Exec(shareCost, func() {
		data, err := a.coin.ShareData(name)
		if err != nil {
			panic("component: coin share generation failed: " + err.Error())
		}
		env.T.Update(core.Intent{
			IntentKey: core.IntentKey{Kind: packet.KindABA, Phase: packet.PhaseShare, Slot: k.slot, Sub: uint8(env.Me), Round: round},
			Data:      data,
		})
		a.acceptCoinShare(k, env.Me, data)
	})
}

func (a *CachinABA) handleCoinShare(slot uint8, round uint16, w int, data []byte) {
	k := coinKey{slot: slot, round: round}
	if a.sharedCoin && slot != sharedSlot {
		return // batched mode only uses the shared coin
	}
	if !a.sharedCoin && slot == sharedSlot {
		return
	}
	cs := a.coinState(k)
	if _, dup := cs.shares[w]; dup || cs.value != nil {
		return
	}
	name := coinName(a.env.Session, a.env.Epoch, k.slot, k.round)
	_, verifyCost, _ := a.coin.Costs()
	data = append([]byte(nil), data...)
	env := a.env
	env.Exec(verifyCost, func() {
		if _, dup := cs.shares[w]; dup || cs.value != nil {
			return
		}
		if err := a.coin.VerifyShare(name, data); err != nil {
			env.Reject() // Byzantine share
			return
		}
		a.acceptCoinShare(k, w, data)
	})
}

func (a *CachinABA) acceptCoinShare(k coinKey, w int, data []byte) {
	cs := a.coinState(k)
	if _, dup := cs.shares[w]; dup || cs.combined {
		return
	}
	cs.shares[w] = data
	if len(cs.shares) < a.coin.Threshold() {
		return
	}
	cs.combined = true
	name := coinName(a.env.Session, a.env.Epoch, k.slot, k.round)
	raw := make([][]byte, 0, len(cs.shares))
	for _, d := range cs.shares {
		raw = append(raw, d)
	}
	_, _, combineCost := a.coin.Costs()
	env := a.env
	env.Exec(combineCost, func() {
		v, err := a.coin.Combine(name, raw)
		if err != nil {
			// A bad share slipped through (possible only if verification
			// was skipped); reset and wait for more shares.
			cs.combined = false
			cs.shares = make(map[int][]byte)
			return
		}
		cs.value = &v
		for _, fn := range cs.waiting {
			fn(v)
		}
		cs.waiting = nil
	})
}

func (a *CachinABA) withCoin(slot int, round uint16, fn func(bool)) {
	cs := a.coinState(a.coinKeyFor(slot, round))
	if cs.value != nil {
		fn(*cs.value)
		return
	}
	cs.waiting = append(cs.waiting, fn)
}

// advance applies the round decision rule and moves to the next round.
func (a *CachinABA) advance(slot int, round uint16, vals [2]bool, coin bool) {
	s := a.slots[slot]
	if round != s.round {
		return
	}
	rd := s.rounds[round]
	if rd.advanced || !rd.valsReady {
		return
	}
	rd.advanced = true
	switch {
	case vals[0] != vals[1]: // single value v
		v := vals[1]
		s.est = v
		if v == coin {
			a.decide(slot, v)
		}
	default: // both values present
		s.est = coin
	}
	s.round++
	a.pruneRounds(slot, s.round)
	a.startRound(slot)
}

// pruneRounds drops outbound state older than the previous round: a
// lagging honest peer can be at most one coin exchange behind, and beyond
// that the DECIDED gadget carries it over the line.
func (a *CachinABA) pruneRounds(slot int, current uint16) {
	if current < 2 {
		return
	}
	cutoff := current - 1
	a.env.T.RemoveWhere(func(k core.IntentKey) bool {
		if k.Kind != packet.KindABA || k.Round >= cutoff || k.Round == 0 {
			return false
		}
		switch k.Phase {
		case packet.PhaseBval, packet.PhaseAux:
			return int(k.Slot) == slot
		case packet.PhaseShare:
			// Shared-coin shares are pruned only when every slot has left
			// the round; per-slot coins prune with their slot.
			if a.sharedCoin {
				for _, s := range a.slots {
					if s.started && !s.halted && s.round <= k.Round {
						return false
					}
				}
				return true
			}
			return int(k.Slot) == slot
		}
		return false
	})
}
