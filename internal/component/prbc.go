package component

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/crypto/threshsig"
	"repro/internal/packet"
)

// PRBC is provable reliable broadcast (Dumbo's building block): Bracha RBC
// plus a DONE phase in which nodes that delivered slot j broadcast
// threshold-signature shares over (epoch, slot, hash); any f+1 shares
// combine into a proof that at least one honest node holds the proposal
// (Fig. 1a's blue phase, packet structure Fig. 4c).
type PRBC struct {
	env *Env
	rbc *RBC

	onProof   func(slot int, value []byte, proof []byte)
	onDeliver func(slot int, value []byte)

	sigDone packet.BitSet // compressed NACK: slot has a combined proof
	slots   []*prbcSlot
}

type prbcSlot struct {
	shares    map[int]*threshsig.SigShare
	pending   map[int][]byte // shares received before our RBC delivery
	combining bool
	proof     []byte
	hash      Hash8
	delivered bool
	peersDone packet.BitSet // peers whose NACK confirms a combined proof
}

// PRBCOptions configures a PRBC component.
type PRBCOptions struct {
	Slots     int
	FragSize  int
	OnProof   func(slot int, value []byte, proof []byte)
	OnDeliver func(slot int, value []byte) // underlying RBC delivery hook
}

// NewPRBC creates the component and registers both its RBC part (KindRBC)
// and its DONE part (KindPRBC) on the transport.
func NewPRBC(env *Env, opts PRBCOptions) *PRBC {
	p := &PRBC{
		env:       env,
		onProof:   opts.OnProof,
		onDeliver: opts.OnDeliver,
		sigDone:   packet.NewBitSet(opts.Slots),
	}
	for i := 0; i < opts.Slots; i++ {
		p.slots = append(p.slots, &prbcSlot{
			shares:    make(map[int]*threshsig.SigShare),
			pending:   make(map[int][]byte),
			peersDone: packet.NewBitSet(env.N),
		})
	}
	p.rbc = NewRBC(env, RBCOptions{
		Kind:      packet.KindRBC,
		Slots:     opts.Slots,
		FragSize:  opts.FragSize,
		OnDeliver: p.onRBCDeliver,
	})
	env.T.Register(packet.KindPRBC, p)
	return p
}

// Propose starts this node's instance.
func (p *PRBC) Propose(slot int, value []byte) { p.rbc.Propose(slot, value) }

// RBC exposes the underlying broadcast (for delivered values).
func (p *PRBC) RBC() *RBC { return p.rbc }

// Proof returns the combined proof for a slot, or nil.
func (p *PRBC) Proof(slot int) []byte { return p.slots[slot].proof }

// ProvenCount returns the number of slots with combined proofs.
func (p *PRBC) ProvenCount() int {
	n := 0
	for _, s := range p.slots {
		if s.proof != nil {
			n++
		}
	}
	return n
}

// doneMessage is the string the DONE shares sign.
func (p *PRBC) doneMessage(slot int, h Hash8) []byte {
	msg := make([]byte, 0, 32)
	msg = append(msg, "prbc-done"...)
	msg = binary.BigEndian.AppendUint32(msg, p.env.Session)
	msg = binary.BigEndian.AppendUint16(msg, p.env.Epoch)
	msg = append(msg, byte(slot))
	return append(msg, h[:]...)
}

// VerifyProof checks a combined PRBC proof (used by Dumbo when examining
// other nodes' proof vectors).
func (p *PRBC) VerifyProof(slot int, h Hash8, proof []byte) error {
	sig, err := DecodeSigShareless(proof)
	if err != nil {
		return err
	}
	return p.env.Suite.TSLow.Verify(p.doneMessage(slot, h), sig)
}

func (p *PRBC) onRBCDeliver(slot int, value []byte) {
	s := p.slots[slot]
	s.hash = HashValue(value)
	s.delivered = true
	msg := p.doneMessage(slot, s.hash)
	env := p.env
	env.Exec(env.Suite.Cost.TSSign, func() {
		share, err := env.Suite.TSLow.Sign(env.Suite.TSLowShare, msg, env.Rand)
		if err != nil {
			panic(fmt.Sprintf("component: prbc share signing: %v", err))
		}
		env.T.Update(core.Intent{
			IntentKey: core.IntentKey{Kind: packet.KindPRBC, Phase: packet.PhaseDone, Slot: uint8(slot), Sub: uint8(env.Me)},
			Data:      EncodeSigShare(share),
		})
		p.applyShare(slot, env.Me, share)
	})
	// Process shares that arrived before our delivery, in node order
	// (map iteration order must not leak into event scheduling).
	for w := 0; w < p.env.N; w++ {
		if raw, ok := s.pending[w]; ok {
			p.handleShareData(slot, w, raw)
		}
	}
	s.pending = make(map[int][]byte)
	if p.onDeliver != nil {
		p.onDeliver(slot, value)
	}
}

// HandleSection implements core.Handler for KindPRBC.
func (p *PRBC) HandleSection(from uint16, sec packet.Section) {
	if sec.Phase != packet.PhaseDone {
		return
	}
	// The sender's compressed NACK says which slots it holds proofs for;
	// once every peer holds one, our share is no longer needed on the air.
	for slot := range p.slots {
		if !sec.Nack.Get(slot) {
			continue
		}
		s := p.slots[slot]
		s.peersDone.Set(int(from))
		if s.peersDone.Count() >= p.env.N-1 {
			p.env.T.Remove(core.IntentKey{Kind: packet.KindPRBC, Phase: packet.PhaseDone, Slot: uint8(slot), Sub: uint8(p.env.Me)})
		}
	}
	for _, e := range sec.Entries {
		slot := int(e.Slot)
		if slot >= len(p.slots) {
			continue
		}
		s := p.slots[slot]
		if s.proof != nil {
			continue
		}
		if !s.delivered {
			// Cannot verify until we know the hash; park it.
			if _, dup := s.pending[int(from)]; !dup {
				s.pending[int(from)] = append([]byte(nil), e.Data...)
			}
			continue
		}
		p.handleShareData(slot, int(from), e.Data)
	}
}

func (p *PRBC) handleShareData(slot, w int, raw []byte) {
	s := p.slots[slot]
	if _, dup := s.shares[w]; dup || s.proof != nil {
		return
	}
	share, err := DecodeSigShare(raw)
	if err != nil {
		p.env.Reject()
		return
	}
	// The verifier snapshot shares the per-message fixed work (hash and
	// Delta power) across all N share checks; virtual time still charges a
	// full TSVerifyShare per share.
	ver := p.env.Suite.TSLow.Verifier(p.doneMessage(slot, s.hash))
	env := p.env
	env.Exec(env.Suite.Cost.TSVerifyShare, func() {
		if _, dup := s.shares[w]; dup || s.proof != nil {
			return
		}
		if err := ver.Verify(share); err != nil {
			env.Reject() // Byzantine share: discard
			return
		}
		p.applyShare(slot, w, share)
	})
}

func (p *PRBC) applyShare(slot, w int, share *threshsig.SigShare) {
	s := p.slots[slot]
	if _, dup := s.shares[w]; dup || s.proof != nil {
		return
	}
	s.shares[w] = share
	if len(s.shares) < p.env.Weak() || s.combining {
		return
	}
	s.combining = true
	shares := make([]*threshsig.SigShare, 0, len(s.shares))
	for _, sh := range s.shares {
		shares = append(shares, sh)
	}
	msg := p.doneMessage(slot, s.hash)
	env := p.env
	env.Exec(env.Suite.Cost.TSCombine, func() {
		sig, err := env.Suite.TSLow.Combine(msg, shares)
		if err != nil {
			// A bad share slipped through; drop them all and wait for more.
			s.combining = false
			s.shares = make(map[int]*threshsig.SigShare)
			return
		}
		s.proof = sig.Bytes()
		p.sigDone.Set(slot)
		// Keep our share intent live: a peer that missed share frames
		// (half-duplex, loss) still needs it; peersDone tracking prunes it.
		env.T.SetNack(packet.KindPRBC, packet.PhaseDone, p.sigDone)
		if p.onProof != nil {
			p.onProof(slot, p.rbc.Value(slot), s.proof)
		}
	})
}

// DecodeSigShareless parses a combined signature from its raw bytes.
func DecodeSigShareless(raw []byte) (*threshsig.Signature, error) {
	if len(raw) == 0 {
		return nil, errShortShare
	}
	return &threshsig.Signature{S: bigFromBytes(raw)}, nil
}
