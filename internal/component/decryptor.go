package component

import (
	"repro/internal/core"
	"repro/internal/crypto/threshenc"
	"repro/internal/packet"
)

// Decryptor runs the threshold-decryption exchange HoneyBadgerBFT and BEAT
// perform after ACS fixes the accepted proposal set: every node broadcasts
// one decryption share per accepted ciphertext; f+1 verified shares
// recover each plaintext. Shares ride the same batched packets as
// everything else (vertical batching across the accepted slots).
type Decryptor struct {
	env   *Env
	slots map[int]*decSlot

	onPlain func(slot int, plaintext []byte)

	done packet.BitSet
}

type decSlot struct {
	ct        *threshenc.Ciphertext
	shares    map[int]*threshenc.DecShare
	pending   map[int][]byte
	combining bool
	plain     []byte
	peersDone packet.BitSet
}

// NewDecryptor creates the component and registers it on the transport.
func NewDecryptor(env *Env, slots int, onPlain func(slot int, plaintext []byte)) *Decryptor {
	d := &Decryptor{
		env:     env,
		slots:   make(map[int]*decSlot),
		onPlain: onPlain,
		done:    packet.NewBitSet(slots),
	}
	env.T.Register(packet.KindDec, d)
	return d
}

// Submit provides the ciphertext accepted for a slot and releases this
// node's decryption share.
func (d *Decryptor) Submit(slot int, ct *threshenc.Ciphertext) {
	if _, dup := d.slots[slot]; dup {
		return
	}
	s := &decSlot{ct: ct, shares: make(map[int]*threshenc.DecShare), pending: make(map[int][]byte)}
	d.slots[slot] = s
	env := d.env
	env.Exec(env.Suite.Cost.TEDecShare, func() {
		share, err := env.Suite.TE.DecryptShare(env.Suite.TEShare, ct, env.Rand)
		if err != nil {
			return // malformed ciphertext: nothing to contribute
		}
		env.T.Update(core.Intent{
			IntentKey: core.IntentKey{Kind: packet.KindDec, Phase: packet.PhaseDecShare, Slot: uint8(slot), Sub: uint8(env.Me)},
			Data:      EncodeDecShare(share),
		})
		d.applyShare(slot, env.Me, share)
	})
	for w, raw := range s.pending {
		d.handleShareData(slot, w, raw)
	}
	s.pending = make(map[int][]byte)
}

// Plaintext returns the recovered plaintext for a slot, or nil.
func (d *Decryptor) Plaintext(slot int) []byte {
	if s, ok := d.slots[slot]; ok {
		return s.plain
	}
	return nil
}

// HandleSection implements core.Handler.
func (d *Decryptor) HandleSection(from uint16, sec packet.Section) {
	if sec.Phase != packet.PhaseDecShare {
		return
	}
	w := int(from)
	// Prune our share intents only when every peer confirms completion —
	// and re-announce them when a peer that had confirmed turns up without
	// the done bit again: it lost its state (crash recovery) and needs the
	// f+1 shares back on the air. Iterate in slot order: map order must not
	// leak into scheduling.
	for slot := 0; slot < len(d.done)*8; slot++ {
		s, ok := d.slots[slot]
		if !ok {
			continue
		}
		if !sec.Nack.Get(slot) {
			if s.peersDone != nil && s.peersDone.Get(w) {
				wasPruned := s.peersDone.Count() >= d.env.N-1
				s.peersDone.Clear(w)
				if wasPruned {
					if share, ok := s.shares[d.env.Me]; ok {
						d.env.T.Update(core.Intent{
							IntentKey: core.IntentKey{Kind: packet.KindDec, Phase: packet.PhaseDecShare, Slot: uint8(slot), Sub: uint8(d.env.Me)},
							Data:      EncodeDecShare(share),
						})
					}
				}
			}
			continue
		}
		if s.peersDone == nil {
			s.peersDone = packet.NewBitSet(d.env.N)
		}
		s.peersDone.Set(w)
		if s.peersDone.Count() >= d.env.N-1 {
			d.env.T.Remove(core.IntentKey{Kind: packet.KindDec, Phase: packet.PhaseDecShare, Slot: uint8(slot), Sub: uint8(d.env.Me)})
		}
	}
	for _, e := range sec.Entries {
		slot := int(e.Slot)
		s, ok := d.slots[slot]
		if !ok {
			// Ciphertext not known yet (our ACS is still completing); park.
			d.slots[slot] = &decSlot{
				shares:  make(map[int]*threshenc.DecShare),
				pending: map[int][]byte{w: append([]byte(nil), e.Data...)},
			}
			continue
		}
		if s.ct == nil {
			if _, dup := s.pending[w]; !dup {
				s.pending[w] = append([]byte(nil), e.Data...)
			}
			continue
		}
		d.handleShareData(slot, w, e.Data)
	}
}

// SubmitLate attaches a ciphertext to a slot whose shares arrived first.
func (d *Decryptor) SubmitLate(slot int, ct *threshenc.Ciphertext) {
	s, ok := d.slots[slot]
	if !ok || s.ct != nil {
		d.Submit(slot, ct)
		return
	}
	s.ct = ct
	env := d.env
	env.Exec(env.Suite.Cost.TEDecShare, func() {
		share, err := env.Suite.TE.DecryptShare(env.Suite.TEShare, ct, env.Rand)
		if err != nil {
			return
		}
		env.T.Update(core.Intent{
			IntentKey: core.IntentKey{Kind: packet.KindDec, Phase: packet.PhaseDecShare, Slot: uint8(slot), Sub: uint8(env.Me)},
			Data:      EncodeDecShare(share),
		})
		d.applyShare(slot, env.Me, share)
	})
	for w := 0; w < d.env.N; w++ {
		if raw, ok := s.pending[w]; ok {
			d.handleShareData(slot, w, raw)
		}
	}
	s.pending = make(map[int][]byte)
}

func (d *Decryptor) handleShareData(slot, w int, raw []byte) {
	s := d.slots[slot]
	if _, dup := s.shares[w]; dup || s.plain != nil {
		return
	}
	share, err := DecodeDecShare(raw)
	if err != nil {
		d.env.Reject()
		return
	}
	env := d.env
	env.Exec(env.Suite.Cost.TEVerifyShare, func() {
		if _, dup := s.shares[w]; dup || s.plain != nil {
			return
		}
		if err := env.Suite.TE.VerifyShare(s.ct, share); err != nil {
			env.Reject() // Byzantine share
			return
		}
		d.applyShare(slot, w, share)
	})
}

func (d *Decryptor) applyShare(slot, w int, share *threshenc.DecShare) {
	s := d.slots[slot]
	if _, dup := s.shares[w]; dup || s.plain != nil {
		return
	}
	s.shares[w] = share
	if len(s.shares) < d.env.Weak() || s.combining {
		return
	}
	s.combining = true
	shares := make([]*threshenc.DecShare, 0, len(s.shares))
	for _, sh := range s.shares {
		shares = append(shares, sh)
	}
	env := d.env
	env.Exec(env.Suite.Cost.TECombine, func() {
		plain, err := env.Suite.TE.Combine(s.ct, shares)
		if err != nil {
			s.combining = false
			s.shares = make(map[int]*threshenc.DecShare)
			return
		}
		s.plain = plain
		if slot < len(d.done)*8 {
			d.done.Set(slot)
			env.T.SetNack(packet.KindDec, packet.PhaseDecShare, d.done)
		}
		// The share intent stays live until peersDone confirms everyone
		// combined (see HandleSection).
		if d.onPlain != nil {
			d.onPlain(slot, plain)
		}
	})
}
