package component

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/sim"
	"repro/internal/wireless"
)

// vcbcFuzzRig is a real 4-node VCBC run built once per process: node 0
// broadcasts on slot 0, everyone delivers, and the fuzz target checks
// arbitrary byte strings against the surviving verifier instance and the
// genuine proof.
type vcbcFuzzRig struct {
	verifier *VCBC  // node 1's instance, used to verify fuzzed proofs
	genuine  []byte // node 0's transferable proof for slot 0
	hash     Hash8
}

var (
	vcbcRigOnce sync.Once
	vcbcRig     vcbcFuzzRig
)

func mustVCBCRig() *vcbcFuzzRig {
	vcbcRigOnce.Do(func() {
		const n, f, seed = 4, 1, 99
		sched := sim.New(seed)
		ch := wireless.NewChannel(sched, wireless.DefaultConfig())
		suites, err := crypto.Deal(n, f, crypto.LightConfig(), rand.New(rand.NewSource(seed)))
		if err != nil {
			panic(err)
		}
		insts := make([]*VCBC, n)
		for i := 0; i < n; i++ {
			cpu := sim.NewCPU(sched)
			auth := &core.SizedAuth{
				Len:        suites[i].Signer.Scheme().SignatureLen(),
				CostSign:   suites[i].Cost.PKSign,
				CostVerify: suites[i].Cost.PKVerify,
			}
			tr := core.New(sched, cpu, nil, auth, core.DefaultConfig(true))
			st := ch.Attach(wireless.NodeID(i), tr)
			tr.BindStation(st)
			env := &Env{
				N: n, F: f, Me: i,
				Session: 42,
				Suite:   suites[i],
				T:       tr,
				CPU:     cpu,
				Sched:   sched,
				Rand:    rand.New(rand.NewSource(seed + int64(i)*1000)),
			}
			insts[i] = NewVCBC(env, VCBCOptions{Slots: n})
		}
		insts[0].Broadcast(0, []byte("vcbc fuzz rig value"))
		for sched.Now() < 30*time.Minute {
			all := true
			for _, v := range insts {
				if !v.Delivered(0) {
					all = false
					break
				}
			}
			if all || !sched.Step() {
				break
			}
		}
		proof := insts[0].Proof(0)
		if proof == nil {
			panic("vcbc fuzz rig: broadcast never delivered")
		}
		if err := insts[1].VerifyProof(0, proof); err != nil {
			panic(fmt.Sprintf("vcbc fuzz rig: genuine proof rejected: %v", err))
		}
		vcbcRig = vcbcFuzzRig{
			verifier: insts[1],
			genuine:  proof,
			hash:     HashValue([]byte("vcbc fuzz rig value")),
		}
	})
	return &vcbcRig
}

// FuzzVCBCDecode pins the VCBC proof surface: arbitrary bytes never
// panic the decoder, every accepted encoding is canonical (decode then
// encode is the identity), and nothing verifies unless it is semantically
// the genuine certificate — same slot, same value hash, same signature
// integer (big.Int certs tolerate leading zero bytes, so byte equality
// is deliberately not the bar).
func FuzzVCBCDecode(f *testing.F) {
	rig := mustVCBCRig()
	f.Add([]byte{})
	f.Add(rig.genuine)
	f.Add(rig.genuine[:len(rig.genuine)-1])
	f.Add(append(append([]byte(nil), rig.genuine...), 0))
	mut := append([]byte(nil), rig.genuine...)
	mut[len(mut)/2] ^= 0x20
	f.Add(mut)
	f.Fuzz(func(t *testing.T, raw []byte) {
		p, err := DecodeVCBCProof(raw)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeVCBCProof(p), raw) {
			t.Fatalf("accepted non-canonical encoding: %x", raw)
		}
		if rig.verifier.VerifyProof(int(p.Slot), raw) != nil {
			return
		}
		genuine, _ := DecodeVCBCProof(rig.genuine)
		if p.Slot != genuine.Slot || p.Hash != genuine.Hash ||
			bigFromBytes(p.Cert).Cmp(bigFromBytes(genuine.Cert)) != 0 {
			t.Fatalf("forged proof verified: %x", raw)
		}
	})
}
