package component

import (
	"encoding/binary"
	"fmt"
	"math/big"
	"time"

	"repro/internal/core"
	"repro/internal/crypto/threshsig"
	"repro/internal/packet"
)

func bigFromBytes(b []byte) *big.Int { return new(big.Int).SetBytes(b) }

// CBC runs N parallel consistent-broadcast instances (Fig. 1b): the leader
// disseminates its proposal (INITIAL), every node returns a 2f+1-threshold
// signature share over it (ECHO, the paper's N-to-1 round), and the leader
// combines and broadcasts the quorum certificate (FINISH). Delivery of
// (value, certificate) proves 2f+1 nodes received the value.
//
// The -small variant (Fig. 5b) inlines tiny proposals (Dumbo's CBC-commit
// carries a 2f+1-sized node-ID list).
type CBC struct {
	env   *Env
	kind  packet.Kind
	small bool
	frag  int
	slots []*cbcSlot

	onDeliver func(slot int, value []byte, cert []byte)

	finDone packet.BitSet
}

type cbcSlot struct {
	leader int

	value     []byte
	frags     [][]byte
	fragTotal int
	assembled bool

	sentShare bool
	shares    map[int]*threshsig.SigShare // leader only
	combining bool

	cert      []byte
	certHash  Hash8
	delivered bool

	needRepair bool
	repairAt   time.Duration
}

// CBCOptions configures a CBC component.
type CBCOptions struct {
	Kind      packet.Kind // KindCBCValue or KindCBCCommit
	Slots     int
	Small     bool
	FragSize  int
	OnDeliver func(slot int, value []byte, cert []byte)
}

// NewCBC creates the component and registers it on the transport.
func NewCBC(env *Env, opts CBCOptions) *CBC {
	if opts.FragSize <= 0 {
		opts.FragSize = 160
	}
	c := &CBC{
		env:       env,
		kind:      opts.Kind,
		small:     opts.Small,
		frag:      opts.FragSize,
		onDeliver: opts.OnDeliver,
		finDone:   packet.NewBitSet(opts.Slots),
	}
	for i := 0; i < opts.Slots; i++ {
		c.slots = append(c.slots, &cbcSlot{
			leader: i % env.N,
			shares: make(map[int]*threshsig.SigShare),
		})
	}
	env.T.Register(opts.Kind, c)
	return c
}

// Delivered reports whether a slot completed.
func (c *CBC) Delivered(slot int) bool { return c.slots[slot].delivered }

// DeliveredCount returns the number of completed slots.
func (c *CBC) DeliveredCount() int {
	n := 0
	for _, s := range c.slots {
		if s.delivered {
			n++
		}
	}
	return n
}

// Value returns a delivered slot's value (nil before delivery).
func (c *CBC) Value(slot int) []byte {
	if !c.slots[slot].delivered {
		return nil
	}
	return c.slots[slot].value
}

// shareMessage is the string the ECHO threshold shares sign.
func (c *CBC) shareMessage(slot int, h Hash8) []byte {
	msg := make([]byte, 0, 32)
	msg = append(msg, "cbc-echo"...)
	msg = append(msg, byte(c.kind))
	msg = binary.BigEndian.AppendUint32(msg, c.env.Session)
	msg = binary.BigEndian.AppendUint16(msg, c.env.Epoch)
	msg = append(msg, byte(slot))
	return append(msg, h[:]...)
}

// Propose starts instance slot with this node as leader.
func (c *CBC) Propose(slot int, value []byte) {
	s := c.slots[slot]
	if s.leader != c.env.Me {
		panic(fmt.Sprintf("component: node %d proposing CBC slot %d led by %d", c.env.Me, slot, s.leader))
	}
	if c.small {
		c.env.T.Update(core.Intent{
			IntentKey: core.IntentKey{Kind: c.kind, Phase: packet.PhaseInitial, Slot: uint8(slot)},
			Data:      append([]byte(nil), value...),
		})
	} else {
		total := (len(value) + c.frag - 1) / c.frag
		if total == 0 {
			total = 1
		}
		for i := 0; i < total; i++ {
			lo, hi := i*c.frag, (i+1)*c.frag
			if hi > len(value) {
				hi = len(value)
			}
			c.env.T.Update(core.Intent{
				IntentKey: core.IntentKey{Kind: c.kind, Phase: packet.PhaseInitial, Slot: uint8(slot), Sub: uint8(i)},
				Flags:     uint8(total),
				Data:      append([]byte(nil), value[lo:hi]...),
			})
		}
	}
	c.acceptValue(slot, value)
}

func (c *CBC) acceptValue(slot int, value []byte) {
	s := c.slots[slot]
	if s.assembled {
		return
	}
	s.assembled = true
	s.value = value
	if !s.sentShare {
		s.sentShare = true
		h := HashValue(value)
		msg := c.shareMessage(slot, h)
		env := c.env
		env.Exec(env.Suite.Cost.TSSign, func() {
			share, err := env.Suite.TSHigh.Sign(env.Suite.TSHighShare, msg, env.Rand)
			if err != nil {
				panic(fmt.Sprintf("component: cbc share signing: %v", err))
			}
			env.T.Update(core.Intent{
				IntentKey: core.IntentKey{Kind: c.kind, Phase: packet.PhaseEcho, Slot: uint8(slot), Sub: uint8(env.Me)},
				Data:      EncodeSigShare(share),
			})
			if s.leader == env.Me {
				c.applyShare(slot, env.Me, share)
			}
		})
	}
	c.deliver(slot)
}

// HandleSection implements core.Handler.
func (c *CBC) HandleSection(from uint16, sec packet.Section) {
	w := int(from)
	switch sec.Phase {
	case packet.PhaseInitial:
		for _, e := range sec.Entries {
			c.handleInitial(w, e)
		}
	case packet.PhaseEcho:
		for _, e := range sec.Entries {
			slot := int(e.Slot)
			if slot >= len(c.slots) {
				continue
			}
			// Only the slot's leader combines shares.
			if c.slots[slot].leader != c.env.Me {
				continue
			}
			c.handleShareData(slot, w, e.Data)
		}
	case packet.PhaseFinish:
		for _, e := range sec.Entries {
			c.handleFinish(int(e.Slot), w, e.Data)
		}
	case packet.PhaseRepair:
		for _, e := range sec.Entries {
			c.handleRepairRequest(int(e.Slot), e.Data)
		}
	}
}

func (c *CBC) handleInitial(w int, e packet.Entry) {
	slot := int(e.Slot)
	if slot >= len(c.slots) {
		return
	}
	s := c.slots[slot]
	// After a repair request any peer may supply the value; delivery
	// re-checks the hash against the quorum certificate.
	if s.assembled || (w != s.leader && !s.needRepair) {
		return
	}
	if c.small {
		c.acceptValue(slot, append([]byte(nil), e.Data...))
		return
	}
	total := int(e.Flags)
	if total == 0 {
		return
	}
	if s.frags == nil {
		s.frags = make([][]byte, total)
		s.fragTotal = total
	}
	if total != s.fragTotal || int(e.Sub) >= total || s.frags[e.Sub] != nil {
		return
	}
	s.frags[e.Sub] = append([]byte(nil), e.Data...)
	for _, f := range s.frags {
		if f == nil {
			return
		}
	}
	var value []byte
	for _, f := range s.frags {
		value = append(value, f...)
	}
	c.acceptValue(slot, value)
}

func (c *CBC) handleShareData(slot, w int, raw []byte) {
	s := c.slots[slot]
	if _, dup := s.shares[w]; dup || s.cert != nil || !s.assembled {
		return
	}
	share, err := DecodeSigShare(raw)
	if err != nil {
		c.env.Reject()
		return
	}
	// Verifier shares the per-message fixed work across the quorum of
	// share checks; the virtual TSVerifyShare charge stays per share.
	ver := c.env.Suite.TSHigh.Verifier(c.shareMessage(slot, HashValue(s.value)))
	env := c.env
	env.Exec(env.Suite.Cost.TSVerifyShare, func() {
		if _, dup := s.shares[w]; dup || s.cert != nil {
			return
		}
		if err := ver.Verify(share); err != nil {
			env.Reject()
			return
		}
		c.applyShare(slot, w, share)
	})
}

func (c *CBC) applyShare(slot, w int, share *threshsig.SigShare) {
	s := c.slots[slot]
	if _, dup := s.shares[w]; dup || s.cert != nil {
		return
	}
	s.shares[w] = share
	if len(s.shares) < c.env.Quorum() || s.combining {
		return
	}
	s.combining = true
	shares := make([]*threshsig.SigShare, 0, len(s.shares))
	for _, sh := range s.shares {
		shares = append(shares, sh)
	}
	h := HashValue(s.value)
	msg := c.shareMessage(slot, h)
	env := c.env
	env.Exec(env.Suite.Cost.TSCombine, func() {
		sig, err := env.Suite.TSHigh.Combine(msg, shares)
		if err != nil {
			s.combining = false
			s.shares = make(map[int]*threshsig.SigShare)
			return
		}
		s.cert = sig.Bytes()
		s.certHash = h
		env.T.Update(core.Intent{
			IntentKey: core.IntentKey{Kind: c.kind, Phase: packet.PhaseFinish, Slot: uint8(slot)},
			Data:      EncodeFinish(h, s.cert),
		})
		c.deliver(slot)
	})
}

func (c *CBC) handleFinish(slot, w int, raw []byte) {
	if slot >= len(c.slots) {
		return
	}
	s := c.slots[slot]
	if s.delivered {
		return
	}
	h, cert, err := DecodeFinish(raw)
	if err != nil {
		c.env.Reject()
		return
	}
	msg := c.shareMessage(slot, h)
	env := c.env
	env.Exec(env.Suite.Cost.TSVerify, func() {
		if s.delivered {
			return
		}
		if err := env.Suite.TSHigh.Verify(msg, &threshsig.Signature{S: bigFromBytes(cert)}); err != nil {
			env.Reject()
			return
		}
		s.cert = cert
		s.certHash = h
		if !s.assembled {
			c.requestRepair(slot)
			return
		}
		if HashValue(s.value) != h {
			// A certificate for a different value than we assembled: the
			// certificate wins (2f+1 nodes vouched for it).
			s.assembled = false
			s.value = nil
			s.frags = nil
			c.requestRepair(slot)
			return
		}
		c.deliver(slot)
	})
}

func (c *CBC) deliver(slot int) {
	s := c.slots[slot]
	if s.delivered || s.cert == nil || !s.assembled {
		return
	}
	if HashValue(s.value) != s.certHash {
		// Repair supplied a value that does not match the certificate.
		s.assembled = false
		s.value = nil
		s.frags = nil
		s.needRepair = false
		c.requestRepair(slot)
		return
	}
	s.delivered = true
	c.finDone.Set(slot)
	c.env.T.SetNack(c.kind, packet.PhaseFinish, c.finDone)
	c.env.T.Remove(core.IntentKey{Kind: c.kind, Phase: packet.PhaseEcho, Slot: uint8(slot), Sub: uint8(c.env.Me)})
	if s.needRepair {
		c.env.T.Remove(core.IntentKey{Kind: c.kind, Phase: packet.PhaseRepair, Slot: uint8(slot)})
	}
	if c.onDeliver != nil {
		c.onDeliver(slot, s.value, s.cert)
	}
}

func (c *CBC) requestRepair(slot int) {
	s := c.slots[slot]
	if s.needRepair {
		return
	}
	s.needRepair = true
	have := packet.NewBitSet(256)
	for i, f := range s.frags {
		if f != nil {
			have.Set(i)
		}
	}
	c.env.T.Update(core.Intent{
		IntentKey: core.IntentKey{Kind: c.kind, Phase: packet.PhaseRepair, Slot: uint8(slot)},
		Data:      have,
	})
}

// Fetch requests a slot's value and certificate from peers (Dumbo calls
// this when a serial ABA accepts a candidate whose CBC this node missed;
// CBC has no totality guarantee of its own).
func (c *CBC) Fetch(slot int) { c.requestRepair(slot) }

func (c *CBC) handleRepairRequest(slot int, have packet.BitSet) {
	if slot >= len(c.slots) {
		return
	}
	s := c.slots[slot]
	if !s.assembled {
		return
	}
	now := c.env.Sched.Now()
	if s.repairAt != 0 && now-s.repairAt < 2*time.Second {
		return
	}
	s.repairAt = now
	delay := time.Duration(float64(300*time.Millisecond) * (0.5 + c.env.Rand.Float64()))
	value := s.value
	if s.cert != nil {
		// Anyone holding the certificate can re-publish FINISH; it
		// verifies under the threshold key regardless of the sender.
		cert, h := s.cert, s.certHash
		c.env.T.Update(core.Intent{
			IntentKey: core.IntentKey{Kind: c.kind, Phase: packet.PhaseFinish, Slot: uint8(slot)},
			Data:      EncodeFinish(h, cert),
		})
	}
	c.env.Sched.PostAfter(delay, func() {
		if c.small {
			c.env.T.Update(core.Intent{
				IntentKey: core.IntentKey{Kind: c.kind, Phase: packet.PhaseInitial, Slot: uint8(slot)},
				Data:      append([]byte(nil), value...),
			})
			return
		}
		total := (len(value) + c.frag - 1) / c.frag
		if total == 0 {
			total = 1
		}
		for i := 0; i < total; i++ {
			if have.Get(i) {
				continue
			}
			lo, hi := i*c.frag, (i+1)*c.frag
			if hi > len(value) {
				hi = len(value)
			}
			c.env.T.Update(core.Intent{
				IntentKey: core.IntentKey{Kind: c.kind, Phase: packet.PhaseInitial, Slot: uint8(slot), Sub: uint8(i)},
				Flags:     uint8(total),
				Data:      append([]byte(nil), value[lo:hi]...),
			})
		}
	})
}
