package component

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/wireless"
)

// testNet is a 4-node single-hop network with real crypto suites, shared
// across tests via subtest construction (dealing is the slow part).
type testNet struct {
	sched *sim.Scheduler
	ch    *wireless.Channel
	envs  []*Env
}

func newTestNet(t *testing.T, seed int64, loss float64, batched bool) *testNet {
	t.Helper()
	const n, f = 4, 1
	sched := sim.New(seed)
	cfg := wireless.DefaultConfig()
	cfg.LossProb = loss
	ch := wireless.NewChannel(sched, cfg)
	suites, err := crypto.Deal(n, f, crypto.LightConfig(), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	net := &testNet{sched: sched, ch: ch}
	for i := 0; i < n; i++ {
		cpu := sim.NewCPU(sched)
		auth := &core.SizedAuth{
			Len:        suites[i].Signer.Scheme().SignatureLen(),
			CostSign:   suites[i].Cost.PKSign,
			CostVerify: suites[i].Cost.PKVerify,
		}
		tcfg := core.DefaultConfig(batched)
		tr := core.New(sched, cpu, nil, auth, tcfg)
		st := ch.Attach(wireless.NodeID(i), tr)
		tr.BindStation(st)
		net.envs = append(net.envs, &Env{
			N: n, F: f, Me: i,
			Session: 42,
			Suite:   suites[i],
			T:       tr,
			CPU:     cpu,
			Sched:   sched,
			Rand:    rand.New(rand.NewSource(seed + int64(i)*1000)),
		})
	}
	return net
}

// run drives the simulation until done() or the virtual deadline.
func (tn *testNet) run(t *testing.T, deadline time.Duration, done func() bool) {
	t.Helper()
	for tn.sched.Now() < deadline {
		if done() {
			return
		}
		if !tn.sched.Step() {
			break
		}
	}
	if !done() {
		t.Fatalf("simulation did not converge by %v (now %v)", deadline, tn.sched.Now())
	}
}

func TestRBCAllDeliverAllSlots(t *testing.T) {
	for _, batched := range []bool{true, false} {
		batched := batched
		t.Run(fmt.Sprintf("batched=%v", batched), func(t *testing.T) {
			tn := newTestNet(t, 1, 0, batched)
			rbcs := make([]*RBC, 4)
			for i, env := range tn.envs {
				rbcs[i] = NewRBC(env, RBCOptions{Slots: 4})
			}
			for i, env := range tn.envs {
				rbcs[i].Propose(env.Me, []byte(fmt.Sprintf("proposal-from-%d", i)))
			}
			tn.run(t, 10*time.Minute, func() bool {
				for _, r := range rbcs {
					if r.DeliveredCount() < 4 {
						return false
					}
				}
				return true
			})
			// Agreement + validity: all nodes hold identical values per slot.
			for slot := 0; slot < 4; slot++ {
				want := rbcs[0].Value(slot)
				if !bytes.Equal(want, []byte(fmt.Sprintf("proposal-from-%d", slot))) {
					t.Errorf("slot %d delivered %q", slot, want)
				}
				for i := 1; i < 4; i++ {
					if !bytes.Equal(rbcs[i].Value(slot), want) {
						t.Errorf("node %d slot %d disagrees", i, slot)
					}
				}
			}
		})
	}
}

func TestRBCLargeProposalFragments(t *testing.T) {
	tn := newTestNet(t, 2, 0, true)
	rbcs := make([]*RBC, 4)
	for i, env := range tn.envs {
		rbcs[i] = NewRBC(env, RBCOptions{Slots: 4})
	}
	big := bytes.Repeat([]byte("x"), 700) // several INITIAL fragments
	rbcs[0].Propose(0, big)
	tn.run(t, 10*time.Minute, func() bool {
		for _, r := range rbcs {
			if !r.Delivered(0) {
				return false
			}
		}
		return true
	})
	for i := range rbcs {
		if !bytes.Equal(rbcs[i].Value(0), big) {
			t.Errorf("node %d corrupted large proposal", i)
		}
	}
}

func TestRBCUnderLoss(t *testing.T) {
	tn := newTestNet(t, 3, 0.15, true) // 15% loss: NACK repair must kick in
	rbcs := make([]*RBC, 4)
	for i, env := range tn.envs {
		rbcs[i] = NewRBC(env, RBCOptions{Slots: 4})
	}
	for i := range tn.envs {
		rbcs[i].Propose(i, []byte(fmt.Sprintf("lossy-%d", i)))
	}
	tn.run(t, 30*time.Minute, func() bool {
		for _, r := range rbcs {
			if r.DeliveredCount() < 4 {
				return false
			}
		}
		return true
	})
}

func TestRBCCrashedLeaderOtherSlotsComplete(t *testing.T) {
	tn := newTestNet(t, 4, 0, true)
	rbcs := make([]*RBC, 4)
	for i, env := range tn.envs {
		rbcs[i] = NewRBC(env, RBCOptions{Slots: 4})
	}
	// Node 3 crashes: never proposes.
	for i := 0; i < 3; i++ {
		rbcs[i].Propose(i, []byte{byte(i)})
	}
	tn.run(t, 10*time.Minute, func() bool {
		for i := 0; i < 4; i++ {
			for slot := 0; slot < 3; slot++ {
				if !rbcs[i].Delivered(slot) {
					return false
				}
			}
		}
		return true
	})
	for i := range rbcs {
		if rbcs[i].Delivered(3) {
			t.Error("slot of crashed leader delivered without a proposal")
		}
	}
}

func TestRBCSmallInlineValues(t *testing.T) {
	tn := newTestNet(t, 5, 0, true)
	rbcs := make([]*RBC, 4)
	for i, env := range tn.envs {
		rbcs[i] = NewRBC(env, RBCOptions{Slots: 4, Small: true})
	}
	for i := range tn.envs {
		rbcs[i].Propose(i, []byte{byte(i)})
	}
	tn.run(t, 10*time.Minute, func() bool {
		for _, r := range rbcs {
			if r.DeliveredCount() < 4 {
				return false
			}
		}
		return true
	})
}

func TestPRBCProofsVerify(t *testing.T) {
	tn := newTestNet(t, 6, 0, true)
	prbcs := make([]*PRBC, 4)
	for i, env := range tn.envs {
		prbcs[i] = NewPRBC(env, PRBCOptions{Slots: 4})
	}
	for i := range tn.envs {
		prbcs[i].Propose(i, []byte(fmt.Sprintf("prbc-%d", i)))
	}
	tn.run(t, 15*time.Minute, func() bool {
		for _, p := range prbcs {
			if p.ProvenCount() < 4 {
				return false
			}
		}
		return true
	})
	// Every proof verifies under every node's public key.
	for slot := 0; slot < 4; slot++ {
		proof := prbcs[0].Proof(slot)
		h := HashValue(prbcs[0].RBC().Value(slot))
		for i := range prbcs {
			if err := prbcs[i].VerifyProof(slot, h, proof); err != nil {
				t.Errorf("node %d rejects proof for slot %d: %v", i, slot, err)
			}
		}
		if err := prbcs[0].VerifyProof(slot, HashValue([]byte("forged")), proof); err == nil {
			t.Errorf("slot %d proof verified against forged hash", slot)
		}
	}
}

func TestCBCDeliversWithCert(t *testing.T) {
	tn := newTestNet(t, 7, 0, true)
	cbcs := make([]*CBC, 4)
	delivered := make([]int, 4)
	for i, env := range tn.envs {
		i := i
		cbcs[i] = NewCBC(env, CBCOptions{
			Kind:  packet.KindCBCValue,
			Slots: 4,
			OnDeliver: func(slot int, value []byte, cert []byte) {
				if len(cert) == 0 {
					t.Errorf("node %d slot %d delivered without cert", i, slot)
				}
				delivered[i]++
			},
		})
	}
	for i := range tn.envs {
		cbcs[i].Propose(i, []byte(fmt.Sprintf("cbc-%d", i)))
	}
	tn.run(t, 15*time.Minute, func() bool {
		for i := range cbcs {
			if delivered[i] < 4 {
				return false
			}
		}
		return true
	})
	for slot := 0; slot < 4; slot++ {
		want := cbcs[0].Value(slot)
		for i := 1; i < 4; i++ {
			if !bytes.Equal(cbcs[i].Value(slot), want) {
				t.Errorf("CBC slot %d consistency violated", slot)
			}
		}
	}
}

func TestCachinABAAgreementAllOnes(t *testing.T) {
	for _, shared := range []bool{true, false} {
		shared := shared
		t.Run(fmt.Sprintf("sharedCoin=%v", shared), func(t *testing.T) {
			tn := newTestNet(t, 8, 0, true)
			abas := make([]*CachinABA, 4)
			for i, env := range tn.envs {
				env := env
				abas[i] = NewCachinABA(env, CachinOptions{
					Slots:      4,
					SharedCoin: shared,
					Coin:       &SigCoin{PK: env.Suite.TSLow, Share: env.Suite.TSLowShare, Env: env},
				})
			}
			for i := range tn.envs {
				for slot := 0; slot < 4; slot++ {
					abas[i].Input(slot, true)
				}
			}
			tn.run(t, 20*time.Minute, func() bool {
				for _, a := range abas {
					if a.DecidedCount() < 4 {
						return false
					}
				}
				return true
			})
			for slot := 0; slot < 4; slot++ {
				for i := range abas {
					if v := abas[i].Decided(slot); v == nil || !*v {
						t.Errorf("node %d slot %d decided %v, want true (validity)", i, slot, v)
					}
				}
			}
		})
	}
}

func TestCachinABAMixedInputsAgree(t *testing.T) {
	tn := newTestNet(t, 9, 0, true)
	abas := make([]*CachinABA, 4)
	for i, env := range tn.envs {
		env := env
		abas[i] = NewCachinABA(env, CachinOptions{
			Slots:      2,
			SharedCoin: true,
			Coin:       &FlipCoin{PK: env.Suite.TC, Share: env.Suite.TCShare, Env: env},
		})
	}
	// Split inputs 2-2: agreement must still hold (either value is valid).
	for i := range tn.envs {
		abas[i].Input(0, i < 2)
		abas[i].Input(1, i%2 == 0)
	}
	tn.run(t, 30*time.Minute, func() bool {
		for _, a := range abas {
			if a.DecidedCount() < 2 {
				return false
			}
		}
		return true
	})
	for slot := 0; slot < 2; slot++ {
		want := *abas[0].Decided(slot)
		for i := 1; i < 4; i++ {
			if *abas[i].Decided(slot) != want {
				t.Fatalf("ABA agreement violated on slot %d", slot)
			}
		}
	}
}

func TestBrachaABAAgreement(t *testing.T) {
	tn := newTestNet(t, 10, 0, true)
	abas := make([]*BrachaABA, 4)
	for i, env := range tn.envs {
		abas[i] = NewBrachaABA(env, BrachaOptions{Slots: 2})
	}
	for i := range tn.envs {
		abas[i].Input(0, true)     // unanimous
		abas[i].Input(1, i%2 == 0) // split
	}
	tn.run(t, 60*time.Minute, func() bool {
		for _, a := range abas {
			if a.DecidedCount() < 2 {
				return false
			}
		}
		return true
	})
	if v := abas[0].Decided(0); v == nil || !*v {
		t.Error("unanimous-true slot decided false (validity)")
	}
	for slot := 0; slot < 2; slot++ {
		want := *abas[0].Decided(slot)
		for i := 1; i < 4; i++ {
			if *abas[i].Decided(slot) != want {
				t.Fatalf("Bracha agreement violated on slot %d", slot)
			}
		}
	}
}

func TestCachinABAWithCrashFault(t *testing.T) {
	tn := newTestNet(t, 11, 0, true)
	abas := make([]*CachinABA, 4)
	for i, env := range tn.envs {
		env := env
		abas[i] = NewCachinABA(env, CachinOptions{
			Slots:      1,
			SharedCoin: true,
			Coin:       &SigCoin{PK: env.Suite.TSLow, Share: env.Suite.TSLowShare, Env: env},
		})
	}
	// Node 3 crashed: no input, and its transport is silenced.
	tn.envs[3].T.Stop()
	for i := 0; i < 3; i++ {
		abas[i].Input(0, true)
	}
	tn.run(t, 30*time.Minute, func() bool {
		for i := 0; i < 3; i++ {
			if abas[i].DecidedCount() < 1 {
				return false
			}
		}
		return true
	})
	for i := 0; i < 3; i++ {
		if v := abas[i].Decided(0); v == nil || !*v {
			t.Errorf("honest node %d decided %v with crashed peer", i, v)
		}
	}
}

func TestDecryptorRoundTrip(t *testing.T) {
	tn := newTestNet(t, 12, 0, true)
	plain := []byte("the secret batch of transactions")
	ct, err := tn.envs[0].Suite.TE.Encrypt(plain, tn.envs[0].Rand)
	if err != nil {
		t.Fatal(err)
	}
	decs := make([]*Decryptor, 4)
	got := make([][]byte, 4)
	for i, env := range tn.envs {
		i := i
		decs[i] = NewDecryptor(env, 4, func(slot int, p []byte) {
			if slot == 0 {
				got[i] = p
			}
		})
	}
	for i := range tn.envs {
		decs[i].Submit(0, ct)
	}
	tn.run(t, 10*time.Minute, func() bool {
		for i := range got {
			if got[i] == nil {
				return false
			}
		}
		return true
	})
	for i := range got {
		if !bytes.Equal(got[i], plain) {
			t.Errorf("node %d decrypted %q", i, got[i])
		}
	}
}

func TestBatchedFewerAccessesThanBaseline(t *testing.T) {
	// The paper's core claim at component level: ConsensusBatcher needs
	// far fewer channel accesses than per-instance packets for the same
	// N-parallel RBC workload.
	accesses := map[bool]uint64{}
	for _, batched := range []bool{true, false} {
		tn := newTestNet(t, 13, 0, batched)
		rbcs := make([]*RBC, 4)
		for i, env := range tn.envs {
			rbcs[i] = NewRBC(env, RBCOptions{Slots: 4})
		}
		for i := range tn.envs {
			rbcs[i].Propose(i, bytes.Repeat([]byte{byte(i)}, 32))
		}
		tn.run(t, 20*time.Minute, func() bool {
			for _, r := range rbcs {
				if r.DeliveredCount() < 4 {
					return false
				}
			}
			return true
		})
		accesses[batched] = tn.ch.Stats().Accesses
	}
	if accesses[true]*2 > accesses[false] {
		t.Errorf("batched=%d baseline=%d accesses; expected >=2x reduction",
			accesses[true], accesses[false])
	}
}
