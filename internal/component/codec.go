package component

import (
	"encoding/binary"
	"errors"
	"math/big"

	"repro/internal/crypto/dleq"
	"repro/internal/crypto/threshcoin"
	"repro/internal/crypto/threshenc"
	"repro/internal/crypto/threshsig"
)

// Share payloads on the wire are a 1-byte index followed by three
// length-prefixed big integers; threshold-signature shares, coin shares,
// and decryption shares all fit this shape.

var errShortShare = errors.New("component: truncated share encoding")

func appendBig(buf []byte, v *big.Int) []byte {
	b := v.Bytes()
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(b)))
	return append(buf, b...)
}

func readBig(buf []byte) (*big.Int, []byte, error) {
	if len(buf) < 2 {
		return nil, nil, errShortShare
	}
	n := int(binary.BigEndian.Uint16(buf))
	buf = buf[2:]
	if len(buf) < n {
		return nil, nil, errShortShare
	}
	return new(big.Int).SetBytes(buf[:n]), buf[n:], nil
}

func encodeShare(index int, ints ...*big.Int) []byte {
	buf := []byte{byte(index)}
	for _, v := range ints {
		buf = appendBig(buf, v)
	}
	return buf
}

func decodeShare(buf []byte, n int) (int, []*big.Int, error) {
	if len(buf) < 1 {
		return 0, nil, errShortShare
	}
	idx := int(buf[0])
	buf = buf[1:]
	ints := make([]*big.Int, n)
	for i := 0; i < n; i++ {
		var err error
		ints[i], buf, err = readBig(buf)
		if err != nil {
			return 0, nil, err
		}
	}
	return idx, ints, nil
}

// EncodeSigShare serializes a threshold-signature share.
func EncodeSigShare(sh *threshsig.SigShare) []byte {
	return encodeShare(sh.Index, sh.X, sh.C, sh.Z)
}

// DecodeSigShare parses a threshold-signature share.
func DecodeSigShare(buf []byte) (*threshsig.SigShare, error) {
	idx, ints, err := decodeShare(buf, 3)
	if err != nil {
		return nil, err
	}
	return &threshsig.SigShare{Index: idx, X: ints[0], C: ints[1], Z: ints[2]}, nil
}

// EncodeCoinShare serializes a threshold-coin share.
func EncodeCoinShare(sh *threshcoin.CoinShare) []byte {
	return encodeShare(sh.Index, sh.Sigma, sh.Proof.C, sh.Proof.Z)
}

// DecodeCoinShare parses a threshold-coin share.
func DecodeCoinShare(buf []byte) (*threshcoin.CoinShare, error) {
	idx, ints, err := decodeShare(buf, 3)
	if err != nil {
		return nil, err
	}
	return &threshcoin.CoinShare{Index: idx, Sigma: ints[0], Proof: &dleq.Proof{C: ints[1], Z: ints[2]}}, nil
}

// EncodeDecShare serializes a threshold-decryption share.
func EncodeDecShare(sh *threshenc.DecShare) []byte {
	return encodeShare(sh.Index, sh.D, sh.Proof.C, sh.Proof.Z)
}

// DecodeDecShare parses a threshold-decryption share.
func DecodeDecShare(buf []byte) (*threshenc.DecShare, error) {
	idx, ints, err := decodeShare(buf, 3)
	if err != nil {
		return nil, err
	}
	return &threshenc.DecShare{Index: idx, D: ints[0], Proof: &dleq.Proof{C: ints[1], Z: ints[2]}}, nil
}

// EncodeCiphertext serializes a threshold ciphertext for RBC dissemination.
func EncodeCiphertext(ct *threshenc.Ciphertext) []byte {
	buf := appendBig(nil, ct.C1)
	buf = append(buf, ct.Tag[:]...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(ct.Body)))
	return append(buf, ct.Body...)
}

// DecodeCiphertext parses a threshold ciphertext.
func DecodeCiphertext(buf []byte) (*threshenc.Ciphertext, error) {
	c1, rest, err := readBig(buf)
	if err != nil {
		return nil, err
	}
	if len(rest) < 32+4 {
		return nil, errShortShare
	}
	var ct threshenc.Ciphertext
	ct.C1 = c1
	copy(ct.Tag[:], rest[:32])
	rest = rest[32:]
	n := int(binary.BigEndian.Uint32(rest))
	rest = rest[4:]
	if len(rest) < n {
		return nil, errShortShare
	}
	ct.Body = append([]byte(nil), rest[:n]...)
	return &ct, nil
}

// EncodeFinish packs a CBC FINISH payload (hash + combined signature).
func EncodeFinish(h Hash8, sig []byte) []byte {
	buf := make([]byte, 0, 8+2+len(sig))
	buf = append(buf, h[:]...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(sig)))
	return append(buf, sig...)
}

// DecodeFinish unpacks a CBC FINISH payload.
func DecodeFinish(buf []byte) (Hash8, []byte, error) {
	var h Hash8
	if len(buf) < 10 {
		return h, nil, errShortShare
	}
	copy(h[:], buf[:8])
	n := int(binary.BigEndian.Uint16(buf[8:]))
	buf = buf[10:]
	if len(buf) < n {
		return h, nil, errShortShare
	}
	return h, append([]byte(nil), buf[:n]...), nil
}
