package packet

import "sync"

// bufPool recycles frame-encode buffers. The steady state of a simulation
// encodes one logical frame per flush per node — hundreds of thousands of
// short-lived buffers whose size distribution is stable, which is exactly
// the sync.Pool sweet spot. Buffers are boxed behind a pointer so Put does
// not allocate a slice header per call.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 2048)
		return &b
	},
}

// GetBuf returns an empty encode buffer from the pool. Pass it to
// Frame.AppendBody (or use it as any append target) and hand it back with
// PutBuf when the encoded bytes are no longer referenced.
func GetBuf() []byte {
	return (*bufPool.Get().(*[]byte))[:0]
}

// PutBuf recycles an encode buffer. The caller must not retain any alias
// of b afterwards: the next GetBuf may hand the same backing array to an
// unrelated encoder. Decode is safe in this regard — it copies every field
// out of the raw buffer (see TestDecodeDoesNotAliasPooledBuffer).
func PutBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}
