package packet

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleFrame() *Frame {
	return &Frame{
		Sender:  3,
		Session: 0xDEADBEEF,
		Epoch:   7,
		Sections: []Section{
			{
				Kind:  KindRBC,
				Phase: PhaseEcho,
				Nack:  BitSet{0b1010},
				Entries: []Entry{
					{Slot: 0, Sub: 0, Round: 0, Flags: 1, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
					{Slot: 2, Sub: 1, Round: 0, Flags: 0, Data: nil},
				},
			},
			{
				Kind:    KindABA,
				Phase:   PhaseBval,
				Entries: []Entry{{Slot: 1, Round: 3, Data: []byte{0b01}}},
			},
		},
		Sig: bytes.Repeat([]byte{0xAB}, 56),
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := sampleFrame()
	raw, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, bodyLen, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if bodyLen != len(raw)-2-len(f.Sig) {
		t.Errorf("bodyLen = %d, want %d", bodyLen, len(raw)-2-len(f.Sig))
	}
	if got.Sender != f.Sender || got.Session != f.Session || got.Epoch != f.Epoch {
		t.Error("header mismatch")
	}
	if len(got.Sections) != 2 {
		t.Fatalf("sections = %d", len(got.Sections))
	}
	if !got.Sections[0].Nack.Equal(f.Sections[0].Nack) {
		t.Error("nack mismatch")
	}
	if !reflect.DeepEqual(got.Sections[0].Entries[0].Data, f.Sections[0].Entries[0].Data) {
		t.Error("entry data mismatch")
	}
	if !bytes.Equal(got.Sig, f.Sig) {
		t.Error("signature mismatch")
	}
}

func TestBodyIsSignaturePrefix(t *testing.T) {
	f := sampleFrame()
	body, err := f.AppendBody(nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(raw, body) {
		t.Error("encoded frame does not start with the signed body")
	}
}

func TestEncodedSizeExact(t *testing.T) {
	f := sampleFrame()
	raw, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if got := f.EncodedSize(len(f.Sig)); got != len(raw) {
		t.Errorf("EncodedSize = %d, actual = %d", got, len(raw))
	}
}

func TestDecodeRejectsJunk(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x00},
		{0xB7},
		{0xB7, 0x99}, // wrong version
		{0x00, 0x01, 0, 0, 0, 0, 0, 0, 0, 0, 0},
	}
	for i, raw := range cases {
		if _, _, err := Decode(raw); err == nil {
			t.Errorf("case %d: junk accepted", i)
		}
	}
	// Truncations of a valid frame must all fail cleanly.
	raw, err := sampleFrame().Encode()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(raw); cut++ {
		if _, _, err := Decode(raw[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestZeroKindRejected(t *testing.T) {
	f := &Frame{Sections: []Section{{Kind: 0, Phase: PhaseEcho}}}
	raw, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Decode(raw); err == nil {
		t.Error("zero kind accepted")
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	gen := func() *Frame {
		f := &Frame{
			Sender:  uint16(rng.Intn(16)),
			Session: rng.Uint32(),
			Epoch:   uint16(rng.Intn(100)),
		}
		for s := 0; s < rng.Intn(4); s++ {
			sec := Section{
				Kind:  Kind(1 + rng.Intn(7)),
				Phase: Phase(1 + rng.Intn(13)),
			}
			if rng.Intn(2) == 0 {
				sec.Nack = NewBitSet(1 + rng.Intn(16))
				for i := 0; i < 3; i++ {
					sec.Nack.Set(rng.Intn(len(sec.Nack) * 8))
				}
			}
			for e := 0; e < rng.Intn(5); e++ {
				data := make([]byte, rng.Intn(64))
				rng.Read(data)
				sec.Entries = append(sec.Entries, Entry{
					Slot:  uint8(rng.Intn(8)),
					Sub:   uint8(rng.Intn(8)),
					Round: uint16(rng.Intn(32)),
					Flags: uint8(rng.Intn(256)),
					Data:  data,
				})
			}
			f.Sections = append(f.Sections, sec)
		}
		sig := make([]byte, 56)
		rng.Read(sig)
		f.Sig = sig
		return f
	}
	for i := 0; i < 200; i++ {
		f := gen()
		raw, err := f.Encode()
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := Decode(raw)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		raw2, err := got.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw, raw2) {
			t.Fatalf("iteration %d: re-encode mismatch", i)
		}
		if got.EncodedSize(len(got.Sig)) != len(raw) {
			t.Fatalf("iteration %d: size mismatch", i)
		}
	}
}

func TestBitSetBasics(t *testing.T) {
	b := NewBitSet(10)
	if len(b) != 2 {
		t.Fatalf("NewBitSet(10) has %d bytes", len(b))
	}
	b.Set(0)
	b.Set(9)
	if !b.Get(0) || !b.Get(9) || b.Get(5) {
		t.Error("Set/Get mismatch")
	}
	if b.Count() != 2 {
		t.Errorf("Count = %d", b.Count())
	}
	b.Clear(0)
	if b.Get(0) || b.Count() != 1 {
		t.Error("Clear failed")
	}
	if b.Get(100) {
		t.Error("out-of-range Get returned true")
	}
	c := b.Clone()
	c.Set(1)
	if b.Get(1) {
		t.Error("Clone aliases original")
	}
	if !b.Equal(b.Clone()) || b.Equal(NewBitSet(32)) {
		t.Error("Equal misbehaves")
	}
}

func TestBitSetPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Set out of range did not panic")
		}
	}()
	NewBitSet(8).Set(8)
}

func TestBitSetQuick(t *testing.T) {
	f := func(idxs []uint8) bool {
		b := NewBitSet(256)
		seen := map[int]bool{}
		for _, i := range idxs {
			b.Set(int(i))
			seen[int(i)] = true
		}
		if b.Count() != len(seen) {
			return false
		}
		for i := range seen {
			if !b.Get(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
