package packet

import "fmt"

// BitSet is a compact per-instance bitmap. The paper's key packet
// optimization compresses NACK state from O(N^2) (one bit per instance per
// peer) to O(N) (one bit per instance meaning "this instance has reached
// its quorum"); BitSet is the wire representation of those N-bit fields.
type BitSet []byte

// NewBitSet returns a bitset able to hold n bits.
func NewBitSet(n int) BitSet { return make(BitSet, (n+7)/8) }

// Set sets bit i.
func (b BitSet) Set(i int) {
	if i < 0 || i >= len(b)*8 {
		panic(fmt.Sprintf("packet: bit %d out of range (%d bits)", i, len(b)*8))
	}
	b[i/8] |= 1 << (i % 8)
}

// Clear clears bit i.
func (b BitSet) Clear(i int) {
	if i < 0 || i >= len(b)*8 {
		panic(fmt.Sprintf("packet: bit %d out of range (%d bits)", i, len(b)*8))
	}
	b[i/8] &^= 1 << (i % 8)
}

// Get reports bit i; out-of-range bits read as false.
func (b BitSet) Get(i int) bool {
	if i < 0 || i >= len(b)*8 {
		return false
	}
	return b[i/8]&(1<<(i%8)) != 0
}

// Count returns the number of set bits.
func (b BitSet) Count() int {
	n := 0
	for _, x := range b {
		for x != 0 {
			n += int(x & 1)
			x >>= 1
		}
	}
	return n
}

// Clone returns an independent copy.
func (b BitSet) Clone() BitSet {
	out := make(BitSet, len(b))
	copy(out, b)
	return out
}

// Equal reports whether two bitsets have identical contents.
func (b BitSet) Equal(o BitSet) bool {
	if len(b) != len(o) {
		return false
	}
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}
