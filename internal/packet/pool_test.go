package packet

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

func randomFrame(rng *rand.Rand) *Frame {
	f := &Frame{
		Sender:  uint16(rng.Intn(16)),
		Session: rng.Uint32(),
		Epoch:   uint16(rng.Intn(100)),
	}
	for s := 0; s < 1+rng.Intn(4); s++ {
		sec := Section{
			Kind:  Kind(1 + rng.Intn(7)),
			Phase: Phase(1 + rng.Intn(13)),
		}
		if rng.Intn(2) == 0 {
			sec.Nack = NewBitSet(1 + rng.Intn(16))
			for i := 0; i < 3; i++ {
				sec.Nack.Set(rng.Intn(len(sec.Nack) * 8))
			}
		}
		for e := 0; e < rng.Intn(5); e++ {
			data := make([]byte, rng.Intn(64))
			rng.Read(data)
			sec.Entries = append(sec.Entries, Entry{
				Slot:  uint8(rng.Intn(8)),
				Sub:   uint8(rng.Intn(8)),
				Round: uint16(rng.Intn(32)),
				Flags: uint8(rng.Intn(256)),
				Data:  data,
			})
		}
		f.Sections = append(f.Sections, sec)
	}
	sig := make([]byte, 56)
	rng.Read(sig)
	f.Sig = sig
	return f
}

// TestDecodeDoesNotAliasPooledBuffer is the pooling-safety property test:
// a frame decoded out of a pooled buffer must survive the buffer being
// recycled and scribbled over by an unrelated encoder. If Decode ever
// returned a view into the raw bytes instead of a copy, this corrupts the
// decoded frame and the test fails (and -race flags the overlap when the
// scribbler runs concurrently, as in TestPooledBuffersConcurrent).
func TestDecodeDoesNotAliasPooledBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		f := randomFrame(rng)
		buf := GetBuf()
		body, err := f.AppendBody(buf)
		if err != nil {
			t.Fatal(err)
		}
		raw := append(body, byte(len(f.Sig)>>8), byte(len(f.Sig)))
		raw = append(raw, f.Sig...)
		want := append([]byte(nil), raw...)

		got, _, err := Decode(raw)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		// Recycle the buffer, then scribble over the backing array the way
		// the next pool user would.
		PutBuf(raw)
		next := GetBuf()
		next = append(next, bytes.Repeat([]byte{0xA5}, cap(next))...)

		reenc, err := got.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(reenc, want) {
			t.Fatalf("iteration %d: decoded frame changed after its buffer was recycled", i)
		}
		PutBuf(next)
	}
}

// TestPooledBuffersConcurrent hammers the get/encode/decode/put cycle from
// several goroutines. Run under -race: any retained alias between a
// recycled buffer and a live decoded frame shows up as a data race.
func TestPooledBuffersConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; i < 200; i++ {
				f := randomFrame(rng)
				buf := GetBuf()
				body, err := f.AppendBody(buf)
				if err != nil {
					t.Error(err)
					return
				}
				raw := append(body, byte(len(f.Sig)>>8), byte(len(f.Sig)))
				raw = append(raw, f.Sig...)
				got, _, err := Decode(raw)
				if err != nil {
					t.Error(err)
					return
				}
				PutBuf(raw)
				// Keep using the decoded frame after the buffer went back.
				if _, err := got.Encode(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// BenchmarkFrameEncodeDecode measures one pooled encode + decode cycle of
// a representative batched frame.
func BenchmarkFrameEncodeDecode(b *testing.B) {
	f := sampleFrame()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := GetBuf()
		body, err := f.AppendBody(buf)
		if err != nil {
			b.Fatal(err)
		}
		raw := append(body, byte(len(f.Sig)>>8), byte(len(f.Sig)))
		raw = append(raw, f.Sig...)
		if _, _, err := Decode(raw); err != nil {
			b.Fatal(err)
		}
		PutBuf(raw)
	}
}
