// Package packet defines the wire format of ConsensusBatcher packets.
//
// A logical packet (Frame) carries a header, a list of sections, and a
// public-key signature. Each section holds the sender's current
// contribution to one (component kind, phase) pair across any subset of the
// N parallel instances — this is the paper's vertical batching. A frame
// holding several sections mixes phases (and even components), which is the
// paper's horizontal batching. Per-section N-bit NACK fields carry the
// compressed reliability state (the O(N^2) -> O(N) optimization of
// Sec. IV-C).
//
// Frames larger than the radio MTU are fragmented by internal/core; this
// package only defines the single logical encoding.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Kind identifies a consensus component family within an epoch.
type Kind uint8

// Component kinds. Values are wire-stable.
const (
	KindRBC       Kind = 1 // reliable broadcast (also the RBC inside PRBC)
	KindPRBC      Kind = 2 // PRBC DONE-phase threshold-signature shares
	KindCBCValue  Kind = 3 // Dumbo's first CBC set
	KindCBCCommit Kind = 4 // Dumbo's second CBC set
	KindABA       Kind = 5 // asynchronous Byzantine agreement
	KindDec       Kind = 6 // threshold-decryption share exchange
	KindGlobal    Kind = 7 // multi-hop global-tier payloads
	KindVCBC      Kind = 8 // Alea's verifiable consistent broadcast
)

// Phase identifies a protocol phase within a component.
type Phase uint8

// Phases. Values are wire-stable.
const (
	PhaseInitial  Phase = 1  // 1-to-N proposal dissemination
	PhaseEcho     Phase = 2  // RBC ECHO votes / CBC signature shares
	PhaseReady    Phase = 3  // RBC READY votes
	PhaseDone     Phase = 4  // PRBC threshold-signature shares
	PhaseFinish   Phase = 5  // CBC combined-signature broadcast
	PhaseBval     Phase = 6  // Cachin ABA BVAL
	PhaseAux      Phase = 7  // Cachin ABA AUX
	PhaseShare    Phase = 8  // Cachin ABA coin share
	PhaseVote1    Phase = 9  // Bracha ABA phase-1 vote (RBC-small)
	PhaseVote2    Phase = 10 // Bracha ABA phase-2 vote
	PhaseVote3    Phase = 11 // Bracha ABA phase-3 vote
	PhaseDecShare Phase = 12 // threshold decryption share
	PhaseRepair   Phase = 13 // NACK-triggered retransmission requests
	PhaseDecided  Phase = 14 // ABA termination claims (f+1 matching => adopt)
)

// Entry is one instance-granular contribution inside a section: the
// sender's state for instance Slot (optionally sub-indexed by Sub, e.g. a
// fragment number or a voter id) at round Round.
type Entry struct {
	Slot  uint8
	Sub   uint8
	Round uint16
	Flags uint8
	Data  []byte
}

// Section is the vertical-batching unit: all of the sender's entries for
// one (Kind, Phase), plus the compressed O(N) NACK bitmap for that phase.
type Section struct {
	Kind    Kind
	Phase   Phase
	Nack    BitSet
	Entries []Entry
}

// Frame is one logical signed packet.
type Frame struct {
	Sender   uint16
	Session  uint32
	Epoch    uint16
	Sections []Section
	Sig      []byte
}

// Encoding limits.
const (
	frameMagic   = 0xB7
	frameVersion = 1
	maxSections  = 255
	maxEntries   = 255
	maxData      = 65535
)

// Various decode errors.
var (
	ErrTruncated  = errors.New("packet: truncated frame")
	ErrBadMagic   = errors.New("packet: bad magic or version")
	ErrTooLarge   = errors.New("packet: field exceeds encoding limit")
	errBadSection = errors.New("packet: malformed section")
)

// AppendBody serializes everything except the signature; the result is the
// exact byte string the frame signature covers.
func (f *Frame) AppendBody(buf []byte) ([]byte, error) {
	if len(f.Sections) > maxSections {
		return nil, ErrTooLarge
	}
	buf = append(buf, frameMagic, frameVersion)
	buf = binary.BigEndian.AppendUint16(buf, f.Sender)
	buf = binary.BigEndian.AppendUint32(buf, f.Session)
	buf = binary.BigEndian.AppendUint16(buf, f.Epoch)
	buf = append(buf, byte(len(f.Sections)))
	for _, sec := range f.Sections {
		var err error
		buf, err = sec.append(buf)
		if err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// Encode serializes the full frame (body plus signature).
func (f *Frame) Encode() ([]byte, error) {
	buf, err := f.AppendBody(nil)
	if err != nil {
		return nil, err
	}
	if len(f.Sig) > maxData {
		return nil, ErrTooLarge
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(f.Sig)))
	buf = append(buf, f.Sig...)
	return buf, nil
}

func (s *Section) append(buf []byte) ([]byte, error) {
	if len(s.Entries) > maxEntries || len(s.Nack) > 255 {
		return nil, ErrTooLarge
	}
	buf = append(buf, byte(s.Kind), byte(s.Phase), byte(len(s.Nack)))
	buf = append(buf, s.Nack...)
	buf = append(buf, byte(len(s.Entries)))
	for _, e := range s.Entries {
		if len(e.Data) > maxData {
			return nil, ErrTooLarge
		}
		buf = append(buf, e.Slot, e.Sub)
		buf = binary.BigEndian.AppendUint16(buf, e.Round)
		buf = append(buf, e.Flags)
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(e.Data)))
		buf = append(buf, e.Data...)
	}
	return buf, nil
}

// Decode parses a full frame and returns it along with the body length
// (the prefix of raw covered by the signature).
func Decode(raw []byte) (*Frame, int, error) {
	r := reader{buf: raw}
	magic, _ := r.u8()
	ver, err := r.u8()
	if err != nil {
		return nil, 0, ErrTruncated
	}
	if magic != frameMagic || ver != frameVersion {
		return nil, 0, ErrBadMagic
	}
	var f Frame
	if f.Sender, err = r.u16(); err != nil {
		return nil, 0, ErrTruncated
	}
	if f.Session, err = r.u32(); err != nil {
		return nil, 0, ErrTruncated
	}
	if f.Epoch, err = r.u16(); err != nil {
		return nil, 0, ErrTruncated
	}
	nsec, err := r.u8()
	if err != nil {
		return nil, 0, ErrTruncated
	}
	f.Sections = make([]Section, 0, nsec)
	for i := 0; i < int(nsec); i++ {
		sec, err := decodeSection(&r)
		if err != nil {
			return nil, 0, err
		}
		f.Sections = append(f.Sections, sec)
	}
	bodyLen := r.pos
	sigLen, err := r.u16()
	if err != nil {
		return nil, 0, ErrTruncated
	}
	sig, err := r.bytes(int(sigLen))
	if err != nil {
		return nil, 0, ErrTruncated
	}
	f.Sig = sig
	return &f, bodyLen, nil
}

// PeekHeader reads the fixed frame header (sender, session, epoch) without
// decoding sections or checking the signature. The epoch demultiplexer uses
// it to route a reassembled frame to the right epoch's transport; the
// routed transport still authenticates the full frame.
func PeekHeader(raw []byte) (sender uint16, session uint32, epoch uint16, ok bool) {
	if len(raw) < 10 || raw[0] != frameMagic || raw[1] != frameVersion {
		return 0, 0, 0, false
	}
	sender = binary.BigEndian.Uint16(raw[2:])
	session = binary.BigEndian.Uint32(raw[4:])
	epoch = binary.BigEndian.Uint16(raw[8:])
	return sender, session, epoch, true
}

func decodeSection(r *reader) (Section, error) {
	var s Section
	k, err := r.u8()
	if err != nil {
		return s, ErrTruncated
	}
	p, err := r.u8()
	if err != nil {
		return s, ErrTruncated
	}
	s.Kind, s.Phase = Kind(k), Phase(p)
	if s.Kind == 0 || s.Phase == 0 {
		return s, errBadSection
	}
	nackLen, err := r.u8()
	if err != nil {
		return s, ErrTruncated
	}
	nack, err := r.bytes(int(nackLen))
	if err != nil {
		return s, ErrTruncated
	}
	if len(nack) > 0 {
		s.Nack = BitSet(nack)
	}
	nent, err := r.u8()
	if err != nil {
		return s, ErrTruncated
	}
	s.Entries = make([]Entry, 0, nent)
	for i := 0; i < int(nent); i++ {
		var e Entry
		if e.Slot, err = r.u8(); err != nil {
			return s, ErrTruncated
		}
		if e.Sub, err = r.u8(); err != nil {
			return s, ErrTruncated
		}
		if e.Round, err = r.u16(); err != nil {
			return s, ErrTruncated
		}
		if e.Flags, err = r.u8(); err != nil {
			return s, ErrTruncated
		}
		dlen, err := r.u16()
		if err != nil {
			return s, ErrTruncated
		}
		if e.Data, err = r.bytes(int(dlen)); err != nil {
			return s, ErrTruncated
		}
		s.Entries = append(s.Entries, e)
	}
	return s, nil
}

// EncodedSize returns the wire size of the frame with a sigLen-byte
// signature, without allocating.
func (f *Frame) EncodedSize(sigLen int) int {
	n := 2 + 2 + 4 + 2 + 1 // magic, ver, sender, session, epoch, nsec
	for _, s := range f.Sections {
		n += 3 + len(s.Nack) + 1
		for _, e := range s.Entries {
			n += 7 + len(e.Data)
		}
	}
	return n + 2 + sigLen
}

type reader struct {
	buf []byte
	pos int
}

func (r *reader) u8() (byte, error) {
	if r.pos+1 > len(r.buf) {
		return 0, ErrTruncated
	}
	v := r.buf[r.pos]
	r.pos++
	return v, nil
}

func (r *reader) u16() (uint16, error) {
	if r.pos+2 > len(r.buf) {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint16(r.buf[r.pos:])
	r.pos += 2
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if r.pos+4 > len(r.buf) {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint32(r.buf[r.pos:])
	r.pos += 4
	return v, nil
}

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || r.pos+n > len(r.buf) {
		return nil, ErrTruncated
	}
	out := make([]byte, n)
	copy(out, r.buf[r.pos:r.pos+n])
	r.pos += n
	return out, nil
}

// String renders a compact human-readable form (used by cmd/wbft-packets).
func (f *Frame) String() string {
	out := fmt.Sprintf("frame sender=%d session=%d epoch=%d sections=%d sig=%dB",
		f.Sender, f.Session, f.Epoch, len(f.Sections), len(f.Sig))
	for _, s := range f.Sections {
		out += fmt.Sprintf("\n  section kind=%d phase=%d nack=%x entries=%d",
			s.Kind, s.Phase, []byte(s.Nack), len(s.Entries))
		for _, e := range s.Entries {
			out += fmt.Sprintf("\n    slot=%d sub=%d round=%d flags=%02x data=%dB",
				e.Slot, e.Sub, e.Round, e.Flags, len(e.Data))
		}
	}
	return out
}
