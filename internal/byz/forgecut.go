package byz

import (
	"encoding/binary"

	"repro/internal/core"
	"repro/internal/packet"
)

// ForgeCut is the forged-cut attack on the clustered chain's global tier:
// a Byzantine relay seat rewrites the cluster-cut records inside its own
// proposals, making them claim a cluster it does not control with an
// attacker-chosen digest. The certificate bytes are left as they were —
// the attacker holds at most f of any other cluster's f+1 signing shares,
// so it cannot produce a valid certificate for the forged (cluster,
// epoch, digest) and the best it can do is replay a stale one. The
// defense is the cut certificate itself (internal/run/cutcert.go): every
// seat verifies the threshold signature over the claimed tuple before
// counting a cut, so forged records are rejected at every honest seat
// and never enter the cross-cluster order.
//
// On deployments whose proposals are not cut batches (single-hop cells,
// encrypted proposals), the payload does not decode as a batch of cut
// records and passes through unchanged — the node is then simply honest
// on the wire.
type ForgeCut struct {
	asm map[forgeKey]*forgeAsm
}

// forgeKey identifies one fragmented proposal in flight: fragments of the
// same (transport, component, slot) belong together.
type forgeKey struct {
	t    *core.Transport
	kind packet.Kind
	slot uint8
}

// forgeAsm buffers withheld proposal fragments until the value is whole.
type forgeAsm struct {
	frags [][]byte
	have  int
}

// forgedCutMin mirrors internal/run's certified-cut wire layout: a
// 40-byte (cluster, epoch, digest) header followed by a non-empty
// threshold certificate. Shorter transactions are not cut records and
// are left alone.
const forgedCutMin = 41

// Name implements Behavior.
func (f *ForgeCut) Name() string { return NameForgeCut }

// Rewrite implements Behavior. Unfragmented proposals are forged in
// place; fragmented ones are withheld until every fragment is buffered,
// then the reassembled batch is forged and re-emitted along the original
// fragment boundaries (the forgery preserves length), so peers still see
// a well-formed proposal — just a lying one.
func (f *ForgeCut) Rewrite(ctx Ctx, in core.Intent) []core.Intent {
	if in.Phase != packet.PhaseInitial {
		return []core.Intent{in}
	}
	total := int(in.Flags)
	if total <= 1 {
		if forged := forgeBatch(in.Data); forged != nil {
			out := in
			out.Data = forged
			return []core.Intent{out}
		}
		return []core.Intent{in}
	}
	if f.asm == nil {
		f.asm = make(map[forgeKey]*forgeAsm)
	}
	key := forgeKey{t: ctx.T, kind: in.Kind, slot: in.Slot}
	a := f.asm[key]
	if a == nil || len(a.frags) != total {
		a = &forgeAsm{frags: make([][]byte, total)}
		f.asm[key] = a
	}
	if int(in.Sub) >= total {
		return []core.Intent{in} // malformed fragment index; not ours to fix
	}
	if a.frags[in.Sub] == nil {
		a.have++
	}
	a.frags[in.Sub] = append([]byte(nil), in.Data...)
	if a.have < total {
		return nil // withhold until the whole proposal is assembled
	}
	delete(f.asm, key)
	var value []byte
	for _, frag := range a.frags {
		value = append(value, frag...)
	}
	forged := forgeBatch(value)
	if forged == nil {
		forged = value // nothing to forge; release the honest proposal
	}
	out := make([]core.Intent, total)
	off := 0
	for i, frag := range a.frags {
		fi := in
		fi.Sub = uint8(i)
		fi.Data = append([]byte(nil), forged[off:off+len(frag)]...)
		off += len(frag)
		out[i] = fi
	}
	return out
}

// forgeBatch rewrites every cut record of a proposal batch to claim the
// neighboring cluster (cluster id low bit flipped) with a scrambled
// digest, keeping the stale certificate bytes. The adversary parses the
// batch framing straight off the wire — a u16 record count, then
// u16-length-prefixed transactions, protocol.EncodeBatch's layout — and
// mutates cut-sized records in place, so the forgery preserves length.
// It returns nil if the payload is not a well-formed batch of cut
// records.
func forgeBatch(data []byte) []byte {
	if len(data) < 2 {
		return nil
	}
	count := int(binary.BigEndian.Uint16(data))
	out := append([]byte(nil), data...)
	off := 2
	forged := false
	for i := 0; i < count; i++ {
		if len(data)-off < 2 {
			return nil
		}
		n := int(binary.BigEndian.Uint16(data[off:]))
		off += 2
		if len(data)-off < n {
			return nil
		}
		if n >= forgedCutMin {
			ftx := out[off : off+n]
			ftx[3] ^= 1 // a cluster the attacker does not control
			for j := 8; j < 40; j++ {
				ftx[j] ^= 0xA5 // attacker-chosen digest
			}
			forged = true
		}
		off += n
	}
	if off != len(data) || !forged {
		return nil
	}
	return out
}
