package byz

import (
	"time"

	"repro/internal/core"
	"repro/internal/packet"
)

// Equivocate sends conflicting state to different peers: every
// value-bearing intent (proposal fragments, hash votes, certificates)
// goes out normally, and a conflicting variant is injected shortly after.
// Because frames are state snapshots, peers that latched the first
// variant keep it while peers that hear only the later retransmissions
// see the other — the strongest equivocation a broadcast medium admits.
// The defense is quorum-on-value: two conflicting values would each need
// f+1 honest votes for a 2f+1 quorum, which 2f+1 honest nodes cannot
// supply (internal/component/rbc.go).
type Equivocate struct{}

// Name implements Behavior.
func (Equivocate) Name() string { return NameEquivocate }

// Rewrite implements Behavior.
func (Equivocate) Rewrite(ctx Ctx, in core.Intent) []core.Intent {
	switch in.Phase {
	case packet.PhaseInitial, packet.PhaseEcho, packet.PhaseReady, packet.PhaseFinish:
	default:
		return []core.Intent{in}
	}
	if len(in.Data) == 0 {
		return []core.Intent{in}
	}
	alt := in
	alt.Data = conflictOf(in.Data)
	delay := 500*time.Millisecond + time.Duration(ctx.Rand.Int63n(int64(4*time.Second)))
	ctx.InjectAfter(delay, alt)
	return []core.Intent{in}
}

// conflictOf derives the deterministic conflicting variant of a payload.
// XOR keeps the length (so fragmented proposals still assemble — into a
// different value) while scrambling any structure: a batch or ciphertext
// that wins the quorum in this form fails decoding at the commit layer.
func conflictOf(data []byte) []byte {
	out := make([]byte, len(data))
	for i, b := range data {
		out[i] = b ^ 0xA5
	}
	return out
}

// Withhold silently drops outbound state: threshold shares and repair
// traffic always, everything else with probability Frac. The node keeps
// receiving and processing normally — it free-rides on the protocol
// while starving peers of its contributions. The defense is threshold
// sizing: quorums of 2f+1 are satisfiable by the 2f+1 honest nodes
// alone, and NACK retransmission recovers what the drops delay.
type Withhold struct {
	// Frac is the drop probability for phases not always dropped;
	// 0 means the default 0.5.
	Frac float64
}

// Name implements Behavior.
func (Withhold) Name() string { return NameWithhold }

// Rewrite implements Behavior.
func (w Withhold) Rewrite(ctx Ctx, in core.Intent) []core.Intent {
	switch in.Phase {
	case packet.PhaseDone, packet.PhaseShare, packet.PhaseDecShare, packet.PhaseRepair:
		return nil // shares, proofs, and repair traffic: always withheld
	}
	frac := w.Frac
	if frac == 0 {
		frac = 0.5
	}
	if ctx.Rand.Float64() < frac {
		return nil
	}
	return []core.Intent{in}
}

// Garbage replaces the payload of crypto- and value-bearing intents with
// random bytes: malformed proposals, undecodable threshold-signature and
// decryption shares, broken certificates. The defense is verification at
// every trust boundary: share/proof/certificate checks discard the
// garbage (counted in Stats.Rejected), and proposals that deliver as
// garbage are rejected by the commit layer's decoders.
type Garbage struct{}

// Name implements Behavior.
func (Garbage) Name() string { return NameGarbage }

// Rewrite implements Behavior.
func (Garbage) Rewrite(ctx Ctx, in core.Intent) []core.Intent {
	switch in.Phase {
	case packet.PhaseInitial, packet.PhaseEcho, packet.PhaseReady,
		packet.PhaseDone, packet.PhaseShare, packet.PhaseDecShare, packet.PhaseFinish:
	default:
		return []core.Intent{in}
	}
	out := in
	// Keep the length so fragment assembly still completes (into garbage);
	// pad tiny payloads so decoders have something to choke on.
	n := len(in.Data)
	if n < 8 {
		n = 8
	}
	buf := make([]byte, n)
	ctx.Rand.Read(buf)
	out.Data = buf
	return []core.Intent{out}
}

// FlipVotes votes against the node's own estimate in ABA: BVAL, AUX,
// Bracha vote-RBC views, and DECIDED termination claims all go out
// inverted while the node's local state keeps the true values. The
// defenses are the 2f+1 vote quorums (f flipped votes cannot fabricate
// one) and the DECIDED gadget's f+1-matching-claims rule, which always
// contains at least one honest decider.
type FlipVotes struct{}

// Name implements Behavior.
func (FlipVotes) Name() string { return NameFlipVotes }

// Rewrite implements Behavior.
func (FlipVotes) Rewrite(ctx Ctx, in core.Intent) []core.Intent {
	if in.Kind != packet.KindABA || len(in.Data) == 0 {
		return []core.Intent{in}
	}
	out := in
	switch in.Phase {
	case packet.PhaseBval:
		// Bit 0 claims "I sent BVAL(0)", bit 1 "I sent BVAL(1)": swap them.
		bits := in.Data[0]
		out.Data = []byte{(bits&1)<<1 | (bits>>1)&1}
	case packet.PhaseAux, packet.PhaseDecided:
		out.Data = []byte{in.Data[0] ^ 1}
	case packet.PhaseVote1, packet.PhaseVote2, packet.PhaseVote3:
		// The Bracha view is [myVote | echo[N] | ready[N]] with votes in
		// {0, 1, 2=bot, 3=absent}: flip every binary vote, keep the rest.
		buf := make([]byte, len(in.Data))
		for i, v := range in.Data {
			if v <= 1 {
				v ^= 1
			}
			buf[i] = v
		}
		out.Data = buf
	}
	return []core.Intent{out}
}
