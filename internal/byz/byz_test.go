package byz

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/wireless"
)

func testCtx(seed int64) Ctx {
	return Ctx{Rand: rand.New(rand.NewSource(seed))}
}

func TestNewCoversVocabulary(t *testing.T) {
	for _, name := range Names() {
		b, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if b.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, b.Name())
		}
	}
	if _, err := New("omniscient"); err == nil {
		t.Error("New accepted an unknown behavior")
	}
}

func TestWithholdAlwaysDropsShares(t *testing.T) {
	w := Withhold{}
	ctx := testCtx(1)
	for _, ph := range []packet.Phase{packet.PhaseDone, packet.PhaseShare, packet.PhaseDecShare, packet.PhaseRepair} {
		in := core.Intent{IntentKey: core.IntentKey{Kind: packet.KindPRBC, Phase: ph}, Data: []byte{1}}
		for i := 0; i < 32; i++ {
			if out := w.Rewrite(ctx, in); out != nil {
				t.Fatalf("phase %d leaked through Withhold", ph)
			}
		}
	}
	// Other phases drop probabilistically: over many draws both outcomes occur.
	in := core.Intent{IntentKey: core.IntentKey{Kind: packet.KindRBC, Phase: packet.PhaseEcho}, Data: []byte{1}}
	dropped, kept := 0, 0
	for i := 0; i < 256; i++ {
		if out := w.Rewrite(ctx, in); out == nil {
			dropped++
		} else {
			kept++
		}
	}
	if dropped == 0 || kept == 0 {
		t.Errorf("Withhold on votes: dropped=%d kept=%d, want a mix", dropped, kept)
	}
}

func TestFlipVotesInverts(t *testing.T) {
	f := FlipVotes{}
	ctx := testCtx(1)
	bval := core.Intent{IntentKey: core.IntentKey{Kind: packet.KindABA, Phase: packet.PhaseBval}, Data: []byte{0b01}}
	if out := f.Rewrite(ctx, bval); out[0].Data[0] != 0b10 {
		t.Errorf("BVAL bits 01 -> %02b, want 10", out[0].Data[0])
	}
	aux := core.Intent{IntentKey: core.IntentKey{Kind: packet.KindABA, Phase: packet.PhaseAux}, Data: []byte{1}}
	if out := f.Rewrite(ctx, aux); out[0].Data[0] != 0 {
		t.Error("AUX vote 1 not flipped to 0")
	}
	// Bracha view: binary votes flip, bot (2) and absent (3) survive.
	view := core.Intent{IntentKey: core.IntentKey{Kind: packet.KindABA, Phase: packet.PhaseVote1}, Data: []byte{0, 1, 2, 3}}
	if out := f.Rewrite(ctx, view); !bytes.Equal(out[0].Data, []byte{1, 0, 2, 3}) {
		t.Errorf("Bracha view flip = %v", out[0].Data)
	}
	// Non-ABA state passes through untouched.
	echo := core.Intent{IntentKey: core.IntentKey{Kind: packet.KindRBC, Phase: packet.PhaseEcho}, Data: []byte{1}}
	if out := f.Rewrite(ctx, echo); !bytes.Equal(out[0].Data, echo.Data) {
		t.Error("FlipVotes touched non-ABA state")
	}
}

func TestGarbageScramblesCryptoPhases(t *testing.T) {
	g := Garbage{}
	ctx := testCtx(1)
	share := core.Intent{
		IntentKey: core.IntentKey{Kind: packet.KindPRBC, Phase: packet.PhaseDone},
		Data:      bytes.Repeat([]byte{7}, 90),
	}
	out := g.Rewrite(ctx, share)
	if len(out) != 1 || bytes.Equal(out[0].Data, share.Data) {
		t.Error("Garbage left a threshold share intact")
	}
	if len(out[0].Data) != len(share.Data) {
		t.Errorf("Garbage changed share length %d -> %d", len(share.Data), len(out[0].Data))
	}
	vote := core.Intent{IntentKey: core.IntentKey{Kind: packet.KindABA, Phase: packet.PhaseAux}, Data: []byte{1}}
	if out := g.Rewrite(ctx, vote); !bytes.Equal(out[0].Data, vote.Data) {
		t.Error("Garbage touched a non-target phase")
	}
}

// TestEquivocatePutsBothVariantsOnTheAir drives a real transport pair:
// the Byzantine sender's first snapshot carries the true value, and after
// the scripted delay the conflicting variant replaces it — a peer that
// keeps listening sees both.
func TestEquivocatePutsBothVariantsOnTheAir(t *testing.T) {
	sched := sim.New(1)
	cfg := wireless.DefaultConfig()
	cfg.LossProb = 0
	ch := wireless.NewChannel(sched, cfg)
	auth := &core.SizedAuth{Len: 56}
	mk := func(id int) *core.Transport {
		tcfg := core.DefaultConfig(true)
		tcfg.RetxInterval = 0
		tr := core.New(sched, sim.NewCPU(sched), nil, auth, tcfg)
		tr.BindStation(ch.Attach(wireless.NodeID(id), tr))
		return tr
	}
	sender, receiver := mk(0), mk(1)
	sender.SetInterceptor(&Interceptor{
		Rand:     rand.New(rand.NewSource(9)),
		Sched:    sched,
		Behavior: Equivocate{},
	})
	var got [][]byte
	receiver.Register(packet.KindRBC, core.HandlerFunc(func(from uint16, sec packet.Section) {
		for _, e := range sec.Entries {
			got = append(got, append([]byte(nil), e.Data...))
		}
	}))
	value := []byte("proposal-A")
	sender.Update(core.Intent{
		IntentKey: core.IntentKey{Kind: packet.KindRBC, Phase: packet.PhaseInitial, Slot: 0},
		Data:      value,
	})
	sched.RunUntil(30 * time.Second)
	var sawTrue, sawConflict bool
	for _, d := range got {
		if bytes.Equal(d, value) {
			sawTrue = true
		} else if bytes.Equal(d, conflictOf(value)) {
			sawConflict = true
		}
	}
	if !sawTrue || !sawConflict {
		t.Fatalf("receiver saw true=%v conflict=%v across %d deliveries; equivocation needs both",
			sawTrue, sawConflict, len(got))
	}
}
