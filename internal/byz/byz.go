// Package byz implements scripted active-Byzantine behaviors: a Behavior
// interposes on a node's outbound component state (core.Intent updates)
// and may rewrite, withhold, corrupt, or fork it before it reaches the
// air. A node assembled with a non-nil Behavior (internal/node) becomes
// Byzantine; everything below the interposition point — its keys, radio,
// and the honest peers' verification machinery — is unchanged, so runs
// with Byzantine nodes exercise exactly the defenses the protocols claim:
// echo quorums against equivocation, share/proof verification against
// garbage, the DECIDED gadget against vote flipping, and NACK repair
// against withholding.
//
// Behaviors are deliberately two-faced: the Byzantine node's own state
// machine stays honest (components apply their own contributions locally
// before the transport sees them), while peers receive the rewritten
// stream. Randomness comes from the node's seed-derived generator, so a
// Byzantine run is as reproducible as a fault-free one.
//
// The five built-in behaviors form the scenario DSL vocabulary
// (`byz@<t>:<node>:<behavior>`): "equivocate", "withhold", "garbage",
// "flipvotes", and "forgecut".
package byz

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

// Behavior rewrites one outbound intent. The returned slice replaces the
// intent in the transport's snapshot state: return the input unchanged to
// pass it through, nil to withhold it, or variants to corrupt it. Delayed
// conflicting state (equivocation) is planted through ctx.InjectAfter.
type Behavior interface {
	Name() string
	Rewrite(ctx Ctx, in core.Intent) []core.Intent
}

// Ctx is what a Behavior may use while rewriting: the node's seed-derived
// randomness, the virtual clock, and the transport the intent targets.
type Ctx struct {
	Rand  *rand.Rand
	Sched *sim.Scheduler
	T     *core.Transport
}

// InjectAfter plants an intent into the transport after a delay,
// bypassing the behavior (no re-interception). Equivocation uses it to
// put a conflicting snapshot on the air once peers have latched the
// first one.
func (c Ctx) InjectAfter(d time.Duration, in core.Intent) {
	t := c.T
	c.Sched.PostAfter(d, func() { t.Inject(in) })
}

// Interceptor binds a Behavior to a node's randomness and clock,
// implementing core.Interceptor for every transport the node opens (a
// mux node shares one Interceptor across its pipelined epochs).
type Interceptor struct {
	Rand     *rand.Rand
	Sched    *sim.Scheduler
	Behavior Behavior
}

// Outbound implements core.Interceptor.
func (ic *Interceptor) Outbound(t *core.Transport, in core.Intent) []core.Intent {
	return ic.Behavior.Rewrite(Ctx{Rand: ic.Rand, Sched: ic.Sched, T: t}, in)
}

var _ core.Interceptor = (*Interceptor)(nil)

// The built-in behavior names (the scenario DSL vocabulary).
const (
	NameEquivocate = "equivocate"
	NameWithhold   = "withhold"
	NameGarbage    = "garbage"
	NameFlipVotes  = "flipvotes"
	NameForgeCut   = "forgecut"
)

// New constructs a built-in behavior by name. Unknown names error, which
// is how the drivers validate a scenario's byz events before starting.
func New(name string) (Behavior, error) {
	switch name {
	case NameEquivocate:
		return Equivocate{}, nil
	case NameWithhold:
		return Withhold{}, nil
	case NameGarbage:
		return Garbage{}, nil
	case NameFlipVotes:
		return FlipVotes{}, nil
	case NameForgeCut:
		return &ForgeCut{}, nil
	default:
		return nil, fmt.Errorf("byz: unknown behavior %q (have %v)", name, Names())
	}
}

// Names lists the built-in behaviors, sorted.
func Names() []string {
	out := []string{NameEquivocate, NameWithhold, NameGarbage, NameFlipVotes, NameForgeCut}
	sort.Strings(out)
	return out
}
