// Command wbft-packets inspects the ConsensusBatcher wire format: it
// builds representative packets for each of the paper's packet structures
// (Fig. 4, 5, 6), prints their layout and sizes, and round-trips them
// through the codec.
package main

import (
	"fmt"
	"os"

	"repro/internal/packet"
)

func main() {
	examples := []struct {
		title string
		frame packet.Frame
	}{
		{
			title: "RBC_INIT (Fig. 4a top): fragmented proposal + NACK",
			frame: packet.Frame{
				Sender: 0, Session: 1, Epoch: 0,
				Sections: []packet.Section{{
					Kind: packet.KindRBC, Phase: packet.PhaseInitial,
					Entries: []packet.Entry{
						{Slot: 0, Sub: 0, Flags: 2, Data: make([]byte, 160)},
						{Slot: 0, Sub: 1, Flags: 2, Data: make([]byte, 96)},
					},
				}},
			},
		},
		{
			title: "RBC_ER (Fig. 4a bottom): batched ECHO+READY hash votes, O(N) NACK",
			frame: packet.Frame{
				Sender: 2, Session: 1, Epoch: 0,
				Sections: []packet.Section{
					{
						Kind: packet.KindRBC, Phase: packet.PhaseEcho,
						Nack: packet.BitSet{0b0011},
						Entries: []packet.Entry{
							{Slot: 0, Data: make([]byte, 8)},
							{Slot: 1, Data: make([]byte, 8)},
							{Slot: 2, Data: make([]byte, 8)},
							{Slot: 3, Data: make([]byte, 8)},
						},
					},
					{
						Kind: packet.KindRBC, Phase: packet.PhaseReady,
						Nack: packet.BitSet{0b0001},
						Entries: []packet.Entry{
							{Slot: 0, Data: make([]byte, 8)},
							{Slot: 1, Data: make([]byte, 8)},
						},
					},
				},
			},
		},
		{
			title: "PRBC_DONE (Fig. 4c): threshold-signature shares + Sig_nack",
			frame: packet.Frame{
				Sender: 1, Session: 1, Epoch: 0,
				Sections: []packet.Section{{
					Kind: packet.KindPRBC, Phase: packet.PhaseDone,
					Nack: packet.BitSet{0b0101},
					Entries: []packet.Entry{
						{Slot: 0, Sub: 1, Data: make([]byte, 64)},
						{Slot: 2, Sub: 1, Data: make([]byte, 64)},
					},
				}},
			},
		},
		{
			title: "RBC-small (Fig. 5a): Bracha-ABA vote RBC with inline values",
			frame: packet.Frame{
				Sender: 3, Session: 1, Epoch: 0,
				Sections: []packet.Section{{
					Kind: packet.KindABA, Phase: packet.PhaseVote1,
					Entries: []packet.Entry{
						{Slot: 0, Round: 1, Data: make([]byte, 9)},
						{Slot: 1, Round: 1, Data: make([]byte, 9)},
						{Slot: 2, Round: 1, Data: make([]byte, 9)},
						{Slot: 3, Round: 1, Data: make([]byte, 9)},
					},
				}},
			},
		},
		{
			title: "Cachin-ABA batch (Fig. 6b): BVAL+AUX bits + shared coin share",
			frame: packet.Frame{
				Sender: 0, Session: 1, Epoch: 0,
				Sections: []packet.Section{
					{
						Kind: packet.KindABA, Phase: packet.PhaseBval,
						Entries: []packet.Entry{
							{Slot: 0, Round: 1, Data: []byte{0b10}},
							{Slot: 1, Round: 1, Data: []byte{0b01}},
							{Slot: 2, Round: 1, Data: []byte{0b11}},
							{Slot: 3, Round: 1, Data: []byte{0b10}},
						},
					},
					{
						Kind: packet.KindABA, Phase: packet.PhaseAux,
						Entries: []packet.Entry{
							{Slot: 0, Round: 1, Data: []byte{1}},
							{Slot: 1, Round: 1, Data: []byte{0}},
						},
					},
					{
						Kind: packet.KindABA, Phase: packet.PhaseShare,
						Nack: packet.BitSet{0b0111},
						Entries: []packet.Entry{
							{Slot: 0xFF, Sub: 0, Round: 1, Data: make([]byte, 160)},
						},
					},
				},
			},
		},
	}

	for _, ex := range examples {
		ex.frame.Sig = make([]byte, 56) // ECDSA P-224 size
		raw, err := ex.frame.Encode()
		if err != nil {
			fmt.Fprintln(os.Stderr, "wbft-packets:", err)
			os.Exit(1)
		}
		decoded, _, err := packet.Decode(raw)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wbft-packets: decode:", err)
			os.Exit(1)
		}
		fmt.Printf("=== %s\n", ex.title)
		fmt.Printf("encoded size: %d bytes\n", len(raw))
		fmt.Println(decoded.String())
		fmt.Println()
	}
}
